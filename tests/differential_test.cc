// Randomized differential harness proving plan equivalence of the kernel
// operators.
//
// Every case draws seeded random inputs — ints, doubles (including -0.0 and
// NaN), duplicate-heavy dictionary strings, empty and 1-row BATs — and runs
// each kernel operator under the full plan matrix
//
//   {threadcnt 1, 2, 7} x {auto_index on, off}
//
// plus one traced plan (a live TraceSink), asserting the result is
// byte-identical to the serial reference operator. "Byte-identical" is
// literal: doubles compare by bit pattern, so -0.0 vs +0.0 or differing NaN
// payloads fail. Each seed is one ctest case (240 total); a failure prints
// the seed so the case can be replayed alone:
//
//   ./differential_test --gtest_filter='*/DifferentialTest.*/137'
//
// A second per-seed case drives the same property through the MIL layer: a
// seeded random — but always well-typed — MIL pipeline must pass the static
// verifier (zero false rejections), execute under every plan, and print
// byte-identical output.
//
// Both properties additionally sweep sharded deployments: every plan also
// runs through the scatter-gather exchange operators (kernel/shard.h) at 2
// and 7 shards — and, on the MIL side, under a `shards(2|7)` prologue — and
// must produce the same bytes and the same analyzer verdicts as the
// single-catalog plan. A final deterministic case proves the harness has
// teeth: with the ExchangeOptions::unsafe_unordered_merge seam enabled
// (merge in reversed shard order — the stand-in for a completion-order
// exchange), the byte-equality assertions fail on row order, on a -0.0/0.0
// Min tie, and on Sum's fold order.

#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/diag.h"
#include "base/io.h"
#include "base/rng.h"
#include "base/trace.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/exec_context.h"
#include "kernel/mil.h"
#include "kernel/persist.h"
#include "kernel/shard.h"

namespace cobra::kernel {
namespace {

struct PlanCase {
  int threadcnt;
  bool auto_index;
};

// The plan matrix every operator runs under. Small morsels and a unit
// serial cutoff engage the parallel machinery at test sizes.
constexpr PlanCase kPlans[] = {{1, true},  {1, false}, {2, true},
                               {2, false}, {7, true},  {7, false}};

ExecContext PlanCtx(const PlanCase& plan) {
  ExecContext ctx;
  ctx.threadcnt = plan.threadcnt;
  ctx.morsel_rows = 32;
  ctx.serial_cutoff = 1;
  ctx.auto_index = plan.auto_index;
  return ctx;
}

std::string PlanName(const PlanCase& plan) {
  return "threadcnt=" + std::to_string(plan.threadcnt) +
         (plan.auto_index ? " auto_index=on" : " auto_index=off");
}

/// Bitwise double equality: NaN == NaN (same payload), -0.0 != +0.0.
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void ExpectSameBat(const Bat& expected, const Bat& actual) {
  ASSERT_EQ(expected.tail_type(), actual.tail_type());
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected.HeadAt(i), actual.HeadAt(i)) << "head at " << i;
    switch (expected.tail_type()) {
      case TailType::kInt:
        ASSERT_EQ(expected.IntAt(i), actual.IntAt(i)) << "int tail at " << i;
        break;
      case TailType::kFloat:
        ASSERT_TRUE(SameBits(expected.FloatAt(i), actual.FloatAt(i)))
            << "float tail differs at " << i << ": " << expected.FloatAt(i)
            << " vs " << actual.FloatAt(i);
        break;
      case TailType::kStr:
        ASSERT_EQ(expected.StrAt(i), actual.StrAt(i)) << "str tail at " << i;
        break;
      case TailType::kOid:
        ASSERT_EQ(expected.OidAt(i), actual.OidAt(i)) << "oid tail at " << i;
        break;
    }
  }
}

constexpr TailType kAllTypes[] = {TailType::kInt, TailType::kFloat,
                                  TailType::kStr, TailType::kOid};

/// Containment walk: every span the plan analyzer stamped with a static
/// cardinality interval must contain the observed row count. Returns the
/// number of stamped spans so callers can assert the walk saw any.
size_t ExpectStaticContainment(const trace::TraceSink& sink) {
  size_t stamped = 0;
  std::function<void(const trace::Span&)> walk = [&](const trace::Span& span) {
    if (span.has_static_card) {
      ++stamped;
      EXPECT_LE(span.static_lo, span.rows_out)
          << span.name << ": rows_out below its static interval";
      EXPECT_GE(span.static_hi, span.rows_out)
          << span.name << ": rows_out above its static interval";
    }
    for (const auto& child : span.children) walk(*child);
  };
  for (const auto& root : sink.roots()) walk(*root);
  return stamped;
}

/// Seeded input generator. Tails are duplicate-heavy (small palettes) so
/// selects, joins, and grouping hit real collisions across morsel
/// boundaries; the float palette always contains +0.0, -0.0, NaN, and the
/// infinities.
Bat GenBat(Rng& rng, TailType type, size_t n) {
  constexpr double kSpecials[] = {
      0.0, -0.0, std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity()};
  Bat bat(type);
  for (size_t i = 0; i < n; ++i) {
    const Oid head = static_cast<Oid>(rng.UniformInt(uint64_t{200}));
    switch (type) {
      case TailType::kInt:
        bat.AppendInt(head, rng.UniformInt(int64_t{-20}, 20));
        break;
      case TailType::kFloat:
        if (rng.Bernoulli(0.3)) {
          bat.AppendFloat(head, kSpecials[rng.UniformInt(uint64_t{5})]);
        } else {
          // Quantized so duplicates occur by construction.
          bat.AppendFloat(head,
                          static_cast<double>(rng.UniformInt(int64_t{-8}, 8)) /
                              4.0);
        }
        break;
      case TailType::kStr: {
        std::string s;
        if (!rng.Bernoulli(0.1)) {  // ~10% empty strings
          s = "s" + std::to_string(rng.UniformInt(uint64_t{13}));
        }
        bat.AppendStr(head, std::move(s));
        break;
      }
      case TailType::kOid:
        bat.AppendOid(head, static_cast<Oid>(rng.UniformInt(uint64_t{64})));
        break;
    }
  }
  return bat;
}

/// A probe value drawn from the same distribution as the data (so both
/// present and absent keys occur across seeds).
Value GenProbe(Rng& rng, TailType type) {
  Bat one = GenBat(rng, type, 1);
  return one.TailAt(0);
}

/// One seed = one ctest case. The fixture parameter is the seed; every
/// assertion runs under a SCOPED_TRACE naming it.
class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, OperatorsBytewiseEqualAcrossPlans) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("failing seed: " + std::to_string(seed) +
               " (replay with --gtest_filter='*/" +
               std::to_string(seed) + "')");
  // Size schedule guarantees the degenerate shapes appear: every 8th seed
  // is empty, every 8th is a single row; the rest straddle the morsel size.
  constexpr size_t kSizeSchedule[] = {0, 1, 31, 32, 33, 97, 256, 523};
  const size_t n = kSizeSchedule[seed % 8];
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);

  // One traced plan per case: instrumentation must not perturb results.
  trace::TraceSink sink;

  for (TailType type : kAllTypes) {
    SCOPED_TRACE(std::string("tail type: ") + std::string(TailTypeName(type)));
    const Bat bat = GenBat(rng, type, n);
    const Value probe = GenProbe(rng, type);

    // Serial reference results (context-free operator forms).
    auto ref_select = bat.SelectEq(probe);
    ASSERT_TRUE(ref_select.ok());
    std::vector<size_t> ref_reps;
    const Bat ref_group = Group(bat, &ref_reps);

    // Binary-operator partners.
    Bat left(TailType::kOid);  // oid tails pointing into bat's head space
    for (size_t i = 0; i < n; ++i) {
      left.AppendOid(static_cast<Oid>(i),
                     static_cast<Oid>(rng.UniformInt(uint64_t{300})));
    }
    const Bat filter = GenBat(rng, TailType::kOid, n / 2);
    const Bat other = GenBat(rng, type, 57);
    auto ref_join = Join(left, bat);
    ASSERT_TRUE(ref_join.ok());
    const Bat ref_semi = Semijoin(bat, filter);
    const Bat ref_diff = Diff(bat, filter);
    Bat ref_concat(bat);
    ref_concat.Concat(other);

    // Aggregate references come from the threadcnt=1 context form: Sum's
    // morsel-order reduction is the contract, not the unmorseled fold.
    const ExecContext base = PlanCtx(kPlans[0]);

    for (const PlanCase& plan : kPlans) {
      SCOPED_TRACE("plan: " + PlanName(plan));
      for (bool traced : {false, true}) {
        ExecContext ctx = PlanCtx(plan);
        if (traced) {
          ctx.trace = &sink;
          if (!plan.auto_index) continue;  // one traced run per threadcnt
        }
        SCOPED_TRACE(traced ? "traced: yes" : "traced: no");

        auto select = bat.SelectEq(probe, ctx);
        ASSERT_TRUE(select.ok());
        ExpectSameBat(*ref_select, *select);

        if (type == TailType::kStr) {
          auto ref_str = bat.SelectStr("s3");
          auto str = bat.SelectStr("s3", ctx);
          ASSERT_TRUE(ref_str.ok());
          ASSERT_TRUE(str.ok());
          ExpectSameBat(*ref_str, *str);
        }

        if (type == TailType::kInt || type == TailType::kFloat) {
          auto ref_range = bat.SelectRange(-1.5, 1.0);
          auto range = bat.SelectRange(-1.5, 1.0, ctx);
          ASSERT_TRUE(ref_range.ok());
          ASSERT_TRUE(range.ok());
          ExpectSameBat(*ref_range, *range);

          if (n == 0) {
            EXPECT_FALSE(bat.Max(ctx).ok());
            EXPECT_FALSE(bat.Min(ctx).ok());
            EXPECT_FALSE(bat.ArgMax(ctx).ok());
            EXPECT_TRUE(SameBits(*bat.Sum(base), *bat.Sum(ctx)));
          } else {
            EXPECT_TRUE(SameBits(*bat.Sum(base), *bat.Sum(ctx)));
            EXPECT_TRUE(SameBits(*bat.Max(), *bat.Max(ctx)));
            EXPECT_TRUE(SameBits(*bat.Min(), *bat.Min(ctx)));
            EXPECT_EQ(*bat.ArgMax(), *bat.ArgMax(ctx));
          }
        }

        auto join = Join(left, bat, ctx);
        ASSERT_TRUE(join.ok());
        ExpectSameBat(*ref_join, *join);

        ExpectSameBat(ref_semi, Semijoin(bat, filter, ctx));
        ExpectSameBat(ref_diff, Diff(bat, filter, ctx));

        std::vector<size_t> reps;
        ExpectSameBat(ref_group, Group(bat, &reps, ctx));
        EXPECT_EQ(ref_reps, reps);

        Bat concat(bat);
        concat.Concat(other, ctx);
        ExpectSameBat(ref_concat, concat);

        // Sharded leg: the same operators through the scatter-gather
        // exchange at 2 and 7 shards must merge to exactly the same bytes
        // (and fail with exactly the same messages).
        for (const size_t shard_count : {size_t{2}, size_t{7}}) {
          SCOPED_TRACE("shards: " + std::to_string(shard_count));
          const PartitionedBat part(bat, shard_count, ctx.MorselRows());
          const ShardedBat sb = part.View();

          ExpectSameBat(bat, GatherShards(sb, ctx));

          auto ssel = ShardedSelectEq(sb, probe, ctx);
          ASSERT_TRUE(ssel.ok());
          ExpectSameBat(*ref_select, *ssel);

          if (type == TailType::kStr) {
            auto sstr = ShardedSelectStr(sb, "s3", ctx);
            ASSERT_TRUE(sstr.ok());
            ExpectSameBat(*bat.SelectStr("s3"), *sstr);
          }

          if (type == TailType::kInt || type == TailType::kFloat) {
            auto ref_range = bat.SelectRange(-1.5, 1.0);
            ASSERT_TRUE(ref_range.ok());
            auto srange = ShardedSelectRange(sb, -1.5, 1.0, ctx);
            ASSERT_TRUE(srange.ok());
            ExpectSameBat(*ref_range, *srange);

            // The pruned plan (zone maps) must not change a single byte.
            const std::vector<ShardStats> stats = ComputeShardStats(sb, ctx);
            ExchangeOptions pruned;
            pruned.scan_stats = &stats;
            auto spruned = ShardedSelectRange(sb, -1.5, 1.0, ctx, pruned);
            ASSERT_TRUE(spruned.ok());
            ExpectSameBat(*ref_range, *spruned);

            if (n == 0) {
              EXPECT_EQ(bat.Min(ctx).status().message(),
                        ShardedMin(sb, ctx).status().message());
              EXPECT_EQ(bat.Max(ctx).status().message(),
                        ShardedMax(sb, ctx).status().message());
              EXPECT_EQ(bat.ArgMax(ctx).status().message(),
                        ShardedArgMax(sb, ctx).status().message());
              EXPECT_TRUE(SameBits(*bat.Sum(base), *ShardedSum(sb, ctx)));
            } else {
              EXPECT_TRUE(SameBits(*bat.Sum(base), *ShardedSum(sb, ctx)));
              EXPECT_TRUE(SameBits(*bat.Max(), *ShardedMax(sb, ctx)));
              EXPECT_TRUE(SameBits(*bat.Min(), *ShardedMin(sb, ctx)));
              EXPECT_EQ(*bat.ArgMax(), *ShardedArgMax(sb, ctx));
            }
          }

          const PartitionedBat left_part(left, shard_count, ctx.MorselRows());
          auto sjoin = ShardedJoin(left_part.View(), bat, ctx);
          ASSERT_TRUE(sjoin.ok());
          ExpectSameBat(*ref_join, *sjoin);

          auto ssemi = ShardedSemijoin(sb, filter, ctx);
          ASSERT_TRUE(ssemi.ok());
          ExpectSameBat(ref_semi, *ssemi);
          auto sdiff = ShardedDiff(sb, filter, ctx);
          ASSERT_TRUE(sdiff.ok());
          ExpectSameBat(ref_diff, *sdiff);

          std::vector<size_t> sreps;
          auto sgroup = ShardedGroup(sb, &sreps, ctx);
          ASSERT_TRUE(sgroup.ok());
          ExpectSameBat(ref_group, *sgroup);
          EXPECT_EQ(ref_reps, sreps);
        }
      }
    }
  }
}

// The verifier side of the harness: per seed, generate a random — but by
// construction well-typed — MIL pipeline over seeded catalog BATs. The
// static analyzer must accept it (zero false rejections), and execution
// (which re-runs the verifier before the first operator) must succeed under
// every plan with byte-identical PRINT output.
TEST_P(DifferentialTest, MilScriptsVerifyAndAgreeAcrossPlans) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("failing seed: " + std::to_string(seed) +
               " (replay with --gtest_filter='*/" + std::to_string(seed) +
               "')");
  constexpr size_t kSizeSchedule[] = {0, 1, 31, 32, 33, 97, 256, 523};
  const size_t n = kSizeSchedule[seed % 8];
  Rng rng(seed * 0xA24BAED4963EE407ull + 0x9FB21C651E98DF25ull);

  Catalog catalog;
  const std::pair<const char*, TailType> sources[] = {
      {"ints", TailType::kInt},
      {"floats", TailType::kFloat},
      {"strs", TailType::kStr},
      {"oids", TailType::kOid}};
  for (const auto& [name, type] : sources) {
    auto created = catalog.Create(name, type);
    ASSERT_TRUE(created.ok());
    const Bat src = GenBat(rng, type, n);
    for (size_t i = 0; i < src.size(); ++i) {
      ASSERT_TRUE((*created)->Append(src.HeadAt(i), src.TailAt(i)).ok());
    }
  }

  std::string script;
  script += "VAR f := bat('floats');\n";
  script += "VAR i := bat('ints');\n";
  const int64_t lo = rng.UniformInt(int64_t{-8}, 0);
  const int64_t hi = lo + rng.UniformInt(int64_t{0}, 8);
  script += "VAR r := select(f, " + std::to_string(lo) + ", " +
            std::to_string(hi) + ");\n";
  script += "PRINT count(r);\nPRINT sum(r);\n";
  if (rng.Bernoulli(0.7)) {
    script += "PRINT count(select(bat('strs'), 's" +
              std::to_string(rng.UniformInt(uint64_t{13})) + "'));\n";
  }
  if (rng.Bernoulli(0.7)) {
    script += "VAR j := join(bat('oids'), f);\n";
    script += "PRINT count(j);\nPRINT sum(j);\n";
  }
  if (rng.Bernoulli(0.5)) {
    script += "PRINT count(semijoin(i, bat('oids')));\n";
  }
  if (rng.Bernoulli(0.5)) script += "PRINT count(diff(f, bat('oids')));\n";
  if (rng.Bernoulli(0.5)) {
    script += "PRINT count(slice(f, 0, " +
              std::to_string(rng.UniformInt(uint64_t{40})) + "));\n";
  }
  if (rng.Bernoulli(0.5)) script += "PRINT count(mirror(bat('strs')));\n";
  if (rng.Bernoulli(0.5)) script += "PRINT sum(concat(i, bat('ints')));\n";
  script += "PRINT count(i);\n";

  MilAnalysisContext actx;
  actx.catalog = &catalog;
  DiagnosticList diags = AnalyzeMilScript(script, actx);
  EXPECT_TRUE(diags.ok()) << script << "\n" << diags.ToString("mil");

  std::string reference;
  bool have_reference = false;
  for (const PlanCase& plan : kPlans) {
    SCOPED_TRACE("plan: " + PlanName(plan));
    MilSession session(&catalog);
    session.set_exec(PlanCtx(plan));
    auto out = session.Execute(script);
    ASSERT_TRUE(out.ok()) << script << "\n" << out.status().message();
    if (!have_reference) {
      reference = *out;
      have_reference = true;
    }
    EXPECT_EQ(reference, *out);
  }

  // Static-analysis legs of the harness: (a) a session with the
  // analyzer-driven rewrites disabled must print exactly the same bytes —
  // the provable-empty and single-shard rewrites are pure optimizations;
  // (b) a traced session must pass the containment walk — every static
  // interval the abstract interpreter stamped on a span contains the
  // observed row count.
  {
    MilSession norewrite(&catalog);
    norewrite.set_exec(PlanCtx(kPlans[0]));
    norewrite.set_disable_static_rewrites(true);
    auto out = norewrite.Execute(script);
    ASSERT_TRUE(out.ok()) << out.status().message();
    EXPECT_EQ(reference, *out);

    MilSession traced(&catalog);
    traced.set_exec(PlanCtx(kPlans[0]));
    auto tout = traced.Execute("trace on;\n" + script);
    ASSERT_TRUE(tout.ok()) << tout.status().message();
    EXPECT_EQ(reference, *tout);
    ASSERT_NE(traced.trace_sink(), nullptr);
    EXPECT_GT(ExpectStaticContainment(*traced.trace_sink()), size_t{0});
  }

  // Sharded deployments: the same script under a shards(2|7) prologue must
  // pass the analyzer (verdict parity with the unsharded script) and print
  // exactly the unsharded reference under every plan.
  for (const int shard_count : {2, 7}) {
    SCOPED_TRACE("shards: " + std::to_string(shard_count));
    const std::string sharded_script =
        "shards(" + std::to_string(shard_count) + ");\n" + script;
    MilAnalysisContext sctx;
    sctx.catalog = &catalog;
    DiagnosticList sdiags = AnalyzeMilScript(sharded_script, sctx);
    EXPECT_TRUE(sdiags.ok()) << sharded_script << "\n"
                             << sdiags.ToString("mil");
    for (const PlanCase& plan : kPlans) {
      SCOPED_TRACE("plan: " + PlanName(plan));
      MilSession session(&catalog);
      session.set_exec(PlanCtx(plan));
      auto out = session.Execute(sharded_script);
      ASSERT_TRUE(out.ok()) << sharded_script << "\n"
                            << out.status().message();
      EXPECT_EQ(reference, *out);
    }

    // Sharded static-analysis legs: rewrites disabled (no single-shard or
    // provably-empty pruning) must still print the unsharded reference, and
    // the traced sharded plan must pass the containment walk.
    MilSession norewrite(&catalog);
    norewrite.set_exec(PlanCtx(kPlans[2]));
    norewrite.set_disable_static_rewrites(true);
    auto nout = norewrite.Execute(sharded_script);
    ASSERT_TRUE(nout.ok()) << nout.status().message();
    EXPECT_EQ(reference, *nout);

    MilSession traced(&catalog);
    traced.set_exec(PlanCtx(kPlans[2]));
    auto tout = traced.Execute("trace on;\n" + sharded_script);
    ASSERT_TRUE(tout.ok()) << tout.status().message();
    EXPECT_EQ(reference, *tout);
    ASSERT_NE(traced.trace_sink(), nullptr);
    EXPECT_GT(ExpectStaticContainment(*traced.trace_sink()), size_t{0});
  }

  // Durability leg: a checkpoint→recover round-trip of the catalog must be
  // byte-identical (canonical dump), and the same script over the recovered
  // catalog must print exactly the never-persisted reference.
  io::MemFs fs;
  PersistentStore writer(&fs, "store");
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Checkpoint(catalog).ok());
  Catalog recovered;
  PersistentStore reader(&fs, "store");
  auto info = reader.Recover(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_EQ(PersistentStore::DumpCatalog(catalog),
            PersistentStore::DumpCatalog(recovered));
  MilSession session(&recovered);
  session.set_exec(PlanCtx(kPlans[0]));
  auto replay = session.Execute(script);
  ASSERT_TRUE(replay.ok()) << script << "\n" << replay.status().message();
  EXPECT_EQ(reference, *replay);
}

// The harness has teeth: with the unsafe_unordered_merge seam enabled the
// exchange merges in reversed shard order — the deterministic stand-in for
// "merge whichever shard finishes first" — and every byte-equality the
// sharded legs above assert must be violable. Each sub-case pins one way
// the bug class corrupts results; the clean plan passes alongside to show
// the divergence is the seam's doing, not the inputs'.
TEST(ShardMergeDefectTest, HarnessCatchesUnorderedMerge) {
  ExecContext ctx;
  ctx.morsel_rows = 1;  // every row its own morsel: fold order fully exposed
  ctx.serial_cutoff = 1;
  ExchangeOptions unsafe;
  unsafe.unsafe_unordered_merge = true;

  // Row order: a select with matches in both shards comes back transposed.
  Bat strs(TailType::kStr);
  strs.AppendStr(1, "x");
  strs.AppendStr(2, "x");
  const PartitionedBat sparts(strs, 2, 1);
  auto clean = ShardedSelectStr(sparts.View(), "x", ctx);
  auto broken = ShardedSelectStr(sparts.View(), "x", ctx, unsafe);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(broken.ok());
  ASSERT_EQ(clean->size(), size_t{2});
  ASSERT_EQ(broken->size(), size_t{2});
  EXPECT_EQ(clean->HeadAt(0), Oid{1});   // shard order
  EXPECT_EQ(broken->HeadAt(0), Oid{2});  // ExpectSameBat would fail here

  // Min tie on -0.0 vs 0.0 across shards: shard order decides which zero's
  // bit pattern survives the leftmost-winner combine.
  Bat zeros(TailType::kFloat);
  zeros.AppendFloat(1, 0.0);
  zeros.AppendFloat(2, -0.0);
  const PartitionedBat zparts(zeros, 2, 1);
  EXPECT_TRUE(SameBits(*zeros.Min(), *ShardedMin(zparts.View(), ctx)));
  EXPECT_FALSE(
      SameBits(*zeros.Min(), *ShardedMin(zparts.View(), ctx, unsafe)));

  // Sum: refolding the per-morsel partials in any other order reassociates
  // the float additions and changes the rounding.
  Bat sums(TailType::kFloat);
  sums.AppendFloat(1, 1.0);
  sums.AppendFloat(2, 1e16);
  sums.AppendFloat(3, -1e16);
  const PartitionedBat fparts(sums, 2, 1);
  EXPECT_TRUE(SameBits(*sums.Sum(ctx), *ShardedSum(fparts.View(), ctx)));
  EXPECT_FALSE(
      SameBits(*sums.Sum(ctx), *ShardedSum(fparts.View(), ctx, unsafe)));
}

// The same defect caught end-to-end through the MIL layer: a session with
// the seam enabled prints different bytes than the clean sharded session —
// which itself matches the unsharded reference.
TEST(ShardMergeDefectTest, MilHarnessCatchesUnorderedMerge) {
  Catalog catalog;
  auto created = catalog.Create("f", TailType::kFloat);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE((*created)->Append(1, Value::Float(0.0)).ok());
  ASSERT_TRUE((*created)->Append(2, Value::Float(-0.0)).ok());

  ExecContext ctx;
  ctx.morsel_rows = 1;
  ctx.serial_cutoff = 1;

  MilSession unsharded(&catalog);
  unsharded.set_exec(ctx);
  auto reference = unsharded.Execute("PRINT min(bat('f'));");
  ASSERT_TRUE(reference.ok());

  const std::string script = "shards(2);\nPRINT min(bat('f'));";
  MilSession sharded(&catalog);
  sharded.set_exec(ctx);
  auto ordered = sharded.Execute(script);
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ(*reference, *ordered);

  MilSession seamed(&catalog);
  seamed.set_exec(ctx);
  seamed.set_unsafe_unordered_merge(true);
  auto unordered = seamed.Execute(script);
  ASSERT_TRUE(unordered.ok());
  EXPECT_NE(*reference, *unordered);  // -0 vs 0: the harness catches it
}

// The interval side of the harness has teeth too: with the
// unsafe_narrow_intervals seam the abstract interpreter's upper bounds come
// out halved — a deliberately unsound analysis. The PRINT output stays
// byte-identical (the seam corrupts only the proofs, not the plan), so the
// byte-equality legs are blind to it; ONLY the containment walk over the
// traced spans catches the defect. This is the proof that the walk is a
// load-bearing part of the soundness argument, not decoration.
TEST(StaticIntervalDefectTest, ContainmentWalkCatchesNarrowIntervals) {
  Catalog catalog;
  auto created = catalog.Create("f", TailType::kFloat);
  ASSERT_TRUE(created.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*created)->Append(static_cast<Oid>(i), Value::Float(i * 0.25))
                    .ok());
  }
  // The select's hull is inside the predicate range, so all 8 rows match —
  // the clean analysis proves [8, 8]; the seamed one claims hi = 4.
  const std::string script =
      "trace on;\nPRINT count(select(bat('f'), -100, 100));";

  MilSession clean(&catalog);
  auto reference = clean.Execute(script);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  ASSERT_NE(clean.trace_sink(), nullptr);
  EXPECT_GT(ExpectStaticContainment(*clean.trace_sink()), size_t{0});

  MilSession seamed(&catalog);
  seamed.set_unsafe_narrow_intervals(true);
  auto narrowed = seamed.Execute(script);
  ASSERT_TRUE(narrowed.ok()) << narrowed.status().message();
  EXPECT_EQ(*reference, *narrowed);  // bytes agree: equality legs are blind
  ASSERT_NE(seamed.trace_sink(), nullptr);
  size_t violations = 0;
  std::function<void(const trace::Span&)> walk = [&](const trace::Span& span) {
    if (span.has_static_card && span.rows_out > span.static_hi) ++violations;
    for (const auto& child : span.children) walk(*child);
  };
  for (const auto& root : seamed.trace_sink()->roots()) walk(*root);
  EXPECT_GT(violations, size_t{0});  // the walk catches the unsound bound
}

// 240 seeded cases per property; the seed doubles as the ctest case name so
// a failure (which prints the seed via SCOPED_TRACE) maps straight to a
// filter.
INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(uint64_t{0}, uint64_t{240}));

}  // namespace
}  // namespace cobra::kernel
