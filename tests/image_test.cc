#include <gtest/gtest.h>

#include "base/rng.h"
#include "image/analysis.h"
#include "image/draw.h"
#include "image/font.h"
#include "image/frame.h"
#include "image/histogram.h"

namespace cobra::image {
namespace {

TEST(FrameTest, ConstructFill) {
  Frame frame(4, 3, Rgb{10, 20, 30});
  EXPECT_EQ(frame.width(), 4);
  EXPECT_EQ(frame.height(), 3);
  EXPECT_EQ(frame.At(3, 2), (Rgb{10, 20, 30}));
}

TEST(FrameTest, SetGetRoundTrip) {
  Frame frame(2, 2);
  frame.Set(1, 0, Rgb{1, 2, 3});
  EXPECT_EQ(frame.At(1, 0), (Rgb{1, 2, 3}));
  EXPECT_EQ(frame.At(0, 0), (Rgb{0, 0, 0}));
}

TEST(FrameTest, CropClips) {
  Frame frame(10, 10, Rgb{5, 5, 5});
  Frame crop = frame.Crop(8, 8, 5, 5);
  EXPECT_EQ(crop.width(), 2);
  EXPECT_EQ(crop.height(), 2);
}

TEST(FrameTest, ResizeNearestPreservesBlocks) {
  Frame frame(2, 1);
  frame.Set(0, 0, Rgb{255, 0, 0});
  frame.Set(1, 0, Rgb{0, 255, 0});
  Frame big = frame.ResizeNearest(4, 2);
  EXPECT_EQ(big.At(0, 0).r, 255);
  EXPECT_EQ(big.At(3, 1).g, 255);
}

TEST(FrameTest, ResizeBilinearInterpolates) {
  Frame frame(2, 1);
  frame.Set(0, 0, Rgb{0, 0, 0});
  frame.Set(1, 0, Rgb{200, 200, 200});
  Frame big = frame.ResizeBilinear(5, 1);
  // Middle pixel should be around halfway.
  EXPECT_NEAR(big.At(2, 0).r, 100, 2);
}

TEST(FrameTest, MinIntensityKeepsStaticBrightText) {
  // Text pixel is bright in all frames; background fluctuates.
  Frame a(2, 1), b(2, 1);
  a.Set(0, 0, Rgb{230, 230, 230});
  b.Set(0, 0, Rgb{230, 230, 230});
  a.Set(1, 0, Rgb{180, 180, 180});
  b.Set(1, 0, Rgb{40, 40, 40});
  Frame filtered = MinIntensityFilter({a, b});
  EXPECT_EQ(filtered.At(0, 0).r, 230);
  EXPECT_EQ(filtered.At(1, 0).r, 40);
}

TEST(HistogramTest, NormalizedPerChannel) {
  Frame frame(8, 8, Rgb{128, 0, 255});
  auto h = ComputeHistogram(frame, 16);
  double sum = 0.0;
  for (double v : h.r) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(h.r[8], 1.0, 1e-9);   // 128 -> bin 8
  EXPECT_NEAR(h.b[15], 1.0, 1e-9);  // 255 -> top bin
}

TEST(HistogramTest, DistanceZeroForIdentical) {
  Frame frame(8, 8, Rgb{10, 20, 30});
  auto h = ComputeHistogram(frame);
  EXPECT_DOUBLE_EQ(HistogramDistance(h, h), 0.0);
}

TEST(HistogramTest, DistanceLargeForDisjoint) {
  Frame a(8, 8, Rgb{0, 0, 0});
  Frame b(8, 8, Rgb{255, 255, 255});
  EXPECT_NEAR(HistogramDistance(ComputeHistogram(a), ComputeHistogram(b)),
              6.0, 1e-9);
}

TEST(AnalysisTest, PixelDifference) {
  Frame a(4, 4, Rgb{0, 0, 0});
  Frame b(4, 4, Rgb{255, 255, 255});
  EXPECT_NEAR(PixelDifference(a, a), 0.0, 1e-12);
  EXPECT_NEAR(PixelDifference(a, b), 1.0, 1e-12);
}

TEST(AnalysisTest, BlockMotionLocalized) {
  Frame a(32, 32, Rgb{50, 50, 50});
  Frame b = a;
  FillRect(b, 0, 0, 8, 8, Rgb{250, 250, 250});  // change only block (0,0)
  auto blocks = BlockMotion(a, b, 4, 4);
  EXPECT_GT(blocks[0], 0.5);
  for (size_t i = 1; i < blocks.size(); ++i) EXPECT_NEAR(blocks[i], 0.0, 1e-9);
}

TEST(AnalysisTest, ColorFractionAndMask) {
  Frame frame(10, 10, Rgb{0, 0, 0});
  FillRect(frame, 0, 0, 5, 10, Rgb{200, 160, 90});
  ColorRange sand{.r_min = 150, .r_max = 230, .g_min = 110, .g_max = 190,
                  .b_min = 40, .b_max = 120};
  EXPECT_NEAR(ColorFraction(frame, sand), 0.5, 1e-9);
  auto mask = ColorMask(frame, sand);
  Box box = MaskBoundingBox(mask, 10, 10);
  EXPECT_EQ(box.Width(), 5);
  EXPECT_EQ(box.Height(), 10);
  EXPECT_NEAR(MaskDensityInBox(mask, 10, box), 1.0, 1e-9);
}

TEST(AnalysisTest, DetectRedRectangle) {
  Frame frame(64, 64, Rgb{60, 60, 60});
  FillRect(frame, 20, 10, 24, 8, Rgb{220, 30, 30});
  Box box;
  double density = 0.0;
  EXPECT_TRUE(DetectRedRectangle(frame, &box, &density));
  EXPECT_EQ(box.Width(), 24);
  EXPECT_GT(density, 0.9);
  // A sparse scatter of red must not count.
  Frame sparse(64, 64, Rgb{60, 60, 60});
  sparse.Set(1, 1, Rgb{220, 30, 30});
  sparse.Set(60, 60, Rgb{220, 30, 30});
  EXPECT_FALSE(DetectRedRectangle(sparse, &box, &density));
}

TEST(AnalysisTest, LumaStats) {
  Frame frame(4, 4, Rgb{100, 100, 100});
  double mean = 0.0, variance = 0.0;
  LumaStatsInBox(frame, Box{0, 0, 3, 3}, &mean, &variance);
  EXPECT_NEAR(mean, 100.0, 1e-6);
  EXPECT_NEAR(variance, 0.0, 1e-6);
  EXPECT_NEAR(MeanLuma(frame), 100.0, 1e-6);
}

TEST(DrawTest, BlendRectOpacity) {
  Frame frame(2, 2, Rgb{100, 100, 100});
  BlendRect(frame, 0, 0, 2, 2, Rgb{0, 0, 0}, 0.5);
  EXPECT_EQ(frame.At(0, 0).r, 50);
}

TEST(DrawTest, NoiseStaysInRange) {
  Frame frame(16, 16, Rgb{128, 128, 128});
  Rng rng(5);
  AddGaussianNoise(frame, 10.0, rng);
  bool changed = false;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      if (frame.At(x, y).r != 128) changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(FontTest, GlyphCoverage) {
  const auto& font = BitmapFont::Get();
  for (char c = 'A'; c <= 'Z'; ++c) EXPECT_TRUE(font.HasGlyph(c));
  for (char c = '0'; c <= '9'; ++c) EXPECT_TRUE(font.HasGlyph(c));
  EXPECT_TRUE(font.HasGlyph(' '));
  EXPECT_TRUE(font.HasGlyph('a'));  // case-folded
  EXPECT_FALSE(font.HasGlyph('@'));
}

TEST(FontTest, GlyphsAreDistinct) {
  const auto& font = BitmapFont::Get();
  auto signature = [&font](char c) {
    uint64_t sig = 0;
    for (int row = 0; row < BitmapFont::kGlyphHeight; ++row) {
      for (int col = 0; col < BitmapFont::kGlyphWidth; ++col) {
        sig = (sig << 1) | (font.Pixel(c, col, row) ? 1 : 0);
      }
    }
    return sig;
  };
  for (char a = 'A'; a <= 'Z'; ++a) {
    for (char b = static_cast<char>(a + 1); b <= 'Z'; ++b) {
      EXPECT_NE(signature(a), signature(b)) << a << " vs " << b;
    }
  }
}

TEST(FontTest, RenderPatternSize) {
  const auto& font = BitmapFont::Get();
  Frame pattern = font.RenderPattern("PIT", 2);
  EXPECT_EQ(pattern.height(), BitmapFont::kGlyphHeight * 2);
  EXPECT_EQ(pattern.width(), font.TextWidth("PIT", 2));
  // There is ink.
  double lit = 0;
  for (int y = 0; y < pattern.height(); ++y) {
    for (int x = 0; x < pattern.width(); ++x) {
      if (pattern.At(x, y).r > 128) lit++;
    }
  }
  EXPECT_GT(lit, 20);
}

}  // namespace
}  // namespace cobra::image
