#include <gtest/gtest.h>

#include "base/rng.h"
#include "image/draw.h"
#include "image/font.h"
#include "text/text_detect.h"
#include "text/text_recognize.h"

namespace cobra::text {
namespace {

/// Renders a broadcast-style caption band: dark shading with bright text.
image::Frame MakeBand(const std::string& caption, int width = 256,
                      int height = 38, uint64_t noise_seed = 0) {
  image::Frame band(width, height, {30, 30, 46});
  const auto& font = image::BitmapFont::Get();
  const int scale = 2;
  const int x = (width - font.TextWidth(caption, scale)) / 2;
  const int y = (height - image::BitmapFont::kGlyphHeight * scale) / 2;
  font.Draw(band, caption, x, y, scale, {250, 245, 120});
  if (noise_seed != 0) {
    Rng rng(noise_seed);
    image::AddGaussianNoise(band, 2.0, rng);
  }
  return band;
}

/// A full frame with the caption band at the bottom.
image::Frame MakeFrame(const std::string& caption, uint64_t noise_seed = 0) {
  image::Frame frame(256, 192, {120, 120, 120});
  const image::Frame band = MakeBand(caption, 256, 38, noise_seed);
  for (int y = 0; y < band.height(); ++y) {
    for (int x = 0; x < band.width(); ++x) {
      frame.Set(x, 192 - 38 + y, band.At(x, y));
    }
  }
  return frame;
}

TEST(TextDetectTest, CaptionFrameDetected) {
  TextDetector detector;
  EXPECT_TRUE(detector.FrameHasText(MakeFrame("PIT STOP", 1)));
}

TEST(TextDetectTest, PlainFrameRejected) {
  TextDetector detector;
  image::Frame frame(256, 192, {120, 120, 120});
  EXPECT_FALSE(detector.FrameHasText(frame));
}

TEST(TextDetectTest, DarkBandWithoutTextRejected) {
  TextDetector detector;
  EXPECT_FALSE(detector.FrameHasText(MakeFrame("", 1)));
}

TEST(TextDetectTest, DurationCriterion) {
  TextDetector detector;
  // Two caption frames then a plain frame: below min duration, no segment.
  detector.Push(MakeFrame("WINNER", 1));
  detector.Push(MakeFrame("WINNER", 2));
  auto segment = detector.Push(image::Frame(256, 192, {120, 120, 120}));
  EXPECT_FALSE(segment.has_value());
  // Five caption frames: segment emitted at the end.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(detector.Push(MakeFrame("WINNER", 10 + i)).has_value());
  }
  segment = detector.Push(image::Frame(256, 192, {120, 120, 120}));
  EXPECT_TRUE(segment.has_value());
  EXPECT_GT(segment->width(), 256);  // 4x magnified
}

TEST(TextRecognizeTest, BinarizeSeparatesInk) {
  auto band = MakeBand("LAP");
  auto mask = BinarizeRegion(band, 170.0);
  int ink = 0;
  for (auto v : mask.ink) ink += v;
  EXPECT_GT(ink, 50);
  EXPECT_LT(ink, mask.width * mask.height / 4);
}

TEST(TextRecognizeTest, SegmentsWordsAndChars) {
  TextRecognizer recognizer({"FINAL", "LAP"});
  std::vector<image::Frame> bands;
  for (int i = 0; i < 5; ++i) bands.push_back(MakeBand("FINAL LAP", 256, 38, 20 + i));
  auto refined = RefineTextRegion(bands);
  auto mask = BinarizeRegion(refined, 170.0);
  auto words = recognizer.SegmentWords(mask);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0].size(), 5u);
  EXPECT_EQ(words[1].size(), 3u);
}

TEST(TextRecognizeTest, RecognizesVocabulary) {
  TextRecognizer recognizer(
      {"PIT", "STOP", "WINNER", "SCHUMACHER", "HAKKINEN", "LEADER"});
  std::vector<image::Frame> bands;
  for (int i = 0; i < 6; ++i) {
    bands.push_back(MakeBand("PIT STOP HAKKINEN", 256, 38, 30 + i));
  }
  auto refined = RefineTextRegion(bands);
  auto words = recognizer.Recognize(refined);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0].text, "PIT");
  EXPECT_EQ(words[1].text, "STOP");
  EXPECT_EQ(words[2].text, "HAKKINEN");
  for (const auto& w : words) EXPECT_GT(w.score, 0.5);
}

TEST(TextRecognizeTest, LengthBucketingPrunesCandidates) {
  // "WINNER" (6 chars) cannot match a 3-char or 10-char reference.
  TextRecognizer recognizer({"LAP", "SCHUMACHER"});
  std::vector<image::Frame> bands;
  for (int i = 0; i < 5; ++i) bands.push_back(MakeBand("WINNER", 256, 38, 40 + i));
  auto words = recognizer.Recognize(RefineTextRegion(bands));
  EXPECT_TRUE(words.empty());
}

TEST(TextRecognizeTest, EmptyRegionYieldsNothing) {
  TextRecognizer recognizer({"PIT"});
  image::Frame empty(64, 32, {20, 20, 20});
  EXPECT_TRUE(recognizer.Recognize(empty).empty());
}

// Property sweep: every driver name in the lexicon-sized vocabulary is
// recognizable when rendered cleanly.
class DriverRecognitionSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DriverRecognitionSweep, RecognizesCleanRender) {
  const std::string name = GetParam();
  TextRecognizer recognizer({"SCHUMACHER", "BARRICHELLO", "HAKKINEN",
                             "COULTHARD", "MONTOYA", "VILLENEUVE", "TRULLI",
                             "RAIKKONEN"});
  std::vector<image::Frame> bands;
  for (int i = 0; i < 5; ++i) {
    bands.push_back(MakeBand(name, 320, 38, 50 + i));
  }
  auto words = recognizer.Recognize(RefineTextRegion(bands));
  ASSERT_EQ(words.size(), 1u) << name;
  EXPECT_EQ(words[0].text, name);
}

INSTANTIATE_TEST_SUITE_P(Drivers, DriverRecognitionSweep,
                         ::testing::Values("SCHUMACHER", "BARRICHELLO",
                                           "HAKKINEN", "COULTHARD", "MONTOYA",
                                           "VILLENEUVE", "TRULLI",
                                           "RAIKKONEN"));

}  // namespace
}  // namespace cobra::text
