// Tests of the multi-client query server: wire protocol round-trips,
// session lifecycle, snapshot-isolated execution, admission control
// (typed busy errors, shutdown drain, no worker starvation), trace/analyzer
// parity with direct QueryEngine calls, and the seeded isolation-violation
// mode the consistency harness must be able to catch. Everything except the
// final TCP smoke test runs over the in-process LocalConnection transport —
// fully deterministic, no real sockets.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <limits>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/catalog.h"
#include "query/engine.h"
#include "query/parser.h"
#include "query/snapshot.h"
#include "server/protocol.h"
#include "server/server.h"

namespace cobra::server {
namespace {

// -- Protocol unit tests ---------------------------------------------------

TEST(ProtocolTest, FrameRoundTripIncremental) {
  const std::string payloads[] = {"hello", "", std::string(1000, 'x')};
  std::string stream;
  for (const auto& p : payloads) stream += protocol::EncodeFrame(p);

  // Feed byte-at-a-time: frames must reassemble exactly.
  protocol::FrameDecoder decoder;
  std::vector<std::string> out;
  for (char c : stream) {
    decoder.Feed(std::string_view(&c, 1));
    std::string payload;
    while (decoder.Next(&payload)) out.push_back(payload);
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "hello");
  EXPECT_EQ(out[1], "");
  EXPECT_EQ(out[2], payloads[2]);
}

TEST(ProtocolTest, OversizedFramePoisonsDecoder) {
  protocol::FrameDecoder decoder;
  decoder.Feed(std::string("\xff\xff\xff\xff", 4));
  std::string payload;
  EXPECT_FALSE(decoder.Next(&payload));
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ProtocolTest, RequestRoundTrip) {
  protocol::Request request;
  request.session = 7;
  request.seq = 42;
  request.query = "RETRIEVE highlight FROM 'race'\nsecond line kept verbatim";
  auto parsed = protocol::ParseRequest(protocol::EncodeRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->session, 7u);
  EXPECT_EQ(parsed->seq, 42u);
  EXPECT_EQ(parsed->query, request.query);

  EXPECT_FALSE(protocol::ParseRequest("no header").ok());
  EXPECT_FALSE(protocol::ParseRequest("Q x y\nquery").ok());
  EXPECT_FALSE(protocol::ParseRequest("Z 1 2\nquery").ok());
}

TEST(ProtocolTest, NumericFieldOverflowIsMalformed) {
  // 2^64 and beyond must be rejected, not silently wrapped modulo 2^64.
  EXPECT_FALSE(protocol::ParseRequest("Q 18446744073709551616 1\nq").ok());
  EXPECT_FALSE(protocol::ParseRequest("Q 1 99999999999999999999\nq").ok());
  EXPECT_FALSE(
      protocol::ParseResponse("OK session=18446744073709551616 seq=1 epoch=1 "
                              "version=1 lsn=1 rows=0\n")
          .ok());
  // UINT64_MAX itself is in range and must still parse exactly.
  auto parsed = protocol::ParseRequest("Q 18446744073709551615 1\nq");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->session, std::numeric_limits<uint64_t>::max());
}

TEST(ProtocolTest, ResponseRoundTrip) {
  protocol::Response response;
  response.ok = true;
  response.session = 3;
  response.seq = 9;
  response.epoch = 4;
  response.version = 17;
  response.lsn = 23;
  model::EventRecord event;
  event.type = "pit stop";  // space must survive escaping
  event.begin_sec = 1.5;
  event.end_sec = 2.5;
  event.confidence = 0.75;
  event.attrs["driver"] = "ALESI";
  response.segments = protocol::EncodeSegments({event});
  response.profile = "server.request\n  query.execute\n";

  auto parsed = protocol::ParseResponse(protocol::EncodeResponse(response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->epoch, 4u);
  EXPECT_EQ(parsed->version, 17u);
  EXPECT_EQ(parsed->lsn, 23u);
  ASSERT_EQ(parsed->segments.size(), 1u);
  EXPECT_EQ(parsed->segments[0], response.segments[0]);
  EXPECT_EQ(parsed->profile, response.profile);
  // The segment line carries exact double bits and escaped fields.
  EXPECT_NE(parsed->segments[0].find("pit%20stop"), std::string::npos);
  EXPECT_NE(parsed->segments[0].find("driver=ALESI"), std::string::npos);

  protocol::Response err;
  err.ok = false;
  err.code = StatusCode::kResourceExhausted;
  err.session = 3;
  err.seq = 10;
  err.message = "server busy: 2 requests in flight (limit 2)";
  auto parsed_err = protocol::ParseResponse(protocol::EncodeResponse(err));
  ASSERT_TRUE(parsed_err.ok());
  EXPECT_FALSE(parsed_err->ok);
  EXPECT_EQ(parsed_err->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(parsed_err->message, err.message);

  EXPECT_FALSE(protocol::ParseResponse("BOGUS x\n").ok());
  EXPECT_FALSE(
      protocol::ParseResponse("OK session=1 seq=2 epoch=3\n").ok());
}

TEST(ProtocolTest, SegmentEncodingIsByteExactOnDoubleBits) {
  model::EventRecord a;
  a.type = "t";
  a.begin_sec = 0.1;  // not exactly representable — decimal text would slip
  a.end_sec = 0.3;
  model::EventRecord b = a;
  EXPECT_EQ(protocol::EncodeSegment(a), protocol::EncodeSegment(b));
  b.end_sec = 0.1 + 0.2;  // != 0.3 in IEEE-754
  EXPECT_NE(protocol::EncodeSegment(a), protocol::EncodeSegment(b));
}

// -- Server fixture --------------------------------------------------------

/// Reusable open/close latch for wedging workers deterministically.
struct Gate {
  Mutex mu;
  CondVar cv;
  bool open COBRA_GUARDED_BY(mu) = false;
  void Open() {
    MutexLock lock(mu);
    open = true;
    cv.NotifyAll();
  }
  void WaitOpen() {
    MutexLock lock(mu);
    while (!open) cv.Wait(lock);
  }
};

/// Collects async responses across worker threads.
struct Collector {
  Mutex mu;
  CondVar cv;
  std::vector<protocol::Response> responses COBRA_GUARDED_BY(mu);
  void Add(protocol::Response response) {
    MutexLock lock(mu);
    responses.push_back(std::move(response));
    cv.NotifyAll();
  }
  void WaitFor(size_t n) {
    MutexLock lock(mu);
    while (responses.size() < n) cv.Wait(lock);
  }
  size_t Count() {
    MutexLock lock(mu);
    return responses.size();
  }
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = videos_.RegisterVideo("race", 5400.0);
    ASSERT_TRUE(id.ok());
    video_ = *id;
    StoreEvent("highlight", 30, 40, {});
    StoreEvent("highlight", 100, 110, {{"driver", "ALESI"}});
    StoreEvent("caption", 102, 106, {{"driver", "ALESI"}});
    StoreEvent("caption", 300, 304, {{"driver", "BUTTON"}});
  }

  void StoreEvent(const std::string& type, double b, double e,
                  std::map<std::string, std::string> attrs) {
    model::EventRecord record;
    record.type = type;
    record.begin_sec = b;
    record.end_sec = e;
    record.attrs = std::move(attrs);
    ASSERT_TRUE(videos_.StoreEvent(video_, record).ok());
  }

  std::unique_ptr<QueryServer> MakeServer(ServerConfig config = {}) {
    return std::make_unique<QueryServer>(&engine_, &videos_, &catalog_,
                                         std::move(config));
  }

  kernel::Catalog catalog_;
  model::VideoCatalog videos_{&catalog_};
  extensions::ExtensionRegistry registry_;
  query::QueryEngine engine_{&videos_, &registry_};
  model::VideoId video_ = 0;
};

// -- Basic serving ---------------------------------------------------------

TEST_F(ServerTest, LocalConnectionServesQueries) {
  auto server = MakeServer();
  LocalConnection conn(server.get());
  auto response = conn.Query("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.segments.size(), 2u);
  EXPECT_GE(response.epoch, 1u);
  EXPECT_EQ(response.session, conn.session());

  // Byte-identical to a direct engine evaluation of the same query.
  auto direct = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(response.segments, protocol::EncodeSegments(direct->segments));

  auto filtered =
      conn.Query("RETRIEVE highlight FROM 'race' WHERE driver = 'alesi'");
  ASSERT_TRUE(filtered.ok);
  ASSERT_EQ(filtered.segments.size(), 1u);

  auto join = conn.Query(
      "RETRIEVE highlight FROM 'race' OVERLAPPING caption WHERE driver = "
      "'ALESI'");
  ASSERT_TRUE(join.ok);
  EXPECT_EQ(join.segments.size(), 1u);
}

TEST_F(ServerTest, SessionLifecycle) {
  auto server = MakeServer();
  const uint64_t session = server->OpenSession();
  EXPECT_TRUE(server->Call(session, 1, "RETRIEVE highlight FROM 'race'").ok);
  ASSERT_TRUE(server->CloseSession(session).ok());
  // Requests on a closed (or never-opened) session are typed errors.
  auto response = server->Call(session, 2, "RETRIEVE highlight FROM 'race'");
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kNotFound);
  EXPECT_EQ(server->CloseSession(session).code(), StatusCode::kNotFound);

  auto stats = server->stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(ServerTest, StorageCommandsAreRejected) {
  auto server = MakeServer();
  LocalConnection conn(server.get());
  auto response = conn.Query("PERSIST INTO '/tmp/nope'");
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kFailedPrecondition);
  auto recover = conn.Query("RECOVER FROM '/tmp/nope'");
  EXPECT_FALSE(recover.ok);
  EXPECT_EQ(recover.code, StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, MalformedFramesAndQueries) {
  auto server = MakeServer();
  // A garbage frame payload yields a parseable ERR response, not a crash.
  auto raw = server->HandleFrame("not a request");
  auto parsed = protocol::ParseResponse(raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->code, StatusCode::kInvalidArgument);

  // Malformed query text: same typed diagnostics as the direct engine.
  LocalConnection conn(server.get());
  auto response = conn.Query("RETRIEVE highlight FROM");
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kInvalidArgument);
  auto direct = engine_.Execute("RETRIEVE highlight FROM");
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(response.message, direct.status().message());
}

TEST_F(ServerTest, VerifyPlanDiagnosticsMatchDirectEngine) {
  auto server = MakeServer();
  LocalConnection conn(server.get());
  for (const char* text :
       {"RETRIEVE highlight FROM 'nope'", "RETRIEVE nosuch FROM 'race'"}) {
    auto via_server = conn.Query(text);
    auto direct = engine_.Execute(text);
    ASSERT_FALSE(via_server.ok);
    ASSERT_FALSE(direct.ok());
    EXPECT_EQ(via_server.code, direct.status().code()) << text;
    EXPECT_EQ(via_server.message, direct.status().message()) << text;
  }
}

// -- Snapshot isolation ----------------------------------------------------

TEST_F(ServerTest, SnapshotEpochAdvancesOnWriteAndReclaims) {
  auto server = MakeServer();
  LocalConnection conn(server.get());

  auto first = conn.Query("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(first.ok);
  auto second = conn.Query("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(second.ok);
  // No write in between: same epoch, no republication.
  EXPECT_EQ(first.epoch, second.epoch);
  EXPECT_EQ(first.version, second.version);

  StoreEvent("highlight", 200, 210, {});
  auto third = conn.Query("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(third.ok);
  EXPECT_GT(third.epoch, second.epoch);
  EXPECT_GT(third.version, second.version);
  EXPECT_EQ(third.segments.size(), 3u);

  auto stats = server->stats();
  EXPECT_EQ(stats.snapshots.published, 2u);
  // The superseded epoch had no pins left: reclaimed.
  EXPECT_EQ(stats.snapshots.reclaimed, 1u);
  EXPECT_EQ(stats.snapshots.live_epochs, 1u);
}

TEST_F(ServerTest, PinnedSnapshotUnaffectedByConcurrentWrite) {
  auto server = MakeServer();
  auto pin = server->snapshots().Acquire();
  const uint64_t pinned_epoch = pin->epoch();

  auto before = engine_.ExecuteSnapshot("RETRIEVE highlight FROM 'race'", *pin);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->segments.size(), 2u);

  StoreEvent("highlight", 200, 210, {});

  // The pinned snapshot still serves the old state, byte-identically...
  auto after = engine_.ExecuteSnapshot("RETRIEVE highlight FROM 'race'", *pin);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(protocol::EncodeSegments(before->segments),
            protocol::EncodeSegments(after->segments));
  // ...while new acquisitions see the write under a later epoch.
  {
    auto fresh = server->snapshots().Acquire();
    EXPECT_GT(fresh->epoch(), pinned_epoch);
    auto live = engine_.ExecuteSnapshot("RETRIEVE highlight FROM 'race'",
                                        *fresh);
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(live->segments.size(), 3u);
    // Both epochs alive: the old one is pinned.
    EXPECT_EQ(server->snapshots().stats().live_epochs, 2u);
  }
  auto stats = server->snapshots().stats();
  EXPECT_EQ(stats.pinned_readers, 1u);
  EXPECT_EQ(stats.oldest_pinned_epoch, pinned_epoch);
}

TEST_F(ServerTest, SnapshotReadsDoNotExtractDynamically) {
  int calls = 0;
  registry_.Register(std::make_unique<extensions::CallbackExtension>(
      "test-extension",
      std::vector<extensions::CallbackExtension::Provided>{
          {"flyout", 1.0, 0.9}},
      [&calls](model::VideoId id, const std::string&,
               model::VideoCatalog* catalog) {
        ++calls;
        model::EventRecord e;
        e.type = "flyout";
        e.begin_sec = 50;
        e.end_sec = 57;
        return catalog->StoreEvent(id, e);
      }));
  auto server = MakeServer();
  LocalConnection conn(server.get());
  // Through the server: typed FailedPrecondition, extension NOT invoked.
  auto response = conn.Query("RETRIEVE flyout FROM 'race'");
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(calls, 0);
  // The live engine path extracts; afterwards the server serves the
  // materialized metadata from the next snapshot.
  ASSERT_TRUE(engine_.Execute("RETRIEVE flyout FROM 'race'").ok());
  EXPECT_EQ(calls, 1);
  auto again = conn.Query("RETRIEVE flyout FROM 'race'");
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.segments.size(), 1u);
  EXPECT_EQ(calls, 1);
}

// -- Admission control -----------------------------------------------------

TEST_F(ServerTest, QueueFullReturnsTypedBusyError) {
  auto gate = std::make_shared<Gate>();
  ServerConfig config;
  config.workers = 1;
  config.max_queue = 1;  // 1 executing + 1 queued
  config.pre_execute_hook = [gate] { gate->WaitOpen(); };
  auto server = MakeServer(config);
  const uint64_t session = server->OpenSession();

  Collector collector;
  auto done = [&collector](protocol::Response r) {
    collector.Add(std::move(r));
  };
  // First request wedges the only worker; second fills the queue slot.
  ASSERT_TRUE(
      server->Submit(session, 1, "RETRIEVE highlight FROM 'race'", done).ok());
  ASSERT_TRUE(
      server->Submit(session, 2, "RETRIEVE highlight FROM 'race'", done).ok());
  // Third submit bounces IMMEDIATELY with the typed busy error — no hang,
  // no blocking on the wedged worker.
  Status busy =
      server->Submit(session, 3, "RETRIEVE highlight FROM 'race'", done);
  EXPECT_EQ(busy.code(), StatusCode::kResourceExhausted);
  // Call() surfaces the same backpressure as an ERR response.
  auto via_call = server->Call(session, 4, "RETRIEVE highlight FROM 'race'");
  EXPECT_FALSE(via_call.ok);
  EXPECT_EQ(via_call.code, StatusCode::kResourceExhausted);

  gate->Open();
  collector.WaitFor(2);
  auto stats = server->stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected_busy, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST_F(ServerTest, ShutdownDrainsInFlightThenRejects) {
  auto gate = std::make_shared<Gate>();
  ServerConfig config;
  config.workers = 2;
  config.max_queue = 8;
  config.pre_execute_hook = [gate] { gate->WaitOpen(); };
  auto server = MakeServer(config);
  const uint64_t session = server->OpenSession();

  Collector collector;
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    ASSERT_TRUE(server
                    ->Submit(session, seq, "RETRIEVE highlight FROM 'race'",
                             [&collector](protocol::Response r) {
                               collector.Add(std::move(r));
                             })
                    .ok());
  }
  // Open the gate from a helper thread, then drain via Shutdown: every
  // admitted request must deliver its response before Shutdown returns.
  std::thread opener([&gate] { gate->Open(); });
  server->Shutdown();
  opener.join();
  EXPECT_EQ(collector.Count(), 4u);

  Status rejected = server->Submit(session, 9, "RETRIEVE highlight FROM 'race'",
                                   [](protocol::Response) {});
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  auto stats = server->stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.rejected_shutdown, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST_F(ServerTest, ShutdownUnderConcurrentSubmitsLosesNothing) {
  // Shutdown racing live Submits: a request admitted before the flag flips
  // may not yet have reached the pool when Shutdown starts. The drain wait
  // must keep the pool alive through that window (no crash under TSAN) and
  // still deliver every admitted request's response before returning.
  ServerConfig config;
  config.workers = 2;
  config.max_queue = 8;
  auto server = MakeServer(config);
  const uint64_t session = server->OpenSession();

  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> responded{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&server, &admitted, &responded, session, t] {
      uint64_t seq = static_cast<uint64_t>(t) << 32;
      for (;;) {
        Status status =
            server->Submit(session, ++seq, "RETRIEVE highlight FROM 'race'",
                           [&responded](protocol::Response) {
                             responded.fetch_add(1, std::memory_order_relaxed);
                           });
        if (status.ok()) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        } else if (status.code() == StatusCode::kUnavailable) {
          return;  // shutdown reached this client
        }
        // ResourceExhausted: backpressure, just retry.
      }
    });
  }
  while (admitted.load(std::memory_order_relaxed) < 64) {
    std::this_thread::yield();
  }
  server->Shutdown();
  for (auto& client : clients) client.join();

  // Every admitted request got its response by the time Shutdown returned;
  // joins only flushed the clients' own bookkeeping.
  EXPECT_EQ(responded.load(), admitted.load());
  auto stats = server->stats();
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.completed + stats.errors, admitted.load());
  EXPECT_GT(stats.rejected_shutdown, 0u);
}

TEST_F(ServerTest, SlowClientDoesNotStarveOtherSessions) {
  auto gate = std::make_shared<Gate>();
  auto wedge_first = std::make_shared<std::atomic<bool>>(true);
  ServerConfig config;
  config.workers = 2;
  config.max_queue = 8;
  // Only the FIRST execution wedges (the slow client); everyone else runs.
  config.pre_execute_hook = [gate, wedge_first] {
    if (wedge_first->exchange(false)) gate->WaitOpen();
  };
  auto server = MakeServer(config);

  const uint64_t slow_session = server->OpenSession();
  Collector slow_done;
  ASSERT_TRUE(server
                  ->Submit(slow_session, 1, "RETRIEVE highlight FROM 'race'",
                           [&slow_done](protocol::Response r) {
                             slow_done.Add(std::move(r));
                           })
                  .ok());

  // Hand-computed bound: workers=2 with exactly one wedged leaves one free
  // worker, so every fast-client Call completes while the slow request is
  // still in flight. 5 sequential Calls would deadlock here if the slow
  // client could starve the pool.
  LocalConnection fast(server.get());
  for (int i = 0; i < 5; ++i) {
    auto response = fast.Query("RETRIEVE highlight FROM 'race'");
    ASSERT_TRUE(response.ok) << response.message;
  }
  EXPECT_GE(server->stats().in_flight, 1u);  // the wedged one
  gate->Open();
  slow_done.WaitFor(1);
  EXPECT_EQ(server->stats().in_flight, 0u);
}

// -- Trace parity ----------------------------------------------------------

/// Strips the per-span timing token ("<seconds>s") so profile texts compare
/// structurally: names, details, row/morsel counters, nesting.
std::string StripTimings(const std::string& profile) {
  static const std::regex kSeconds(" [0-9]+\\.[0-9]{6}s");
  return std::regex_replace(profile, kSeconds, "");
}

TEST_F(ServerTest, ProfileSpanTreeMatchesDirectEngine) {
  // Direct reference: cache disabled, so the direct span shape matches the
  // cache-less snapshot path (no query.cache_lookup span either way).
  engine_.set_cache_capacity(0);
  const std::string text =
      "PROFILE RETRIEVE highlight FROM 'race' OVERLAPPING caption "
      "WHERE driver = 'ALESI'";
  auto direct = engine_.Execute(text);
  ASSERT_TRUE(direct.ok());
  ASSERT_FALSE(direct->profile_text.empty());

  auto server = MakeServer();
  LocalConnection conn(server.get());
  auto response = conn.Query(text);
  ASSERT_TRUE(response.ok) << response.message;
  ASSERT_FALSE(response.profile.empty());

  // Server root span: server.request with serving attributes.
  std::vector<std::string> server_lines;
  {
    std::istringstream in(StripTimings(response.profile));
    std::string line;
    while (std::getline(in, line)) server_lines.push_back(line);
  }
  ASSERT_FALSE(server_lines.empty());
  EXPECT_EQ(server_lines[0].rfind("server.request", 0), 0u);
  EXPECT_NE(
      server_lines[0].find("session=" + std::to_string(conn.session())),
      std::string::npos);
  EXPECT_NE(server_lines[0].find("epoch=" + std::to_string(response.epoch)),
            std::string::npos);
  EXPECT_NE(
      server_lines[0].find("version=" + std::to_string(response.version)),
      std::string::npos);

  // The query.execute subtree under it is line-identical (modulo timings
  // and one indent level) to the direct engine profile.
  std::vector<std::string> direct_lines;
  {
    std::istringstream in(StripTimings(direct->profile_text));
    std::string line;
    while (std::getline(in, line)) direct_lines.push_back(line);
  }
  ASSERT_EQ(server_lines.size(), direct_lines.size() + 1);
  for (size_t i = 0; i < direct_lines.size(); ++i) {
    EXPECT_EQ(server_lines[i + 1], "  " + direct_lines[i]) << "line " << i;
  }
}

// -- EXPLAIN parity ----------------------------------------------------------

// The EXPLAIN report is a static artifact (no timings, nothing executed),
// so parity across surfaces is byte-identity of the whole report: direct
// engine == snapshot surface == LocalConnection == TCP.
TEST_F(ServerTest, ExplainReportsAreByteIdenticalAcrossTransports) {
  const std::string text =
      "EXPLAIN RETRIEVE highlight FROM 'race' WHERE driver = 'nobody'";

  auto direct = engine_.Execute(text);
  ASSERT_TRUE(direct.ok()) << direct.status().message();
  EXPECT_TRUE(direct->segments.empty());
  ASSERT_FALSE(direct->profile_text.empty());
  // No stored highlight has driver=NOBODY: positioned dead-predicate
  // warning, provably-empty verdict.
  EXPECT_NE(direct->profile_text.find("warning: statically dead predicate"),
            std::string::npos)
      << direct->profile_text;
  EXPECT_NE(direct->profile_text.find("provably empty"), std::string::npos);

  auto server = MakeServer();
  auto pin = server->snapshots().Acquire();
  auto snap = engine_.ExecuteSnapshot(text, *pin);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(direct->profile_text, snap->profile_text);
  EXPECT_EQ(direct->profile_json, snap->profile_json);

  LocalConnection conn(server.get());
  auto response = conn.Query(text);
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_TRUE(response.segments.empty());
  EXPECT_EQ(response.profile, direct->profile_text);

  // TCP leg: the same report through a real socket, byte for byte.
  TcpServer tcp(server.get());
  Status started = tcp.Start(0);
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.message();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(tcp.port());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    tcp.Stop();
    GTEST_SKIP() << "loopback connect refused";
  }
  protocol::Request request;
  request.session = 0;
  request.seq = 1;
  request.query = text;
  const std::string frame =
      protocol::EncodeFrame(protocol::EncodeRequest(request));
  ASSERT_EQ(::write(fd, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  protocol::FrameDecoder decoder;
  std::string payload;
  char buf[4096];
  while (!decoder.Next(&payload)) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "connection closed before a response frame";
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  ::close(fd);
  auto tcp_response = protocol::ParseResponse(payload);
  ASSERT_TRUE(tcp_response.ok());
  EXPECT_TRUE(tcp_response->ok) << tcp_response->message;
  EXPECT_TRUE(tcp_response->segments.empty());
  EXPECT_EQ(tcp_response->profile, direct->profile_text);
  tcp.Stop();
}

TEST_F(ServerTest, ExplainNeverExtractsThroughTheServer) {
  int calls = 0;
  registry_.Register(std::make_unique<extensions::CallbackExtension>(
      "test-extension",
      std::vector<extensions::CallbackExtension::Provided>{
          {"flyout", 1.0, 0.9}},
      [&calls](model::VideoId id, const std::string&,
               model::VideoCatalog* catalog) {
        ++calls;
        model::EventRecord e;
        e.type = "flyout";
        e.begin_sec = 50;
        e.end_sec = 57;
        return catalog->StoreEvent(id, e);
      }));
  auto server = MakeServer();
  LocalConnection conn(server.get());
  // EXPLAIN of an unextracted type succeeds (unlike a snapshot RETRIEVE,
  // which is FailedPrecondition) because nothing needs to run: the report
  // defers with an unbounded interval.
  auto response = conn.Query("EXPLAIN RETRIEVE flyout FROM 'race'");
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_EQ(calls, 0);
  EXPECT_NE(response.profile.find("deferred"), std::string::npos);
  EXPECT_NE(response.profile.find("static=[0,*]"), std::string::npos);
}

// -- Seeded isolation violation --------------------------------------------

// The response must describe the ADMISSION-time snapshot. A server built
// with unsafe_unpinned_reads=true stamps that identity but evaluates
// against execution-time state — precisely the defect the consistency
// harness exists to catch. This test proves the detection deterministically
// by forcing a write into the admission/execution window; the stress
// harness (snapshot_stress_test.cc) does the same under full concurrency.
TEST_F(ServerTest, SeededUnpinnedReadBreaksClaimedVersion) {
  for (const bool unsafe : {false, true}) {
    kernel::Catalog catalog;
    model::VideoCatalog videos(&catalog);
    extensions::ExtensionRegistry registry;
    query::QueryEngine engine(&videos, &registry);
    auto id = videos.RegisterVideo("race", 5400.0);
    ASSERT_TRUE(id.ok());
    model::EventRecord seed;
    seed.type = "highlight";
    seed.begin_sec = 30;
    seed.end_sec = 40;
    ASSERT_TRUE(videos.StoreEvent(*id, seed).ok());

    auto mutate_once = std::make_shared<std::atomic<bool>>(true);
    ServerConfig config;
    config.workers = 1;
    config.unsafe_unpinned_reads = unsafe;
    // The write lands between admission (snapshot pinned, identity
    // stamped) and execution.
    config.pre_execute_hook = [mutate_once, &videos, &id] {
      if (mutate_once->exchange(false)) {
        model::EventRecord extra;
        extra.type = "highlight";
        extra.begin_sec = 200;
        extra.end_sec = 210;
        ASSERT_TRUE(videos.StoreEvent(*id, extra).ok());
      }
    };
    QueryServer server(&engine, &videos, &catalog, config);

    // Reference snapshot at the same version the response will claim.
    auto reference = server.snapshots().Acquire();
    LocalConnection conn(&server);
    auto response = conn.Query("RETRIEVE highlight FROM 'race'");
    ASSERT_TRUE(response.ok) << response.message;
    ASSERT_EQ(response.version, reference->event_version());

    auto expected =
        engine.ExecuteSnapshot("RETRIEVE highlight FROM 'race'", *reference);
    ASSERT_TRUE(expected.ok());
    const auto expected_lines = protocol::EncodeSegments(expected->segments);
    if (unsafe) {
      // The seeded defect: claimed version V, data from after V.
      EXPECT_NE(response.segments, expected_lines);
      EXPECT_EQ(response.segments.size(), expected_lines.size() + 1);
    } else {
      // Correct pinning: byte-identical to serial evaluation at V.
      EXPECT_EQ(response.segments, expected_lines);
    }
  }
}

// -- TCP transport smoke test ----------------------------------------------

TEST_F(ServerTest, TcpTransportSmoke) {
  auto server = MakeServer();
  TcpServer tcp(server.get());
  Status started = tcp.Start(0);
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.message();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(tcp.port());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    GTEST_SKIP() << "loopback connect refused";
  }
  protocol::Request request;
  request.session = 0;  // connection-implicit session
  request.seq = 1;
  request.query = "RETRIEVE highlight FROM 'race'";
  const std::string frame =
      protocol::EncodeFrame(protocol::EncodeRequest(request));
  ASSERT_EQ(::write(fd, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));

  protocol::FrameDecoder decoder;
  std::string payload;
  char buf[4096];
  while (!decoder.Next(&payload)) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "connection closed before a response frame";
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  ::close(fd);
  auto response = protocol::ParseResponse(payload);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok) << response->message;
  EXPECT_EQ(response->segments.size(), 2u);
  EXPECT_GE(response->session, 1u);  // rewritten to the implicit session
  tcp.Stop();
}

}  // namespace
}  // namespace cobra::server
