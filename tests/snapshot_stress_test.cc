// The deterministic mixed-workload consistency harness — the headline proof
// of the server's snapshot isolation.
//
// N reader threads issue queries through LocalConnections while one writer
// thread applies a recorded mutation log and a checkpointer thread runs
// PERSIST against a real store. Every response is recorded together with the
// snapshot version it CLAIMS to have been served at. Afterwards the harness
// replays the mutation log serially into a fresh catalog and re-evaluates
// every recorded response at exactly its claimed version: the bytes on the
// wire must be identical to serial evaluation, for every response, or
// isolation is broken.
//
// The harness must also be able to FAIL: a server built with the seeded
// `unsafe_unpinned_reads` defect (stamps the admission-time snapshot
// identity but evaluates against execution-time state) must produce
// mismatches. Mutations are injected between admission and execution via the
// pre-execute hook — drawing from the same ordered log as the writer thread
// — so the defect is exercised deterministically, not by lucky scheduling.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "base/mutex.h"
#include "base/status.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/catalog.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "server/protocol.h"
#include "server/server.h"

namespace cobra::server {
namespace {

// The query mix. Index 0 is the plain scan: every mutation changes its
// result set, so it is the query that is GUARANTEED to catch the seeded
// defect (each reader's first request uses it).
const char* kQueries[] = {
    "RETRIEVE highlight FROM 'race'",
    "RETRIEVE highlight FROM 'race' WHERE driver = 'ALESI'",
    "RETRIEVE highlight FROM 'race' OVERLAPPING caption WHERE driver = "
    "'ALESI'",
};
constexpr size_t kQueryMix = sizeof(kQueries) / sizeof(kQueries[0]);

/// Seeds a catalog with the fixed baseline state. Replay must reproduce the
/// live setup exactly, so both sides call this.
model::VideoId SeedCatalog(model::VideoCatalog* videos) {
  auto id = videos->RegisterVideo("race", 5400.0);
  COBRA_CHECK(id.ok());
  auto store = [&](const char* type, double b, double e,
                   std::map<std::string, std::string> attrs) {
    model::EventRecord record;
    record.type = type;
    record.begin_sec = b;
    record.end_sec = e;
    record.confidence = 0.9;
    record.attrs = std::move(attrs);
    COBRA_CHECK(videos->StoreEvent(*id, record).ok());
  };
  store("highlight", 30, 40, {});
  store("highlight", 100, 110, {{"driver", "ALESI"}});
  store("caption", 102, 106, {{"driver", "ALESI"}});
  store("caption", 300, 304, {{"driver", "BUTTON"}});
  return *id;
}

/// The recorded mutation log: every entry is one StoreEvent, so applying
/// entry k moves the catalog from version V0+k to V0+k+1 — versions map
/// 1:1 onto log prefixes, which is what makes replay-by-version exact.
std::vector<model::EventRecord> BuildMutationLog(size_t n) {
  std::vector<model::EventRecord> log;
  log.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    model::EventRecord e;
    e.type = "highlight";
    e.begin_sec = 1000.0 + 10.0 * static_cast<double>(i);
    e.end_sec = e.begin_sec + 5.0;
    e.confidence = 0.5 + 0.001 * static_cast<double>(i);
    e.attrs["lap"] = std::to_string(i);
    if (i % 3 == 0) e.attrs["driver"] = (i % 2 == 0) ? "ALESI" : "BUTTON";
    log.push_back(std::move(e));
  }
  return log;
}

/// Applies log entries strictly in order, each exactly once, from any
/// thread (writer thread and pre-execute hook share one applier). The lock
/// spans the StoreEvent so catalog version V0+k is ALWAYS the state after
/// precisely the first k log entries.
class MutationApplier {
 public:
  MutationApplier(model::VideoCatalog* videos, model::VideoId video,
                  const std::vector<model::EventRecord>* log)
      : videos_(videos), video_(video), log_(log) {}

  bool ApplyNext() {
    MutexLock lock(mu_);
    if (applied_ >= log_->size()) return false;
    COBRA_CHECK(videos_->StoreEvent(video_, (*log_)[applied_]).ok());
    ++applied_;
    return true;
  }

  size_t applied() {
    MutexLock lock(mu_);
    return applied_;
  }

 private:
  model::VideoCatalog* const videos_;
  const model::VideoId video_;
  const std::vector<model::EventRecord>* const log_;
  Mutex mu_;
  size_t applied_ COBRA_GUARDED_BY(mu_) = 0;
};

/// One recorded response: the query, the snapshot version the server
/// claimed, and the canonical wire bytes of the result.
struct Record {
  std::string query;
  bool ok = false;
  uint64_t version = 0;
  uint64_t epoch = 0;
  std::vector<std::string> segments;
};

struct HarnessResult {
  size_t responses = 0;
  size_t mismatches = 0;
  bool epochs_monotonic = true;
};

/// Runs the mixed workload and replay-verifies every response. Returns the
/// mismatch count: 0 proves isolation; the seeded defect must make it > 0.
HarnessResult RunHarness(bool unsafe_unpinned_reads, bool with_checkpointer,
                         size_t readers, size_t queries_per_reader,
                         size_t mutations) {
  const std::vector<model::EventRecord> log = BuildMutationLog(mutations);

  // -- Live side ----------------------------------------------------------
  kernel::Catalog catalog;
  model::VideoCatalog videos(&catalog);
  extensions::ExtensionRegistry registry;
  query::QueryEngine engine(&videos, &registry);
  const model::VideoId video = SeedCatalog(&videos);
  const uint64_t base_version = videos.event_version();

  MutationApplier applier(&videos, video, &log);
  ServerConfig config;
  config.workers = 4;
  config.max_queue = 64;  // >= readers: blocking Calls are never rejected
  config.unsafe_unpinned_reads = unsafe_unpinned_reads;
  // Every request carries one mutation into the admission/execution window.
  config.pre_execute_hook = [&applier] { (void)applier.ApplyNext(); };
  QueryServer server(&engine, &videos, &catalog, config);

  std::vector<std::vector<Record>> per_reader(readers);
  std::atomic<bool> stop_writer{false};

  std::vector<std::thread> threads;
  threads.reserve(readers + 2);
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      LocalConnection conn(&server);
      for (size_t j = 0; j < queries_per_reader; ++j) {
        const std::string query = kQueries[j % kQueryMix];
        protocol::Response response = conn.Query(query);
        Record record;
        record.query = query;
        record.ok = response.ok;
        record.version = response.version;
        record.epoch = response.epoch;
        record.segments = std::move(response.segments);
        per_reader[r].push_back(std::move(record));
      }
    });
  }
  // The writer races the hook for the same ordered log.
  threads.emplace_back([&] {
    while (!stop_writer.load(std::memory_order_acquire)) {
      if (!applier.ApplyNext()) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  // Unique per process AND per harness run: ctest schedules the tests of
  // this binary as separate concurrent processes, so a shared directory
  // would make two checkpointers collide.
  static std::atomic<int> harness_run{0};
  std::filesystem::path ckpt_dir =
      std::filesystem::path(::testing::TempDir()) /
      ("cobra_snapshot_stress_" + std::to_string(::getpid()) + "_" +
       std::to_string(harness_run.fetch_add(1)));
  if (with_checkpointer) {
    std::filesystem::remove_all(ckpt_dir);
    std::filesystem::create_directories(ckpt_dir);
    threads.emplace_back([&] {
      const std::string persist = "PERSIST INTO '" + ckpt_dir.string() + "'";
      for (int i = 0; i < 5; ++i) {
        auto result = engine.Execute(persist);
        COBRA_CHECK(result.ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  for (size_t r = 0; r < readers; ++r) threads[r].join();
  stop_writer.store(true, std::memory_order_release);
  for (size_t t = readers; t < threads.size(); ++t) threads[t].join();
  server.Shutdown();

  // Drain the log so live and replay sides end at the same final version
  // (not required for verification, but keeps the accounting obvious).
  while (applier.ApplyNext()) {
  }

  // -- Replay side: serial re-evaluation at each claimed version ----------
  HarnessResult out;
  std::vector<Record> all;
  for (auto& reader : per_reader) {
    uint64_t last_epoch = 0;
    for (auto& record : reader) {
      // A session's snapshots must never move backwards in time.
      if (record.epoch < last_epoch) out.epochs_monotonic = false;
      last_epoch = record.epoch;
      all.push_back(std::move(record));
    }
  }
  out.responses = all.size();
  std::sort(all.begin(), all.end(),
            [](const Record& a, const Record& b) {
              return a.version < b.version;
            });

  kernel::Catalog replay_catalog;
  model::VideoCatalog replay_videos(&replay_catalog);
  extensions::ExtensionRegistry replay_registry;
  query::QueryEngine replay_engine(&replay_videos, &replay_registry);
  const model::VideoId replay_video = SeedCatalog(&replay_videos);
  COBRA_CHECK(replay_videos.event_version() == base_version);
  query::SnapshotManager snapshots(&replay_videos, &replay_catalog);

  size_t applied = 0;
  for (const Record& record : all) {
    if (!record.ok || record.version < base_version ||
        record.version > base_version + log.size()) {
      ++out.mismatches;
      continue;
    }
    while (base_version + applied < record.version) {
      COBRA_CHECK(
          replay_videos.StoreEvent(replay_video, log[applied]).ok());
      ++applied;
    }
    auto pin = snapshots.Acquire();
    COBRA_CHECK(pin->event_version() == record.version);
    auto expected = replay_engine.ExecuteSnapshot(record.query, *pin);
    COBRA_CHECK(expected.ok());
    if (record.segments != protocol::EncodeSegments(expected->segments)) {
      ++out.mismatches;
    }
  }
  if (with_checkpointer) std::filesystem::remove_all(ckpt_dir);
  return out;
}

// -- The proof -------------------------------------------------------------

TEST(SnapshotStressTest, MixedWorkloadIsByteIdenticalToSerialReplay) {
  // 8 readers vs. 1 writer + 1 checkpointer, mutations also injected into
  // every admission/execution window by the hook. Every one of the 48
  // responses must match serial evaluation at its claimed version exactly.
  HarnessResult result = RunHarness(/*unsafe_unpinned_reads=*/false,
                                    /*with_checkpointer=*/true,
                                    /*readers=*/8,
                                    /*queries_per_reader=*/6,
                                    /*mutations=*/24);
  EXPECT_EQ(result.responses, 48u);
  EXPECT_EQ(result.mismatches, 0u)
      << "snapshot isolation violated: responses differ from serial "
         "evaluation at their claimed versions";
  EXPECT_TRUE(result.epochs_monotonic);
}

TEST(SnapshotStressTest, HarnessCatchesSeededIsolationDefect) {
  // Same harness, but the server skips epoch pinning (evaluates against
  // execution-time state while stamping admission-time identity). The hook
  // guarantees a mutation lands inside the window of each early request, so
  // the harness MUST report mismatches — if it ever reports 0 here, the
  // harness itself has lost its teeth.
  HarnessResult result = RunHarness(/*unsafe_unpinned_reads=*/true,
                                    /*with_checkpointer=*/false,
                                    /*readers=*/8,
                                    /*queries_per_reader=*/4,
                                    /*mutations=*/16);
  EXPECT_EQ(result.responses, 32u);
  EXPECT_GT(result.mismatches, 0u)
      << "the consistency harness failed to detect the seeded "
         "unpinned-read defect";
}

TEST(SnapshotStressTest, ReadersNeverBlockOnCheckpointingWriter) {
  // Liveness variant: all reads complete while PERSIST checkpoints run.
  // (A reader blocking on the writer would hang this test, which is the
  // assertion — plus the isolation check still holds.)
  HarnessResult result = RunHarness(/*unsafe_unpinned_reads=*/false,
                                    /*with_checkpointer=*/true,
                                    /*readers=*/8,
                                    /*queries_per_reader=*/3,
                                    /*mutations=*/8);
  EXPECT_EQ(result.responses, 24u);
  EXPECT_EQ(result.mismatches, 0u);
}

}  // namespace
}  // namespace cobra::server
