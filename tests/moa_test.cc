#include <gtest/gtest.h>

#include "kernel/catalog.h"
#include "moa/moa.h"

namespace cobra::moa {
namespace {

class MoaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<MoaSession>(&catalog_);
    ClassDef drivers;
    drivers.name = "driver";
    drivers.attributes = {
        {"name", kernel::TailType::kStr},
        {"points", kernel::TailType::kInt},
        {"team", kernel::TailType::kOid},
    };
    ASSERT_TRUE(session_->DefineClass(drivers).ok());
    ClassDef teams;
    teams.name = "team";
    teams.attributes = {{"name", kernel::TailType::kStr}};
    ASSERT_TRUE(session_->DefineClass(teams).ok());
  }

  kernel::Oid AddTeam(const std::string& name) {
    auto oid = session_->NewObject("team");
    EXPECT_TRUE(oid.ok());
    EXPECT_TRUE(session_->SetAttr("team", *oid, "name",
                                  kernel::Value::Str(name)).ok());
    return *oid;
  }

  kernel::Oid AddDriver(const std::string& name, int points,
                        kernel::Oid team) {
    auto oid = session_->NewObject("driver");
    EXPECT_TRUE(oid.ok());
    EXPECT_TRUE(session_->SetAttr("driver", *oid, "name",
                                  kernel::Value::Str(name)).ok());
    EXPECT_TRUE(session_->SetAttr("driver", *oid, "points",
                                  kernel::Value::Int(points)).ok());
    EXPECT_TRUE(session_->SetAttr("driver", *oid, "team",
                                  kernel::Value::OfOid(team)).ok());
    return *oid;
  }

  kernel::Catalog catalog_;
  std::unique_ptr<MoaSession> session_;
};

TEST_F(MoaTest, DefineClassCreatesBats) {
  EXPECT_TRUE(catalog_.Exists("driver.@extent"));
  EXPECT_TRUE(catalog_.Exists("driver.name"));
  EXPECT_FALSE(session_->DefineClass(ClassDef{"driver", {}}).ok());
}

TEST_F(MoaTest, NewObjectGrowsExtent) {
  AddTeam("FERRARI");
  AddTeam("MCLAREN");
  auto extent = session_->Extent("team");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->size(), 2u);
}

TEST_F(MoaTest, GetAttrRoundTrip) {
  auto team = AddTeam("FERRARI");
  auto value = session_->GetAttr("team", team, "name");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsStr(), "FERRARI");
  EXPECT_FALSE(session_->GetAttr("team", team, "missing").ok());
}

TEST_F(MoaTest, SelectEqByString) {
  auto ferrari = AddTeam("FERRARI");
  AddDriver("SCHUMACHER", 100, ferrari);
  AddDriver("HAKKINEN", 80, ferrari);
  auto selected = session_->SelectEq("driver", "name",
                                     kernel::Value::Str("HAKKINEN"));
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 1u);
}

TEST_F(MoaTest, SelectRangeNumeric) {
  auto team = AddTeam("X");
  AddDriver("A", 10, team);
  AddDriver("B", 50, team);
  AddDriver("C", 90, team);
  auto selected = session_->SelectRange("driver", "points", 40, 100);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 2u);
}

TEST_F(MoaTest, ProjectReturnsColumn) {
  auto team = AddTeam("X");
  AddDriver("A", 10, team);
  AddDriver("B", 50, team);
  auto extent = session_->Extent("driver");
  ASSERT_TRUE(extent.ok());
  auto column = session_->Project("driver", *extent, "points");
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column->size(), 2u);
  EXPECT_DOUBLE_EQ(*column->Sum(), 60.0);
}

TEST_F(MoaTest, MapAppliesAdtFunction) {
  auto team = AddTeam("X");
  AddDriver("A", 10, team);
  auto extent = session_->Extent("driver");
  auto column = session_->Project("driver", *extent, "points");
  ASSERT_TRUE(column.ok());
  auto doubled = session_->Map(
      *column, kernel::TailType::kInt,
      [](const kernel::Value& v) { return kernel::Value::Int(v.AsInt() * 2); });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled->IntAt(0), 20);
}

TEST_F(MoaTest, SetOperations) {
  OidSet a{{1, 2, 3}};
  OidSet b{{2, 3, 4}};
  EXPECT_EQ(MoaSession::Intersect(a, b).oids, (std::vector<kernel::Oid>{2, 3}));
  EXPECT_EQ(MoaSession::Union(a, b).oids,
            (std::vector<kernel::Oid>{1, 2, 3, 4}));
  EXPECT_EQ(MoaSession::Minus(a, b).oids, (std::vector<kernel::Oid>{1}));
}

TEST_F(MoaTest, JoinIntoFollowsOidAttribute) {
  auto ferrari = AddTeam("FERRARI");
  auto mclaren = AddTeam("MCLAREN");
  AddDriver("SCHUMACHER", 100, ferrari);
  AddDriver("HAKKINEN", 80, mclaren);
  AddDriver("BARRICHELLO", 60, ferrari);
  auto drivers = session_->Extent("driver");
  auto ferrari_drivers = session_->JoinInto(
      "driver", *drivers, "team", OidSet{{ferrari}});
  ASSERT_TRUE(ferrari_drivers.ok());
  EXPECT_EQ(ferrari_drivers->size(), 2u);
}

TEST_F(MoaTest, Aggregates) {
  auto team = AddTeam("X");
  AddDriver("A", 10, team);
  AddDriver("B", 30, team);
  auto extent = session_->Extent("driver");
  EXPECT_DOUBLE_EQ(*session_->AggregateSum("driver", *extent, "points"), 40.0);
  EXPECT_DOUBLE_EQ(*session_->AggregateMax("driver", *extent, "points"), 30.0);
}

TEST_F(MoaTest, UnknownClassErrors) {
  EXPECT_FALSE(session_->Extent("nope").ok());
  EXPECT_FALSE(session_->NewObject("nope").ok());
  EXPECT_FALSE(session_->SelectEq("nope", "x", kernel::Value::Int(1)).ok());
}

}  // namespace
}  // namespace cobra::moa
