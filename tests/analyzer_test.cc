// Tests for the static pre-execution verifiers: the MIL script analyzer
// (kernel/mil_analyzer.cc), the query-text analyzer, and the plan verifier
// (query/analyzer.cc). The two properties pinned here are the verifier
// contract:
//
//   1. Soundness of rejection — every malformed input (reusing the fuzz
//      corpora from query_test.cc and mil_test.cc) is rejected BEFORE any
//      operator runs, with a diagnostic carrying a 1-based line/column and
//      the StatusCode execution would have failed with.
//   2. Zero false rejections — accept-parity with the interpreter/parser on
//      every valid input (the randomized side of this property runs in
//      differential_test.cc across the full seed range).

#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "base/diag.h"
#include "base/io.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/catalog.h"
#include "kernel/mil.h"
#include "kernel/persist.h"
#include "query/analyzer.h"
#include "query/continuous.h"
#include "query/engine.h"
#include "query/parser.h"
#include "query/snapshot.h"

namespace cobra::kernel {
namespace {

/// First error in a list (fails the test when there is none).
Diagnostic FirstError(const DiagnosticList& diags) {
  for (const Diagnostic& d : diags.diagnostics()) {
    if (d.severity == Diagnostic::Severity::kError) return d;
  }
  ADD_FAILURE() << "no error diagnostic";
  return Diagnostic{};
}

class MilAnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto values = catalog_.Create("values", TailType::kFloat);
    ASSERT_TRUE(values.ok());
    for (int i = 0; i < 10; ++i) {
      (*values)->AppendFloat(static_cast<Oid>(i), i * 0.1);
    }
    auto names = catalog_.Create("names", TailType::kStr);
    ASSERT_TRUE(names.ok());
    (*names)->AppendStr(0, "alpha");
    (*names)->AppendStr(1, "beta");
    ctx_.catalog = &catalog_;
  }

  DiagnosticList Analyze(const std::string& script) {
    return AnalyzeMilScript(script, ctx_);
  }

  Catalog catalog_;
  MilAnalysisContext ctx_;
};

TEST_F(MilAnalyzerTest, ValidScriptsPass) {
  const char* scripts[] = {
      "PRINT 42;",
      "VAR f := bat('values'); PRINT sum(f); PRINT count(f);",
      "VAR hits := select(bat('values'), 0.25, 0.65); PRINT count(hits);",
      "PRINT count(select(bat('names'), 'alpha'));",
      "VAR links := insert(insert(new('oid'), 100, 2), 101, 4);\n"
      "PRINT sum(join(links, bat('values')));",
      "PRINT count(reverse(insert(new('oid'), 7, 3)));\n"
      "PRINT count(mirror(bat('values')));\n"
      "PRINT count(slice(bat('values'), 2, 5));",
      "persist('top', select(bat('values'), 0.75, 1.0));",
      "# comment only\nPRINT 1;  # trailing\n",
      "threadcnt(2); PRINT sum(bat('values'));",
      "trace on; PRINT count(bat('values')); trace dump;",
      "PRINT concat(bat('values'), bat('values'));",
      "PRINT info('values'); PRINT info(bat('names'));",
      "PRINT min(bat('values')); PRINT max(bat('values'));",
      "save 'd1';",
      "save 'd1'; load 'd1';",
  };
  for (const char* script : scripts) {
    DiagnosticList diags = Analyze(script);
    EXPECT_TRUE(diags.ok()) << script << "\n" << diags.ToString("mil");
  }
}

TEST_F(MilAnalyzerTest, UseBeforeDefineHasExactPosition) {
  DiagnosticList diags = Analyze("PRINT nope;");
  ASSERT_FALSE(diags.ok());
  const Diagnostic d = FirstError(diags);
  EXPECT_EQ(d.line, 1);
  EXPECT_EQ(d.col, 7);
  EXPECT_EQ(d.code, StatusCode::kNotFound);
  EXPECT_NE(d.message.find("unknown MIL variable nope"), std::string::npos);
}

TEST_F(MilAnalyzerTest, PositionsTrackLines) {
  DiagnosticList diags = Analyze("PRINT 1;\nPRINT nope;");
  ASSERT_FALSE(diags.ok());
  const Diagnostic d = FirstError(diags);
  EXPECT_EQ(d.line, 2);
  EXPECT_EQ(d.col, 7);
}

// The malformed-script corpus (superset of mil_test's ErrorsAreReported
// inputs): every entry must be rejected statically with a positioned
// diagnostic — and, through MilSession, before anything executes.
TEST_F(MilAnalyzerTest, MalformedCorpusRejectedWithPositions) {
  const char* corpus[] = {
      "PRINT bat('missing');",
      // Stream seal-metadata BATs resolve like any other catalog name: a
      // watch over a stream that was never attached is caught statically.
      "PRINT bat('telemetry.@seals');",
      "PRINT count(bat('values.@seals'));",
      "PRINT frobnicate(1);",
      "PRINT sum(1);",
      "PRINT select(bat('values'));",
      "PRINT 'unterminated;",
      "x := 1;",
      "VAR := 1;",
      "VAR x;",
      "PRINT insert(new('int'), 0, 'x');",
      "PRINT insert(new('str'), 0, 1);",
      "PRINT min(new('dbl'));",
      "PRINT max(new('int'));",
      "trace dump;",
      "trace sideways;",
      "PRINT threadcnt(0);",
      "PRINT threadcnt(1.5);",
      "PRINT new('quux');",
      "check 42;",
      "PRINT .;",
      "PRINT @;",
      "PRINT sum(bat('names'));",
      "PRINT select(bat('values'), 'alpha');",
      "PRINT select(bat('names'), 0, 1);",
      "PRINT count(reverse(bat('values')));",
      "PRINT join(bat('values'), bat('values'));",
      "PRINT concat(bat('values'), bat('names'));",
      "save 42;",
      "load;",
  };
  for (const char* script : corpus) {
    DiagnosticList diags = Analyze(script);
    ASSERT_FALSE(diags.ok()) << script;
    const Diagnostic d = FirstError(diags);
    EXPECT_GE(d.line, 1) << script;
    EXPECT_GE(d.col, 1) << script;
    EXPECT_FALSE(d.message.empty()) << script;
    // The session path must agree (and refuse to execute anything).
    MilSession session(&catalog_);
    EXPECT_FALSE(session.Execute(script).ok()) << script;
  }
}

TEST_F(MilAnalyzerTest, DiagnosticsCarryTheRuntimeStatusCode) {
  EXPECT_EQ(FirstError(Analyze("PRINT bat('missing');")).code,
            StatusCode::kNotFound);
  EXPECT_EQ(FirstError(Analyze("trace dump;")).code,
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(FirstError(Analyze("PRINT min(new('int'));")).code,
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(FirstError(Analyze("PRINT sum(bat('names'));")).code,
            StatusCode::kInvalidArgument);
}

TEST_F(MilAnalyzerTest, MirrorsRuntimeMessages) {
  EXPECT_NE(FirstError(Analyze("PRINT sum(bat('names'));"))
                .message.find("Sum requires a numeric tail"),
            std::string::npos);
  EXPECT_NE(FirstError(Analyze("PRINT select(bat('values'), 'a');"))
                .message.find("SelectStr requires a str tail"),
            std::string::npos);
  EXPECT_NE(FirstError(Analyze("PRINT min(new('int'));"))
                .message.find("Min of empty BAT"),
            std::string::npos);
  // max() delegates to ArgMax internally, so the runtime (and therefore the
  // analyzer) names ArgMax.
  EXPECT_NE(FirstError(Analyze("PRINT max(new('int'));"))
                .message.find("ArgMax of empty BAT"),
            std::string::npos);
  EXPECT_NE(FirstError(Analyze("PRINT new('quux');"))
                .message.find("unknown BAT type quux"),
            std::string::npos);
  EXPECT_NE(FirstError(Analyze("PRINT frobnicate(1);"))
                .message.find("unknown MIL function frobnicate"),
            std::string::npos);
  EXPECT_NE(FirstError(Analyze("PRINT threadcnt(0);"))
                .message.find("threadcnt expects an integer in [1, 1024]"),
            std::string::npos);
  EXPECT_NE(FirstError(Analyze("PRINT bat('missing');"))
                .message.find("no BAT named missing"),
            std::string::npos);
}

TEST_F(MilAnalyzerTest, DeeplyNestedExpressionIsRejected) {
  std::string script = "PRINT ";
  for (int i = 0; i < 500; ++i) script += "mirror(";
  script += "bat('values')";
  for (int i = 0; i < 500; ++i) script += ")";
  script += ";";
  DiagnosticList diags = Analyze(script);
  ASSERT_FALSE(diags.ok());
  EXPECT_NE(FirstError(diags).message.find("nested too deeply"),
            std::string::npos);
}

TEST_F(MilAnalyzerTest, ConservativeOnStaticallyUnknownValues) {
  // Literal tracking flows through variables: this persist name is known,
  // so the binding it creates is visible to the following lookup — and a
  // lookup of anything else is still a (true) rejection.
  EXPECT_TRUE(Analyze("VAR n := 'dyn';\n"
                      "persist(n, bat('values'));\n"
                      "PRINT count(bat('dyn'));")
                  .ok());
  EXPECT_FALSE(Analyze("VAR n := 'dyn';\n"
                       "persist(n, bat('values'));\n"
                       "PRINT count(bat('anything'));")
                   .ok());
  // A persist whose name only exists at runtime (info() output) could create
  // any catalog binding, so later lookups of unknown names must pass.
  EXPECT_TRUE(Analyze("persist(info('values'), bat('values'));\n"
                      "PRINT count(bat('anything'));")
                  .ok());
  // A literal persist introduces the binding for later statements.
  EXPECT_TRUE(Analyze("persist('derived', select(bat('values'), 0.0, 1.0));\n"
                      "PRINT sum(bat('derived'));")
                  .ok());
}

TEST_F(MilAnalyzerTest, SessionVariablesSeedTheAnalysis) {
  std::map<std::string, MilValue> vars;
  vars.emplace("x", 3.0);
  vars.emplace("s", std::string("hello"));
  ctx_.variables = &vars;
  EXPECT_TRUE(Analyze("PRINT x; PRINT s;").ok());
  // A seeded scalar is still a scalar: aggregate calls on it are rejected.
  DiagnosticList diags = Analyze("PRINT sum(x);");
  ASSERT_FALSE(diags.ok());
  EXPECT_NE(FirstError(diags).message.find("expected a BAT"),
            std::string::npos);
}

TEST_F(MilAnalyzerTest, TraceStateMachine) {
  EXPECT_FALSE(Analyze("trace dump;").ok());
  EXPECT_FALSE(Analyze("trace json;").ok());
  EXPECT_TRUE(Analyze("trace on; trace dump;").ok());
  // `off` keeps the sink: a later dump is still legal.
  EXPECT_TRUE(Analyze("trace on; trace off; trace dump;").ok());
  // A sink carried over from a previous Execute satisfies dump.
  ctx_.trace_ready = true;
  EXPECT_TRUE(Analyze("trace dump;").ok());
}

TEST_F(MilAnalyzerTest, StaleSnapshotIsWarningUnlessStrict) {
  const std::string script =
      "VAR v := bat('values');\n"
      "persist('values', slice(v, 0, 2));\n"
      "PRINT count(v);";
  DiagnosticList lax = Analyze(script);
  EXPECT_TRUE(lax.ok());  // warnings only: the engine must not reject this
  EXPECT_GE(lax.warning_count(), 1u);

  ctx_.strict = true;
  DiagnosticList strict = Analyze(script);
  ASSERT_FALSE(strict.ok());
  const Diagnostic d = FirstError(strict);
  EXPECT_EQ(d.code, StatusCode::kFailedPrecondition);
  EXPECT_NE(d.message.find("snapshot"), std::string::npos);
}

TEST_F(MilAnalyzerTest, PersistenceStatements) {
  // With no filesystem in the context the analyzer assumes every store
  // exists (conservative: never a false rejection).
  EXPECT_TRUE(Analyze("load 'anywhere';").ok());

  // With one attached, a load of a missing store is a static NotFound
  // carrying the runtime's exact message...
  io::MemFs fs;
  ctx_.fs = &fs;
  DiagnosticList missing = Analyze("load 'nowhere';");
  ASSERT_FALSE(missing.ok());
  const Diagnostic d = FirstError(missing);
  EXPECT_EQ(d.code, StatusCode::kNotFound);
  EXPECT_NE(d.message.find("no persistent store at nowhere"),
            std::string::npos);

  // ...a save earlier in the same script satisfies the lookup...
  EXPECT_TRUE(Analyze("save 'fresh'; load 'fresh';").ok());

  // ...and so does a store that is really on disk.
  Catalog empty;
  PersistentStore store(&fs, "real");
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Checkpoint(empty).ok());
  EXPECT_TRUE(Analyze("load 'real';").ok());
}

TEST_F(MilAnalyzerTest, CheckpointRequiresAnAttachedDataDir) {
  ::unsetenv("COBRA_DATA_DIR");
  DiagnosticList diags = Analyze("checkpoint;");
  ASSERT_FALSE(diags.ok());
  const Diagnostic d = FirstError(diags);
  EXPECT_EQ(d.code, StatusCode::kFailedPrecondition);
  EXPECT_NE(d.message.find("attached data directory"), std::string::npos);
  ctx_.data_dir_attached = true;
  EXPECT_TRUE(Analyze("checkpoint;").ok());

  // The session agrees at runtime: without a constructor dir (and with the
  // environment variable cleared above) checkpoint has no target.
  MilSession session(&catalog_);
  auto out = session.Execute("checkpoint;");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MilAnalyzerTest, LoadMakesTheCatalogConservative) {
  // After a load the analyzer cannot know the catalog contents, so unknown
  // bat() lookups must pass rather than falsely reject.
  EXPECT_FALSE(Analyze("PRINT count(bat('anything'));").ok());
  EXPECT_TRUE(Analyze("load 'd'; PRINT count(bat('anything'));").ok());

  // Variables bound before the load keep snapshots of the replaced
  // catalog: a warning in engine mode, an error under check/strict.
  const std::string script =
      "VAR v := bat('values');\n"
      "save 'd';\n"
      "load 'd';\n"
      "PRINT count(v);";
  DiagnosticList lax = Analyze(script);
  EXPECT_TRUE(lax.ok()) << lax.ToString("mil");
  EXPECT_GE(lax.warning_count(), 1u);

  ctx_.strict = true;
  DiagnosticList strict = Analyze(script);
  ASSERT_FALSE(strict.ok());
  const Diagnostic d = FirstError(strict);
  EXPECT_EQ(d.code, StatusCode::kFailedPrecondition);
  EXPECT_NE(d.message.find("before load replaced the catalog"),
            std::string::npos);
}

// -- Abstract interpretation: PlanFacts and dead-predicate warnings ---------

class MilFactsTest : public MilAnalyzerTest {
 protected:
  MilAnalysis AnalyzeFacts(const std::string& script) {
    return AnalyzeMilScriptWithFacts(script, ctx_);
  }

  /// First fact for the given operator name (fails when absent).
  PlanFact FactFor(const MilAnalysis& analysis, const std::string& op) {
    for (const PlanFact& f : analysis.facts) {
      if (f.op == op) return f;
    }
    ADD_FAILURE() << "no fact for op " << op;
    return PlanFact{};
  }
};

TEST_F(MilFactsTest, SelectIntervalIsBoundedByTheInput) {
  // 'values' holds 10 rows: the select's output is a subset, so [0, 10].
  MilAnalysis a = AnalyzeFacts("PRINT count(select(bat('values'), 0.0, 1.0));");
  EXPECT_TRUE(a.diags.ok());
  const PlanFact f = FactFor(a, "select");
  EXPECT_EQ(f.rows_lo, 0u);
  EXPECT_EQ(f.rows_hi, 10u);
  EXPECT_FALSE(f.provably_empty);
  EXPECT_GE(f.line, 1);
  EXPECT_GE(f.col, 1);
}

TEST_F(MilFactsTest, HullMissIsProvablyEmptyWithWarning) {
  // Hull of 'values' is [0, 0.9]; the range [5, 9] misses it entirely.
  MilAnalysis a = AnalyzeFacts("PRINT count(select(bat('values'), 5.0, 9.0));");
  EXPECT_TRUE(a.diags.ok());  // a dead predicate is a warning, not an error
  EXPECT_GE(a.diags.warning_count(), 1u);
  bool found = false;
  for (const Diagnostic& d : a.diags.diagnostics()) {
    if (d.message.find("misses the input value hull") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  const PlanFact f = FactFor(a, "select");
  EXPECT_TRUE(f.provably_empty);
  EXPECT_EQ(f.rows_hi, 0u);
}

TEST_F(MilFactsTest, EmptyRangeIsProvablyEmpty) {
  MilAnalysis a = AnalyzeFacts("PRINT count(select(bat('values'), 2.0, 1.0));");
  EXPECT_TRUE(a.diags.ok());
  bool found = false;
  for (const Diagnostic& d : a.diags.diagnostics()) {
    if (d.message.find("never matches") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(FactFor(a, "select").provably_empty);
}

TEST_F(MilFactsTest, DictionaryMissIsProvablyEmpty) {
  // 'names' holds {alpha, beta}: a probe outside the dictionary is dead.
  MilAnalysis a = AnalyzeFacts("PRINT count(select(bat('names'), 'zzz'));");
  EXPECT_TRUE(a.diags.ok());
  bool found = false;
  for (const Diagnostic& d : a.diags.diagnostics()) {
    if (d.message.find("misses the input dictionary") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  const PlanFact f = FactFor(a, "select");
  EXPECT_TRUE(f.provably_empty);
  EXPECT_EQ(f.rows_hi, 0u);
}

TEST_F(MilFactsTest, SingleShardProofCarriesSliceBoundaries) {
  // On a 2-shard grid with unit morsels, rows [0,5) hold 0.0..0.4 and rows
  // [5,10) hold 0.5..0.9: the range [0, 0.05] can only match shard 0.
  ctx_.morsel_rows = 1;
  MilAnalysis a = AnalyzeFacts(
      "shards(2);\nPRINT count(select(bat('values'), 0.0, 0.05));");
  EXPECT_TRUE(a.diags.ok()) << a.diags.ToString("mil");
  const PlanFact f = FactFor(a, "select");
  EXPECT_FALSE(f.provably_empty);
  EXPECT_EQ(f.single_shard, 0);
  EXPECT_EQ(f.single_shard_of, 2u);
  EXPECT_EQ(f.shard_begin, 0u);
  EXPECT_EQ(f.shard_end, 5u);
}

TEST_F(MilFactsTest, ZoneMapGapProvesEmptyAcrossAllShards) {
  // The range [0.42, 0.48] sits inside the global hull [0, 0.9] but in the
  // gap between shard 0's zone map [0, 0.4] and shard 1's [0.5, 0.9] — only
  // the per-shard analysis can prove it dead.
  ctx_.morsel_rows = 1;
  MilAnalysis a = AnalyzeFacts(
      "shards(2);\nPRINT count(select(bat('values'), 0.42, 0.48));");
  EXPECT_TRUE(a.diags.ok());
  bool found = false;
  for (const Diagnostic& d : a.diags.diagnostics()) {
    if (d.message.find("every shard's zone map misses") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(FactFor(a, "select").provably_empty);
}

TEST_F(MilFactsTest, UnsafeNarrowIntervalsSeamHalvesUpperBounds) {
  ctx_.unsafe_narrow_intervals = true;
  MilAnalysis a = AnalyzeFacts("PRINT count(select(bat('values'), 0.0, 1.0));");
  const PlanFact f = FactFor(a, "select");
  EXPECT_EQ(f.rows_hi, 5u);  // 10 halved: deliberately unsound
}

TEST_F(MilFactsTest, FactsAndDiagnosticsMatchThePlainAnalyzer) {
  // AnalyzeMilScript is AnalyzeMilScriptWithFacts minus the facts: the
  // diagnostics must be identical on the same input.
  const char* scripts[] = {
      "PRINT count(select(bat('values'), 5.0, 9.0));",
      "PRINT nope;",
      "VAR f := bat('values'); PRINT sum(f);",
  };
  for (const char* script : scripts) {
    const DiagnosticList plain = AnalyzeMilScript(script, ctx_);
    const MilAnalysis facts = AnalyzeMilScriptWithFacts(script, ctx_);
    EXPECT_EQ(plain.ToString("mil"), facts.diags.ToString("mil")) << script;
  }
}

// Warning corpus for the new diagnostics: every entry must still be
// accepted (warnings never reject) with at least one warning attached.
TEST_F(MilFactsTest, WarningCorpusAcceptedWithWarnings) {
  const char* corpus[] = {
      "PRINT count(select(bat('values'), 5.0, 9.0));",   // hull miss
      "PRINT count(select(bat('values'), 2.0, 1.0));",   // empty range
      "PRINT count(select(bat('names'), 'zzz'));",       // dictionary miss
      "PRINT count(select(new('dbl'), 0.0, 1.0));",      // empty input
      "PRINT count(select(select(bat('values'), 5.0, 9.0), 0.0, 9.0));",
  };
  for (const char* script : corpus) {
    DiagnosticList diags = Analyze(script);
    EXPECT_TRUE(diags.ok()) << script << "\n" << diags.ToString("mil");
    EXPECT_GE(diags.warning_count(), 1u) << script;
    // And the session still executes the script (the rewrites only skip
    // work, never fail it).
    MilSession session(&catalog_);
    EXPECT_TRUE(session.Execute(script).ok()) << script;
  }
}

// Interval-overflow edge corpus: bounds at the INT64 extremes, a -0.0/0.0
// hull boundary, and an all-NaN input hull. Every entry must be accepted,
// warn exactly when the predicate is provably dead, and still execute.
TEST_F(MilFactsTest, IntervalEdgeCorpusStaysSoundAtNumericExtremes) {
  auto nans = catalog_.Create("nans", TailType::kFloat);
  ASSERT_TRUE(nans.ok());
  for (int i = 0; i < 4; ++i) {
    (*nans)->AppendFloat(static_cast<Oid>(i), std::nan(""));
  }

  struct Case {
    const char* script;
    bool dead;  // a provably-dead warning is expected
  };
  const Case corpus[] = {
      // The INT64 extremes contain any hull: selects everything, no warning.
      {"PRINT count(select(bat('values'), -9223372036854775808.0, "
       "9223372036854775807.0));",
       false},
      // A degenerate range at the upper extreme misses the hull entirely.
      {"PRINT count(select(bat('values'), 9223372036854775807.0, "
       "9223372036854775807.0));",
       true},
      // -0.0 == 0.0: the hull starts at 0.0, so this must NOT be flagged.
      {"PRINT count(select(bat('values'), -0.0, 0.0));", false},
      // An all-NaN input has an empty hull: any range select is dead.
      {"PRINT count(select(bat('nans'), 0.0, 1.0));", true},
  };
  for (const Case& c : corpus) {
    DiagnosticList diags = Analyze(c.script);
    EXPECT_TRUE(diags.ok()) << c.script << "\n" << diags.ToString("mil");
    EXPECT_EQ(diags.warning_count() >= 1, c.dead) << c.script;
    if (c.dead) {
      PlanFact fact = FactFor(AnalyzeFacts(c.script), "select");
      EXPECT_TRUE(fact.provably_empty) << c.script;
      EXPECT_EQ(fact.rows_hi, 0u) << c.script;
    }
    MilSession session(&catalog_);
    EXPECT_TRUE(session.Execute(c.script).ok()) << c.script;
  }
}

// -- MilSession integration: the verifier gates execution -------------------

class MilSessionVerifyTest : public MilAnalyzerTest {
 protected:
  void SetUp() override {
    MilAnalyzerTest::SetUp();
    session_ = std::make_unique<MilSession>(&catalog_);
  }
  std::unique_ptr<MilSession> session_;
};

TEST_F(MilSessionVerifyTest, FailingScriptLeavesNoSideEffects) {
  const int threadcnt_before = session_->exec().threadcnt;
  auto out = session_->Execute(
      "VAR a := 1;\n"
      "persist('p1', bat('values'));\n"
      "threadcnt(8);\n"
      "PRINT nope;");
  ASSERT_FALSE(out.ok());
  // The error is positioned at the failing statement (line 4, 'nope').
  EXPECT_EQ(out.status().message().rfind("mil:4:7: error:", 0), 0u);
  // Nothing before it ran: no variable, no persisted BAT, threadcnt intact.
  EXPECT_FALSE(session_->Get("a").ok());
  EXPECT_FALSE(catalog_.Get("p1").ok());
  EXPECT_EQ(session_->exec().threadcnt, threadcnt_before);
}

TEST_F(MilSessionVerifyTest, ErrorMessagesCarryPositionPrefix) {
  auto out = session_->Execute("PRINT 1;\nPRINT sum(bat('names'));");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().message().rfind("mil:2:", 0), 0u);
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MilSessionVerifyTest, TraceStatePersistsAcrossExecutes) {
  ASSERT_TRUE(session_->Execute("trace on;").ok());
  // The analyzer must know the sink survives into the next Execute.
  EXPECT_TRUE(session_->Execute("trace dump;").ok());
}

TEST_F(MilSessionVerifyTest, CheckStatementReportsWithoutExecuting) {
  auto ok = session_->Execute("check 'PRINT 1;';");
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok->find("check: ok"), std::string::npos);

  // Findings inside the checked script are output, not errors of the outer
  // script (EXPLAIN-like semantics), and nothing in it executes.
  auto findings = session_->Execute("check 'persist(\"p2\", nope);';");
  ASSERT_TRUE(findings.ok());
  EXPECT_NE(findings->find("unknown MIL variable nope"), std::string::npos);
  EXPECT_NE(findings->find("mil:1:"), std::string::npos);
  EXPECT_FALSE(catalog_.Get("p2").ok());
}

TEST_F(MilSessionVerifyTest, CheckIsStrictAboutSnapshotHazards) {
  auto out = session_->Execute(
      "check 'VAR x := bat(\"values\"); persist(\"values\", x); "
      "PRINT count(x);';");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("snapshot"), std::string::npos);
  // check only analyzes: the catalog BAT was not replaced.
  auto values = catalog_.Get("values");
  ASSERT_TRUE(values.ok());
  EXPECT_EQ((*values)->size(), 10u);
}

}  // namespace
}  // namespace cobra::kernel

namespace cobra::query {
namespace {

// The valid-query corpus: everything the parser tests accept.
const char* kValidQueries[] = {
    "RETRIEVE highlight FROM 'german-gp'",
    "RETRIEVE caption FROM 'usa-gp' WHERE driver = 'Montoya' AND kind = "
    "'pitstop'",
    "RETRIEVE highlight FROM 'b' OVERLAPPING caption WHERE driver = 'X'",
    "RETRIEVE excited_speech FROM 'b' PREFER COST",
    "retrieve pitstop from 'x' where driver = 'alesi'",
    "PROFILE RETRIEVE highlight FROM 'german-gp'",
    "RETRIEVE h FROM 'x' DURING caption PREFER QUALITY",
    "EXPLAIN RETRIEVE highlight FROM 'german-gp'",
    "explain retrieve caption from 'usa-gp' where driver = 'Montoya'",
    "EXPLAIN RETRIEVE h FROM 'x' DURING caption WHERE kind = 'pitstop'",
    "WATCH RETRIEVE overtaking FROM 'live-gp'",
    "watch retrieve passing from 'x' where driver = 'alesi' window 30s",
    "WATCH RETRIEVE h FROM 'x' DURING caption WINDOW 0.5s",
    "WATCH RETRIEVE h FROM 'x' PREFER COST WINDOW 45S",
};

// The malformed corpus from query_test.cc's MalformedInputCorpus.
const char* kMalformedQueries[] = {
    "PROFILE",
    "PROFILE PROFILE RETRIEVE h FROM 'x'",
    "RETRIEVE",
    "RETRIEVE 'quoted' FROM 'x'",
    "RETRIEVE h FROM",
    "RETRIEVE h FROM =",
    "RETRIEVE h FROM 'x' WHERE",
    "RETRIEVE h FROM 'x' WHERE driver",
    "RETRIEVE h FROM 'x' WHERE driver =",
    "RETRIEVE h FROM 'x' WHERE driver = = 'a'",
    "RETRIEVE h FROM 'x' WHERE driver = 'a' AND",
    "RETRIEVE h FROM 'x' DURING",
    "RETRIEVE h FROM 'x' DURING 'caption'",
    "RETRIEVE h FROM 'x' OVERLAPPING c WHERE",
    "RETRIEVE h FROM 'x' PREFER",
    "RETRIEVE h FROM 'x' PREFER QUALITY COST",
    "RETRIEVE h FROM \"unterminated",
    "RETRIEVE h FROM 'x' WHERE driver = 'unterminated",
    "RETRIEVE h FROM 'x' %",
    "??",
    "EXPLAIN",
    "EXPLAIN EXPLAIN RETRIEVE h FROM 'x'",
    "EXPLAIN PROFILE RETRIEVE h FROM 'x'",
    "PROFILE EXPLAIN RETRIEVE h FROM 'x'",
    "WATCH",
    "WATCH WATCH RETRIEVE h FROM 'x'",
    "WATCH PROFILE RETRIEVE h FROM 'x'",
    "PROFILE WATCH RETRIEVE h FROM 'x'",
    "RETRIEVE h FROM 'x' WINDOW 30s",
    "WATCH RETRIEVE h FROM 'x' WINDOW",
    "WATCH RETRIEVE h FROM 'x' WINDOW 30",
    "WATCH RETRIEVE h FROM 'x' WINDOW -5s",
    "WATCH RETRIEVE h FROM 'x' WINDOW 0s",
    "WATCH RETRIEVE h FROM 'x' WINDOW abcs",
};

TEST(QueryAnalyzerTest, ValidQueriesPass) {
  for (const char* text : kValidQueries) {
    DiagnosticList diags = AnalyzeQueryText(text);
    EXPECT_TRUE(diags.ok()) << text << "\n" << diags.ToString("query");
  }
}

TEST(QueryAnalyzerTest, MalformedCorpusRejectedWithPositions) {
  for (const char* text : kMalformedQueries) {
    DiagnosticList diags = AnalyzeQueryText(text);
    ASSERT_FALSE(diags.ok()) << text;
    ASSERT_FALSE(diags.diagnostics().empty()) << text;
    const Diagnostic& d = diags.diagnostics().front();
    EXPECT_GE(d.line, 1) << text;
    EXPECT_GE(d.col, 1) << text;
    EXPECT_EQ(d.code, StatusCode::kInvalidArgument) << text;
    EXPECT_FALSE(d.message.empty()) << text;
  }
}

// Accept-parity: the analyzer agrees with the parser on every input, and on
// rejections it reproduces the parser's message (plus the position prefix).
TEST(QueryAnalyzerTest, AcceptParityWithParser) {
  auto check = [](const char* text) {
    DiagnosticList diags = AnalyzeQueryText(text);
    auto parsed = ParseQuery(text);
    EXPECT_EQ(diags.ok(), parsed.ok()) << text;
    if (!parsed.ok() && !diags.ok()) {
      const Status status = diags.ToStatus("query");
      EXPECT_EQ(status.code(), parsed.status().code()) << text;
      EXPECT_NE(status.message().find(parsed.status().message()),
                std::string::npos)
          << text << "\n  analyzer: " << status.message()
          << "\n  parser:   " << parsed.status().message();
    }
  };
  for (const char* text : kValidQueries) check(text);
  for (const char* text : kMalformedQueries) check(text);
}

TEST(QueryAnalyzerTest, PositionsAreExact) {
  {
    // Error at end-of-input: one past the last character of line 1.
    DiagnosticList diags = AnalyzeQueryText("RETRIEVE h FROM");
    ASSERT_FALSE(diags.ok());
    EXPECT_EQ(diags.diagnostics().front().line, 1);
    EXPECT_EQ(diags.diagnostics().front().col, 16);
  }
  {
    // Multi-line query: the missing value is reported on line 2.
    DiagnosticList diags =
        AnalyzeQueryText("RETRIEVE h\nFROM 'x' WHERE driver =");
    ASSERT_FALSE(diags.ok());
    EXPECT_EQ(diags.diagnostics().front().line, 2);
    EXPECT_EQ(diags.diagnostics().front().col, 24);
  }
}

TEST(QueryAnalyzerTest, WatchWindowPositionsAreExact) {
  {
    // Missing duration at end-of-input: one past the last character.
    DiagnosticList diags =
        AnalyzeQueryText("WATCH RETRIEVE h FROM 'x' WINDOW");
    ASSERT_FALSE(diags.ok());
    EXPECT_EQ(diags.diagnostics().front().line, 1);
    EXPECT_EQ(diags.diagnostics().front().col, 33);
  }
  {
    // A malformed duration is positioned at ITS token, not at WINDOW.
    DiagnosticList diags =
        AnalyzeQueryText("WATCH RETRIEVE h FROM 'x'\nWINDOW abcs");
    ASSERT_FALSE(diags.ok());
    const Diagnostic& d = diags.diagnostics().front();
    EXPECT_EQ(d.line, 2);
    EXPECT_EQ(d.col, 8);
    EXPECT_NE(d.message.find("window duration"), std::string::npos);
  }
  {
    // Zero is rejected as non-positive, at the duration token.
    DiagnosticList diags =
        AnalyzeQueryText("WATCH RETRIEVE h FROM 'x' WINDOW 0s");
    ASSERT_FALSE(diags.ok());
    const Diagnostic& d = diags.diagnostics().front();
    EXPECT_EQ(d.line, 1);
    EXPECT_EQ(d.col, 34);
    EXPECT_NE(d.message.find("positive"), std::string::npos);
  }
  {
    // WINDOW without WATCH is positioned at the WINDOW keyword.
    DiagnosticList diags =
        AnalyzeQueryText("RETRIEVE h FROM 'x' WINDOW 30s");
    ASSERT_FALSE(diags.ok());
    const Diagnostic& d = diags.diagnostics().front();
    EXPECT_EQ(d.line, 1);
    EXPECT_EQ(d.col, 21);
    EXPECT_NE(d.message.find("WINDOW requires WATCH"), std::string::npos);
  }
}

TEST(QueryAnalyzerTest, WatchFactsCarryWindowAndVideoPosition) {
  const QueryAnalysis analysis = AnalyzeQueryTextWithFacts(
      "WATCH RETRIEVE passing\nFROM 'live-gp' WINDOW 30s");
  ASSERT_TRUE(analysis.diags.ok());
  EXPECT_TRUE(analysis.watch);
  EXPECT_DOUBLE_EQ(analysis.window_sec, 30.0);
  // The video token's position is what the continuous-query registrar
  // blames when the video does not exist.
  EXPECT_EQ(analysis.video_line, 2);
  EXPECT_EQ(analysis.video_col, 6);

  const QueryAnalysis plain =
      AnalyzeQueryTextWithFacts("RETRIEVE passing FROM 'live-gp'");
  ASSERT_TRUE(plain.diags.ok());
  EXPECT_FALSE(plain.watch);
  EXPECT_DOUBLE_EQ(plain.window_sec, 0.0);
}

TEST(QueryAnalyzerTest, WatchOverMissingVideoIsPositioned) {
  // Registration over an empty catalog: the failure is a positioned
  // query:L:C diagnostic at the video token, preserving the model's code.
  kernel::Catalog kcat;
  model::VideoCatalog videos(&kcat);
  extensions::ExtensionRegistry registry;
  QueryEngine engine(&videos, &registry);
  SnapshotManager snapshots(&videos, &kcat);
  ContinuousQueryManager watches(&engine, &snapshots, &kcat);
  auto id = watches.RegisterText("WATCH RETRIEVE passing\nFROM 'ghost-gp'");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kNotFound);
  EXPECT_NE(id.status().message().find("query:2:6: error:"),
            std::string::npos)
      << id.status().message();
  EXPECT_NE(id.status().message().find("no video named ghost-gp"),
            std::string::npos)
      << id.status().message();
}

TEST(QueryAnalyzerTest, AttrSitesCarryPositionsAndNormalizedText) {
  const QueryAnalysis analysis = AnalyzeQueryTextWithFacts(
      "RETRIEVE caption FROM 'x' WHERE Driver = 'Montoya' AND kind = pitstop\n"
      "DURING highlight WHERE lap = '56'");
  ASSERT_TRUE(analysis.diags.ok());
  ASSERT_EQ(analysis.attr_sites.size(), 3u);

  const AttrSite& driver = analysis.attr_sites[0];
  EXPECT_EQ(driver.line, 1);
  EXPECT_EQ(driver.col, 33);  // the attribute token, not the WHERE keyword
  EXPECT_FALSE(driver.secondary);
  EXPECT_EQ(driver.key, "driver");      // lowercased, as the parser stores it
  EXPECT_EQ(driver.value, "MONTOYA");   // uppercased, as the matcher compares

  EXPECT_EQ(analysis.attr_sites[1].key, "kind");
  EXPECT_EQ(analysis.attr_sites[1].value, "PITSTOP");
  EXPECT_FALSE(analysis.attr_sites[1].secondary);

  const AttrSite& lap = analysis.attr_sites[2];
  EXPECT_EQ(lap.line, 2);
  EXPECT_TRUE(lap.secondary);
  EXPECT_EQ(lap.key, "lap");
  EXPECT_EQ(lap.value, "56");
}

TEST(QueryAnalyzerTest, RejectedQueriesYieldNoAttrSites) {
  const QueryAnalysis analysis =
      AnalyzeQueryTextWithFacts("RETRIEVE h FROM 'x' WHERE driver =");
  EXPECT_FALSE(analysis.diags.ok());
  EXPECT_TRUE(analysis.attr_sites.empty());
}

// -- VerifyPlan + engine wiring ---------------------------------------------

class PlanVerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = videos_.RegisterVideo("race", 600.0);
    ASSERT_TRUE(id.ok());
    video_ = *id;
    model::EventRecord record;
    record.type = "highlight";
    record.begin_sec = 30;
    record.end_sec = 40;
    ASSERT_TRUE(videos_.StoreEvent(video_, record).ok());
    record.type = "caption";
    record.begin_sec = 102;
    record.end_sec = 106;
    ASSERT_TRUE(videos_.StoreEvent(video_, record).ok());
  }

  Status Verify(const std::string& text) {
    auto query = ParseQuery(text);
    EXPECT_TRUE(query.ok()) << text;
    if (!query.ok()) return query.status();
    return VerifyPlan(*query, videos_, registry_);
  }

  void RegisterProvider(const std::string& type) {
    registry_.Register(std::make_unique<extensions::CallbackExtension>(
        "provider-" + type,
        std::vector<extensions::CallbackExtension::Provided>{{type, 1.0, 0.9}},
        [type](model::VideoId id, const std::string&,
               model::VideoCatalog* catalog) {
          model::EventRecord e;
          e.type = type;
          e.begin_sec = 50;
          e.end_sec = 57;
          return catalog->StoreEvent(id, e);
        }));
  }

  kernel::Catalog catalog_;
  model::VideoCatalog videos_{&catalog_};
  extensions::ExtensionRegistry registry_;
  model::VideoId video_ = 0;
};

TEST_F(PlanVerifyTest, SatisfiablePlansPass) {
  EXPECT_TRUE(Verify("RETRIEVE highlight FROM 'race'").ok());
  EXPECT_TRUE(
      Verify("RETRIEVE highlight FROM 'race' OVERLAPPING caption").ok());
}

TEST_F(PlanVerifyTest, UnknownVideoIsRejected) {
  const Status status = Verify("RETRIEVE highlight FROM 'nope'");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(PlanVerifyTest, UnsatisfiableEventTypeIsRejected) {
  const Status status = Verify("RETRIEVE flyout FROM 'race'");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find(
                "no metadata and no extraction method for 'flyout'"),
            std::string::npos);
}

TEST_F(PlanVerifyTest, ProviderMakesTypeSatisfiable) {
  RegisterProvider("flyout");
  EXPECT_TRUE(Verify("RETRIEVE flyout FROM 'race'").ok());
}

TEST_F(PlanVerifyTest, SecondaryPatternIsVerifiedToo) {
  const Status status =
      Verify("RETRIEVE highlight FROM 'race' OVERLAPPING flyout");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("'flyout'"), std::string::npos);
  RegisterProvider("flyout");
  EXPECT_TRUE(
      Verify("RETRIEVE highlight FROM 'race' OVERLAPPING flyout").ok());
}

class EngineVerifyTest : public PlanVerifyTest {
 protected:
  QueryEngine engine_{&videos_, &registry_};
};

TEST_F(EngineVerifyTest, SyntaxErrorsCarryPositionPrefix) {
  auto result = engine_.Execute("RETRIEVE h FROM");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message().rfind("query:1:16: error:", 0), 0u);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineVerifyTest, RejectedQueriesNeverTouchTheCache) {
  EXPECT_FALSE(engine_.Execute("RETRIEVE h FROM").ok());
  EXPECT_FALSE(engine_.Execute("RETRIEVE highlight FROM 'nope'").ok());
  EXPECT_FALSE(engine_.Execute("RETRIEVE flyout FROM 'race'").ok());
  const CacheStats stats = engine_.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST_F(EngineVerifyTest, VerifiedQueriesStillExecuteAndCache) {
  auto first = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->segments.size(), 1u);
  auto second = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
}

// -- EXPLAIN: the static-only report ----------------------------------------

TEST_F(EngineVerifyTest, ExplainReportsIntervalsWithoutExecuting) {
  auto result = engine_.Execute("EXPLAIN RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result->segments.empty());  // nothing executed
  EXPECT_FALSE(result->extracted_dynamically);
  EXPECT_NE(result->profile_text.find("explain:"), std::string::npos);
  EXPECT_NE(result->profile_text.find("static=["), std::string::npos);
  EXPECT_NE(result->profile_json.find("\"explain\""), std::string::npos);
  // Static analysis only: the result cache was never touched.
  const CacheStats stats = engine_.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST_F(EngineVerifyTest, ExplainFlagsDeadPredicatesWithPositions) {
  // The stored highlight has no attributes, so driver='Bob' matches no
  // event: the predicate is statically dead, positioned at its attribute
  // token, and the result is provably empty.
  auto result = engine_.Execute(
      "EXPLAIN RETRIEVE highlight FROM 'race' WHERE driver = 'Bob'");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_NE(result->profile_text.find("query:1:46: warning:"),
            std::string::npos)
      << result->profile_text;
  EXPECT_NE(result->profile_text.find("statically dead predicate"),
            std::string::npos);
  EXPECT_NE(result->profile_text.find("provably empty"), std::string::npos);
  EXPECT_NE(result->profile_json.find("\"provably_empty\":true"),
            std::string::npos)
      << result->profile_json;
}

TEST_F(EngineVerifyTest, ExplainDefersUnextractedTypesWithUnboundedInterval) {
  // flyout has a provider but no stored metadata: EXPLAIN must not trigger
  // extraction, so the interval is unbounded and the report says why.
  RegisterProvider("flyout");
  auto result = engine_.Execute("EXPLAIN RETRIEVE flyout FROM 'race'");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_NE(result->profile_text.find("deferred"), std::string::npos);
  EXPECT_NE(result->profile_text.find("static=[0,*]"), std::string::npos)
      << result->profile_text;
  // EXPLAIN never ran the provider: the catalog still has no flyout events.
  EXPECT_FALSE(videos_.HasEvents(video_, "flyout"));
}

TEST_F(EngineVerifyTest, ExplainStillVerifiesThePlan) {
  EXPECT_EQ(engine_.Execute("EXPLAIN RETRIEVE highlight FROM 'nope'")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      engine_.Execute("EXPLAIN RETRIEVE flyout FROM 'race'").status().code(),
      StatusCode::kNotFound);
}

TEST_F(EngineVerifyTest, ExplainIsDeterministic) {
  const char* text =
      "EXPLAIN RETRIEVE highlight FROM 'race' DURING caption WHERE kind = "
      "'pitstop'";
  auto first = engine_.Execute(text);
  auto second = engine_.Execute(text);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->profile_text, second->profile_text);
  EXPECT_EQ(first->profile_json, second->profile_json);
}

}  // namespace
}  // namespace cobra::query
