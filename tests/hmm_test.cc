#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "hmm/hmm.h"
#include "hmm/parallel_eval.h"

namespace cobra::hmm {
namespace {

/// A strongly-identifiable 2-state, 2-symbol model.
Hmm MakeBiasedHmm(double stay = 0.9, double emit = 0.9) {
  Hmm hmm(2, 2);
  EXPECT_TRUE(hmm.SetInitial({0.5, 0.5}).ok());
  EXPECT_TRUE(hmm.SetTransitionRow(0, {stay, 1 - stay}).ok());
  EXPECT_TRUE(hmm.SetTransitionRow(1, {1 - stay, stay}).ok());
  EXPECT_TRUE(hmm.SetEmissionRow(0, {emit, 1 - emit}).ok());
  EXPECT_TRUE(hmm.SetEmissionRow(1, {1 - emit, emit}).ok());
  return hmm;
}

TEST(HmmTest, SingleObservationLikelihood) {
  Hmm hmm = MakeBiasedHmm();
  auto ll = hmm.LogLikelihood({0});
  ASSERT_TRUE(ll.ok());
  // P(o=0) = 0.5*0.9 + 0.5*0.1 = 0.5.
  EXPECT_NEAR(*ll, std::log(0.5), 1e-12);
}

TEST(HmmTest, TwoStepForwardManual) {
  Hmm hmm = MakeBiasedHmm();
  auto ll = hmm.LogLikelihood({0, 0});
  ASSERT_TRUE(ll.ok());
  // alpha1 = (0.45, 0.05); alpha2(s) = sum alpha1 * A * B.
  const double a20 = (0.45 * 0.9 + 0.05 * 0.1) * 0.9;
  const double a21 = (0.45 * 0.1 + 0.05 * 0.9) * 0.1;
  EXPECT_NEAR(*ll, std::log(a20 + a21), 1e-12);
}

TEST(HmmTest, RejectsBadSymbols) {
  Hmm hmm = MakeBiasedHmm();
  EXPECT_FALSE(hmm.LogLikelihood({0, 5}).ok());
  EXPECT_FALSE(hmm.LogLikelihood({-1}).ok());
}

TEST(HmmTest, ViterbiFollowsObservations) {
  Hmm hmm = MakeBiasedHmm();
  auto vit = hmm.Viterbi({0, 0, 0, 1, 1, 1});
  ASSERT_TRUE(vit.ok());
  EXPECT_EQ(vit->path, (std::vector<int>{0, 0, 0, 1, 1, 1}));
}

TEST(HmmTest, ConsistentSequenceMoreLikely) {
  Hmm hmm = MakeBiasedHmm();
  auto consistent = hmm.LogLikelihood({0, 0, 0, 0, 0, 0});
  auto alternating = hmm.LogLikelihood({0, 1, 0, 1, 0, 1});
  ASSERT_TRUE(consistent.ok());
  ASSERT_TRUE(alternating.ok());
  EXPECT_GT(*consistent, *alternating);
}

TEST(HmmTest, BaumWelchImprovesLikelihood) {
  Rng rng(11);
  // Sample training sequences from the biased model.
  Hmm truth = MakeBiasedHmm();
  std::vector<std::vector<int>> sequences;
  for (int s = 0; s < 10; ++s) {
    std::vector<int> obs;
    int state = rng.Bernoulli(0.5) ? 1 : 0;
    for (int t = 0; t < 50; ++t) {
      if (t > 0 && !rng.Bernoulli(0.9)) state = 1 - state;
      obs.push_back(rng.Bernoulli(state == 0 ? 0.9 : 0.1) ? 0 : 1);
    }
    sequences.push_back(std::move(obs));
  }
  Hmm model(2, 2);
  model.Randomize(rng);
  Hmm::TrainOptions opts;
  opts.max_iterations = 1;
  auto ll1 = model.BaumWelch(sequences, opts);
  ASSERT_TRUE(ll1.ok());
  opts.max_iterations = 40;
  auto ll2 = model.BaumWelch(sequences, opts);
  ASSERT_TRUE(ll2.ok());
  EXPECT_GE(*ll2, *ll1 - 1e-6);

  // The learned model should clearly prefer its own data over noise.
  auto own = model.LogLikelihood(sequences[0]);
  ASSERT_TRUE(own.ok());
}

TEST(HmmTest, TrainedModelsDiscriminate) {
  Rng rng(21);
  // Model A prefers symbol 0-runs; model B prefers symbol 1-runs.
  std::vector<std::vector<int>> a_data, b_data;
  for (int s = 0; s < 8; ++s) {
    std::vector<int> a, b;
    for (int t = 0; t < 40; ++t) {
      a.push_back(rng.Bernoulli(0.85) ? 0 : 1);
      b.push_back(rng.Bernoulli(0.85) ? 1 : 0);
    }
    a_data.push_back(std::move(a));
    b_data.push_back(std::move(b));
  }
  Hmm model_a(2, 2), model_b(2, 2);
  model_a.Randomize(rng);
  model_b.Randomize(rng);
  ASSERT_TRUE(model_a.BaumWelch(a_data, {}).ok());
  ASSERT_TRUE(model_b.BaumWelch(b_data, {}).ok());

  ParallelEvaluator evaluator;
  evaluator.AddModel("A", std::move(model_a));
  evaluator.AddModel("B", std::move(model_b));

  auto cls_a = evaluator.Classify(a_data[0]);
  auto cls_b = evaluator.Classify(b_data[0]);
  ASSERT_TRUE(cls_a.ok());
  ASSERT_TRUE(cls_b.ok());
  EXPECT_EQ(*cls_a, "A");
  EXPECT_EQ(*cls_b, "B");
}

TEST(ParallelEvalTest, SerialAndParallelAgree) {
  Rng rng(31);
  ParallelEvaluator evaluator;
  for (int m = 0; m < 6; ++m) {
    Hmm hmm(3, 4);
    hmm.Randomize(rng);
    evaluator.AddModel("m" + std::to_string(m), std::move(hmm));
  }
  std::vector<int> obs;
  for (int t = 0; t < 200; ++t) obs.push_back(static_cast<int>(rng.UniformInt(4u)));
  auto par = evaluator.EvaluateAll(obs, /*parallel=*/true);
  auto ser = evaluator.EvaluateAll(obs, /*parallel=*/false);
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(ser.ok());
  ASSERT_EQ(par->size(), ser->size());
  for (size_t i = 0; i < par->size(); ++i) {
    EXPECT_EQ((*par)[i].first, (*ser)[i].first);
    EXPECT_NEAR((*par)[i].second, (*ser)[i].second, 1e-9);
  }
}

TEST(QuantizeTest, PacksBitsAboveMedians) {
  std::vector<std::vector<double>> features = {
      {0.0, 1.0, 0.0, 1.0},  // bit 0
      {0.0, 0.0, 1.0, 1.0},  // bit 1
  };
  auto symbols = QuantizeFeatures(features);
  ASSERT_EQ(symbols.size(), 4u);
  EXPECT_EQ(symbols[0], 0);
  EXPECT_EQ(symbols[1], 1);
  EXPECT_EQ(symbols[2], 2);
  EXPECT_EQ(symbols[3], 3);
}

TEST(QuantizeTest, EmptyInput) {
  EXPECT_TRUE(QuantizeFeatures({}).empty());
}

}  // namespace
}  // namespace cobra::hmm
