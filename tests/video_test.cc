#include <gtest/gtest.h>

#include "base/rng.h"
#include "image/draw.h"
#include "video/replay.h"
#include "video/shot_detection.h"
#include "video/visual_cues.h"

namespace cobra::video {
namespace {

image::Frame Flat(uint8_t v) { return image::Frame(64, 48, {v, v, v}); }

TEST(ShotDetectionTest, DetectsHardCut) {
  ShotBoundaryDetector detector;
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(detector.Push(Flat(60)));
  EXPECT_TRUE(detector.Push(Flat(200)));
}

TEST(ShotDetectionTest, IgnoresSmallChanges) {
  ShotBoundaryDetector detector;
  Rng rng(3);
  image::Frame frame = Flat(120);
  for (int i = 0; i < 30; ++i) {
    image::Frame noisy = frame;
    image::AddGaussianNoise(noisy, 4.0, rng);
    EXPECT_FALSE(detector.Push(noisy));
  }
}

TEST(ShotDetectionTest, RefractoryPeriodSuppressesDoubleCuts) {
  ShotBoundaryDetector::Options options;
  options.min_shot_frames = 5;
  ShotBoundaryDetector detector(options);
  for (int i = 0; i < 6; ++i) detector.Push(Flat(60));
  EXPECT_TRUE(detector.Push(Flat(200)));
  // Immediate second flash is suppressed.
  EXPECT_FALSE(detector.Push(Flat(60)));
}

TEST(ShotDetectionTest, OfflineHelper) {
  std::vector<image::Frame> frames;
  for (int i = 0; i < 8; ++i) frames.push_back(Flat(50));
  for (int i = 0; i < 8; ++i) frames.push_back(Flat(220));
  auto boundaries = DetectShotBoundaries(frames);
  ASSERT_EQ(boundaries.size(), 1u);
  EXPECT_EQ(boundaries[0], 8u);
}

TEST(ReplayTest, DveStripeTogglesReplay) {
  ReplayDetector detector;
  image::Frame base(160, 48, {100, 100, 100});
  auto dve_frames = [&](int offset) {
    // A bright stripe sweeping across several frames.
    std::vector<image::Frame> frames;
    for (int i = 0; i < 5; ++i) {
      image::Frame f = base;
      image::FillRect(f, offset + i * 20, 0, 18, 48, {250, 250, 250});
      frames.push_back(f);
    }
    return frames;
  };
  // Static lead-in.
  for (int i = 0; i < 20; ++i) detector.Push(base);
  EXPECT_FALSE(detector.in_replay());
  // Opening DVE.
  for (auto& f : dve_frames(0)) detector.Push(f);
  for (int i = 0; i < 3; ++i) detector.Push(base);
  EXPECT_TRUE(detector.in_replay());
  // Quiet replay content.
  for (int i = 0; i < 40; ++i) detector.Push(base);
  EXPECT_TRUE(detector.in_replay());
  // Closing DVE.
  for (auto& f : dve_frames(0)) detector.Push(f);
  for (int i = 0; i < 3; ++i) detector.Push(base);
  EXPECT_FALSE(detector.in_replay());
}

TEST(ReplayTest, UniformMotionIsNotADve) {
  ReplayDetector detector;
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    image::Frame f(160, 48);
    image::FillNoise(f, 0, 255, rng);  // full-frame chaos
    detector.Push(f);
  }
  EXPECT_FALSE(detector.in_replay());
}

TEST(ReplayTest, TimeoutForceCloses) {
  ReplayDetector::Options options;
  options.max_replay_frames = 30;
  ReplayDetector detector(options);
  image::Frame base(160, 48, {100, 100, 100});
  for (int i = 0; i < 20; ++i) detector.Push(base);
  for (int i = 0; i < 5; ++i) {
    image::Frame f = base;
    image::FillRect(f, i * 20, 0, 18, 48, {250, 250, 250});
    detector.Push(f);
  }
  for (int i = 0; i < 40; ++i) detector.Push(base);
  EXPECT_FALSE(detector.in_replay());
}

TEST(VisualAnalyzerTest, SemaphoreCue) {
  VisualAnalyzer analyzer;
  image::Frame a(128, 96, {80, 80, 80});
  image::Frame b = a;
  image::FillRect(b, 40, 8, 30, 8, {225, 30, 28});
  auto features = analyzer.AnalyzeClip(a, b);
  EXPECT_GT(features.semaphore, 0.5);
}

TEST(VisualAnalyzerTest, SandAndDustCues) {
  VisualAnalyzer analyzer;
  image::Frame a(128, 96, {80, 80, 80});
  image::Frame b = a;
  image::FillRect(b, 0, 60, 128, 36, {200, 160, 90});    // sand
  image::FillRect(b, 20, 20, 60, 30, {188, 168, 138});   // dust
  auto features = analyzer.AnalyzeClip(a, b);
  EXPECT_GT(features.sand, 0.5);
  EXPECT_GT(features.dust, 0.5);
}

TEST(VisualAnalyzerTest, MotionRespondsToMovingObject) {
  VisualAnalyzer quiet_analyzer;
  image::Frame a(128, 96, {90, 90, 90});
  image::Frame b = a;
  auto quiet = quiet_analyzer.AnalyzeClip(a, a);
  image::FillRect(b, 30, 40, 24, 12, {235, 235, 235});
  VisualAnalyzer moving_analyzer;
  auto moving = moving_analyzer.AnalyzeClip(a, b);
  EXPECT_GT(moving.motion, quiet.motion + 0.2);
  EXPECT_GT(moving.color_diff, quiet.color_diff);
}

TEST(VisualAnalyzerTest, QuietSceneHasNoCues) {
  VisualAnalyzer analyzer;
  image::Frame a(128, 96, {90, 90, 90});
  auto features = analyzer.AnalyzeClip(a, a);
  EXPECT_EQ(features.semaphore, 0.0);
  EXPECT_LT(features.sand, 0.05);
  EXPECT_LT(features.dust, 0.05);
  EXPECT_LT(features.motion, 0.05);
  EXPECT_EQ(features.replay, 0.0);
}

}  // namespace
}  // namespace cobra::video
