#include <gtest/gtest.h>

#include "base/rng.h"
#include "bayes/serialize.h"
#include "f1/networks.h"

namespace cobra::bayes {
namespace {

TEST(SerializeTest, NetworkRoundTripPreservesPosteriors) {
  BayesianNetwork net;
  const NodeId h = net.AddNode("h", 2, false);
  const NodeId e = net.AddNode("e", 2, true);
  ASSERT_TRUE(net.AddEdge(h, e).ok());
  ASSERT_TRUE(net.Finalize().ok());
  ASSERT_TRUE(net.cpt(h).SetRow(0, {0.3, 0.7}).ok());
  ASSERT_TRUE(net.cpt(e).SetRow(0, {0.9, 0.1}).ok());
  ASSERT_TRUE(net.cpt(e).SetRow(1, {0.2, 0.8}).ok());

  auto restored = DeserializeNetwork(SerializeNetwork(net));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_nodes(), 2);
  EXPECT_EQ(restored->FindNode("h"), h);
  EXPECT_TRUE(restored->is_evidence(restored->FindNode("e")));

  Evidence evidence;
  evidence.hard[e] = 1;
  auto p1 = net.Posterior(h, evidence);
  auto p2 = restored->Posterior(restored->FindNode("h"), evidence);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_NEAR((*p1)[1], (*p2)[1], 1e-9);
}

TEST(SerializeTest, DbnRoundTripPreservesFiltering) {
  // A trained-looking audio DBN with randomized parameters.
  auto dbn_or = cobra::f1::BuildAudioDbn(
      cobra::f1::AudioStructure::kFullyParameterized,
      cobra::f1::TemporalScheme::kFig8);
  ASSERT_TRUE(dbn_or.ok());
  DynamicBayesianNetwork dbn = std::move(*dbn_or);
  Rng rng(99);
  dbn.RandomizeCpts(rng);

  auto restored = DeserializeDbn(SerializeDbn(dbn));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->temporal_arcs().size(), dbn.temporal_arcs().size());
  EXPECT_EQ(restored->num_chain_states(), dbn.num_chain_states());

  // Same evidence sequence -> same filtered posterior.
  const NodeId ea = dbn.slice().FindNode(cobra::f1::kExcitedAnnouncer);
  std::vector<Evidence> sequence(20);
  Rng erng(7);
  for (auto& ev : sequence) {
    for (NodeId n = 0; n < dbn.slice().num_nodes(); ++n) {
      if (dbn.slice().is_evidence(n)) ev.SetBinary(n, erng.Uniform());
    }
  }
  auto f1_result = dbn.Filter(sequence, ea);
  auto f2_result = restored->Filter(sequence, ea);
  ASSERT_TRUE(f1_result.ok());
  ASSERT_TRUE(f2_result.ok());
  for (size_t t = 0; t < sequence.size(); ++t) {
    EXPECT_NEAR(f1_result->query_posterior[t][1],
                f2_result->query_posterior[t][1], 1e-6);
  }
}

TEST(SerializeTest, CatalogStoreLoad) {
  kernel::Catalog catalog;
  ASSERT_TRUE(StoreModel(&catalog, "audio-dbn", "bn 0\ncpt").ok());
  auto loaded = LoadModel(catalog, "audio-dbn");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, "bn 0\ncpt");
  // Overwrite is allowed.
  ASSERT_TRUE(StoreModel(&catalog, "audio-dbn", "v2").ok());
  EXPECT_EQ(*LoadModel(catalog, "audio-dbn"), "v2");
  EXPECT_FALSE(LoadModel(catalog, "missing").ok());
}

TEST(SerializeTest, GarbageRejected) {
  EXPECT_FALSE(DeserializeNetwork("").ok());
  EXPECT_FALSE(DeserializeNetwork("xyz 1 2 3").ok());
  EXPECT_FALSE(DeserializeDbn("bn 0\n").ok());
}

}  // namespace
}  // namespace cobra::bayes
