// End-to-end integration tests over the assembled system: ingest a short
// synthetic race, exercise the query path (dynamic extraction, temporal
// joins, preference-based method selection) and model persistence. These
// run a real (small) broadcast through synthesis, DSP, vision, OCR, DBN
// training and filtering, so they take a few seconds each.

#include <gtest/gtest.h>

#include "bayes/serialize.h"
#include "f1/pipeline.h"
#include "kernel/catalog.h"

namespace cobra::f1 {
namespace {

class F1SystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new F1System();
    F1System::IngestOptions options;
    options.training.em_iterations = 8;
    auto id = system_->IngestRace(RaceProfile::GermanGp(180.0), options);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    video_ = *id;
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  static F1System* system_;
  static model::VideoId video_;
};

F1System* F1SystemTest::system_ = nullptr;
model::VideoId F1SystemTest::video_ = 0;

TEST_F(F1SystemTest, IngestRegistersVideoAndObjects) {
  auto video = system_->videos().FindVideo("german-gp");
  ASSERT_TRUE(video.ok());
  EXPECT_DOUBLE_EQ(video->duration_sec, 180.0);
  auto drivers = system_->videos().Objects(video_, "driver");
  ASSERT_TRUE(drivers.ok());
  EXPECT_GE(drivers->size(), 10u);
  EXPECT_NE(system_->TimelineFor(video_), nullptr);
  EXPECT_NE(system_->EvidenceFor(video_), nullptr);
}

TEST_F(F1SystemTest, DuplicateIngestRejected) {
  F1System::IngestOptions options;
  EXPECT_FALSE(system_->IngestRace(RaceProfile::GermanGp(180.0), options).ok());
}

TEST_F(F1SystemTest, DynamicHighlightExtraction) {
  auto result = system_->Query("RETRIEVE highlight FROM 'german-gp'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->segments.empty());
  // Start should be among the detected highlights (truth start at 25-33 s).
  bool covers_start = false;
  for (const auto& s : result->segments) {
    if (s.begin_sec < 33.0 && s.end_sec > 25.0) covers_start = true;
  }
  EXPECT_TRUE(covers_start);
}

TEST_F(F1SystemTest, TextEventsCarryDriverAttributes) {
  auto result = system_->Query("RETRIEVE caption FROM 'german-gp'");
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->segments.empty());
  bool any_driver = false;
  for (const auto& s : result->segments) {
    if (s.attrs.count("driver") != 0) any_driver = true;
    EXPECT_TRUE(s.attrs.count("text") != 0);
  }
  EXPECT_TRUE(any_driver);
}

TEST_F(F1SystemTest, PreferenceSelectsMethod) {
  // excited_speech has two providers: DBN (quality) and BN (cost).
  ASSERT_TRUE(
      system_->videos().DropEvents(video_, "excited_speech").ok());
  auto cheap =
      system_->Query("RETRIEVE excited_speech FROM 'german-gp' PREFER COST");
  ASSERT_TRUE(cheap.ok());
  ASSERT_EQ(cheap->methods_invoked.size(), 1u);
  EXPECT_EQ(cheap->methods_invoked[0], "audio-bn-extension");

  ASSERT_TRUE(
      system_->videos().DropEvents(video_, "excited_speech").ok());
  auto good = system_->Query(
      "RETRIEVE excited_speech FROM 'german-gp' PREFER QUALITY");
  ASSERT_TRUE(good.ok());
  ASSERT_EQ(good->methods_invoked.size(), 1u);
  EXPECT_EQ(good->methods_invoked[0], "audio-dbn-extension");
}

TEST_F(F1SystemTest, TemporalJoinQuery) {
  auto result = system_->Query(
      "RETRIEVE highlight FROM 'german-gp' OVERLAPPING excited_speech");
  ASSERT_TRUE(result.ok());
  // Subset of all highlights.
  auto all = system_->Query("RETRIEVE highlight FROM 'german-gp'");
  ASSERT_TRUE(all.ok());
  EXPECT_LE(result->segments.size(), all->segments.size());
}

TEST_F(F1SystemTest, RuleDerivedEventsQueryable) {
  auto result = system_->Query("RETRIEVE incident FROM 'german-gp'");
  ASSERT_TRUE(result.ok());  // may be empty on a short race, must not error
}

TEST(PipelineModelPersistence, TrainedDbnSurvivesCatalogRoundTrip) {
  // Train a small audio DBN and store it in a kernel catalog as domain
  // knowledge; a fresh session loads and uses it without retraining.
  RaceTimeline timeline = GenerateTimeline(RaceProfile::GermanGp(180.0));
  EvidenceOptions eopts;
  eopts.extract_video = false;
  RaceEvidence evidence = ExtractEvidence(timeline, eopts);
  TrainingOptions topts;
  topts.train_window_sec = 120.0;
  topts.em_iterations = 8;
  auto dbn = TrainAudioDbn(AudioStructure::kFullyParameterized,
                           TemporalScheme::kFig8, evidence, topts);
  ASSERT_TRUE(dbn.ok());

  kernel::Catalog catalog;
  ASSERT_TRUE(bayes::StoreModel(&catalog, "audio-dbn",
                                bayes::SerializeDbn(*dbn)).ok());
  auto serialized = bayes::LoadModel(catalog, "audio-dbn");
  ASSERT_TRUE(serialized.ok());
  auto restored = bayes::DeserializeDbn(*serialized);
  ASSERT_TRUE(restored.ok());

  auto original_series = InferAudioDbnSeries(*dbn, evidence);
  auto restored_series = InferAudioDbnSeries(*restored, evidence);
  ASSERT_TRUE(original_series.ok());
  ASSERT_TRUE(restored_series.ok());
  ASSERT_EQ(original_series->size(), restored_series->size());
  for (size_t t = 0; t < original_series->size(); t += 50) {
    EXPECT_NEAR((*original_series)[t], (*restored_series)[t], 1e-6);
  }
}

}  // namespace
}  // namespace cobra::f1
