#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "dsp/filter.h"
#include "dsp/spectral.h"
#include "dsp/window.h"

namespace cobra::dsp {
namespace {

std::vector<double> Sine(double freq, double rate, size_t n,
                         double amp = 1.0) {
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = amp * std::sin(2.0 * M_PI * freq * i / rate);
  }
  return out;
}

TEST(FftTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1025), 2048u);
}

TEST(FftTest, DeltaHasFlatSpectrum) {
  std::vector<std::complex<double>> data(8, 0.0);
  data[0] = 1.0;
  Fft(data);
  for (const auto& v : data) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(FftTest, InverseRecovers) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 16; ++i) data.emplace_back(std::sin(i * 0.7), 0.0);
  auto original = data;
  Fft(data);
  Fft(data, /*inverse=*/true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(FftTest, SinePeakAtExpectedBin) {
  const double rate = 1024.0;
  auto sine = Sine(128.0, rate, 1024);
  auto power = PowerSpectrum(sine);
  size_t peak = 0;
  for (size_t k = 1; k < power.size(); ++k) {
    if (power[k] > power[peak]) peak = k;
  }
  EXPECT_EQ(peak, 128u);
}

TEST(FftTest, ParsevalHolds) {
  auto sig = Sine(50.0, 512.0, 512, 0.5);
  double time_energy = 0.0;
  for (double v : sig) time_energy += v * v;
  std::vector<std::complex<double>> data(sig.begin(), sig.end());
  Fft(data);
  double freq_energy = 0.0;
  for (auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(time_energy, freq_energy / 512.0, 1e-9);
}

TEST(WindowTest, HammingEndpoints) {
  auto w = MakeWindow(WindowType::kHamming, 11);
  EXPECT_NEAR(w[0], 0.08, 1e-9);
  EXPECT_NEAR(w[10], 0.08, 1e-9);
  EXPECT_NEAR(w[5], 1.0, 1e-9);
}

TEST(WindowTest, HannZeroEndpoints) {
  auto w = MakeWindow(WindowType::kHann, 9);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[4], 1.0, 1e-12);
}

TEST(WindowTest, RectangularIsOnes) {
  auto w = MakeWindow(WindowType::kRectangular, 5);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(FilterTest, LowPassKeepsLowKillsHigh) {
  const double rate = 8000.0;
  auto filter = FirFilter::BandPass(0.0, 500.0, rate, 101);
  auto low = Sine(100.0, rate, 2000);
  auto high = Sine(3000.0, rate, 2000);
  auto low_out = filter.Apply(low);
  auto high_out = filter.Apply(high);
  double le = 0.0, he = 0.0;
  for (size_t i = 500; i < 1500; ++i) {
    le += low_out[i] * low_out[i];
    he += high_out[i] * high_out[i];
  }
  EXPECT_GT(le, 100.0 * he);
}

TEST(FilterTest, BandPassSelectsBand) {
  const double rate = 22050.0;
  auto filter = FirFilter::BandPass(882.0, 2205.0, rate, 101);
  auto inband = Sine(1500.0, rate, 4000);
  auto below = Sine(200.0, rate, 4000);
  auto above = Sine(6000.0, rate, 4000);
  auto e = [&](const std::vector<double>& s) {
    auto o = filter.Apply(s);
    double acc = 0.0;
    for (size_t i = 1000; i < 3000; ++i) acc += o[i] * o[i];
    return acc;
  };
  EXPECT_GT(e(inband), 20.0 * e(below));
  EXPECT_GT(e(inband), 20.0 * e(above));
}

TEST(FilterTest, ExponentialSmoothConverges) {
  std::vector<double> step(100, 1.0);
  auto out = ExponentialSmooth(step, 0.9);
  EXPECT_LT(out[0], 0.2);
  EXPECT_NEAR(out[99], 1.0, 0.01);
}

TEST(SpectralTest, AutocorrelationPeakAtPeriod) {
  const double rate = 22050.0;
  auto sine = Sine(210.0, rate, 2048);
  const size_t period = static_cast<size_t>(rate / 210.0);
  auto r = Autocorrelation(sine, 400);
  // r[period] should be a strong local peak comparable to r[0].
  EXPECT_GT(r[period], 0.6 * r[0]);
}

TEST(SpectralTest, DctConstantSignal) {
  std::vector<double> flat(16, 2.0);
  auto dct = DctII(flat, 4);
  EXPECT_NEAR(dct[0], 32.0, 1e-9);  // sum of the signal
  EXPECT_NEAR(dct[1], 0.0, 1e-9);
  EXPECT_NEAR(dct[2], 0.0, 1e-9);
}

TEST(SpectralTest, ZeroCrossingRateOfSine) {
  auto sine = Sine(100.0, 1000.0, 1000);
  // 100 Hz at 1 kHz: ~200 crossings in 1000 samples.
  EXPECT_NEAR(ZeroCrossingRate(sine), 0.2, 0.02);
}

TEST(SpectralTest, EntropyLowerForPureTone) {
  auto tone = Sine(100.0, 1024.0, 1024);
  std::vector<double> noise(1024);
  unsigned seed = 12345;
  for (auto& v : noise) {
    seed = seed * 1664525u + 1013904223u;
    v = (static_cast<double>(seed >> 8) / (1 << 24)) - 0.5;
  }
  EXPECT_LT(SpectralEntropy(tone), SpectralEntropy(noise));
}

TEST(SpectralTest, MelScaleRoundTrip) {
  for (double hz : {100.0, 440.0, 1000.0, 4000.0}) {
    EXPECT_NEAR(MelToHz(HzToMel(hz)), hz, 1e-6);
  }
  EXPECT_LT(HzToMel(200.0) - HzToMel(100.0), 200.0);
}

}  // namespace
}  // namespace cobra::dsp
