// The streaming concurrency hammer — run under the tsan preset, this is the
// data-race proof for streaming ingestion with continuous queries attached:
//
//   * concurrent APPENDERS drain one ordered mutation log (serialized by
//     the writer-domain mutex, so catalog version V0+k is always the state
//     after exactly k log entries),
//   * pinned snapshot READERS issue queries through server connections and
//     record the version each response claims,
//   * a CHECKPOINTING writer runs PERSIST against a live store,
//   * WATCH EVALUATION pumps inside the writer domain and drains the
//     notification frames.
//
// Afterwards everything is replay-verified: every recorded response is
// re-evaluated serially at exactly its claimed version and must be
// byte-identical, and the concatenated per-watch notification streams must
// equal the single-pump batch oracle over the final state — the
// incremental-vs-batch invariant, now under maximal interleaving.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "base/io.h"
#include "base/logging.h"
#include "base/mutex.h"
#include "base/strings.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/catalog.h"
#include "query/continuous.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "server/protocol.h"
#include "server/server.h"

namespace cobra::server {
namespace {

const char* kQueries[] = {
    "RETRIEVE highlight FROM 'race'",
    "RETRIEVE highlight FROM 'race' WHERE driver = 'ALESI'",
};
const char* kWatches[] = {
    "WATCH RETRIEVE highlight FROM 'race'",
    "WATCH RETRIEVE highlight FROM 'race' WHERE driver = 'ALESI'",
};

model::VideoId SeedCatalog(model::VideoCatalog* videos) {
  auto id = videos->RegisterVideo("race", 5400.0);
  COBRA_CHECK(id.ok());
  model::EventRecord e;
  e.type = "highlight";
  e.begin_sec = 30;
  e.end_sec = 40;
  COBRA_CHECK(videos->StoreEvent(*id, e).ok());
  e.begin_sec = 100;
  e.end_sec = 110;
  e.attrs["driver"] = "ALESI";
  COBRA_CHECK(videos->StoreEvent(*id, e).ok());
  return *id;
}

std::vector<model::EventRecord> BuildMutationLog(size_t n) {
  std::vector<model::EventRecord> log;
  log.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    model::EventRecord e;
    e.type = "highlight";
    e.begin_sec = 1000.0 + 10.0 * static_cast<double>(i);
    e.end_sec = e.begin_sec + 5.0;
    e.confidence = 0.5 + 0.001 * static_cast<double>(i);
    e.attrs["lap"] = std::to_string(i);
    if (i % 3 == 0) e.attrs["driver"] = (i % 2 == 0) ? "ALESI" : "BUTTON";
    log.push_back(std::move(e));
  }
  return log;
}

/// The writer domain: appenders apply log entries strictly in order under
/// one mutex, and watch pumping runs under the SAME mutex — the documented
/// ContinuousQueryManager contract (the host serializes pumps with its
/// writers; snapshot readers never need the lock).
class WriterDomain {
 public:
  WriterDomain(model::VideoCatalog* videos, model::VideoId video,
               const std::vector<model::EventRecord>* log)
      : videos_(videos), video_(video), log_(log) {}

  bool ApplyNext() {
    MutexLock lock(mu_);
    if (applied_ >= log_->size()) return false;
    COBRA_CHECK(videos_->StoreEvent(video_, (*log_)[applied_]).ok());
    ++applied_;
    return true;
  }

  void Pump(QueryServer* server) {
    MutexLock lock(mu_);
    COBRA_CHECK(server->PumpWatches().ok());
  }

 private:
  model::VideoCatalog* const videos_;
  const model::VideoId video_;
  const std::vector<model::EventRecord>* const log_;
  Mutex mu_;
  size_t applied_ COBRA_GUARDED_BY(mu_) = 0;
};

struct Record {
  std::string query;
  uint64_t version = 0;
  std::vector<std::string> segments;
};

TEST(StreamHammerTest, AppendersReadersCheckpointerAndWatchesRaceSafely) {
  constexpr size_t kReaders = 4;
  constexpr size_t kAppenders = 2;
  constexpr size_t kQueriesPerReader = 40;
  constexpr size_t kMutations = 60;
  const std::vector<model::EventRecord> log = BuildMutationLog(kMutations);

  io::MemFs fs;
  kernel::Catalog catalog;
  model::VideoCatalog videos(&catalog);
  extensions::ExtensionRegistry registry;
  query::QueryEngine engine(&videos, &registry, "hammer");
  engine.set_fs(&fs);
  const model::VideoId video = SeedCatalog(&videos);
  const uint64_t base_version = videos.event_version();

  ServerConfig config;
  config.workers = 4;
  config.max_queue = 64;
  QueryServer server(&engine, &videos, &catalog, config);

  // The watch session registers before any concurrency starts; its ids are
  // the protocol handles the notification frames carry.
  LocalConnection watch_conn(&server);
  std::vector<uint64_t> watch_ids;
  for (const char* text : kWatches) {
    protocol::Response response = watch_conn.Query(text);
    ASSERT_TRUE(response.ok) << response.message;
    ASSERT_GT(response.watch, 0u);
    watch_ids.push_back(response.watch);
  }

  WriterDomain domain(&videos, video, &log);
  std::vector<std::vector<Record>> per_reader(kReaders);
  std::atomic<bool> readers_done{false};
  std::vector<protocol::Notification> notifications;

  std::vector<std::thread> threads;
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      LocalConnection conn(&server);
      for (size_t j = 0; j < kQueriesPerReader; ++j) {
        const std::string query = kQueries[j % 2];
        protocol::Response response = conn.Query(query);
        COBRA_CHECK(response.ok);
        Record record;
        record.query = query;
        record.version = response.version;
        record.segments = std::move(response.segments);
        per_reader[r].push_back(std::move(record));
      }
    });
  }
  for (size_t a = 0; a < kAppenders; ++a) {
    threads.emplace_back([&] {
      while (domain.ApplyNext()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }
  // Watch evaluation races the readers and checkpointer, serialized only
  // against the appenders (the writer domain).
  threads.emplace_back([&] {
    while (!readers_done.load(std::memory_order_acquire)) {
      domain.Pump(&server);
      for (protocol::Notification& n : watch_conn.TakeNotifications()) {
        notifications.push_back(std::move(n));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 5; ++i) {
      COBRA_CHECK(engine.Execute("PERSIST").ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (size_t r = 0; r < kReaders; ++r) threads[r].join();
  readers_done.store(true, std::memory_order_release);
  for (size_t t = kReaders; t < threads.size(); ++t) threads[t].join();

  // Drain: finish the log, then one final pump flushes every remaining
  // notification.
  while (domain.ApplyNext()) {
  }
  domain.Pump(&server);
  for (protocol::Notification& n : watch_conn.TakeNotifications()) {
    notifications.push_back(std::move(n));
  }
  server.Shutdown();

  // -- Replay verification: responses -------------------------------------
  std::vector<Record> all;
  for (auto& reader : per_reader) {
    for (auto& record : reader) all.push_back(std::move(record));
  }
  ASSERT_EQ(all.size(), kReaders * kQueriesPerReader);
  std::sort(all.begin(), all.end(), [](const Record& a, const Record& b) {
    return a.version < b.version;
  });

  kernel::Catalog replay_catalog;
  model::VideoCatalog replay_videos(&replay_catalog);
  extensions::ExtensionRegistry replay_registry;
  query::QueryEngine replay_engine(&replay_videos, &replay_registry);
  const model::VideoId replay_video = SeedCatalog(&replay_videos);
  ASSERT_EQ(replay_videos.event_version(), base_version);
  query::SnapshotManager snapshots(&replay_videos, &replay_catalog);

  size_t applied = 0;
  size_t mismatches = 0;
  for (const Record& record : all) {
    ASSERT_GE(record.version, base_version);
    ASSERT_LE(record.version, base_version + log.size());
    while (base_version + applied < record.version) {
      ASSERT_TRUE(
          replay_videos.StoreEvent(replay_video, log[applied]).ok());
      ++applied;
    }
    auto pin = snapshots.Acquire();
    ASSERT_EQ(pin->event_version(), record.version);
    auto expected = replay_engine.ExecuteSnapshot(record.query, *pin);
    ASSERT_TRUE(expected.ok());
    if (record.segments != protocol::EncodeSegments(expected->segments)) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u) << "a racing read served non-snapshot bytes";

  // -- Replay verification: notification streams ---------------------------
  // Per-watch streams, each seq gap-free from 1.
  std::map<uint64_t, std::string> streams;
  std::map<uint64_t, uint64_t> last_seq;
  for (const protocol::Notification& n : notifications) {
    EXPECT_EQ(n.seq, last_seq[n.watch] + 1);
    last_seq[n.watch] = n.seq;
    streams[n.watch] +=
        StrFormat("seq=%llu %s\n", static_cast<unsigned long long>(n.seq),
                  n.segment.c_str());
  }
  ASSERT_EQ(streams.size(), watch_ids.size());

  // The batch oracle: same watches over the FINAL state, one pump. The
  // incremental streams the hammer delivered must match byte for byte.
  while (base_version + applied < base_version + log.size()) {
    ASSERT_TRUE(replay_videos.StoreEvent(replay_video, log[applied]).ok());
    ++applied;
  }
  query::ContinuousQueryManager oracle(&replay_engine, &snapshots,
                                       &replay_catalog);
  std::map<uint64_t, uint64_t> oracle_ids;  // oracle watch id -> live id
  for (size_t i = 0; i < watch_ids.size(); ++i) {
    auto id = oracle.RegisterText(kWatches[i]);
    ASSERT_TRUE(id.ok());
    oracle_ids[*id] = watch_ids[i];
  }
  std::vector<query::WatchNotification> batch;
  ASSERT_TRUE(oracle.Pump(&batch).ok());
  std::map<uint64_t, std::string> oracle_streams;
  for (const query::WatchNotification& n : batch) {
    oracle_streams[oracle_ids.at(n.watch_id)] +=
        StrFormat("seq=%llu %s\n", static_cast<unsigned long long>(n.seq),
                  protocol::EncodeSegment(n.segment).c_str());
  }
  for (const uint64_t id : watch_ids) {
    EXPECT_FALSE(oracle_streams[id].empty());
    EXPECT_EQ(streams[id], oracle_streams[id]) << "watch " << id;
  }
}

}  // namespace
}  // namespace cobra::server
