// Crash-safety proofs for the persistence layer (snapshot + WAL), driven by
// the deterministic FaultFs shim:
//
//   * round-trip tests — snapshot, WAL replay, fallback to the previous
//     generation, fail-stop discipline after a WAL error
//   * an exhaustive crash-point matrix — for EVERY k, fail the k-th write /
//     sync / rename (and torn-write the k-th append) of a fixed workload,
//     simulate the machine dying, and assert recovery restores exactly the
//     state before or after the interrupted mutation — never a torn hybrid
//   * a short-read sweep — a prefix-truncated read of any snapshot or WAL
//     file during recovery still yields some committed workload state, and a
//     clean re-recovery converges to the final one
//   * MIL save/load/checkpoint and engine PERSIST/RECOVER integration, the
//     video-model state round-trip, and the TSAN reader/writer hammer over
//     the result cache while a writer checkpoints and appends
//
// State equality is PersistentStore::DumpCatalog: two catalogs with equal
// dumps are byte-identical for every kernel operation.

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/io.h"
#include "base/logging.h"
#include "base/rng.h"
#include "base/strings.h"
#include "base/trace.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/mil.h"
#include "kernel/persist.h"
#include "query/engine.h"
#include "query/snapshot.h"

namespace cobra {
namespace {

using kernel::Bat;
using kernel::Catalog;
using kernel::Oid;
using kernel::PersistentStore;
using kernel::TailType;
using kernel::Value;
using Mode = io::FaultFs::FaultPlan::Mode;

constexpr char kDir[] = "store";

std::string Dump(const Catalog& catalog) {
  return PersistentStore::DumpCatalog(catalog);
}

// ---------------------------------------------------------------------------
// The deterministic workload: a fixed op sequence covering every WAL record
// kind (create of all four tail types, appends including duplicate/empty
// strings and -0.0/NaN floats, rename, drop, event-version, full-BAT put),
// plus two checkpoints whose snapshots span multiple pages (a >64 KiB
// string rides in the bulk BAT). Each op WAL-logs first — the commit point
// — and applies to the live catalog only when the log record landed.

using WorkloadOp = std::function<Status(PersistentStore&, Catalog&)>;

WorkloadOp CreateOp(const std::string& name, TailType type) {
  return [name, type](PersistentStore& store, Catalog& cat) -> Status {
    COBRA_RETURN_IF_ERROR(store.LogCreate(name, type));
    return cat.Create(name, type).status();
  };
}

WorkloadOp AppendOp(const std::string& name, Oid head, const Value& tail) {
  return [name, head, tail](PersistentStore& store, Catalog& cat) -> Status {
    COBRA_RETURN_IF_ERROR(store.LogAppend(name, head, tail));
    COBRA_ASSIGN_OR_RETURN(Bat * bat, cat.Get(name));
    return bat->Append(head, tail);
  };
}

WorkloadOp RenameOp(const std::string& from, const std::string& to) {
  return [from, to](PersistentStore& store, Catalog& cat) -> Status {
    COBRA_RETURN_IF_ERROR(store.LogRename(from, to));
    return cat.Rename(from, to);
  };
}

WorkloadOp DropOp(const std::string& name) {
  return [name](PersistentStore& store, Catalog& cat) -> Status {
    COBRA_RETURN_IF_ERROR(store.LogDrop(name));
    return cat.Drop(name);
  };
}

WorkloadOp EventVersionOp(uint64_t version) {
  return [version](PersistentStore& store, Catalog&) -> Status {
    return store.LogEventVersion(version);
  };
}

WorkloadOp PutOp(const std::string& name, const Bat& image) {
  return [name, image](PersistentStore& store, Catalog& cat) -> Status {
    COBRA_RETURN_IF_ERROR(store.LogPut(name, image));
    cat.Put(name, image);
    return Status::OK();
  };
}

WorkloadOp CheckpointOp(const std::string& extra) {
  return [extra](PersistentStore& store, Catalog& cat) -> Status {
    return store.Checkpoint(cat, extra);
  };
}

Bat BulkStrBat() {
  Bat bat(TailType::kStr);
  bat.AppendStr(1, std::string(70 * 1024, 'x'));  // forces multi-page pages
  bat.AppendStr(2, "");
  for (Oid i = 3; i < 40; ++i) {
    bat.AppendStr(i, i % 2 == 0 ? "dup-even" : "dup-odd");
  }
  return bat;
}

std::vector<WorkloadOp> BuildWorkload() {
  std::vector<WorkloadOp> ops;
  ops.push_back(CreateOp("ints", TailType::kInt));
  ops.push_back(CreateOp("strs", TailType::kStr));
  ops.push_back(CreateOp("floats", TailType::kFloat));
  ops.push_back(CreateOp("oids", TailType::kOid));
  ops.push_back(AppendOp("ints", 1, Value::Int(42)));
  ops.push_back(AppendOp("ints", 2, Value::Int(-7)));
  ops.push_back(AppendOp("strs", 1, Value::Str("alpha")));
  ops.push_back(AppendOp("strs", 2, Value::Str("")));
  ops.push_back(AppendOp("strs", 3, Value::Str("alpha")));
  ops.push_back(AppendOp("floats", 1, Value::Float(-0.0)));
  ops.push_back(AppendOp("floats", 2, Value::Float(std::nan(""))));
  ops.push_back(AppendOp("oids", 1, Value::OfOid(99)));
  ops.push_back(EventVersionOp(1));
  ops.push_back(CheckpointOp("model-state-1"));
  ops.push_back(PutOp("bulk", BulkStrBat()));
  ops.push_back(AppendOp("ints", 3, Value::Int(1000000)));
  ops.push_back(RenameOp("ints", "laps"));
  ops.push_back(DropOp("floats"));
  ops.push_back(CheckpointOp("model-state-2"));
  // Logged after the last checkpoint, so recovery must surface it from the
  // WAL (pre-checkpoint bumps ride inside the snapshot's extra payload).
  ops.push_back(EventVersionOp(2));
  ops.push_back(CreateOp("post", TailType::kStr));
  ops.push_back(AppendOp("post", 1, Value::Str("tail")));
  return ops;
}

/// Runs the workload against a fresh store+catalog on `fs`, stopping at the
/// first failing op. Returns that op's 1-based index, or 0 when all ran.
/// When `dumps` is non-null, records the catalog image before any op and
/// after each one: dumps[j] is the state with exactly j ops applied.
size_t RunWorkload(io::Fs* fs, const std::vector<WorkloadOp>& ops,
                   std::vector<std::string>* dumps) {
  PersistentStore store(fs, kDir);
  if (!store.Open().ok()) return 1;
  Catalog catalog;
  if (dumps != nullptr) dumps->push_back(Dump(catalog));
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i](store, catalog).ok()) return i + 1;
    if (dumps != nullptr) dumps->push_back(Dump(catalog));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(PersistTest, SnapshotAndWalRoundTrip) {
  io::MemFs fs;
  const std::vector<WorkloadOp> ops = BuildWorkload();
  std::vector<std::string> dumps;
  ASSERT_EQ(RunWorkload(&fs, ops, &dumps), 0u);

  Catalog recovered;
  PersistentStore reader(&fs, kDir);
  auto info = reader.Recover(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_EQ(Dump(recovered), dumps.back());
  EXPECT_FALSE(info->used_fallback_snapshot);
  // The last checkpoint's extra payload is the one recovery hands back,
  // and the WAL bumped the event version after it was taken.
  EXPECT_EQ(info->extra, "model-state-2");
  EXPECT_EQ(info->event_version, 2u);
  // Only the records after the last checkpoint replay.
  EXPECT_EQ(info->wal_records_applied, 3u);
  EXPECT_EQ(info->bat_count, recovered.Names().size());

  // Recovery is idempotent: a second pass lands on the same image.
  Catalog again;
  PersistentStore reader2(&fs, kDir);
  ASSERT_TRUE(reader2.Recover(&again).ok());
  EXPECT_EQ(Dump(again), dumps.back());
}

TEST(PersistTest, WalOnlyRecoveryReplaysFromGenesis) {
  // No checkpoint ever ran: wal-0 alone must rebuild the catalog.
  io::MemFs fs;
  Catalog catalog;
  PersistentStore store(&fs, kDir);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(CreateOp("ints", TailType::kInt)(store, catalog).ok());
  ASSERT_TRUE(AppendOp("ints", 7, Value::Int(7))(store, catalog).ok());

  Catalog recovered;
  PersistentStore reader(&fs, kDir);
  auto info = reader.Recover(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_EQ(info->wal_records_applied, 2u);
  EXPECT_EQ(Dump(recovered), Dump(catalog));
}

TEST(PersistTest, RecoverWithoutStoreIsNotFound) {
  io::MemFs fs;
  EXPECT_FALSE(PersistentStore::Exists(fs, "nothing"));
  Catalog catalog;
  PersistentStore store(&fs, "nothing");
  auto info = store.Recover(&catalog);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kNotFound);
}

TEST(PersistTest, FallbackToPreviousSnapshotWhenNewestIsCorrupt) {
  io::MemFs fs;
  const std::vector<WorkloadOp> ops = BuildWorkload();
  std::vector<std::string> dumps;
  ASSERT_EQ(RunWorkload(&fs, ops, &dumps), 0u);

  // Scribble over the newest snapshot. The previous generation plus the
  // retained WAL chain must replay to the exact same final state.
  auto names = fs.ListDir(kDir);
  ASSERT_TRUE(names.ok());
  std::string newest;
  for (const std::string& name : names.value()) {
    if (name.rfind("snapshot-", 0) == 0 && name > newest) newest = name;
  }
  ASSERT_FALSE(newest.empty());
  {
    auto file = fs.NewWritableFile(std::string(kDir) + "/" + newest,
                                   /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("not a snapshot").ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }

  Catalog recovered;
  PersistentStore reader(&fs, kDir);
  auto info = reader.Recover(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_TRUE(info->used_fallback_snapshot);
  EXPECT_EQ(info->extra, "model-state-1");
  EXPECT_EQ(Dump(recovered), dumps.back());

  // The provably corrupt newer snapshot was deleted, so a later recovery
  // cannot regress to it.
  names = fs.ListDir(kDir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : names.value()) EXPECT_NE(name, newest);
}

TEST(PersistTest, BackToBackCheckpointsKeepTwoGenerations) {
  // Data-plane-only churn (Catalog::Put with no WAL record) leaves the LSN
  // where it was; the second checkpoint must still get a fresh generation —
  // by burning a no-op WAL record — or it would overwrite the first
  // snapshot's file in place and collapse the two-generation fallback.
  io::MemFs fs;
  Catalog catalog;
  PersistentStore store(&fs, kDir);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.LogCreate("a", TailType::kInt).ok());
  ASSERT_TRUE(catalog.Create("a", TailType::kInt).ok());
  ASSERT_TRUE(store.Checkpoint(catalog, "one").ok());
  const std::string first_state = Dump(catalog);

  catalog.Put("b", BulkStrBat());  // unlogged: the LSN does not move
  ASSERT_TRUE(store.Checkpoint(catalog, "two").ok());
  const std::string second_state = Dump(catalog);
  EXPECT_EQ(store.Stats().snapshot_files, 2u);

  // Clean recovery lands on the second checkpoint.
  {
    Catalog recovered;
    PersistentStore reader(&fs, kDir);
    auto info = reader.Recover(&recovered);
    ASSERT_TRUE(info.ok()) << info.status().message();
    EXPECT_FALSE(info->used_fallback_snapshot);
    EXPECT_EQ(info->extra, "two");
    EXPECT_EQ(Dump(recovered), second_state);
  }

  // And when the newest snapshot is corrupt, the first generation is still
  // there to fall back to — the guarantee the collision would have broken.
  auto names = fs.ListDir(kDir);
  ASSERT_TRUE(names.ok());
  std::string newest;
  for (const std::string& name : names.value()) {
    if (name.rfind("snapshot-", 0) == 0 && name > newest) newest = name;
  }
  ASSERT_FALSE(newest.empty());
  {
    auto file = fs.NewWritableFile(std::string(kDir) + "/" + newest,
                                   /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("scribble").ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  Catalog recovered;
  PersistentStore reader(&fs, kDir);
  auto info = reader.Recover(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_TRUE(info->used_fallback_snapshot);
  EXPECT_EQ(info->extra, "one");
  EXPECT_EQ(Dump(recovered), first_state);
}

TEST(PersistTest, WalErrorIsFailStop) {
  io::FaultFs fs;
  Catalog catalog;
  PersistentStore store(&fs, kDir);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.LogCreate("a", TailType::kInt).ok());

  fs.Arm({Mode::kFailSync, 1, 0});
  EXPECT_FALSE(store.LogCreate("b", TailType::kInt).ok());

  // Even with the filesystem healthy again, the store refuses to mutate: an
  // fsync failure must never be retried. Only Open()/Recover() clear it.
  fs.Arm({Mode::kNone, 0, 0});
  auto latched = store.LogCreate("c", TailType::kInt);
  ASSERT_FALSE(latched.ok());
  EXPECT_NE(latched.message().find("fail-stop"), std::string::npos);
  EXPECT_FALSE(store.Checkpoint(catalog).ok());

  Catalog recovered;
  ASSERT_TRUE(store.Recover(&recovered).ok());
  EXPECT_TRUE(store.LogCreate("c", TailType::kInt).ok());
}

TEST(PersistTest, DiskStatsReportFootprint) {
  io::MemFs fs;
  const std::vector<WorkloadOp> ops = BuildWorkload();
  ASSERT_EQ(RunWorkload(&fs, ops, nullptr), 0u);

  PersistentStore store(&fs, kDir);
  ASSERT_TRUE(store.Open().ok());
  const PersistentStore::DiskStats stats = store.Stats();
  EXPECT_GT(stats.checkpoint_lsn, 0u);
  EXPECT_GT(stats.last_lsn, stats.checkpoint_lsn);
  EXPECT_GT(stats.on_disk_bytes, 70u * 1024);  // the bulk string is in there
  EXPECT_EQ(stats.snapshot_files, 2u);         // two generations retained
  EXPECT_GE(stats.wal_files, 1u);
}

TEST(PersistTest, CatalogStatsReportTheAttachedStore) {
  io::MemFs fs;
  Catalog catalog;
  catalog.Put("tricky", BulkStrBat());
  PersistentStore store(&fs, kDir);
  ASSERT_TRUE(store.Open().ok());
  catalog.AttachStore(&store);
  ASSERT_TRUE(store.Checkpoint(catalog).ok());
  ASSERT_TRUE(store.LogCreate("later", TailType::kInt).ok());

  const Catalog::CatalogStats stats = catalog.Stats();
  ASSERT_EQ(stats.bats.size(), 1u);
  EXPECT_EQ(stats.bats[0].name, "tricky");
  EXPECT_TRUE(stats.store.attached);
  EXPECT_EQ(stats.store.checkpoint_lsn, store.Stats().checkpoint_lsn);
  EXPECT_EQ(stats.store.last_lsn, store.last_lsn());
  EXPECT_GT(stats.store.last_lsn, stats.store.checkpoint_lsn);
  EXPECT_GT(stats.store.on_disk_bytes, 70u * 1024);
  EXPECT_EQ(stats.store.snapshot_files, 1u);
  EXPECT_GE(stats.store.wal_files, 1u);

  // The JSON rendering is strict (machine-readable) and carries the
  // durability block next to the per-BAT acceleration state.
  const std::string json = catalog.StatsJson();
  EXPECT_TRUE(trace::ValidateJson(json).ok()) << json;
  for (const char* key :
       {"\"bats\"", "\"store\"", "\"attached\"", "\"checkpoint_lsn\"",
        "\"last_lsn\"", "\"on_disk_bytes\"", "\"snapshot_files\"",
        "\"wal_files\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }

  // Detaching zeroes the block again (accel_test pins the detached shape).
  catalog.AttachStore(nullptr);
  EXPECT_FALSE(catalog.Stats().store.attached);
}

// ---------------------------------------------------------------------------
// The crash-point matrix. Fault seeds are drawn from the same RNG the
// differential harness uses, so every run of the suite exercises the same
// deterministic plans.

TEST(CrashMatrixTest, EveryWriteSyncAndRenameCrashPoint) {
  const std::vector<WorkloadOp> ops = BuildWorkload();

  // Reference run: the per-op state images and the op-count ceilings that
  // size the matrix.
  io::FaultFs ref;
  std::vector<std::string> dumps;
  ASSERT_EQ(RunWorkload(&ref, ops, &dumps), 0u);
  const io::FaultFs::OpCounts totals = ref.counts();
  ASSERT_GT(totals.writes, 15);
  ASSERT_GT(totals.syncs, 15);
  ASSERT_EQ(totals.renames, 2);  // one per checkpoint

  struct Axis {
    Mode mode;
    int count;
    const char* name;
  };
  const Axis axes[] = {
      {Mode::kFailWrite, totals.writes, "fail-write"},
      {Mode::kTornWrite, totals.writes, "torn-write"},
      {Mode::kFailSync, totals.syncs, "fail-sync"},
      {Mode::kFailRename, totals.renames, "fail-rename"},
  };

  Rng rng(0xD1FFE7);
  int cases = 0;
  for (const Axis& axis : axes) {
    for (int k = 1; k <= axis.count; ++k) {
      SCOPED_TRACE(std::string(axis.name) + " k=" + std::to_string(k));
      io::FaultFs fs;
      fs.Arm({axis.mode, k, rng.UniformInt(uint64_t{1} << 62)});

      // The fault fires inside exactly one op (counts are deterministic),
      // which fails; the workload stops there, as a dying process would.
      const size_t failed_at = RunWorkload(&fs, ops, nullptr);
      ASSERT_NE(failed_at, 0u) << "armed fault never fired";
      fs.Crash();  // unsynced bytes vanish, the machine restarts

      // Recovery must land exactly on the state before or after the
      // interrupted mutation — never on a torn hybrid of the two.
      Catalog recovered;
      PersistentStore reader(&fs, kDir);
      auto info = reader.Recover(&recovered);
      if (!info.ok()) {
        // Legitimate only when the crash hit before ANY commit: the fault
        // took out the directory fsync publishing the very first WAL file,
        // so the durable store is genuinely empty.
        ASSERT_EQ(info.status().code(), StatusCode::kNotFound);
        ASSERT_EQ(failed_at, 1u);
        ASSERT_TRUE(reader.Open().ok());
      }
      const std::string dump = Dump(recovered);
      EXPECT_TRUE(dump == dumps[failed_at - 1] || dump == dumps[failed_at])
          << "hybrid state after crashing op " << failed_at << ":\n"
          << dump;

      // The store is writable again — a torn WAL tail is truncated away by
      // the next append — and the new record survives another recovery.
      ASSERT_TRUE(reader.LogCreate("after-crash", TailType::kInt).ok());
      ASSERT_TRUE(recovered.Create("after-crash", TailType::kInt).ok());
      Catalog again;
      PersistentStore reader2(&fs, kDir);
      ASSERT_TRUE(reader2.Recover(&again).ok());
      EXPECT_EQ(Dump(again), Dump(recovered));
      ++cases;
    }
  }
  EXPECT_GE(cases, 60);  // the matrix really is exhaustive, not sampled
}

TEST(CrashMatrixTest, CommittedStateSurvivesCleanCrash) {
  // The canary for directory-entry durability: every file FaultFs reveals
  // after a crash must have been published with a directory fsync, so a
  // workload that completed cleanly recovers byte-identically even though
  // the crash drops every unpublished create/rename/delete.
  const std::vector<WorkloadOp> ops = BuildWorkload();
  io::FaultFs fs;
  std::vector<std::string> dumps;
  ASSERT_EQ(RunWorkload(&fs, ops, &dumps), 0u);
  fs.Crash();

  Catalog recovered;
  PersistentStore reader(&fs, kDir);
  auto info = reader.Recover(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_EQ(Dump(recovered), dumps.back());
  EXPECT_FALSE(info->used_fallback_snapshot);
}

TEST(CrashMatrixTest, WalRepairCrashPointsNeverLoseCommittedRecords) {
  // The torn-tail repair is itself a mutation of the only copy of committed
  // records, so it gets its own exhaustive crash matrix: seed a WAL with
  // durable garbage after the last valid record, then fail every write /
  // sync / rename of the repair-plus-append sequence and prove the
  // committed prefix survives each crash point.
  const std::vector<WorkloadOp> ops = BuildWorkload();
  std::vector<std::string> dumps;

  // Builds a crashed filesystem whose newest WAL carries a durable torn
  // tail (as if the machine died mid-append after the sector hit the disk).
  auto make_torn_fs = [&ops, &dumps](io::FaultFs* fs) {
    dumps.clear();
    ASSERT_EQ(RunWorkload(fs, ops, &dumps), 0u);
    auto names = fs->ListDir(kDir);
    ASSERT_TRUE(names.ok());
    std::string newest_wal;
    for (const std::string& name : names.value()) {
      if (name.rfind("wal-", 0) == 0 && name.size() > 4 &&
          name.substr(name.size() - 4) == ".log" && name > newest_wal) {
        newest_wal = name;
      }
    }
    ASSERT_FALSE(newest_wal.empty());
    auto file = fs->NewWritableFile(std::string(kDir) + "/" + newest_wal,
                                    /*truncate=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("torn garbage bytes").ok());
    ASSERT_TRUE(file.value()->Sync().ok());
    ASSERT_TRUE(file.value()->Close().ok());
    fs->Crash();
  };

  // Probe run: count the operations of one repair + append so the matrix
  // below is exhaustive over them.
  io::FaultFs::OpCounts totals;
  {
    io::FaultFs fs;
    make_torn_fs(&fs);
    PersistentStore store(&fs, kDir);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.LogCreate("after-crash", TailType::kInt).ok());
    totals = fs.counts();
    ASSERT_GE(totals.writes, 2);   // prefix rewrite + the new record
    ASSERT_GE(totals.syncs, 3);    // tmp fsync, dir fsync, record fsync
    ASSERT_EQ(totals.renames, 1);  // tmp over the torn log
  }

  struct Axis {
    Mode mode;
    int count;
    const char* name;
  };
  const Axis axes[] = {
      {Mode::kFailWrite, totals.writes, "fail-write"},
      {Mode::kTornWrite, totals.writes, "torn-write"},
      {Mode::kFailSync, totals.syncs, "fail-sync"},
      {Mode::kFailRename, totals.renames, "fail-rename"},
  };
  Rng rng(0x7E4A12);
  for (const Axis& axis : axes) {
    for (int k = 1; k <= axis.count; ++k) {
      SCOPED_TRACE(std::string(axis.name) + " k=" + std::to_string(k));
      io::FaultFs fs;
      make_torn_fs(&fs);
      fs.Arm({axis.mode, k, rng.UniformInt(uint64_t{1} << 62)});

      PersistentStore store(&fs, kDir);
      ASSERT_TRUE(store.Open().ok());
      const bool appended =
          store.LogCreate("after-crash", TailType::kInt).ok();
      fs.Crash();

      // Whatever the repair got to, every record committed before the torn
      // tail — and, when the append reported success, the new one too —
      // must replay; the old in-place truncation loses the whole file at
      // the fail-sync crash points.
      Catalog recovered;
      PersistentStore reader(&fs, kDir);
      auto info = reader.Recover(&recovered);
      ASSERT_TRUE(info.ok()) << info.status().message();
      if (appended) {
        ASSERT_TRUE(recovered.Exists("after-crash"));
        ASSERT_TRUE(recovered.Drop("after-crash").ok());
      } else {
        EXPECT_FALSE(recovered.Exists("after-crash"));
      }
      EXPECT_EQ(Dump(recovered), dumps.back())
          << "committed records lost at " << axis.name << " k=" << k;
    }
  }
}

TEST(CrashMatrixTest, ShortReadsNeverYieldHybridState) {
  const std::vector<WorkloadOp> ops = BuildWorkload();
  std::vector<std::string> dumps;
  {
    io::FaultFs probe;
    ASSERT_EQ(RunWorkload(&probe, ops, &dumps), 0u);
  }

  Rng rng(0x5EED5);
  for (int drop_newest = 0; drop_newest < 2; ++drop_newest) {
    // Scenario 1 removes the newest snapshot (as if its rename never
    // landed), so the sweep also short-reads the fallback snapshot and the
    // full WAL chain. k = 1 would truncate the only remaining snapshot —
    // genuine data loss, not a recoverable crash — so it starts at 2.
    for (int k = drop_newest == 0 ? 1 : 2; k <= 5; ++k) {
      SCOPED_TRACE("drop_newest=" + std::to_string(drop_newest) +
                   " k=" + std::to_string(k));
      io::FaultFs fs;
      ASSERT_EQ(RunWorkload(&fs, ops, nullptr), 0u);
      if (drop_newest == 1) {
        auto names = fs.ListDir(kDir);
        ASSERT_TRUE(names.ok());
        std::string newest;
        for (const std::string& name : names.value()) {
          if (name.rfind("snapshot-", 0) == 0 && name > newest) newest = name;
        }
        ASSERT_FALSE(newest.empty());
        ASSERT_TRUE(fs.DeleteFile(std::string(kDir) + "/" + newest).ok());
      }

      fs.Arm({Mode::kShortRead, k, rng.UniformInt(uint64_t{1} << 62)});
      Catalog recovered;
      PersistentStore reader(&fs, kDir);
      auto info = reader.Recover(&recovered);
      ASSERT_TRUE(info.ok()) << info.status().message();

      // Whatever file the prefix-truncated read hit, the result is SOME
      // committed workload state — a consistent prefix, never a hybrid.
      const std::string dump = Dump(recovered);
      bool is_known_state = false;
      for (const std::string& d : dumps) is_known_state |= (dump == d);
      EXPECT_TRUE(is_known_state) << "hybrid state:\n" << dump;

      // With reads healthy again, recovery converges to the full final
      // state: a corrupt-looking newest snapshot was deleted, but the
      // retained fallback chain replays to the same LSN.
      fs.Arm({Mode::kNone, 0, 0});
      Catalog again;
      PersistentStore reader2(&fs, kDir);
      ASSERT_TRUE(reader2.Recover(&again).ok());
      EXPECT_EQ(Dump(again), dumps.back());
    }
  }
}

// ---------------------------------------------------------------------------
// Video-model state: the opaque `extra` payload a checkpoint carries.

model::EventRecord MakeEvent(const std::string& type, double b, double e,
                             std::map<std::string, std::string> attrs = {}) {
  model::EventRecord record;
  record.type = type;
  record.begin_sec = b;
  record.end_sec = e;
  record.attrs = std::move(attrs);
  return record;
}

TEST(VideoModelPersistTest, SerializeRestoreRoundTrip) {
  kernel::Catalog kcat;
  model::VideoCatalog videos(&kcat);
  auto id = videos.RegisterVideo("german-gp", 5400.0, 30.0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(videos.StoreFeatureSeries(*id, "audio_rms", {0.1, 0.9}).ok());
  model::ObjectRecord car;
  car.cls = "car";
  car.name = "FERRARI";
  car.attrs["color"] = "red";
  ASSERT_TRUE(videos.StoreObject(*id, car).ok());
  ASSERT_TRUE(
      videos.StoreEvent(*id, MakeEvent("highlight", 10, 20, {{"driver", "X"}}))
          .ok());
  ASSERT_TRUE(videos.StoreEvent(*id, MakeEvent("caption", 12, 14)).ok());

  const std::string blob = videos.SerializeState();
  kernel::Catalog kcat2;
  model::VideoCatalog other(&kcat2);
  ASSERT_TRUE(other.RestoreState(blob, 0).ok());

  auto video = other.FindVideo("german-gp");
  ASSERT_TRUE(video.ok());
  EXPECT_EQ(video->id, *id);
  EXPECT_DOUBLE_EQ(video->duration_sec, 5400.0);
  EXPECT_DOUBLE_EQ(video->fps, 30.0);
  EXPECT_EQ(other.FeatureNames(*id), videos.FeatureNames(*id));
  auto objects = other.Objects(*id, "car");
  ASSERT_TRUE(objects.ok());
  ASSERT_EQ(objects->size(), 1u);
  EXPECT_EQ((*objects)[0].name, "FERRARI");
  EXPECT_EQ((*objects)[0].attrs.at("color"), "red");
  auto events = other.Events(*id);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].type, "highlight");
  EXPECT_EQ((*events)[0].attrs.at("driver"), "X");
  EXPECT_EQ(other.event_version(), videos.event_version());

  // The WAL's newest event-version record wins when it is ahead of the
  // serialized counter, so pre-crash cached results can never read fresh.
  ASSERT_TRUE(other.RestoreState(blob, 999).ok());
  EXPECT_EQ(other.event_version(), 999u);
}

TEST(VideoModelPersistTest, CorruptPayloadIsRejectedAtomically) {
  kernel::Catalog kcat;
  model::VideoCatalog videos(&kcat);
  auto id = videos.RegisterVideo("race", 60.0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(videos.StoreEvent(*id, MakeEvent("highlight", 1, 2)).ok());
  const std::string blob = videos.SerializeState();

  kernel::Catalog kcat2;
  model::VideoCatalog other(&kcat2);
  ASSERT_TRUE(other.RestoreState(blob, 0).ok());
  // A truncated or scribbled payload fails without touching the mirrors.
  EXPECT_FALSE(other.RestoreState(blob.substr(0, blob.size() - 1), 0).ok());
  EXPECT_FALSE(other.RestoreState("CBRAVID1 garbage", 0).ok());
  EXPECT_FALSE(other.RestoreState("", 0).ok());
  auto events = other.Events(*id);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 1u);
}

// ---------------------------------------------------------------------------
// MIL statements: save / load / checkpoint.

TEST(MilPersistTest, SaveLoadRoundTrip) {
  io::MemFs fs;
  kernel::Catalog a;
  kernel::MilSession sa(&a);
  sa.set_fs(&fs);
  auto saved = sa.Execute(
      "VAR names := new(\"str\");\n"
      "names := insert(names, 1, \"alpha\");\n"
      "names := insert(names, 2, \"\");\n"
      "names := insert(names, 3, \"alpha\");\n"
      "persist(\"names\", names);\n"
      "persist(\"empty\", new(\"int\"));\n"
      "save 'd1';\n");
  ASSERT_TRUE(saved.ok()) << saved.status().message();
  ASSERT_TRUE(PersistentStore::Exists(fs, "d1"));

  kernel::Catalog b;
  kernel::MilSession sb(&b);
  sb.set_fs(&fs);
  auto loaded = sb.Execute("load 'd1';\nPRINT count(bat(\"names\"));\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_NE(loaded->find("3"), std::string::npos);
  EXPECT_EQ(Dump(b), Dump(a));
}

TEST(MilPersistTest, LoadMissingStoreIsNotFound) {
  io::MemFs fs;
  kernel::Catalog catalog;
  kernel::MilSession session(&catalog);
  session.set_fs(&fs);
  auto r = session.Execute("load 'nowhere';");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("no persistent store at nowhere"),
            std::string::npos);
}

TEST(MilPersistTest, CheckpointNeedsAnAttachedDataDir) {
  ::unsetenv("COBRA_DATA_DIR");
  io::MemFs fs;
  kernel::Catalog catalog;
  kernel::MilSession bare(&catalog);
  bare.set_fs(&fs);
  auto r = bare.Execute("checkpoint;");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);

  kernel::MilSession attached(&catalog, "d2");
  attached.set_fs(&fs);
  auto ok = attached.Execute("persist(\"x\", new(\"int\"));\ncheckpoint;");
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  EXPECT_TRUE(PersistentStore::Exists(fs, "d2"));

  kernel::Catalog recovered;
  kernel::MilSession other(&recovered);
  other.set_fs(&fs);
  ASSERT_TRUE(other.Execute("load 'd2';").ok());
  EXPECT_EQ(Dump(recovered), Dump(catalog));
}

// ---------------------------------------------------------------------------
// Engine storage commands and the recovered-catalog differential.

class EnginePersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("COBRA_DATA_DIR");
    auto id = videos_.RegisterVideo("race", 600.0);
    ASSERT_TRUE(id.ok());
    video_ = *id;
    ASSERT_TRUE(videos_.StoreEvent(video_, MakeEvent("highlight", 30, 40)).ok());
    ASSERT_TRUE(videos_
                    .StoreEvent(video_, MakeEvent("highlight", 100, 110,
                                                  {{"driver", "ALESI"}}))
                    .ok());
    ASSERT_TRUE(videos_
                    .StoreEvent(video_, MakeEvent("caption", 102, 106,
                                                  {{"driver", "ALESI"}}))
                    .ok());
    ASSERT_TRUE(videos_.StoreFeatureSeries(video_, "rms", {0.5, 0.7}).ok());
    engine_.set_fs(&fs_);
  }

  io::MemFs fs_;
  kernel::Catalog catalog_;
  model::VideoCatalog videos_{&catalog_};
  extensions::ExtensionRegistry registry_;
  query::QueryEngine engine_{&videos_, &registry_, "qstore"};
  model::VideoId video_ = 0;
};

TEST_F(EnginePersistTest, PersistRecoverRoundTrip) {
  auto persisted = engine_.Execute("PERSIST");
  ASSERT_TRUE(persisted.ok()) << persisted.status().message();
  EXPECT_TRUE(persisted->segments.empty());
  EXPECT_NE(persisted->info.find("persisted 1 videos"), std::string::npos);
  EXPECT_NE(persisted->info.find("into qstore"), std::string::npos);

  // A second engine over an empty catalog recovers the full four-layer
  // state and answers the same queries with the same segments.
  kernel::Catalog kcat2;
  model::VideoCatalog videos2(&kcat2);
  query::QueryEngine engine2(&videos2, &registry_);
  engine2.set_fs(&fs_);
  auto recovered = engine2.Execute("RECOVER FROM 'qstore'");
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_NE(recovered->info.find("recovered"), std::string::npos);

  EXPECT_EQ(Dump(kcat2), Dump(catalog_));
  EXPECT_EQ(videos2.event_version(), videos_.event_version());
  auto series = videos2.LoadFeatureSeries(video_, "rms");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(*series, (std::vector<double>{0.5, 0.7}));

  const std::string q =
      "RETRIEVE highlight FROM 'race' OVERLAPPING caption WHERE driver = "
      "'ALESI'";
  auto original = engine_.Execute(q);
  auto replayed = engine2.Execute(q);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  ASSERT_EQ(replayed->segments.size(), original->segments.size());
  for (size_t i = 0; i < original->segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(replayed->segments[i].begin_sec,
                     original->segments[i].begin_sec);
    EXPECT_DOUBLE_EQ(replayed->segments[i].end_sec,
                     original->segments[i].end_sec);
  }
}

TEST_F(EnginePersistTest, StorageCommandErrors) {
  query::QueryEngine bare(&videos_, &registry_);
  bare.set_fs(&fs_);
  auto no_target = bare.Execute("PERSIST");
  ASSERT_FALSE(no_target.ok());
  EXPECT_EQ(no_target.status().code(), StatusCode::kFailedPrecondition);

  auto missing = engine_.Execute("RECOVER FROM 'missing'");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  for (const char* bad :
       {"PERSIST INTO unquoted", "PERSIST FROM 'd'", "RECOVER INTO 'd'",
        "PERSIST INTO ''", "RECOVER FROM 'a'b'"}) {
    auto r = engine_.Execute(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST_F(EnginePersistTest, RecoverClearsTheResultCache) {
  const std::string q = "RETRIEVE highlight FROM 'race'";
  auto first = engine_.Execute(q);
  ASSERT_TRUE(first.ok());
  auto second = engine_.Execute(q);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);

  ASSERT_TRUE(engine_.Execute("PERSIST").ok());
  auto recovered = engine_.Execute("RECOVER");
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();

  // Same state, but recomputed: the cache was dropped wholesale.
  auto third = engine_.Execute(q);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->cache_hit);
  EXPECT_EQ(third->segments.size(), first->segments.size());
}

TEST_F(EnginePersistTest, PostCheckpointMutationsSurviveACrash) {
  // Everything stored between the last PERSIST and a crash must come back:
  // each model mutation is WAL-logged as an opaque record at commit time
  // and re-executed on RECOVER on top of the restored snapshot. A FaultFs
  // crash (not just a fresh engine over live files) proves the records are
  // genuinely durable, not riding in the page cache.
  io::FaultFs ffs;
  kernel::Catalog kcat;
  model::VideoCatalog videos(&kcat);
  query::QueryEngine engine(&videos, &registry_, "estore");
  engine.set_fs(&ffs);
  auto race = videos.RegisterVideo("race", 600.0);
  ASSERT_TRUE(race.ok());
  ASSERT_TRUE(videos.StoreEvent(*race, MakeEvent("highlight", 30, 40)).ok());
  ASSERT_TRUE(engine.Execute("PERSIST").ok());

  // Post-checkpoint work across all four layers: WAL-only until the next
  // checkpoint, which never comes.
  auto quali = videos.RegisterVideo("quali", 3600.0, 30.0);
  ASSERT_TRUE(quali.ok());
  model::ObjectRecord driver;
  driver.cls = "driver";
  driver.name = "SCHUMACHER";
  driver.attrs["team"] = "ferrari";
  ASSERT_TRUE(videos.StoreObject(*quali, driver).ok());
  ASSERT_TRUE(
      videos.StoreFeatureSeries(*quali, "rms", {0.1, 0.2, 0.3}).ok());
  ASSERT_TRUE(videos
                  .StoreEvent(*quali, MakeEvent("overtake", 5, 8,
                                                {{"driver", "SCHUMACHER"}}))
                  .ok());
  ASSERT_TRUE(videos.StoreEvent(*race, MakeEvent("highlight", 100, 110)).ok());
  ASSERT_TRUE(videos.DropEvents(*race, "caption").ok());  // no-op drop, logged
  const std::string pre_crash = Dump(kcat);
  const uint64_t version = videos.event_version();

  ffs.Crash();

  kernel::Catalog kcat2;
  model::VideoCatalog videos2(&kcat2);
  query::QueryEngine engine2(&videos2, &registry_);
  engine2.set_fs(&ffs);
  auto recovered = engine2.Execute("RECOVER FROM 'estore'");
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();

  // Replay is deterministic down to oid allocation, so the kernel image —
  // BATs the replayed mutations appended to included — is byte-identical.
  EXPECT_EQ(Dump(kcat2), pre_crash);
  EXPECT_EQ(videos2.event_version(), version);
  auto found = videos2.FindVideo("quali");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id, *quali);
  EXPECT_DOUBLE_EQ(found->fps, 30.0);
  auto series = videos2.LoadFeatureSeries(*quali, "rms");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(*series, (std::vector<double>{0.1, 0.2, 0.3}));
  auto objects = videos2.Objects(*quali, "driver");
  ASSERT_TRUE(objects.ok());
  ASSERT_EQ(objects->size(), 1u);
  EXPECT_EQ((*objects)[0].name, "SCHUMACHER");
  EXPECT_EQ((*objects)[0].attrs.at("team"), "ferrari");
  auto overtakes = videos2.Events(*quali, "overtake");
  ASSERT_TRUE(overtakes.ok());
  ASSERT_EQ(overtakes->size(), 1u);
  EXPECT_EQ((*overtakes)[0].attrs.at("driver"), "SCHUMACHER");
  auto highlights = videos2.Events(*race, "highlight");
  ASSERT_TRUE(highlights.ok());
  EXPECT_EQ(highlights->size(), 2u);
}

// ---------------------------------------------------------------------------
// Crash matrix over a checkpoint WITH PINNED READERS: a snapshot epoch is
// pinned across the second PERSIST, and every write/sync/rename of that
// checkpoint is crashed in turn. Three invariants per crash point:
//
//   * the pinned reader's results are byte-identical before the failed
//     checkpoint, after it, and after the simulated machine death — an
//     epoch, once pinned, is immune to storage-layer outcomes;
//   * recovery lands exactly on the pre-checkpoint committed state (a
//     checkpoint is logically a no-op: exactly-before and exactly-after the
//     interrupted compaction are the same model state), never a torn hybrid;
//   * the recovered catalog republishes a fresh snapshot whose evaluation
//     matches the pinned one — the pre-crash epoch was not a private fork.

TEST(CrashMatrixTest, CheckpointCrashPointsWithPinnedReaders) {
  const std::string kQuery = "RETRIEVE highlight FROM 'race'";
  // Canonical bit-exact rendering: equality means byte-identical results.
  auto canon = [](const std::vector<model::EventRecord>& events) {
    std::string out;
    for (const auto& e : events) {
      out += e.type;
      out += StrFormat(
          " %016llx %016llx %016llx",
          static_cast<unsigned long long>(std::bit_cast<uint64_t>(e.begin_sec)),
          static_cast<unsigned long long>(std::bit_cast<uint64_t>(e.end_sec)),
          static_cast<unsigned long long>(
              std::bit_cast<uint64_t>(e.confidence)));
      for (const auto& [k, v] : e.attrs) out += " " + k + "=" + v;
      out.push_back('\n');
    }
    return out;
  };
  // Deterministic rebuild: seed, first checkpoint, post-checkpoint writes.
  // Returns the registered video id.
  auto build = [](model::VideoCatalog* videos,
                  query::QueryEngine* engine) -> model::VideoId {
    auto id = videos->RegisterVideo("race", 600.0);
    COBRA_CHECK(id.ok());
    COBRA_CHECK(
        videos->StoreEvent(*id, MakeEvent("highlight", 30, 40)).ok());
    COBRA_CHECK(videos
                    ->StoreEvent(*id, MakeEvent("highlight", 100, 110,
                                                {{"driver", "ALESI"}}))
                    .ok());
    COBRA_CHECK(engine->Execute("PERSIST").ok());
    // WAL-only tail the interrupted second checkpoint must not lose.
    COBRA_CHECK(
        videos->StoreEvent(*id, MakeEvent("highlight", 200, 210)).ok());
    COBRA_CHECK(videos
                    ->StoreEvent(*id, MakeEvent("caption", 202, 206,
                                                {{"driver", "BERGER"}}))
                    .ok());
    return *id;
  };

  // Reference run: the op-count window of the second checkpoint.
  io::FaultFs ref;
  io::FaultFs::OpCounts before_ckpt;
  io::FaultFs::OpCounts after_ckpt;
  std::string reference_canon;
  {
    kernel::Catalog kcat;
    model::VideoCatalog videos(&kcat);
    extensions::ExtensionRegistry registry;
    query::QueryEngine engine(&videos, &registry, "pstore");
    engine.set_fs(&ref);
    build(&videos, &engine);
    before_ckpt = ref.counts();
    ASSERT_TRUE(engine.Execute("PERSIST").ok());
    after_ckpt = ref.counts();
    auto result = engine.Execute(kQuery);
    ASSERT_TRUE(result.ok());
    reference_canon = canon(result->segments);
  }
  ASSERT_GT(after_ckpt.writes, before_ckpt.writes);
  ASSERT_GT(after_ckpt.syncs, before_ckpt.syncs);
  ASSERT_EQ(after_ckpt.renames, before_ckpt.renames + 1);

  struct Axis {
    Mode mode;
    int first;
    int last;
    const char* name;
  };
  const Axis axes[] = {
      {Mode::kFailWrite, before_ckpt.writes + 1, after_ckpt.writes,
       "fail-write"},
      {Mode::kTornWrite, before_ckpt.writes + 1, after_ckpt.writes,
       "torn-write"},
      {Mode::kFailSync, before_ckpt.syncs + 1, after_ckpt.syncs, "fail-sync"},
      {Mode::kFailRename, before_ckpt.renames + 1, after_ckpt.renames,
       "fail-rename"},
  };

  Rng rng(0x5EED5);
  int cases = 0;
  for (const Axis& axis : axes) {
    for (int k = axis.first; k <= axis.last; ++k) {
      SCOPED_TRACE(std::string(axis.name) + " k=" + std::to_string(k));
      io::FaultFs fs;
      fs.Arm({axis.mode, k, rng.UniformInt(uint64_t{1} << 62)});

      kernel::Catalog kcat;
      model::VideoCatalog videos(&kcat);
      extensions::ExtensionRegistry registry;
      query::QueryEngine engine(&videos, &registry, "pstore");
      engine.set_fs(&fs);
      build(&videos, &engine);
      const std::string committed_dump = Dump(kcat);
      const uint64_t committed_version = videos.event_version();

      // The reader pins an epoch BEFORE the checkpoint and holds it across
      // the crash.
      query::SnapshotManager snapshots(&videos, &kcat);
      auto pin = snapshots.Acquire();
      ASSERT_EQ(snapshots.stats().pinned_readers, 1u);
      auto pinned_before = engine.ExecuteSnapshot(kQuery, *pin);
      ASSERT_TRUE(pinned_before.ok());
      const std::string pinned_canon = canon(pinned_before->segments);
      ASSERT_EQ(pinned_canon, reference_canon);

      // The armed fault fires inside this checkpoint (counts are
      // deterministic). Almost every crash point fails the PERSIST; the
      // exception is the best-effort post-prune directory sync, which a
      // checkpoint tolerates by design — either way the committed model
      // state is unchanged, so the invariants below hold unconditionally.
      const bool persist_failed = !engine.Execute("PERSIST").ok();
      if (!persist_failed) {
        ASSERT_EQ(axis.mode, Mode::kFailSync)
            << "only a best-effort sync may be survived";
      }

      // The pinned reader is oblivious to the failed checkpoint...
      auto pinned_after = engine.ExecuteSnapshot(kQuery, *pin);
      ASSERT_TRUE(pinned_after.ok());
      EXPECT_EQ(canon(pinned_after->segments), pinned_canon);

      fs.Crash();  // unsynced bytes vanish, the machine restarts

      // ...and to the machine death: the epoch is an in-memory immutable.
      auto pinned_postcrash = engine.ExecuteSnapshot(kQuery, *pin);
      ASSERT_TRUE(pinned_postcrash.ok());
      EXPECT_EQ(canon(pinned_postcrash->segments), pinned_canon);

      // Recovery: exactly the committed pre-checkpoint state — the old
      // snapshot generation + WAL tail, or the new snapshot if its rename
      // already published; both decode to the same model state.
      kernel::Catalog kcat2;
      model::VideoCatalog videos2(&kcat2);
      extensions::ExtensionRegistry registry2;
      query::QueryEngine engine2(&videos2, &registry2);
      engine2.set_fs(&fs);
      auto recovered = engine2.Execute("RECOVER FROM 'pstore'");
      ASSERT_TRUE(recovered.ok()) << recovered.status().message();
      EXPECT_EQ(Dump(kcat2), committed_dump);
      EXPECT_EQ(videos2.event_version(), committed_version);

      // A fresh epoch over the recovered catalog serves the same bytes the
      // pinned reader has been serving all along.
      query::SnapshotManager snapshots2(&videos2, &kcat2);
      auto pin2 = snapshots2.Acquire();
      EXPECT_EQ(pin2->event_version(), pin->event_version());
      auto replayed = engine2.ExecuteSnapshot(kQuery, *pin2);
      ASSERT_TRUE(replayed.ok());
      EXPECT_EQ(canon(replayed->segments), pinned_canon);
      ++cases;
    }
  }
  // Every crash point of the checkpoint, across all four axes — exact, so
  // a silently shrunken window can't hollow out the matrix.
  const int expected_cases = 2 * (after_ckpt.writes - before_ckpt.writes) +
                             (after_ckpt.syncs - before_ckpt.syncs) +
                             (after_ckpt.renames - before_ckpt.renames);
  EXPECT_EQ(cases, expected_cases);
  EXPECT_GE(cases, 5);
}

// ---------------------------------------------------------------------------
// The hammer: reader threads on the result cache while one writer appends
// events and checkpoints. Run under the tsan preset, this is the data-race
// proof for the model-mutex / store-mutex / kernel-mutex lock order; the
// assertions pin the event_version invalidation ordering (no reader ever
// sees a cached result from before a bump it could observe).

TEST(PersistConcurrencyTest, QueriesRaceCheckpointsAndAppends) {
  io::MemFs fs;
  kernel::Catalog kcat;
  model::VideoCatalog videos(&kcat);
  extensions::ExtensionRegistry registry;
  query::QueryEngine engine(&videos, &registry, "hammer");
  engine.set_fs(&fs);
  auto id = videos.RegisterVideo("race", 600.0);
  ASSERT_TRUE(id.ok());
  constexpr size_t kSeedEvents = 8;
  constexpr size_t kWriterEvents = 40;
  for (size_t i = 0; i < kSeedEvents; ++i) {
    ASSERT_TRUE(videos
                    .StoreEvent(*id, MakeEvent("highlight", 10.0 + i,
                                               11.0 + i, {{"driver", "ALPHA"}}))
                    .ok());
  }

  const std::string q =
      "RETRIEVE highlight FROM 'race' WHERE driver = 'ALPHA'";
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = engine.Execute(q);
        // Every result — cached or computed — is a consistent snapshot
        // between the seed state and the writer's final state.
        if (!r.ok() || r->segments.size() < kSeedEvents ||
            r->segments.size() > kSeedEvents + kWriterEvents) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (size_t i = 0; i < kWriterEvents; ++i) {
      if (!videos
               .StoreEvent(*id, MakeEvent("highlight", 100.0 + i, 101.0 + i,
                                          {{"driver", "ALPHA"}}))
               .ok()) {
        failures.fetch_add(1);
      }
      if (i % 8 == 0 && !engine.Execute("PERSIST").ok()) {
        failures.fetch_add(1);
      }
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);

  // Deterministic invalidation ordering: a bump after a cached read makes
  // the next identical query recompute and observe the new event.
  auto before = engine.Execute(q);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(
      videos.StoreEvent(*id, MakeEvent("highlight", 500, 501,
                                       {{"driver", "ALPHA"}}))
          .ok());
  auto after = engine.Execute(q);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  EXPECT_EQ(after->segments.size(), before->segments.size() + 1);

  // And the whole battered state round-trips through a final checkpoint.
  ASSERT_TRUE(engine.Execute("PERSIST").ok());
  kernel::Catalog kcat2;
  model::VideoCatalog videos2(&kcat2);
  query::QueryEngine engine2(&videos2, &registry);
  engine2.set_fs(&fs);
  ASSERT_TRUE(engine2.Execute("RECOVER FROM 'hammer'").ok());
  EXPECT_EQ(videos2.event_version(), videos.event_version());
  auto replayed = videos2.Events(*id, "highlight");
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->size(), kSeedEvents + kWriterEvents + 1);
}

}  // namespace
}  // namespace cobra
