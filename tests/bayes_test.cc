#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "bayes/cpt.h"
#include "bayes/dbn.h"
#include "bayes/network.h"

namespace cobra::bayes {
namespace {

TEST(MixedRadixTest, EncodeDecodeRoundTrip) {
  MixedRadix radix({2, 3, 4});
  EXPECT_EQ(radix.size(), 24u);
  std::vector<int> digits;
  for (size_t i = 0; i < radix.size(); ++i) {
    radix.Decode(i, &digits);
    EXPECT_EQ(radix.Encode(digits), i);
  }
}

TEST(MixedRadixTest, LastDigitFastest) {
  MixedRadix radix({2, 3});
  EXPECT_EQ(radix.Encode({0, 0}), 0u);
  EXPECT_EQ(radix.Encode({0, 1}), 1u);
  EXPECT_EQ(radix.Encode({1, 0}), 3u);
}

TEST(CptTest, RowsNormalize) {
  Cpt cpt({2}, 3);
  EXPECT_EQ(cpt.num_rows(), 2u);
  ASSERT_TRUE(cpt.SetRow(0, {2.0, 1.0, 1.0}).ok());
  EXPECT_DOUBLE_EQ(cpt.P(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(cpt.P(0, 1), 0.25);
}

TEST(CptTest, SetFromCountsSmooths) {
  Cpt cpt({}, 2);
  std::vector<double> counts = {3.0, 1.0};
  cpt.SetFromCounts(counts, 0.0);
  EXPECT_NEAR(cpt.P(0, 0), 0.75, 1e-12);
}

// Classic sprinkler fragment: C -> R, C -> S; manual posterior check.
class SprinklerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    c_ = net_.AddNode("cloudy", 2, /*is_evidence=*/false);
    r_ = net_.AddNode("rain", 2, /*is_evidence=*/true);
    s_ = net_.AddNode("sprinkler", 2, /*is_evidence=*/true);
    ASSERT_TRUE(net_.AddEdge(c_, r_).ok());
    ASSERT_TRUE(net_.AddEdge(c_, s_).ok());
    ASSERT_TRUE(net_.Finalize().ok());
    ASSERT_TRUE(net_.cpt(c_).SetRow(0, {0.5, 0.5}).ok());
    // P(rain | cloudy): rows indexed by cloudy state.
    ASSERT_TRUE(net_.cpt(r_).SetRow(0, {0.8, 0.2}).ok());
    ASSERT_TRUE(net_.cpt(r_).SetRow(1, {0.2, 0.8}).ok());
    ASSERT_TRUE(net_.cpt(s_).SetRow(0, {0.5, 0.5}).ok());
    ASSERT_TRUE(net_.cpt(s_).SetRow(1, {0.9, 0.1}).ok());
  }

  BayesianNetwork net_;
  NodeId c_ = -1, r_ = -1, s_ = -1;
};

TEST_F(SprinklerTest, PriorWithoutEvidence) {
  auto post = net_.Posterior(c_, Evidence{});
  ASSERT_TRUE(post.ok());
  EXPECT_NEAR((*post)[0], 0.5, 1e-12);
}

TEST_F(SprinklerTest, HardEvidencePosterior) {
  Evidence e;
  e.hard[r_] = 1;  // rain observed
  auto post = net_.Posterior(c_, e);
  ASSERT_TRUE(post.ok());
  // P(C=1 | R=1) = 0.8*0.5 / (0.8*0.5 + 0.2*0.5) = 0.8.
  EXPECT_NEAR((*post)[1], 0.8, 1e-12);
}

TEST_F(SprinklerTest, SoftEvidenceInterpolates) {
  Evidence hard;
  hard.hard[r_] = 1;
  Evidence soft;
  soft.SetBinary(r_, 1.0);  // likelihood (0,1) == hard evidence
  auto p_hard = net_.Posterior(c_, hard);
  auto p_soft = net_.Posterior(c_, soft);
  ASSERT_TRUE(p_hard.ok());
  ASSERT_TRUE(p_soft.ok());
  EXPECT_NEAR((*p_hard)[1], (*p_soft)[1], 1e-12);

  Evidence weak;
  weak.SetBinary(r_, 0.5);  // uninformative likelihood
  auto p_weak = net_.Posterior(c_, weak);
  ASSERT_TRUE(p_weak.ok());
  EXPECT_NEAR((*p_weak)[1], 0.5, 1e-12);
}

TEST_F(SprinklerTest, CombinedEvidence) {
  Evidence e;
  e.hard[r_] = 1;
  e.hard[s_] = 1;
  auto post = net_.Posterior(c_, e);
  ASSERT_TRUE(post.ok());
  // P(C=1|R=1,S=1) ~ 0.5*0.8*0.1 / (0.5*0.8*0.1 + 0.5*0.2*0.5) = 0.4444...
  EXPECT_NEAR((*post)[1], 0.8 * 0.1 / (0.8 * 0.1 + 0.2 * 0.5), 1e-12);
}

TEST_F(SprinklerTest, LogLikelihoodMatchesManualSum) {
  Evidence e;
  e.hard[r_] = 1;
  auto ll = net_.LogLikelihood(e);
  ASSERT_TRUE(ll.ok());
  EXPECT_NEAR(*ll, std::log(0.5 * 0.2 + 0.5 * 0.8), 1e-12);
}

TEST_F(SprinklerTest, QueryOnAbsorbedLeafIsRejected) {
  auto post = net_.Posterior(r_, Evidence{});
  EXPECT_FALSE(post.ok());
}

TEST(BayesianNetworkTest, CycleRejected) {
  BayesianNetwork net;
  NodeId a = net.AddNode("a", 2, false);
  NodeId b = net.AddNode("b", 2, false);
  ASSERT_TRUE(net.AddEdge(a, b).ok());
  ASSERT_TRUE(net.AddEdge(b, a).ok());
  EXPECT_FALSE(net.Finalize().ok());
}

TEST(BayesianNetworkTest, FindNodeByName) {
  BayesianNetwork net;
  net.AddNode("alpha", 2, false);
  NodeId b = net.AddNode("beta", 2, true);
  ASSERT_TRUE(net.Finalize().ok());
  EXPECT_EQ(net.FindNode("beta"), b);
  EXPECT_EQ(net.FindNode("gamma"), -1);
}

TEST(BayesianNetworkTest, EvidenceParentOfQueryIsEnumerated) {
  // Fig 7b style: evidence nodes point *into* the query node.
  BayesianNetwork net;
  NodeId e1 = net.AddNode("e1", 2, true);
  NodeId e2 = net.AddNode("e2", 2, true);
  NodeId q = net.AddNode("q", 2, false);
  ASSERT_TRUE(net.AddEdge(e1, q).ok());
  ASSERT_TRUE(net.AddEdge(e2, q).ok());
  ASSERT_TRUE(net.Finalize().ok());
  ASSERT_TRUE(net.cpt(e1).SetRow(0, {0.5, 0.5}).ok());
  ASSERT_TRUE(net.cpt(e2).SetRow(0, {0.5, 0.5}).ok());
  // q = OR-ish of e1, e2.
  ASSERT_TRUE(net.cpt(q).SetRow(0, {0.9, 0.1}).ok());
  ASSERT_TRUE(net.cpt(q).SetRow(1, {0.3, 0.7}).ok());
  ASSERT_TRUE(net.cpt(q).SetRow(2, {0.3, 0.7}).ok());
  ASSERT_TRUE(net.cpt(q).SetRow(3, {0.05, 0.95}).ok());

  Evidence e;
  e.hard[e1] = 1;
  e.hard[e2] = 1;
  auto post = net.Posterior(q, e);
  ASSERT_TRUE(post.ok());
  EXPECT_NEAR((*post)[1], 0.95, 1e-12);
}

TEST(BayesianNetworkEmTest, LearnsFromCompleteObservations) {
  // One hidden-free structure: H (supervised) -> E. EM should recover the
  // conditional from data.
  BayesianNetwork net;
  NodeId h = net.AddNode("h", 2, false);
  NodeId e = net.AddNode("e", 2, true);
  ASSERT_TRUE(net.AddEdge(h, e).ok());
  ASSERT_TRUE(net.Finalize().ok());
  Rng rng(7);
  net.RandomizeCpts(rng);

  // Generate data from a known model: P(h=1)=0.3, P(e=1|h)= (0.1, 0.9).
  std::vector<Evidence> samples;
  Rng data_rng(42);
  for (int i = 0; i < 4000; ++i) {
    const int hv = data_rng.Bernoulli(0.3) ? 1 : 0;
    const int ev = data_rng.Bernoulli(hv == 1 ? 0.9 : 0.1) ? 1 : 0;
    Evidence sample;
    sample.hard[h] = hv;
    sample.hard[e] = ev;
    samples.push_back(sample);
  }
  auto ll = net.TrainEm(samples, {});
  ASSERT_TRUE(ll.ok());
  EXPECT_NEAR(net.cpt(h).P(0, 1), 0.3, 0.03);
  EXPECT_NEAR(net.cpt(e).P(1, 1), 0.9, 0.03);
  EXPECT_NEAR(net.cpt(e).P(0, 1), 0.1, 0.03);
}

TEST(BayesianNetworkEmTest, HiddenIntermediateImprovesLikelihood) {
  // H -> M -> E with M hidden; EM should monotonically improve loglik.
  BayesianNetwork net;
  NodeId h = net.AddNode("h", 2, false);
  NodeId m = net.AddNode("m", 2, false);
  NodeId e = net.AddNode("e", 2, true);
  ASSERT_TRUE(net.AddEdge(h, m).ok());
  ASSERT_TRUE(net.AddEdge(m, e).ok());
  ASSERT_TRUE(net.Finalize().ok());
  Rng rng(3);
  net.RandomizeCpts(rng);

  std::vector<Evidence> samples;
  Rng data_rng(11);
  for (int i = 0; i < 500; ++i) {
    const int hv = data_rng.Bernoulli(0.5) ? 1 : 0;
    const int ev = data_rng.Bernoulli(hv == 1 ? 0.8 : 0.2) ? 1 : 0;
    Evidence sample;
    sample.hard[h] = hv;
    sample.SetBinary(e, ev == 1 ? 0.95 : 0.05);
    samples.push_back(sample);
  }
  BayesianNetwork::EmOptions opts;
  opts.max_iterations = 1;
  auto ll1 = net.TrainEm(samples, opts);
  ASSERT_TRUE(ll1.ok());
  opts.max_iterations = 20;
  auto ll2 = net.TrainEm(samples, opts);
  ASSERT_TRUE(ll2.ok());
  EXPECT_GE(*ll2, *ll1 - 1e-6);
}

// ---------------------------------------------------------------------------
// DBN tests
// ---------------------------------------------------------------------------

/// Builds the simplest DBN: one binary chain node Q with a persistence arc
/// and one evidence leaf E — structurally an HMM with 2 states.
DynamicBayesianNetwork MakeHmmLikeDbn(double stay, double emit_true) {
  BayesianNetwork slice;
  NodeId q = slice.AddNode("q", 2, false);
  NodeId e = slice.AddNode("e", 2, true);
  EXPECT_TRUE(slice.AddEdge(q, e).ok());
  EXPECT_TRUE(slice.Finalize().ok());
  EXPECT_TRUE(slice.cpt(q).SetRow(0, {0.5, 0.5}).ok());
  EXPECT_TRUE(slice.cpt(e).SetRow(0, {emit_true, 1.0 - emit_true}).ok());
  EXPECT_TRUE(slice.cpt(e).SetRow(1, {1.0 - emit_true, emit_true}).ok());
  auto dbn = DynamicBayesianNetwork::Create(
      std::move(slice), {{q, q}});
  EXPECT_TRUE(dbn.ok());
  DynamicBayesianNetwork d = std::move(*dbn);
  NodeId qq = d.slice().FindNode("q");
  EXPECT_TRUE(d.transition_cpt(qq).SetRow(0, {stay, 1.0 - stay}).ok());
  EXPECT_TRUE(d.transition_cpt(qq).SetRow(1, {1.0 - stay, stay}).ok());
  return d;
}

TEST(DbnTest, FilterMatchesManualHmmForward) {
  DynamicBayesianNetwork dbn = MakeHmmLikeDbn(0.9, 0.8);
  const NodeId q = dbn.slice().FindNode("q");
  const NodeId e = dbn.slice().FindNode("e");

  std::vector<Evidence> seq(3);
  seq[0].hard[e] = 1;
  seq[1].hard[e] = 1;
  seq[2].hard[e] = 0;

  auto result = dbn.Filter(seq, q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->query_posterior.size(), 3u);

  // Manual scaled forward for the equivalent HMM.
  double a0 = 0.5 * 0.2, a1 = 0.5 * 0.8;  // P(e=1|q)
  double c = a0 + a1;
  a0 /= c;
  a1 /= c;
  EXPECT_NEAR(result->query_posterior[0][1], a1, 1e-12);
  double loglik = std::log(c);
  // Step 2: e=1 again.
  double b0 = (a0 * 0.9 + a1 * 0.1) * 0.2;
  double b1 = (a0 * 0.1 + a1 * 0.9) * 0.8;
  c = b0 + b1;
  b0 /= c;
  b1 /= c;
  loglik += std::log(c);
  EXPECT_NEAR(result->query_posterior[1][1], b1, 1e-12);
  // Step 3: e=0.
  double d0 = (b0 * 0.9 + b1 * 0.1) * 0.8;
  double d1 = (b0 * 0.1 + b1 * 0.9) * 0.2;
  c = d0 + d1;
  d1 /= c;
  loglik += std::log(c);
  EXPECT_NEAR(result->query_posterior[2][1], d1, 1e-12);
  EXPECT_NEAR(result->loglik, loglik, 1e-12);
}

TEST(DbnTest, SmoothedBeatsFilteredAtEarlySteps) {
  DynamicBayesianNetwork dbn = MakeHmmLikeDbn(0.95, 0.7);
  const NodeId q = dbn.slice().FindNode("q");
  const NodeId e = dbn.slice().FindNode("e");
  // A long run of e=1 should, in hindsight, raise early-step beliefs.
  std::vector<Evidence> seq(10);
  for (auto& ev : seq) ev.hard[e] = 1;
  auto filtered = dbn.Filter(seq, q);
  auto smoothed = dbn.Smooth(seq, q);
  ASSERT_TRUE(filtered.ok());
  ASSERT_TRUE(smoothed.ok());
  EXPECT_GT((*smoothed)[0][1], filtered->query_posterior[0][1]);
}

TEST(DbnTest, SingleClusterMatchesExact) {
  DynamicBayesianNetwork dbn = MakeHmmLikeDbn(0.9, 0.8);
  const NodeId q = dbn.slice().FindNode("q");
  const NodeId e = dbn.slice().FindNode("e");
  std::vector<Evidence> seq(5);
  for (size_t t = 0; t < seq.size(); ++t) seq[t].hard[e] = t % 2;
  auto exact = dbn.Filter(seq, q);
  auto clustered = dbn.Filter(seq, q, {{q}});
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(clustered.ok());
  for (size_t t = 0; t < seq.size(); ++t) {
    EXPECT_NEAR(exact->query_posterior[t][1],
                clustered->query_posterior[t][1], 1e-12);
  }
}

TEST(DbnTest, TemporalArcFromEvidenceRejected) {
  BayesianNetwork slice;
  NodeId q = slice.AddNode("q", 2, false);
  NodeId e = slice.AddNode("e", 2, true);
  ASSERT_TRUE(slice.AddEdge(q, e).ok());
  ASSERT_TRUE(slice.Finalize().ok());
  auto dbn = DynamicBayesianNetwork::Create(std::move(slice), {{e, q}});
  EXPECT_FALSE(dbn.ok());
}

TEST(DbnTest, BoyenKollerProjectionIsProductOfMarginals) {
  // Two chain nodes with coupled transitions; 2-cluster BK should still
  // produce a valid distribution and match cluster marginals of the exact
  // belief at the first step after projection.
  BayesianNetwork slice;
  NodeId a = slice.AddNode("a", 2, false);
  NodeId b = slice.AddNode("b", 2, false);
  NodeId e = slice.AddNode("e", 2, true);
  ASSERT_TRUE(slice.AddEdge(a, b).ok());
  ASSERT_TRUE(slice.AddEdge(b, e).ok());
  ASSERT_TRUE(slice.Finalize().ok());
  Rng rng(5);
  slice.RandomizeCpts(rng);
  auto dbn_or = DynamicBayesianNetwork::Create(
      std::move(slice), {{a, a}, {b, b}, {a, b}});
  ASSERT_TRUE(dbn_or.ok());
  DynamicBayesianNetwork dbn = std::move(*dbn_or);
  Rng rng2(9);
  dbn.RandomizeCpts(rng2);

  const NodeId qa = dbn.slice().FindNode("a");
  const NodeId qb = dbn.slice().FindNode("b");
  const NodeId qe = dbn.slice().FindNode("e");
  std::vector<Evidence> seq(6);
  for (size_t t = 0; t < seq.size(); ++t) seq[t].hard[qe] = (t / 2) % 2;

  auto exact = dbn.Filter(seq, qa);
  auto bk = dbn.Filter(seq, qa, {{qa}, {qb}});
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(bk.ok());
  for (size_t t = 0; t < seq.size(); ++t) {
    double sum = 0.0;
    for (double v : bk->beliefs[t]) {
      EXPECT_GE(v, -1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Marginals after the first projection agree with the exact marginals at
  // t=0 (projection preserves cluster marginals).
  EXPECT_NEAR(bk->query_posterior[0][1], exact->query_posterior[0][1], 1e-9);
}

TEST(DbnEmTest, RecoversPersistenceFromSyntheticData) {
  // Generate data from a known HMM-like DBN and check EM recovers the
  // self-transition bias starting from a perturbed model.
  DynamicBayesianNetwork truth = MakeHmmLikeDbn(0.9, 0.85);
  const NodeId q = truth.slice().FindNode("q");
  const NodeId e = truth.slice().FindNode("e");

  Rng rng(123);
  std::vector<std::vector<Evidence>> sequences;
  for (int s = 0; s < 12; ++s) {
    std::vector<Evidence> seq;
    int state = rng.Bernoulli(0.5) ? 1 : 0;
    for (int t = 0; t < 60; ++t) {
      if (t > 0 && !rng.Bernoulli(0.9)) state = 1 - state;
      const int obs = rng.Bernoulli(state == 1 ? 0.85 : 0.15) ? 1 : 0;
      Evidence ev;
      ev.hard[e] = obs;
      // Supervise the query node half the time (as when training the
      // excited-speech node on labeled ground truth).
      if (t % 2 == 0) ev.hard[q] = state;
      seq.push_back(ev);
    }
    sequences.push_back(std::move(seq));
  }

  DynamicBayesianNetwork model = MakeHmmLikeDbn(0.6, 0.6);
  auto ll = model.TrainEm(sequences, {});
  ASSERT_TRUE(ll.ok());
  const NodeId mq = model.slice().FindNode("q");
  // Self-transition should move toward 0.9.
  const double stay0 = model.transition_cpt(mq).P(0, 0);
  const double stay1 = model.transition_cpt(mq).P(1, 1);
  EXPECT_GT(stay0, 0.75);
  EXPECT_GT(stay1, 0.75);
}

TEST(DbnEmTest, LikelihoodMonotone) {
  DynamicBayesianNetwork model = MakeHmmLikeDbn(0.7, 0.6);
  const NodeId e = model.slice().FindNode("e");
  Rng rng(77);
  std::vector<std::vector<Evidence>> sequences(4);
  for (auto& seq : sequences) {
    for (int t = 0; t < 40; ++t) {
      Evidence ev;
      ev.SetBinary(e, rng.Uniform());
      seq.push_back(ev);
    }
  }
  DynamicBayesianNetwork::EmOptions opts;
  opts.max_iterations = 1;
  auto ll1 = model.TrainEm(sequences, opts);
  ASSERT_TRUE(ll1.ok());
  opts.max_iterations = 10;
  auto ll2 = model.TrainEm(sequences, opts);
  ASSERT_TRUE(ll2.ok());
  EXPECT_GE(*ll2, *ll1 - 1e-6);
}

}  // namespace
}  // namespace cobra::bayes
