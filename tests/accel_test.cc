// Tests for the self-organizing acceleration layer: persistent hash
// indexes (lazy build, version-counter invalidation, accretion policy),
// dictionary-encoded string tails, and the catalog's stats surface.
//
// The concurrency tests double as the TSAN workload required for probes on
// a shared BAT (run via the tsan preset).

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kernel/bat.h"
#include "kernel/catalog.h"

namespace cobra::kernel {
namespace {

Bat SmallStrBat() {
  Bat bat(TailType::kStr);
  bat.AppendStr(1, "alpha");
  bat.AppendStr(2, "beta");
  bat.AppendStr(3, "alpha");
  bat.AppendStr(4, "gamma");
  return bat;
}

TEST(DictTest, InterningDeduplicates) {
  Bat bat = SmallStrBat();
  EXPECT_EQ(bat.size(), 4u);
  EXPECT_EQ(bat.DictSize(), 3u);  // alpha, beta, gamma
  EXPECT_EQ(bat.StrAt(0), "alpha");
  EXPECT_EQ(bat.StrAt(2), "alpha");
  EXPECT_EQ(bat.TailKeyAt(0), bat.TailKeyAt(2));
  EXPECT_NE(bat.TailKeyAt(0), bat.TailKeyAt(1));
}

TEST(DictTest, ConcatRemapsCodes) {
  Bat a = SmallStrBat();
  Bat b(TailType::kStr);
  b.AppendStr(10, "gamma");  // code 0 in b, code 2 in a
  b.AppendStr(11, "delta");  // new to a
  a.Concat(b);
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a.DictSize(), 4u);
  EXPECT_EQ(a.StrAt(4), "gamma");
  EXPECT_EQ(a.StrAt(5), "delta");
  EXPECT_EQ(a.TailKeyAt(3), a.TailKeyAt(4));  // both "gamma"
}

TEST(DictTest, CopyAndMovePreserveStrings) {
  Bat a = SmallStrBat();
  Bat copy(a);
  ASSERT_EQ(copy.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(copy.StrAt(i), a.StrAt(i));
  // The copy's dictionary is independent of the original's.
  copy.AppendStr(9, "epsilon");
  EXPECT_EQ(copy.DictSize(), 4u);
  EXPECT_EQ(a.DictSize(), 3u);
  Bat moved(std::move(copy));
  EXPECT_EQ(moved.size(), 5u);
  EXPECT_EQ(moved.StrAt(4), "epsilon");
}

TEST(HashIndexTest, LazyBuildFollowsAccretionPolicy) {
  // Small BATs never auto-build on probe...
  Bat small = SmallStrBat();
  EXPECT_EQ(small.TailIndex(/*force=*/false), nullptr);
  EXPECT_FALSE(small.accel_info().tail_index_built);
  // ...but a forced build accretes one that later probes reuse.
  small.BuildTailIndex();
  EXPECT_NE(small.TailIndex(/*force=*/false), nullptr);
  EXPECT_TRUE(small.accel_info().tail_index_fresh);
  EXPECT_EQ(small.accel_info().tail_builds, 1u);

  // Large BATs auto-build on the first probe.
  Bat large(TailType::kInt);
  for (size_t i = 0; i < Bat::kAutoIndexMinRows; ++i) {
    large.AppendInt(static_cast<Oid>(i), static_cast<int64_t>(i % 5));
  }
  EXPECT_FALSE(large.accel_info().tail_index_built);
  ASSERT_TRUE(large.SelectEq(Value::Int(3)).ok());
  EXPECT_TRUE(large.accel_info().tail_index_fresh);
}

TEST(HashIndexTest, MutationInvalidatesAndProbeRebuilds) {
  Bat bat = SmallStrBat();
  bat.BuildTailIndex();
  const uint64_t v0 = bat.version();
  ASSERT_TRUE(bat.accel_info().tail_index_fresh);

  bat.AppendStr(5, "beta");
  EXPECT_GT(bat.version(), v0);
  EXPECT_TRUE(bat.accel_info().tail_index_built);
  EXPECT_FALSE(bat.accel_info().tail_index_fresh);

  // The next probe rebuilds transparently and sees the appended row.
  auto selected = bat.SelectStr("beta");
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 2u);
  EXPECT_EQ(selected->HeadAt(0), 2u);
  EXPECT_EQ(selected->HeadAt(1), 5u);
  EXPECT_TRUE(bat.accel_info().tail_index_fresh);
  EXPECT_EQ(bat.accel_info().tail_builds, 2u);

  // Concat invalidates the same way.
  bat.Concat(SmallStrBat());
  EXPECT_FALSE(bat.accel_info().tail_index_fresh);
  selected = bat.SelectStr("alpha");
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 4u);
  EXPECT_TRUE(bat.accel_info().tail_index_fresh);
}

TEST(HashIndexTest, IndexedSelectMatchesScan) {
  // Duplicate-heavy int BAT, large enough to auto-index.
  Bat bat(TailType::kInt);
  for (size_t i = 0; i < 4096; ++i) {
    bat.AppendInt(static_cast<Oid>(i * 3), static_cast<int64_t>(i % 17));
  }
  ExecContext cold;
  cold.auto_index = false;
  for (int64_t probe : {0, 5, 16, 99}) {
    auto scan = bat.SelectEq(Value::Int(probe), cold);
    auto indexed = bat.SelectEq(Value::Int(probe));
    ASSERT_TRUE(scan.ok());
    ASSERT_TRUE(indexed.ok());
    ASSERT_EQ(scan->size(), indexed->size());
    for (size_t i = 0; i < scan->size(); ++i) {
      EXPECT_EQ(scan->HeadAt(i), indexed->HeadAt(i));
      EXPECT_EQ(scan->IntAt(i), indexed->IntAt(i));
    }
  }
}

TEST(HashIndexTest, FloatZeroesCompareEqualAndNanMatchesNothing) {
  Bat bat(TailType::kFloat);
  bat.AppendFloat(1, 0.0);
  bat.AppendFloat(2, -0.0);
  bat.AppendFloat(3, 1.5);
  bat.BuildTailIndex();
  // 0.0 == -0.0 on the scan path, so the index must agree.
  auto pos = bat.SelectEq(Value::Float(0.0));
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos->size(), 2u);
  auto neg = bat.SelectEq(Value::Float(-0.0));
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->size(), 2u);
  auto nan = bat.SelectEq(Value::Float(std::nan("")));
  ASSERT_TRUE(nan.ok());
  EXPECT_TRUE(nan->empty());
}

TEST(HashIndexTest, HeadIndexAcceleratesJoinFamily) {
  Bat b(TailType::kStr);
  b.AppendStr(100, "x");
  b.AppendStr(200, "y");
  b.AppendStr(100, "z");  // duplicate head
  Bat a(TailType::kOid);
  a.AppendOid(1, 100);
  a.AppendOid(2, 300);
  a.AppendOid(3, 200);
  auto joined = Join(a, b);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->size(), 3u);
  EXPECT_EQ(joined->StrAt(0), "x");
  EXPECT_EQ(joined->StrAt(1), "z");
  EXPECT_EQ(joined->StrAt(2), "y");
  EXPECT_TRUE(b.accel_info().head_index_built);
  EXPECT_GE(b.accel_info().head_probes, 1u);

  Bat filter(TailType::kOid);
  filter.AppendOid(100, 0);
  const Bat kept = Semijoin(b, filter);
  EXPECT_EQ(kept.size(), 2u);
  const Bat dropped = Diff(b, filter);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped.StrAt(0), "y");
}

TEST(HashIndexTest, CopiesStartWithFreshAccelState) {
  Bat bat = SmallStrBat();
  bat.BuildTailIndex();
  Bat copy(bat);
  EXPECT_FALSE(copy.accel_info().tail_index_built);
  // The copy still answers probes correctly (scan or rebuilt index).
  auto selected = copy.SelectStr("alpha");
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 2u);
}

TEST(HashIndexTest, ConcurrentProbesOnSharedBat) {
  // One shared BAT, many reader threads: first-probe index construction
  // races must be internally serialized (TSAN-verified via the preset).
  Bat bat(TailType::kInt);
  for (size_t i = 0; i < 10000; ++i) {
    bat.AppendInt(static_cast<Oid>(i), static_cast<int64_t>(i % 23));
  }
  Bat probe_side(TailType::kOid);
  for (size_t i = 0; i < 500; ++i) {
    probe_side.AppendOid(static_cast<Oid>(i), static_cast<Oid>(i * 20));
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&bat, &probe_side, &failures, t] {
      for (int rep = 0; rep < 20; ++rep) {
        auto selected = bat.SelectEq(Value::Int((t + rep) % 23));
        if (!selected.ok() || selected->empty()) failures.fetch_add(1);
        auto joined = Join(probe_side, bat);
        if (!joined.ok() || joined->empty()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(bat.accel_info().tail_index_fresh);
  EXPECT_TRUE(bat.accel_info().head_index_fresh);
  EXPECT_EQ(bat.accel_info().tail_builds, 1u);
  EXPECT_EQ(bat.accel_info().head_builds, 1u);
}

TEST(HashIndexTest, AppendMaintenanceKeepsIndexFreshWithoutRebuilds) {
  // Staleness audit for streaming mode: with append maintenance on, every
  // append EXTENDS the live index in place — the build counter must never
  // move, freshness must never drop, and probes must stay exact.
  Bat bat(TailType::kInt);
  for (size_t i = 0; i < Bat::kAutoIndexMinRows * 2; ++i) {
    bat.AppendInt(static_cast<Oid>(i), static_cast<int64_t>(i % 7));
  }
  bat.BuildTailIndex();
  ASSERT_TRUE(bat.accel_info().tail_index_fresh);
  const uint64_t builds_before = bat.accel_info().tail_builds;
  const uint64_t extends_before = bat.accel_info().tail_extends;

  bat.set_append_maintenance(true);
  constexpr size_t kAppends = 200;
  ExecContext cold;
  cold.auto_index = false;
  for (size_t i = 0; i < kAppends; ++i) {
    const int64_t v = static_cast<int64_t>(i % 7);
    bat.AppendInt(static_cast<Oid>(10000 + i), v);
    ASSERT_TRUE(bat.accel_info().tail_index_fresh) << "stale after append " << i;
    auto count = bat.CountEq(Value::Int(v));
    auto scan = bat.SelectEq(Value::Int(v), cold);
    ASSERT_TRUE(count.ok());
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(*count, scan->size()) << "probe diverged at append " << i;
  }
  // The delta is pinned exactly: zero rebuilds, one extend per append, and
  // the index covers every row.
  EXPECT_EQ(bat.accel_info().tail_builds, builds_before);
  EXPECT_EQ(bat.accel_info().tail_extends, extends_before + kAppends);
  EXPECT_EQ(bat.accel_info().tail_indexed_rows, bat.size());

  // Indexed selects serve the same bytes as a cold scan after maintenance.
  for (int64_t probe : {0, 3, 6}) {
    auto indexed = bat.SelectEq(Value::Int(probe));
    auto scan = bat.SelectEq(Value::Int(probe), cold);
    ASSERT_TRUE(indexed.ok());
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(indexed->size(), scan->size());
    for (size_t i = 0; i < scan->size(); ++i) {
      EXPECT_EQ(indexed->HeadAt(i), scan->HeadAt(i));
    }
  }

  // Back in default mode the old contract still holds: appends invalidate,
  // and CountEq is probe-only — it scans exactly but NEVER builds.
  bat.set_append_maintenance(false);
  bat.AppendInt(99999, 3);
  EXPECT_FALSE(bat.accel_info().tail_index_fresh);
  const uint64_t builds_stale = bat.accel_info().tail_builds;
  auto count = bat.CountEq(Value::Int(3));
  auto scan = bat.SelectEq(Value::Int(3), cold);
  ASSERT_TRUE(count.ok());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(*count, scan->size());
  EXPECT_EQ(bat.accel_info().tail_builds, builds_stale);
  EXPECT_FALSE(bat.accel_info().tail_index_fresh);
}

TEST(CatalogStatsTest, ReportsAccelStatePerBat) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Create("names", TailType::kStr).ok());
  ASSERT_TRUE(catalog.Create("values", TailType::kFloat).ok());
  Bat* names = *catalog.Get("names");
  names->AppendStr(1, "alpha");
  names->AppendStr(2, "beta");
  names->BuildTailIndex();
  auto stats = catalog.Stats();
  ASSERT_EQ(stats.bats.size(), 2u);
  EXPECT_EQ(stats.bats[0].name, "names");
  EXPECT_EQ(stats.bats[0].tail_type, TailType::kStr);
  EXPECT_EQ(stats.bats[0].rows, 2u);
  EXPECT_EQ(stats.bats[0].accel.dict_entries, 2u);
  EXPECT_TRUE(stats.bats[0].accel.tail_index_fresh);
  EXPECT_EQ(stats.bats[1].name, "values");
  EXPECT_FALSE(stats.bats[1].accel.tail_index_built);
  // No store attached: the durability block reports zeros.
  EXPECT_FALSE(stats.store.attached);
  EXPECT_EQ(stats.store.checkpoint_lsn, 0u);
}

}  // namespace
}  // namespace cobra::kernel
