// Dictionary-encoded string tails across every persistence path: Append,
// Concat (code remapping), snapshot save/load, and WAL replay must all agree
// on the dictionary heap (order and codes) and the per-row strings — for
// the empty string, duplicate-heavy columns, and strings larger than one
// snapshot page (>64 KiB).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/io.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/persist.h"

namespace cobra::kernel {
namespace {

Bat TrickyStrBat() {
  Bat bat(TailType::kStr);
  bat.AppendStr(1, "alpha");
  bat.AppendStr(2, "");  // the empty string is a real dictionary entry
  bat.AppendStr(3, "alpha");
  bat.AppendStr(4, std::string(70 * 1024, 'z'));  // spans a page boundary
  bat.AppendStr(5, "");
  for (Oid i = 6; i < 60; ++i) {
    bat.AppendStr(i, i % 3 == 0 ? "dup-a" : "dup-b");
  }
  return bat;
}

void ExpectSameStrings(const Bat& a, const Bat& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.DictSize(), b.DictSize());
  // The dictionary heap round-trips in code order, so codes — not just the
  // decoded strings — are identical row by row.
  for (uint32_t code = 0; code < a.DictSize(); ++code) {
    EXPECT_EQ(a.DictAt(code), b.DictAt(code)) << "code " << code;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.HeadAt(i), b.HeadAt(i)) << "row " << i;
    EXPECT_EQ(a.StrAt(i), b.StrAt(i)) << "row " << i;
    EXPECT_EQ(a.TailKeyAt(i), b.TailKeyAt(i)) << "row " << i;
  }
}

TEST(DictRoundTripTest, SnapshotPreservesDictionaryExactly) {
  io::MemFs fs;
  Catalog catalog;
  catalog.Put("tricky", TrickyStrBat());

  PersistentStore writer(&fs, "d");
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Checkpoint(catalog).ok());

  Catalog recovered;
  PersistentStore reader(&fs, "d");
  ASSERT_TRUE(reader.Recover(&recovered).ok());
  auto bat = recovered.Get("tricky");
  ASSERT_TRUE(bat.ok());
  ExpectSameStrings(TrickyStrBat(), **bat);
  EXPECT_EQ(PersistentStore::DumpCatalog(catalog),
            PersistentStore::DumpCatalog(recovered));
}

TEST(DictRoundTripTest, WalReplayRebuildsTheSameDictionary) {
  // No snapshot at all: per-row kAppend records must re-intern the strings
  // into the identical dictionary (same codes, same heap order).
  io::MemFs fs;
  Catalog catalog;
  PersistentStore store(&fs, "d");
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.LogCreate("tricky", TailType::kStr).ok());
  ASSERT_TRUE(catalog.Create("tricky", TailType::kStr).ok());
  Bat* live = *catalog.Get("tricky");
  const Bat reference = TrickyStrBat();
  for (size_t i = 0; i < reference.size(); ++i) {
    const Value v = Value::Str(reference.StrAt(i));
    ASSERT_TRUE(store.LogAppend("tricky", reference.HeadAt(i), v).ok());
    ASSERT_TRUE(live->Append(reference.HeadAt(i), v).ok());
  }

  Catalog recovered;
  PersistentStore reader(&fs, "d");
  ASSERT_TRUE(reader.Recover(&recovered).ok());
  auto bat = recovered.Get("tricky");
  ASSERT_TRUE(bat.ok());
  ExpectSameStrings(*live, **bat);
}

TEST(DictRoundTripTest, ConcatAfterRecoveryRemapsCodes) {
  io::MemFs fs;
  Catalog catalog;
  catalog.Put("tricky", TrickyStrBat());
  PersistentStore writer(&fs, "d");
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Checkpoint(catalog).ok());

  Catalog recovered;
  PersistentStore reader(&fs, "d");
  ASSERT_TRUE(reader.Recover(&recovered).ok());
  Bat* live = *recovered.Get("tricky");

  // Concat a BAT whose private codes collide with the recovered ones: the
  // remap must dedupe "dup-a" into the existing entry and intern only the
  // genuinely new string.
  Bat extra(TailType::kStr);
  extra.AppendStr(100, "dup-a");
  extra.AppendStr(101, "fresh");
  const uint64_t dict_before = live->DictSize();
  live->Concat(extra);
  EXPECT_EQ(live->DictSize(), dict_before + 1);
  EXPECT_EQ(live->StrAt(live->size() - 2), "dup-a");
  EXPECT_EQ(live->StrAt(live->size() - 1), "fresh");

  // The grown BAT round-trips again (Put logs a full image).
  ASSERT_TRUE(reader.LogPut("tricky", *live).ok());
  Catalog again;
  PersistentStore reader2(&fs, "d");
  ASSERT_TRUE(reader2.Recover(&again).ok());
  ExpectSameStrings(*live, **again.Get("tricky"));
}

}  // namespace
}  // namespace cobra::kernel
