#include <atomic>
#include <string>

#include <gtest/gtest.h>

#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/parallel.h"

namespace cobra::kernel {
namespace {

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Float(1.5).AsFloat(), 1.5);
  EXPECT_EQ(Value::Str("x").AsStr(), "x");
  EXPECT_EQ(Value::OfOid(9).AsOid(), 9u);
}

TEST(ValueTest, NumericView) {
  ASSERT_TRUE(Value::Int(3).Numeric().ok());
  EXPECT_DOUBLE_EQ(*Value::Int(3).Numeric(), 3.0);
  ASSERT_TRUE(Value::Float(2.5).Numeric().ok());
  EXPECT_DOUBLE_EQ(*Value::Float(2.5).Numeric(), 2.5);
}

TEST(ValueTest, NumericViewRejectsNonNumeric) {
  auto str = Value::Str("x").Numeric();
  ASSERT_FALSE(str.ok());
  EXPECT_EQ(str.status().code(), StatusCode::kInvalidArgument);
  auto oid = Value::OfOid(9).Numeric();
  ASSERT_FALSE(oid.ok());
  EXPECT_EQ(oid.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatTest, AppendTypeChecked) {
  Bat bat(TailType::kFloat);
  EXPECT_TRUE(bat.Append(1, Value::Float(0.5)).ok());
  EXPECT_FALSE(bat.Append(2, Value::Int(1)).ok());
  EXPECT_EQ(bat.size(), 1u);
}

TEST(BatTest, SelectRange) {
  Bat bat(TailType::kFloat);
  for (int i = 0; i < 10; ++i) bat.AppendFloat(i, i * 0.1);
  auto selected = bat.SelectRange(0.25, 0.65);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 4u);  // 0.3, 0.4, 0.5, 0.6
  EXPECT_EQ(selected->HeadAt(0), 3u);
}

TEST(BatTest, SelectEqAndStr) {
  Bat bat(TailType::kStr);
  bat.AppendStr(1, "highlight");
  bat.AppendStr(2, "pitstop");
  bat.AppendStr(3, "highlight");
  auto selected = bat.SelectStr("highlight");
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 2u);
  EXPECT_FALSE(bat.SelectRange(0, 1).ok());  // non-numeric tail
}

TEST(BatTest, ReverseRequiresOidTail) {
  Bat links(TailType::kOid);
  links.AppendOid(1, 10);
  links.AppendOid(2, 20);
  auto reversed = links.Reverse();
  ASSERT_TRUE(reversed.ok());
  EXPECT_EQ(reversed->HeadAt(0), 10u);
  EXPECT_EQ(reversed->OidAt(0), 1u);

  Bat floats(TailType::kFloat);
  EXPECT_FALSE(floats.Reverse().ok());
}

TEST(BatTest, MirrorAndSlice) {
  Bat bat(TailType::kInt);
  for (int i = 0; i < 5; ++i) bat.AppendInt(10 + i, i);
  Bat mirror = bat.Mirror();
  EXPECT_EQ(mirror.OidAt(2), 12u);
  Bat slice = bat.Slice(1, 3);
  EXPECT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice.IntAt(0), 1);
}

TEST(BatTest, Aggregates) {
  Bat bat(TailType::kInt);
  for (int v : {4, 1, 7, 2}) bat.AppendInt(0, v);
  EXPECT_DOUBLE_EQ(*bat.Sum(), 14.0);
  EXPECT_DOUBLE_EQ(*bat.Max(), 7.0);
  EXPECT_DOUBLE_EQ(*bat.Min(), 1.0);
  EXPECT_EQ(*bat.ArgMax(), 2u);
  Bat empty(TailType::kInt);
  EXPECT_FALSE(empty.Max().ok());
}

TEST(BatOpsTest, JoinFollowsOidTails) {
  Bat links(TailType::kOid);  // event -> video
  links.AppendOid(100, 1);
  links.AppendOid(101, 2);
  links.AppendOid(102, 1);
  Bat names(TailType::kStr);  // video -> name
  names.AppendStr(1, "german");
  names.AppendStr(2, "belgian");
  auto joined = Join(links, names);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->size(), 3u);
  EXPECT_EQ(joined->HeadAt(0), 100u);
  EXPECT_EQ(joined->StrAt(0), "german");
  EXPECT_EQ(joined->StrAt(1), "belgian");
}

TEST(BatOpsTest, SemijoinAndDiffPartition) {
  Bat data(TailType::kInt);
  for (int i = 0; i < 6; ++i) data.AppendInt(i, i);
  Bat keys(TailType::kOid);
  keys.AppendOid(1, 1);
  keys.AppendOid(3, 3);
  Bat in = Semijoin(data, keys);
  Bat out = Diff(data, keys);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(in.size() + out.size(), data.size());
}

TEST(BatOpsTest, GroupAssignsDenseIds) {
  Bat bat(TailType::kStr);
  bat.AppendStr(0, "a");
  bat.AppendStr(1, "b");
  bat.AppendStr(2, "a");
  std::vector<size_t> reps;
  Bat groups = Group(bat, &reps);
  EXPECT_EQ(groups.OidAt(0), groups.OidAt(2));
  EXPECT_NE(groups.OidAt(0), groups.OidAt(1));
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0], 0u);
  EXPECT_EQ(reps[1], 1u);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  auto bat = catalog.Create("f1", TailType::kFloat);
  ASSERT_TRUE(bat.ok());
  EXPECT_FALSE(catalog.Create("f1", TailType::kInt).ok());
  EXPECT_TRUE(catalog.Get("f1").ok());
  EXPECT_TRUE(catalog.Exists("f1"));
  EXPECT_TRUE(catalog.Drop("f1").ok());
  EXPECT_FALSE(catalog.Get("f1").ok());
  EXPECT_FALSE(catalog.Drop("f1").ok());
}

TEST(CatalogTest, PutOverwrites) {
  Catalog catalog;
  Bat a(TailType::kInt);
  a.AppendInt(0, 1);
  catalog.Put("x", std::move(a));
  Bat b(TailType::kInt);
  catalog.Put("x", std::move(b));
  EXPECT_EQ((*catalog.Get("x"))->size(), 0u);
}

TEST(CatalogTest, NamesSorted) {
  Catalog catalog;
  (void)catalog.Create("zeta", TailType::kInt);
  (void)catalog.Create("alpha", TailType::kInt);
  auto names = catalog.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
}

TEST(ParallelTest, ExecutesAllTasks) {
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  ParallelExec(tasks);
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace cobra::kernel
