#include <gtest/gtest.h>

#include "kws/keyword_spotter.h"

namespace cobra::kws {
namespace {

std::vector<PhoneToken> StreamOf(const std::string& letters,
                                 double confidence = 0.9) {
  std::vector<PhoneToken> stream;
  for (size_t i = 0; i < letters.size(); ++i) {
    PhoneToken tok;
    tok.time_sec = static_cast<double>(i) * 0.1;
    tok.phone = PhoneOf(letters[i]);
    tok.confidence = tok.phone >= 0 ? confidence : 0.0;
    stream.push_back(tok);
  }
  return stream;
}

TEST(PhoneTest, LettersMapDensely) {
  EXPECT_EQ(PhoneOf('A'), 0);
  EXPECT_EQ(PhoneOf('z'), 25);
  EXPECT_EQ(PhoneOf(' '), -1);
  EXPECT_EQ(PhoneOf('3'), -1);
}

TEST(PhoneTest, SequenceSkipsNonLetters) {
  auto seq = PhoneSequence("PIT-STOP");
  EXPECT_EQ(seq.size(), 7u);
}

TEST(SpotterTest, FindsEmbeddedKeyword) {
  KeywordSpotter spotter({"CRASH"});
  auto hits = spotter.Spot(StreamOf("THE CAR CRASH NOW"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].word, "CRASH");
  EXPECT_NEAR(hits[0].start_sec, 0.8, 1e-9);
  EXPECT_NEAR(hits[0].duration_sec, 0.5, 1e-9);
  EXPECT_GT(hits[0].normalized, 0.8);
}

TEST(SpotterTest, SilenceBreaksChains) {
  KeywordSpotter spotter({"CRASH"});
  // 'CRA SH': silence in the middle kills the chain.
  auto hits = spotter.Spot(StreamOf("CRA SH"));
  EXPECT_TRUE(hits.empty());
}

TEST(SpotterTest, ToleratesOneSubstitution) {
  KeywordSpotter spotter({"CRASH"});
  auto hits = spotter.Spot(StreamOf("CRASH"));
  ASSERT_EQ(hits.size(), 1u);
  auto noisy = StreamOf("CRXSH");
  hits = spotter.Spot(noisy);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_LT(hits[0].normalized, 0.9);  // substitution costs score
}

TEST(SpotterTest, RejectsMostlySubstituted) {
  KeywordSpotter spotter({"CRASH"});
  EXPECT_TRUE(spotter.Spot(StreamOf("CXYSZ")).empty());
}

TEST(SpotterTest, LowConfidenceRejected) {
  KeywordSpotter spotter({"CRASH"});
  EXPECT_TRUE(spotter.Spot(StreamOf("CRASH", 0.3)).empty());
}

TEST(SpotterTest, MultipleKeywordsSortedByTime) {
  KeywordSpotter spotter({"SPIN", "GRAVEL"});
  auto hits = spotter.Spot(StreamOf("GRAVEL AND SPIN"));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].word, "GRAVEL");
  EXPECT_EQ(hits[1].word, "SPIN");
  EXPECT_LT(hits[0].start_sec, hits[1].start_sec);
}

TEST(SpotterTest, OverlappingDuplicatesSuppressed) {
  // "CRASHCRASH" yields two distinct (non-overlapping) hits, not chains at
  // every offset.
  KeywordSpotter spotter({"CRASH"});
  auto hits = spotter.Spot(StreamOf("CRASHCRASH"));
  EXPECT_EQ(hits.size(), 2u);
}

TEST(SpotterTest, ScoreIsNonNormalizedSum) {
  KeywordSpotter spotter({"GO"});
  auto hits = spotter.Spot(StreamOf("GO"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NEAR(hits[0].score, 1.8, 1e-9);       // 2 phones x 0.9
  EXPECT_NEAR(hits[0].normalized, 0.9, 1e-9);  // score / length
}

}  // namespace
}  // namespace cobra::kws
