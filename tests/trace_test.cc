// Tests of the tracing/profiling layer: span-tree shape, the stable JSON
// schema (round-tripped through the strict validator), hand-computed
// operator counters, the zero-allocation guarantee of the disabled path,
// the MIL `trace` statement, and PROFILE queries (including the from_cache
// contract for results served from the engine's cache).

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/trace.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/exec_context.h"
#include "kernel/mil.h"
#include "query/engine.h"
#include "query/parser.h"

namespace cobra {
namespace {

using kernel::Bat;
using kernel::ExecContext;
using kernel::Oid;
using kernel::TailType;
using kernel::Value;

ExecContext TracedCtx(trace::TraceSink* sink, int threadcnt = 1,
                      bool auto_index = true) {
  ExecContext ctx;
  ctx.threadcnt = threadcnt;
  ctx.morsel_rows = 32;
  ctx.serial_cutoff = 1;
  ctx.auto_index = auto_index;
  ctx.trace = sink;
  return ctx;
}

// -- TraceSink ---------------------------------------------------------------

TEST(TraceSinkTest, SpanTreeShapeAndText) {
  trace::TraceSink sink;
  trace::Span* root = sink.StartSpan(nullptr, "query.execute");
  trace::Span* child = sink.StartSpan(root, "query.filter");
  sink.StartSpan(child, "kernel.select_eq");
  sink.StartSpan(nullptr, "query.execute");

  EXPECT_EQ(sink.root_count(), 2u);
  ASSERT_EQ(sink.roots()[0]->children.size(), 1u);
  EXPECT_EQ(sink.roots()[0]->children[0]->name, "query.filter");
  ASSERT_EQ(sink.roots()[0]->children[0]->children.size(), 1u);

  root->rows_in = 10;
  root->rows_out = 3;
  child->detail = "type=highlight";
  const std::string text = sink.ToText();
  EXPECT_NE(text.find("query.execute"), std::string::npos);
  EXPECT_NE(text.find("  query.filter (type=highlight)"), std::string::npos);
  EXPECT_NE(text.find("    kernel.select_eq"), std::string::npos);
  EXPECT_NE(text.find("rows_in=10"), std::string::npos);

  sink.Clear();
  EXPECT_EQ(sink.root_count(), 0u);
}

TEST(TraceSinkTest, JsonExportValidatesAndEscapes) {
  trace::TraceSink sink;
  trace::Span* root = sink.StartSpan(nullptr, "query.execute");
  root->detail = "video=\"race\"\nline2\ttab\\slash";
  root->rows_in = 7;
  root->from_cache = true;
  sink.StartSpan(root, "kernel.join");

  const std::string json = sink.ToJson();
  EXPECT_TRUE(trace::ValidateJson(json).ok()) << json;
  // The schema keys are all present, in stable form.
  for (const char* key :
       {"\"name\"", "\"detail\"", "\"seconds\"", "\"rows_in\"", "\"rows_out\"",
        "\"morsels\"", "\"index_probes\"", "\"index_builds\"",
        "\"index_invalidations\"", "\"dict_hits\"", "\"from_cache\"",
        "\"children\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\\\"race\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\"from_cache\":true"), std::string::npos);

  // An empty sink is still a valid (empty) JSON array.
  sink.Clear();
  EXPECT_EQ(sink.ToJson(), "[]");
  EXPECT_TRUE(trace::ValidateJson(sink.ToJson()).ok());
}

TEST(TraceSinkTest, StaticCardinalityRendersInTextAndJson) {
  trace::TraceSink sink;
  trace::Span* bounded = sink.StartSpan(nullptr, "mil.select");
  bounded->rows_out = 4;
  bounded->has_static_card = true;
  bounded->static_lo = 0;
  bounded->static_hi = 10;
  trace::Span* unbounded = sink.StartSpan(nullptr, "query.scan");
  unbounded->has_static_card = true;
  unbounded->static_lo = 0;
  unbounded->static_hi = UINT64_MAX;
  trace::Span* plain = sink.StartSpan(nullptr, "kernel.join");
  plain->rows_out = 2;

  const std::string text = sink.ToText();
  EXPECT_NE(text.find("static=[0,10]"), std::string::npos) << text;
  // An unbounded upper bound renders as `*`, not a number.
  EXPECT_NE(text.find("static=[0,*]"), std::string::npos) << text;

  const std::string json = sink.ToJson();
  EXPECT_TRUE(trace::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"static_lo\":0,\"static_hi\":10"), std::string::npos)
      << json;
  // Unbounded exports as -1 (JSON has no UINT64_MAX); stamped spans only.
  EXPECT_NE(json.find("\"static_hi\":-1"), std::string::npos) << json;
  // The span without a static interval exports neither key nor the text tag.
  const size_t first = json.find("\"static_lo\"");
  const size_t second = json.find("\"static_lo\"", first + 1);
  EXPECT_NE(second, std::string::npos);
  EXPECT_EQ(json.find("\"static_lo\"", second + 1), std::string::npos);
}

TEST(TraceSinkTest, ValidateJsonRejectsMalformed) {
  EXPECT_TRUE(trace::ValidateJson("[{\"a\": [1, 2.5e3, null, true]}]").ok());
  EXPECT_FALSE(trace::ValidateJson("").ok());
  EXPECT_FALSE(trace::ValidateJson("{").ok());
  EXPECT_FALSE(trace::ValidateJson("[1,]").ok());
  EXPECT_FALSE(trace::ValidateJson("{\"a\" 1}").ok());
  EXPECT_FALSE(trace::ValidateJson("\"unterminated").ok());
  EXPECT_FALSE(trace::ValidateJson("[1] trailing").ok());
  EXPECT_FALSE(trace::ValidateJson("nan").ok());
  EXPECT_FALSE(trace::ValidateJson("01x").ok());
  EXPECT_FALSE(trace::ValidateJson("\"bad \\q escape\"").ok());
  EXPECT_FALSE(trace::ValidateJson("\"bad \\u12g4\"").ok());
  // Nesting past the depth limit is rejected, not stack-overflowed.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(trace::ValidateJson(deep).ok());
}

// -- Kernel operator counters ------------------------------------------------

TEST(KernelTraceTest, SelectCountersMatchHandComputed) {
  Bat bat(TailType::kInt);
  for (size_t i = 0; i < 20; ++i) {
    bat.AppendInt(static_cast<Oid>(i), static_cast<int64_t>(i % 4));
  }
  trace::TraceSink sink;
  // Serial scan (no index on a 20-row BAT): morsels=1, exact row counts.
  auto selected = bat.SelectEq(Value::Int(3), TracedCtx(&sink));
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 5u);
  ASSERT_EQ(sink.root_count(), 1u);
  {
    const trace::Span& span = *sink.roots()[0];
    EXPECT_EQ(span.name, "kernel.select_eq");
    EXPECT_EQ(span.rows_in, 20u);
    EXPECT_EQ(span.rows_out, 5u);
    EXPECT_EQ(span.morsels, 1u);
    EXPECT_EQ(span.index_probes, 0u);
  }
  // Index-answered probe: morsels=0, one probe recorded.
  bat.BuildTailIndex();
  sink.Clear();
  ASSERT_TRUE(bat.SelectEq(Value::Int(3), TracedCtx(&sink)).ok());
  ASSERT_EQ(sink.root_count(), 1u);
  {
    const trace::Span& span = *sink.roots()[0];
    EXPECT_EQ(span.rows_out, 5u);
    EXPECT_EQ(span.morsels, 0u);
    EXPECT_EQ(span.index_probes, 1u);
    EXPECT_EQ(span.index_builds, 0u);  // probe reused the prebuilt index
  }
  // A mutation staled the index; the next probe's rebuild is recorded as an
  // invalidation.
  bat.AppendInt(99, 3);
  sink.Clear();
  ASSERT_TRUE(bat.SelectEq(Value::Int(3), TracedCtx(&sink)).ok());
  ASSERT_EQ(sink.root_count(), 1u);
  {
    const trace::Span& span = *sink.roots()[0];
    EXPECT_EQ(span.rows_out, 6u);
    EXPECT_EQ(span.index_probes, 1u);
    EXPECT_EQ(span.index_builds, 1u);
    EXPECT_EQ(span.index_invalidations, 1u);
  }
}

TEST(KernelTraceTest, ParallelMorselCountRecorded) {
  Bat bat(TailType::kFloat);
  for (size_t i = 0; i < 523; ++i) {
    bat.AppendFloat(static_cast<Oid>(i), static_cast<double>(i % 9));
  }
  trace::TraceSink sink;
  ExecContext ctx = TracedCtx(&sink, /*threadcnt=*/2, /*auto_index=*/false);
  ASSERT_TRUE(bat.SelectRange(2.0, 5.0, ctx).ok());
  ASSERT_EQ(sink.root_count(), 1u);
  EXPECT_EQ(sink.roots()[0]->name, "kernel.select_range");
  EXPECT_EQ(sink.roots()[0]->morsels, ctx.NumMorsels(bat.size()));
  EXPECT_EQ(sink.roots()[0]->rows_in, 523u);
}

TEST(KernelTraceTest, DictionaryHitsAndMaxDelegation) {
  Bat strs(TailType::kStr);
  strs.AppendStr(1, "alpha");
  strs.AppendStr(2, "beta");
  strs.AppendStr(3, "alpha");
  trace::TraceSink sink;
  ASSERT_TRUE(strs.SelectStr("alpha", TracedCtx(&sink)).ok());
  ASSERT_TRUE(strs.SelectStr("absent", TracedCtx(&sink)).ok());
  ASSERT_EQ(sink.root_count(), 2u);
  EXPECT_EQ(sink.roots()[0]->name, "kernel.select_str");
  EXPECT_EQ(sink.roots()[0]->dict_hits, 1u);
  EXPECT_EQ(sink.roots()[0]->rows_out, 2u);
  // A probe for a string absent from the dictionary resolves nothing.
  EXPECT_EQ(sink.roots()[1]->dict_hits, 0u);
  EXPECT_EQ(sink.roots()[1]->rows_out, 0u);

  // Max delegates to ArgMax; the delegation nests as a child span.
  Bat nums(TailType::kInt);
  for (size_t i = 0; i < 5; ++i) nums.AppendInt(i, static_cast<int64_t>(i));
  sink.Clear();
  ASSERT_TRUE(nums.Max(TracedCtx(&sink)).ok());
  ASSERT_EQ(sink.root_count(), 1u);
  EXPECT_EQ(sink.roots()[0]->name, "kernel.max");
  ASSERT_EQ(sink.roots()[0]->children.size(), 1u);
  EXPECT_EQ(sink.roots()[0]->children[0]->name, "kernel.arg_max");
}

TEST(KernelTraceTest, DisabledSinkAllocatesNoSpans) {
  Bat bat(TailType::kInt);
  for (size_t i = 0; i < 300; ++i) {
    bat.AppendInt(static_cast<Oid>(i), static_cast<int64_t>(i % 7));
  }
  Bat filter(TailType::kOid);
  for (size_t i = 0; i < 50; ++i) filter.AppendOid(static_cast<Oid>(i), 1);

  const uint64_t before = trace::SpansAllocated();
  // Context forms with no sink installed, plus the context-free forms:
  // the instrumentation must stay entirely off this path.
  ExecContext ctx = TracedCtx(nullptr, /*threadcnt=*/2);
  ASSERT_TRUE(bat.SelectEq(Value::Int(3), ctx).ok());
  ASSERT_TRUE(bat.SelectRange(1.0, 5.0, ctx).ok());
  ASSERT_TRUE(bat.Sum(ctx).ok());
  ASSERT_TRUE(bat.Max(ctx).ok());
  (void)kernel::Semijoin(bat, filter, ctx);
  (void)kernel::Diff(bat, filter, ctx);
  std::vector<size_t> reps;
  (void)kernel::Group(bat, &reps, ctx);
  ASSERT_TRUE(bat.SelectEq(Value::Int(3)).ok());
  EXPECT_EQ(trace::SpansAllocated(), before);
}

// -- MIL `trace` statement ---------------------------------------------------

TEST(MilTraceTest, TraceOnDumpJsonOff) {
  kernel::Catalog catalog;
  kernel::MilSession session(&catalog);
  auto out = session.Execute(
      "trace on;"
      "VAR b := insert(insert(new('int'), 1, 5), 2, 5);"
      "VAR s := select(b, 5, 5);"
      "trace dump;");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("kernel.select_range"), std::string::npos);

  auto json_out = session.Execute("trace json;");
  ASSERT_TRUE(json_out.ok());
  // The dump line is the full JSON export; it must validate.
  const std::string json = json_out->substr(0, json_out->find('\n'));
  EXPECT_TRUE(trace::ValidateJson(json).ok()) << json;

  // `trace off` stops recording but keeps the collected spans: a dump after
  // further operators is unchanged.
  auto before_off = session.Execute("trace dump;");
  ASSERT_TRUE(before_off.ok());
  ASSERT_TRUE(session.Execute("trace off; VAR t := select(b, 5, 5);").ok());
  auto after_off = session.Execute("trace dump;");
  ASSERT_TRUE(after_off.ok());
  EXPECT_EQ(*before_off, *after_off);
}

TEST(MilTraceTest, TraceErrors) {
  kernel::Catalog catalog;
  kernel::MilSession session(&catalog);
  // dump/json before `trace on` is a typed error, not a crash.
  EXPECT_FALSE(session.Execute("trace dump;").ok());
  EXPECT_FALSE(session.Execute("trace json;").ok());
  EXPECT_FALSE(session.Execute("trace sideways;").ok());
  EXPECT_FALSE(session.Execute("trace 7;").ok());
  EXPECT_FALSE(session.Execute("trace;").ok());
}

// -- PROFILE queries ---------------------------------------------------------

class ProfileQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = videos_.RegisterVideo("race", 600.0);
    ASSERT_TRUE(id.ok());
    video_ = *id;
    StoreEvent("highlight", 30, 40, {});
    StoreEvent("highlight", 100, 110, {{"driver", "ALESI"}});
    StoreEvent("caption", 102, 106, {{"driver", "ALESI"}});
    StoreEvent("caption", 300, 304, {{"driver", "BUTTON"}});
  }

  void StoreEvent(const std::string& type, double b, double e,
                  std::map<std::string, std::string> attrs) {
    model::EventRecord record;
    record.type = type;
    record.begin_sec = b;
    record.end_sec = e;
    record.attrs = std::move(attrs);
    ASSERT_TRUE(videos_.StoreEvent(video_, record).ok());
  }

  kernel::Catalog catalog_;
  model::VideoCatalog videos_{&catalog_};
  extensions::ExtensionRegistry registry_;
  query::QueryEngine engine_{&videos_, &registry_};
  model::VideoId video_ = 0;
};

TEST_F(ProfileQueryTest, ProfileReturnsPlanShapedTree) {
  auto result = engine_.Execute(
      "PROFILE RETRIEVE highlight FROM 'race' OVERLAPPING caption WHERE "
      "driver = 'ALESI'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->segments.size(), 1u);
  ASSERT_FALSE(result->profile_text.empty());
  ASSERT_FALSE(result->profile_json.empty());
  EXPECT_TRUE(trace::ValidateJson(result->profile_json).ok())
      << result->profile_json;
  // The plan shape: root execute with cache lookup, preprocessor decisions
  // (one per pattern), filters, and the temporal join.
  EXPECT_NE(result->profile_text.find("query.execute"), std::string::npos);
  EXPECT_NE(result->profile_text.find("query.cache_lookup (miss)"),
            std::string::npos);
  EXPECT_NE(result->profile_text.find("metadata=present"), std::string::npos);
  EXPECT_NE(result->profile_text.find("query.filter (type=highlight)"),
            std::string::npos);
  EXPECT_NE(result->profile_text.find("query.filter (type=caption)"),
            std::string::npos);
  EXPECT_NE(result->profile_text.find("query.temporal_join (op=overlapping)"),
            std::string::npos);
  // Row counts sum consistently: 2 highlights past the (empty) primary
  // filter, 1 caption past the secondary filter, so the join takes
  // 2 + 1 = 3 rows in and emits the one overlapping highlight.
  EXPECT_NE(result->profile_json.find(
                "\"name\":\"query.temporal_join\",\"detail\":\"op=overlapping\""
                ",\"seconds\""),
            std::string::npos);
  EXPECT_NE(result->profile_json.find("\"rows_in\":3"), std::string::npos);
  EXPECT_NE(result->profile_text.find("rows_in=3 rows_out=1"),
            std::string::npos);

  // A plain query returns no profile.
  auto plain = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->profile_text.empty());
  EXPECT_TRUE(plain->profile_json.empty());
}

TEST_F(ProfileQueryTest, CachedProfileMarkedFromCacheNotReplayed) {
  // First run populates the cache (PROFILE shares the entry with the plain
  // form — the profile itself is never cached).
  auto first = engine_.Execute("PROFILE RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_EQ(first->profile_text.find("from_cache"), std::string::npos);
  EXPECT_NE(first->profile_text.find("query.filter"), std::string::npos);

  auto second = engine_.Execute("PROFILE RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->segments.size(), first->segments.size());
  // The cached run's tree reports the hit; it does NOT replay the filter /
  // preprocess spans (or their timings) from the original execution.
  EXPECT_NE(second->profile_text.find("from_cache"), std::string::npos);
  EXPECT_NE(second->profile_text.find("query.cache_lookup (hit)"),
            std::string::npos);
  EXPECT_EQ(second->profile_text.find("query.filter"), std::string::npos);
  EXPECT_EQ(second->profile_text.find("query.preprocess"), std::string::npos);
  EXPECT_TRUE(trace::ValidateJson(second->profile_json).ok());
  EXPECT_NE(second->profile_json.find("\"from_cache\":true"),
            std::string::npos);
}

TEST_F(ProfileQueryTest, ProfileParseErrors) {
  // PROFILE with no query is a typed parse error.
  auto bare = query::ParseQuery("PROFILE");
  ASSERT_FALSE(bare.ok());
  EXPECT_NE(bare.status().ToString().find("RETRIEVE"), std::string::npos)
      << bare.status().ToString();
  EXPECT_FALSE(query::ParseQuery("PROFILE PROFILE RETRIEVE h FROM 'x'").ok());
  auto q = query::ParseQuery("profile retrieve highlight from 'race'");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->profile);
}

}  // namespace
}  // namespace cobra
