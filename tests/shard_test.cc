// Unit coverage of the sharded scatter-gather layer (kernel/shard.h) and
// its integration points: partitioning invariants, zone-map pruning, the
// exchange trace spans, ShardedCatalog semantics, the MIL `shards(n)`
// statement (interpreter/analyzer parity on the storage-statement gate),
// the query layer's sharded snapshot set, and a TSAN hammer over the
// scan-stats cache. The byte-identity sweep itself lives in
// differential_test.cc; this file pins the structural contracts.

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/diag.h"
#include "base/io.h"
#include "base/trace.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/exec_context.h"
#include "kernel/mil.h"
#include "kernel/shard.h"
#include "query/analyzer.h"
#include "query/engine.h"
#include "query/parser.h"
#include "query/snapshot.h"

namespace cobra::kernel {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

// ---------------------------------------------------------------------------
// Partitioning.

TEST(ShardRangesTest, BoundariesAlignAndCover) {
  for (const size_t rows : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                            size_t{65}, size_t{1000}}) {
    for (const size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
      for (const size_t align : {size_t{1}, size_t{4}, size_t{32}}) {
        SCOPED_TRACE("rows=" + std::to_string(rows) +
                     " shards=" + std::to_string(shards) +
                     " align=" + std::to_string(align));
        const std::vector<ShardRange> ranges = ShardRanges(rows, shards, align);
        ASSERT_EQ(ranges.size(), shards);
        EXPECT_EQ(ranges.front().begin, 0u);
        EXPECT_EQ(ranges.back().end, rows);
        for (size_t k = 0; k < shards; ++k) {
          EXPECT_LE(ranges[k].begin, ranges[k].end);
          if (k > 0) {
            EXPECT_EQ(ranges[k].begin, ranges[k - 1].end);
          }
          // Every interior boundary is a multiple of the quantum.
          if (ranges[k].begin != rows) {
            EXPECT_EQ(ranges[k].begin % align, 0u);
          }
        }
      }
    }
  }
}

TEST(ShardRangesTest, HugeAlignPutsEverythingInOneShard) {
  // morsel_rows = 0 saturates MorselRows() to ~0; partitioning under that
  // quantum must not overflow and must keep all rows in a single slice.
  const std::vector<ShardRange> ranges = ShardRanges(100, 4, ~size_t{0});
  size_t covered = 0;
  for (const ShardRange& r : ranges) covered += r.size();
  EXPECT_EQ(covered, 100u);
}

TEST(PartitionedBatTest, GatherRestoresDictionaryStringsExactly) {
  Bat bat(TailType::kStr);
  for (Oid i = 0; i < 100; ++i) {
    bat.AppendStr(i, i % 3 == 0 ? "" : (i % 2 == 0 ? "alpha" : "beta"));
  }
  const PartitionedBat part(bat, 3, 8);
  const ShardedBat sb = part.View();
  EXPECT_EQ(sb.rows(), bat.size());
  EXPECT_TRUE(sb.AlignedTo(8));
  EXPECT_TRUE(sb.AlignedTo(4));  // 8 is a multiple of 4

  const Bat back = GatherShards(sb, ExecContext::Serial());
  ASSERT_EQ(back.size(), bat.size());
  for (size_t i = 0; i < bat.size(); ++i) {
    EXPECT_EQ(back.HeadAt(i), bat.HeadAt(i));
    EXPECT_EQ(back.StrAt(i), bat.StrAt(i));
  }
}

// ---------------------------------------------------------------------------
// Zone maps and pruning.

TEST(ShardStatsTest, NaNOnlyShardIsPrunableAndNeverMatches) {
  // Shard 1 is all-NaN: has_non_nan == false, so every range prunes it —
  // which is exactly right, because SelectRange never matches a NaN row.
  Bat bat(TailType::kFloat);
  for (Oid i = 0; i < 4; ++i) bat.AppendFloat(i, static_cast<double>(i));
  for (Oid i = 4; i < 8; ++i) bat.AppendFloat(i, kNaN);
  for (Oid i = 8; i < 12; ++i) bat.AppendFloat(i, 100.0 + i);

  const PartitionedBat part(bat, 3, 4);
  const ExecContext ctx = ExecContext::Serial();
  const std::vector<ShardStats> stats = ComputeShardStats(part.View(), ctx);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_TRUE(stats[0].has_non_nan);
  EXPECT_EQ(stats[0].min, 0.0);
  EXPECT_EQ(stats[0].max, 3.0);
  EXPECT_FALSE(stats[1].has_non_nan);
  EXPECT_TRUE(stats[2].has_non_nan);

  ExchangeOptions opts;
  opts.scan_stats = &stats;
  trace::TraceSink sink;
  ExecContext traced = ctx;
  traced.trace = &sink;
  // A window over shard 0 only: shards 1 (NaN) and 2 (disjoint) prune.
  auto pruned = ShardedSelectRange(part.View(), 1.0, 2.0, traced, opts);
  ASSERT_TRUE(pruned.ok());
  auto full = bat.SelectRange(1.0, 2.0);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(pruned->size(), full->size());
  for (size_t i = 0; i < full->size(); ++i) {
    EXPECT_EQ(pruned->HeadAt(i), full->HeadAt(i));
    EXPECT_TRUE(SameBits(pruned->FloatAt(i), full->FloatAt(i)));
  }

  // The scatter span reports the pruned shard count.
  ASSERT_GE(sink.root_count(), 1u);
  EXPECT_EQ(sink.roots()[0]->name, "exchange.scatter");
  EXPECT_NE(sink.roots()[0]->detail.find("op=select_range pruned=2"),
            std::string::npos)
      << sink.roots()[0]->detail;
}

TEST(ShardStatsTest, StaleStatsAreIgnoredNotTrusted) {
  // Stats computed at one version must not prune a mutated slice: versions
  // no longer match, so the operator scans everything.
  ShardedCatalog cat(2, 1);
  Bat bat(TailType::kFloat);
  bat.AppendFloat(1, 1.0);
  bat.AppendFloat(2, 2.0);
  ASSERT_TRUE(cat.Put("t", bat).ok());
  const ExecContext ctx = ExecContext::Serial();
  auto stats = cat.ScanStats("t", ctx);
  ASSERT_TRUE(stats.ok());

  // Mutate after the stats were taken (append routes to the last shard).
  ASSERT_TRUE(cat.Append("t", 3, Value::Float(50.0)).ok());
  auto view = cat.View("t");
  ASSERT_TRUE(view.ok());
  ExchangeOptions opts;
  opts.scan_stats = &*stats;  // stale: computed before the append
  auto result = ShardedSelectRange(*view, 49.0, 51.0, ctx, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);  // the new row is found despite stale maps
  EXPECT_EQ(result->HeadAt(0), Oid{3});

  // The catalog's cache recomputes lazily and the fresh maps see the row.
  auto fresh = cat.ScanStats("t", ctx);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)[1].max, 50.0);
}

// ---------------------------------------------------------------------------
// Exchange trace shape.

TEST(ShardTraceTest, ScatterAndMergeSpansNestThePerShardKernels) {
  Bat bat(TailType::kInt);
  for (Oid i = 0; i < 64; ++i) bat.AppendInt(i, static_cast<int64_t>(i % 5));
  const PartitionedBat part(bat, 2, 4);

  trace::TraceSink sink;
  ExecContext ctx;
  ctx.morsel_rows = 4;
  ctx.serial_cutoff = 1;
  ctx.trace = &sink;
  auto r = ShardedSelectEq(part.View(), Value::Int(3), ctx);
  ASSERT_TRUE(r.ok());

  // Roots: exchange.scatter (with one kernel child per shard) followed by
  // exchange.merge.
  ASSERT_EQ(sink.root_count(), 2u);
  const trace::Span& scatter = *sink.roots()[0];
  const trace::Span& merge = *sink.roots()[1];
  EXPECT_EQ(scatter.name, "exchange.scatter");
  EXPECT_NE(scatter.detail.find("shards=2"), std::string::npos);
  EXPECT_EQ(scatter.children.size(), 2u);
  for (const auto& child : scatter.children) {
    EXPECT_EQ(child->name, "kernel.select_eq");
  }
  EXPECT_EQ(merge.name, "exchange.merge");
}

// ---------------------------------------------------------------------------
// ShardedCatalog semantics.

TEST(ShardedCatalogTest, PutPartitionsAndAppendRoutesToLastShard) {
  ShardedCatalog cat(3, 2);
  EXPECT_FALSE(cat.Exists("laps"));
  Bat bat(TailType::kInt);
  for (Oid i = 0; i < 6; ++i) bat.AppendInt(i, static_cast<int64_t>(i));
  ASSERT_TRUE(cat.Put("laps", bat).ok());
  EXPECT_TRUE(cat.Exists("laps"));
  auto rows = cat.Rows("laps");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 6u);

  // Aligned even split: 2 rows per shard.
  auto view = cat.View("laps");
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->num_shards(), 3u);
  for (size_t k = 0; k < 3; ++k) EXPECT_EQ(view->slices[k]->size(), 2u);

  // Appends grow only the last shard, keeping earlier offsets aligned.
  ASSERT_TRUE(cat.Append("laps", 99, Value::Int(42)).ok());
  view = cat.View("laps");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->slices[0]->size(), 2u);
  EXPECT_EQ(view->slices[2]->size(), 3u);
  EXPECT_TRUE(view->AlignedTo(2));

  const ExecContext ctx = ExecContext::Serial();
  auto gathered = cat.Gather("laps", ctx);
  ASSERT_TRUE(gathered.ok());
  ASSERT_EQ(gathered->size(), 7u);
  EXPECT_EQ(gathered->IntAt(6), 42);

  ASSERT_TRUE(cat.Drop("laps").ok());
  EXPECT_FALSE(cat.Exists("laps"));
  EXPECT_EQ(cat.Drop("laps").code(), StatusCode::kNotFound);
  EXPECT_EQ(cat.View("laps").status().code(), StatusCode::kNotFound);
}

TEST(ShardedCatalogTest, ScanStatsHammerIsRaceFree) {
  // Concurrent readers on the lazily-recomputed zone-map cache plus sharded
  // scans: the tsan preset turns any missed lock into a failure.
  ShardedCatalog cat(4, 8);
  Bat bat(TailType::kFloat);
  for (Oid i = 0; i < 512; ++i) {
    bat.AppendFloat(i, static_cast<double>(i % 97));
  }
  ASSERT_TRUE(cat.Put("t", bat).ok());
  ExecContext ctx;
  ctx.threadcnt = 2;
  ctx.morsel_rows = 8;
  ctx.serial_cutoff = 1;

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&cat, &ctx] {
      for (int i = 0; i < 25; ++i) {
        auto stats = cat.ScanStats("t", ctx);
        ASSERT_TRUE(stats.ok());
        auto view = cat.View("t");
        ASSERT_TRUE(view.ok());
        ExchangeOptions opts;
        opts.scan_stats = &*stats;
        auto r = ShardedSelectRange(*view, 10.0, 20.0, ctx, opts);
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r->size(), 11u * (512 / 97 + (10 < 512 % 97 ? 1 : 0)));
      }
    });
  }
  for (std::thread& r : readers) r.join();
}

// ---------------------------------------------------------------------------
// MIL: the shards(n) statement and the storage gate, interpreter and
// analyzer in lockstep.

TEST(MilShardsTest, ShardsStatementValidatesItsRange) {
  Catalog catalog;
  MilSession session(&catalog);
  EXPECT_TRUE(session.Execute("shards(4);").ok());
  EXPECT_EQ(session.exec().shards, 4);
  for (const char* bad : {"shards(0);", "shards(65);", "shards(2.5);"}) {
    auto r = session.Execute(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(r.status().message().find("shards expects an integer in [1, 64]"),
              std::string::npos)
        << r.status().message();
  }
  // Failed scripts leave the session untouched (verify-before-execute).
  EXPECT_EQ(session.exec().shards, 4);
  EXPECT_TRUE(session.Execute("shards(1);").ok());
  EXPECT_EQ(session.exec().shards, 1);
}

TEST(MilShardsTest, StorageStatementsAreGatedWhileSharded) {
  io::MemFs fs;
  Catalog catalog;
  for (const char* stmt : {"save 'd';", "load 'd';", "checkpoint;"}) {
    const std::string script = std::string("shards(2);\n") + stmt;
    SCOPED_TRACE(script);

    // Interpreter: FailedPrecondition naming the shard count.
    MilSession session(&catalog, "data");
    session.set_fs(&fs);
    auto r = session.Execute(script);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(r.status().message().find(
                  "illegal while the session is sharded (shards(2) in effect)"),
              std::string::npos)
        << r.status().message();

    // Analyzer: the same verdict, positioned, before anything executes.
    MilAnalysisContext actx;
    actx.catalog = &catalog;
    actx.fs = &fs;
    actx.data_dir_attached = true;
    DiagnosticList diags = AnalyzeMilScript(script, actx);
    ASSERT_FALSE(diags.ok());
    EXPECT_EQ(diags.diagnostics()[0].code, StatusCode::kFailedPrecondition);
    EXPECT_NE(diags.diagnostics()[0].message.find("illegal while the session"),
              std::string::npos);

    // Resetting to shards(1) clears the gate for the analyzer too.
    const std::string reset = "shards(2);\nshards(1);\n" + std::string(stmt);
    DiagnosticList after = AnalyzeMilScript(reset, actx);
    for (const auto& d : after.diagnostics()) {
      EXPECT_EQ(d.message.find("illegal while the session is sharded"),
                std::string::npos)
          << d.message;
    }
  }

  // A session whose ExecContext already has shards > 1 seeds the analysis
  // context, so a bare storage statement is rejected up front.
  MilSession sharded(&catalog, "data");
  sharded.set_fs(&fs);
  ASSERT_TRUE(sharded.Execute("shards(3);").ok());
  auto gated = sharded.Execute("checkpoint;");
  ASSERT_FALSE(gated.ok());
  EXPECT_EQ(gated.status().code(), StatusCode::kFailedPrecondition);

  // A non-literal count is statically unknown: the analyzer passes it
  // conservatively (zero false rejections), execution decides.
  MilAnalysisContext actx;
  actx.catalog = &catalog;
  actx.fs = &fs;
  actx.data_dir_attached = true;
  DiagnosticList unknown = AnalyzeMilScript(
      "VAR n := 1;\nshards(n);\ncheckpoint;", actx);
  EXPECT_TRUE(unknown.ok()) << unknown.ToString("mil");
}

TEST(MilShardsTest, ShardedSessionMatchesUnshardedOutput) {
  Catalog catalog;
  auto created = catalog.Create("f", TailType::kFloat);
  ASSERT_TRUE(created.ok());
  for (Oid i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        (*created)
            ->Append(i, Value::Float(static_cast<double>(i % 7) - 3.0))
            .ok());
  }
  const std::string body =
      "PRINT count(select(bat('f'), -1, 2));\n"
      "PRINT sum(bat('f'));\nPRINT min(bat('f'));\nPRINT max(bat('f'));\n";
  MilSession plain(&catalog);
  auto reference = plain.Execute(body);
  ASSERT_TRUE(reference.ok());
  MilSession sharded(&catalog);
  auto out = sharded.Execute("shards(5);\n" + body);
  ASSERT_TRUE(out.ok()) << out.status().message();
  EXPECT_EQ(*reference, *out);
}

}  // namespace
}  // namespace cobra::kernel

// ---------------------------------------------------------------------------
// Query layer: the sharded snapshot set.

namespace cobra::query {
namespace {

model::EventRecord MakeEvent(const std::string& type, double b, double e) {
  model::EventRecord record;
  record.type = type;
  record.begin_sec = b;
  record.end_sec = e;
  return record;
}

/// A two-shard deployment: each shard owns one video's catalog.
class ShardedSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto race = videos0_.RegisterVideo("race", 600.0);
    ASSERT_TRUE(race.ok());
    race_ = *race;
    ASSERT_TRUE(videos0_.StoreEvent(race_, MakeEvent("highlight", 30, 40)).ok());
    auto quali = videos1_.RegisterVideo("quali", 3600.0);
    ASSERT_TRUE(quali.ok());
    quali_ = *quali;
    ASSERT_TRUE(
        videos1_.StoreEvent(quali_, MakeEvent("highlight", 10, 20)).ok());
    ASSERT_TRUE(
        videos1_.StoreEvent(quali_, MakeEvent("highlight", 50, 60)).ok());
  }

  kernel::Catalog kcat0_, kcat1_;
  model::VideoCatalog videos0_{&kcat0_};
  model::VideoCatalog videos1_{&kcat1_};
  SnapshotManager mgr0_{&videos0_, &kcat0_};
  SnapshotManager mgr1_{&videos1_, &kcat1_};
  extensions::ExtensionRegistry registry_;
  QueryEngine engine_{&videos0_, &registry_};
  model::VideoId race_ = 0;
  model::VideoId quali_ = 0;
};

TEST_F(ShardedSnapshotTest, AcquireIsCoherentAndStamped) {
  auto set = AcquireShardedSnapshots({&mgr0_, &mgr1_});
  ASSERT_TRUE(set.ok()) << set.status().message();
  EXPECT_EQ(set->size(), 2u);
  EXPECT_TRUE(set->coherent());
  ASSERT_EQ(set->epochs().size(), 2u);
  EXPECT_EQ(set->epochs()[0], set->shard(0).epoch());
  EXPECT_EQ(set->epochs()[1], set->shard(1).epoch());
  EXPECT_EQ(set->EpochStamp(), "shards=2 epochs=[1,1] coherent=true");

  EXPECT_EQ(set->OwnerOf("race"), 0u);
  EXPECT_EQ(set->OwnerOf("quali"), 1u);
  EXPECT_EQ(set->OwnerOf("missing"), 0u);  // shard-0 fallback

  EXPECT_EQ(AcquireShardedSnapshots({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AcquireShardedSnapshots({&mgr0_, nullptr}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ShardedSnapshotTest, ExecuteRoutesToTheOwningShard) {
  auto set = AcquireShardedSnapshots({&mgr0_, &mgr1_});
  ASSERT_TRUE(set.ok());

  // quali lives on shard 1: its two highlights come back, and the result is
  // stamped with the full epoch vector.
  auto r = engine_.ExecuteSnapshot("RETRIEVE highlight FROM 'quali'", *set);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r->segments.size(), 2u);
  EXPECT_EQ(r->info, set->EpochStamp());

  auto r0 = engine_.ExecuteSnapshot("RETRIEVE highlight FROM 'race'", *set);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0->segments.size(), 1u);

  // A video no shard owns fails with the single-catalog NotFound, byte for
  // byte (shard-0 fallback).
  auto missing =
      engine_.ExecuteSnapshot("RETRIEVE highlight FROM 'missing'", *set);
  ASSERT_FALSE(missing.ok());
  auto pin0 = mgr0_.Acquire();
  auto single =
      engine_.ExecuteSnapshot("RETRIEVE highlight FROM 'missing'", *pin0);
  ASSERT_FALSE(single.ok());
  EXPECT_EQ(missing.status().code(), single.status().code());
  EXPECT_EQ(missing.status().message(), single.status().message());

  // Storage commands stay rejected on the sharded path.
  auto persist = engine_.ExecuteSnapshot("PERSIST", *set);
  ASSERT_FALSE(persist.ok());
  EXPECT_EQ(persist.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ShardedSnapshotTest, ExplainRoutesToTheOwningShardAndMatchesIt) {
  auto set = AcquireShardedSnapshots({&mgr0_, &mgr1_});
  ASSERT_TRUE(set.ok());

  // EXPLAIN over the sharded read set routes to the owning shard and its
  // report is byte-identical to the single-snapshot report of that shard;
  // only the epoch-vector stamp is added.
  auto sharded =
      engine_.ExecuteSnapshot("EXPLAIN RETRIEVE highlight FROM 'quali'", *set);
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();
  EXPECT_TRUE(sharded->segments.empty());  // static analysis only
  EXPECT_EQ(sharded->info, set->EpochStamp());

  auto pin1 = mgr1_.Acquire();
  auto single =
      engine_.ExecuteSnapshot("EXPLAIN RETRIEVE highlight FROM 'quali'", *pin1);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(sharded->profile_text, single->profile_text);
  EXPECT_EQ(sharded->profile_json, single->profile_json);

  // quali holds two highlights and the plan has no predicates: the static
  // interval is exact.
  EXPECT_NE(sharded->profile_text.find("static=[2,2]"), std::string::npos)
      << sharded->profile_text;

  // An empty read set fails like every other sharded read.
  ShardedSnapshotSet no_shards;
  EXPECT_EQ(engine_
                .ExecuteSnapshot("EXPLAIN RETRIEVE highlight FROM 'quali'",
                                 no_shards)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ShardedSnapshotTest, VerifyPlanMatchesTheOwningShardVerdict) {
  auto set = AcquireShardedSnapshots({&mgr0_, &mgr1_});
  ASSERT_TRUE(set.ok());
  auto parsed = ParseQuery("RETRIEVE highlight FROM 'quali'");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(VerifyPlan(*parsed, *set, registry_).ok());

  auto pin1 = mgr1_.Acquire();
  auto unknown = ParseQuery("RETRIEVE telemetry FROM 'quali'");
  ASSERT_TRUE(unknown.ok());
  const Status sharded = VerifyPlan(*unknown, *set, registry_);
  const Status single = VerifyPlan(*unknown, *pin1, registry_);
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.code(), single.code());
  EXPECT_EQ(sharded.message(), single.message());

  ShardedSnapshotSet empty;
  EXPECT_EQ(VerifyPlan(*parsed, empty, registry_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ShardedSnapshotTest, WriterMovingOneShardRefreshesTheVector) {
  auto first = AcquireShardedSnapshots({&mgr0_, &mgr1_});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(videos1_.StoreEvent(quali_, MakeEvent("caption", 1, 2)).ok());
  auto second = AcquireShardedSnapshots({&mgr0_, &mgr1_});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->coherent());
  EXPECT_EQ(second->epochs()[0], first->epochs()[0]);  // shard 0 unmoved
  EXPECT_EQ(second->epochs()[1], first->epochs()[1] + 1);
  // The old pins still read their epoch's data (snapshot isolation).
  EXPECT_EQ(first->shard(1).Events(quali_, "caption").size(), 0u);
  EXPECT_EQ(second->shard(1).Events(quali_, "caption").size(), 1u);
}

}  // namespace
}  // namespace cobra::query
