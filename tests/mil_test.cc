#include <gtest/gtest.h>

#include "kernel/catalog.h"
#include "kernel/mil.h"

namespace cobra::kernel {
namespace {

class MilTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto values = catalog_.Create("values", TailType::kFloat);
    ASSERT_TRUE(values.ok());
    for (int i = 0; i < 10; ++i) {
      (*values)->AppendFloat(static_cast<Oid>(i), i * 0.1);
    }
    auto names = catalog_.Create("names", TailType::kStr);
    ASSERT_TRUE(names.ok());
    (*names)->AppendStr(0, "alpha");
    (*names)->AppendStr(1, "beta");
    (*names)->AppendStr(2, "alpha");
    session_ = std::make_unique<MilSession>(&catalog_);
  }

  Catalog catalog_;
  std::unique_ptr<MilSession> session_;
};

TEST_F(MilTest, PrintScalar) {
  auto out = session_->Execute("PRINT 42;");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "42\n");
}

TEST_F(MilTest, VarAndAggregate) {
  auto out = session_->Execute(
      "VAR f := bat('values');\n"
      "PRINT sum(f);\n"
      "PRINT count(f);\n");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "4.5\n10\n");
}

TEST_F(MilTest, SelectRangeThenCount) {
  auto out = session_->Execute(
      "VAR hits := select(bat('values'), 0.25, 0.65);\n"
      "PRINT count(hits);");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "4\n");
}

TEST_F(MilTest, StringSelect) {
  auto out = session_->Execute("PRINT count(select(bat('names'), 'alpha'));");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "2\n");
}

TEST_F(MilTest, NewInsertAndJoin) {
  // Mirrors the shape of the paper's Fig. 4: build an oid->oid mapping and
  // join it against a value BAT.
  auto out = session_->Execute(
      "VAR links := insert(insert(new('oid'), 100, 2), 101, 4);\n"
      "VAR joined := join(links, bat('values'));\n"
      "PRINT count(joined);\n"
      "PRINT sum(joined);");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "2\n0.6\n");
}

TEST_F(MilTest, ReverseMirrorSlice) {
  auto out = session_->Execute(
      "VAR links := insert(new('oid'), 7, 3);\n"
      "VAR back := reverse(links);\n"
      "PRINT count(back);\n"
      "PRINT count(mirror(bat('values')));\n"
      "PRINT count(slice(bat('values'), 2, 5));");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "1\n10\n3\n");
}

TEST_F(MilTest, PersistWritesCatalog) {
  auto out = session_->Execute(
      "VAR top := select(bat('values'), 0.75, 1.0);\n"
      "persist('top_values', top);");
  ASSERT_TRUE(out.ok());
  auto stored = catalog_.Get("top_values");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ((*stored)->size(), 2u);  // 0.8, 0.9
}

TEST_F(MilTest, ReassignmentRequiresDeclaration) {
  EXPECT_FALSE(session_->Execute("x := 1;").ok());
  EXPECT_TRUE(session_->Execute("VAR x := 1; x := 2; PRINT x;").ok());
}

TEST_F(MilTest, VariablePersistsAcrossExecutes) {
  ASSERT_TRUE(session_->Execute("VAR kept := 7;").ok());
  auto out = session_->Execute("PRINT kept;");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "7\n");
  auto value = session_->Get("kept");
  ASSERT_TRUE(value.ok());
}

TEST_F(MilTest, CommentsIgnored) {
  auto out = session_->Execute(
      "# preparing an observation sequence\n"
      "PRINT 1;  # trailing comment\n");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "1\n");
}

TEST_F(MilTest, ErrorsAreReported) {
  EXPECT_FALSE(session_->Execute("PRINT bat('missing');").ok());
  EXPECT_FALSE(session_->Execute("PRINT frobnicate(1);").ok());
  EXPECT_FALSE(session_->Execute("PRINT sum(1);").ok());
  EXPECT_FALSE(session_->Execute("PRINT select(bat('values'));").ok());
  EXPECT_FALSE(session_->Execute("PRINT 'unterminated;").ok());
}

// Malformed scripts must come back as non-ok Results with a message that
// names the problem — never a crash or a silent empty output.

TEST_F(MilTest, UnterminatedStringNamesTheProblem) {
  auto out = session_->Execute("VAR x := select(bat('names'), 'alp;");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().ToString().find("unterminated"), std::string::npos)
      << out.status().ToString();
}

TEST_F(MilTest, UnknownFunctionNamesTheFunction) {
  auto out = session_->Execute("PRINT frobnicate(1);");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().ToString().find("frobnicate"), std::string::npos)
      << out.status().ToString();
}

TEST_F(MilTest, TypeMismatchedInsertIsRejected) {
  // String tail into a numeric BAT and number tail into a str BAT.
  auto bad_int = session_->Execute("PRINT insert(new('int'), 0, 'abc');");
  ASSERT_FALSE(bad_int.ok());
  EXPECT_NE(bad_int.status().ToString().find("insert"), std::string::npos)
      << bad_int.status().ToString();
  auto bad_str = session_->Execute("PRINT insert(new('str'), 0, 3.5);");
  ASSERT_FALSE(bad_str.ok());
  EXPECT_NE(bad_str.status().ToString().find("insert"), std::string::npos)
      << bad_str.status().ToString();
  // Inserting into a non-BAT is caught too.
  EXPECT_FALSE(session_->Execute("PRINT insert(7, 0, 1);").ok());
}

TEST_F(MilTest, DeeplyNestedExpressionIsRejected) {
  // "mirror(mirror(...(bat('values'))...))" past the depth bound must be a
  // typed error, not a stack overflow.
  std::string script = "PRINT ";
  for (int i = 0; i < 500; ++i) script += "mirror(";
  script += "bat('values')";
  script += std::string(500, ')');
  script += ";";
  auto out = session_->Execute(script);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().ToString().find("nested too deeply"),
            std::string::npos)
      << out.status().ToString();
}

TEST_F(MilTest, ConcatMergesAndChecksTypes) {
  auto out = session_->Execute(
      "VAR both := concat(bat('values'), bat('values'));\n"
      "PRINT count(both);\n"
      "PRINT sum(both);");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "20\n9\n");
  auto bad = session_->Execute("PRINT concat(bat('values'), bat('names'));");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("matching tail types"),
            std::string::npos);
  EXPECT_FALSE(session_->Execute("PRINT concat(bat('values'));").ok());
  EXPECT_FALSE(session_->Execute("PRINT concat(1, 2);").ok());
}

TEST_F(MilTest, ThreadcntValidatesItsArgument) {
  for (const char* script :
       {"threadcnt(0);", "threadcnt(-3);", "threadcnt(2.5);",
        "threadcnt('four');", "threadcnt();"}) {
    auto out = session_->Execute(script);
    ASSERT_FALSE(out.ok()) << script;
    EXPECT_NE(out.status().ToString().find("threadcnt"), std::string::npos)
        << out.status().ToString();
  }
  EXPECT_EQ(session_->exec().threadcnt, 1);  // failed calls leave it alone
}

TEST_F(MilTest, ThreadcntSetsTheSessionContext) {
  auto out = session_->Execute("PRINT threadcnt(4);");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "4\n");
  EXPECT_EQ(session_->exec().threadcnt, 4);
}

TEST_F(MilTest, ParallelSelectAndAggregatesMatchSerialOutput) {
  // Force the parallel path even on the 10-row fixture BAT.
  ExecContext exec;
  exec.morsel_rows = 2;
  exec.serial_cutoff = 1;
  session_->set_exec(exec);
  const std::string script =
      "PRINT count(select(bat('values'), 0.15, 0.85));\n"
      "PRINT sum(bat('values'));\n"
      "PRINT max(bat('values'));\n"
      "PRINT count(select(bat('names'), 'alpha'));\n";
  auto serial = session_->Execute("threadcnt(1);" + script);
  auto parallel = session_->Execute("threadcnt(7);" + script);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*serial, *parallel);
  EXPECT_EQ(*serial, "7\n4.5\n0.9\n2\n");
}

TEST_F(MilTest, InfoReportsAccelerationState) {
  // Fresh catalog BAT: no indexes yet, dictionary populated for str tails.
  auto out = session_->Execute("PRINT info('names');");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("BAT[oid,str] #3"), std::string::npos);
  EXPECT_NE(out->find("dict=2"), std::string::npos);  // alpha, beta
  EXPECT_NE(out->find("tail_index[built=0"), std::string::npos);

  // A forced build on the catalog BAT shows up — info('name') inspects the
  // BAT in place, not a session copy.
  auto bat = catalog_.Get("names");
  ASSERT_TRUE(bat.ok());
  (*bat)->BuildTailIndex();
  out = session_->Execute("PRINT info('names');");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("tail_index[built=1 fresh=1 builds=1"),
            std::string::npos);

  // The expression form works on session values too.
  out = session_->Execute("PRINT info(slice(bat('names'), 0, 2));");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("info(<expr>): BAT[oid,str] #2"), std::string::npos);

  // Unknown catalog names and bad arity are errors.
  EXPECT_FALSE(session_->Execute("PRINT info('nope');").ok());
  EXPECT_FALSE(session_->Execute("PRINT info();").ok());
}

TEST_F(MilTest, GroupAssignsDenseIds) {
  // 'names' is alpha/beta/alpha: two groups, the first and third rows share
  // an id. group() returns a BAT[oid,oid] with one row per input row.
  auto out = session_->Execute(
      "VAR g := group(bat('names'));\n"
      "PRINT count(g);\n"
      "PRINT g;");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("3"), std::string::npos);
  EXPECT_NE(out->find("BAT[oid,oid] #3"), std::string::npos);
  // Arity and type errors are static rejections.
  EXPECT_FALSE(session_->Execute("PRINT group();").ok());
  EXPECT_FALSE(session_->Execute("PRINT group(1);").ok());
}

TEST_F(MilTest, ArgmaxReturnsThePositionOfTheMax) {
  auto out = session_->Execute("PRINT argmax(bat('values'));");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "9\n");  // 0.9 is the last of the 10 rows
  // Empty input is the runtime's FailedPrecondition — and the analyzer
  // rejects it statically with the same message.
  auto empty = session_->Execute("PRINT argmax(new('dbl'));");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().ToString().find("ArgMax of empty BAT"),
            std::string::npos);
  // Non-numeric tails are rejected too.
  EXPECT_FALSE(session_->Execute("PRINT argmax(bat('names'));").ok());
}

TEST_F(MilTest, GroupAndArgmaxAgreeAcrossShardedPlans) {
  ExecContext exec;
  exec.morsel_rows = 2;
  exec.serial_cutoff = 1;
  session_->set_exec(exec);
  const std::string script =
      "PRINT count(group(bat('names')));\n"
      "PRINT argmax(bat('values'));\n";
  auto serial = session_->Execute(script);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto sharded = session_->Execute("shards(2);\n" + script + "shards(1);\n");
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(*serial, *sharded);
}

TEST_F(MilTest, BatPrintFormat) {
  auto out = session_->Execute("PRINT slice(bat('names'), 0, 2);");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("BAT[oid,str] #2"), std::string::npos);
  EXPECT_NE(out->find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace cobra::kernel
