#include <gtest/gtest.h>

#include "cobra/video_model.h"
#include "kernel/catalog.h"

namespace cobra::model {
namespace {

class VideoCatalogTest : public ::testing::Test {
 protected:
  kernel::Catalog kernel_catalog_;
  VideoCatalog catalog_{&kernel_catalog_};
};

TEST_F(VideoCatalogTest, RegisterAndFindVideo) {
  auto id = catalog_.RegisterVideo("german-gp", 5400.0);
  ASSERT_TRUE(id.ok());
  auto video = catalog_.FindVideo("german-gp");
  ASSERT_TRUE(video.ok());
  EXPECT_EQ(video->id, *id);
  EXPECT_DOUBLE_EQ(video->duration_sec, 5400.0);
  EXPECT_FALSE(catalog_.RegisterVideo("german-gp", 1.0).ok());
  EXPECT_FALSE(catalog_.FindVideo("monaco-gp").ok());
}

TEST_F(VideoCatalogTest, FeatureLayerRoundTrip) {
  auto id = catalog_.RegisterVideo("race", 100.0);
  ASSERT_TRUE(id.ok());
  std::vector<double> series = {0.1, 0.9, 0.5};
  ASSERT_TRUE(catalog_.StoreFeatureSeries(*id, "motion", series).ok());
  EXPECT_TRUE(catalog_.HasFeature(*id, "motion"));
  EXPECT_FALSE(catalog_.HasFeature(*id, "pitch"));
  auto loaded = catalog_.LoadFeatureSeries(*id, "motion");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, series);
  auto names = catalog_.FeatureNames(*id);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "motion");
}

TEST_F(VideoCatalogTest, FeatureOverwrite) {
  auto id = catalog_.RegisterVideo("race", 100.0);
  ASSERT_TRUE(catalog_.StoreFeatureSeries(*id, "f", {1.0}).ok());
  ASSERT_TRUE(catalog_.StoreFeatureSeries(*id, "f", {2.0, 3.0}).ok());
  auto loaded = catalog_.LoadFeatureSeries(*id, "f");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST_F(VideoCatalogTest, EventLayerStoresAndFilters) {
  auto id = catalog_.RegisterVideo("race", 100.0);
  EventRecord highlight;
  highlight.type = "highlight";
  highlight.begin_sec = 30.0;
  highlight.end_sec = 40.0;
  highlight.attrs["driver"] = "ALESI";
  ASSERT_TRUE(catalog_.StoreEvent(*id, highlight).ok());
  EventRecord pitstop;
  pitstop.type = "pitstop";
  pitstop.begin_sec = 10.0;
  pitstop.end_sec = 20.0;
  ASSERT_TRUE(catalog_.StoreEvent(*id, pitstop).ok());

  EXPECT_TRUE(catalog_.HasEvents(*id, "highlight"));
  EXPECT_FALSE(catalog_.HasEvents(*id, "flyout"));
  auto all = catalog_.Events(*id);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].type, "pitstop");  // sorted by begin time
  auto highlights = catalog_.Events(*id, "highlight");
  ASSERT_TRUE(highlights.ok());
  ASSERT_EQ(highlights->size(), 1u);
  EXPECT_EQ((*highlights)[0].attrs.at("driver"), "ALESI");
}

TEST_F(VideoCatalogTest, DropEvents) {
  auto id = catalog_.RegisterVideo("race", 100.0);
  EventRecord e;
  e.type = "highlight";
  ASSERT_TRUE(catalog_.StoreEvent(*id, e).ok());
  ASSERT_TRUE(catalog_.DropEvents(*id, "highlight").ok());
  EXPECT_FALSE(catalog_.HasEvents(*id, "highlight"));
}

TEST_F(VideoCatalogTest, ObjectLayer) {
  auto id = catalog_.RegisterVideo("race", 100.0);
  ObjectRecord driver;
  driver.cls = "driver";
  driver.name = "TRULLI";
  ASSERT_TRUE(catalog_.StoreObject(*id, driver).ok());
  auto drivers = catalog_.Objects(*id, "driver");
  ASSERT_TRUE(drivers.ok());
  ASSERT_EQ(drivers->size(), 1u);
  EXPECT_EQ((*drivers)[0].name, "TRULLI");
  auto cars = catalog_.Objects(*id, "car");
  ASSERT_TRUE(cars.ok());
  EXPECT_TRUE(cars->empty());
}

TEST_F(VideoCatalogTest, FactBridgeRoundTrip) {
  EventRecord e;
  e.type = "flyout";
  e.begin_sec = 12.5;
  e.end_sec = 19.0;
  e.confidence = 0.8;
  e.attrs["driver"] = "PANIS";
  auto fact = VideoCatalog::ToFact(e);
  EXPECT_EQ(fact.type, "flyout");
  EXPECT_DOUBLE_EQ(fact.span.begin, 12.5);
  auto back = VideoCatalog::FromFact(fact);
  EXPECT_EQ(back.type, e.type);
  EXPECT_EQ(back.attrs, e.attrs);
  EXPECT_DOUBLE_EQ(back.confidence, 0.8);
}

TEST_F(VideoCatalogTest, EventsStoredInKernelBats) {
  auto id = catalog_.RegisterVideo("race", 100.0);
  EventRecord e;
  e.type = "highlight";
  ASSERT_TRUE(catalog_.StoreEvent(*id, e).ok());
  // The decomposed event relation lives in the kernel catalog.
  auto types = kernel_catalog_.Get("event.type");
  ASSERT_TRUE(types.ok());
  EXPECT_EQ((*types)->size(), 1u);
  EXPECT_EQ((*types)->StrAt(0), "highlight");
}

}  // namespace
}  // namespace cobra::model
