// Crash-safety proofs for STREAMING ingestion — the segment-append WAL path
// and continuous-query cursor resume:
//
//   * an exhaustive crash-point matrix over a StreamBat workload: for EVERY
//     k, fail the k-th write / sync / rename (and torn-write the k-th
//     append) while appending through segment seals, crash, and assert
//     recovery lands on an exact WAL-record prefix of the history — an
//     append or seal is durable exactly-before or exactly-after its record,
//     never half-applied (the `.@seals` BAT and the data BAT move together);
//   * re-attachment after recovery restores the sealed segmentation (zone
//     maps included) and the stream accepts appends again;
//   * watch-cursor resume: SerializeCursors → crash → RECOVER →
//     RestoreCursors replays NO already-delivered notification and loses
//     none — the pre-crash and post-crash streams partition the honest
//     notification set exactly, with gap-free sequence numbers across the
//     boundary.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/io.h"
#include "base/logging.h"
#include "base/rng.h"
#include "base/strings.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/persist.h"
#include "kernel/stream.h"
#include "query/continuous.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "server/protocol.h"

namespace cobra {
namespace {

using kernel::Bat;
using kernel::Catalog;
using kernel::Oid;
using kernel::PersistentStore;
using kernel::StreamBat;
using kernel::TailType;
using kernel::Value;
using Mode = io::FaultFs::FaultPlan::Mode;

constexpr char kDir[] = "store";
constexpr char kBat[] = "telemetry";
constexpr uint64_t kSegmentRows = 4;
constexpr size_t kAppends = 22;  // crosses five seal boundaries

std::string Dump(const Catalog& catalog) {
  return PersistentStore::DumpCatalog(catalog);
}

double AppendValue(size_t i) { return i * 10.0 + (i % 3); }

/// Runs the streaming workload on `fs`: open store, create the BAT
/// (WAL-logged), attach a StreamBat, append kAppends values — each append
/// WAL-logs itself and any segment seal it triggers. Returns the 1-based
/// index of the first failing step (1 = create, 1+i = i-th append), or 0
/// when everything committed.
size_t RunStreamWorkload(io::Fs* fs) {
  PersistentStore store(fs, kDir);
  if (!store.Open().ok()) return 1;
  Catalog catalog;
  if (!store.LogCreate(kBat, TailType::kFloat).ok()) return 1;
  if (!catalog.Create(kBat, TailType::kFloat).ok()) return 1;
  StreamBat::Options opts;
  opts.segment_rows = kSegmentRows;
  auto stream = StreamBat::Attach(&catalog, kBat, opts, &store);
  if (!stream.ok()) return 1;
  for (size_t i = 0; i < kAppends; ++i) {
    if (!stream->Append(static_cast<Oid>(i + 1), Value::Float(AppendValue(i)))
             .ok()) {
      return i + 2;
    }
  }
  return 0;
}

/// Every catalog state reachable by a WAL-record prefix of the workload:
/// the create, then for each append its row — and, on each seal boundary,
/// the intermediate "row durable, seal record not yet" state followed by
/// the sealed state. Recovery must land on EXACTLY one of these.
std::vector<std::string> RecordPrefixDumps() {
  std::vector<std::string> dumps;
  Catalog catalog;
  dumps.push_back(Dump(catalog));  // nothing durable at all
  COBRA_CHECK(catalog.Create(kBat, TailType::kFloat).ok());
  dumps.push_back(Dump(catalog));
  Bat* bat = catalog.Get(kBat).value();
  Bat* seals = nullptr;
  for (size_t i = 0; i < kAppends; ++i) {
    bat->AppendFloat(static_cast<Oid>(i + 1), AppendValue(i));
    dumps.push_back(Dump(catalog));
    const uint64_t rows = i + 1;
    if (rows % kSegmentRows == 0) {
      if (seals == nullptr) {
        seals =
            catalog.Create(kernel::SegmentSealBatName(kBat), TailType::kOid)
                .value();
      }
      seals->AppendOid(static_cast<Oid>(seals->size()), rows);
      dumps.push_back(Dump(catalog));
    }
  }
  return dumps;
}

// ---------------------------------------------------------------------------
// The crash matrix over stream appends and seals.

TEST(StreamCrashMatrixTest, EveryStreamAppendAndSealCrashPoint) {
  // Reference run sizes the matrix.
  io::FaultFs ref;
  ASSERT_EQ(RunStreamWorkload(&ref), 0u);
  const io::FaultFs::OpCounts totals = ref.counts();
  ASSERT_GT(totals.writes, static_cast<int>(kAppends));  // appends + seals
  ASSERT_GT(totals.syncs, static_cast<int>(kAppends));

  const std::vector<std::string> valid = RecordPrefixDumps();
  // The clean run itself ends on the final prefix state.
  {
    Catalog recovered;
    PersistentStore reader(&ref, kDir);
    ASSERT_TRUE(reader.Recover(&recovered).ok());
    ASSERT_EQ(Dump(recovered), valid.back());
  }

  struct Axis {
    Mode mode;
    int count;
    const char* name;
  };
  const Axis axes[] = {
      {Mode::kFailWrite, totals.writes, "fail-write"},
      {Mode::kTornWrite, totals.writes, "torn-write"},
      {Mode::kFailSync, totals.syncs, "fail-sync"},
      {Mode::kFailRename, totals.renames, "fail-rename"},
  };

  Rng rng(0x57BEA0);
  int cases = 0;
  for (const Axis& axis : axes) {
    for (int k = 1; k <= axis.count; ++k) {
      SCOPED_TRACE(std::string(axis.name) + " k=" + std::to_string(k));
      io::FaultFs fs;
      fs.Arm({axis.mode, k, rng.UniformInt(uint64_t{1} << 62)});

      const size_t failed_at = RunStreamWorkload(&fs);
      ASSERT_NE(failed_at, 0u) << "armed fault never fired";
      fs.Crash();

      Catalog recovered;
      PersistentStore reader(&fs, kDir);
      auto info = reader.Recover(&recovered);
      if (!info.ok()) {
        // Only legitimate when the fault killed the very first commit.
        ASSERT_EQ(info.status().code(), StatusCode::kNotFound);
        ASSERT_EQ(failed_at, 1u);
        ASSERT_TRUE(reader.Open().ok());
      }
      const std::string dump = Dump(recovered);
      bool is_prefix_state = false;
      for (const std::string& d : valid) is_prefix_state |= (dump == d);
      ASSERT_TRUE(is_prefix_state)
          << "recovery produced a non-prefix hybrid after step " << failed_at
          << ":\n"
          << dump;

      // The recovered catalog re-attaches as a stream: the seal metadata is
      // never ahead of the data rows (Attach validates boundaries), and the
      // stream ingests again — with the new appends durable across another
      // crash-free recovery.
      if (recovered.Exists(kBat)) {
        StreamBat::Options opts;
        opts.segment_rows = kSegmentRows;
        auto stream = StreamBat::Attach(&recovered, kBat, opts, &reader);
        ASSERT_TRUE(stream.ok()) << stream.status().message();
        const uint64_t rows = stream->visible_rows();
        ASSERT_LE(stream->sealed_rows(), rows);
        ASSERT_TRUE(
            stream->Append(static_cast<Oid>(rows + 1), Value::Float(-1.0))
                .ok());

        Catalog again;
        PersistentStore reader2(&fs, kDir);
        ASSERT_TRUE(reader2.Recover(&again).ok());
        EXPECT_EQ(Dump(again), Dump(recovered));
      }
      ++cases;
    }
  }
  EXPECT_GE(cases, 80);  // the matrix really is exhaustive, not sampled
}

TEST(StreamRecoveryTest, RecoveredAttachRestoresSegmentation) {
  io::MemFs fs;
  ASSERT_EQ(RunStreamWorkload(&fs), 0u);

  Catalog recovered;
  PersistentStore reader(&fs, kDir);
  ASSERT_TRUE(reader.Recover(&recovered).ok());
  StreamBat::Options opts;
  opts.segment_rows = kSegmentRows;
  auto stream = StreamBat::Attach(&recovered, kBat, opts, &reader);
  ASSERT_TRUE(stream.ok()) << stream.status().message();

  // 22 rows at segment_rows=4: five sealed segments + a 2-row tail, with
  // the zone maps recomputed from the recovered rows.
  EXPECT_EQ(stream->visible_rows(), kAppends);
  EXPECT_EQ(stream->sealed_rows(), (kAppends / kSegmentRows) * kSegmentRows);
  const std::vector<StreamBat::Segment> segments = stream->Segments();
  ASSERT_EQ(segments.size(), kAppends / kSegmentRows + 1);
  for (size_t s = 0; s + 1 < segments.size(); ++s) {
    EXPECT_TRUE(segments[s].sealed);
    EXPECT_EQ(segments[s].begin_row, s * kSegmentRows);
    EXPECT_EQ(segments[s].end_row, (s + 1) * kSegmentRows);
    EXPECT_TRUE(segments[s].has_zone);
    EXPECT_EQ(segments[s].min_num, AppendValue(s * kSegmentRows));
  }
  EXPECT_FALSE(segments.back().sealed);

  // And the recovered stream serves the same bytes the original would.
  Bat oracle(TailType::kFloat);
  for (size_t i = 0; i < kAppends; ++i) {
    oracle.AppendFloat(static_cast<Oid>(i + 1), AppendValue(i));
  }
  auto got = stream->ScanWindow(35.0, 150.0, kernel::ExecContext());
  auto want = oracle.SelectRange(35.0, 150.0);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ(got->HeadAt(i), want->HeadAt(i));
    EXPECT_EQ(got->FloatAt(i), want->FloatAt(i));
  }
  EXPECT_GT(stream->stats().segments_pruned, 0u);
}

// ---------------------------------------------------------------------------
// Watch-cursor resume across a crash.

model::EventRecord MakeEvent(const std::string& type, double b, double e,
                             std::map<std::string, std::string> attrs = {}) {
  model::EventRecord record;
  record.type = type;
  record.begin_sec = b;
  record.end_sec = e;
  record.attrs = std::move(attrs);
  return record;
}

std::string NoteKey(const query::WatchNotification& n) {
  return StrFormat("watch=%llu %s",
                   static_cast<unsigned long long>(n.watch_id),
                   server::protocol::EncodeSegment(n.segment).c_str());
}

/// Renders watch/seq/segment (no epoch/version — those legitimately differ
/// across a restart).
std::string NoteLine(const query::WatchNotification& n) {
  return StrFormat("watch=%llu seq=%llu %s\n",
                   static_cast<unsigned long long>(n.watch_id),
                   static_cast<unsigned long long>(n.seq),
                   server::protocol::EncodeSegment(n.segment).c_str());
}

TEST(WatchResumeTest, CursorsResumeExactlyOnceAfterCleanCrash) {
  io::FaultFs fs;
  extensions::ExtensionRegistry registry;

  // Pre-crash host: watch registered, first batch notified, cursors
  // serialized, state checkpointed, second batch notified WAL-only.
  kernel::Catalog kcat;
  model::VideoCatalog videos(&kcat);
  query::QueryEngine engine(&videos, &registry, kDir);
  engine.set_fs(&fs);
  query::SnapshotManager snapshots(&videos, &kcat);
  query::ContinuousQueryManager watches(&engine, &snapshots, &kcat);
  auto race = videos.RegisterVideo("race", 600.0);
  ASSERT_TRUE(race.ok());
  ASSERT_TRUE(
      watches
          .RegisterText("WATCH RETRIEVE pass FROM 'race' WHERE driver = 'X'")
          .ok());
  ASSERT_TRUE(watches.RegisterText("WATCH RETRIEVE pit FROM 'race'").ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(videos
                    .StoreEvent(*race, MakeEvent("pass", 10.0 + i, 11.0 + i,
                                                 {{"driver", "X"}}))
                    .ok());
  }
  ASSERT_TRUE(videos.StoreEvent(*race, MakeEvent("pit", 20, 21)).ok());
  std::vector<query::WatchNotification> first;
  ASSERT_TRUE(watches.Pump(&first).ok());
  ASSERT_EQ(first.size(), 4u);

  const std::string cursors = watches.SerializeCursors();
  ASSERT_TRUE(engine.Execute("PERSIST").ok());

  // Post-checkpoint batch: durable via the WAL only.
  ASSERT_TRUE(videos
                  .StoreEvent(*race, MakeEvent("pass", 30, 31,
                                               {{"driver", "X"}}))
                  .ok());
  ASSERT_TRUE(videos
                  .StoreEvent(*race, MakeEvent("pass", 32, 33,
                                               {{"driver", "Y"}}))  // no match
                  .ok());
  ASSERT_TRUE(videos.StoreEvent(*race, MakeEvent("pit", 40, 41)).ok());
  std::vector<query::WatchNotification> second;
  ASSERT_TRUE(watches.Pump(&second).ok());
  ASSERT_EQ(second.size(), 2u);

  fs.Crash();

  // Restart: recover the model, restore the cursors, pump once.
  kernel::Catalog kcat2;
  model::VideoCatalog videos2(&kcat2);
  query::QueryEngine engine2(&videos2, &registry);
  engine2.set_fs(&fs);
  ASSERT_TRUE(engine2.Execute(StrFormat("RECOVER FROM '%s'", kDir)).ok());
  EXPECT_EQ(Dump(kcat2), Dump(kcat));
  query::SnapshotManager snapshots2(&videos2, &kcat2);
  query::ContinuousQueryManager watches2(&engine2, &snapshots2, &kcat2);
  ASSERT_TRUE(watches2.RestoreCursors(cursors).ok());
  EXPECT_EQ(watches2.watch_count(), 2u);
  std::vector<query::WatchNotification> resumed;
  ASSERT_TRUE(watches2.Pump(&resumed).ok());

  // Exactly-once: the resumed pump re-delivers precisely the notifications
  // after the cursor point — same segments, same continuing sequence
  // numbers — and none from before it.
  ASSERT_EQ(resumed.size(), second.size());
  for (size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(NoteLine(resumed[i]), NoteLine(second[i]));
  }
  std::set<std::string> before_keys;
  for (const auto& n : first) before_keys.insert(NoteKey(n));
  for (const auto& n : resumed) {
    EXPECT_EQ(before_keys.count(NoteKey(n)), 0u) << NoteKey(n);
  }

  // Idempotent: pumping again with no new writes delivers nothing.
  std::vector<query::WatchNotification> again;
  ASSERT_TRUE(watches2.Pump(&again).ok());
  EXPECT_TRUE(again.empty());
}

TEST(WatchResumeTest, CrashPointsDuringPostCursorWritesPartitionTheStream) {
  // Arm a fault inside the post-cursor writes: whatever prefix survives,
  // the pre-crash deliveries and the resumed deliveries must partition the
  // honest notification set of the RECOVERED state — no duplicate, no loss.
  extensions::ExtensionRegistry registry;
  Rng rng(0xCAFE02);
  int resumed_any = 0;
  for (int k = 1; k <= 12; ++k) {
    SCOPED_TRACE("k=" + std::to_string(k));
    io::FaultFs fs;
    kernel::Catalog kcat;
    model::VideoCatalog videos(&kcat);
    query::QueryEngine engine(&videos, &registry, kDir);
    engine.set_fs(&fs);
    query::SnapshotManager snapshots(&videos, &kcat);
    query::ContinuousQueryManager watches(&engine, &snapshots, &kcat);
    auto race = videos.RegisterVideo("race", 600.0);
    ASSERT_TRUE(race.ok());
    ASSERT_TRUE(watches.RegisterText("WATCH RETRIEVE pass FROM 'race'").ok());
    ASSERT_TRUE(
        videos.StoreEvent(*race, MakeEvent("pass", 1, 2, {{"n", "a"}})).ok());
    std::vector<query::WatchNotification> first;
    ASSERT_TRUE(watches.Pump(&first).ok());
    ASSERT_EQ(first.size(), 1u);
    const std::string cursors = watches.SerializeCursors();
    ASSERT_TRUE(engine.Execute("PERSIST").ok());

    // The armed fault fires somewhere inside these writes (or never, for
    // large k — that run degenerates to the clean-crash case).
    fs.Arm({Mode::kFailWrite, k, rng.UniformInt(uint64_t{1} << 62)});
    for (int i = 0; i < 6; ++i) {
      if (!videos
               .StoreEvent(*race, MakeEvent("pass", 10.0 + i, 11.0 + i,
                                            {{"n", std::string(1, 'b' + i)}}))
               .ok()) {
        break;  // the host dies with the storage error
      }
    }
    fs.Crash();

    kernel::Catalog kcat2;
    model::VideoCatalog videos2(&kcat2);
    query::QueryEngine engine2(&videos2, &registry);
    engine2.set_fs(&fs);
    ASSERT_TRUE(engine2.Execute(StrFormat("RECOVER FROM '%s'", kDir)).ok());
    query::SnapshotManager snapshots2(&videos2, &kcat2);

    // Honest set: a fresh manager with NO cursor state sees every matching
    // segment of the recovered history.
    query::ContinuousQueryManager fresh(&engine2, &snapshots2, &kcat2);
    ASSERT_TRUE(fresh.RegisterText("WATCH RETRIEVE pass FROM 'race'").ok());
    std::vector<query::WatchNotification> honest;
    ASSERT_TRUE(fresh.Pump(&honest).ok());
    std::set<std::string> honest_keys;
    for (const auto& n : honest) {
      honest_keys.insert(server::protocol::EncodeSegment(n.segment));
    }

    // Resumed set: cursors restored, one pump.
    query::ContinuousQueryManager resumed_mgr(&engine2, &snapshots2, &kcat2);
    ASSERT_TRUE(resumed_mgr.RestoreCursors(cursors).ok());
    std::vector<query::WatchNotification> resumed;
    ASSERT_TRUE(resumed_mgr.Pump(&resumed).ok());
    resumed_any += resumed.empty() ? 0 : 1;

    // Partition: pre-crash ∪ resumed == honest, pre-crash ∩ resumed == ∅,
    // and the sequence numbers continue gap-free across the boundary.
    std::set<std::string> seen_keys;
    uint64_t next_seq = 1;
    for (const auto& n : first) {
      EXPECT_EQ(n.seq, next_seq++);
      EXPECT_TRUE(seen_keys.insert(server::protocol::EncodeSegment(n.segment))
                      .second);
    }
    for (const auto& n : resumed) {
      EXPECT_EQ(n.seq, next_seq++);
      EXPECT_TRUE(seen_keys.insert(server::protocol::EncodeSegment(n.segment))
                      .second)
          << "duplicate delivery across the crash";
    }
    EXPECT_EQ(seen_keys, honest_keys) << "lost or invented notifications";
  }
  EXPECT_GT(resumed_any, 0);  // at least some crash points kept extra writes
}

TEST(WatchResumeTest, CorruptCursorPayloadIsRejected) {
  kernel::Catalog kcat;
  model::VideoCatalog videos(&kcat);
  extensions::ExtensionRegistry registry;
  query::QueryEngine engine(&videos, &registry);
  query::SnapshotManager snapshots(&videos, &kcat);
  query::ContinuousQueryManager watches(&engine, &snapshots, &kcat);
  ASSERT_TRUE(videos.RegisterVideo("race", 60.0).ok());
  ASSERT_TRUE(watches.RegisterText("WATCH RETRIEVE pass FROM 'race'").ok());
  const std::string good = watches.SerializeCursors();

  query::ContinuousQueryManager other(&engine, &snapshots, &kcat);
  EXPECT_FALSE(other.RestoreCursors("not a cursor payload").ok());
  EXPECT_FALSE(other.RestoreCursors(good.substr(0, good.size() / 2)).ok());
  EXPECT_TRUE(other.RestoreCursors(good).ok());
  EXPECT_EQ(other.watch_count(), 1u);
}

}  // namespace
}  // namespace cobra
