// Serial/parallel equivalence suite for the morsel-parallel BAT operators.
//
// Every parallelized operator must produce byte-identical output (values,
// heads, and ordering) at every threadcnt. The suite runs randomized BATs
// (seeded Rng) across all tail types and the edge cases that stress the
// morsel decomposition: empty input, a single element, and all-equal tails.
// Small morsels (64 rows) and a unit serial cutoff force the parallel path
// at test sizes.

#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "kernel/bat.h"
#include "kernel/exec_context.h"

namespace cobra::kernel {
namespace {

ExecContext Ctx(int threadcnt) {
  ExecContext ctx;
  ctx.threadcnt = threadcnt;
  ctx.morsel_rows = 64;
  ctx.serial_cutoff = 1;
  return ctx;
}

/// Bit-exact double comparison: equivalence means byte-identical, not
/// approximately equal.
void ExpectSameDouble(double a, double b, size_t i) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))
      << "float tail differs at position " << i << ": " << a << " vs " << b;
}

void ExpectSameBat(const Bat& expected, const Bat& actual) {
  ASSERT_EQ(expected.tail_type(), actual.tail_type());
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected.HeadAt(i), actual.HeadAt(i)) << "head at " << i;
    switch (expected.tail_type()) {
      case TailType::kInt:
        ASSERT_EQ(expected.IntAt(i), actual.IntAt(i)) << "int tail at " << i;
        break;
      case TailType::kFloat:
        ExpectSameDouble(expected.FloatAt(i), actual.FloatAt(i), i);
        break;
      case TailType::kStr:
        ASSERT_EQ(expected.StrAt(i), actual.StrAt(i)) << "str tail at " << i;
        break;
      case TailType::kOid:
        ASSERT_EQ(expected.OidAt(i), actual.OidAt(i)) << "oid tail at " << i;
        break;
    }
  }
}

/// Randomized BAT with duplicate-heavy tails so equality selects and
/// grouping have real work to do. `all_equal` pins every tail to one value.
Bat RandomBat(TailType type, size_t n, uint64_t seed, bool all_equal = false) {
  Rng rng(seed);
  // A small palette of values creates duplicates across morsel boundaries.
  const size_t palette = all_equal ? 1 : 37;
  std::vector<double> float_palette;
  for (size_t i = 0; i < palette; ++i) float_palette.push_back(rng.Uniform());
  Bat bat(type);
  for (size_t i = 0; i < n; ++i) {
    const Oid head = static_cast<Oid>(rng.UniformInt(uint64_t{1000}));
    switch (type) {
      case TailType::kInt:
        bat.AppendInt(head, all_equal ? 7 : rng.UniformInt(int64_t{-25}, 25));
        break;
      case TailType::kFloat:
        bat.AppendFloat(head, float_palette[rng.UniformInt(palette)]);
        break;
      case TailType::kStr: {
        const uint64_t word =
            all_equal ? 0 : rng.UniformInt(uint64_t{palette});
        std::string s = "w";
        s += std::to_string(word);
        bat.AppendStr(head, std::move(s));
        break;
      }
      case TailType::kOid:
        bat.AppendOid(head,
                      all_equal ? Oid{3} : static_cast<Oid>(
                                               rng.UniformInt(uint64_t{64})));
        break;
    }
  }
  return bat;
}

constexpr TailType kAllTypes[] = {TailType::kInt, TailType::kFloat,
                                  TailType::kStr, TailType::kOid};
constexpr size_t kSizes[] = {0, 1, 257, 5000};

class ParallelKernelTest : public ::testing::TestWithParam<int> {
 protected:
  ExecContext ctx() const { return Ctx(GetParam()); }
};

TEST_P(ParallelKernelTest, SelectRangeMatchesSerial) {
  for (TailType type : {TailType::kInt, TailType::kFloat}) {
    for (size_t n : kSizes) {
      for (bool all_equal : {false, true}) {
        const Bat bat = RandomBat(type, n, 11 + n, all_equal);
        auto serial = bat.SelectRange(-10.0, 0.6);
        auto parallel = bat.SelectRange(-10.0, 0.6, ctx());
        ASSERT_TRUE(serial.ok());
        ASSERT_TRUE(parallel.ok());
        ExpectSameBat(*serial, *parallel);
      }
    }
  }
  // Type errors surface identically on both paths.
  const Bat strs = RandomBat(TailType::kStr, 100, 1);
  EXPECT_FALSE(strs.SelectRange(0, 1, ctx()).ok());
}

TEST_P(ParallelKernelTest, SelectEqMatchesSerial) {
  for (TailType type : kAllTypes) {
    for (size_t n : kSizes) {
      for (bool all_equal : {false, true}) {
        const Bat bat = RandomBat(type, n, 23 + n, all_equal);
        // Probe with a value drawn the same way as the data, so hits exist.
        const Value probe = RandomBat(type, 1, 23 + n, all_equal).TailAt(0);
        auto serial = bat.SelectEq(probe);
        auto parallel = bat.SelectEq(probe, ctx());
        ASSERT_TRUE(serial.ok());
        ASSERT_TRUE(parallel.ok());
        ExpectSameBat(*serial, *parallel);
      }
    }
  }
  const Bat ints = RandomBat(TailType::kInt, 100, 2);
  EXPECT_FALSE(ints.SelectEq(Value::Str("x"), ctx()).ok());
}

TEST_P(ParallelKernelTest, SelectStrMatchesSerial) {
  for (size_t n : kSizes) {
    for (bool all_equal : {false, true}) {
      const Bat bat = RandomBat(TailType::kStr, n, 31 + n, all_equal);
      auto serial = bat.SelectStr("w3");
      auto parallel = bat.SelectStr("w3", ctx());
      ASSERT_TRUE(serial.ok());
      ASSERT_TRUE(parallel.ok());
      ExpectSameBat(*serial, *parallel);
    }
  }
  const Bat ints = RandomBat(TailType::kInt, 100, 3);
  EXPECT_FALSE(ints.SelectStr("x", ctx()).ok());
}

TEST_P(ParallelKernelTest, AggregatesMatchSerial) {
  for (TailType type : {TailType::kInt, TailType::kFloat}) {
    for (size_t n : kSizes) {
      for (bool all_equal : {false, true}) {
        const Bat bat = RandomBat(type, n, 41 + n, all_equal);
        if (n == 0) {
          EXPECT_FALSE(bat.Max(ctx()).ok());
          EXPECT_FALSE(bat.Min(ctx()).ok());
          EXPECT_FALSE(bat.ArgMax(ctx()).ok());
          EXPECT_EQ(*bat.Sum(ctx()), 0.0);
          continue;
        }
        // Max/Min/ArgMax are byte-identical to the serial operator; ArgMax
        // ties (all-equal tails) must resolve to the same position.
        EXPECT_EQ(*bat.ArgMax(), *bat.ArgMax(ctx()));
        ExpectSameDouble(*bat.Max(), *bat.Max(ctx()), n);
        ExpectSameDouble(*bat.Min(), *bat.Min(ctx()), n);
        // Sum reduces per fixed-size morsel: identical at every threadcnt.
        ExpectSameDouble(*bat.Sum(Ctx(1)), *bat.Sum(ctx()), n);
      }
    }
  }
  const Bat strs = RandomBat(TailType::kStr, 100, 4);
  EXPECT_FALSE(strs.Sum(ctx()).ok());
  EXPECT_FALSE(strs.ArgMax(ctx()).ok());
}

TEST_P(ParallelKernelTest, GroupMatchesSerial) {
  for (TailType type : kAllTypes) {
    for (size_t n : kSizes) {
      for (bool all_equal : {false, true}) {
        const Bat bat = RandomBat(type, n, 53 + n, all_equal);
        std::vector<size_t> serial_reps, parallel_reps;
        Bat serial = Group(bat, &serial_reps);
        Bat parallel = Group(bat, &parallel_reps, ctx());
        ExpectSameBat(serial, parallel);
        EXPECT_EQ(serial_reps, parallel_reps);
      }
    }
  }
}

TEST_P(ParallelKernelTest, JoinMatchesSerial) {
  for (TailType tail : kAllTypes) {
    for (size_t n : kSizes) {
      // Left side: oid tails pointing into b's head space, some missing.
      Bat a(TailType::kOid);
      Rng rng(67 + n);
      for (size_t i = 0; i < n; ++i) {
        a.AppendOid(static_cast<Oid>(i),
                    static_cast<Oid>(rng.UniformInt(uint64_t{400})));
      }
      // Build side with duplicate heads, so one probe emits several rows.
      const Bat b = RandomBat(tail, 300, 71 + n);
      auto serial = Join(a, b);
      auto parallel = Join(a, b, ctx());
      ASSERT_TRUE(serial.ok());
      ASSERT_TRUE(parallel.ok());
      ExpectSameBat(*serial, *parallel);
    }
  }
  // Joining against an empty build side yields an empty result.
  Bat a(TailType::kOid);
  for (size_t i = 0; i < 5000; ++i) a.AppendOid(i, i);
  auto empty = Join(a, Bat(TailType::kFloat), ctx());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  // Non-oid left tail is rejected on both paths.
  EXPECT_FALSE(Join(Bat(TailType::kInt), a, ctx()).ok());
}

TEST_P(ParallelKernelTest, SemijoinMatchesSerial) {
  for (TailType type : kAllTypes) {
    for (size_t n : kSizes) {
      for (bool all_equal : {false, true}) {
        const Bat a = RandomBat(type, n, 83 + n, all_equal);
        // Filter side sharing part of a's head space (heads are < 1000).
        Bat b(TailType::kOid);
        Rng rng(89 + n);
        for (size_t i = 0; i < 150; ++i) {
          b.AppendOid(static_cast<Oid>(rng.UniformInt(uint64_t{500})), i);
        }
        const Bat serial = Semijoin(a, b);
        const Bat parallel = Semijoin(a, b, ctx());
        ExpectSameBat(serial, parallel);
        // The pre-index plan (auto_index off) is byte-identical too.
        ExecContext cold = ctx();
        cold.auto_index = false;
        ExpectSameBat(serial, Semijoin(a, b, cold));
      }
    }
  }
  // Empty filter side keeps nothing.
  const Bat a = RandomBat(TailType::kInt, 5000, 97);
  EXPECT_TRUE(Semijoin(a, Bat(TailType::kOid), ctx()).empty());
}

TEST_P(ParallelKernelTest, DiffMatchesSerial) {
  for (TailType type : kAllTypes) {
    for (size_t n : kSizes) {
      for (bool all_equal : {false, true}) {
        const Bat a = RandomBat(type, n, 101 + n, all_equal);
        Bat b(TailType::kOid);
        Rng rng(103 + n);
        for (size_t i = 0; i < 150; ++i) {
          b.AppendOid(static_cast<Oid>(rng.UniformInt(uint64_t{500})), i);
        }
        const Bat serial = Diff(a, b);
        const Bat parallel = Diff(a, b, ctx());
        ExpectSameBat(serial, parallel);
        ExecContext cold = ctx();
        cold.auto_index = false;
        ExpectSameBat(serial, Diff(a, b, cold));
      }
    }
  }
  // Empty filter side keeps everything.
  const Bat a = RandomBat(TailType::kFloat, 5000, 107);
  ExpectSameBat(a, Diff(a, Bat(TailType::kOid), ctx()));
}

TEST_P(ParallelKernelTest, IndexedOperatorsMatchColdPlans) {
  // Warm every persistent index up front, then re-run the probe-shaped
  // operators against cold (auto_index=false) plans: identical bytes.
  ExecContext cold = ctx();
  cold.auto_index = false;
  for (TailType type : kAllTypes) {
    const Bat bat = RandomBat(type, 5000, 113);
    bat.BuildTailIndex();
    bat.BuildHeadIndex();
    const Value probe = RandomBat(type, 1, 113).TailAt(0);
    ASSERT_TRUE(bat.SelectEq(probe, cold).ok());
    ExpectSameBat(*bat.SelectEq(probe, cold), *bat.SelectEq(probe, ctx()));
    Bat a(TailType::kOid);
    Rng rng(127);
    for (size_t i = 0; i < 2000; ++i) {
      a.AppendOid(static_cast<Oid>(i),
                  static_cast<Oid>(rng.UniformInt(uint64_t{1500})));
    }
    ExpectSameBat(*Join(a, bat, cold), *Join(a, bat, ctx()));
  }
}

INSTANTIATE_TEST_SUITE_P(Threadcnt, ParallelKernelTest,
                         ::testing::Values(1, 2, 7));

}  // namespace
}  // namespace cobra::kernel
