#include <gtest/gtest.h>

#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/catalog.h"
#include "query/engine.h"
#include "query/parser.h"

namespace cobra::query {
namespace {

TEST(ParserTest, MinimalQuery) {
  auto q = ParseQuery("RETRIEVE highlight FROM 'german-gp'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->primary.type, "highlight");
  EXPECT_EQ(q->video, "german-gp");
  EXPECT_EQ(q->temporal_op, TemporalOp::kNone);
  EXPECT_EQ(q->preference, MethodPreference::kQuality);
}

TEST(ParserTest, WhereClauseMultipleConjuncts) {
  auto q = ParseQuery(
      "RETRIEVE caption FROM 'usa-gp' WHERE driver = 'Montoya' AND kind = "
      "'pitstop'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->primary.attr_equals.at("driver"), "MONTOYA");
  EXPECT_EQ(q->primary.attr_equals.at("kind"), "PITSTOP");
}

TEST(ParserTest, TemporalClauseWithSecondaryWhere) {
  auto q = ParseQuery(
      "RETRIEVE highlight FROM 'b' OVERLAPPING caption WHERE driver = 'X'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->temporal_op, TemporalOp::kOverlapping);
  EXPECT_EQ(q->secondary.type, "caption");
  EXPECT_EQ(q->secondary.attr_equals.at("driver"), "X");
}

TEST(ParserTest, PreferClause) {
  auto q = ParseQuery("RETRIEVE excited_speech FROM 'b' PREFER COST");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->preference, MethodPreference::kCost);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto q = ParseQuery("retrieve pitstop from 'x' where driver = 'alesi'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->primary.type, "pitstop");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM y").ok());
  EXPECT_FALSE(ParseQuery("RETRIEVE highlight").ok());
  EXPECT_FALSE(ParseQuery("RETRIEVE highlight FROM 'x' WHERE = 'y'").ok());
  EXPECT_FALSE(ParseQuery("RETRIEVE highlight FROM 'x' garbage").ok());
  EXPECT_FALSE(ParseQuery("RETRIEVE h FROM 'x' PREFER SPEED").ok());
  EXPECT_FALSE(ParseQuery("RETRIEVE h FROM 'unterminated").ok());
}

TEST(ParserTest, ProfilePrefix) {
  auto q = ParseQuery("PROFILE RETRIEVE highlight FROM 'german-gp'");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->profile);
  EXPECT_EQ(q->primary.type, "highlight");
  auto plain = ParseQuery("retrieve highlight from 'german-gp'");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->profile);
}

// Fuzz-ish corpus of malformed queries. Every entry must come back as a
// typed InvalidArgument — truncated clauses, doubled tokens, unterminated
// strings, and stray bytes never crash the parser.
TEST(ParserTest, MalformedInputCorpus) {
  const char* corpus[] = {
      "PROFILE",
      "PROFILE PROFILE RETRIEVE h FROM 'x'",
      "RETRIEVE",
      "RETRIEVE 'quoted' FROM 'x'",
      "RETRIEVE h FROM",
      "RETRIEVE h FROM =",
      "RETRIEVE h FROM 'x' WHERE",
      "RETRIEVE h FROM 'x' WHERE driver",
      "RETRIEVE h FROM 'x' WHERE driver =",
      "RETRIEVE h FROM 'x' WHERE driver = = 'a'",
      "RETRIEVE h FROM 'x' WHERE driver = 'a' AND",
      "RETRIEVE h FROM 'x' DURING",
      "RETRIEVE h FROM 'x' DURING 'caption'",
      "RETRIEVE h FROM 'x' OVERLAPPING c WHERE",
      "RETRIEVE h FROM 'x' PREFER",
      "RETRIEVE h FROM 'x' PREFER QUALITY COST",
      "RETRIEVE h FROM \"unterminated",
      "RETRIEVE h FROM 'x' WHERE driver = 'unterminated",
      "RETRIEVE h FROM 'x' %",
      "??",
  };
  for (const char* text : corpus) {
    auto q = ParseQuery(text);
    EXPECT_FALSE(q.ok()) << text;
    if (!q.ok()) {
      EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(ParserTest, LongConjunctChainParses) {
  std::string text = "RETRIEVE h FROM 'x' WHERE a0 = 'v'";
  for (int i = 1; i < 500; ++i) {
    text += " AND a" + std::to_string(i) + " = 'v'";
  }
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->primary.attr_equals.size(), 500u);
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = videos_.RegisterVideo("race", 600.0);
    ASSERT_TRUE(id.ok());
    video_ = *id;
    // Pre-materialized events.
    StoreEvent("highlight", 30, 40, {});
    StoreEvent("highlight", 100, 110, {{"driver", "ALESI"}});
    StoreEvent("caption", 102, 106, {{"driver", "ALESI"}});
    StoreEvent("caption", 300, 304, {{"driver", "BUTTON"}});
  }

  void StoreEvent(const std::string& type, double b, double e,
                  std::map<std::string, std::string> attrs) {
    model::EventRecord record;
    record.type = type;
    record.begin_sec = b;
    record.end_sec = e;
    record.attrs = std::move(attrs);
    ASSERT_TRUE(videos_.StoreEvent(video_, record).ok());
  }

  kernel::Catalog catalog_;
  model::VideoCatalog videos_{&catalog_};
  extensions::ExtensionRegistry registry_;
  QueryEngine engine_{&videos_, &registry_};
  model::VideoId video_ = 0;
};

TEST_F(QueryEngineTest, RetrievesMaterializedEvents) {
  auto result = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->segments.size(), 2u);
  EXPECT_FALSE(result->extracted_dynamically);
}

TEST_F(QueryEngineTest, AttributeFilter) {
  auto result =
      engine_.Execute("RETRIEVE highlight FROM 'race' WHERE driver = 'alesi'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->segments.size(), 1u);
  EXPECT_DOUBLE_EQ(result->segments[0].begin_sec, 100.0);
}

TEST_F(QueryEngineTest, TemporalJoinOverlapping) {
  auto result = engine_.Execute(
      "RETRIEVE highlight FROM 'race' OVERLAPPING caption WHERE driver = "
      "'ALESI'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->segments.size(), 1u);
  EXPECT_DOUBLE_EQ(result->segments[0].begin_sec, 100.0);
}

TEST_F(QueryEngineTest, TemporalBeforeAfter) {
  auto before = engine_.Execute(
      "RETRIEVE highlight FROM 'race' BEFORE caption WHERE driver = 'BUTTON'");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->segments.size(), 2u);
  auto after = engine_.Execute(
      "RETRIEVE caption FROM 'race' AFTER highlight WHERE driver = 'ALESI'");
  ASSERT_TRUE(after.ok());
  // Caption at 300 begins after highlight [100,110]; caption at 102 doesn't.
  ASSERT_EQ(after->segments.size(), 1u);
  EXPECT_DOUBLE_EQ(after->segments[0].begin_sec, 300.0);
}

TEST_F(QueryEngineTest, MissingVideoErrors) {
  EXPECT_FALSE(engine_.Execute("RETRIEVE highlight FROM 'nope'").ok());
}

TEST_F(QueryEngineTest, MissingMetadataWithoutProviderErrors) {
  auto result = engine_.Execute("RETRIEVE flyout FROM 'race'");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(QueryEngineTest, DynamicExtractionInvokesExtension) {
  int calls = 0;
  registry_.Register(std::make_unique<extensions::CallbackExtension>(
      "test-extension",
      std::vector<extensions::CallbackExtension::Provided>{
          {"flyout", 1.0, 0.9}},
      [this, &calls](model::VideoId id, const std::string&,
                     model::VideoCatalog* catalog) {
        ++calls;
        model::EventRecord e;
        e.type = "flyout";
        e.begin_sec = 50;
        e.end_sec = 57;
        return catalog->StoreEvent(id, e);
      }));
  auto result = engine_.Execute("RETRIEVE flyout FROM 'race'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->segments.size(), 1u);
  EXPECT_TRUE(result->extracted_dynamically);
  ASSERT_EQ(result->methods_invoked.size(), 1u);
  EXPECT_EQ(result->methods_invoked[0], "test-extension");
  EXPECT_EQ(calls, 1);
  // Second query hits the materialized metadata: no re-extraction.
  auto again = engine_.Execute("RETRIEVE flyout FROM 'race'");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->extracted_dynamically);
  EXPECT_EQ(calls, 1);
}

TEST_F(QueryEngineTest, MethodSelectionByPreference) {
  auto make = [this](const std::string& name, double cost, double quality) {
    registry_.Register(std::make_unique<extensions::CallbackExtension>(
        name,
        std::vector<extensions::CallbackExtension::Provided>{
            {"passing", cost, quality}},
        [name](model::VideoId id, const std::string&,
               model::VideoCatalog* catalog) {
          model::EventRecord e;
          e.type = "passing";
          e.begin_sec = 1;
          e.end_sec = 2;
          e.attrs["by"] = name;
          return catalog->StoreEvent(id, e);
        }));
  };
  make("cheap-method", 1.0, 0.5);
  make("good-method", 5.0, 0.95);

  auto best = engine_.Execute("RETRIEVE passing FROM 'race' PREFER QUALITY");
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->methods_invoked[0], "good-method");

  ASSERT_TRUE(videos_.DropEvents(video_, "passing").ok());
  auto cheap = engine_.Execute("RETRIEVE passing FROM 'race' PREFER COST");
  ASSERT_TRUE(cheap.ok());
  EXPECT_EQ(cheap->methods_invoked[0], "cheap-method");
}

TEST_F(QueryEngineTest, CachedPathSkipsExtractionAndReevaluation) {
  int calls = 0;
  registry_.Register(std::make_unique<extensions::CallbackExtension>(
      "test-extension",
      std::vector<extensions::CallbackExtension::Provided>{
          {"flyout", 1.0, 0.9}},
      [&calls](model::VideoId id, const std::string&,
               model::VideoCatalog* catalog) {
        ++calls;
        model::EventRecord e;
        e.type = "flyout";
        e.begin_sec = 50;
        e.end_sec = 57;
        return catalog->StoreEvent(id, e);
      }));
  auto first = engine_.Execute("RETRIEVE flyout FROM 'race'");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->extracted_dynamically);
  EXPECT_FALSE(first->cache_hit);
  // The second identical query is served entirely from the cache.
  auto second = engine_.Execute("RETRIEVE flyout FROM 'race'");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->extracted_dynamically);
  EXPECT_TRUE(second->cache_hit);
  EXPECT_TRUE(second->methods_invoked.empty());
  ASSERT_EQ(second->segments.size(), first->segments.size());
  EXPECT_DOUBLE_EQ(second->segments[0].begin_sec, 50.0);
  EXPECT_EQ(calls, 1);
  const CacheStats stats = engine_.cache_stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);
}

TEST_F(QueryEngineTest, CacheInvalidatedByEventMutation) {
  auto first = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->segments.size(), 2u);
  auto hit = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  // An event-layer mutation invalidates the entry; the next run re-evaluates
  // and sees the new event.
  StoreEvent("highlight", 500, 510, {});
  auto refreshed = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(refreshed.ok());
  EXPECT_FALSE(refreshed->cache_hit);
  EXPECT_EQ(refreshed->segments.size(), 3u);
}

TEST_F(QueryEngineTest, CacheCapacityEvictsAndZeroDisables) {
  engine_.set_cache_capacity(1);
  ASSERT_TRUE(engine_.Execute("RETRIEVE highlight FROM 'race'").ok());
  ASSERT_TRUE(engine_.Execute("RETRIEVE caption FROM 'race'").ok());
  CacheStats stats = engine_.cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 1u);
  // The evicted query re-misses.
  auto evicted = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(evicted.ok());
  EXPECT_FALSE(evicted->cache_hit);

  engine_.set_cache_capacity(0);
  EXPECT_EQ(engine_.cache_stats().entries, 0u);
  auto uncached = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(uncached.ok());
  EXPECT_FALSE(uncached->cache_hit);
  auto still_uncached = engine_.Execute("RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(still_uncached.ok());
  EXPECT_FALSE(still_uncached->cache_hit);
}

TEST(ExtensionRegistryTest, ProvidersFiltersByType) {
  extensions::ExtensionRegistry registry;
  registry.Register(std::make_unique<extensions::CallbackExtension>(
      "a",
      std::vector<extensions::CallbackExtension::Provided>{{"x", 1, 0.5}},
      [](model::VideoId, const std::string&, model::VideoCatalog*) {
        return Status::OK();
      }));
  EXPECT_EQ(registry.Providers("x").size(), 1u);
  EXPECT_TRUE(registry.Providers("y").empty());
  EXPECT_EQ(registry.Names().size(), 1u);
}

}  // namespace
}  // namespace cobra::query
