// The streaming differential harness: the SAME event history must yield
// byte-identical state and results whether it was batch-loaded once or
// streamed in arbitrarily-sized batches with continuous queries attached.
//
//   * kernel layer — StreamBat appends under randomized batch sizes vs a
//     batch-built Bat: ScanWindow byte-identical to SelectRange, CountEq
//     identical to a scan, zone maps prune without changing results, and
//     incremental index maintenance keeps probes fresh (no rebuilds);
//   * end-to-end — an f1 race replayed through ReplayDriver into the query
//     server with WATCH queries registered over the wire: final query
//     results AND the concatenated notification stream are byte-identical
//     to the one-giant-batch oracle, across random batch seeds;
//   * sharded — the same streamed history read back at 1/2/7 shards
//     produces the same response bytes;
//   * seeded defect — with `unsafe_skip_tail_reindex` (kernel) or a stamped
//     event.type index (watch gate), the harness MUST detect divergence:
//     a stale-index bug cannot pass this suite.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "base/strings.h"
#include "base/trace.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "f1/replay_driver.h"
#include "f1/timeline.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/exec_context.h"
#include "kernel/persist.h"
#include "kernel/stream.h"
#include "query/continuous.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "server/protocol.h"
#include "server/server.h"

namespace cobra {
namespace {

using kernel::Bat;
using kernel::Catalog;
using kernel::Oid;
using kernel::StreamBat;
using kernel::TailType;
using kernel::Value;

// ---------------------------------------------------------------------------
// Kernel layer: StreamBat vs batch-built Bat.

/// Canonical rendering of a (head, float-tail) result — equal strings mean
/// byte-identical results.
std::string CanonFloatBat(const Bat& bat) {
  std::string out;
  for (size_t i = 0; i < bat.size(); ++i) {
    out += StrFormat("%llu:%a\n",
                     static_cast<unsigned long long>(bat.HeadAt(i)),
                     bat.FloatAt(i));
  }
  return out;
}

/// The deterministic value sequence both sides ingest.
std::vector<double> WorkloadValues(size_t n) {
  Rng rng(0xF1F1F1);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(rng.Uniform(-100.0, 100.0));
  return values;
}

TEST(StreamBatDifferentialTest, RandomizedBatchesMatchBatchOracle) {
  constexpr size_t kRows = 500;
  const std::vector<double> values = WorkloadValues(kRows);

  // Batch oracle: everything appended up front, queried via SelectRange.
  Bat oracle(TailType::kFloat);
  for (size_t i = 0; i < kRows; ++i) {
    oracle.AppendFloat(static_cast<Oid>(i + 1), values[i]);
  }

  const struct {
    double lo, hi;
  } windows[] = {{-10.0, 10.0}, {-200.0, 200.0}, {55.5, 56.5}, {99.0, 98.0}};

  for (const uint64_t seed : {7u, 99u, 12345u}) {
    for (const uint64_t segment_rows : {3u, 16u, 64u}) {
      SCOPED_TRACE(StrFormat("seed=%llu segment_rows=%llu",
                             static_cast<unsigned long long>(seed),
                             static_cast<unsigned long long>(segment_rows)));
      Catalog catalog;
      ASSERT_TRUE(catalog.Create("s", TailType::kFloat).ok());
      StreamBat::Options opts;
      opts.segment_rows = segment_rows;
      auto stream = StreamBat::Attach(&catalog, "s", opts);
      ASSERT_TRUE(stream.ok()) << stream.status().message();

      Rng rng(seed);
      size_t next = 0;
      while (next < kRows) {
        const size_t take =
            std::min<size_t>(rng.UniformInt(9) + 1, kRows - next);
        for (size_t i = 0; i < take; ++i, ++next) {
          ASSERT_TRUE(
              stream->Append(static_cast<Oid>(next + 1), Value::Float(values[next]))
                  .ok());
        }
        // Mid-stream reads over a partially sealed row space must match the
        // oracle restricted to the same prefix.
        Bat prefix(TailType::kFloat);
        for (size_t i = 0; i < next; ++i) {
          prefix.AppendFloat(static_cast<Oid>(i + 1), values[i]);
        }
        auto mid = stream->ScanWindow(-50.0, 50.0, kernel::ExecContext());
        auto mid_oracle = prefix.SelectRange(-50.0, 50.0);
        ASSERT_TRUE(mid.ok());
        ASSERT_TRUE(mid_oracle.ok());
        ASSERT_EQ(CanonFloatBat(*mid), CanonFloatBat(*mid_oracle));
      }

      // Final reads: every window byte-identical to the batch oracle.
      for (const auto& w : windows) {
        auto got = stream->ScanWindow(w.lo, w.hi, kernel::ExecContext());
        auto want = oracle.SelectRange(w.lo, w.hi);
        ASSERT_TRUE(got.ok());
        ASSERT_TRUE(want.ok());
        EXPECT_EQ(CanonFloatBat(*got), CanonFloatBat(*want))
            << "window [" << w.lo << ", " << w.hi << "]";
      }
      // The segmentation really sealed, and narrow windows really pruned.
      EXPECT_EQ(stream->visible_rows(), kRows);
      EXPECT_GE(stream->stats().seals, kRows / segment_rows - 1);
      EXPECT_GT(stream->stats().segments_pruned, 0u);
    }
  }
}

TEST(StreamBatDifferentialTest, IncrementalMaintenanceServesFreshProbes) {
  // Streaming appends with maintenance on: the index built once is extended
  // in place (tail_extends grows, tail_builds does not) and CountEq stays
  // exact after every batch.
  Catalog catalog;
  ASSERT_TRUE(catalog.Create("labels", TailType::kStr).ok());
  StreamBat::Options opts;
  opts.segment_rows = 32;
  auto stream = StreamBat::Attach(&catalog, "labels", opts);
  ASSERT_TRUE(stream.ok());

  uint64_t hot = 0;
  for (size_t i = 0; i < 200; ++i) {
    const bool is_hot = i % 3 == 0;
    hot += is_hot ? 1 : 0;
    ASSERT_TRUE(stream
                    ->Append(static_cast<Oid>(i + 1),
                             Value::Str(is_hot ? "hot" : "cold-" +
                                                             std::to_string(i)))
                    .ok());
  }
  stream->backing().BuildTailIndex();
  const uint64_t builds_after_first = stream->backing().accel_info().tail_builds;

  for (size_t i = 200; i < 400; ++i) {
    const bool is_hot = i % 3 == 0;
    hot += is_hot ? 1 : 0;
    ASSERT_TRUE(stream
                    ->Append(static_cast<Oid>(i + 1),
                             Value::Str(is_hot ? "hot" : "cold-" +
                                                             std::to_string(i)))
                    .ok());
    auto count = stream->CountEq(Value::Str("hot"), kernel::ExecContext());
    ASSERT_TRUE(count.ok());
    ASSERT_EQ(*count, hot) << "stale probe after append " << i;
  }
  const Bat::AccelInfo info = stream->backing().accel_info();
  EXPECT_TRUE(info.tail_index_fresh);
  EXPECT_EQ(info.tail_builds, builds_after_first);  // never rebuilt...
  EXPECT_GE(info.tail_extends, 200u);               // ...extended per append
  EXPECT_EQ(info.tail_indexed_rows, 400u);
}

TEST(StreamBatDifferentialTest, SeededStaleIndexDefectIsCaught) {
  // The same workload with `unsafe_skip_tail_reindex`: the index is stamped
  // fresh without the appended rows, so probe-vs-scan MUST diverge — this
  // is the proof the harness can catch the latent-staleness bug class.
  auto run = [](bool defect) -> std::vector<uint64_t> {
    Catalog catalog;
    COBRA_CHECK(catalog.Create("labels", TailType::kStr).ok());
    StreamBat::Options opts;
    opts.segment_rows = 32;
    opts.unsafe_skip_tail_reindex = defect;
    auto stream = StreamBat::Attach(&catalog, "labels", opts);
    COBRA_CHECK(stream.ok());
    std::vector<uint64_t> counts;
    for (size_t i = 0; i < 300; ++i) {
      COBRA_CHECK(stream
                      ->Append(static_cast<Oid>(i + 1),
                               Value::Str(i % 3 == 0 ? "hot" : "cold"))
                      .ok());
      if (i == 149) stream->backing().BuildTailIndex();
      if (i > 149 && i % 50 == 0) {
        auto count = stream->CountEq(Value::Str("hot"), kernel::ExecContext());
        COBRA_CHECK(count.ok());
        counts.push_back(*count);
      }
    }
    return counts;
  };
  const std::vector<uint64_t> honest = run(false);
  const std::vector<uint64_t> defective = run(true);
  ASSERT_EQ(honest.size(), defective.size());
  EXPECT_NE(honest, defective) << "the seeded defect was NOT caught";
  // And the honest run agrees with arithmetic: the first probe lands after
  // appending i=150, so it counts i in [0, 150] with i % 3 == 0.
  EXPECT_EQ(honest.front(), 150u / 3 + 1);
}

TEST(StreamBatDifferentialTest, SpansAndSealsAreRecorded) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Create("s", TailType::kFloat).ok());
  StreamBat::Options opts;
  opts.segment_rows = 4;
  auto stream = StreamBat::Attach(&catalog, "s", opts);
  ASSERT_TRUE(stream.ok());

  trace::TraceSink sink;
  kernel::ExecContext ctx;
  ctx.trace = &sink;
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        stream->Append(static_cast<Oid>(i + 1), Value::Float(i * 1.0), ctx)
            .ok());
  }
  ASSERT_TRUE(stream->ScanWindow(0.0, 5.0, ctx).ok());
  ASSERT_TRUE(stream->CountEq(Value::Float(3.0), ctx).ok());
  const std::string text = sink.ToText();
  EXPECT_NE(text.find("stream.append"), std::string::npos) << text;
  EXPECT_NE(text.find("stream.scan"), std::string::npos) << text;
  EXPECT_NE(text.find("stream.count"), std::string::npos) << text;

  // 10 rows at segment_rows=4: two sealed segments + a 2-row tail.
  const std::vector<StreamBat::Segment> segments = stream->Segments();
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_TRUE(segments[0].sealed);
  EXPECT_TRUE(segments[1].sealed);
  EXPECT_FALSE(segments[2].sealed);
  EXPECT_EQ(segments[0].end_row, 4u);
  EXPECT_EQ(segments[1].end_row, 8u);
  EXPECT_EQ(segments[2].end_row, 10u);
  EXPECT_TRUE(segments[0].has_zone);
  EXPECT_EQ(segments[0].min_num, 0.0);
  EXPECT_EQ(segments[0].max_num, 3.0);
}

// ---------------------------------------------------------------------------
// End to end: an f1 race streamed through the server with watches attached.

/// Everything one replay run produces, rendered to comparable bytes.
/// Notification lines exclude epoch/version (pump timing moves them) but
/// keep watch id, per-watch sequence and the canonical segment line.
/// `notifications` concatenates the per-watch streams in watch-id order:
/// each watch's stream is a deterministic function of the write history,
/// while the interleaving ACROSS watches legitimately depends on batch
/// boundaries (one giant batch drains watch 1 entirely before watch 2).
struct RunResult {
  std::string notifications;
  std::vector<std::string> final_results;
  std::string kernel_dump;
  query::ContinuousQueryManager::Stats watch_stats;
};

const char* kWatchQueries[] = {
    "WATCH RETRIEVE passing FROM 'german-gp'",
    "WATCH RETRIEVE commentary FROM 'german-gp' WHERE excited = '1' WINDOW "
    "60s",
    "WATCH RETRIEVE pitstop FROM 'german-gp'",
};
const char* kFinalQueries[] = {
    "RETRIEVE passing FROM 'german-gp'",
    "RETRIEVE pitstop FROM 'german-gp'",
    "RETRIEVE commentary FROM 'german-gp' WHERE excited = '1'",
    "RETRIEVE passing FROM 'german-gp' DURING excited",
};

/// Replays `timeline` into a fresh stack. `batch_rows` > 0 fixes the batch
/// size (the full event count = the batch oracle); 0 draws random sizes
/// from `seed`.
RunResult RunServerReplay(const f1::RaceTimeline& timeline,
                          uint64_t batch_rows, uint64_t seed) {
  kernel::Catalog kcat;
  model::VideoCatalog videos(&kcat);
  extensions::ExtensionRegistry registry;
  query::QueryEngine engine(&videos, &registry);
  server::QueryServer server(&engine, &videos, &kcat);
  server::LocalConnection conn(&server);

  auto video = videos.RegisterVideo("german-gp", timeline.profile.duration_sec);
  COBRA_CHECK(video.ok());

  RunResult run;
  // Watches registered over the wire: the OK response carries the id.
  for (size_t i = 0; i < std::size(kWatchQueries); ++i) {
    const server::protocol::Response response = conn.Query(kWatchQueries[i]);
    COBRA_CHECK(response.ok);
    COBRA_CHECK(response.watch == i + 1);
  }

  f1::ReplayDriver::Options opts;
  opts.batch_rows = batch_rows;
  opts.seed = seed;
  f1::ReplayDriver driver(&videos, opts);
  std::map<uint64_t, std::string> watch_streams;
  auto progress = driver.Replay(
      *video, timeline, [&](const f1::ReplayDriver::Progress&) -> Status {
        COBRA_RETURN_IF_ERROR(server.PumpWatches());
        for (const server::protocol::Notification& n :
             conn.TakeNotifications()) {
          watch_streams[n.watch] += StrFormat(
              "watch=%llu seq=%llu %s\n",
              static_cast<unsigned long long>(n.watch),
              static_cast<unsigned long long>(n.seq), n.segment.c_str());
        }
        return Status::OK();
      });
  COBRA_CHECK(progress.ok());
  COBRA_CHECK(progress->events == timeline.events.size());
  for (const auto& [_, stream] : watch_streams) run.notifications += stream;

  for (const char* text : kFinalQueries) {
    const server::protocol::Response response = conn.Query(text);
    COBRA_CHECK(response.ok);
    std::string lines;
    for (const std::string& segment : response.segments) {
      lines += segment;
      lines.push_back('\n');
    }
    run.final_results.push_back(std::move(lines));
  }
  run.kernel_dump = kernel::PersistentStore::DumpCatalog(kcat);
  run.watch_stats = server.watch_manager().stats();
  return run;
}

TEST(StreamServerDifferentialTest, StreamedReplayMatchesBatchOracle) {
  const f1::RaceTimeline timeline =
      f1::GenerateTimeline(f1::RaceProfile::GermanGp(600.0));
  ASSERT_GT(timeline.events.size(), 50u);

  // Oracle: one giant batch, one pump.
  const RunResult oracle = RunServerReplay(
      timeline, /*batch_rows=*/timeline.events.size(), /*seed=*/1);
  ASSERT_FALSE(oracle.notifications.empty());
  ASSERT_FALSE(oracle.final_results[0].empty());

  for (const uint64_t seed : {7u, 99u, 12345u}) {
    SCOPED_TRACE(StrFormat("seed=%llu", static_cast<unsigned long long>(seed)));
    const RunResult streamed =
        RunServerReplay(timeline, /*batch_rows=*/0, seed);
    // Batch boundaries moved; none of the observable bytes may.
    EXPECT_EQ(streamed.notifications, oracle.notifications);
    EXPECT_EQ(streamed.final_results, oracle.final_results);
    EXPECT_EQ(streamed.kernel_dump, oracle.kernel_dump);
    // The streamed run pumped once per batch; the append-only gate must
    // have skipped evaluations for batches without a watched type, and the
    // eval count stays far below watches x batches.
    EXPECT_GT(streamed.watch_stats.evals, 0u);
    EXPECT_GT(streamed.watch_stats.skipped_evals, 0u);
  }

  // Per-watch sequence numbers are gap-free from 1 — no duplicate and no
  // lost notification anywhere in the oracle stream.
  std::map<uint64_t, uint64_t> last_seq;
  std::istringstream lines(oracle.notifications);
  std::string line;
  while (std::getline(lines, line)) {
    unsigned long long watch = 0;
    unsigned long long seq = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "watch=%llu seq=%llu", &watch, &seq),
              2)
        << line;
    EXPECT_EQ(seq, last_seq[watch] + 1) << line;
    last_seq[watch] = seq;
  }
  EXPECT_EQ(last_seq.size(), 3u);  // every watch delivered something
}

TEST(StreamServerDifferentialTest, StampedGateIndexBreaksTheStreamAndIsCaught) {
  // Watch-level seeded defect: stamping the kernel event.type index fresh
  // between batches feeds the append-only gate stale cardinalities, so it
  // wrongly proves "nothing relevant appended" and skips evaluations —
  // notifications go missing. The harness detects this as a stream
  // divergence from the honest run.
  const f1::RaceTimeline timeline =
      f1::GenerateTimeline(f1::RaceProfile::GermanGp(240.0));

  auto run = [&](bool defect) -> std::string {
    kernel::Catalog kcat;
    model::VideoCatalog videos(&kcat);
    extensions::ExtensionRegistry registry;
    query::QueryEngine engine(&videos, &registry);
    query::SnapshotManager snapshots(&videos, &kcat);
    query::ContinuousQueryManager watches(&engine, &snapshots, &kcat);
    auto video = videos.RegisterVideo("german-gp", 240.0);
    COBRA_CHECK(video.ok());
    auto id = watches.RegisterText("WATCH RETRIEVE passing FROM 'german-gp'");
    COBRA_CHECK(id.ok());

    std::string stream;
    f1::ReplayDriver::Options opts;
    opts.seed = 7;
    f1::ReplayDriver driver(&videos, opts);
    auto progress = driver.Replay(
        *video, timeline, [&](const f1::ReplayDriver::Progress& p) -> Status {
          auto types = kcat.Get("event.type");
          if (types.ok()) {
            if (p.batches == 1) {
              // An honest index exists from here on...
              (*types)->BuildTailIndex();
            } else if (defect) {
              // ...and the defect stamps it fresh instead of maintaining it.
              (*types)->unsafe_stamp_indexes_fresh();
            }
          }
          std::vector<query::WatchNotification> notes;
          COBRA_RETURN_IF_ERROR(watches.Pump(&notes));
          for (const query::WatchNotification& n : notes) {
            stream += StrFormat(
                "seq=%llu %s\n", static_cast<unsigned long long>(n.seq),
                server::protocol::EncodeSegment(n.segment).c_str());
          }
          return Status::OK();
        });
    COBRA_CHECK(progress.ok());
    return stream;
  };

  const std::string honest = run(false);
  const std::string defective = run(true);
  ASSERT_FALSE(honest.empty());
  EXPECT_NE(honest, defective) << "the stale gate index was NOT caught";
  // The defect loses notifications (gate skips evals); it never invents
  // them, so the defective stream is a strict prefix of the honest one.
  EXPECT_LT(defective.size(), honest.size());
  EXPECT_EQ(honest.substr(0, defective.size()), defective);
}

// ---------------------------------------------------------------------------
// Sharded reads over the streamed history: 1, 2 and 7 shards serve the
// same bytes, and watches pump from the owning shard's snapshot.

TEST(StreamShardDifferentialTest, ShardCountsServeIdenticalBytes) {
  const f1::RaceTimeline timeline =
      f1::GenerateTimeline(f1::RaceProfile::GermanGp(240.0));
  const char* kQuery = "RETRIEVE passing FROM 'german-gp'";

  std::vector<std::string> per_shard_results;
  std::vector<std::string> per_shard_notifications;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
    SCOPED_TRACE(StrFormat("shards=%zu", shards));
    std::vector<std::unique_ptr<kernel::Catalog>> kcats;
    std::vector<std::unique_ptr<model::VideoCatalog>> videos;
    std::vector<std::unique_ptr<query::SnapshotManager>> managers;
    std::vector<query::SnapshotManager*> manager_ptrs;
    for (size_t s = 0; s < shards; ++s) {
      kcats.push_back(std::make_unique<kernel::Catalog>());
      videos.push_back(std::make_unique<model::VideoCatalog>(kcats.back().get()));
      managers.push_back(std::make_unique<query::SnapshotManager>(
          videos.back().get(), kcats.back().get()));
      manager_ptrs.push_back(managers.back().get());
    }
    auto probe = query::AcquireShardedSnapshots(manager_ptrs);
    ASSERT_TRUE(probe.ok());
    const size_t owner = probe->OwnerOf("german-gp");
    ASSERT_LT(owner, shards);

    extensions::ExtensionRegistry registry;
    query::QueryEngine engine(videos[owner].get(), &registry);
    query::ContinuousQueryManager watches(&engine, manager_ptrs[owner],
                                          kcats[owner].get());
    auto video = videos[owner]->RegisterVideo("german-gp", 240.0);
    ASSERT_TRUE(video.ok());
    ASSERT_TRUE(
        watches.RegisterText("WATCH RETRIEVE passing FROM 'german-gp'").ok());

    std::string notifications;
    f1::ReplayDriver::Options opts;
    opts.seed = 99;
    f1::ReplayDriver driver(videos[owner].get(), opts);
    auto progress = driver.Replay(
        *video, timeline, [&](const f1::ReplayDriver::Progress&) -> Status {
          // The sharded pump path: each batch is evaluated over the owning
          // shard's snapshot out of a coherent sharded acquisition.
          COBRA_ASSIGN_OR_RETURN(query::ShardedSnapshotSet set,
                                 query::AcquireShardedSnapshots(manager_ptrs));
          std::vector<query::WatchNotification> notes;
          COBRA_RETURN_IF_ERROR(watches.PumpOver(
              set.shard(owner), kernel::ExecContext(), &notes));
          for (const query::WatchNotification& n : notes) {
            notifications += StrFormat(
                "seq=%llu %s\n", static_cast<unsigned long long>(n.seq),
                server::protocol::EncodeSegment(n.segment).c_str());
          }
          return Status::OK();
        });
    ASSERT_TRUE(progress.ok()) << progress.status().message();

    auto set = query::AcquireShardedSnapshots(manager_ptrs);
    ASSERT_TRUE(set.ok());
    auto result = engine.ExecuteSnapshot(kQuery, *set);
    ASSERT_TRUE(result.ok()) << result.status().message();
    std::string lines;
    for (const std::string& segment :
         server::protocol::EncodeSegments(result->segments)) {
      lines += segment;
      lines.push_back('\n');
    }
    ASSERT_FALSE(lines.empty());
    per_shard_results.push_back(std::move(lines));
    per_shard_notifications.push_back(std::move(notifications));
  }
  // 2 and 7 shards match the 1-shard deployment byte for byte.
  EXPECT_EQ(per_shard_results[1], per_shard_results[0]);
  EXPECT_EQ(per_shard_results[2], per_shard_results[0]);
  EXPECT_EQ(per_shard_notifications[1], per_shard_notifications[0]);
  EXPECT_EQ(per_shard_notifications[2], per_shard_notifications[0]);
}

// ---------------------------------------------------------------------------
// WINDOW semantics: the standing view is window-filtered, the notification
// stream is not (a windowed stream would depend on batch timing).

TEST(StreamWindowTest, WindowBoundsStandingViewOnly) {
  const f1::RaceTimeline timeline =
      f1::GenerateTimeline(f1::RaceProfile::GermanGp(240.0));
  kernel::Catalog kcat;
  model::VideoCatalog videos(&kcat);
  extensions::ExtensionRegistry registry;
  query::QueryEngine engine(&videos, &registry);
  query::SnapshotManager snapshots(&videos, &kcat);
  query::ContinuousQueryManager watches(&engine, &snapshots, &kcat);
  auto video = videos.RegisterVideo("german-gp", 240.0);
  ASSERT_TRUE(video.ok());

  auto plain = watches.RegisterText("WATCH RETRIEVE commentary FROM 'german-gp'");
  auto windowed = watches.RegisterText(
      "WATCH RETRIEVE commentary FROM 'german-gp' WINDOW 45s");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(windowed.ok());

  std::map<uint64_t, std::string> streams;
  f1::ReplayDriver::Options opts;
  opts.seed = 7;
  f1::ReplayDriver driver(&videos, opts);
  auto progress = driver.Replay(
      *video, timeline, [&](const f1::ReplayDriver::Progress&) -> Status {
        std::vector<query::WatchNotification> notes;
        COBRA_RETURN_IF_ERROR(watches.Pump(&notes));
        for (const query::WatchNotification& n : notes) {
          streams[n.watch_id] += StrFormat(
              "seq=%llu %s\n", static_cast<unsigned long long>(n.seq),
              server::protocol::EncodeSegment(n.segment).c_str());
        }
        return Status::OK();
      });
  ASSERT_TRUE(progress.ok());

  // Identical notification streams: WINDOW never filters delivery.
  ASSERT_FALSE(streams[*plain].empty());
  EXPECT_EQ(streams[*plain], streams[*windowed]);

  // The standing views differ: the windowed one holds exactly the segments
  // within 45 s of the newest end seen.
  auto full = watches.Standing(*plain);
  auto recent = watches.Standing(*windowed);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(recent.ok());
  double watermark = 0.0;
  for (const model::EventRecord& e : *full) {
    watermark = std::max(watermark, e.end_sec);
  }
  std::vector<model::EventRecord> expect;
  for (const model::EventRecord& e : *full) {
    if (e.end_sec >= watermark - 45.0) expect.push_back(e);
  }
  ASSERT_LT(recent->size(), full->size());
  ASSERT_EQ(recent->size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(server::protocol::EncodeSegment((*recent)[i]),
              server::protocol::EncodeSegment(expect[i]));
  }
}

// ---------------------------------------------------------------------------
// Engine guard rails: WATCH needs a host.

TEST(StreamWatchGuardTest, WatchWithoutHostIsFailedPrecondition) {
  kernel::Catalog kcat;
  model::VideoCatalog videos(&kcat);
  extensions::ExtensionRegistry registry;
  query::QueryEngine engine(&videos, &registry);
  ASSERT_TRUE(videos.RegisterVideo("race", 600.0).ok());

  auto direct = engine.Execute("WATCH RETRIEVE highlight FROM 'race'");
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kFailedPrecondition);

  query::SnapshotManager snapshots(&videos, &kcat);
  auto pin = snapshots.Acquire();
  auto snap = engine.ExecuteSnapshot("WATCH RETRIEVE highlight FROM 'race'",
                                     *pin);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kFailedPrecondition);

  // With a manager attached, the same text registers and returns the id.
  query::ContinuousQueryManager watches(&engine, &snapshots, &kcat);
  watches.Attach(&engine);
  auto result = engine.Execute("WATCH RETRIEVE highlight FROM 'race'");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->watch_id, 1u);
  EXPECT_TRUE(result->segments.empty());
  EXPECT_EQ(watches.watch_count(), 1u);
}

}  // namespace
}  // namespace cobra
