#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "base/mathutil.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/thread_pool.h"

namespace cobra {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  COBRA_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(2);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(3);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Categorical(weights) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, ForkIndependent) {
  Rng a(5);
  Rng b = a.Fork();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(MathTest, MeanStdDev) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(DynamicRange(v), 3.0);
  EXPECT_DOUBLE_EQ(MaxOf(v), 4.0);
}

TEST(MathTest, EmptyVectorsAreZero) {
  std::vector<double> v;
  EXPECT_EQ(Mean(v), 0.0);
  EXPECT_EQ(StdDev(v), 0.0);
  EXPECT_EQ(DynamicRange(v), 0.0);
}

TEST(MathTest, NormalizeInPlace) {
  std::vector<double> v = {1.0, 3.0};
  NormalizeInPlace(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  std::vector<double> zeros = {0.0, 0.0};
  NormalizeInPlace(zeros);
  EXPECT_DOUBLE_EQ(zeros[0], 0.5);
}

TEST(MathTest, LogSumExpStable) {
  std::vector<double> v = {-1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(v), -1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, SigmoidSymmetry) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(3.0) + Sigmoid(-3.0), 1.0, 1e-12);
}

TEST(StringsTest, SplitTrimJoin) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrTrim("  hi \t"), "hi");
  EXPECT_EQ(StrJoin({"x", "y"}, "-"), "x-y");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToUpperAscii("Pit Stop"), "PIT STOP");
  EXPECT_EQ(ToLowerAscii("ABC"), "abc");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("highlight", "high"));
  EXPECT_FALSE(StartsWith("hi", "high"));
  EXPECT_TRUE(EndsWith("race.avi", ".avi"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(0, 50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace cobra
