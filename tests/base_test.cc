#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/mathutil.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/thread_pool.h"

namespace cobra {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  COBRA_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(2);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(3);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Categorical(weights) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, ForkIndependent) {
  Rng a(5);
  Rng b = a.Fork();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(MathTest, MeanStdDev) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(DynamicRange(v), 3.0);
  EXPECT_DOUBLE_EQ(MaxOf(v), 4.0);
}

TEST(MathTest, EmptyVectorsAreZero) {
  std::vector<double> v;
  EXPECT_EQ(Mean(v), 0.0);
  EXPECT_EQ(StdDev(v), 0.0);
  EXPECT_EQ(DynamicRange(v), 0.0);
}

TEST(MathTest, NormalizeInPlace) {
  std::vector<double> v = {1.0, 3.0};
  NormalizeInPlace(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  std::vector<double> zeros = {0.0, 0.0};
  NormalizeInPlace(zeros);
  EXPECT_DOUBLE_EQ(zeros[0], 0.5);
}

TEST(MathTest, LogSumExpStable) {
  std::vector<double> v = {-1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(v), -1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, SigmoidSymmetry) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(3.0) + Sigmoid(-3.0), 1.0, 1e-12);
}

TEST(StringsTest, SplitTrimJoin) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrTrim("  hi \t"), "hi");
  EXPECT_EQ(StrJoin({"x", "y"}, "-"), "x-y");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToUpperAscii("Pit Stop"), "PIT STOP");
  EXPECT_EQ(ToLowerAscii("ABC"), "abc");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("highlight", "high"));
  EXPECT_FALSE(StartsWith("hi", "high"));
  EXPECT_TRUE(EndsWith("race.avi", ".avi"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(0, 50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

// Regression: Wait() on one group must not wait for another caller's tasks.
// The slow group's task blocks on a gate that is only opened AFTER the quick
// group's Wait() returns — under the old whole-pool WaitIdle semantics this
// test deadlocks.
TEST(TaskGroupTest, WaitCoversOnlyOwnTasks) {
  ThreadPool pool(2);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> slow_done{false};

  TaskGroup slow(&pool);
  slow.Run([opened, &slow_done] {
    opened.wait();
    slow_done.store(true);
  });

  std::atomic<int> quick_count{0};
  TaskGroup quick(&pool);
  for (int i = 0; i < 8; ++i) {
    quick.Run([&quick_count] { quick_count.fetch_add(1); });
  }
  quick.Wait();
  EXPECT_EQ(quick_count.load(), 8);
  EXPECT_FALSE(slow_done.load());  // the other group is still in flight

  gate.set_value();
  slow.Wait();
  EXPECT_TRUE(slow_done.load());
}

// Two threads schedule through their own groups on one shared pool
// concurrently; each must observe exactly its own task count at Wait().
TEST(TaskGroupTest, ConcurrentCallersDoNotInterfere) {
  ThreadPool pool(3);
  constexpr int kTasks = 200;
  auto caller = [&pool](std::atomic<int>* count) {
    for (int round = 0; round < 5; ++round) {
      TaskGroup group(&pool);
      for (int i = 0; i < kTasks; ++i) {
        group.Run([count] { count->fetch_add(1); });
      }
      group.Wait();
      // All of this caller's tasks for the round are done at Wait-return.
      EXPECT_EQ(count->load() % kTasks, 0);
    }
  };
  std::atomic<int> count_a{0}, count_b{0};
  std::thread ta(caller, &count_a);
  std::thread tb(caller, &count_b);
  ta.join();
  tb.join();
  EXPECT_EQ(count_a.load(), 5 * kTasks);
  EXPECT_EQ(count_b.load(), 5 * kTasks);
}

// N producer threads each run rounds of ParallelFor whose bodies nest
// another ParallelFor on the same pool. Nested waits run queued tasks
// instead of blocking workers, so this must neither deadlock nor lose work.
TEST(ThreadPoolTest, NestedParallelForStress) {
  ThreadPool pool(3);
  constexpr int kProducers = 4;
  constexpr int kRounds = 5;
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 13;
  std::atomic<size_t> count{0};
  auto producer = [&] {
    for (int round = 0; round < kRounds; ++round) {
      pool.ParallelFor(0, kOuter, [&](size_t) {
        pool.ParallelFor(0, kInner, [&](size_t) { count.fetch_add(1); });
      });
    }
  };
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) producers.emplace_back(producer);
  for (auto& t : producers) t.join();
  EXPECT_EQ(count.load(), kProducers * kRounds * kOuter * kInner);
}

}  // namespace
}  // namespace cobra
