// Per-shard crash-safety proofs for ShardedCatalog's fanned-out persistence
// (kernel/shard.h), driven by the deterministic FaultFs shim:
//
//   * an exhaustive crash-point matrix over a full sharded checkpoint — for
//     EVERY k, fail the k-th write / sync / rename (and torn-write the k-th
//     append) of the second checkpoint, simulate the machine dying, and
//     assert every shard recovers to exactly its before-commit or its
//     after-commit image — never a torn hybrid — and that the outcome
//     pattern is a prefix of committed shards (shards checkpoint in shard
//     order; the crash stops the fan-out at one shard and leaves every
//     later shard's files untouched);
//   * per-shard independence — corrupting one shard's newest snapshot makes
//     only THAT shard fall back a generation; the other shards recover
//     their newest commit byte-identically;
//   * shard-count discovery over the on-disk layout.
//
// State equality is PersistentStore::DumpCatalog per shard: equal dumps are
// byte-identical for every kernel operation.

#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/io.h"
#include "base/rng.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/exec_context.h"
#include "kernel/persist.h"
#include "kernel/shard.h"

namespace cobra::kernel {
namespace {

using Mode = io::FaultFs::FaultPlan::Mode;

constexpr size_t kShards = 3;
constexpr size_t kAlign = 2;
constexpr char kDir[] = "sharded";

std::string Dump(const Catalog& catalog) {
  return PersistentStore::DumpCatalog(catalog);
}

// Deterministic fixtures. The float BAT carries -0.0 and NaN (the bit
// patterns recovery must preserve exactly); the string BAT is
// duplicate-heavy so per-shard dictionaries have real sharing.
Bat FloatBat(size_t n) {
  Bat bat(TailType::kFloat);
  for (size_t i = 0; i < n; ++i) {
    const double v = i % 5 == 0   ? -0.0
                     : i % 5 == 1 ? std::numeric_limits<double>::quiet_NaN()
                                  : static_cast<double>(i) / 4.0;
    bat.AppendFloat(static_cast<Oid>(i), v);
  }
  return bat;
}

Bat StrBat(size_t n) {
  Bat bat(TailType::kStr);
  for (size_t i = 0; i < n; ++i) {
    bat.AppendStr(static_cast<Oid>(i),
                  i % 3 == 0 ? "" : (i % 2 == 0 ? "dup-even" : "dup-odd"));
  }
  return bat;
}

Bat IntBat(size_t n) {
  Bat bat(TailType::kInt);
  for (size_t i = 0; i < n; ++i) {
    bat.AppendInt(static_cast<Oid>(i), static_cast<int64_t>(i) - 3);
  }
  return bat;
}

Bat OidBat(size_t n) {
  Bat bat(TailType::kOid);
  for (size_t i = 0; i < n; ++i) {
    bat.AppendOid(static_cast<Oid>(i), static_cast<Oid>(i * 7 % 5));
  }
  return bat;
}

// Commit A: the state the first checkpoint makes durable.
void BuildPhaseA(ShardedCatalog* cat) {
  ASSERT_TRUE(cat->Put("speeds", FloatBat(6)).ok());
  ASSERT_TRUE(cat->Put("drivers", StrBat(6)).ok());
  ASSERT_TRUE(cat->Put("laps", IntBat(6)).ok());
  ASSERT_TRUE(cat->Put("frames", OidBat(4)).ok());
}

// Commit B: re-partitioning Puts (every shard's slice changes), an append
// (routed to the last shard), a drop and a create (touch every shard's
// namespace) — chosen so EVERY shard's image differs between the commits.
void MutatePhaseB(ShardedCatalog* cat) {
  ASSERT_TRUE(cat->Put("speeds", FloatBat(12)).ok());
  ASSERT_TRUE(cat->Put("drivers", StrBat(10)).ok());
  ASSERT_TRUE(cat->Append("laps", 99, Value::Int(7)).ok());
  ASSERT_TRUE(cat->Drop("frames").ok());
  ASSERT_TRUE(cat->Create("post", TailType::kStr).ok());
  ASSERT_TRUE(cat->Append("post", 1, Value::Str("tail")).ok());
}

TEST(ShardCrashMatrixTest, EveryCrashPointRecoversACommittedCut) {
  const ExecContext ctx = ExecContext::Serial();  // shard order, no races

  // Reference run: the two per-shard commit images and the op-count window
  // of the second checkpoint that the matrix below sweeps.
  io::FaultFs ref;
  std::vector<std::string> before(kShards);
  std::vector<std::string> after(kShards);
  io::FaultFs::OpCounts c1;
  io::FaultFs::OpCounts c2;
  {
    ShardedCatalog cat(kShards, kAlign);
    BuildPhaseA(&cat);
    ASSERT_TRUE(cat.AttachStores(&ref, kDir).ok());
    ASSERT_TRUE(cat.Checkpoint(ctx, "commit-a").ok());
    for (size_t j = 0; j < kShards; ++j) before[j] = Dump(*cat.shard(j));
    MutatePhaseB(&cat);
    for (size_t j = 0; j < kShards; ++j) after[j] = Dump(*cat.shard(j));
    c1 = ref.counts();
    ASSERT_TRUE(cat.Checkpoint(ctx, "commit-b").ok());
    c2 = ref.counts();
  }
  // The matrix's before/after discrimination is real on every shard.
  for (size_t j = 0; j < kShards; ++j) EXPECT_NE(before[j], after[j]) << j;
  ASSERT_GT(c2.writes, c1.writes);
  ASSERT_GT(c2.syncs, c1.syncs);
  ASSERT_EQ(c2.renames, c1.renames + static_cast<int>(kShards));

  // Clean recovery sanity: a fresh deployment discovers the shard count and
  // lands on commit B everywhere.
  EXPECT_EQ(ShardedCatalog::DiscoverShardCount(ref, kDir), kShards);
  {
    ShardedCatalog rec(kShards, kAlign);
    ASSERT_TRUE(rec.AttachStores(&ref, kDir).ok());
    auto infos = rec.Recover(ctx);
    ASSERT_TRUE(infos.ok()) << infos.status().message();
    ASSERT_EQ(infos->size(), kShards);
    for (size_t j = 0; j < kShards; ++j) {
      EXPECT_EQ(Dump(*rec.shard(j)), after[j]) << j;
      EXPECT_EQ((*infos)[j].extra, "commit-b") << j;
    }
  }

  struct Axis {
    Mode mode;
    int first;
    int last;
    const char* name;
  };
  // Arm() zeroes the op counters, so a plan's k counts from the Arm call:
  // arming right before the second checkpoint makes [1, delta] the exact
  // op window of that checkpoint on each axis.
  const Axis axes[] = {
      {Mode::kFailWrite, 1, c2.writes - c1.writes, "fail-write"},
      {Mode::kTornWrite, 1, c2.writes - c1.writes, "torn-write"},
      {Mode::kFailSync, 1, c2.syncs - c1.syncs, "fail-sync"},
      {Mode::kFailRename, 1, c2.renames - c1.renames, "fail-rename"},
  };

  Rng rng(0x5AAD5);
  int cases = 0;
  for (const Axis& axis : axes) {
    for (int k = axis.first; k <= axis.last; ++k) {
      SCOPED_TRACE(std::string(axis.name) + " k=" + std::to_string(k));
      io::FaultFs fs;
      ShardedCatalog cat(kShards, kAlign);
      BuildPhaseA(&cat);
      ASSERT_TRUE(cat.AttachStores(&fs, kDir).ok());
      ASSERT_TRUE(cat.Checkpoint(ctx, "commit-a").ok());
      MutatePhaseB(&cat);

      fs.Arm({axis.mode, k, rng.UniformInt(uint64_t{1} << 62)});
      // The fault fires inside exactly one shard's checkpoint; FaultFs then
      // fails every later mutating op, so the fan-out dies there — as a
      // machine would. (A best-effort post-prune directory sync is the one
      // crash point a checkpoint survives by design.)
      const bool committed = cat.Checkpoint(ctx, "commit-b").ok();
      if (committed) {
        ASSERT_EQ(axis.mode, Mode::kFailSync)
            << "only a best-effort sync may be survived";
      }
      fs.Crash();  // unsynced bytes vanish, the machine restarts

      // Every shard recovers to exactly one of its committed images...
      ShardedCatalog rec(kShards, kAlign);
      ASSERT_TRUE(rec.AttachStores(&fs, kDir).ok());
      auto infos = rec.Recover(ctx);
      ASSERT_TRUE(infos.ok()) << infos.status().message();
      std::vector<bool> at_b(kShards);
      for (size_t j = 0; j < kShards; ++j) {
        const std::string dump = Dump(*rec.shard(j));
        ASSERT_TRUE(dump == before[j] || dump == after[j])
            << "hybrid state on shard " << j << ":\n"
            << dump;
        at_b[j] = dump == after[j];
      }
      // ...and the committed shards form a prefix: the crash point stopped
      // the shard-order fan-out at one shard and every later shard's files
      // were never touched.
      for (size_t j = 1; j < kShards; ++j) {
        EXPECT_LE(at_b[j], at_b[j - 1]) << "non-prefix commit pattern";
      }
      if (committed) {
        for (size_t j = 0; j < kShards; ++j) EXPECT_TRUE(at_b[j]) << j;
      }

      // The deployment is writable again: a fresh checkpoint of the
      // recovered cut commits on every shard and round-trips.
      ASSERT_TRUE(rec.Checkpoint(ctx, "commit-c").ok());
      ShardedCatalog again(kShards, kAlign);
      ASSERT_TRUE(again.AttachStores(&fs, kDir).ok());
      auto infos2 = again.Recover(ctx);
      ASSERT_TRUE(infos2.ok()) << infos2.status().message();
      for (size_t j = 0; j < kShards; ++j) {
        EXPECT_EQ(Dump(*again.shard(j)), Dump(*rec.shard(j))) << j;
        EXPECT_EQ((*infos2)[j].extra, "commit-c") << j;
      }
      ++cases;
    }
  }
  // Exhaustive over the checkpoint window on all four axes, not sampled.
  const int expected = 2 * (c2.writes - c1.writes) + (c2.syncs - c1.syncs) +
                       (c2.renames - c1.renames);
  EXPECT_EQ(cases, expected);
  EXPECT_GE(cases, 3 * static_cast<int>(kShards));
}

TEST(ShardRecoveryTest, ShardRecoveryIsIndependent) {
  // Corrupt ONE shard's newest snapshot: that shard falls back a generation
  // (commit A); every other shard still recovers commit B byte-identically.
  const ExecContext ctx = ExecContext::Serial();
  io::FaultFs fs;
  std::vector<std::string> before(kShards);
  std::vector<std::string> after(kShards);
  {
    ShardedCatalog cat(kShards, kAlign);
    BuildPhaseA(&cat);
    ASSERT_TRUE(cat.AttachStores(&fs, kDir).ok());
    ASSERT_TRUE(cat.Checkpoint(ctx, "commit-a").ok());
    for (size_t j = 0; j < kShards; ++j) before[j] = Dump(*cat.shard(j));
    MutatePhaseB(&cat);
    for (size_t j = 0; j < kShards; ++j) after[j] = Dump(*cat.shard(j));
    ASSERT_TRUE(cat.Checkpoint(ctx, "commit-b").ok());
  }

  const std::string victim_dir = ShardedCatalog::ShardDir(kDir, 1);
  auto names = fs.ListDir(victim_dir);
  ASSERT_TRUE(names.ok());
  std::string newest;
  for (const std::string& name : names.value()) {
    if (name.rfind("snapshot-", 0) == 0 && name > newest) newest = name;
  }
  ASSERT_FALSE(newest.empty());
  {
    auto file = fs.NewWritableFile(victim_dir + "/" + newest,
                                   /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("not a snapshot").ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }

  ShardedCatalog rec(kShards, kAlign);
  ASSERT_TRUE(rec.AttachStores(&fs, kDir).ok());
  auto infos = rec.Recover(ctx);
  ASSERT_TRUE(infos.ok()) << infos.status().message();
  for (size_t j = 0; j < kShards; ++j) {
    if (j == 1) {
      EXPECT_TRUE((*infos)[j].used_fallback_snapshot);
      EXPECT_EQ((*infos)[j].extra, "commit-a");
      EXPECT_EQ(Dump(*rec.shard(j)), before[j]);
    } else {
      EXPECT_FALSE((*infos)[j].used_fallback_snapshot) << j;
      EXPECT_EQ((*infos)[j].extra, "commit-b") << j;
      EXPECT_EQ(Dump(*rec.shard(j)), after[j]) << j;
    }
  }
}

TEST(ShardRecoveryTest, DiscoverShardCountProbesConsecutiveDirs) {
  io::MemFs fs;
  EXPECT_EQ(ShardedCatalog::DiscoverShardCount(fs, kDir), 0u);

  const ExecContext ctx = ExecContext::Serial();
  ShardedCatalog cat(4, kAlign);
  ASSERT_TRUE(cat.Create("x", TailType::kInt).ok());
  ASSERT_TRUE(cat.AttachStores(&fs, kDir).ok());
  ASSERT_TRUE(cat.Checkpoint(ctx).ok());
  EXPECT_EQ(ShardedCatalog::DiscoverShardCount(fs, kDir), 4u);

  // A parallel (larger-context) recovery of the discovered deployment is
  // byte-identical to the serial one.
  ExecContext par;
  par.threadcnt = 4;
  ShardedCatalog a(4, kAlign);
  ASSERT_TRUE(a.AttachStores(&fs, kDir).ok());
  ASSERT_TRUE(a.Recover(ctx).ok());
  ShardedCatalog b(4, kAlign);
  ASSERT_TRUE(b.AttachStores(&fs, kDir).ok());
  ASSERT_TRUE(b.Recover(par).ok());
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(Dump(*a.shard(j)), Dump(*b.shard(j))) << j;
  }
}

}  // namespace
}  // namespace cobra::kernel
