#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "f1/audio_synth.h"
#include "f1/evaluation.h"
#include "f1/features.h"
#include "f1/frame_render.h"
#include "f1/lexicon.h"
#include "image/analysis.h"
#include "f1/networks.h"
#include "f1/timeline.h"

namespace cobra::f1 {
namespace {

TEST(LexiconTest, VocabulariesNonEmptyAndUpperCase) {
  EXPECT_GE(DriverNames().size(), 10u);
  EXPECT_GE(ExcitedKeywords().size(), 20u);  // "a couple of tens of words"
  for (const auto& w : CaptionVocabulary()) {
    for (char c : w) EXPECT_TRUE(c >= 'A' && c <= 'Z') << w;
  }
}

TEST(TimelineTest, DeterministicForSameProfile) {
  auto a = GenerateTimeline(RaceProfile::GermanGp(300.0));
  auto b = GenerateTimeline(RaceProfile::GermanGp(300.0));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].type, b.events[i].type);
    EXPECT_DOUBLE_EQ(a.events[i].begin, b.events[i].begin);
  }
}

TEST(TimelineTest, ContainsRequiredEventTypes) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(600.0));
  for (const char* type : {"start", "semaphore", "flyout", "passing",
                           "pitstop", "replay", "excited", "commentary",
                           "caption"}) {
    EXPECT_FALSE(timeline.EventsOfType(type).empty()) << type;
  }
}

TEST(TimelineTest, UsaGpHasNoFlyouts) {
  auto timeline = GenerateTimeline(RaceProfile::UsaGp(600.0));
  EXPECT_TRUE(timeline.EventsOfType("flyout").empty());
}

TEST(TimelineTest, SemaphoreOverlapsStart) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(300.0));
  auto sem = timeline.EventsOfType("semaphore");
  auto start = timeline.EventsOfType("start");
  ASSERT_EQ(sem.size(), 1u);
  ASSERT_EQ(start.size(), 1u);
  EXPECT_LT(sem[0].begin, start[0].begin);
  EXPECT_GT(sem[0].end, start[0].begin);
}

TEST(TimelineTest, HighlightsIncludeReplays) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(600.0));
  std::set<std::string> types;
  for (const auto& h : timeline.Highlights()) types.insert(h.type);
  EXPECT_TRUE(types.count("replay"));
  EXPECT_TRUE(types.count("start"));
}

TEST(TimelineTest, EventsDoNotOverlapEachOther) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(600.0));
  auto domain = timeline.Highlights();
  for (size_t i = 0; i < domain.size(); ++i) {
    for (size_t j = i + 1; j < domain.size(); ++j) {
      const bool overlap = domain[i].begin < domain[j].end &&
                           domain[j].begin < domain[i].end;
      EXPECT_FALSE(overlap) << domain[i].type << " vs " << domain[j].type;
    }
  }
}

TEST(AudioSynthTest, ClipDeterminism) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(120.0));
  AudioSynthesizer synth(timeline);
  auto a = synth.SynthesizeClip(42);
  auto b = synth.SynthesizeClip(42);
  EXPECT_EQ(a, b);
}

TEST(AudioSynthTest, SamplesBounded) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(120.0));
  AudioSynthesizer synth(timeline);
  for (size_t c = 0; c < 100; c += 7) {
    for (double v : synth.SynthesizeClip(c)) {
      EXPECT_LT(std::abs(v), 4.0);
    }
  }
}

TEST(AudioSynthTest, ExcitedClipsLouderOnAverage) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(300.0));
  AudioSynthesizer synth(timeline);
  double excited_energy = 0.0, normal_energy = 0.0;
  int en = 0, nn = 0;
  for (size_t c = 0; c < synth.num_clips(); ++c) {
    if (!synth.ClipHasSpeech(c)) continue;
    double e = 0.0;
    for (double v : synth.SynthesizeClip(c)) e += v * v;
    if (synth.ClipIsExcited(c)) {
      excited_energy += e;
      ++en;
    } else {
      normal_energy += e;
      ++nn;
    }
  }
  ASSERT_GT(en, 0);
  ASSERT_GT(nn, 0);
  EXPECT_GT(excited_energy / en, 1.3 * normal_energy / nn);
}

TEST(AudioSynthTest, PhoneStreamAlignsWithCommentary) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(120.0));
  AudioSynthesizer synth(timeline);
  auto stream = synth.PhoneStream();
  ASSERT_EQ(stream.size(), timeline.NumClips());
  int spoken = 0;
  for (const auto& tok : stream) {
    if (tok.phone >= 0) {
      EXPECT_LT(tok.phone, 26);
      EXPECT_GT(tok.confidence, 0.5);
      ++spoken;
    }
  }
  EXPECT_GT(spoken, 200);  // plenty of speech in two minutes
}

TEST(FrameRenderTest, FrameSizeAndDeterminism) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(120.0));
  FrameRenderer renderer(timeline);
  auto a = renderer.Render(30.0);
  auto b = renderer.Render(30.0);
  EXPECT_EQ(a.width(), 256);
  EXPECT_EQ(a.height(), 192);
  EXPECT_EQ(a.data(), b.data());
}

TEST(FrameRenderTest, SemaphoreVisibleBeforeStart) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(120.0));
  FrameRenderer renderer(timeline);
  const auto frame = renderer.Render(24.0);  // during the semaphore phase
  image::Box box;
  double density = 0.0;
  EXPECT_TRUE(image::DetectRedRectangle(
      frame.Crop(0, 0, frame.width(), frame.height() / 2), &box, &density));
}

TEST(FrameRenderTest, CaptionDrawnDuringCaptionEvent) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(300.0));
  auto captions = timeline.EventsOfType("caption");
  ASSERT_FALSE(captions.empty());
  FrameRenderer renderer(timeline);
  const double t = (captions[0].begin + captions[0].end) / 2.0;
  const auto frame = renderer.Render(t);
  // Bottom band darkened with bright text pixels.
  int bright = 0;
  for (int y = frame.height() - frame.height() / 5; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      if (image::Luma(frame.At(x, y)) > 180) ++bright;
    }
  }
  EXPECT_GT(bright, 50);
}

TEST(EvaluationTest, ExtractSegmentsMergesAndFilters) {
  std::vector<double> series(200, 0.0);
  for (int i = 20; i < 80; ++i) series[i] = 0.9;   // 6 s run
  for (int i = 85; i < 90; ++i) series[i] = 0.9;   // merges (gap 0.5 s)
  for (int i = 150; i < 160; ++i) series[i] = 0.9; // 1 s: below min duration
  auto segments = ExtractSegments(series, 0.5, 3.0);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_NEAR(segments[0].begin, 2.0, 1e-9);
  EXPECT_NEAR(segments[0].end, 9.0, 1e-9);
}

TEST(EvaluationTest, AccumulateSmooths) {
  std::vector<double> series = {0, 1, 0, 1, 0, 1};
  auto smoothed = AccumulateOverTime(series, 2);
  EXPECT_NEAR(smoothed[1], 0.5, 1e-9);
  EXPECT_NEAR(smoothed[5], 0.5, 1e-9);
}

TEST(EvaluationTest, ScoreSegmentsCounts) {
  std::vector<Segment> truth = {{10, 20}, {50, 60}};
  std::vector<Segment> detected = {{11, 19}, {30, 35}};
  auto pr = ScoreSegments(detected, truth);
  EXPECT_EQ(pr.true_positives, 1);
  EXPECT_EQ(pr.covered_truth, 1);
  EXPECT_NEAR(pr.precision, 0.5, 1e-9);
  EXPECT_NEAR(pr.recall, 0.5, 1e-9);
}

TEST(EvaluationTest, DegenerateRaceLongDetectionIsNotATruePositive) {
  std::vector<Segment> truth = {{10, 20}, {50, 60}, {100, 110}};
  std::vector<Segment> blob = {{0, 600}};
  auto pr = ScoreSegments(blob, truth);
  EXPECT_EQ(pr.true_positives, 0);
  EXPECT_EQ(pr.covered_truth, 0);
}

TEST(EvaluationTest, AdaptiveThresholdTracksScale) {
  std::vector<double> low(100, 0.1);
  low[50] = 0.4;
  const double thr = AdaptiveThreshold(low);
  EXPECT_GE(thr, 0.1);
  EXPECT_LE(thr, 0.55);
}

TEST(EvaluationTest, ClassifySubEventsPicksMostProbable) {
  std::vector<double> start(100, 0.1), flyout(100, 0.8);
  std::map<std::string, const std::vector<double>*> nodes = {
      {"start", &start}, {"flyout", &flyout}};
  auto typed = ClassifySubEvents(Segment{2.0, 8.0}, nodes);
  ASSERT_EQ(typed.size(), 1u);
  EXPECT_EQ(typed[0].type, "flyout");
}

TEST(EvaluationTest, LongSegmentsReclassifiedInWindows) {
  // First half start-ish, second half flyout-ish over a 20 s segment.
  std::vector<double> start(300, 0.0), flyout(300, 0.0);
  for (int i = 0; i < 100; ++i) start[i] = 0.9;
  for (int i = 100; i < 300; ++i) flyout[i] = 0.9;
  std::map<std::string, const std::vector<double>*> nodes = {
      {"start", &start}, {"flyout", &flyout}};
  auto typed = ClassifySubEvents(Segment{0.0, 20.0}, nodes);
  ASSERT_GE(typed.size(), 2u);
  EXPECT_EQ(typed.front().type, "start");
  EXPECT_EQ(typed.back().type, "flyout");
}

TEST(NetworksTest, AudioSliceStructures) {
  auto a = BuildAudioSlice(AudioStructure::kFullyParameterized);
  EXPECT_GE(a.num_nodes(), 14);
  EXPECT_GE(a.FindNode(kExcitedAnnouncer), 0);
  EXPECT_EQ(a.enumerated_nodes().size(), 4u);  // EA + 3 intermediates

  auto b = BuildAudioSlice(AudioStructure::kDirectEvidence);
  const auto ea = b.FindNode(kExcitedAnnouncer);
  EXPECT_EQ(b.parents(ea).size(), 10u);

  auto c = BuildAudioSlice(AudioStructure::kInputOutput);
  EXPECT_GE(c.FindNode("in_energy"), 0);
}

TEST(NetworksTest, TemporalSchemesArcCounts) {
  auto slice = BuildAudioSlice(AudioStructure::kFullyParameterized);
  // 4 hidden nodes (EA + 3).
  auto fig8 = MakeTemporalArcs(slice, kExcitedAnnouncer,
                               TemporalScheme::kFig8);
  EXPECT_EQ(fig8.size(), 4u + 3u + 3u);  // self x4, query->h x3, h->query x3
  auto only_query = MakeTemporalArcs(slice, kExcitedAnnouncer,
                                     TemporalScheme::kQueryOnlyReceives);
  EXPECT_EQ(only_query.size(), 4u);  // q->q plus 3 h->q
  auto no_broadcast = MakeTemporalArcs(slice, kExcitedAnnouncer,
                                       TemporalScheme::kNoQueryBroadcast);
  EXPECT_EQ(no_broadcast.size(), 4u + 3u);
}

TEST(NetworksTest, AudioVisualSliceWithAndWithoutPassing) {
  auto with = BuildAudioVisualSlice(true);
  auto without = BuildAudioVisualSlice(false);
  EXPECT_GE(with.FindNode(kPassingNode), 0);
  EXPECT_LT(without.FindNode(kPassingNode), 0);
  EXPECT_LT(without.FindNode("color_diff"), 0);
  // Highlight parents the sub-events.
  const auto h = with.FindNode(kHighlight);
  EXPECT_EQ(with.children(h).size(), 5u);  // EA, Start, FlyOut, Passing, replay
}

TEST(NetworksTest, EvidenceMappingCoversFeatureNodes) {
  auto net = BuildAudioVisualSlice(true);
  ClipEvidence clip;
  clip.semaphore = 1.0;
  clip.motion = 0.9;
  auto evidence = MakeAudioVisualEvidence(net, clip);
  // Every evidence node receives a soft likelihood.
  int evidence_nodes = 0;
  for (bayes::NodeId n = 0; n < net.num_nodes(); ++n) {
    if (net.is_evidence(n)) ++evidence_nodes;
  }
  EXPECT_EQ(static_cast<int>(evidence.soft.size()), evidence_nodes);
  EXPECT_TRUE(evidence.hard.empty());
  auto supervised = MakeAudioVisualEvidence(net, clip, /*supervise=*/true);
  EXPECT_EQ(supervised.hard.size(), 5u);
}

TEST(FeaturesTest, AudioOnlyExtraction) {
  auto timeline = GenerateTimeline(RaceProfile::GermanGp(120.0));
  EvidenceOptions options;
  options.extract_video = false;
  auto evidence = ExtractEvidence(timeline, options);
  ASSERT_EQ(evidence.clips.size(), 1200u);
  // Features normalized to [0,1]; visual cues all zero.
  int speech_clips = 0;
  for (const auto& clip : evidence.clips) {
    EXPECT_GE(clip.pause_rate, 0.0);
    EXPECT_LE(clip.pause_rate, 1.0);
    EXPECT_LE(clip.pitch_avg, 1.0);
    EXPECT_EQ(clip.semaphore, 0.0);
    if (clip.is_speech) ++speech_clips;
  }
  EXPECT_GT(speech_clips, 300);
  // Ground truth present.
  int excited = 0;
  for (const auto& clip : evidence.clips) excited += clip.truth_excited;
  EXPECT_GT(excited, 30);
}

}  // namespace
}  // namespace cobra::f1
