#include <gtest/gtest.h>

#include "rules/engine.h"
#include "rules/interval.h"

namespace cobra::rules {
namespace {

TEST(IntervalTest, BasicOps) {
  TimeInterval a{1.0, 3.0};
  TimeInterval b{2.0, 5.0};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.Union(b).begin, 1.0);
  EXPECT_DOUBLE_EQ(a.Union(b).end, 5.0);
  EXPECT_DOUBLE_EQ(a.Intersection(b).begin, 2.0);
  EXPECT_DOUBLE_EQ(a.Intersection(b).end, 3.0);
  TimeInterval c{6.0, 7.0};
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.Intersection(c).Valid());
}

TEST(AllenTest, AllThirteenRelations) {
  const TimeInterval base{10.0, 20.0};
  EXPECT_EQ(ClassifyRelation({1, 5}, base), AllenRelation::kBefore);
  EXPECT_EQ(ClassifyRelation({25, 30}, base), AllenRelation::kAfter);
  EXPECT_EQ(ClassifyRelation({5, 10}, base), AllenRelation::kMeets);
  EXPECT_EQ(ClassifyRelation({20, 25}, base), AllenRelation::kMetBy);
  EXPECT_EQ(ClassifyRelation({5, 15}, base), AllenRelation::kOverlaps);
  EXPECT_EQ(ClassifyRelation({15, 25}, base), AllenRelation::kOverlappedBy);
  EXPECT_EQ(ClassifyRelation({10, 15}, base), AllenRelation::kStarts);
  EXPECT_EQ(ClassifyRelation({10, 25}, base), AllenRelation::kStartedBy);
  EXPECT_EQ(ClassifyRelation({12, 18}, base), AllenRelation::kDuring);
  EXPECT_EQ(ClassifyRelation({5, 25}, base), AllenRelation::kContains);
  EXPECT_EQ(ClassifyRelation({15, 20}, base), AllenRelation::kFinishes);
  EXPECT_EQ(ClassifyRelation({5, 20}, base), AllenRelation::kFinishedBy);
  EXPECT_EQ(ClassifyRelation({10, 20}, base), AllenRelation::kEquals);
}

TEST(AllenTest, EpsilonTolerance) {
  EXPECT_EQ(ClassifyRelation({1.0, 9.99}, {10.0, 20.0}, 0.05),
            AllenRelation::kMeets);
  EXPECT_EQ(ClassifyRelation({1.0, 9.99}, {10.0, 20.0}, 1e-6),
            AllenRelation::kBefore);
}

// Property: inverse(r(a,b)) == r(b,a) for random interval pairs.
class AllenInverseSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(AllenInverseSweep, InverseConsistent) {
  const auto [offset, length] = GetParam();
  const TimeInterval a{10.0, 20.0};
  const TimeInterval b{10.0 + offset, 10.0 + offset + length};
  const AllenRelation forward = ClassifyRelation(a, b);
  const AllenRelation backward = ClassifyRelation(b, a);
  EXPECT_EQ(InverseRelation(forward), backward);
  EXPECT_EQ(InverseRelation(InverseRelation(forward)), forward);
}

INSTANTIATE_TEST_SUITE_P(
    Offsets, AllenInverseSweep,
    ::testing::Values(std::pair{-15.0, 3.0}, std::pair{-5.0, 5.0},
                      std::pair{-5.0, 15.0}, std::pair{0.0, 5.0},
                      std::pair{0.0, 10.0}, std::pair{0.0, 15.0},
                      std::pair{2.0, 5.0}, std::pair{5.0, 5.0},
                      std::pair{2.0, 8.0}, std::pair{12.0, 5.0},
                      std::pair{-12.0, 30.0}));

TEST(PatternTest, MatchesTypeAndAttrs) {
  EventFact fact;
  fact.type = "flyout";
  fact.attrs["driver"] = "HAKKINEN";
  Pattern p1{"flyout", {}};
  Pattern p2{"flyout", {{"driver", "HAKKINEN"}}};
  Pattern p3{"flyout", {{"driver", "SCHUMACHER"}}};
  Pattern p4{"passing", {}};
  EXPECT_TRUE(p1.Matches(fact));
  EXPECT_TRUE(p2.Matches(fact));
  EXPECT_FALSE(p3.Matches(fact));
  EXPECT_FALSE(p4.Matches(fact));
}

TEST(RuleEngineTest, UnaryRuleReclassifies) {
  RuleEngine engine;
  Rule rule;
  rule.name = "promote";
  rule.first.type = "flyout";
  rule.derived_type = "incident";
  engine.AddRule(rule);

  std::vector<EventFact> facts = {{"flyout", {10, 16}, {}, 1.0}};
  auto derived = engine.Infer(facts);
  ASSERT_EQ(derived.size(), 2u);
  EXPECT_EQ(derived[1].type, "incident");
  EXPECT_DOUBLE_EQ(derived[1].span.begin, 10.0);
}

TEST(RuleEngineTest, BinaryRuleWithAllenConstraint) {
  RuleEngine engine;
  Rule rule;
  rule.name = "event-then-replay";
  rule.first.type = "flyout";
  rule.second.type = "replay";
  rule.binary = true;
  rule.allowed_relations = {AllenRelation::kBefore};
  rule.max_gap_sec = 10.0;
  rule.derived_type = "incident";
  rule.combine = IntervalCombine::kUnion;
  engine.AddRule(rule);

  std::vector<EventFact> facts = {
      {"flyout", {10, 16}, {{"driver", "ALESI"}}, 1.0},
      {"replay", {20, 28}, {}, 1.0},
      {"replay", {200, 208}, {}, 1.0},  // too far: gap constraint
  };
  auto derived = engine.Infer(facts);
  ASSERT_EQ(derived.size(), 4u);
  EXPECT_EQ(derived[3].type, "incident");
  EXPECT_DOUBLE_EQ(derived[3].span.begin, 10.0);
  EXPECT_DOUBLE_EQ(derived[3].span.end, 28.0);
}

TEST(RuleEngineTest, AttributeCopyDirectives) {
  RuleEngine engine;
  Rule rule;
  rule.name = "flyout-of";
  rule.first.type = "flyout";
  rule.second.type = "retired";
  rule.binary = true;
  rule.derived_type = "flyout_of";
  rule.combine = IntervalCombine::kFirst;
  rule.derived_attrs = {{"driver", "$2.driver"}, {"source", "rules"}};
  engine.AddRule(rule);

  std::vector<EventFact> facts = {
      {"flyout", {10, 16}, {}, 1.0},
      {"retired", {15, 18}, {{"driver", "BUTTON"}}, 1.0},
  };
  auto derived = engine.Infer(facts);
  ASSERT_EQ(derived.size(), 3u);
  EXPECT_EQ(derived[2].attrs.at("driver"), "BUTTON");
  EXPECT_EQ(derived[2].attrs.at("source"), "rules");
  EXPECT_DOUBLE_EQ(derived[2].span.end, 16.0);
}

TEST(RuleEngineTest, FixpointChainsRules) {
  RuleEngine engine;
  Rule first;
  first.first.type = "a";
  first.derived_type = "b";
  engine.AddRule(first);
  Rule second;
  second.first.type = "b";
  second.derived_type = "c";
  engine.AddRule(second);

  auto derived = engine.Infer({{"a", {0, 1}, {}, 1.0}});
  ASSERT_EQ(derived.size(), 3u);
  EXPECT_EQ(derived[2].type, "c");
}

TEST(RuleEngineTest, DuplicatesSuppressed) {
  RuleEngine engine;
  Rule rule;
  rule.first.type = "a";
  rule.derived_type = "b";
  engine.AddRule(rule);
  auto derived = engine.Infer({{"a", {0, 1}, {}, 1.0}});
  // A second pass must not add another copy of b.
  EXPECT_EQ(derived.size(), 2u);
}

TEST(RuleEngineTest, ConfidencePropagatesAsMin) {
  RuleEngine engine;
  Rule rule;
  rule.first.type = "a";
  rule.second.type = "b";
  rule.binary = true;
  rule.derived_type = "c";
  engine.AddRule(rule);
  auto derived = engine.Infer({
      {"a", {0, 1}, {}, 0.9},
      {"b", {0.5, 2}, {}, 0.6},
  });
  ASSERT_EQ(derived.size(), 3u);
  EXPECT_DOUBLE_EQ(derived[2].confidence, 0.6);
}

}  // namespace
}  // namespace cobra::rules
