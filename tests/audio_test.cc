#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "audio/clip_features.h"
#include "audio/endpoint.h"
#include "audio/mfcc.h"
#include "audio/pitch.h"
#include "audio/short_time_energy.h"
#include "base/rng.h"

namespace cobra::audio {
namespace {

std::vector<double> Harmonics(double f0, double rate, size_t n, double amp,
                              int count = 10) {
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / rate;
    for (int k = 1; k <= count; ++k) {
      out[i] += amp / k * std::sin(2.0 * M_PI * f0 * k * t);
    }
  }
  return out;
}

std::vector<double> Noise(size_t n, double amp, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = amp * (rng.Uniform() * 2.0 - 1.0);
  return out;
}

TEST(SteTest, SilenceIsZero) {
  std::vector<double> silence(220, 0.0);
  EXPECT_DOUBLE_EQ(ShortTimeEnergy(silence), 0.0);
}

TEST(SteTest, ScalesWithAmplitudeSquared) {
  auto quiet = Harmonics(200, 22050, 220, 0.1);
  auto loud = Harmonics(200, 22050, 220, 0.4);
  const double ratio = ShortTimeEnergy(loud) / ShortTimeEnergy(quiet);
  EXPECT_NEAR(ratio, 16.0, 1.0);
}

TEST(SteTest, SeriesCoversFrames) {
  auto sig = Harmonics(200, 22050, 2205, 0.2);
  auto series = ShortTimeEnergySeries(sig, 220);
  EXPECT_EQ(series.size(), 10u);
  for (double v : series) EXPECT_GT(v, 0.0);
}

TEST(PitchTest, RecoversFundamental) {
  PitchTracker tracker;
  for (double f0 : {110.0, 160.0, 230.0, 300.0}) {
    auto window = Harmonics(f0, 22050, 441, 0.3);
    const double estimate = tracker.EstimateWindow(window);
    EXPECT_NEAR(estimate, f0, f0 * 0.08) << "f0=" << f0;
  }
}

TEST(PitchTest, NoiseIsUnvoiced) {
  PitchTracker tracker;
  auto noise = Noise(441, 0.3, 17);
  EXPECT_EQ(tracker.EstimateWindow(noise), 0.0);
}

TEST(PitchTest, SilenceIsUnvoiced) {
  PitchTracker tracker;
  std::vector<double> silence(441, 0.0);
  EXPECT_EQ(tracker.EstimateWindow(silence), 0.0);
}

TEST(MfccTest, OutputArity) {
  MfccExtractor mfcc;
  auto coeffs = mfcc.Compute(Harmonics(150, 22050, 220, 0.3));
  EXPECT_EQ(coeffs.size(), 12u);
}

TEST(MfccTest, DistinguishesSpectralShapes) {
  MfccExtractor mfcc;
  auto voiced = mfcc.Compute(Harmonics(150, 22050, 220, 0.3));
  auto noise = mfcc.Compute(Noise(220, 0.3, 3));
  // The shape coefficients should differ substantially.
  double diff = 0.0;
  for (size_t c = 1; c < 4; ++c) diff += std::abs(voiced[c] - noise[c]);
  EXPECT_GT(diff, 1.0);
}

TEST(EndpointTest, SpeechPassesNoiseFails) {
  // Per-frame STE for speech-like levels vs background noise levels.
  std::vector<double> speech_ste(10, 0.02);
  std::vector<double> noise_ste(10, 3e-4);
  MfccExtractor mfcc;
  std::vector<std::vector<double>> speech_mfcc, noise_mfcc;
  Rng rng(5);
  for (int f = 0; f < 10; ++f) {
    speech_mfcc.push_back(
        mfcc.Compute(Harmonics(140 + 20 * (f % 3), 22050, 220, 0.3)));
    noise_mfcc.push_back(mfcc.Compute(Noise(220, 0.05, 100 + f)));
  }
  EndpointOptions options;
  auto speech = DetectSpeechEndpoint(speech_ste, speech_mfcc, options);
  auto noise = DetectSpeechEndpoint(noise_ste, noise_mfcc, options);
  EXPECT_TRUE(speech.is_speech);
  EXPECT_FALSE(noise.is_speech);
  EXPECT_GT(speech.ste_metric, noise.ste_metric);
}

TEST(EndpointTest, EmptyInputIsNotSpeech) {
  auto result = DetectSpeechEndpoint({}, {}, EndpointOptions());
  EXPECT_FALSE(result.is_speech);
}

class ClipAnalyzerTest : public ::testing::Test {
 protected:
  ClipAnalyzer analyzer_;
};

TEST_F(ClipAnalyzerTest, SpeechClipDetected) {
  // 0.1 s of voiced speech plus a little noise.
  auto clip = Harmonics(150, 22050, 2205, 0.25);
  auto noise = Noise(2205, 0.03, 9);
  for (size_t i = 0; i < clip.size(); ++i) clip[i] += noise[i];
  auto features = analyzer_.Analyze(clip);
  EXPECT_TRUE(features.is_speech);
  EXPECT_LT(features.pause_rate, 0.3);
  EXPECT_GT(features.pitch_avg, 100.0);
}

TEST_F(ClipAnalyzerTest, NoiseClipRejected) {
  auto clip = Noise(2205, 0.05, 11);
  auto features = analyzer_.Analyze(clip);
  EXPECT_FALSE(features.is_speech);
}

TEST_F(ClipAnalyzerTest, ExcitedHasHigherMidbandSteAndPitch) {
  auto normal = Harmonics(115, 22050, 2205, 0.22, 16);
  auto excited = Harmonics(230, 22050, 2205, 0.45, 16);
  auto f_normal = analyzer_.Analyze(normal);
  auto f_excited = analyzer_.Analyze(excited);
  EXPECT_GT(f_excited.ste_avg, f_normal.ste_avg * 2.0);
  EXPECT_GT(f_excited.pitch_avg, f_normal.pitch_avg * 1.5);
}

TEST_F(ClipAnalyzerTest, AnalyzeSignalSplitsClips) {
  auto sig = Harmonics(150, 22050, 22050, 0.2);  // 1 s
  auto clips = analyzer_.AnalyzeSignal(sig);
  EXPECT_EQ(clips.size(), 10u);
}

TEST_F(ClipAnalyzerTest, TooShortClipIsEmptyFeatures) {
  std::vector<double> tiny(10, 0.1);
  auto features = analyzer_.Analyze(tiny);
  EXPECT_FALSE(features.is_speech);
  EXPECT_EQ(features.ste_avg, 0.0);
}

// Property sweep: pitch tracking across the announcer range.
class PitchSweep : public ::testing::TestWithParam<double> {};

TEST_P(PitchSweep, TracksWithinTolerance) {
  PitchTracker tracker;
  const double f0 = GetParam();
  auto window = Harmonics(f0, 22050, 441, 0.3);
  EXPECT_NEAR(tracker.EstimateWindow(window), f0, f0 * 0.1);
}

INSTANTIATE_TEST_SUITE_P(AnnouncerRange, PitchSweep,
                         ::testing::Values(90.0, 120.0, 150.0, 180.0, 210.0,
                                           240.0, 280.0, 320.0));

}  // namespace
}  // namespace cobra::audio
