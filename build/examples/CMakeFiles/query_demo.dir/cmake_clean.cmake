file(REMOVE_RECURSE
  "CMakeFiles/query_demo.dir/query_demo.cpp.o"
  "CMakeFiles/query_demo.dir/query_demo.cpp.o.d"
  "query_demo"
  "query_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
