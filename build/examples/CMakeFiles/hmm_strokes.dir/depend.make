# Empty dependencies file for hmm_strokes.
# This may be replaced when dependencies are built.
