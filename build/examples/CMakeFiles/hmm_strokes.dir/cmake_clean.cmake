file(REMOVE_RECURSE
  "CMakeFiles/hmm_strokes.dir/hmm_strokes.cpp.o"
  "CMakeFiles/hmm_strokes.dir/hmm_strokes.cpp.o.d"
  "hmm_strokes"
  "hmm_strokes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_strokes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
