file(REMOVE_RECURSE
  "CMakeFiles/custom_event.dir/custom_event.cpp.o"
  "CMakeFiles/custom_event.dir/custom_event.cpp.o.d"
  "custom_event"
  "custom_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
