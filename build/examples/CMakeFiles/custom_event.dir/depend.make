# Empty dependencies file for custom_event.
# This may be replaced when dependencies are built.
