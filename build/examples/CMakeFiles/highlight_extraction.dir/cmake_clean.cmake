file(REMOVE_RECURSE
  "CMakeFiles/highlight_extraction.dir/highlight_extraction.cpp.o"
  "CMakeFiles/highlight_extraction.dir/highlight_extraction.cpp.o.d"
  "highlight_extraction"
  "highlight_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highlight_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
