# Empty compiler generated dependencies file for highlight_extraction.
# This may be replaced when dependencies are built.
