# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/dsp_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/audio_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/kws_test[1]_include.cmake")
include("/root/repo/build/tests/moa_test[1]_include.cmake")
include("/root/repo/build/tests/hmm_test[1]_include.cmake")
include("/root/repo/build/tests/bayes_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/cobra_model_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/f1_test[1]_include.cmake")
include("/root/repo/build/tests/mil_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
