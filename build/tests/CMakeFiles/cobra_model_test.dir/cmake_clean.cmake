file(REMOVE_RECURSE
  "CMakeFiles/cobra_model_test.dir/cobra_model_test.cc.o"
  "CMakeFiles/cobra_model_test.dir/cobra_model_test.cc.o.d"
  "cobra_model_test"
  "cobra_model_test.pdb"
  "cobra_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
