# Empty dependencies file for cobra_model_test.
# This may be replaced when dependencies are built.
