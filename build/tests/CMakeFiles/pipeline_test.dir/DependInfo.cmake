
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/pipeline_test.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pipeline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/f1/CMakeFiles/cobra_f1.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/cobra_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/cobra_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/bayes/CMakeFiles/cobra_bayes.dir/DependInfo.cmake"
  "/root/repo/build/src/kws/CMakeFiles/cobra_kws.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cobra_query.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/cobra_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/cobra/CMakeFiles/cobra_model.dir/DependInfo.cmake"
  "/root/repo/build/src/moa/CMakeFiles/cobra_moa.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/cobra_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/cobra_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cobra_text.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/cobra_video.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/cobra_image.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cobra_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
