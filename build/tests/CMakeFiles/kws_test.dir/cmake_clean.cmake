file(REMOVE_RECURSE
  "CMakeFiles/kws_test.dir/kws_test.cc.o"
  "CMakeFiles/kws_test.dir/kws_test.cc.o.d"
  "kws_test"
  "kws_test.pdb"
  "kws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
