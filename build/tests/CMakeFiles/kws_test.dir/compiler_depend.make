# Empty compiler generated dependencies file for kws_test.
# This may be replaced when dependencies are built.
