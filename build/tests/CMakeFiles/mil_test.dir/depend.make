# Empty dependencies file for mil_test.
# This may be replaced when dependencies are built.
