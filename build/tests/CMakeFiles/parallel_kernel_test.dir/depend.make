# Empty dependencies file for parallel_kernel_test.
# This may be replaced when dependencies are built.
