file(REMOVE_RECURSE
  "CMakeFiles/parallel_kernel_test.dir/parallel_kernel_test.cc.o"
  "CMakeFiles/parallel_kernel_test.dir/parallel_kernel_test.cc.o.d"
  "parallel_kernel_test"
  "parallel_kernel_test.pdb"
  "parallel_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
