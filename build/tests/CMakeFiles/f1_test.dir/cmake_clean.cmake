file(REMOVE_RECURSE
  "CMakeFiles/f1_test.dir/f1_test.cc.o"
  "CMakeFiles/f1_test.dir/f1_test.cc.o.d"
  "f1_test"
  "f1_test.pdb"
  "f1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
