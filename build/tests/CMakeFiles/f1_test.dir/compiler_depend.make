# Empty compiler generated dependencies file for f1_test.
# This may be replaced when dependencies are built.
