file(REMOVE_RECURSE
  "CMakeFiles/moa_test.dir/moa_test.cc.o"
  "CMakeFiles/moa_test.dir/moa_test.cc.o.d"
  "moa_test"
  "moa_test.pdb"
  "moa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
