# Empty compiler generated dependencies file for moa_test.
# This may be replaced when dependencies are built.
