file(REMOVE_RECURSE
  "CMakeFiles/cobra_base.dir/logging.cc.o"
  "CMakeFiles/cobra_base.dir/logging.cc.o.d"
  "CMakeFiles/cobra_base.dir/mathutil.cc.o"
  "CMakeFiles/cobra_base.dir/mathutil.cc.o.d"
  "CMakeFiles/cobra_base.dir/rng.cc.o"
  "CMakeFiles/cobra_base.dir/rng.cc.o.d"
  "CMakeFiles/cobra_base.dir/status.cc.o"
  "CMakeFiles/cobra_base.dir/status.cc.o.d"
  "CMakeFiles/cobra_base.dir/strings.cc.o"
  "CMakeFiles/cobra_base.dir/strings.cc.o.d"
  "CMakeFiles/cobra_base.dir/thread_pool.cc.o"
  "CMakeFiles/cobra_base.dir/thread_pool.cc.o.d"
  "libcobra_base.a"
  "libcobra_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
