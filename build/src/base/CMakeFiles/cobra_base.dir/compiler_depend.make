# Empty compiler generated dependencies file for cobra_base.
# This may be replaced when dependencies are built.
