file(REMOVE_RECURSE
  "libcobra_base.a"
)
