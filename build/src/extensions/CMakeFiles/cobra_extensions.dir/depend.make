# Empty dependencies file for cobra_extensions.
# This may be replaced when dependencies are built.
