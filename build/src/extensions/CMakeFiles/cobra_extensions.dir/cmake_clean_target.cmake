file(REMOVE_RECURSE
  "libcobra_extensions.a"
)
