file(REMOVE_RECURSE
  "CMakeFiles/cobra_extensions.dir/extension.cc.o"
  "CMakeFiles/cobra_extensions.dir/extension.cc.o.d"
  "libcobra_extensions.a"
  "libcobra_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
