# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("dsp")
subdirs("image")
subdirs("kernel")
subdirs("audio")
subdirs("video")
subdirs("text")
subdirs("kws")
subdirs("moa")
subdirs("hmm")
subdirs("bayes")
subdirs("rules")
subdirs("cobra")
subdirs("query")
subdirs("extensions")
subdirs("f1")
