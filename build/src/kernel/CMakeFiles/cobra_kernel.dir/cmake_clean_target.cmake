file(REMOVE_RECURSE
  "libcobra_kernel.a"
)
