file(REMOVE_RECURSE
  "CMakeFiles/cobra_kernel.dir/bat.cc.o"
  "CMakeFiles/cobra_kernel.dir/bat.cc.o.d"
  "CMakeFiles/cobra_kernel.dir/catalog.cc.o"
  "CMakeFiles/cobra_kernel.dir/catalog.cc.o.d"
  "CMakeFiles/cobra_kernel.dir/exec_context.cc.o"
  "CMakeFiles/cobra_kernel.dir/exec_context.cc.o.d"
  "CMakeFiles/cobra_kernel.dir/mil.cc.o"
  "CMakeFiles/cobra_kernel.dir/mil.cc.o.d"
  "CMakeFiles/cobra_kernel.dir/parallel.cc.o"
  "CMakeFiles/cobra_kernel.dir/parallel.cc.o.d"
  "libcobra_kernel.a"
  "libcobra_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
