
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/bat.cc" "src/kernel/CMakeFiles/cobra_kernel.dir/bat.cc.o" "gcc" "src/kernel/CMakeFiles/cobra_kernel.dir/bat.cc.o.d"
  "/root/repo/src/kernel/catalog.cc" "src/kernel/CMakeFiles/cobra_kernel.dir/catalog.cc.o" "gcc" "src/kernel/CMakeFiles/cobra_kernel.dir/catalog.cc.o.d"
  "/root/repo/src/kernel/exec_context.cc" "src/kernel/CMakeFiles/cobra_kernel.dir/exec_context.cc.o" "gcc" "src/kernel/CMakeFiles/cobra_kernel.dir/exec_context.cc.o.d"
  "/root/repo/src/kernel/mil.cc" "src/kernel/CMakeFiles/cobra_kernel.dir/mil.cc.o" "gcc" "src/kernel/CMakeFiles/cobra_kernel.dir/mil.cc.o.d"
  "/root/repo/src/kernel/parallel.cc" "src/kernel/CMakeFiles/cobra_kernel.dir/parallel.cc.o" "gcc" "src/kernel/CMakeFiles/cobra_kernel.dir/parallel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cobra_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
