# Empty compiler generated dependencies file for cobra_kernel.
# This may be replaced when dependencies are built.
