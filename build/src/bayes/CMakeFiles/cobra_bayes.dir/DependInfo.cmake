
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bayes/cpt.cc" "src/bayes/CMakeFiles/cobra_bayes.dir/cpt.cc.o" "gcc" "src/bayes/CMakeFiles/cobra_bayes.dir/cpt.cc.o.d"
  "/root/repo/src/bayes/dbn.cc" "src/bayes/CMakeFiles/cobra_bayes.dir/dbn.cc.o" "gcc" "src/bayes/CMakeFiles/cobra_bayes.dir/dbn.cc.o.d"
  "/root/repo/src/bayes/network.cc" "src/bayes/CMakeFiles/cobra_bayes.dir/network.cc.o" "gcc" "src/bayes/CMakeFiles/cobra_bayes.dir/network.cc.o.d"
  "/root/repo/src/bayes/serialize.cc" "src/bayes/CMakeFiles/cobra_bayes.dir/serialize.cc.o" "gcc" "src/bayes/CMakeFiles/cobra_bayes.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cobra_base.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/cobra_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
