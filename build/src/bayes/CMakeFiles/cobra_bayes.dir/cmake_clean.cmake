file(REMOVE_RECURSE
  "CMakeFiles/cobra_bayes.dir/cpt.cc.o"
  "CMakeFiles/cobra_bayes.dir/cpt.cc.o.d"
  "CMakeFiles/cobra_bayes.dir/dbn.cc.o"
  "CMakeFiles/cobra_bayes.dir/dbn.cc.o.d"
  "CMakeFiles/cobra_bayes.dir/network.cc.o"
  "CMakeFiles/cobra_bayes.dir/network.cc.o.d"
  "CMakeFiles/cobra_bayes.dir/serialize.cc.o"
  "CMakeFiles/cobra_bayes.dir/serialize.cc.o.d"
  "libcobra_bayes.a"
  "libcobra_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
