# Empty compiler generated dependencies file for cobra_bayes.
# This may be replaced when dependencies are built.
