file(REMOVE_RECURSE
  "libcobra_bayes.a"
)
