
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cc" "src/dsp/CMakeFiles/cobra_dsp.dir/fft.cc.o" "gcc" "src/dsp/CMakeFiles/cobra_dsp.dir/fft.cc.o.d"
  "/root/repo/src/dsp/filter.cc" "src/dsp/CMakeFiles/cobra_dsp.dir/filter.cc.o" "gcc" "src/dsp/CMakeFiles/cobra_dsp.dir/filter.cc.o.d"
  "/root/repo/src/dsp/spectral.cc" "src/dsp/CMakeFiles/cobra_dsp.dir/spectral.cc.o" "gcc" "src/dsp/CMakeFiles/cobra_dsp.dir/spectral.cc.o.d"
  "/root/repo/src/dsp/window.cc" "src/dsp/CMakeFiles/cobra_dsp.dir/window.cc.o" "gcc" "src/dsp/CMakeFiles/cobra_dsp.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cobra_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
