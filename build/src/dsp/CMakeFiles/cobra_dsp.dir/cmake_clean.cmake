file(REMOVE_RECURSE
  "CMakeFiles/cobra_dsp.dir/fft.cc.o"
  "CMakeFiles/cobra_dsp.dir/fft.cc.o.d"
  "CMakeFiles/cobra_dsp.dir/filter.cc.o"
  "CMakeFiles/cobra_dsp.dir/filter.cc.o.d"
  "CMakeFiles/cobra_dsp.dir/spectral.cc.o"
  "CMakeFiles/cobra_dsp.dir/spectral.cc.o.d"
  "CMakeFiles/cobra_dsp.dir/window.cc.o"
  "CMakeFiles/cobra_dsp.dir/window.cc.o.d"
  "libcobra_dsp.a"
  "libcobra_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
