# Empty compiler generated dependencies file for cobra_dsp.
# This may be replaced when dependencies are built.
