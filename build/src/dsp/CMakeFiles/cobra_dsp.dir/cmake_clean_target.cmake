file(REMOVE_RECURSE
  "libcobra_dsp.a"
)
