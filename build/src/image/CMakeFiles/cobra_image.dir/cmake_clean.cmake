file(REMOVE_RECURSE
  "CMakeFiles/cobra_image.dir/analysis.cc.o"
  "CMakeFiles/cobra_image.dir/analysis.cc.o.d"
  "CMakeFiles/cobra_image.dir/draw.cc.o"
  "CMakeFiles/cobra_image.dir/draw.cc.o.d"
  "CMakeFiles/cobra_image.dir/font.cc.o"
  "CMakeFiles/cobra_image.dir/font.cc.o.d"
  "CMakeFiles/cobra_image.dir/frame.cc.o"
  "CMakeFiles/cobra_image.dir/frame.cc.o.d"
  "CMakeFiles/cobra_image.dir/histogram.cc.o"
  "CMakeFiles/cobra_image.dir/histogram.cc.o.d"
  "libcobra_image.a"
  "libcobra_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
