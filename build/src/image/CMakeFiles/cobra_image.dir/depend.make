# Empty dependencies file for cobra_image.
# This may be replaced when dependencies are built.
