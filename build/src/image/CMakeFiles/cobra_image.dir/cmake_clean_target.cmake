file(REMOVE_RECURSE
  "libcobra_image.a"
)
