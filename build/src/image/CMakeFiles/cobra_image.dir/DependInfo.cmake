
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/analysis.cc" "src/image/CMakeFiles/cobra_image.dir/analysis.cc.o" "gcc" "src/image/CMakeFiles/cobra_image.dir/analysis.cc.o.d"
  "/root/repo/src/image/draw.cc" "src/image/CMakeFiles/cobra_image.dir/draw.cc.o" "gcc" "src/image/CMakeFiles/cobra_image.dir/draw.cc.o.d"
  "/root/repo/src/image/font.cc" "src/image/CMakeFiles/cobra_image.dir/font.cc.o" "gcc" "src/image/CMakeFiles/cobra_image.dir/font.cc.o.d"
  "/root/repo/src/image/frame.cc" "src/image/CMakeFiles/cobra_image.dir/frame.cc.o" "gcc" "src/image/CMakeFiles/cobra_image.dir/frame.cc.o.d"
  "/root/repo/src/image/histogram.cc" "src/image/CMakeFiles/cobra_image.dir/histogram.cc.o" "gcc" "src/image/CMakeFiles/cobra_image.dir/histogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cobra_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
