file(REMOVE_RECURSE
  "CMakeFiles/cobra_hmm.dir/hmm.cc.o"
  "CMakeFiles/cobra_hmm.dir/hmm.cc.o.d"
  "CMakeFiles/cobra_hmm.dir/parallel_eval.cc.o"
  "CMakeFiles/cobra_hmm.dir/parallel_eval.cc.o.d"
  "libcobra_hmm.a"
  "libcobra_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
