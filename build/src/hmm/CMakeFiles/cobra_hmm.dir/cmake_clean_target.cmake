file(REMOVE_RECURSE
  "libcobra_hmm.a"
)
