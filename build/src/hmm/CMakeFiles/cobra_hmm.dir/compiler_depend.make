# Empty compiler generated dependencies file for cobra_hmm.
# This may be replaced when dependencies are built.
