
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmm/hmm.cc" "src/hmm/CMakeFiles/cobra_hmm.dir/hmm.cc.o" "gcc" "src/hmm/CMakeFiles/cobra_hmm.dir/hmm.cc.o.d"
  "/root/repo/src/hmm/parallel_eval.cc" "src/hmm/CMakeFiles/cobra_hmm.dir/parallel_eval.cc.o" "gcc" "src/hmm/CMakeFiles/cobra_hmm.dir/parallel_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cobra_base.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/cobra_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
