# Empty dependencies file for cobra_query.
# This may be replaced when dependencies are built.
