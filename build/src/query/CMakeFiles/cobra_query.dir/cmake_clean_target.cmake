file(REMOVE_RECURSE
  "libcobra_query.a"
)
