file(REMOVE_RECURSE
  "CMakeFiles/cobra_query.dir/engine.cc.o"
  "CMakeFiles/cobra_query.dir/engine.cc.o.d"
  "CMakeFiles/cobra_query.dir/parser.cc.o"
  "CMakeFiles/cobra_query.dir/parser.cc.o.d"
  "libcobra_query.a"
  "libcobra_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
