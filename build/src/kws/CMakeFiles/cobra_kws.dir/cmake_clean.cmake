file(REMOVE_RECURSE
  "CMakeFiles/cobra_kws.dir/keyword_spotter.cc.o"
  "CMakeFiles/cobra_kws.dir/keyword_spotter.cc.o.d"
  "libcobra_kws.a"
  "libcobra_kws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_kws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
