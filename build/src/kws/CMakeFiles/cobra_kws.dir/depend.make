# Empty dependencies file for cobra_kws.
# This may be replaced when dependencies are built.
