file(REMOVE_RECURSE
  "libcobra_kws.a"
)
