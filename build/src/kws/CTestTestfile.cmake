# CMake generated Testfile for 
# Source directory: /root/repo/src/kws
# Build directory: /root/repo/build/src/kws
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
