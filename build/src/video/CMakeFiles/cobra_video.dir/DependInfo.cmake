
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/replay.cc" "src/video/CMakeFiles/cobra_video.dir/replay.cc.o" "gcc" "src/video/CMakeFiles/cobra_video.dir/replay.cc.o.d"
  "/root/repo/src/video/shot_detection.cc" "src/video/CMakeFiles/cobra_video.dir/shot_detection.cc.o" "gcc" "src/video/CMakeFiles/cobra_video.dir/shot_detection.cc.o.d"
  "/root/repo/src/video/visual_cues.cc" "src/video/CMakeFiles/cobra_video.dir/visual_cues.cc.o" "gcc" "src/video/CMakeFiles/cobra_video.dir/visual_cues.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cobra_base.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/cobra_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
