file(REMOVE_RECURSE
  "CMakeFiles/cobra_video.dir/replay.cc.o"
  "CMakeFiles/cobra_video.dir/replay.cc.o.d"
  "CMakeFiles/cobra_video.dir/shot_detection.cc.o"
  "CMakeFiles/cobra_video.dir/shot_detection.cc.o.d"
  "CMakeFiles/cobra_video.dir/visual_cues.cc.o"
  "CMakeFiles/cobra_video.dir/visual_cues.cc.o.d"
  "libcobra_video.a"
  "libcobra_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
