file(REMOVE_RECURSE
  "libcobra_video.a"
)
