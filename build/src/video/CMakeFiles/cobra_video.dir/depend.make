# Empty dependencies file for cobra_video.
# This may be replaced when dependencies are built.
