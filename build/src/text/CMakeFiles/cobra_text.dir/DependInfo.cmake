
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/text_detect.cc" "src/text/CMakeFiles/cobra_text.dir/text_detect.cc.o" "gcc" "src/text/CMakeFiles/cobra_text.dir/text_detect.cc.o.d"
  "/root/repo/src/text/text_recognize.cc" "src/text/CMakeFiles/cobra_text.dir/text_recognize.cc.o" "gcc" "src/text/CMakeFiles/cobra_text.dir/text_recognize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cobra_base.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/cobra_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
