file(REMOVE_RECURSE
  "CMakeFiles/cobra_text.dir/text_detect.cc.o"
  "CMakeFiles/cobra_text.dir/text_detect.cc.o.d"
  "CMakeFiles/cobra_text.dir/text_recognize.cc.o"
  "CMakeFiles/cobra_text.dir/text_recognize.cc.o.d"
  "libcobra_text.a"
  "libcobra_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
