file(REMOVE_RECURSE
  "libcobra_model.a"
)
