file(REMOVE_RECURSE
  "CMakeFiles/cobra_model.dir/video_model.cc.o"
  "CMakeFiles/cobra_model.dir/video_model.cc.o.d"
  "libcobra_model.a"
  "libcobra_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
