# Empty dependencies file for cobra_model.
# This may be replaced when dependencies are built.
