file(REMOVE_RECURSE
  "libcobra_moa.a"
)
