# Empty dependencies file for cobra_moa.
# This may be replaced when dependencies are built.
