file(REMOVE_RECURSE
  "CMakeFiles/cobra_moa.dir/moa.cc.o"
  "CMakeFiles/cobra_moa.dir/moa.cc.o.d"
  "libcobra_moa.a"
  "libcobra_moa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_moa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
