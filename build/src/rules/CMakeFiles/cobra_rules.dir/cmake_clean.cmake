file(REMOVE_RECURSE
  "CMakeFiles/cobra_rules.dir/engine.cc.o"
  "CMakeFiles/cobra_rules.dir/engine.cc.o.d"
  "CMakeFiles/cobra_rules.dir/interval.cc.o"
  "CMakeFiles/cobra_rules.dir/interval.cc.o.d"
  "libcobra_rules.a"
  "libcobra_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
