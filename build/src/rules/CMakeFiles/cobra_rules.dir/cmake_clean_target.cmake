file(REMOVE_RECURSE
  "libcobra_rules.a"
)
