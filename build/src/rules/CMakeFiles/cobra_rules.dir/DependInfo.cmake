
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/engine.cc" "src/rules/CMakeFiles/cobra_rules.dir/engine.cc.o" "gcc" "src/rules/CMakeFiles/cobra_rules.dir/engine.cc.o.d"
  "/root/repo/src/rules/interval.cc" "src/rules/CMakeFiles/cobra_rules.dir/interval.cc.o" "gcc" "src/rules/CMakeFiles/cobra_rules.dir/interval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cobra_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
