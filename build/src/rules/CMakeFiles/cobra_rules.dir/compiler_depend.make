# Empty compiler generated dependencies file for cobra_rules.
# This may be replaced when dependencies are built.
