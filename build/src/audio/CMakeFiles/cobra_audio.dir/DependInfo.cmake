
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/clip_features.cc" "src/audio/CMakeFiles/cobra_audio.dir/clip_features.cc.o" "gcc" "src/audio/CMakeFiles/cobra_audio.dir/clip_features.cc.o.d"
  "/root/repo/src/audio/endpoint.cc" "src/audio/CMakeFiles/cobra_audio.dir/endpoint.cc.o" "gcc" "src/audio/CMakeFiles/cobra_audio.dir/endpoint.cc.o.d"
  "/root/repo/src/audio/mfcc.cc" "src/audio/CMakeFiles/cobra_audio.dir/mfcc.cc.o" "gcc" "src/audio/CMakeFiles/cobra_audio.dir/mfcc.cc.o.d"
  "/root/repo/src/audio/pitch.cc" "src/audio/CMakeFiles/cobra_audio.dir/pitch.cc.o" "gcc" "src/audio/CMakeFiles/cobra_audio.dir/pitch.cc.o.d"
  "/root/repo/src/audio/short_time_energy.cc" "src/audio/CMakeFiles/cobra_audio.dir/short_time_energy.cc.o" "gcc" "src/audio/CMakeFiles/cobra_audio.dir/short_time_energy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cobra_base.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/cobra_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
