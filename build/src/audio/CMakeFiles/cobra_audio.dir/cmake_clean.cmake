file(REMOVE_RECURSE
  "CMakeFiles/cobra_audio.dir/clip_features.cc.o"
  "CMakeFiles/cobra_audio.dir/clip_features.cc.o.d"
  "CMakeFiles/cobra_audio.dir/endpoint.cc.o"
  "CMakeFiles/cobra_audio.dir/endpoint.cc.o.d"
  "CMakeFiles/cobra_audio.dir/mfcc.cc.o"
  "CMakeFiles/cobra_audio.dir/mfcc.cc.o.d"
  "CMakeFiles/cobra_audio.dir/pitch.cc.o"
  "CMakeFiles/cobra_audio.dir/pitch.cc.o.d"
  "CMakeFiles/cobra_audio.dir/short_time_energy.cc.o"
  "CMakeFiles/cobra_audio.dir/short_time_energy.cc.o.d"
  "libcobra_audio.a"
  "libcobra_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
