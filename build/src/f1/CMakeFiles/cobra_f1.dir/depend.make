# Empty dependencies file for cobra_f1.
# This may be replaced when dependencies are built.
