file(REMOVE_RECURSE
  "CMakeFiles/cobra_f1.dir/audio_synth.cc.o"
  "CMakeFiles/cobra_f1.dir/audio_synth.cc.o.d"
  "CMakeFiles/cobra_f1.dir/evaluation.cc.o"
  "CMakeFiles/cobra_f1.dir/evaluation.cc.o.d"
  "CMakeFiles/cobra_f1.dir/features.cc.o"
  "CMakeFiles/cobra_f1.dir/features.cc.o.d"
  "CMakeFiles/cobra_f1.dir/frame_render.cc.o"
  "CMakeFiles/cobra_f1.dir/frame_render.cc.o.d"
  "CMakeFiles/cobra_f1.dir/lexicon.cc.o"
  "CMakeFiles/cobra_f1.dir/lexicon.cc.o.d"
  "CMakeFiles/cobra_f1.dir/networks.cc.o"
  "CMakeFiles/cobra_f1.dir/networks.cc.o.d"
  "CMakeFiles/cobra_f1.dir/pipeline.cc.o"
  "CMakeFiles/cobra_f1.dir/pipeline.cc.o.d"
  "CMakeFiles/cobra_f1.dir/timeline.cc.o"
  "CMakeFiles/cobra_f1.dir/timeline.cc.o.d"
  "libcobra_f1.a"
  "libcobra_f1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_f1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
