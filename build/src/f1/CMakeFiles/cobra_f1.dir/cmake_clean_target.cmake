file(REMOVE_RECURSE
  "libcobra_f1.a"
)
