file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_hmm.dir/bench_parallel_hmm.cc.o"
  "CMakeFiles/bench_parallel_hmm.dir/bench_parallel_hmm.cc.o.d"
  "bench_parallel_hmm"
  "bench_parallel_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
