# Empty compiler generated dependencies file for bench_parallel_hmm.
# This may be replaced when dependencies are built.
