file(REMOVE_RECURSE
  "CMakeFiles/bench_text_recognition.dir/bench_text_recognition.cc.o"
  "CMakeFiles/bench_text_recognition.dir/bench_text_recognition.cc.o.d"
  "bench_text_recognition"
  "bench_text_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
