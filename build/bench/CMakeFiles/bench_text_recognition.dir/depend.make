# Empty dependencies file for bench_text_recognition.
# This may be replaced when dependencies are built.
