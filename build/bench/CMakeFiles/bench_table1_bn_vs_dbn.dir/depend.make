# Empty dependencies file for bench_table1_bn_vs_dbn.
# This may be replaced when dependencies are built.
