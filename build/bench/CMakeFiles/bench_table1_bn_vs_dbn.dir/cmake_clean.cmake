file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_bn_vs_dbn.dir/bench_table1_bn_vs_dbn.cc.o"
  "CMakeFiles/bench_table1_bn_vs_dbn.dir/bench_table1_bn_vs_dbn.cc.o.d"
  "bench_table1_bn_vs_dbn"
  "bench_table1_bn_vs_dbn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_bn_vs_dbn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
