file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_audiovisual.dir/bench_table3_audiovisual.cc.o"
  "CMakeFiles/bench_table3_audiovisual.dir/bench_table3_audiovisual.cc.o.d"
  "bench_table3_audiovisual"
  "bench_table3_audiovisual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_audiovisual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
