file(REMOVE_RECURSE
  "CMakeFiles/bench_speech_endpoint.dir/bench_speech_endpoint.cc.o"
  "CMakeFiles/bench_speech_endpoint.dir/bench_speech_endpoint.cc.o.d"
  "bench_speech_endpoint"
  "bench_speech_endpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speech_endpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
