# Empty dependencies file for bench_speech_endpoint.
# This may be replaced when dependencies are built.
