# Empty dependencies file for bench_parallel_kernel.
# This may be replaced when dependencies are built.
