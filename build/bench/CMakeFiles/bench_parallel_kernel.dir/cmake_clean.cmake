file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_kernel.dir/bench_parallel_kernel.cc.o"
  "CMakeFiles/bench_parallel_kernel.dir/bench_parallel_kernel.cc.o.d"
  "bench_parallel_kernel"
  "bench_parallel_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
