file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_smoothness.dir/bench_fig9_smoothness.cc.o"
  "CMakeFiles/bench_fig9_smoothness.dir/bench_fig9_smoothness.cc.o.d"
  "bench_fig9_smoothness"
  "bench_fig9_smoothness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_smoothness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
