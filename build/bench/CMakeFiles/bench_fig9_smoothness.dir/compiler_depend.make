# Empty compiler generated dependencies file for bench_fig9_smoothness.
# This may be replaced when dependencies are built.
