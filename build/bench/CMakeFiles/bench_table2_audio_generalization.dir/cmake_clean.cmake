file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_audio_generalization.dir/bench_table2_audio_generalization.cc.o"
  "CMakeFiles/bench_table2_audio_generalization.dir/bench_table2_audio_generalization.cc.o.d"
  "bench_table2_audio_generalization"
  "bench_table2_audio_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_audio_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
