# Empty dependencies file for bench_table2_audio_generalization.
# This may be replaced when dependencies are built.
