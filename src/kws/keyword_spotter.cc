#include "kws/keyword_spotter.h"

#include <algorithm>
#include <cctype>

namespace cobra::kws {

int PhoneOf(char c) {
  const char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  if (u >= 'A' && u <= 'Z') return u - 'A';
  return -1;
}

std::vector<int> PhoneSequence(const std::string& word) {
  std::vector<int> out;
  out.reserve(word.size());
  for (char c : word) {
    const int p = PhoneOf(c);
    if (p >= 0) out.push_back(p);
  }
  return out;
}

KeywordSpotter::KeywordSpotter(std::vector<std::string> keywords,
                               const Options& options)
    : options_(options), keywords_(std::move(keywords)) {
  sequences_.reserve(keywords_.size());
  for (const auto& w : keywords_) sequences_.push_back(PhoneSequence(w));
}

std::vector<KeywordHit> KeywordSpotter::Spot(
    const std::vector<PhoneToken>& stream) const {
  std::vector<KeywordHit> hits;
  for (size_t k = 0; k < keywords_.size(); ++k) {
    const auto& seq = sequences_[k];
    if (seq.empty()) continue;
    // Try to start the chain at every stream position; the chain consumes
    // exactly one token per phone (the synthesizer emits phones at the
    // token rate), crediting substitutions at a reduced rate.
    for (size_t start = 0; start + seq.size() <= stream.size(); ++start) {
      if (stream[start].phone < 0) continue;  // chains start on speech
      double score = 0.0;
      bool dead = false;
      size_t substitutions = 0;
      for (size_t i = 0; i < seq.size(); ++i) {
        const PhoneToken& tok = stream[start + i];
        if (tok.phone < 0) {
          dead = true;  // silence breaks the chain
          break;
        }
        if (tok.phone == seq[i]) {
          score += tok.confidence;
        } else {
          score += tok.confidence * options_.substitution_credit;
          ++substitutions;
        }
      }
      if (dead) continue;
      // A grammar path must be anchored: at least half the phones exact.
      if (substitutions * 2 > seq.size()) continue;
      const double normalized = score / static_cast<double>(seq.size());
      if (normalized < options_.min_normalized_score) continue;
      KeywordHit hit;
      hit.word = keywords_[k];
      hit.score = score;
      hit.normalized = std::min(1.0, normalized);
      hit.start_sec = stream[start].time_sec;
      hit.duration_sec =
          static_cast<double>(seq.size()) * options_.token_period_sec;
      hits.push_back(std::move(hit));
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const KeywordHit& a, const KeywordHit& b) {
              return a.start_sec < b.start_sec;
            });
  // Suppress overlapping duplicates of the same word (keep best score).
  std::vector<KeywordHit> out;
  for (auto& h : hits) {
    if (!out.empty() && out.back().word == h.word &&
        h.start_sec < out.back().start_sec + out.back().duration_sec) {
      if (h.normalized > out.back().normalized) out.back() = h;
      continue;
    }
    out.push_back(h);
  }
  return out;
}

}  // namespace cobra::kws
