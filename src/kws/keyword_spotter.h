#ifndef COBRA_KWS_KEYWORD_SPOTTER_H_
#define COBRA_KWS_KEYWORD_SPOTTER_H_

#include <string>
#include <vector>

#include "base/status.h"

namespace cobra::kws {

/// One decoded phone-like token. The original system used the TNO-Abbot
/// keyword spotter on the acoustic signal; this repo's substitution decodes
/// a symbolic phone stream emitted by the audio synthesizer (one token per
/// 0.1 s of speech, with substitution noise applied by the synthesizer to
/// model acoustic confusability), which exercises the same downstream path:
/// grammar matching, non-normalized scores, start times and durations.
struct PhoneToken {
  int phone = -1;          // -1 = silence / non-speech
  double confidence = 0.0; // decoder confidence in [0, 1]
  double time_sec = 0.0;   // token start time
};

/// A keyword detection.
struct KeywordHit {
  std::string word;
  double score = 0.0;       // non-normalized accumulated score
  double normalized = 0.0;  // score / length, in [0, 1]
  double start_sec = 0.0;
  double duration_sec = 0.0;
};

/// Maps a letter A–Z to its phone id; -1 for anything else.
int PhoneOf(char c);

/// Converts a word to its phone sequence (letters only).
std::vector<int> PhoneSequence(const std::string& word);

/// Finite-state-grammar keyword spotter: each keyword is a left-to-right
/// chain of phone states; the decoder advances chains over the token
/// stream, tolerating substitutions with a penalty, and emits a hit when a
/// chain completes with sufficient normalized score.
class KeywordSpotter {
 public:
  struct Options {
    /// Multiplier applied to a step's confidence on a phone substitution.
    double substitution_credit = 0.25;
    /// Minimum normalized score for a hit.
    double min_normalized_score = 0.55;
    /// Token period in seconds (one phone per 0.1 s clip).
    double token_period_sec = 0.1;
  };

  KeywordSpotter(std::vector<std::string> keywords, const Options& options);
  explicit KeywordSpotter(std::vector<std::string> keywords)
      : KeywordSpotter(std::move(keywords), Options()) {}

  /// Scans the stream and returns all hits sorted by start time.
  std::vector<KeywordHit> Spot(const std::vector<PhoneToken>& stream) const;

  const std::vector<std::string>& keywords() const { return keywords_; }

 private:
  Options options_;
  std::vector<std::string> keywords_;
  std::vector<std::vector<int>> sequences_;
};

}  // namespace cobra::kws

#endif  // COBRA_KWS_KEYWORD_SPOTTER_H_
