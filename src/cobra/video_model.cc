#include "cobra/video_model.h"

#include <algorithm>

#include "base/logging.h"
#include "base/strings.h"

namespace cobra::model {

VideoCatalog::VideoCatalog(kernel::Catalog* catalog)
    : catalog_(catalog), session_(catalog) {
  COBRA_CHECK(catalog != nullptr);
  moa::ClassDef video_class;
  video_class.name = "video";
  video_class.attributes = {
      {"name", kernel::TailType::kStr},
      {"duration", kernel::TailType::kFloat},
      {"fps", kernel::TailType::kFloat},
  };
  COBRA_CHECK(session_.DefineClass(video_class).ok());

  moa::ClassDef event_class;
  event_class.name = "event";
  event_class.attributes = {
      {"video", kernel::TailType::kOid},
      {"type", kernel::TailType::kStr},
      {"begin", kernel::TailType::kFloat},
      {"end", kernel::TailType::kFloat},
      {"confidence", kernel::TailType::kFloat},
      {"attrs", kernel::TailType::kStr},
  };
  COBRA_CHECK(session_.DefineClass(event_class).ok());

  moa::ClassDef object_class;
  object_class.name = "object";
  object_class.attributes = {
      {"video", kernel::TailType::kOid},
      {"class", kernel::TailType::kStr},
      {"name", kernel::TailType::kStr},
      {"attrs", kernel::TailType::kStr},
  };
  COBRA_CHECK(session_.DefineClass(object_class).ok());
}

Result<VideoId> VideoCatalog::RegisterVideo(const std::string& name,
                                            double duration_sec, double fps) {
  for (const auto& v : videos_) {
    if (v.name == name) return Status::AlreadyExists("video exists: " + name);
  }
  COBRA_ASSIGN_OR_RETURN(kernel::Oid oid, session_.NewObject("video"));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("video", oid, "name", kernel::Value::Str(name)));
  COBRA_RETURN_IF_ERROR(session_.SetAttr("video", oid, "duration",
                                         kernel::Value::Float(duration_sec)));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("video", oid, "fps", kernel::Value::Float(fps)));
  VideoDescriptor desc;
  desc.id = oid;
  desc.name = name;
  desc.duration_sec = duration_sec;
  desc.fps = fps;
  videos_.push_back(desc);
  return oid;
}

Result<VideoDescriptor> VideoCatalog::GetVideo(VideoId id) const {
  for (const auto& v : videos_) {
    if (v.id == id) return v;
  }
  return Status::NotFound("no video with that id");
}

Result<VideoDescriptor> VideoCatalog::FindVideo(const std::string& name) const {
  for (const auto& v : videos_) {
    if (v.name == name) return v;
  }
  return Status::NotFound("no video named " + name);
}

std::vector<VideoDescriptor> VideoCatalog::Videos() const { return videos_; }

std::string VideoCatalog::FeatureBatName(VideoId video,
                                         const std::string& feature) const {
  return StrFormat("feature.%llu.%s", static_cast<unsigned long long>(video),
                   feature.c_str());
}

Status VideoCatalog::StoreFeatureSeries(VideoId video,
                                        const std::string& feature,
                                        const std::vector<double>& values) {
  const std::string bat_name = FeatureBatName(video, feature);
  if (catalog_->Exists(bat_name)) {
    COBRA_RETURN_IF_ERROR(catalog_->Drop(bat_name));
  }
  kernel::Bat bat(kernel::TailType::kFloat);
  for (size_t i = 0; i < values.size(); ++i) {
    bat.AppendFloat(static_cast<kernel::Oid>(i), values[i]);
  }
  catalog_->Put(bat_name, std::move(bat));
  auto& names = feature_names_[video];
  if (std::find(names.begin(), names.end(), feature) == names.end()) {
    names.push_back(feature);
  }
  return Status::OK();
}

Result<std::vector<double>> VideoCatalog::LoadFeatureSeries(
    VideoId video, const std::string& feature) const {
  COBRA_ASSIGN_OR_RETURN(
      const kernel::Bat* bat,
      static_cast<const kernel::Catalog*>(catalog_)->Get(
          FeatureBatName(video, feature)));
  return bat->float_tails();
}

bool VideoCatalog::HasFeature(VideoId video, const std::string& feature) const {
  return catalog_->Exists(FeatureBatName(video, feature));
}

std::vector<std::string> VideoCatalog::FeatureNames(VideoId video) const {
  auto it = feature_names_.find(video);
  return it == feature_names_.end() ? std::vector<std::string>{} : it->second;
}

Status VideoCatalog::StoreObject(VideoId video, const ObjectRecord& object) {
  COBRA_ASSIGN_OR_RETURN(kernel::Oid oid, session_.NewObject("object"));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("object", oid, "video", kernel::Value::OfOid(video)));
  COBRA_RETURN_IF_ERROR(session_.SetAttr("object", oid, "class",
                                         kernel::Value::Str(object.cls)));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("object", oid, "name", kernel::Value::Str(object.name)));
  std::vector<std::string> kv;
  for (const auto& [k, v] : object.attrs) kv.push_back(k + "=" + v);
  COBRA_RETURN_IF_ERROR(session_.SetAttr("object", oid, "attrs",
                                         kernel::Value::Str(StrJoin(kv, ";"))));
  objects_[video].push_back(object);
  return Status::OK();
}

Result<std::vector<ObjectRecord>> VideoCatalog::Objects(
    VideoId video, const std::string& cls) const {
  auto it = objects_.find(video);
  std::vector<ObjectRecord> out;
  if (it == objects_.end()) return out;
  for (const auto& obj : it->second) {
    if (cls.empty() || obj.cls == cls) out.push_back(obj);
  }
  return out;
}

Status VideoCatalog::StoreEvent(VideoId video, const EventRecord& event) {
  COBRA_ASSIGN_OR_RETURN(kernel::Oid oid, session_.NewObject("event"));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("event", oid, "video", kernel::Value::OfOid(video)));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("event", oid, "type", kernel::Value::Str(event.type)));
  COBRA_RETURN_IF_ERROR(session_.SetAttr("event", oid, "begin",
                                         kernel::Value::Float(event.begin_sec)));
  COBRA_RETURN_IF_ERROR(session_.SetAttr("event", oid, "end",
                                         kernel::Value::Float(event.end_sec)));
  COBRA_RETURN_IF_ERROR(session_.SetAttr(
      "event", oid, "confidence", kernel::Value::Float(event.confidence)));
  std::vector<std::string> kv;
  for (const auto& [k, v] : event.attrs) kv.push_back(k + "=" + v);
  COBRA_RETURN_IF_ERROR(session_.SetAttr("event", oid, "attrs",
                                         kernel::Value::Str(StrJoin(kv, ";"))));
  events_[video].push_back(event);
  ++event_version_;
  return Status::OK();
}

Status VideoCatalog::StoreEvents(VideoId video,
                                 const std::vector<EventRecord>& events) {
  for (const auto& e : events) {
    COBRA_RETURN_IF_ERROR(StoreEvent(video, e));
  }
  return Status::OK();
}

Result<std::vector<EventRecord>> VideoCatalog::Events(
    VideoId video, const std::string& type) const {
  auto it = events_.find(video);
  std::vector<EventRecord> out;
  if (it != events_.end()) {
    for (const auto& e : it->second) {
      if (type.empty() || e.type == type) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.begin_sec < b.begin_sec;
            });
  return out;
}

bool VideoCatalog::HasEvents(VideoId video, const std::string& type) const {
  auto it = events_.find(video);
  if (it == events_.end()) return false;
  for (const auto& e : it->second) {
    if (e.type == type) return true;
  }
  return false;
}

Status VideoCatalog::DropEvents(VideoId video, const std::string& type) {
  auto it = events_.find(video);
  if (it == events_.end()) return Status::OK();
  auto& vec = it->second;
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [&type](const EventRecord& e) {
                             return e.type == type;
                           }),
            vec.end());
  ++event_version_;
  return Status::OK();
}

rules::EventFact VideoCatalog::ToFact(const EventRecord& event) {
  rules::EventFact fact;
  fact.type = event.type;
  fact.span = rules::TimeInterval{event.begin_sec, event.end_sec};
  fact.attrs = event.attrs;
  fact.confidence = event.confidence;
  return fact;
}

EventRecord VideoCatalog::FromFact(const rules::EventFact& fact) {
  EventRecord event;
  event.type = fact.type;
  event.begin_sec = fact.span.begin;
  event.end_sec = fact.span.end;
  event.attrs = fact.attrs;
  event.confidence = fact.confidence;
  return event;
}

}  // namespace cobra::model
