#include "cobra/video_model.h"

#include <algorithm>
#include <utility>

#include "base/io.h"
#include "base/logging.h"
#include "base/strings.h"
#include "kernel/persist.h"

namespace cobra::model {

VideoCatalog::VideoCatalog(kernel::Catalog* catalog)
    : catalog_(catalog), session_(catalog) {
  COBRA_CHECK(catalog != nullptr);
  moa::ClassDef video_class;
  video_class.name = "video";
  video_class.attributes = {
      {"name", kernel::TailType::kStr},
      {"duration", kernel::TailType::kFloat},
      {"fps", kernel::TailType::kFloat},
  };
  COBRA_CHECK(session_.DefineClass(video_class).ok());

  moa::ClassDef event_class;
  event_class.name = "event";
  event_class.attributes = {
      {"video", kernel::TailType::kOid},
      {"type", kernel::TailType::kStr},
      {"begin", kernel::TailType::kFloat},
      {"end", kernel::TailType::kFloat},
      {"confidence", kernel::TailType::kFloat},
      {"attrs", kernel::TailType::kStr},
  };
  COBRA_CHECK(session_.DefineClass(event_class).ok());

  moa::ClassDef object_class;
  object_class.name = "object";
  object_class.attributes = {
      {"video", kernel::TailType::kOid},
      {"class", kernel::TailType::kStr},
      {"name", kernel::TailType::kStr},
      {"attrs", kernel::TailType::kStr},
  };
  COBRA_CHECK(session_.DefineClass(object_class).ok());
}

namespace {

/// Leading magic of a serialized model payload (bump on layout changes).
constexpr char kStateMagic[] = "CBRAVID1";

/// Operation tags of the opaque kModel WAL records (stable on-disk values).
/// Each record is the tag byte followed by the operands listed; replay
/// re-executes the public mutation method, so oid allocation and mirror
/// updates reproduce the original run exactly.
enum class ModelOp : uint8_t {
  kVideo = 1,       // str name, f64 duration, f64 fps
  kFeature = 2,     // u64 video, str feature, u32 n, f64 value * n
  kObject = 3,      // u64 video, str class, str name, attrs
  kEvent = 4,       // u64 video, str type, f64 begin/end/conf, attrs, u64 ver
  kDropEvents = 5,  // u64 video, str type, u64 ver
};

void PutAttrs(std::string* out,
              const std::map<std::string, std::string>& attrs) {
  io::PutU32(out, static_cast<uint32_t>(attrs.size()));
  for (const auto& [k, v] : attrs) {
    io::PutStr(out, k);
    io::PutStr(out, v);
  }
}

bool ReadAttrs(io::ByteReader* r, std::map<std::string, std::string>* attrs) {
  uint32_t n = 0;
  if (!r->ReadU32(&n) || n > r->remaining()) return false;
  for (uint32_t i = 0; i < n; ++i) {
    std::string k;
    std::string v;
    if (!r->ReadStr(&k) || !r->ReadStr(&v)) return false;
    (*attrs)[std::move(k)] = std::move(v);
  }
  return true;
}

}  // namespace

Result<VideoId> VideoCatalog::RegisterVideo(const std::string& name,
                                            double duration_sec, double fps) {
  MutexLock lock(mu_);
  for (const auto& v : videos_) {
    if (v.name == name) return Status::AlreadyExists("video exists: " + name);
  }
  COBRA_ASSIGN_OR_RETURN(kernel::Oid oid, session_.NewObject("video"));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("video", oid, "name", kernel::Value::Str(name)));
  COBRA_RETURN_IF_ERROR(session_.SetAttr("video", oid, "duration",
                                         kernel::Value::Float(duration_sec)));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("video", oid, "fps", kernel::Value::Float(fps)));
  VideoDescriptor desc;
  desc.id = oid;
  desc.name = name;
  desc.duration_sec = duration_sec;
  desc.fps = fps;
  videos_.push_back(desc);
  model_version_.fetch_add(1, std::memory_order_acq_rel);
  if (store_ != nullptr && !replaying_) {
    // Logged under the lock so records reach the WAL in mutation order;
    // replay re-executes them in that order, so the oid allocated above
    // comes out identical. Lock order model -> store is the only direction
    // either mutex pair is ever taken in.
    std::string rec;
    rec.push_back(static_cast<char>(ModelOp::kVideo));
    io::PutStr(&rec, name);
    io::PutF64(&rec, duration_sec);
    io::PutF64(&rec, fps);
    COBRA_RETURN_IF_ERROR(store_->LogModel(rec));
  }
  return oid;
}

Result<VideoDescriptor> VideoCatalog::GetVideo(VideoId id) const {
  MutexLock lock(mu_);
  for (const auto& v : videos_) {
    if (v.id == id) return v;
  }
  return Status::NotFound("no video with that id");
}

Result<VideoDescriptor> VideoCatalog::FindVideo(const std::string& name) const {
  MutexLock lock(mu_);
  for (const auto& v : videos_) {
    if (v.name == name) return v;
  }
  return Status::NotFound("no video named " + name);
}

std::vector<VideoDescriptor> VideoCatalog::Videos() const {
  MutexLock lock(mu_);
  return videos_;
}

std::string VideoCatalog::FeatureBatName(VideoId video,
                                         const std::string& feature) const {
  return StrFormat("feature.%llu.%s", static_cast<unsigned long long>(video),
                   feature.c_str());
}

Status VideoCatalog::StoreFeatureSeries(VideoId video,
                                        const std::string& feature,
                                        const std::vector<double>& values) {
  const std::string bat_name = FeatureBatName(video, feature);
  if (catalog_->Exists(bat_name)) {
    COBRA_RETURN_IF_ERROR(catalog_->Drop(bat_name));
  }
  kernel::Bat bat(kernel::TailType::kFloat);
  for (size_t i = 0; i < values.size(); ++i) {
    bat.AppendFloat(static_cast<kernel::Oid>(i), values[i]);
  }
  catalog_->Put(bat_name, std::move(bat));
  MutexLock lock(mu_);
  auto& names = feature_names_[video];
  if (std::find(names.begin(), names.end(), feature) == names.end()) {
    names.push_back(feature);
  }
  model_version_.fetch_add(1, std::memory_order_acq_rel);
  if (store_ != nullptr && !replaying_) {
    std::string rec;
    rec.push_back(static_cast<char>(ModelOp::kFeature));
    io::PutU64(&rec, video);
    io::PutStr(&rec, feature);
    io::PutU32(&rec, static_cast<uint32_t>(values.size()));
    for (double v : values) io::PutF64(&rec, v);
    COBRA_RETURN_IF_ERROR(store_->LogModel(rec));
  }
  return Status::OK();
}

Result<std::vector<double>> VideoCatalog::LoadFeatureSeries(
    VideoId video, const std::string& feature) const {
  COBRA_ASSIGN_OR_RETURN(
      const kernel::Bat* bat,
      static_cast<const kernel::Catalog*>(catalog_)->Get(
          FeatureBatName(video, feature)));
  return bat->float_tails();
}

bool VideoCatalog::HasFeature(VideoId video, const std::string& feature) const {
  return catalog_->Exists(FeatureBatName(video, feature));
}

std::vector<std::string> VideoCatalog::FeatureNames(VideoId video) const {
  MutexLock lock(mu_);
  auto it = feature_names_.find(video);
  return it == feature_names_.end() ? std::vector<std::string>{} : it->second;
}

Status VideoCatalog::StoreObject(VideoId video, const ObjectRecord& object) {
  COBRA_ASSIGN_OR_RETURN(kernel::Oid oid, session_.NewObject("object"));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("object", oid, "video", kernel::Value::OfOid(video)));
  COBRA_RETURN_IF_ERROR(session_.SetAttr("object", oid, "class",
                                         kernel::Value::Str(object.cls)));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("object", oid, "name", kernel::Value::Str(object.name)));
  std::vector<std::string> kv;
  for (const auto& [k, v] : object.attrs) kv.push_back(k + "=" + v);
  COBRA_RETURN_IF_ERROR(session_.SetAttr("object", oid, "attrs",
                                         kernel::Value::Str(StrJoin(kv, ";"))));
  MutexLock lock(mu_);
  objects_[video].push_back(object);
  model_version_.fetch_add(1, std::memory_order_acq_rel);
  if (store_ != nullptr && !replaying_) {
    std::string rec;
    rec.push_back(static_cast<char>(ModelOp::kObject));
    io::PutU64(&rec, video);
    io::PutStr(&rec, object.cls);
    io::PutStr(&rec, object.name);
    PutAttrs(&rec, object.attrs);
    COBRA_RETURN_IF_ERROR(store_->LogModel(rec));
  }
  return Status::OK();
}

Result<std::vector<ObjectRecord>> VideoCatalog::Objects(
    VideoId video, const std::string& cls) const {
  MutexLock lock(mu_);
  auto it = objects_.find(video);
  std::vector<ObjectRecord> out;
  if (it == objects_.end()) return out;
  for (const auto& obj : it->second) {
    if (cls.empty() || obj.cls == cls) out.push_back(obj);
  }
  return out;
}

Status VideoCatalog::StoreEvent(VideoId video, const EventRecord& event) {
  COBRA_ASSIGN_OR_RETURN(kernel::Oid oid, session_.NewObject("event"));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("event", oid, "video", kernel::Value::OfOid(video)));
  COBRA_RETURN_IF_ERROR(
      session_.SetAttr("event", oid, "type", kernel::Value::Str(event.type)));
  COBRA_RETURN_IF_ERROR(session_.SetAttr("event", oid, "begin",
                                         kernel::Value::Float(event.begin_sec)));
  COBRA_RETURN_IF_ERROR(session_.SetAttr("event", oid, "end",
                                         kernel::Value::Float(event.end_sec)));
  COBRA_RETURN_IF_ERROR(session_.SetAttr(
      "event", oid, "confidence", kernel::Value::Float(event.confidence)));
  std::vector<std::string> kv;
  for (const auto& [k, v] : event.attrs) kv.push_back(k + "=" + v);
  COBRA_RETURN_IF_ERROR(session_.SetAttr("event", oid, "attrs",
                                         kernel::Value::Str(StrJoin(kv, ";"))));
  MutexLock lock(mu_);
  events_[video].push_back(event);
  ++event_version_;
  model_version_.fetch_add(1, std::memory_order_acq_rel);
  if (store_ != nullptr && !replaying_) {
    // The record carries the bumped version, so the cache-invalidation
    // counter recovers alongside the event itself.
    std::string rec;
    rec.push_back(static_cast<char>(ModelOp::kEvent));
    io::PutU64(&rec, video);
    io::PutStr(&rec, event.type);
    io::PutF64(&rec, event.begin_sec);
    io::PutF64(&rec, event.end_sec);
    io::PutF64(&rec, event.confidence);
    PutAttrs(&rec, event.attrs);
    io::PutU64(&rec, event_version_);
    return store_->LogModel(rec);
  }
  return Status::OK();
}

Status VideoCatalog::StoreEvents(VideoId video,
                                 const std::vector<EventRecord>& events) {
  for (const auto& e : events) {
    COBRA_RETURN_IF_ERROR(StoreEvent(video, e));
  }
  return Status::OK();
}

Result<std::vector<EventRecord>> VideoCatalog::Events(
    VideoId video, const std::string& type) const {
  MutexLock lock(mu_);
  auto it = events_.find(video);
  std::vector<EventRecord> out;
  if (it != events_.end()) {
    for (const auto& e : it->second) {
      if (type.empty() || e.type == type) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.begin_sec < b.begin_sec;
            });
  return out;
}

bool VideoCatalog::HasEvents(VideoId video, const std::string& type) const {
  MutexLock lock(mu_);
  auto it = events_.find(video);
  if (it == events_.end()) return false;
  for (const auto& e : it->second) {
    if (e.type == type) return true;
  }
  return false;
}

Status VideoCatalog::DropEvents(VideoId video, const std::string& type) {
  MutexLock lock(mu_);
  auto it = events_.find(video);
  if (it == events_.end()) return Status::OK();
  auto& vec = it->second;
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [&type](const EventRecord& e) {
                             return e.type == type;
                           }),
            vec.end());
  ++event_version_;
  model_version_.fetch_add(1, std::memory_order_acq_rel);
  if (store_ != nullptr && !replaying_) {
    std::string rec;
    rec.push_back(static_cast<char>(ModelOp::kDropEvents));
    io::PutU64(&rec, video);
    io::PutStr(&rec, type);
    io::PutU64(&rec, event_version_);
    return store_->LogModel(rec);
  }
  return Status::OK();
}

uint64_t VideoCatalog::event_version() const {
  MutexLock lock(mu_);
  return event_version_;
}

VideoCatalog::SnapshotState VideoCatalog::CaptureSnapshotState() const {
  MutexLock lock(mu_);
  SnapshotState state;
  state.event_version = event_version_;
  state.model_version = model_version_.load(std::memory_order_acquire);
  state.videos = videos_;
  state.events = events_;
  return state;
}

void VideoCatalog::AttachStore(kernel::PersistentStore* store) {
  MutexLock lock(mu_);
  store_ = store;
}

Status VideoCatalog::ApplyModelRecord(const std::string& record) {
  const Status corrupt(StatusCode::kIoError, "corrupt model wal record");
  io::ByteReader r(record);
  std::string op_byte;
  if (!r.ReadBytes(1, &op_byte)) return corrupt;

  // Recovery runs single-threaded, so flipping the flag around the
  // re-executed mutation cannot race another writer.
  {
    MutexLock lock(mu_);
    replaying_ = true;
  }
  Status status;
  uint64_t version = 0;
  bool has_version = false;
  switch (static_cast<ModelOp>(static_cast<uint8_t>(op_byte[0]))) {
    case ModelOp::kVideo: {
      std::string name;
      double duration = 0;
      double fps = 0;
      if (!r.ReadStr(&name) || !r.ReadF64(&duration) || !r.ReadF64(&fps)) {
        status = corrupt;
        break;
      }
      status = RegisterVideo(name, duration, fps).status();
      break;
    }
    case ModelOp::kFeature: {
      uint64_t video = 0;
      std::string feature;
      uint32_t n = 0;
      if (!r.ReadU64(&video) || !r.ReadStr(&feature) || !r.ReadU32(&n) ||
          n > r.remaining()) {
        status = corrupt;
        break;
      }
      std::vector<double> values(n);
      bool ok = true;
      for (uint32_t i = 0; i < n && ok; ++i) ok = r.ReadF64(&values[i]);
      status = ok ? StoreFeatureSeries(video, feature, values) : corrupt;
      break;
    }
    case ModelOp::kObject: {
      uint64_t video = 0;
      ObjectRecord object;
      if (!r.ReadU64(&video) || !r.ReadStr(&object.cls) ||
          !r.ReadStr(&object.name) || !ReadAttrs(&r, &object.attrs)) {
        status = corrupt;
        break;
      }
      status = StoreObject(video, object);
      break;
    }
    case ModelOp::kEvent: {
      uint64_t video = 0;
      EventRecord event;
      if (!r.ReadU64(&video) || !r.ReadStr(&event.type) ||
          !r.ReadF64(&event.begin_sec) || !r.ReadF64(&event.end_sec) ||
          !r.ReadF64(&event.confidence) || !ReadAttrs(&r, &event.attrs) ||
          !r.ReadU64(&version)) {
        status = corrupt;
        break;
      }
      has_version = true;
      status = StoreEvent(video, event);
      break;
    }
    case ModelOp::kDropEvents: {
      uint64_t video = 0;
      std::string type;
      if (!r.ReadU64(&video) || !r.ReadStr(&type) || !r.ReadU64(&version)) {
        status = corrupt;
        break;
      }
      has_version = true;
      status = DropEvents(video, type);
      break;
    }
    default:
      status = corrupt;
      break;
  }
  MutexLock lock(mu_);
  replaying_ = false;
  // The re-executed mutation bumped the counter from the restored base, which
  // normally lands exactly on the logged value; taking the max guards against
  // ever recovering to a version older than one a cached result has seen.
  if (status.ok() && has_version && version > event_version_) {
    event_version_ = version;
  }
  return status;
}

std::string VideoCatalog::SerializeState() const {
  MutexLock lock(mu_);
  std::string out(kStateMagic);
  io::PutU64(&out, event_version_);
  io::PutU64(&out, session_.next_oid());
  io::PutU32(&out, static_cast<uint32_t>(videos_.size()));
  for (const auto& v : videos_) {
    io::PutU64(&out, v.id);
    io::PutStr(&out, v.name);
    io::PutF64(&out, v.duration_sec);
    io::PutF64(&out, v.fps);
  }
  io::PutU32(&out, static_cast<uint32_t>(feature_names_.size()));
  for (const auto& [video, names] : feature_names_) {
    io::PutU64(&out, video);
    io::PutU32(&out, static_cast<uint32_t>(names.size()));
    for (const auto& name : names) io::PutStr(&out, name);
  }
  io::PutU32(&out, static_cast<uint32_t>(objects_.size()));
  for (const auto& [video, objects] : objects_) {
    io::PutU64(&out, video);
    io::PutU32(&out, static_cast<uint32_t>(objects.size()));
    for (const auto& o : objects) {
      io::PutStr(&out, o.cls);
      io::PutStr(&out, o.name);
      PutAttrs(&out, o.attrs);
    }
  }
  io::PutU32(&out, static_cast<uint32_t>(events_.size()));
  for (const auto& [video, events] : events_) {
    io::PutU64(&out, video);
    io::PutU32(&out, static_cast<uint32_t>(events.size()));
    for (const auto& e : events) {
      io::PutStr(&out, e.type);
      io::PutF64(&out, e.begin_sec);
      io::PutF64(&out, e.end_sec);
      io::PutF64(&out, e.confidence);
      PutAttrs(&out, e.attrs);
    }
  }
  return out;
}

Status VideoCatalog::RestoreState(const std::string& payload,
                                  uint64_t wal_event_version) {
  const Status corrupt(StatusCode::kIoError, "corrupt video-model payload");
  io::ByteReader r(payload);
  std::string magic;
  if (!r.ReadBytes(sizeof(kStateMagic) - 1, &magic) || magic != kStateMagic) {
    return corrupt;
  }
  uint64_t event_version = 0;
  uint64_t next_oid = 0;
  if (!r.ReadU64(&event_version) || !r.ReadU64(&next_oid)) return corrupt;

  // Decode into locals first: a corrupt payload must not leave the catalog
  // half-replaced.
  std::vector<VideoDescriptor> videos;
  uint32_t n = 0;
  if (!r.ReadU32(&n) || n > r.remaining()) return corrupt;
  for (uint32_t i = 0; i < n; ++i) {
    VideoDescriptor v;
    if (!r.ReadU64(&v.id) || !r.ReadStr(&v.name) ||
        !r.ReadF64(&v.duration_sec) || !r.ReadF64(&v.fps)) {
      return corrupt;
    }
    videos.push_back(std::move(v));
  }
  std::map<VideoId, std::vector<std::string>> feature_names;
  if (!r.ReadU32(&n) || n > r.remaining()) return corrupt;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t video = 0;
    uint32_t count = 0;
    if (!r.ReadU64(&video) || !r.ReadU32(&count) || count > r.remaining()) {
      return corrupt;
    }
    auto& names = feature_names[video];
    for (uint32_t j = 0; j < count; ++j) {
      std::string name;
      if (!r.ReadStr(&name)) return corrupt;
      names.push_back(std::move(name));
    }
  }
  std::map<VideoId, std::vector<ObjectRecord>> objects;
  if (!r.ReadU32(&n) || n > r.remaining()) return corrupt;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t video = 0;
    uint32_t count = 0;
    if (!r.ReadU64(&video) || !r.ReadU32(&count) || count > r.remaining()) {
      return corrupt;
    }
    auto& list = objects[video];
    for (uint32_t j = 0; j < count; ++j) {
      ObjectRecord o;
      if (!r.ReadStr(&o.cls) || !r.ReadStr(&o.name) || !ReadAttrs(&r, &o.attrs)) {
        return corrupt;
      }
      list.push_back(std::move(o));
    }
  }
  std::map<VideoId, std::vector<EventRecord>> events;
  if (!r.ReadU32(&n) || n > r.remaining()) return corrupt;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t video = 0;
    uint32_t count = 0;
    if (!r.ReadU64(&video) || !r.ReadU32(&count) || count > r.remaining()) {
      return corrupt;
    }
    auto& list = events[video];
    for (uint32_t j = 0; j < count; ++j) {
      EventRecord e;
      if (!r.ReadStr(&e.type) || !r.ReadF64(&e.begin_sec) ||
          !r.ReadF64(&e.end_sec) || !r.ReadF64(&e.confidence) ||
          !ReadAttrs(&r, &e.attrs)) {
        return corrupt;
      }
      list.push_back(std::move(e));
    }
  }
  if (!r.exhausted()) return corrupt;

  MutexLock lock(mu_);
  videos_ = std::move(videos);
  feature_names_ = std::move(feature_names);
  objects_ = std::move(objects);
  events_ = std::move(events);
  event_version_ = std::max(event_version, wal_event_version);
  // RECOVER replaces the whole queryable state: every published snapshot is
  // stale, whatever it was built from.
  model_version_.fetch_add(1, std::memory_order_acq_rel);
  session_.set_next_oid(next_oid);
  return Status::OK();
}

rules::EventFact VideoCatalog::ToFact(const EventRecord& event) {
  rules::EventFact fact;
  fact.type = event.type;
  fact.span = rules::TimeInterval{event.begin_sec, event.end_sec};
  fact.attrs = event.attrs;
  fact.confidence = event.confidence;
  return fact;
}

EventRecord VideoCatalog::FromFact(const rules::EventFact& fact) {
  EventRecord event;
  event.type = fact.type;
  event.begin_sec = fact.span.begin;
  event.end_sec = fact.span.end;
  event.attrs = fact.attrs;
  event.confidence = fact.confidence;
  return event;
}

}  // namespace cobra::model
