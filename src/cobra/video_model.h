#ifndef COBRA_COBRA_VIDEO_MODEL_H_
#define COBRA_COBRA_VIDEO_MODEL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "kernel/catalog.h"
#include "moa/moa.h"
#include "rules/engine.h"

namespace cobra::model {

using VideoId = kernel::Oid;

/// Raw layer: one registered video source.
struct VideoDescriptor {
  VideoId id = 0;
  std::string name;
  double duration_sec = 0.0;
  double fps = 25.0;
};

/// Event layer record: a semantic occurrence within a video. `attrs` carries
/// domain attributes (driver name, caption kind, ...).
struct EventRecord {
  std::string type;
  double begin_sec = 0.0;
  double end_sec = 0.0;
  double confidence = 1.0;
  std::map<std::string, std::string> attrs;
};

/// Object layer record: a prominent spatial entity (driver, car, ...).
struct ObjectRecord {
  std::string cls;   // e.g. "driver"
  std::string name;  // e.g. "SCHUMACHER"
  std::map<std::string, std::string> attrs;
};

/// The Cobra video data model [15]: four layers — raw data, features,
/// objects, events — persisted via the Moa/kernel stack so that metadata is
/// ordinary database content that queries (and the preprocessor's
/// availability checks) can reach. Features are per-0.1 s-clip time series;
/// events are attributed intervals.
///
/// Thread-safe for concurrent readers against a single writer: the layer
/// mirrors and the event version are guarded by an internal mutex (the
/// kernel catalog beneath has its own), so query threads may read while a
/// writer stores events and checkpoints.
class VideoCatalog {
 public:
  explicit VideoCatalog(kernel::Catalog* catalog);

  // -- Raw layer ---------------------------------------------------------

  Result<VideoId> RegisterVideo(const std::string& name, double duration_sec,
                                double fps = 25.0);
  Result<VideoDescriptor> GetVideo(VideoId id) const;
  Result<VideoDescriptor> FindVideo(const std::string& name) const;
  std::vector<VideoDescriptor> Videos() const;

  // -- Feature layer -------------------------------------------------------

  /// Stores a named per-clip feature series (overwrites a previous one).
  Status StoreFeatureSeries(VideoId video, const std::string& feature,
                            const std::vector<double>& values);
  Result<std::vector<double>> LoadFeatureSeries(
      VideoId video, const std::string& feature) const;
  bool HasFeature(VideoId video, const std::string& feature) const;
  std::vector<std::string> FeatureNames(VideoId video) const;

  // -- Object layer -------------------------------------------------------

  Status StoreObject(VideoId video, const ObjectRecord& object);
  Result<std::vector<ObjectRecord>> Objects(VideoId video,
                                            const std::string& cls) const;

  // -- Event layer --------------------------------------------------------

  Status StoreEvent(VideoId video, const EventRecord& event);
  Status StoreEvents(VideoId video, const std::vector<EventRecord>& events);
  /// Events of a type (empty type = all), sorted by begin time.
  Result<std::vector<EventRecord>> Events(VideoId video,
                                          const std::string& type = "") const;
  bool HasEvents(VideoId video, const std::string& type) const;
  /// Drops all events of a type (used before re-extraction).
  Status DropEvents(VideoId video, const std::string& type);

  /// Monotonic counter bumped by every event-layer mutation (StoreEvent,
  /// StoreEvents, DropEvents). The query layer's result cache records it
  /// per entry, so any event change invalidates stale cached results.
  uint64_t event_version() const COBRA_EXCLUDES(mu_);

  /// Monotonic counter bumped by EVERY model mutation (RegisterVideo,
  /// StoreFeatureSeries, StoreObject, and all event-layer mutations) — the
  /// staleness signal for snapshot publication. Lock-free read, so heavy
  /// read traffic polling it never contends with a writer.
  uint64_t model_version() const {
    return model_version_.load(std::memory_order_acquire);
  }

  // -- Snapshot capture ----------------------------------------------------

  /// A point-in-time copy of everything a retrieval query reads, taken
  /// atomically under the model mutex: the raw layer (videos), the event
  /// layer, and the versions that state corresponds to. The query layer's
  /// SnapshotManager wraps this in epoch-pinned immutable snapshots so
  /// readers never touch the live mirrors (or this catalog's mutex) again.
  struct SnapshotState {
    uint64_t event_version = 0;
    uint64_t model_version = 0;
    std::vector<VideoDescriptor> videos;
    std::map<VideoId, std::vector<EventRecord>> events;
  };

  /// Copies the queryable state and its versions under one lock acquisition,
  /// so the returned versions exactly describe the returned data (a
  /// concurrent writer lands entirely before or entirely after the capture,
  /// never inside it).
  SnapshotState CaptureSnapshotState() const COBRA_EXCLUDES(mu_);

  // -- Durability ---------------------------------------------------------

  /// Attaches a persistent store: every model mutation (RegisterVideo,
  /// StoreFeatureSeries, StoreObject, StoreEvent, DropEvents) is WAL-logged
  /// as an opaque kModel record — fsync'd before this layer's state is
  /// considered committed — so work done after the last checkpoint survives
  /// a crash. Event-layer records carry the bumped event version, so the
  /// cache-invalidation counter recovers too. Pass null to detach; the
  /// store must outlive the attachment.
  void AttachStore(kernel::PersistentStore* store) COBRA_EXCLUDES(mu_);

  /// Re-executes one WAL-replayed kModel record (as handed back in
  /// RecoveryInfo::model_records) on top of the restored snapshot state.
  /// Replay is deterministic: records are applied in commit order and oid
  /// allocation resumes from the snapshot's serialized cursor, so ids come
  /// out identical to the original run. Mutations are not re-logged while a
  /// record is being applied.
  Status ApplyModelRecord(const std::string& record) COBRA_EXCLUDES(mu_);

  /// Serializes the model mirrors (videos, feature/object/event indexes,
  /// event version, next Moa oid) — the opaque `extra` payload a checkpoint
  /// carries alongside the BAT image.
  std::string SerializeState() const COBRA_EXCLUDES(mu_);

  /// Replaces the mirrors with a SerializeState image (as returned in
  /// RecoveryInfo::extra). `wal_event_version` is the newest replayed
  /// kEventVersion record; the restored counter is the max of the two, so a
  /// result cached before the crash can never read as fresh afterwards.
  Status RestoreState(const std::string& payload, uint64_t wal_event_version)
      COBRA_EXCLUDES(mu_);

  /// Bridges the event layer to the rule engine.
  static rules::EventFact ToFact(const EventRecord& event);
  static EventRecord FromFact(const rules::EventFact& fact);

  moa::MoaSession& session() { return session_; }

 private:
  std::string FeatureBatName(VideoId video, const std::string& feature) const;

  kernel::Catalog* catalog_;
  moa::MoaSession session_;

  mutable Mutex mu_;
  std::vector<VideoDescriptor> videos_ COBRA_GUARDED_BY(mu_);
  // Event storage: in-memory index mirroring the BAT-backed store.
  std::map<VideoId, std::vector<EventRecord>> events_ COBRA_GUARDED_BY(mu_);
  std::map<VideoId, std::vector<ObjectRecord>> objects_ COBRA_GUARDED_BY(mu_);
  std::map<VideoId, std::vector<std::string>> feature_names_
      COBRA_GUARDED_BY(mu_);
  uint64_t event_version_ COBRA_GUARDED_BY(mu_) = 0;
  /// Bumped (under mu_) by every model mutation; read lock-free.
  std::atomic<uint64_t> model_version_{0};
  /// WAL target for model mutation records; null when durability is off.
  kernel::PersistentStore* store_ COBRA_GUARDED_BY(mu_) = nullptr;
  /// True while ApplyModelRecord re-executes a replayed mutation, which must
  /// not be logged again.
  bool replaying_ COBRA_GUARDED_BY(mu_) = false;
};

}  // namespace cobra::model

#endif  // COBRA_COBRA_VIDEO_MODEL_H_
