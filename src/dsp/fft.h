#ifndef COBRA_DSP_FFT_H_
#define COBRA_DSP_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace cobra::dsp {

/// Returns the smallest power of two >= n (n >= 1).
size_t NextPow2(size_t n);

/// In-place iterative radix-2 Cooley–Tukey FFT. `data.size()` must be a
/// power of two. `inverse` applies the conjugate transform and divides by N.
void Fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// FFT of a real signal, zero-padded to the next power of two (or to
/// `min_size` if larger). Returns the full complex spectrum.
std::vector<std::complex<double>> RealFft(const std::vector<double>& signal,
                                          size_t min_size = 0);

/// Power spectrum |X[k]|^2 of a real signal for k in [0, N/2].
std::vector<double> PowerSpectrum(const std::vector<double>& signal,
                                  size_t min_size = 0);

}  // namespace cobra::dsp

#endif  // COBRA_DSP_FFT_H_
