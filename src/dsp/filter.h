#ifndef COBRA_DSP_FILTER_H_
#define COBRA_DSP_FILTER_H_

#include <cstddef>
#include <vector>

namespace cobra::dsp {

/// Linear-phase FIR filter built by the windowed-sinc method. The audio
/// front end uses band-pass instances for the paper's sub-bands
/// (0–882 Hz for pitch/MFCC, 882–2205 Hz for excited-speech STE,
/// 0–2.5 kHz for speech characterization).
class FirFilter {
 public:
  /// Designs a band-pass filter passing [low_hz, high_hz] at `sample_rate`.
  /// `num_taps` must be odd; larger means sharper transition bands.
  /// low_hz == 0 gives a low-pass; high_hz >= Nyquist gives a high-pass.
  static FirFilter BandPass(double low_hz, double high_hz, double sample_rate,
                            size_t num_taps = 101);

  /// Filters `signal` (same-length output; zero initial state, group delay
  /// compensated so features line up with the input timeline).
  std::vector<double> Apply(const std::vector<double>& signal) const;

  const std::vector<double>& taps() const { return taps_; }

 private:
  explicit FirFilter(std::vector<double> taps) : taps_(std::move(taps)) {}

  std::vector<double> taps_;
};

/// Single-pole IIR smoother y[i] = a*y[i-1] + (1-a)*x[i], used for envelope
/// tracking. `a` in [0,1).
std::vector<double> ExponentialSmooth(const std::vector<double>& signal,
                                      double a);

}  // namespace cobra::dsp

#endif  // COBRA_DSP_FILTER_H_
