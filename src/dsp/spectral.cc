#include "dsp/spectral.h"

#include <cmath>

#include "base/logging.h"
#include "dsp/fft.h"

namespace cobra::dsp {

std::vector<double> Autocorrelation(const std::vector<double>& signal,
                                    size_t max_lag) {
  const size_t n = signal.size();
  std::vector<double> r(max_lag + 1, 0.0);
  if (n == 0) return r;
  for (size_t k = 0; k <= max_lag && k < n; ++k) {
    double s = 0.0;
    for (size_t i = 0; i + k < n; ++i) s += signal[i] * signal[i + k];
    r[k] = s / static_cast<double>(n);
  }
  return r;
}

std::vector<double> DctII(const std::vector<double>& input,
                          size_t num_coeffs) {
  const size_t n = input.size();
  COBRA_CHECK(n > 0);
  std::vector<double> out(num_coeffs, 0.0);
  for (size_t k = 0; k < num_coeffs; ++k) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      s += input[i] * std::cos(M_PI * static_cast<double>(k) *
                               (static_cast<double>(i) + 0.5) /
                               static_cast<double>(n));
    }
    out[k] = s;
  }
  return out;
}

double ZeroCrossingRate(const std::vector<double>& signal) {
  if (signal.size() < 2) return 0.0;
  size_t crossings = 0;
  for (size_t i = 1; i < signal.size(); ++i) {
    if ((signal[i - 1] >= 0.0) != (signal[i] >= 0.0)) ++crossings;
  }
  return static_cast<double>(crossings) /
         static_cast<double>(signal.size() - 1);
}

double SpectralEntropy(const std::vector<double>& signal) {
  if (signal.empty()) return 0.0;
  auto power = PowerSpectrum(signal);
  double total = 0.0;
  for (double p : power) total += p;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double p : power) {
    if (p <= 0.0) continue;
    const double q = p / total;
    h -= q * std::log(q);
  }
  return h;
}

double HzToMel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }

double MelToHz(double mel) {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

}  // namespace cobra::dsp
