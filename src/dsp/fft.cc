#include "dsp/fft.h"

#include <cmath>

#include "base/logging.h"

namespace cobra::dsp {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  COBRA_CHECK(n > 0 && (n & (n - 1)) == 0) << "FFT size must be a power of 2";

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<std::complex<double>> RealFft(const std::vector<double>& signal,
                                          size_t min_size) {
  size_t n = NextPow2(std::max(signal.size(), std::max<size_t>(min_size, 1)));
  std::vector<std::complex<double>> data(n);
  for (size_t i = 0; i < signal.size(); ++i) data[i] = signal[i];
  Fft(data);
  return data;
}

std::vector<double> PowerSpectrum(const std::vector<double>& signal,
                                  size_t min_size) {
  auto spec = RealFft(signal, min_size);
  const size_t half = spec.size() / 2;
  std::vector<double> power(half + 1);
  for (size_t k = 0; k <= half; ++k) power[k] = std::norm(spec[k]);
  return power;
}

}  // namespace cobra::dsp
