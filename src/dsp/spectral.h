#ifndef COBRA_DSP_SPECTRAL_H_
#define COBRA_DSP_SPECTRAL_H_

#include <cstddef>
#include <vector>

namespace cobra::dsp {

/// Biased autocorrelation r[k] = sum_i x[i] x[i+k] / N for k in [0, max_lag].
/// Used by the pitch tracker (the paper estimates pitch by autocorrelation
/// analysis of the low-passed signal).
std::vector<double> Autocorrelation(const std::vector<double>& signal,
                                    size_t max_lag);

/// DCT-II of `input`, returning `num_coeffs` coefficients. Used to turn
/// log mel-band energies into MFCCs.
std::vector<double> DctII(const std::vector<double>& input,
                          size_t num_coeffs);

/// Zero-crossing rate: fraction of adjacent sample pairs with a sign change.
double ZeroCrossingRate(const std::vector<double>& signal);

/// Shannon entropy of the normalized magnitude spectrum of `signal`
/// (natural log). The paper reports entropy-based endpointing as powerless
/// in its noisy domain; the endpoint bench reproduces that comparison.
double SpectralEntropy(const std::vector<double>& signal);

/// Converts frequency in Hz to the mel scale and back.
double HzToMel(double hz);
double MelToHz(double mel);

}  // namespace cobra::dsp

#endif  // COBRA_DSP_SPECTRAL_H_
