#include "dsp/filter.h"

#include <cmath>

#include "base/logging.h"
#include "dsp/window.h"

namespace cobra::dsp {
namespace {

double Sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(M_PI * x) / (M_PI * x);
}

}  // namespace

FirFilter FirFilter::BandPass(double low_hz, double high_hz,
                              double sample_rate, size_t num_taps) {
  COBRA_CHECK(num_taps % 2 == 1) << "num_taps must be odd";
  COBRA_CHECK(sample_rate > 0.0);
  COBRA_CHECK(low_hz >= 0.0 && high_hz > low_hz);
  const double nyquist = sample_rate / 2.0;
  const double fl = low_hz / nyquist;        // normalized [0,1]
  const double fh = std::min(high_hz, nyquist) / nyquist;

  const auto window = MakeWindow(WindowType::kHamming, num_taps);
  std::vector<double> taps(num_taps);
  const double mid = static_cast<double>(num_taps - 1) / 2.0;
  for (size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    // Ideal band-pass = highpass-cutoff sinc minus lowpass-cutoff sinc.
    const double ideal = fh * Sinc(fh * t) - fl * Sinc(fl * t);
    taps[i] = ideal * window[i];
  }
  return FirFilter(std::move(taps));
}

std::vector<double> FirFilter::Apply(const std::vector<double>& signal) const {
  const size_t n = signal.size();
  const size_t m = taps_.size();
  const size_t delay = (m - 1) / 2;
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    // Output sample i corresponds to input centered at i (delay-compensated).
    for (size_t k = 0; k < m; ++k) {
      const ptrdiff_t idx =
          static_cast<ptrdiff_t>(i) + static_cast<ptrdiff_t>(delay) -
          static_cast<ptrdiff_t>(k);
      if (idx >= 0 && idx < static_cast<ptrdiff_t>(n)) {
        acc += taps_[k] * signal[static_cast<size_t>(idx)];
      }
    }
    out[i] = acc;
  }
  return out;
}

std::vector<double> ExponentialSmooth(const std::vector<double>& signal,
                                      double a) {
  COBRA_CHECK(a >= 0.0 && a < 1.0);
  std::vector<double> out(signal.size());
  double y = 0.0;
  for (size_t i = 0; i < signal.size(); ++i) {
    y = a * y + (1.0 - a) * signal[i];
    out[i] = y;
  }
  return out;
}

}  // namespace cobra::dsp
