#ifndef COBRA_DSP_WINDOW_H_
#define COBRA_DSP_WINDOW_H_

#include <cstddef>
#include <vector>

namespace cobra::dsp {

/// Window shapes used for short-time analysis. The paper selects the Hamming
/// window for short-time energy because it gave the best speech endpoint
/// detection among the four commonly used filters.
enum class WindowType { kRectangular, kHamming, kHann, kBlackman };

/// Returns the window coefficients of length n.
std::vector<double> MakeWindow(WindowType type, size_t n);

/// Multiplies `frame` element-wise by the window (sizes must match).
void ApplyWindow(const std::vector<double>& window, std::vector<double>& frame);

}  // namespace cobra::dsp

#endif  // COBRA_DSP_WINDOW_H_
