#include "dsp/window.h"

#include <cmath>

#include "base/logging.h"

namespace cobra::dsp {

std::vector<double> MakeWindow(WindowType type, size_t n) {
  COBRA_CHECK(n > 0);
  std::vector<double> w(n, 1.0);
  if (n == 1) return w;
  const double denom = static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;
    switch (type) {
      case WindowType::kRectangular:
        w[i] = 1.0;
        break;
      case WindowType::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(2.0 * M_PI * x);
        break;
      case WindowType::kHann:
        w[i] = 0.5 - 0.5 * std::cos(2.0 * M_PI * x);
        break;
      case WindowType::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(2.0 * M_PI * x) +
               0.08 * std::cos(4.0 * M_PI * x);
        break;
    }
  }
  return w;
}

void ApplyWindow(const std::vector<double>& window,
                 std::vector<double>& frame) {
  COBRA_CHECK(window.size() == frame.size());
  for (size_t i = 0; i < frame.size(); ++i) frame[i] *= window[i];
}

}  // namespace cobra::dsp
