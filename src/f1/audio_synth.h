#ifndef COBRA_F1_AUDIO_SYNTH_H_
#define COBRA_F1_AUDIO_SYNTH_H_

#include <vector>

#include "audio/types.h"
#include "f1/timeline.h"
#include "kws/keyword_spotter.h"

namespace cobra::f1 {

/// Synthesizes the broadcast audio of a race from its ground-truth
/// timeline: announcer speech as a harmonic series whose fundamental,
/// amplitude and pause behaviour shift when the announcer is excited
/// (raised voice), Formula 1 engine noise (broadband hiss + low rumble),
/// and crowd swell at fly-outs. The audio front end then runs real DSP on
/// these samples, so detection is noisy in the same qualitative way the
/// paper's analog-TV audio was.
///
/// The synthesizer also emits the phone-token stream consumed by the
/// keyword spotter (the substitution for the TNO-Abbot acoustic decoder):
/// one phone per 0.1 s of speech, with substitution noise.
class AudioSynthesizer {
 public:
  struct Options {
    audio::AudioFormat format;
    /// Probability a decoded phone is substituted (acoustic confusion).
    double phone_substitution_prob = 0.08;
    /// Fundamental frequency of normal / excited speech (Hz).
    double normal_pitch_hz = 115.0;
    double excited_pitch_hz = 230.0;
    /// Speech amplitudes.
    double normal_amplitude = 0.22;
    double excited_amplitude = 0.45;
    /// Car/background noise amplitude.
    double noise_amplitude = 0.05;
    double rumble_amplitude = 0.035;
    /// Tonal engine scream (harmonic stack on `engine_tone_hz`). Zero by
    /// default; the endpointing bench raises it to show why
    /// entropy/zero-crossing detectors fail against harmonic noise.
    double engine_tone_amplitude = 0.0;
    double engine_tone_hz = 345.0;
    /// Probability a 10 ms frame of normal speech is a micro-pause
    /// (excited speech pauses far less).
    double normal_micro_pause = 0.12;
    double excited_micro_pause = 0.02;
  };

  AudioSynthesizer(const RaceTimeline& timeline, const Options& options);
  explicit AudioSynthesizer(const RaceTimeline& timeline)
      : AudioSynthesizer(timeline, Options()) {}

  size_t num_clips() const { return speech_.size(); }

  /// Samples of clip `i` (deterministic: the same clip always synthesizes
  /// identically, so clips can be streamed and never stored).
  std::vector<double> SynthesizeClip(size_t clip) const;

  /// The full decoded phone stream (one token per clip).
  std::vector<kws::PhoneToken> PhoneStream() const;

  /// Ground-truth per-clip flags derived from the timeline (used by tests
  /// and for supervised DBN training labels).
  bool ClipHasSpeech(size_t clip) const { return speech_[clip]; }
  bool ClipIsExcited(size_t clip) const { return excited_[clip]; }

 private:
  Options options_;
  uint64_t seed_ = 0;
  std::vector<uint8_t> speech_;      // per clip
  std::vector<uint8_t> excited_;     // per clip: ground-truth excited flag
  std::vector<double> intensity_;    // per clip: vocal-effort interpolation
  std::vector<double> car_level_;    // per clip noise multiplier
  std::vector<int> phone_;           // per clip, -1 = silence
};

}  // namespace cobra::f1

#endif  // COBRA_F1_AUDIO_SYNTH_H_
