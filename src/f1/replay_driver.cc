#include "f1/replay_driver.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "base/rng.h"

namespace cobra::f1 {

ReplayDriver::ReplayDriver(model::VideoCatalog* videos)
    : ReplayDriver(videos, Options()) {}

ReplayDriver::ReplayDriver(model::VideoCatalog* videos, Options options)
    : videos_(videos), options_(options) {}

Result<ReplayDriver::Progress> ReplayDriver::Replay(
    model::VideoId video, const RaceTimeline& timeline,
    const BatchHook& on_batch) {
  // Begin-sorted with deterministic tie-breaks: the total write order must
  // be a function of the timeline alone, never of generator emission order.
  std::vector<const TimelineEvent*> ordered;
  ordered.reserve(timeline.events.size());
  for (const TimelineEvent& event : timeline.events) ordered.push_back(&event);
  std::sort(ordered.begin(), ordered.end(),
            [](const TimelineEvent* a, const TimelineEvent* b) {
              if (a->begin != b->begin) return a->begin < b->begin;
              if (a->end != b->end) return a->end < b->end;
              if (a->type != b->type) return a->type < b->type;
              return a->attrs < b->attrs;
            });

  Rng rng(options_.seed);
  Progress progress;
  const auto start = std::chrono::steady_clock::now();
  size_t next = 0;
  while (next < ordered.size()) {
    const uint64_t want =
        options_.batch_rows > 0
            ? options_.batch_rows
            : rng.UniformInt(std::max<uint64_t>(options_.max_batch, 1)) + 1;
    const size_t take = std::min<size_t>(want, ordered.size() - next);
    std::vector<model::EventRecord> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      const TimelineEvent& event = *ordered[next + i];
      model::EventRecord record;
      record.type = event.type;
      record.begin_sec = event.begin;
      record.end_sec = event.end;
      record.attrs = event.attrs;
      batch.push_back(std::move(record));
    }
    next += take;
    if (options_.speedup > 0.0) {
      // Pace against the broadcast clock: the batch lands when its newest
      // event would have aired. Sleeping is pacing only — it never changes
      // what is written, so accelerated and instant replays stay identical.
      const double due_sec = batch.back().begin_sec / options_.speedup;
      const auto due = start + std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(due_sec));
      std::this_thread::sleep_until(due);
    }
    progress.watermark_sec = batch.back().begin_sec;
    COBRA_RETURN_IF_ERROR(videos_->StoreEvents(video, batch));
    ++progress.batches;
    progress.events += take;
    if (on_batch) COBRA_RETURN_IF_ERROR(on_batch(progress));
  }
  return progress;
}

}  // namespace cobra::f1
