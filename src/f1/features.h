#ifndef COBRA_F1_FEATURES_H_
#define COBRA_F1_FEATURES_H_

#include <vector>

#include "audio/clip_features.h"
#include "f1/audio_synth.h"
#include "f1/frame_render.h"
#include "f1/timeline.h"

namespace cobra::f1 {

/// One 0.1 s clip's evidence vector — the paper's features f1–f17, each a
/// probabilistic value in [0, 1] — plus ground-truth labels for training
/// and evaluation.
struct ClipEvidence {
  // Audio (f1–f10).
  double keywords = 0.0;     // f1
  double pause_rate = 0.0;   // f2
  double ste_avg = 0.0;      // f3
  double ste_range = 0.0;    // f4
  double ste_max = 0.0;      // f5
  double pitch_avg = 0.0;    // f6
  double pitch_range = 0.0;  // f7
  double pitch_max = 0.0;    // f8
  double mfcc_avg = 0.0;     // f9
  double mfcc_max = 0.0;     // f10
  // Contextual / visual (f11–f17).
  double part_of_race = 0.0; // f11
  double replay = 0.0;       // f12
  double color_diff = 0.0;   // f13
  double semaphore = 0.0;    // f14
  double dust = 0.0;         // f15
  double sand = 0.0;         // f16
  double motion = 0.0;       // f17

  bool is_speech = false;    // endpoint decision

  // Ground truth (from the timeline, never shown to inference).
  bool truth_excited = false;
  bool truth_highlight = false;
  bool truth_start = false;
  bool truth_flyout = false;
  bool truth_passing = false;
  bool truth_replay = false;
};

/// Evidence for a whole race.
struct RaceEvidence {
  RaceProfile profile;
  std::vector<ClipEvidence> clips;
};

/// Normalization scales mapping raw feature statistics into [0, 1]
/// "probabilistic values" (soft saturation x / (x + scale) for energies,
/// linear ramps for pitch).
struct NormalizerOptions {
  double ste_avg_scale = 0.004;
  double ste_range_scale = 0.005;
  double ste_max_scale = 0.010;
  double pitch_lo_hz = 80.0;
  double pitch_hi_hz = 330.0;
  double pitch_range_scale = 120.0;
  double mfcc_scale = 2.5;
};

/// Extraction configuration.
struct EvidenceOptions {
  AudioSynthesizer::Options synth;
  FrameRenderer::Options video;
  audio::ClipAnalyzer::Options audio;
  NormalizerOptions normalizer;
  /// Skip the (costly) visual pipeline when only audio evidence is needed
  /// (audio-only DBN experiments).
  bool extract_video = true;
};

/// Runs the full extraction pipeline over a ground-truth timeline:
/// synthesize audio -> DSP features + endpointing, keyword spotting over
/// the phone stream, render frames -> visual cues, then normalize into the
/// f1–f17 evidence vectors.
RaceEvidence ExtractEvidence(const RaceTimeline& timeline,
                             const EvidenceOptions& options);
RaceEvidence ExtractEvidence(const RaceTimeline& timeline);

}  // namespace cobra::f1

#endif  // COBRA_F1_FEATURES_H_
