#ifndef COBRA_F1_EVALUATION_H_
#define COBRA_F1_EVALUATION_H_

#include <map>
#include <string>
#include <vector>

#include "f1/timeline.h"

namespace cobra::f1 {

/// A detected time segment.
struct Segment {
  double begin = 0.0;
  double end = 0.0;

  double Duration() const { return end - begin; }
  bool Overlaps(double b, double e, double min_overlap) const {
    return std::min(end, e) - std::max(begin, b) >= min_overlap;
  }
};

/// Turns a per-clip posterior series into segments: clips above `threshold`
/// form runs, runs separated by less than `merge_gap_sec` merge, and runs
/// shorter than `min_duration_sec` are dropped. Table 3's parameters are
/// threshold 0.5 and minimal duration 6 s.
std::vector<Segment> ExtractSegments(const std::vector<double>& posterior,
                                     double threshold,
                                     double min_duration_sec,
                                     double clip_sec = 0.1,
                                     double merge_gap_sec = 1.0);

/// The post-processing the paper applies to *BN* outputs, whose raw values
/// "cannot be directly employed to distinguish the presence and time
/// boundaries of excited speech" (Fig. 9a): accumulate (moving-average) the
/// query node over a window before thresholding.
std::vector<double> AccumulateOverTime(const std::vector<double>& series,
                                       size_t window);

/// Decision threshold for accumulated BN outputs. Different BN structures
/// calibrate their query posterior differently (the input/output structure
/// in particular concentrates it low), so the "conclusion" step uses a
/// data-driven threshold: mean + `k` standard deviations, clamped to
/// [lo, hi]. DBN outputs do not need this — they are thresholded at 0.5.
double AdaptiveThreshold(const std::vector<double>& series, double k = 1.0,
                         double lo = 0.25, double hi = 0.55);

/// Precision / recall of detected segments against ground-truth intervals:
/// a detection is a true positive when it overlaps a truth interval by at
/// least `min_overlap_sec`; a truth interval is covered when some detection
/// overlaps it likewise.
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  int true_positives = 0;
  int num_detections = 0;
  int covered_truth = 0;
  int num_truth = 0;
};

PrecisionRecall ScoreSegments(const std::vector<Segment>& detected,
                              const std::vector<Segment>& truth,
                              double min_overlap_sec = 1.0);

/// Converts timeline events (optionally filtered by type) into segments.
std::vector<Segment> TruthSegments(const RaceTimeline& timeline,
                                   const std::string& type);
std::vector<Segment> HighlightSegments(const RaceTimeline& timeline);

/// A highlight segment classified as a specific sub-event.
struct TypedSegment {
  std::string type;
  Segment span;
};

/// The paper's sub-event selection: within each highlight segment take the
/// most probable candidate node; segments longer than `long_segment_sec`
/// are re-evaluated every `window_sec` to allow multiple selections.
std::vector<TypedSegment> ClassifySubEvents(
    const Segment& highlight,
    const std::map<std::string, const std::vector<double>*>& node_posteriors,
    double clip_sec = 0.1, double long_segment_sec = 15.0,
    double window_sec = 5.0, double min_posterior = 0.30);

}  // namespace cobra::f1

#endif  // COBRA_F1_EVALUATION_H_
