#ifndef COBRA_F1_REPLAY_DRIVER_H_
#define COBRA_F1_REPLAY_DRIVER_H_

#include <cstdint>
#include <functional>

#include "cobra/video_model.h"
#include "f1/timeline.h"

namespace cobra::f1 {

/// Replays a generated race timeline into a live VideoCatalog as a stream
/// of event batches — the ingestion side of the streaming subsystem, and the
/// "live broadcast" a continuous query watches. A race is replayed in strict
/// begin order; only the *batching* varies (fixed size, seeded random sizes,
/// or paced against the wall clock), so any two replays of the same timeline
/// produce the same total write order — the invariance the incremental-vs-
/// batch differential harness is built on.
class ReplayDriver {
 public:
  struct Options {
    /// Playback pacing: <= 0 replays instantly with no sleeping (the
    /// deterministic test mode); 1.0 paces batches at broadcast wall-clock
    /// time; e.g. 50.0 replays a 600 s race in 12 s.
    double speedup = 0.0;
    /// Fixed events per batch when > 0. Otherwise batch sizes are drawn
    /// uniformly from [1, max_batch] with `seed` — the randomized-batching
    /// axis of the differential matrix.
    uint64_t batch_rows = 0;
    uint64_t max_batch = 8;
    uint64_t seed = 1;
  };

  /// Running replay position, handed to the batch hook after every batch.
  struct Progress {
    uint64_t batches = 0;
    uint64_t events = 0;
    /// Begin time of the newest replayed event (the stream watermark).
    double watermark_sec = 0.0;
  };

  /// Runs after each batch of events has been stored (the host's pump hook:
  /// refresh snapshots, evaluate watches, checkpoint...). A non-OK return
  /// aborts the replay with that status.
  using BatchHook = std::function<Status(const Progress&)>;

  /// The one-argument form replays with default Options (defined out of
  /// line — a nested struct's member initializers are unavailable as an
  /// in-class default argument).
  explicit ReplayDriver(model::VideoCatalog* videos);
  ReplayDriver(model::VideoCatalog* videos, Options options);

  /// Replays every event of `timeline` into `video`, begin-sorted, batched
  /// and paced per Options, invoking `on_batch` after each stored batch.
  Result<Progress> Replay(model::VideoId video, const RaceTimeline& timeline,
                          const BatchHook& on_batch = nullptr);

 private:
  model::VideoCatalog* const videos_;
  const Options options_;
};

}  // namespace cobra::f1

#endif  // COBRA_F1_REPLAY_DRIVER_H_
