#include "f1/timeline.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "base/strings.h"
#include "f1/lexicon.h"

namespace cobra::f1 {
namespace {

constexpr double kStartTime = 25.0;
constexpr double kStartDuration = 8.0;
constexpr double kSemaphoreLead = 8.0;

/// Places `count` events of duration ~`dur` into [lo, hi] with at least
/// `sep` separation from everything already placed in `busy`.
std::vector<double> PlaceEvents(int count, double lo, double hi, double sep,
                                std::vector<std::pair<double, double>>& busy,
                                double dur, Rng& rng) {
  std::vector<double> begins;
  int attempts = 0;
  while (static_cast<int>(begins.size()) < count && attempts < count * 60) {
    ++attempts;
    const double b = rng.Uniform(lo, std::max(lo + 1.0, hi - dur));
    bool ok = true;
    for (const auto& [bb, be] : busy) {
      if (b < be + sep && bb < b + dur + sep) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    busy.emplace_back(b, b + dur);
    begins.push_back(b);
  }
  std::sort(begins.begin(), begins.end());
  return begins;
}

std::string PickDriver(Rng& rng) {
  const auto& names = DriverNames();
  return names[rng.UniformInt(names.size())];
}

}  // namespace

RaceProfile RaceProfile::GermanGp(double duration_sec) {
  RaceProfile p;
  p.name = "german-gp";
  p.duration_sec = duration_sec;
  p.seed = 20010729;  // 2001 German GP date
  p.camera_global_motion = 0.04;  // mostly static camera: passing cue works
  return p;
}

RaceProfile RaceProfile::BelgianGp(double duration_sec) {
  RaceProfile p;
  p.name = "belgian-gp";
  p.duration_sec = duration_sec;
  p.seed = 20010902;
  p.camera_global_motion = 0.65;  // frequent pans: motion cue swamped
  p.flyouts_per_minute = 0.40;
  return p;
}

RaceProfile RaceProfile::UsaGp(double duration_sec) {
  RaceProfile p;
  p.name = "usa-gp";
  p.duration_sec = duration_sec;
  p.seed = 20010930;
  p.camera_global_motion = 0.60;
  p.has_flyouts = false;  // "There were no fly-outs in the USA Grand Prix"
  return p;
}

std::vector<TimelineEvent> RaceTimeline::EventsOfType(
    const std::string& type) const {
  std::vector<TimelineEvent> out;
  for (const auto& e : events) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

const TimelineEvent* RaceTimeline::ActiveEvent(const std::string& type,
                                               double t) const {
  for (const auto& e : events) {
    if (e.type == type && e.Covers(t)) return &e;
  }
  return nullptr;
}

std::vector<TimelineEvent> RaceTimeline::Highlights() const {
  std::vector<TimelineEvent> out;
  for (const auto& e : events) {
    if (e.type == "start" || e.type == "flyout" || e.type == "passing" ||
        e.type == "replay") {
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.begin < b.begin;
            });
  return out;
}

RaceTimeline GenerateTimeline(const RaceProfile& profile) {
  COBRA_CHECK(profile.duration_sec >= 120.0)
      << "race must be at least two minutes";
  RaceTimeline timeline;
  timeline.profile = profile;
  Rng rng(profile.seed);

  auto add = [&timeline](std::string type, double begin, double end,
                         std::map<std::string, std::string> attrs = {}) {
    TimelineEvent e;
    e.type = std::move(type);
    e.begin = begin;
    e.end = end;
    e.attrs = std::move(attrs);
    timeline.events.push_back(std::move(e));
  };

  const double duration = profile.duration_sec;
  const double race_minutes = (duration - 60.0) / 60.0;

  // --- The start -----------------------------------------------------------
  // The gantry stays on screen through the opening seconds of the race, so
  // the semaphore cue overlaps the start event itself.
  add("semaphore", kStartTime - kSemaphoreLead, kStartTime + 4.0);
  add("start", kStartTime, kStartTime + kStartDuration,
      {{"driver", PickDriver(rng)}});

  std::vector<std::pair<double, double>> busy;
  busy.emplace_back(kStartTime - kSemaphoreLead,
                    kStartTime + kStartDuration + 10.0);

  // --- Domain events ---------------------------------------------------------
  const double lo = kStartTime + kStartDuration + 20.0;
  const double hi = duration - 30.0;

  const int num_passings = std::max(
      1, static_cast<int>(std::lround(profile.passings_per_minute *
                                      race_minutes)));
  const int num_flyouts =
      profile.has_flyouts
          ? std::max(1, static_cast<int>(std::lround(
                            profile.flyouts_per_minute * race_minutes)))
          : 0;
  const int num_pitstops = std::max(
      1, static_cast<int>(std::lround(profile.pitstops_per_minute *
                                      race_minutes)));

  struct Pending {
    std::string type;
    double begin;
    double dur;
    std::string driver;
  };
  std::vector<Pending> pending;
  for (double b : PlaceEvents(num_flyouts, lo, hi, 14.0, busy, 8.0, rng)) {
    pending.push_back({"flyout", b, rng.Uniform(6.5, 9.0), PickDriver(rng)});
  }
  for (double b : PlaceEvents(num_passings, lo, hi, 14.0, busy, 8.0, rng)) {
    pending.push_back({"passing", b, rng.Uniform(6.5, 9.5), PickDriver(rng)});
  }
  for (double b : PlaceEvents(num_pitstops, lo, hi, 14.0, busy, 10.0, rng)) {
    pending.push_back({"pitstop", b, 10.0, PickDriver(rng)});
  }
  for (const auto& p : pending) {
    add(p.type, p.begin, p.begin + p.dur, {{"driver", p.driver}});
  }

  // --- Replays ---------------------------------------------------------------
  // Fly-outs are always replayed; passings often; the start sometimes.
  std::vector<Pending> replay_sources;
  for (const auto& p : pending) {
    if (p.type == "flyout" ||
        (p.type == "passing" && rng.Bernoulli(0.6))) {
      replay_sources.push_back(p);
    }
  }
  for (const auto& src : replay_sources) {
    const double rb = src.begin + src.dur + rng.Uniform(4.0, 9.0);
    const double rd = rng.Uniform(6.0, 9.0);
    if (rb + rd > duration - 10.0) continue;
    bool ok = true;
    for (const auto& [bb, be] : busy) {
      if (rb < be && bb < rb + rd) {
        // Replays may not overlap other *events*; allow the gap after its
        // own source which we just reserved as busy.
        if (std::abs(bb - src.begin) > 1e-9) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    busy.emplace_back(rb, rb + rd);
    add("replay", rb, rb + rd,
        {{"source", src.type}, {"driver", src.driver}});
  }

  // --- Excited speech ----------------------------------------------------------
  // The start is always called with excitement; other highlights per
  // excited_coverage; plus spontaneous false excitement.
  std::vector<std::pair<double, double>> excited;
  excited.emplace_back(kStartTime, kStartTime + rng.Uniform(5.0, 8.0));
  for (const auto& p : pending) {
    if (p.type == "pitstop") continue;
    if (!rng.Bernoulli(profile.excited_coverage)) continue;
    excited.emplace_back(p.begin + rng.Uniform(0.0, 1.0),
                         p.begin + p.dur + rng.Uniform(0.5, 2.0));
  }
  const int num_false = static_cast<int>(
      std::lround(profile.false_excitement_per_minute * race_minutes));
  std::vector<std::pair<double, double>> busy_excited = busy;
  for (double b :
       PlaceEvents(num_false, lo, hi, 8.0, busy_excited, 4.0, rng)) {
    excited.emplace_back(b, b + rng.Uniform(3.0, 5.0));
  }
  std::sort(excited.begin(), excited.end());
  for (const auto& [b, e] : excited) {
    // Excitement intensity varies: a start or crash is called at full
    // volume, a routine overtake only with mild emphasis. Graded intensity
    // is what keeps excited-speech detection below 100%.
    add("excited", b, std::min(e, duration),
        {{"intensity", StrFormat("%.2f", rng.Uniform(0.50, 1.0))}});
  }

  // --- Commentary (speech activity + spoken words) -----------------------------
  auto is_excited_at = [&excited](double t) {
    for (const auto& [b, e] : excited) {
      if (t >= b && t < e) return true;
    }
    return false;
  };
  double t = 2.0;
  while (t < duration - 2.0) {
    const bool excited_now = is_excited_at(t);
    const double talk_len =
        excited_now ? rng.Uniform(6.0, 10.0) : rng.Uniform(4.0, 9.0);
    const double seg_end = std::min(t + talk_len, duration - 1.0);
    // Words: one per ~0.55 s of speech.
    std::vector<std::string> words;
    const int num_words = std::max(1, static_cast<int>((seg_end - t) / 0.55));
    for (int w = 0; w < num_words; ++w) {
      const double word_time = t + (seg_end - t) * w / num_words;
      const bool exc = is_excited_at(word_time);
      const double keyword_p = exc ? 0.45 : 0.05;
      if (rng.Bernoulli(keyword_p)) {
        const auto& kw = ExcitedKeywords();
        words.push_back(kw[rng.UniformInt(kw.size())]);
      } else if (rng.Bernoulli(0.12)) {
        words.push_back(PickDriver(rng));
      } else {
        const auto& neutral = NeutralWords();
        words.push_back(neutral[rng.UniformInt(neutral.size())]);
      }
    }
    add("commentary", t, seg_end,
        {{"words", StrJoin(words, " ")},
         {"excited", excited_now ? "1" : "0"}});
    // Pause: short when the announcer is excited.
    const double pause =
        excited_now ? rng.Uniform(0.2, 0.8) : rng.Uniform(1.2, 4.0);
    t = seg_end + pause;
  }

  // --- Captions ---------------------------------------------------------------
  for (const auto& p : pending) {
    if (p.type == "pitstop") {
      add("caption", p.begin + 1.0, p.begin + p.dur - 1.0,
          {{"text", "PIT STOP " + p.driver}, {"driver", p.driver},
           {"kind", "pitstop"}});
    } else if (p.type == "flyout") {
      add("caption", p.begin + p.dur, p.begin + p.dur + 3.0,
          {{"text", p.driver + " OUT"}, {"driver", p.driver},
           {"kind", "retired"}});
    }
  }
  // Periodic leader boards.
  for (double ct = 60.0; ct < duration - 40.0; ct += rng.Uniform(60.0, 90.0)) {
    const std::string leader = PickDriver(rng);
    add("caption", ct, ct + 3.5,
        {{"text", "LEADER " + leader}, {"driver", leader},
         {"kind", "classification"}});
  }
  // Final lap and winner.
  const std::string winner = PickDriver(rng);
  add("caption", duration - 35.0, duration - 31.0,
      {{"text", "FINAL LAP"}, {"kind", "finallap"}});
  add("caption", duration - 8.0, duration - 3.0,
      {{"text", "WINNER " + winner}, {"driver", winner}, {"kind", "winner"}});

  std::sort(timeline.events.begin(), timeline.events.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.begin < b.begin;
            });
  return timeline;
}

}  // namespace cobra::f1
