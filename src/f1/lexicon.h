#ifndef COBRA_F1_LEXICON_H_
#define COBRA_F1_LEXICON_H_

#include <string>
#include <vector>

namespace cobra::f1 {

/// Driver surnames of the 2001 season used for captions and queries.
const std::vector<std::string>& DriverNames();

/// Informative caption words (PIT STOP, FINAL LAP, WINNER, ...). Multi-word
/// captions are stored as separate tokens; the renderer draws them with
/// spaces and the recognizer matches per word region.
const std::vector<std::string>& CaptionWords();

/// The "couple of tens of words that can usually be heard when the
/// commentator is excited" — the keyword-spotting vocabulary.
const std::vector<std::string>& ExcitedKeywords();

/// Neutral commentary filler words (not in the keyword grammar).
const std::vector<std::string>& NeutralWords();

/// Full recognizer vocabulary: driver names + caption words.
std::vector<std::string> CaptionVocabulary();

}  // namespace cobra::f1

#endif  // COBRA_F1_LEXICON_H_
