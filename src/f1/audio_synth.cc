#include "f1/audio_synth.h"

#include <cmath>
#include <cstdlib>

#include "base/logging.h"
#include "base/rng.h"

namespace cobra::f1 {
namespace {

uint64_t HashClip(uint64_t seed, uint64_t clip) {
  uint64_t x = seed ^ (clip * 0x9E3779B97F4A7C15ull);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

}  // namespace

AudioSynthesizer::AudioSynthesizer(const RaceTimeline& timeline,
                                   const Options& options)
    : options_(options), seed_(timeline.profile.seed ^ 0xA0D10ull) {
  const size_t num_clips = timeline.NumClips();
  speech_.assign(num_clips, 0);
  excited_.assign(num_clips, 0);
  intensity_.assign(num_clips, 0.0);
  car_level_.assign(num_clips, 1.0);
  phone_.assign(num_clips, -1);

  Rng seg_rng(seed_ ^ 0xCAFEull);
  for (const auto& e : timeline.events) {
    const size_t first = static_cast<size_t>(std::max(0.0, e.begin) * 10.0);
    const size_t last = std::min(
        num_clips, static_cast<size_t>(std::max(0.0, e.end) * 10.0));
    if (e.type == "commentary") {
      // Occasionally the announcer is merely animated — raised effort
      // without being genuinely excited. These segments are the natural
      // false-positive source for excited-speech detection.
      const bool animated =
          e.attrs.count("excited") != 0 && e.attrs.at("excited") == "0" &&
          seg_rng.Bernoulli(0.18);
      const double animated_intensity =
          animated ? seg_rng.Uniform(0.28, 0.52) : 0.0;
      for (size_t c = first; c < last; ++c) {
        speech_[c] = 1;
        intensity_[c] = std::max(intensity_[c], animated_intensity);
      }
      // Map the spoken words onto clips: one phone per clip, one clip of
      // gap between words.
      auto words_it = e.attrs.find("words");
      if (words_it != e.attrs.end()) {
        size_t clip = first;
        for (const char ch : words_it->second) {
          if (clip >= last) break;
          const int phone = kws::PhoneOf(ch);
          if (phone < 0) {
            // Word separator: one silent-phone clip (still speech audio).
            phone_[clip++] = -1;
            continue;
          }
          phone_[clip++] = phone;
        }
      }
    } else if (e.type == "excited") {
      double intensity = 1.0;
      auto it = e.attrs.find("intensity");
      if (it != e.attrs.end()) intensity = std::atof(it->second.c_str());
      for (size_t c = first; c < last; ++c) {
        excited_[c] = 1;
        intensity_[c] = std::max(intensity_[c], intensity);
      }
    } else if (e.type == "start" || e.type == "passing") {
      for (size_t c = first; c < last; ++c) car_level_[c] = 2.2;
    } else if (e.type == "flyout") {
      for (size_t c = first; c < last; ++c) car_level_[c] = 1.8;
    }
  }
}

std::vector<double> AudioSynthesizer::SynthesizeClip(size_t clip) const {
  COBRA_CHECK(clip < speech_.size());
  const size_t n = options_.format.ClipSamples();
  const double rate = options_.format.sample_rate;
  const size_t frame_len = options_.format.FrameSamples();
  std::vector<double> out(n, 0.0);

  Rng rng(HashClip(seed_, clip));
  const bool speech = speech_[clip] != 0;
  const bool excited = excited_[clip] != 0;
  const double t0 = static_cast<double>(clip) * 0.1;

  // --- Background: engine hiss + low rumble + crowd ------------------------
  // Engine load fluctuates clip to clip (rev-ups, Doppler as cars pass the
  // microphone); occasional crowd bursts spike the broadband level. This
  // clip-level variability is what makes single-clip classification
  // ambiguous and temporal fusion worthwhile.
  double level = car_level_[clip] * rng.Uniform(0.6, 1.8);
  if (rng.Bernoulli(0.03)) level *= 2.5;  // crowd roar / close fly-by
  const double noise_amp = options_.noise_amplitude * level;
  const double rumble_f = 52.0 + 6.0 * std::sin(t0 * 0.13);
  const double rumble_amp = options_.rumble_amplitude * level;
  for (size_t i = 0; i < n; ++i) {
    const double t = t0 + static_cast<double>(i) / rate;
    out[i] = noise_amp * (rng.Uniform() * 2.0 - 1.0) +
             rumble_amp * std::sin(2.0 * M_PI * rumble_f * t);
  }
  if (options_.engine_tone_amplitude > 0.0) {
    const double tone_amp = options_.engine_tone_amplitude * level;
    const double tone_f =
        options_.engine_tone_hz * (1.0 + 0.08 * std::sin(t0 * 0.5));
    for (size_t i = 0; i < n; ++i) {
      const double t = t0 + static_cast<double>(i) / rate;
      for (int k = 1; k <= 4; ++k) {
        out[i] += tone_amp / k * std::sin(2.0 * M_PI * tone_f * k * t + k);
      }
    }
  }

  if (!speech) return out;

  // --- Announcer speech -------------------------------------------------------
  // Vocal effort interpolates between calm commentary and full excitement.
  const double intensity = intensity_[clip];
  (void)excited;
  const double base_pitch =
      options_.normal_pitch_hz +
      intensity * (options_.excited_pitch_hz - options_.normal_pitch_hz);
  // Slow prosodic drift plus substantial per-clip jitter: prosody varies
  // word to word, so individual clips of calm and excited speech overlap.
  const double f0 = base_pitch * (1.0 + 0.06 * std::sin(t0 * 0.9)) +
                    rng.Gaussian(0.0, base_pitch * 0.12);
  const double amp =
      (options_.normal_amplitude +
       intensity * (options_.excited_amplitude - options_.normal_amplitude)) *
      std::exp(rng.Gaussian(0.0, 0.45));
  const double micro_pause =
      options_.normal_micro_pause +
      intensity *
          (options_.excited_micro_pause - options_.normal_micro_pause);

  // Per-frame voicing decision (micro pauses lower the pause-rate feature
  // for excited speech).
  const size_t frames = n / frame_len;
  std::vector<uint8_t> voiced(frames, 1);
  for (size_t f = 0; f < frames; ++f) {
    if (rng.Bernoulli(micro_pause)) voiced[f] = 0;
  }

  constexpr int kHarmonics = 16;
  double harmonic_amp[kHarmonics];
  double harmonic_phase[kHarmonics];
  for (int k = 0; k < kHarmonics; ++k) {
    harmonic_amp[k] = amp / static_cast<double>(k + 1);
    // Deterministic phases tied to absolute time keep the waveform roughly
    // continuous across clip boundaries.
    harmonic_phase[k] = 0.35 * k;
  }
  const double syllable_rate = 3.5 + 1.5 * intensity;
  for (size_t i = 0; i < n; ++i) {
    const size_t f = std::min(frames - 1, i / frame_len);
    if (voiced[f] == 0) continue;
    const double t = t0 + static_cast<double>(i) / rate;
    // Syllable amplitude modulation.
    const double syl =
        0.55 + 0.45 * std::sin(2.0 * M_PI * syllable_rate * t);
    double s = 0.0;
    for (int k = 0; k < kHarmonics; ++k) {
      const double freq = f0 * (k + 1);
      if (freq > 3000.0) break;
      s += harmonic_amp[k] * std::sin(2.0 * M_PI * freq * t +
                                      harmonic_phase[k]);
    }
    out[i] += syl * s;
  }
  return out;
}

std::vector<kws::PhoneToken> AudioSynthesizer::PhoneStream() const {
  std::vector<kws::PhoneToken> stream;
  stream.reserve(phone_.size());
  Rng rng(seed_ ^ 0x5EEDull);
  for (size_t clip = 0; clip < phone_.size(); ++clip) {
    kws::PhoneToken tok;
    tok.time_sec = static_cast<double>(clip) * 0.1;
    tok.phone = phone_[clip];
    if (tok.phone >= 0) {
      if (rng.Bernoulli(options_.phone_substitution_prob)) {
        tok.phone = static_cast<int>(rng.UniformInt(26u));
      }
      tok.confidence = 0.72 + 0.26 * rng.Uniform();
    }
    stream.push_back(tok);
  }
  return stream;
}

}  // namespace cobra::f1
