#include "f1/lexicon.h"

namespace cobra::f1 {

const std::vector<std::string>& DriverNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{
          "SCHUMACHER", "BARRICHELLO", "HAKKINEN", "COULTHARD", "MONTOYA",
          "RALF",       "VILLENEUVE",  "TRULLI",   "FISICHELLA", "ALESI",
          "IRVINE",     "FRENTZEN",    "PANIS",    "BUTTON",     "RAIKKONEN",
          "HEIDFELD",
      };
  return *kNames;
}

const std::vector<std::string>& CaptionWords() {
  static const std::vector<std::string>* const kWords =
      new std::vector<std::string>{
          "PIT",  "STOP", "FINAL", "LAP", "WINNER", "CLASSIFICATION",
          "FASTEST", "SPEED", "ORDER", "LEADER", "OUT", "RETIRED",
      };
  return *kWords;
}

const std::vector<std::string>& ExcitedKeywords() {
  static const std::vector<std::string>* const kWords =
      new std::vector<std::string>{
          "INCREDIBLE", "CRASH",   "SPIN",     "OVERTAKE", "PASSES",
          "GRAVEL",     "LEADS",   "ATTACK",   "AMAZING",  "DISASTER",
          "CONTACT",    "FANTASTIC", "UNBELIEVABLE", "GOES", "WIDE",
          "BRILLIANT",  "TROUBLE", "PRESSURE", "FIGHT",    "WOW",
      };
  return *kWords;
}

const std::vector<std::string>& NeutralWords() {
  static const std::vector<std::string>* const kWords =
      new std::vector<std::string>{
          "THE",   "CAR",    "TYRES", "ENGINE", "SECTOR", "TIME",
          "GAP",   "SECOND", "TEAM",  "RACE",   "TRACK",  "CORNER",
          "STRAIGHT", "BOX", "FUEL",  "STRATEGY",
      };
  return *kWords;
}

std::vector<std::string> CaptionVocabulary() {
  std::vector<std::string> vocab = DriverNames();
  const auto& words = CaptionWords();
  vocab.insert(vocab.end(), words.begin(), words.end());
  return vocab;
}

}  // namespace cobra::f1
