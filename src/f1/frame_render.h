#ifndef COBRA_F1_FRAME_RENDER_H_
#define COBRA_F1_FRAME_RENDER_H_

#include <vector>

#include "f1/timeline.h"
#include "image/frame.h"

namespace cobra::f1 {

/// Renders the television picture of a race at any time instant from the
/// ground-truth timeline. The scene model is deliberately broadcast-shaped
/// rather than photo-realistic: what matters is that every visual cue the
/// paper's analyzers rely on is produced by the *renderer* and then
/// re-detected by the *analyzers* over a noisy raster — shot cuts (palette
/// changes), global camera pan (the per-race camera-work difference),
/// moving cars (motion histogram), the growing red start-light gantry,
/// sand/dust at fly-outs, DVE wipe stripes bracketing replays, and shaded
/// caption bands with bitmap-font text.
class FrameRenderer {
 public:
  struct Options {
    /// Working resolution. The paper digitized quarter-PAL 384x288; the
    /// default here is two thirds of that for speed — all analyzers are
    /// resolution-relative and captions render at a recognizable scale.
    int width = 256;
    int height = 192;
    double fps = 25.0;
    double pixel_noise_stddev = 1.2;
    /// Seconds of DVE wipe before a replay boundary.
    double dve_duration = 0.48;
  };

  FrameRenderer(const RaceTimeline& timeline, const Options& options);
  explicit FrameRenderer(const RaceTimeline& timeline)
      : FrameRenderer(timeline, Options()) {}

  /// Renders the frame at absolute race time `t_sec`.
  image::Frame Render(double t_sec) const;

  const Options& options() const { return options_; }

 private:
  struct Shot {
    double begin = 0.0;
    uint64_t style = 0;  // hashed palette / layout selector
  };

  const Shot& ShotAt(double t) const;
  void DrawBackground(image::Frame& frame, double t, const Shot& shot) const;
  void DrawCars(image::Frame& frame, double t, const Shot& shot) const;
  void DrawSemaphore(image::Frame& frame, double t,
                     const TimelineEvent& sem) const;
  void DrawFlyout(image::Frame& frame, double t,
                  const TimelineEvent& flyout) const;
  void DrawDve(image::Frame& frame, double phase) const;
  void DrawCaption(image::Frame& frame, const TimelineEvent& caption) const;

  Options options_;
  const RaceTimeline* timeline_;
  uint64_t seed_;
  double pan_fraction_;
  std::vector<Shot> shots_;
};

}  // namespace cobra::f1

#endif  // COBRA_F1_FRAME_RENDER_H_
