#include "f1/frame_render.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "base/rng.h"
#include "f1/lexicon.h"
#include "image/draw.h"
#include "image/font.h"

namespace cobra::f1 {
namespace {

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b * 0x9E3779B97F4A7C15ull);
  x ^= x >> 31;
  x *= 0xD6E8FEB86659FD93ull;
  x ^= x >> 32;
  return x;
}

image::Rgb DriverColor(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (char c : name) h = (h ^ static_cast<uint64_t>(c)) * 1099511628211ull;
  return image::Rgb{static_cast<uint8_t>(64 + (h & 0x7F)),
                    static_cast<uint8_t>(64 + ((h >> 8) & 0x7F)),
                    static_cast<uint8_t>(64 + ((h >> 16) & 0x7F))};
}

constexpr image::Rgb kSandColor{200, 160, 90};
constexpr image::Rgb kDustColor{188, 168, 138};

}  // namespace

FrameRenderer::FrameRenderer(const RaceTimeline& timeline,
                             const Options& options)
    : options_(options), timeline_(&timeline),
      seed_(timeline.profile.seed ^ 0xF1F1ull) {
  pan_fraction_ = timeline.profile.camera_global_motion;
  // Pre-compute shot boundaries: cuts every 4–10 s, plus forced cuts at
  // replay boundaries.
  Rng rng(seed_);
  double t = 0.0;
  while (t < timeline.profile.duration_sec) {
    shots_.push_back(Shot{t, rng.NextU64()});
    t += rng.Uniform(4.0, 10.0);
  }
}

const FrameRenderer::Shot& FrameRenderer::ShotAt(double t) const {
  // Binary search for the last shot beginning <= t.
  size_t lo = 0, hi = shots_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (shots_[mid].begin <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return shots_[lo];
}

void FrameRenderer::DrawBackground(image::Frame& frame, double t,
                                   const Shot& shot) const {
  // Palette per shot.
  const uint8_t base = static_cast<uint8_t>(90 + (shot.style & 0x3F));
  const uint8_t stripe = static_cast<uint8_t>(base + 40);
  const int period = 16 + static_cast<int>((shot.style >> 8) & 0x7);
  // Per-shot camera pan shifts the stripe pattern — the per-race
  // camera-work knob. A panning shot leaks uniform motion into every block
  // of the motion histogram.
  // The director cuts to a static close-up when two cars battle, so the
  // passing event itself is never filmed panning.
  const bool panning = ((shot.style >> 17) % 100) <
                           static_cast<uint64_t>(pan_fraction_ * 100.0) &&
                       timeline_->ActiveEvent("passing", t) == nullptr;
  const int pan =
      panning ? static_cast<int>((t - shot.begin) * 95.0) : 0;
  for (int y = 0; y < frame.height(); ++y) {
    // Track band in the middle, grass/crowd bands above and below.
    const bool track = y > frame.height() / 3 && y < 5 * frame.height() / 6;
    for (int x = 0; x < frame.width(); ++x) {
      uint8_t v;
      if (track) {
        v = (((x + pan) / period) % 2 == 0) ? base : stripe;
      } else {
        v = static_cast<uint8_t>(base - 30 + ((x * 7 + y * 13) % 9));
      }
      frame.Set(x, y, image::Rgb{v, v, v});
    }
  }
}

void FrameRenderer::DrawCars(image::Frame& frame, double t,
                             const Shot& shot) const {
  const TimelineEvent* passing = timeline_->ActiveEvent("passing", t);
  const TimelineEvent* start = timeline_->ActiveEvent("start", t);
  const int w = frame.width();
  const int h = frame.height();
  const int car_w = std::max(12, w / 9);
  const int car_h = std::max(7, h / 12);
  const int track_y = h / 2;

  auto draw_car = [&](double x, int y, image::Rgb color) {
    const int xi = static_cast<int>(x);
    image::FillRect(frame, xi, y, car_w, car_h, color);
    image::FillRect(frame, xi + 1, y + car_h - 2, 3, 2,
                    image::Rgb{20, 20, 20});
    image::FillRect(frame, xi + car_w - 4, y + car_h - 2, 3, 2,
                    image::Rgb{20, 20, 20});
  };

  if (passing != nullptr) {
    // Two cars fighting for position: the attacker repeatedly lunges past
    // — strong, fast, localized motion against the background.
    const double cycle = std::fmod(t - passing->begin, 1.2) / 1.2;
    const double x_front = w * 0.55 + 22.0 * std::sin(t * 4.0);
    const double x_back = w * 0.02 + cycle * (w * 0.92);
    const image::Rgb bright{238, 238, 238};
    const int big_w = car_w * 5 / 4;
    const int big_h = car_h * 5 / 4;
    draw_car(x_front, track_y, DriverColor("FRONT"));
    image::FillRect(frame, static_cast<int>(x_back), track_y + car_h + 3,
                    big_w, big_h, bright);
    return;
  }
  if (start != nullptr) {
    // Field accelerating away: several cars moving quickly.
    const double phase = t - start->begin;
    for (int c = 0; c < 4; ++c) {
      const double x =
          w * 0.1 + c * car_w * 1.4 + phase * (60.0 + 18.0 * c);
      if (x < w) draw_car(x, track_y + (c % 2) * (car_h + 2),
                          DriverColor(DriverNames()[c]));
    }
    return;
  }
  // Regular racing: cars in about half the shots, cruising through.
  if ((shot.style & 1) != 0) {
    const double speed = 14.0 + static_cast<double>((shot.style >> 4) & 0xF);
    const double x = std::fmod((t - shot.begin) * speed, w + 2.0 * car_w) -
                     car_w;
    draw_car(x, track_y, DriverColor(DriverNames()[shot.style % 8]));
  }
}

void FrameRenderer::DrawSemaphore(image::Frame& frame, double t,
                                  const TimelineEvent& sem) const {
  // The gantry: a row of touching red lights whose lit extent grows in
  // regular steps — a rectangle increasing its horizontal dimension. The
  // bank is fully lit by the time the field is released and stays visible
  // through the first race seconds.
  const double grow_span = std::max(0.5, sem.end - sem.begin - 2.5);
  const double phase = (t - sem.begin) / grow_span;
  const int lights =
      1 + std::min(4, static_cast<int>(std::min(1.0, phase) * 5.0));
  const int light_w = std::max(4, frame.width() / 24);
  const int light_h = std::max(4, frame.height() / 18);
  const int x0 = frame.width() / 2 - (5 * light_w) / 2;
  const int y0 = frame.height() / 8;
  image::FillRect(frame, x0 - 2, y0 - 2, 5 * light_w + 4, light_h + 4,
                  image::Rgb{25, 25, 25});
  for (int l = 0; l < lights; ++l) {
    image::FillRect(frame, x0 + l * light_w, y0, light_w, light_h,
                    image::Rgb{225, 30, 28});
  }
}

void FrameRenderer::DrawFlyout(image::Frame& frame, double t,
                               const TimelineEvent& flyout) const {
  const double phase =
      (t - flyout.begin) / std::max(0.1, flyout.end - flyout.begin);
  // Gravel trap at the bottom third plus a billowing dust cloud: the cloud
  // erupts quickly, hangs, then settles over the last fifth of the event.
  const double intensity =
      std::min({1.0, phase * 5.0, (1.0 - phase) * 5.0});
  const int sand_h = static_cast<int>(frame.height() * 0.22 * intensity) + 4;
  image::FillRect(frame, 0, 2 * frame.height() / 3, frame.width(), sand_h,
                  kSandColor);
  const int dust_w = static_cast<int>(frame.width() * 0.5 * intensity) + 8;
  const int dust_h = static_cast<int>(frame.height() * 0.3 * intensity) + 6;
  const int cx = frame.width() / 2 + static_cast<int>(20.0 * std::sin(t * 3));
  image::BlendRect(frame, cx - dust_w / 2, frame.height() / 3, dust_w, dust_h,
                   kDustColor, 0.85);
  // The spinning car.
  const int car_w = std::max(10, frame.width() / 12);
  const int car_h = std::max(5, frame.height() / 18);
  const int x = cx + static_cast<int>(15.0 * std::cos(t * 7.0));
  const int y = frame.height() / 2 + static_cast<int>(8.0 * std::sin(t * 9.0));
  image::FillRect(frame, x, y, car_w, car_h,
                  DriverColor(flyout.attrs.count("driver")
                                  ? flyout.attrs.at("driver")
                                  : "X"));
}

void FrameRenderer::DrawDve(image::Frame& frame, double phase) const {
  // A bright vertical stripe sweeping left to right.
  const int stripe_w = std::max(6, frame.width() / 10);
  const int x = static_cast<int>(phase * (frame.width() + stripe_w)) -
                stripe_w;
  image::FillRect(frame, x, 0, stripe_w, frame.height(),
                  image::Rgb{240, 240, 250});
}

void FrameRenderer::DrawCaption(image::Frame& frame,
                                const TimelineEvent& caption) const {
  const auto& font = image::BitmapFont::Get();
  const int band_h = frame.height() / 5;
  const int band_y = frame.height() - band_h;
  image::BlendRect(frame, 0, band_y, frame.width(), band_h,
                   image::Rgb{8, 8, 24}, 0.82);
  auto it = caption.attrs.find("text");
  if (it == caption.attrs.end()) return;
  const int scale = std::max(1, frame.height() / 80);
  const int text_w = font.TextWidth(it->second, scale);
  const int x = std::max(2, (frame.width() - text_w) / 2);
  const int y = band_y + (band_h - image::BitmapFont::kGlyphHeight * scale) / 2;
  font.Draw(frame, it->second, x, y, scale, image::Rgb{250, 245, 120});
}

image::Frame FrameRenderer::Render(double t_sec) const {
  image::Frame frame(options_.width, options_.height);
  const TimelineEvent* replay = timeline_->ActiveEvent("replay", t_sec);

  // Replays show their own (time-shifted) action footage.
  const double scene_t = replay != nullptr
                             ? t_sec - replay->begin + 1000.0
                             : t_sec;
  const Shot& shot = ShotAt(t_sec);
  DrawBackground(frame, scene_t, shot);
  DrawCars(frame, scene_t, shot);

  const TimelineEvent* sem = timeline_->ActiveEvent("semaphore", t_sec);
  if (sem != nullptr) DrawSemaphore(frame, t_sec, *sem);

  const TimelineEvent* flyout = timeline_->ActiveEvent("flyout", t_sec);
  if (flyout != nullptr) DrawFlyout(frame, t_sec, *flyout);

  // DVE wipes bracketing replay segments.
  for (const auto& e : timeline_->events) {
    if (e.type != "replay") continue;
    const double d = options_.dve_duration;
    if (t_sec >= e.begin - d && t_sec < e.begin) {
      DrawDve(frame, (t_sec - (e.begin - d)) / d);
    } else if (t_sec >= e.end - d && t_sec < e.end) {
      DrawDve(frame, (t_sec - (e.end - d)) / d);
    }
  }

  const TimelineEvent* caption = timeline_->ActiveEvent("caption", t_sec);
  if (caption != nullptr) DrawCaption(frame, *caption);

  // Sensor noise, seeded per frame index so consecutive frames differ. A
  // cheap LCG keeps rendering fast enough to stream whole races (a
  // Box–Muller draw per channel would dominate the pipeline).
  const uint64_t frame_index =
      static_cast<uint64_t>(t_sec * options_.fps + 0.5);
  uint64_t state = Mix(seed_, frame_index) | 1ull;
  const int spread =
      std::max(1, static_cast<int>(options_.pixel_noise_stddev * 3.0));
  auto& data = frame.mutable_data();
  for (uint8_t& byte : data) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const int delta = static_cast<int>((state >> 33) % (2 * spread + 1)) -
                      spread;
    byte = static_cast<uint8_t>(std::clamp(byte + delta, 0, 255));
  }
  return frame;
}

}  // namespace cobra::f1
