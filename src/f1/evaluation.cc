#include "f1/evaluation.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace cobra::f1 {

std::vector<Segment> ExtractSegments(const std::vector<double>& posterior,
                                     double threshold,
                                     double min_duration_sec, double clip_sec,
                                     double merge_gap_sec) {
  std::vector<Segment> raw;
  int run_start = -1;
  for (size_t t = 0; t <= posterior.size(); ++t) {
    const bool on = t < posterior.size() && posterior[t] >= threshold;
    if (on && run_start < 0) run_start = static_cast<int>(t);
    if (!on && run_start >= 0) {
      raw.push_back(Segment{run_start * clip_sec, t * clip_sec});
      run_start = -1;
    }
  }
  // Merge nearby runs.
  std::vector<Segment> merged;
  for (const auto& seg : raw) {
    if (!merged.empty() && seg.begin - merged.back().end <= merge_gap_sec) {
      merged.back().end = seg.end;
    } else {
      merged.push_back(seg);
    }
  }
  // Duration filter.
  std::vector<Segment> out;
  for (const auto& seg : merged) {
    if (seg.Duration() >= min_duration_sec) out.push_back(seg);
  }
  return out;
}

std::vector<double> AccumulateOverTime(const std::vector<double>& series,
                                       size_t window) {
  COBRA_CHECK(window >= 1);
  std::vector<double> out(series.size(), 0.0);
  double acc = 0.0;
  for (size_t t = 0; t < series.size(); ++t) {
    acc += series[t];
    if (t >= window) acc -= series[t - window];
    out[t] = acc / static_cast<double>(std::min(t + 1, window));
  }
  return out;
}

double AdaptiveThreshold(const std::vector<double>& series, double k,
                         double lo, double hi) {
  if (series.empty()) return hi;
  double mean = 0.0;
  for (double v : series) mean += v;
  mean /= static_cast<double>(series.size());
  double var = 0.0;
  for (double v : series) var += (v - mean) * (v - mean);
  var /= static_cast<double>(series.size());
  return std::clamp(mean + k * std::sqrt(var), lo, hi);
}

namespace {

/// A detection matches a truth interval when their overlap is long enough
/// in absolute terms AND constitutes a meaningful fraction of the
/// detection. The fraction test keeps a degenerate race-long detection
/// (e.g. a saturated Highlight posterior on a panning-camera race) from
/// "matching" everything.
bool Matches(const Segment& d, const Segment& t, double min_overlap_sec) {
  const double overlap = std::min(d.end, t.end) - std::max(d.begin, t.begin);
  const double needed =
      std::min(min_overlap_sec, 0.5 * std::min(d.Duration(), t.Duration()));
  return overlap >= needed && overlap >= 0.15 * d.Duration();
}

}  // namespace

PrecisionRecall ScoreSegments(const std::vector<Segment>& detected,
                              const std::vector<Segment>& truth,
                              double min_overlap_sec) {
  PrecisionRecall pr;
  pr.num_detections = static_cast<int>(detected.size());
  pr.num_truth = static_cast<int>(truth.size());
  for (const auto& d : detected) {
    for (const auto& t : truth) {
      if (Matches(d, t, min_overlap_sec)) {
        ++pr.true_positives;
        break;
      }
    }
  }
  for (const auto& t : truth) {
    for (const auto& d : detected) {
      if (Matches(d, t, min_overlap_sec)) {
        ++pr.covered_truth;
        break;
      }
    }
  }
  pr.precision = pr.num_detections > 0
                     ? static_cast<double>(pr.true_positives) /
                           pr.num_detections
                     : 0.0;
  pr.recall = pr.num_truth > 0
                  ? static_cast<double>(pr.covered_truth) / pr.num_truth
                  : 0.0;
  return pr;
}

std::vector<Segment> TruthSegments(const RaceTimeline& timeline,
                                   const std::string& type) {
  std::vector<Segment> out;
  for (const auto& e : timeline.EventsOfType(type)) {
    out.push_back(Segment{e.begin, e.end});
  }
  return out;
}

std::vector<Segment> HighlightSegments(const RaceTimeline& timeline) {
  std::vector<Segment> out;
  for (const auto& e : timeline.Highlights()) {
    out.push_back(Segment{e.begin, e.end});
  }
  return out;
}

std::vector<TypedSegment> ClassifySubEvents(
    const Segment& highlight,
    const std::map<std::string, const std::vector<double>*>& node_posteriors,
    double clip_sec, double long_segment_sec, double window_sec,
    double min_posterior) {
  std::vector<TypedSegment> out;
  const double duration = highlight.Duration();
  const double step = duration > long_segment_sec ? window_sec : duration;
  for (double w = highlight.begin; w < highlight.end - 1e-9; w += step) {
    const double w_end = std::min(highlight.end, w + step);
    const size_t c0 = static_cast<size_t>(w / clip_sec);
    const size_t c1 = static_cast<size_t>(w_end / clip_sec);
    std::string best_type;
    double best_mean = min_posterior;
    for (const auto& [type, series] : node_posteriors) {
      if (series == nullptr || series->empty()) continue;
      double acc = 0.0;
      size_t count = 0;
      for (size_t c = c0; c < std::min(c1, series->size()); ++c) {
        acc += (*series)[c];
        ++count;
      }
      if (count == 0) continue;
      const double mean = acc / static_cast<double>(count);
      if (mean > best_mean) {
        best_mean = mean;
        best_type = type;
      }
    }
    if (!best_type.empty()) {
      // Merge consecutive windows of the same type.
      if (!out.empty() && out.back().type == best_type &&
          std::abs(out.back().span.end - w) < 1e-9) {
        out.back().span.end = w_end;
      } else {
        out.push_back(TypedSegment{best_type, Segment{w, w_end}});
      }
    }
  }
  return out;
}

}  // namespace cobra::f1
