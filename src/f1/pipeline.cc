#include "f1/pipeline.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "base/rng.h"
#include "base/strings.h"
#include "f1/lexicon.h"
#include "rules/engine.h"
#include "text/text_detect.h"
#include "text/text_recognize.h"

namespace cobra::f1 {
namespace {

/// Slices [0, train_window) clips out of the race evidence.
size_t TrainClips(const RaceEvidence& evidence, double window_sec) {
  return std::min(evidence.clips.size(),
                  static_cast<size_t>(window_sec * 10.0));
}

/// The per-clip replay cue as a plain series.
std::vector<double> ReplaySeries(const RaceEvidence& evidence) {
  std::vector<double> out;
  out.reserve(evidence.clips.size());
  for (const auto& clip : evidence.clips) out.push_back(clip.replay);
  return out;
}

}  // namespace

Result<bayes::BayesianNetwork> TrainAudioBn(AudioStructure structure,
                                            const RaceEvidence& train,
                                            const TrainingOptions& options) {
  bayes::BayesianNetwork net = BuildAudioSlice(structure);
  Rng rng(options.seed);
  InitializeForEm(net, rng);
  std::vector<bayes::Evidence> samples;
  const size_t n = TrainClips(train, options.train_window_sec);
  samples.reserve(n);
  for (size_t c = 0; c < n; ++c) {
    samples.push_back(
        MakeAudioEvidence(net, train.clips[c], options.supervised));
  }
  bayes::BayesianNetwork::EmOptions em;
  em.max_iterations = options.em_iterations;
  COBRA_ASSIGN_OR_RETURN(double ll, net.TrainEm(samples, em));
  (void)ll;
  return net;
}

Result<bayes::DynamicBayesianNetwork> TrainAudioDbn(
    AudioStructure structure, TemporalScheme scheme,
    const RaceEvidence& train, const TrainingOptions& options) {
  COBRA_ASSIGN_OR_RETURN(bayes::DynamicBayesianNetwork dbn,
                         BuildAudioDbn(structure, scheme));
  Rng rng(options.seed);
  InitializeForEm(dbn, rng);
  // The 300 s training window divided into 25 s segments (12 sequences).
  const size_t n = TrainClips(train, options.train_window_sec);
  const size_t seg = static_cast<size_t>(options.dbn_segment_sec * 10.0);
  std::vector<std::vector<bayes::Evidence>> sequences;
  for (size_t begin = 0; begin + seg <= n; begin += seg) {
    std::vector<bayes::Evidence> sequence;
    sequence.reserve(seg);
    for (size_t c = begin; c < begin + seg; ++c) {
      sequence.push_back(MakeAudioEvidence(dbn.slice(), train.clips[c],
                                           options.supervised));
    }
    sequences.push_back(std::move(sequence));
  }
  if (sequences.empty()) {
    return Status::InvalidArgument("training window shorter than a segment");
  }
  bayes::DynamicBayesianNetwork::EmOptions em;
  em.max_iterations = options.em_iterations;
  COBRA_ASSIGN_OR_RETURN(double ll, dbn.TrainEm(sequences, em));
  (void)ll;
  return dbn;
}

Result<std::vector<double>> InferAudioBnSeries(
    const bayes::BayesianNetwork& net, const RaceEvidence& evidence) {
  const bayes::NodeId ea = net.FindNode(kExcitedAnnouncer);
  if (ea < 0) return Status::InvalidArgument("network has no EA node");
  std::vector<double> out;
  out.reserve(evidence.clips.size());
  for (const auto& clip : evidence.clips) {
    COBRA_ASSIGN_OR_RETURN(
        auto posterior, net.Posterior(ea, MakeAudioEvidence(net, clip)));
    out.push_back(posterior[1]);
  }
  return out;
}

Result<std::vector<double>> InferAudioDbnSeries(
    const bayes::DynamicBayesianNetwork& dbn, const RaceEvidence& evidence,
    const bayes::DynamicBayesianNetwork::Clusters& clusters) {
  const bayes::NodeId ea = dbn.slice().FindNode(kExcitedAnnouncer);
  if (ea < 0) return Status::InvalidArgument("network has no EA node");
  std::vector<bayes::Evidence> sequence;
  sequence.reserve(evidence.clips.size());
  for (const auto& clip : evidence.clips) {
    sequence.push_back(MakeAudioEvidence(dbn.slice(), clip));
  }
  COBRA_ASSIGN_OR_RETURN(auto result, dbn.Filter(sequence, ea, clusters));
  std::vector<double> out;
  out.reserve(result.query_posterior.size());
  for (const auto& p : result.query_posterior) out.push_back(p[1]);
  return out;
}

Result<bayes::DynamicBayesianNetwork> TrainAudioVisualDbn(
    bool with_passing, const RaceEvidence& train,
    const TrainingOptions& options) {
  COBRA_ASSIGN_OR_RETURN(
      bayes::DynamicBayesianNetwork dbn,
      BuildAudioVisualDbn(with_passing, TemporalScheme::kFig8));
  Rng rng(options.seed);
  InitializeForEm(dbn, rng);

  // Training sequences: av_segments windows of av_segment_sec, each
  // centered on a ground-truth highlight so every sub-event is seen.
  const size_t seg = static_cast<size_t>(options.av_segment_sec * 10.0);
  const size_t n = train.clips.size();
  std::vector<size_t> anchors;
  bool prev = false;
  for (size_t c = 0; c < n; ++c) {
    const bool now = train.clips[c].truth_highlight;
    if (now && !prev) anchors.push_back(c);
    prev = now;
  }
  std::vector<std::vector<bayes::Evidence>> sequences;
  for (size_t a : anchors) {
    if (static_cast<int>(sequences.size()) >= options.av_segments) break;
    const size_t begin = a >= seg / 4 ? a - seg / 4 : 0;
    if (begin + seg > n) continue;
    std::vector<bayes::Evidence> sequence;
    sequence.reserve(seg);
    for (size_t c = begin; c < begin + seg; ++c) {
      sequence.push_back(MakeAudioVisualEvidence(dbn.slice(), train.clips[c],
                                                 options.supervised));
    }
    sequences.push_back(std::move(sequence));
  }
  if (sequences.empty()) {
    return Status::FailedPrecondition("no highlight anchors to train on");
  }
  bayes::DynamicBayesianNetwork::EmOptions em;
  em.max_iterations = options.em_iterations;
  COBRA_ASSIGN_OR_RETURN(double ll, dbn.TrainEm(sequences, em));
  (void)ll;
  return dbn;
}

Result<AvSeries> InferAudioVisual(const bayes::DynamicBayesianNetwork& dbn,
                                  const RaceEvidence& evidence) {
  const bayes::NodeId h = dbn.slice().FindNode(kHighlight);
  const bayes::NodeId st = dbn.slice().FindNode(kStartNode);
  const bayes::NodeId fo = dbn.slice().FindNode(kFlyOutNode);
  const bayes::NodeId pa = dbn.slice().FindNode(kPassingNode);
  if (h < 0) return Status::InvalidArgument("network has no Highlight node");

  std::vector<bayes::Evidence> sequence;
  sequence.reserve(evidence.clips.size());
  for (const auto& clip : evidence.clips) {
    sequence.push_back(MakeAudioVisualEvidence(dbn.slice(), clip));
  }
  COBRA_ASSIGN_OR_RETURN(auto result, dbn.Filter(sequence, h));
  AvSeries out;
  const size_t T = result.beliefs.size();
  out.highlight.reserve(T);
  out.start.reserve(T);
  out.flyout.reserve(T);
  if (pa >= 0) out.passing.reserve(T);
  for (size_t t = 0; t < T; ++t) {
    out.highlight.push_back(result.query_posterior[t][1]);
    out.start.push_back(dbn.MarginalFromBelief(result.beliefs[t], st)[1]);
    out.flyout.push_back(dbn.MarginalFromBelief(result.beliefs[t], fo)[1]);
    if (pa >= 0) {
      out.passing.push_back(dbn.MarginalFromBelief(result.beliefs[t], pa)[1]);
    }
  }
  return out;
}

HighlightResult ExtractHighlights(const AvSeries& series, double threshold,
                                  double min_duration_sec) {
  HighlightResult result;
  result.highlights =
      ExtractSegments(series.highlight, threshold, min_duration_sec);
  std::map<std::string, const std::vector<double>*> nodes;
  nodes["start"] = &series.start;
  nodes["flyout"] = &series.flyout;
  if (!series.passing.empty()) nodes["passing"] = &series.passing;
  for (const auto& seg : result.highlights) {
    auto typed = ClassifySubEvents(seg, nodes);
    result.sub_events.insert(result.sub_events.end(), typed.begin(),
                             typed.end());
  }
  return result;
}

std::vector<model::EventRecord> ExtractTextEvents(
    const RaceTimeline& timeline, const FrameRenderer::Options& video,
    double sample_fps) {
  std::vector<model::EventRecord> out;
  FrameRenderer renderer(timeline, video);
  text::TextDetector detector;
  text::TextRecognizer recognizer(CaptionVocabulary());

  const double step = 1.0 / sample_fps;
  std::vector<image::Frame> bands;
  double caption_begin = 0.0;
  bool in_caption = false;

  auto finish = [&](double end_t) {
    if (bands.size() < detector.options().min_duration_frames) {
      bands.clear();
      return;
    }
    const image::Frame refined = text::RefineTextRegion(bands);
    const auto words = recognizer.Recognize(refined);
    bands.clear();
    if (words.empty()) return;
    std::vector<std::string> texts;
    std::string driver;
    for (const auto& w : words) {
      texts.push_back(w.text);
      for (const auto& name : DriverNames()) {
        if (w.text == name) driver = name;
      }
    }
    const std::string text = StrJoin(texts, " ");
    model::EventRecord caption;
    caption.type = "caption";
    caption.begin_sec = caption_begin;
    caption.end_sec = end_t;
    caption.attrs["text"] = text;
    if (!driver.empty()) caption.attrs["driver"] = driver;
    out.push_back(caption);

    auto has = [&texts](const char* word) {
      return std::find(texts.begin(), texts.end(), word) != texts.end();
    };
    model::EventRecord derived = caption;
    if (has("PIT") || has("STOP")) {
      derived.type = "pitstop";
      out.push_back(derived);
    } else if (has("WINNER")) {
      derived.type = "winner";
      out.push_back(derived);
    } else if (has("LEADER")) {
      derived.type = "classification";
      out.push_back(derived);
    } else if (has("OUT") || has("RETIRED")) {
      derived.type = "retired";
      out.push_back(derived);
    } else if (has("FINAL") || has("LAP")) {
      derived.type = "finallap";
      out.push_back(derived);
    }
  };

  for (double t = 0.0; t < timeline.profile.duration_sec; t += step) {
    const image::Frame frame = renderer.Render(t);
    if (detector.FrameHasText(frame)) {
      if (!in_caption) {
        in_caption = true;
        caption_begin = t;
      }
      bands.push_back(detector.CaptionBand(frame));
    } else if (in_caption) {
      in_caption = false;
      finish(t);
    }
  }
  if (in_caption) finish(timeline.profile.duration_sec);
  return out;
}

// ---------------------------------------------------------------------------
// F1System
// ---------------------------------------------------------------------------

F1System::F1System()
    : videos_(&catalog_), engine_(&videos_, &registry_) {
  COBRA_CHECK(RegisterExtensions().ok());
}

const RaceTimeline* F1System::TimelineFor(model::VideoId id) const {
  auto it = timelines_.find(id);
  return it == timelines_.end() ? nullptr : &it->second;
}

const RaceEvidence* F1System::EvidenceFor(model::VideoId id) const {
  auto it = evidence_.find(id);
  return it == evidence_.end() ? nullptr : &it->second;
}

Status F1System::RegisterExtensions() {
  using extensions::CallbackExtension;
  // The audio-visual DBN extension: highlights and the three events.
  registry_.Register(std::make_unique<CallbackExtension>(
      "dbn-extension",
      std::vector<CallbackExtension::Provided>{
          {"highlight", 3.0, 0.85},
          {"start", 3.0, 0.85},
          {"flyout", 3.0, 0.70},
          {"passing", 3.0, 0.60},
          {"replay", 3.0, 0.80},
      },
      [this](model::VideoId id, const std::string&,
             model::VideoCatalog* catalog) {
        return ExtractDbnEvents(id, catalog);
      }));
  // Excited speech: the DBN method (better) and the BN method (cheaper).
  registry_.Register(std::make_unique<CallbackExtension>(
      "audio-dbn-extension",
      std::vector<CallbackExtension::Provided>{{"excited_speech", 2.0, 0.80}},
      [this](model::VideoId id, const std::string&,
             model::VideoCatalog* catalog) {
        return ExtractAudioEvents(id, catalog, /*use_dbn=*/true);
      }));
  registry_.Register(std::make_unique<CallbackExtension>(
      "audio-bn-extension",
      std::vector<CallbackExtension::Provided>{{"excited_speech", 1.0, 0.55}},
      [this](model::VideoId id, const std::string&,
             model::VideoCatalog* catalog) {
        return ExtractAudioEvents(id, catalog, /*use_dbn=*/false);
      }));
  // Superimposed-text extension.
  registry_.Register(std::make_unique<CallbackExtension>(
      "text-extension",
      std::vector<CallbackExtension::Provided>{
          {"caption", 1.5, 0.9},
          {"pitstop", 1.5, 0.9},
          {"winner", 1.5, 0.9},
          {"classification", 1.5, 0.9},
          {"retired", 1.5, 0.9},
          {"finallap", 1.5, 0.9},
      },
      [this](model::VideoId id, const std::string&,
             model::VideoCatalog* catalog) {
        return ExtractTextEventsFor(id, catalog);
      }));
  // Rule-based extension: compound events over the event layer.
  registry_.Register(std::make_unique<CallbackExtension>(
      "rule-extension",
      std::vector<CallbackExtension::Provided>{
          {"flyout_of", 0.5, 0.9},
          {"incident", 0.5, 0.9},
      },
      [this](model::VideoId id, const std::string&,
             model::VideoCatalog* catalog) {
        return ExtractRuleEvents(id, catalog);
      }));
  return Status::OK();
}

Result<model::VideoId> F1System::IngestRace(const RaceProfile& profile,
                                            const IngestOptions& options) {
  RaceTimeline timeline = GenerateTimeline(profile);
  RaceEvidence evidence = ExtractEvidence(timeline, options.evidence);

  COBRA_ASSIGN_OR_RETURN(
      model::VideoId id,
      videos_.RegisterVideo(profile.name, profile.duration_sec,
                            options.evidence.video.fps));

  if (!options.reuse_models || av_dbn_ == nullptr) {
    COBRA_ASSIGN_OR_RETURN(
        auto av, TrainAudioVisualDbn(/*with_passing=*/true, evidence,
                                     options.training));
    av_dbn_ = std::make_shared<bayes::DynamicBayesianNetwork>(std::move(av));
    COBRA_ASSIGN_OR_RETURN(
        auto adbn,
        TrainAudioDbn(AudioStructure::kFullyParameterized,
                      TemporalScheme::kFig8, evidence, options.training));
    audio_dbn_ =
        std::make_shared<bayes::DynamicBayesianNetwork>(std::move(adbn));
    COBRA_ASSIGN_OR_RETURN(
        auto abn, TrainAudioBn(AudioStructure::kFullyParameterized, evidence,
                               options.training));
    audio_bn_ = std::make_shared<bayes::BayesianNetwork>(std::move(abn));
  }

  timelines_[id] = std::move(timeline);
  evidence_[id] = std::move(evidence);
  video_options_[id] = options.evidence.video;

  // Object layer: the drivers.
  for (const auto& name : DriverNames()) {
    model::ObjectRecord driver;
    driver.cls = "driver";
    driver.name = name;
    COBRA_RETURN_IF_ERROR(videos_.StoreObject(id, driver));
  }

  if (options.materialize) {
    COBRA_RETURN_IF_ERROR(ExtractDbnEvents(id, &videos_));
    COBRA_RETURN_IF_ERROR(
        ExtractAudioEvents(id, &videos_, /*use_dbn=*/true));
    COBRA_RETURN_IF_ERROR(ExtractTextEventsFor(id, &videos_));
    COBRA_RETURN_IF_ERROR(ExtractRuleEvents(id, &videos_));
  }
  return id;
}

Status F1System::ExtractDbnEvents(model::VideoId id,
                                  model::VideoCatalog* catalog) {
  if (catalog->HasEvents(id, "highlight")) return Status::OK();
  const RaceEvidence* evidence = EvidenceFor(id);
  if (evidence == nullptr || av_dbn_ == nullptr) {
    return Status::FailedPrecondition("race not ingested");
  }
  COBRA_ASSIGN_OR_RETURN(AvSeries series,
                         InferAudioVisual(*av_dbn_, *evidence));
  const HighlightResult result = ExtractHighlights(series);
  for (const auto& seg : result.highlights) {
    model::EventRecord e;
    e.type = "highlight";
    e.begin_sec = seg.begin;
    e.end_sec = seg.end;
    COBRA_RETURN_IF_ERROR(catalog->StoreEvent(id, e));
  }
  for (const auto& typed : result.sub_events) {
    model::EventRecord e;
    e.type = typed.type;
    e.begin_sec = typed.span.begin;
    e.end_sec = typed.span.end;
    COBRA_RETURN_IF_ERROR(catalog->StoreEvent(id, e));
  }
  // Replay segments straight from the visual cue.
  for (const auto& seg :
       ExtractSegments(ReplaySeries(*evidence), 0.5, 2.0)) {
    model::EventRecord e;
    e.type = "replay";
    e.begin_sec = seg.begin;
    e.end_sec = seg.end;
    COBRA_RETURN_IF_ERROR(catalog->StoreEvent(id, e));
  }
  return Status::OK();
}

Status F1System::ExtractAudioEvents(model::VideoId id,
                                    model::VideoCatalog* catalog,
                                    bool use_dbn) {
  if (catalog->HasEvents(id, "excited_speech")) return Status::OK();
  const RaceEvidence* evidence = EvidenceFor(id);
  if (evidence == nullptr) return Status::FailedPrecondition("not ingested");
  std::vector<double> series;
  if (use_dbn) {
    if (audio_dbn_ == nullptr) {
      return Status::FailedPrecondition("no trained audio DBN");
    }
    COBRA_ASSIGN_OR_RETURN(series, InferAudioDbnSeries(*audio_dbn_, *evidence));
  } else {
    if (audio_bn_ == nullptr) {
      return Status::FailedPrecondition("no trained audio BN");
    }
    COBRA_ASSIGN_OR_RETURN(auto raw, InferAudioBnSeries(*audio_bn_, *evidence));
    series = AccumulateOverTime(raw, 15);
  }
  const double threshold = use_dbn ? 0.5 : AdaptiveThreshold(series);
  for (const auto& seg : ExtractSegments(series, threshold, 2.0)) {
    model::EventRecord e;
    e.type = "excited_speech";
    e.begin_sec = seg.begin;
    e.end_sec = seg.end;
    COBRA_RETURN_IF_ERROR(catalog->StoreEvent(id, e));
  }
  return Status::OK();
}

Status F1System::ExtractTextEventsFor(model::VideoId id,
                                      model::VideoCatalog* catalog) {
  if (catalog->HasEvents(id, "caption")) return Status::OK();
  const RaceTimeline* timeline = TimelineFor(id);
  if (timeline == nullptr) return Status::FailedPrecondition("not ingested");
  const auto events = ExtractTextEvents(*timeline, video_options_[id]);
  return catalog->StoreEvents(id, events);
}

Status F1System::ExtractRuleEvents(model::VideoId id,
                                   model::VideoCatalog* catalog) {
  if (catalog->HasEvents(id, "flyout_of")) return Status::OK();
  // Dependencies: DBN events + text events.
  COBRA_RETURN_IF_ERROR(ExtractDbnEvents(id, catalog));
  COBRA_RETURN_IF_ERROR(ExtractTextEventsFor(id, catalog));

  rules::RuleEngine engine;
  // A fly-out followed closely by a "retired" caption is that driver's
  // fly-out.
  rules::Rule flyout_of;
  flyout_of.name = "flyout-of-driver";
  flyout_of.first.type = "flyout";
  flyout_of.second.type = "retired";
  flyout_of.binary = true;
  flyout_of.allowed_relations = {
      rules::AllenRelation::kBefore, rules::AllenRelation::kMeets,
      rules::AllenRelation::kOverlaps, rules::AllenRelation::kDuring,
      rules::AllenRelation::kContains, rules::AllenRelation::kOverlappedBy};
  flyout_of.max_gap_sec = 8.0;
  flyout_of.derived_type = "flyout_of";
  flyout_of.combine = rules::IntervalCombine::kFirst;
  flyout_of.derived_attrs = {{"driver", "$2.driver"}};
  engine.AddRule(flyout_of);

  // A highlight followed by a replay scene forms an "incident" compound.
  rules::Rule incident;
  incident.name = "incident";
  incident.first.type = "highlight";
  incident.second.type = "replay";
  incident.binary = true;
  incident.allowed_relations = {rules::AllenRelation::kBefore,
                                rules::AllenRelation::kMeets,
                                rules::AllenRelation::kOverlaps};
  incident.max_gap_sec = 15.0;
  incident.derived_type = "incident";
  incident.combine = rules::IntervalCombine::kUnion;
  engine.AddRule(incident);

  COBRA_ASSIGN_OR_RETURN(auto all_events, catalog->Events(id));
  std::vector<rules::EventFact> facts;
  for (const auto& e : all_events) {
    facts.push_back(model::VideoCatalog::ToFact(e));
  }
  const auto derived = engine.Infer(facts);
  for (size_t i = facts.size(); i < derived.size(); ++i) {
    COBRA_RETURN_IF_ERROR(
        catalog->StoreEvent(id, model::VideoCatalog::FromFact(derived[i])));
  }
  // Mark the types as materialized even when no instances were derived so
  // the preprocessor does not retry extraction on every query.
  if (!catalog->HasEvents(id, "flyout_of")) {
    model::EventRecord sentinel;
    sentinel.type = "flyout_of";
    sentinel.begin_sec = -1.0;
    sentinel.end_sec = -1.0;
    sentinel.confidence = 0.0;
    COBRA_RETURN_IF_ERROR(catalog->StoreEvent(id, sentinel));
  }
  return Status::OK();
}

}  // namespace cobra::f1
