#include "f1/features.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "base/mathutil.h"
#include "f1/lexicon.h"
#include "kws/keyword_spotter.h"
#include "video/visual_cues.h"

namespace cobra::f1 {
namespace {

double Saturate(double x, double scale) {
  if (x <= 0.0) return 0.0;
  return x / (x + scale);
}

double Ramp(double x, double lo, double hi) {
  return Clamp((x - lo) / (hi - lo), 0.0, 1.0);
}

}  // namespace

RaceEvidence ExtractEvidence(const RaceTimeline& timeline) {
  return ExtractEvidence(timeline, EvidenceOptions());
}

RaceEvidence ExtractEvidence(const RaceTimeline& timeline,
                             const EvidenceOptions& options) {
  RaceEvidence out;
  out.profile = timeline.profile;
  const size_t num_clips = timeline.NumClips();
  out.clips.resize(num_clips);

  // --- Audio path ------------------------------------------------------------
  AudioSynthesizer synth(timeline, options.synth);
  audio::ClipAnalyzer analyzer(options.audio);
  const NormalizerOptions& norm = options.normalizer;

  for (size_t c = 0; c < num_clips; ++c) {
    const auto samples = synth.SynthesizeClip(c);
    const audio::ClipFeatures f = analyzer.Analyze(samples);
    ClipEvidence& e = out.clips[c];
    e.is_speech = f.is_speech;
    e.pause_rate = Clamp(f.pause_rate, 0.0, 1.0);
    // Excited-speech statistics are gated on the endpoint decision, as in
    // the paper ("computations only performed on speech segments").
    if (f.is_speech) {
      e.ste_avg = Saturate(f.ste_avg, norm.ste_avg_scale);
      e.ste_range = Saturate(f.ste_range, norm.ste_range_scale);
      e.ste_max = Saturate(f.ste_max, norm.ste_max_scale);
      e.pitch_avg = Ramp(f.pitch_avg, norm.pitch_lo_hz, norm.pitch_hi_hz);
      e.pitch_range = Clamp(f.pitch_range / norm.pitch_range_scale, 0.0, 1.0);
      e.pitch_max = Ramp(f.pitch_max, norm.pitch_lo_hz, norm.pitch_hi_hz);
      e.mfcc_avg = Saturate(f.mfcc_avg, norm.mfcc_scale);
      e.mfcc_max = Saturate(f.mfcc_max, norm.mfcc_scale);
    }
    e.part_of_race =
        static_cast<double>(c) / static_cast<double>(num_clips);
  }

  // --- Keyword spotting --------------------------------------------------------
  kws::KeywordSpotter spotter(ExcitedKeywords());
  const auto hits = spotter.Spot(synth.PhoneStream());
  for (const auto& hit : hits) {
    const size_t first = static_cast<size_t>(hit.start_sec * 10.0);
    const size_t last = std::min(
        num_clips,
        static_cast<size_t>((hit.start_sec + hit.duration_sec) * 10.0) + 1);
    for (size_t c = first; c < last && c < num_clips; ++c) {
      out.clips[c].keywords = std::max(out.clips[c].keywords, hit.normalized);
    }
  }

  // --- Visual path ------------------------------------------------------------
  if (options.extract_video) {
    FrameRenderer renderer(timeline, options.video);
    video::VisualAnalyzer visual;
    for (size_t c = 0; c < num_clips; ++c) {
      const double t = static_cast<double>(c) * 0.1;
      const image::Frame a = renderer.Render(t + 0.02);
      const image::Frame b = renderer.Render(t + 0.06);
      const video::VideoClipFeatures v = visual.AnalyzeClip(a, b);
      ClipEvidence& e = out.clips[c];
      e.replay = v.replay;
      e.color_diff = v.color_diff;
      e.semaphore = v.semaphore;
      e.dust = v.dust;
      e.sand = v.sand;
      e.motion = v.motion;
    }
  }

  // --- Ground truth ------------------------------------------------------------
  const auto highlights = timeline.Highlights();
  for (size_t c = 0; c < num_clips; ++c) {
    const double t = static_cast<double>(c) * 0.1;
    ClipEvidence& e = out.clips[c];
    e.truth_excited = timeline.IsActive("excited", t);
    e.truth_start = timeline.IsActive("start", t);
    e.truth_flyout = timeline.IsActive("flyout", t);
    e.truth_passing = timeline.IsActive("passing", t);
    e.truth_replay = timeline.IsActive("replay", t);
    for (const auto& h : highlights) {
      if (h.Covers(t)) {
        e.truth_highlight = true;
        break;
      }
    }
  }
  return out;
}

}  // namespace cobra::f1
