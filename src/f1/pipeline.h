#ifndef COBRA_F1_PIPELINE_H_
#define COBRA_F1_PIPELINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bayes/dbn.h"
#include "bayes/network.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "f1/evaluation.h"
#include "f1/features.h"
#include "f1/networks.h"
#include "f1/timeline.h"
#include "kernel/catalog.h"
#include "query/engine.h"

namespace cobra::f1 {

/// Training setup mirroring the paper: BNs learn on a 300 s sequence (3000
/// evidence vectors); DBNs on the same sequence divided into 25 s segments;
/// the audio-visual DBN on 6 segments of 50 s centered on known events.
struct TrainingOptions {
  double train_window_sec = 300.0;
  double dbn_segment_sec = 25.0;
  int av_segments = 6;
  double av_segment_sec = 50.0;
  int em_iterations = 12;
  uint64_t seed = 17;
  /// Clamp the query (and sub-event) nodes to ground truth while training.
  bool supervised = true;
};

// --- Audio-only models (Table 1 / 2, Fig 9) --------------------------------

Result<bayes::BayesianNetwork> TrainAudioBn(AudioStructure structure,
                                            const RaceEvidence& train,
                                            const TrainingOptions& options);

Result<bayes::DynamicBayesianNetwork> TrainAudioDbn(
    AudioStructure structure, TemporalScheme scheme,
    const RaceEvidence& train, const TrainingOptions& options);

/// Per-clip posterior P(EA=1) from the BN, clip by clip (atemporal).
Result<std::vector<double>> InferAudioBnSeries(
    const bayes::BayesianNetwork& net, const RaceEvidence& evidence);

/// Per-clip filtered posterior P(EA=1 | e_1:t) from the DBN; `clusters`
/// selects the Boyen–Koller partition (empty = exact).
Result<std::vector<double>> InferAudioDbnSeries(
    const bayes::DynamicBayesianNetwork& dbn, const RaceEvidence& evidence,
    const bayes::DynamicBayesianNetwork::Clusters& clusters = {});

// --- Audio-visual model (Tables 3 / 4) --------------------------------------

Result<bayes::DynamicBayesianNetwork> TrainAudioVisualDbn(
    bool with_passing, const RaceEvidence& train,
    const TrainingOptions& options);

/// Filtered posteriors for the query nodes of the audio-visual DBN.
struct AvSeries {
  std::vector<double> highlight;
  std::vector<double> start;
  std::vector<double> flyout;
  std::vector<double> passing;  // empty when the subnet is excluded
};

Result<AvSeries> InferAudioVisual(const bayes::DynamicBayesianNetwork& dbn,
                                  const RaceEvidence& evidence);

/// Table 3 highlight extraction: threshold 0.5 / minimum duration 6 s on
/// the Highlight posterior, then most-probable sub-event classification
/// (5 s re-evaluation for segments over 15 s).
struct HighlightResult {
  std::vector<Segment> highlights;
  std::vector<TypedSegment> sub_events;
};
HighlightResult ExtractHighlights(const AvSeries& series,
                                  double threshold = 0.5,
                                  double min_duration_sec = 6.0);

// --- Text annotation ---------------------------------------------------------

/// Runs the superimposed-text pipeline (detect -> refine -> recognize) over
/// rendered frames and lifts recognized captions into event-layer records:
/// "caption" (attrs text/driver) plus derived "pitstop" / "winner" /
/// "classification" / "retired" events.
std::vector<model::EventRecord> ExtractTextEvents(
    const RaceTimeline& timeline, const FrameRenderer::Options& video,
    double sample_fps = 5.0);

// --- Full system -------------------------------------------------------------

/// The assembled Cobra VDBMS for the Formula 1 domain: kernel catalog,
/// Cobra video model, the four extensions wired into the registry, and the
/// query engine on top. Races are ingested (synthesized + analyzed +
/// models trained); events can be materialized eagerly or extracted
/// dynamically when a query first needs them.
class F1System {
 public:
  struct IngestOptions {
    TrainingOptions training;
    EvidenceOptions evidence;
    /// Materialize all event types at ingest; otherwise the query
    /// preprocessor triggers extraction on demand.
    bool materialize = false;
    /// Reuse models trained on a previous race (generalization setting)
    /// instead of training on this race.
    bool reuse_models = false;
  };

  F1System();

  /// Generates, analyzes and registers a race.
  Result<model::VideoId> IngestRace(const RaceProfile& profile,
                                    const IngestOptions& options);

  /// Runs a retrieval query.
  Result<query::QueryResult> Query(const std::string& text) {
    return engine_.Execute(text);
  }

  model::VideoCatalog& videos() { return videos_; }
  extensions::ExtensionRegistry& registry() { return registry_; }
  query::QueryEngine& engine() { return engine_; }

  const RaceTimeline* TimelineFor(model::VideoId id) const;
  const RaceEvidence* EvidenceFor(model::VideoId id) const;

 private:
  Status RegisterExtensions();
  Status ExtractDbnEvents(model::VideoId id, model::VideoCatalog* catalog);
  Status ExtractAudioEvents(model::VideoId id, model::VideoCatalog* catalog,
                            bool use_dbn);
  Status ExtractTextEventsFor(model::VideoId id,
                              model::VideoCatalog* catalog);
  Status ExtractRuleEvents(model::VideoId id, model::VideoCatalog* catalog);

  kernel::Catalog catalog_;
  model::VideoCatalog videos_;
  extensions::ExtensionRegistry registry_;
  query::QueryEngine engine_;

  std::map<model::VideoId, RaceTimeline> timelines_;
  std::map<model::VideoId, RaceEvidence> evidence_;
  std::map<model::VideoId, FrameRenderer::Options> video_options_;
  std::shared_ptr<bayes::DynamicBayesianNetwork> av_dbn_;
  std::shared_ptr<bayes::DynamicBayesianNetwork> audio_dbn_;
  std::shared_ptr<bayes::BayesianNetwork> audio_bn_;
};

}  // namespace cobra::f1

#endif  // COBRA_F1_PIPELINE_H_
