#include "f1/networks.h"

#include "base/logging.h"
#include "base/mathutil.h"

namespace cobra::f1 {
namespace {

/// Feature leaf bindings. `center`/`steepness` calibrate the raw [0,1]
/// feature into the probabilistic value entered as soft evidence — the
/// paper's quantization step. Without it, mid-range values (e.g. a motion
/// cue of 0.3 against a 0.1 baseline) are *anti*-informative under binary
/// soft evidence, because v < 0.5 favours whichever state predicts the
/// lower feature rate.
struct FeatureBinding {
  const char* name;
  double (*get)(const ClipEvidence&);
  double center;
  double steepness;
};

double Calibrate(const FeatureBinding& binding, const ClipEvidence& clip) {
  const double v = binding.get(clip);
  if (binding.steepness <= 0.0) return v;  // already a calibrated value
  return Sigmoid(binding.steepness * (v - binding.center));
}

constexpr FeatureBinding kAudioFeatures[] = {
    {"kw", [](const ClipEvidence& c) { return c.keywords; }, 0.25, 10.0},
    {"pause", [](const ClipEvidence& c) { return c.pause_rate; }, 0.12, 25.0},
    {"ste_avg", [](const ClipEvidence& c) { return c.ste_avg; }, 0.15, 15.0},
    {"ste_range", [](const ClipEvidence& c) { return c.ste_range; }, 0.15,
     15.0},
    {"ste_max", [](const ClipEvidence& c) { return c.ste_max; }, 0.20, 12.0},
    {"pitch_avg", [](const ClipEvidence& c) { return c.pitch_avg; }, 0.40,
     10.0},
    {"pitch_range", [](const ClipEvidence& c) { return c.pitch_range; }, 0.30,
     10.0},
    {"pitch_max", [](const ClipEvidence& c) { return c.pitch_max; }, 0.45,
     10.0},
    {"mfcc_avg", [](const ClipEvidence& c) { return c.mfcc_avg; }, 0.91,
     40.0},
    {"mfcc_max", [](const ClipEvidence& c) { return c.mfcc_max; }, 0.93,
     40.0},
};

constexpr FeatureBinding kVisualFeatures[] = {
    {"part", [](const ClipEvidence& c) { return c.part_of_race; }, 0.5, 0.0},
    {"replay", [](const ClipEvidence& c) { return c.replay; }, 0.5, 12.0},
    {"color_diff", [](const ClipEvidence& c) { return c.color_diff; }, 0.25,
     10.0},
    {"semaphore", [](const ClipEvidence& c) { return c.semaphore; }, 0.5,
     12.0},
    {"dust", [](const ClipEvidence& c) { return c.dust; }, 0.30, 10.0},
    {"sand", [](const ClipEvidence& c) { return c.sand; }, 0.30, 10.0},
    {"motion", [](const ClipEvidence& c) { return c.motion; }, 0.20, 14.0},
};

/// Aggregated input-node values for the input/output structure.
double EnergyAggregate(const ClipEvidence& c) {
  return (c.ste_avg + c.ste_range + c.ste_max) / 3.0;
}
double PitchAggregate(const ClipEvidence& c) {
  return (c.pitch_avg + c.pitch_range + c.pitch_max) / 3.0;
}
double QualityAggregate(const ClipEvidence& c) {
  return (c.pause_rate + c.mfcc_avg + c.mfcc_max) / 3.0;
}

}  // namespace

bayes::BayesianNetwork BuildAudioSlice(AudioStructure structure) {
  bayes::BayesianNetwork net;
  switch (structure) {
    case AudioStructure::kFullyParameterized: {
      const auto ea = net.AddNode(kExcitedAnnouncer, 2, false);
      const auto en = net.AddNode("EN", 2, false);  // energy envelope
      const auto pv = net.AddNode("PV", 2, false);  // voice pitch
      const auto sq = net.AddNode("SQ", 2, false);  // speech quality
      COBRA_CHECK(net.AddEdge(ea, en).ok());
      COBRA_CHECK(net.AddEdge(ea, pv).ok());
      COBRA_CHECK(net.AddEdge(ea, sq).ok());
      const auto kw = net.AddNode("kw", 2, true);
      COBRA_CHECK(net.AddEdge(ea, kw).ok());
      for (const char* name :
           {"ste_avg", "ste_range", "ste_max"}) {
        const auto leaf = net.AddNode(name, 2, true);
        COBRA_CHECK(net.AddEdge(en, leaf).ok());
      }
      for (const char* name :
           {"pitch_avg", "pitch_range", "pitch_max"}) {
        const auto leaf = net.AddNode(name, 2, true);
        COBRA_CHECK(net.AddEdge(pv, leaf).ok());
      }
      for (const char* name : {"pause", "mfcc_avg", "mfcc_max"}) {
        const auto leaf = net.AddNode(name, 2, true);
        COBRA_CHECK(net.AddEdge(sq, leaf).ok());
      }
      break;
    }
    case AudioStructure::kDirectEvidence: {
      const auto ea = net.AddNode(kExcitedAnnouncer, 2, false);
      for (const auto& binding : kAudioFeatures) {
        const auto f = net.AddNode(binding.name, 2, true);
        COBRA_CHECK(net.AddEdge(f, ea).ok());
      }
      break;
    }
    case AudioStructure::kInputOutput: {
      const auto ea = net.AddNode(kExcitedAnnouncer, 2, false);
      const auto en = net.AddNode("EN", 2, false);
      const auto pv = net.AddNode("PV", 2, false);
      const auto sq = net.AddNode("SQ", 2, false);
      const auto kwh = net.AddNode("KW", 2, false);
      const auto in_energy = net.AddNode("in_energy", 2, true);
      const auto in_pitch = net.AddNode("in_pitch", 2, true);
      const auto in_quality = net.AddNode("in_quality", 2, true);
      const auto in_kw = net.AddNode("in_kw", 2, true);
      COBRA_CHECK(net.AddEdge(in_energy, en).ok());
      COBRA_CHECK(net.AddEdge(in_pitch, pv).ok());
      COBRA_CHECK(net.AddEdge(in_quality, sq).ok());
      COBRA_CHECK(net.AddEdge(in_kw, kwh).ok());
      COBRA_CHECK(net.AddEdge(en, ea).ok());
      COBRA_CHECK(net.AddEdge(pv, ea).ok());
      COBRA_CHECK(net.AddEdge(sq, ea).ok());
      COBRA_CHECK(net.AddEdge(kwh, ea).ok());
      break;
    }
  }
  COBRA_CHECK(net.Finalize().ok());
  return net;
}

std::vector<bayes::DynamicBayesianNetwork::TemporalArc> MakeTemporalArcs(
    const bayes::BayesianNetwork& slice, const std::string& query_name,
    TemporalScheme scheme) {
  std::vector<bayes::DynamicBayesianNetwork::TemporalArc> arcs;
  const bayes::NodeId query = slice.FindNode(query_name);
  COBRA_CHECK(query >= 0) << "no query node " << query_name;
  std::vector<bayes::NodeId> hidden;
  for (bayes::NodeId n = 0; n < slice.num_nodes(); ++n) {
    if (!slice.is_evidence(n)) hidden.push_back(n);
  }
  switch (scheme) {
    case TemporalScheme::kFig8:
      for (bayes::NodeId n : hidden) {
        arcs.push_back({n, n});  // persistence
        if (n != query) {
          arcs.push_back({query, n});  // query broadcasts forward
          arcs.push_back({n, query});  // hidden feed the query forward
        }
      }
      break;
    case TemporalScheme::kQueryOnlyReceives:
      for (bayes::NodeId n : hidden) {
        if (n == query) {
          arcs.push_back({query, query});
        } else {
          arcs.push_back({n, query});
        }
      }
      break;
    case TemporalScheme::kNoQueryBroadcast:
      for (bayes::NodeId n : hidden) {
        arcs.push_back({n, n});
        if (n != query) arcs.push_back({n, query});
      }
      break;
  }
  return arcs;
}

Result<bayes::DynamicBayesianNetwork> BuildAudioDbn(AudioStructure structure,
                                                    TemporalScheme scheme) {
  bayes::BayesianNetwork slice = BuildAudioSlice(structure);
  auto arcs = MakeTemporalArcs(slice, kExcitedAnnouncer, scheme);
  return bayes::DynamicBayesianNetwork::Create(std::move(slice),
                                               std::move(arcs));
}

void InitializeForEm(bayes::BayesianNetwork& net, Rng& rng) {
  net.RandomizeCpts(rng, 0.6);
  for (bayes::NodeId n = 0; n < net.num_nodes(); ++n) {
    if (net.is_evidence(n) || net.num_states(n) != 2) continue;
    const auto& parents = net.parents(n);
    if (parents.empty()) continue;
    bool all_binary = true;
    for (bayes::NodeId p : parents) {
      all_binary = all_binary && net.num_states(p) == 2;
    }
    if (!all_binary) continue;
    if (parents.size() == 1) {
      // Identity-leaning bias for hidden intermediates (structures 7a/7c)
      // so EM's latent semantics don't collapse.
      COBRA_CHECK(net.cpt(n).SetRow(0, {0.72, 0.28}).ok());
      COBRA_CHECK(net.cpt(n).SetRow(1, {0.28, 0.72}).ok());
    } else {
      // Noisy-OR-leaning bias for aggregation nodes (EA in structures
      // 7b/7c): P(on) grows with the number of active parents.
      bayes::Cpt& cpt = net.cpt(n);
      for (size_t row = 0; row < cpt.num_rows(); ++row) {
        int ones = 0;
        for (size_t d = 0; d < parents.size(); ++d) {
          ones += cpt.parent_index().Digit(row, d);
        }
        const double p_on =
            0.1 + 0.8 * static_cast<double>(ones) / parents.size();
        COBRA_CHECK(cpt.SetRow(row, {1.0 - p_on, p_on}).ok());
      }
    }
  }
}

void InitializeForEm(bayes::DynamicBayesianNetwork& dbn, Rng& rng) {
  InitializeForEm(dbn.mutable_slice(), rng);
  // Persistence bias: transition rows prefer keeping the previous state of
  // the same node.
  const auto& slice = dbn.slice();
  for (bayes::NodeId n : dbn.chain_nodes()) {
    const auto& temporal = dbn.temporal_parents(n);
    int self_digit = -1;
    for (size_t i = 0; i < temporal.size(); ++i) {
      if (temporal[i] == n) {
        self_digit = static_cast<int>(slice.parents(n).size() + i);
      }
    }
    bayes::Cpt& cpt = dbn.transition_cpt(n);
    cpt.Randomize(rng, 0.6);
    if (self_digit < 0 || slice.num_states(n) != 2) continue;
    for (size_t row = 0; row < cpt.num_rows(); ++row) {
      const int prev = cpt.parent_index().Digit(row, self_digit);
      const double keep = 0.8;
      COBRA_CHECK(cpt.SetRow(row, prev == 1 ? std::vector<double>{1 - keep, keep}
                                            : std::vector<double>{keep, 1 - keep})
                      .ok());
    }
  }
}

bayes::Evidence MakeAudioEvidence(const bayes::BayesianNetwork& net,
                                  const ClipEvidence& clip, bool supervise) {
  bayes::Evidence e;
  for (const auto& binding : kAudioFeatures) {
    const bayes::NodeId n = net.FindNode(binding.name);
    if (n >= 0) e.SetBinary(n, Calibrate(binding, clip));
  }
  // Aggregated input nodes (input/output structure).
  constexpr FeatureBinding kAggregates[] = {
      {"in_energy", &EnergyAggregate, 0.18, 12.0},
      {"in_pitch", &PitchAggregate, 0.35, 10.0},
      {"in_quality", &QualityAggregate, 0.45, 8.0},
      {"in_kw", [](const ClipEvidence& c) { return c.keywords; }, 0.25, 10.0},
  };
  for (const auto& agg : kAggregates) {
    const bayes::NodeId n = net.FindNode(agg.name);
    if (n >= 0) e.SetBinary(n, Calibrate(agg, clip));
  }
  if (supervise) {
    const bayes::NodeId ea = net.FindNode(kExcitedAnnouncer);
    COBRA_CHECK(ea >= 0);
    e.hard[ea] = clip.truth_excited ? 1 : 0;
  }
  return e;
}

bayes::BayesianNetwork BuildAudioVisualSlice(bool with_passing) {
  bayes::BayesianNetwork net;
  const auto h = net.AddNode(kHighlight, 2, false);
  const auto ea = net.AddNode(kExcitedAnnouncer, 2, false);
  const auto st = net.AddNode(kStartNode, 2, false);
  const auto fo = net.AddNode(kFlyOutNode, 2, false);
  COBRA_CHECK(net.AddEdge(h, ea).ok());
  COBRA_CHECK(net.AddEdge(h, st).ok());
  COBRA_CHECK(net.AddEdge(h, fo).ok());
  bayes::NodeId pa = -1;
  if (with_passing) {
    pa = net.AddNode(kPassingNode, 2, false);
    COBRA_CHECK(net.AddEdge(h, pa).ok());
  }
  // Audio leaves under EA.
  for (const auto& binding : kAudioFeatures) {
    const auto leaf = net.AddNode(binding.name, 2, true);
    COBRA_CHECK(net.AddEdge(ea, leaf).ok());
  }
  // Visual leaves.
  const auto replay = net.AddNode("replay", 2, true);
  COBRA_CHECK(net.AddEdge(h, replay).ok());
  const auto semaphore = net.AddNode("semaphore", 2, true);
  const auto part = net.AddNode("part", 2, true);
  const auto motion = net.AddNode("motion", 2, true);
  COBRA_CHECK(net.AddEdge(st, semaphore).ok());
  COBRA_CHECK(net.AddEdge(st, part).ok());
  COBRA_CHECK(net.AddEdge(st, motion).ok());
  const auto dust = net.AddNode("dust", 2, true);
  const auto sand = net.AddNode("sand", 2, true);
  COBRA_CHECK(net.AddEdge(fo, dust).ok());
  COBRA_CHECK(net.AddEdge(fo, sand).ok());
  if (with_passing) {
    const auto color_diff = net.AddNode("color_diff", 2, true);
    COBRA_CHECK(net.AddEdge(pa, color_diff).ok());
    COBRA_CHECK(net.AddEdge(pa, motion).ok());
  }
  COBRA_CHECK(net.Finalize().ok());
  return net;
}

Result<bayes::DynamicBayesianNetwork> BuildAudioVisualDbn(
    bool with_passing, TemporalScheme scheme) {
  bayes::BayesianNetwork slice = BuildAudioVisualSlice(with_passing);
  auto arcs = MakeTemporalArcs(slice, kHighlight, scheme);
  return bayes::DynamicBayesianNetwork::Create(std::move(slice),
                                               std::move(arcs));
}

bayes::Evidence MakeAudioVisualEvidence(const bayes::BayesianNetwork& net,
                                        const ClipEvidence& clip,
                                        bool supervise) {
  bayes::Evidence e;
  for (const auto& binding : kAudioFeatures) {
    const bayes::NodeId n = net.FindNode(binding.name);
    if (n >= 0) e.SetBinary(n, Calibrate(binding, clip));
  }
  for (const auto& binding : kVisualFeatures) {
    const bayes::NodeId n = net.FindNode(binding.name);
    if (n >= 0) e.SetBinary(n, Calibrate(binding, clip));
  }
  if (supervise) {
    auto clamp = [&net, &e](const char* name, bool value) {
      const bayes::NodeId n = net.FindNode(name);
      if (n >= 0) e.hard[n] = value ? 1 : 0;
    };
    clamp(kHighlight, clip.truth_highlight);
    clamp(kExcitedAnnouncer, clip.truth_excited);
    clamp(kStartNode, clip.truth_start);
    clamp(kFlyOutNode, clip.truth_flyout);
    clamp(kPassingNode, clip.truth_passing);
  }
  return e;
}

}  // namespace cobra::f1
