#ifndef COBRA_F1_NETWORKS_H_
#define COBRA_F1_NETWORKS_H_

#include <string>
#include <vector>

#include "bayes/dbn.h"
#include "bayes/network.h"
#include "f1/features.h"

namespace cobra::f1 {

/// The three one-slice structures of Fig. 7.
enum class AudioStructure {
  /// (a) "Fully parameterized": the query node EA tops a hierarchy of
  /// hidden intermediate nodes (energy / pitch / quality) that parent the
  /// evidence features.
  kFullyParameterized,
  /// (b) Direct influence from evidence to the query node: all ten audio
  /// features are parents of EA.
  kDirectEvidence,
  /// (c) Input/output structure: (aggregated) evidence feeds intermediate
  /// nodes which feed EA. Feature groups are aggregated into one input node
  /// per intermediate to keep exact inference tractable (see DESIGN.md).
  kInputOutput,
};

/// The temporal-dependency schemes of §5.5.
enum class TemporalScheme {
  /// Fig. 8 (best in the paper): self-arcs on every non-observable node,
  /// plus query(t-1) -> every hidden(t) and every hidden(t-1) -> query(t).
  kFig8,
  /// Only the query node receives temporal input: hidden(t-1) -> query(t)
  /// and query(t-1) -> query(t); no other temporal arcs.
  kQueryOnlyReceives,
  /// Self-arcs plus hidden(t-1) -> query(t); the query does not distribute
  /// evidence to the other non-observables.
  kNoQueryBroadcast,
};

/// Canonical node names.
inline constexpr char kExcitedAnnouncer[] = "EA";
inline constexpr char kHighlight[] = "Highlight";
inline constexpr char kStartNode[] = "Start";
inline constexpr char kFlyOutNode[] = "FlyOut";
inline constexpr char kPassingNode[] = "Passing";

/// Builds the one-slice audio network (also used standalone as the BN).
bayes::BayesianNetwork BuildAudioSlice(AudioStructure structure);

/// Builds the audio DBN: slice structure + temporal arcs per scheme.
Result<bayes::DynamicBayesianNetwork> BuildAudioDbn(AudioStructure structure,
                                                    TemporalScheme scheme);

/// Soft evidence for one clip on an audio network; when `supervise` is
/// true, the EA node is clamped to the ground-truth excited label
/// (training).
bayes::Evidence MakeAudioEvidence(const bayes::BayesianNetwork& net,
                                  const ClipEvidence& clip,
                                  bool supervise = false);

/// Builds the one-slice audio-visual network of Fig. 10. The Highlight
/// query node parents the sub-event nodes (EA, Start, FlyOut and, when
/// `with_passing`, Passing); each sub-event parents its feature leaves.
bayes::BayesianNetwork BuildAudioVisualSlice(bool with_passing);

/// Audio-visual DBN with Fig. 11 temporal dependencies (scheme kFig8 with
/// Highlight as the query node).
Result<bayes::DynamicBayesianNetwork> BuildAudioVisualDbn(
    bool with_passing, TemporalScheme scheme = TemporalScheme::kFig8);

/// Soft evidence for one clip on the audio-visual network; `supervise`
/// clamps Highlight and the sub-event nodes to ground truth (training).
bayes::Evidence MakeAudioVisualEvidence(const bayes::BayesianNetwork& net,
                                        const ClipEvidence& clip,
                                        bool supervise = false);

/// Temporal arcs for a finalized slice per scheme (exposed for tests).
std::vector<bayes::DynamicBayesianNetwork::TemporalArc> MakeTemporalArcs(
    const bayes::BayesianNetwork& slice, const std::string& query_name,
    TemporalScheme scheme);

/// EM initialization: random CPTs plus an identity-leaning bias on hidden
/// intermediate nodes (P(child = s | parent = s) elevated) so EM's latent
/// semantics don't collapse into an uninformative fixed point, and — for
/// DBNs — a persistence bias on self-transition rows.
void InitializeForEm(bayes::BayesianNetwork& net, Rng& rng);
void InitializeForEm(bayes::DynamicBayesianNetwork& dbn, Rng& rng);

}  // namespace cobra::f1

#endif  // COBRA_F1_NETWORKS_H_
