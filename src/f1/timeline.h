#ifndef COBRA_F1_TIMELINE_H_
#define COBRA_F1_TIMELINE_H_

#include <map>
#include <string>
#include <vector>

#include "base/rng.h"

namespace cobra::f1 {

/// Generation profile for one synthetic Grand Prix broadcast. The three
/// 2001 races the paper digitized are modeled as three profiles; the
/// decisive difference the paper reports — "different camera work in the
/// German GP" which made the motion-based passing cue work there and fail
/// elsewhere — is the `camera_global_motion` parameter (global background
/// motion that leaks into the motion histogram).
struct RaceProfile {
  std::string name = "german-gp";
  double duration_sec = 600.0;
  uint64_t seed = 1;

  /// Camera work: the fraction of shots filmed with a panning camera.
  /// Low = mostly static camera work (the passing motion cue is
  /// informative); high = frequent pans whose global motion swamps the cue.
  double camera_global_motion = 0.10;

  // Event densities (per minute of race after the start phase).
  double passings_per_minute = 0.70;
  double flyouts_per_minute = 0.30;
  double pitstops_per_minute = 0.45;

  /// Spontaneous announcer excitement without any highlight (per minute).
  double false_excitement_per_minute = 0.40;
  /// Probability that a fly-out / passing is accompanied by excited speech
  /// (the start always is). Drives the audio-only recall ceiling of ~50%
  /// that the paper reports once replays are counted.
  double excited_coverage = 0.75;

  bool has_flyouts = true;

  static RaceProfile GermanGp(double duration_sec = 600.0);
  static RaceProfile BelgianGp(double duration_sec = 600.0);
  static RaceProfile UsaGp(double duration_sec = 600.0);
};

/// One ground-truth occurrence. Types used:
///   "start", "flyout", "passing", "pitstop", "replay"  — domain events
///   "excited"     — announcer raises his voice
///   "commentary"  — speech activity segment; attr "words" holds the spoken
///                   token sequence, attr "excited" ("0"/"1")
///   "caption"     — superimposed text; attr "text", optional "driver"
struct TimelineEvent {
  std::string type;
  double begin = 0.0;
  double end = 0.0;
  std::map<std::string, std::string> attrs;

  bool Covers(double t) const { return t >= begin && t < end; }
};

/// Full ground truth of one synthetic race.
struct RaceTimeline {
  RaceProfile profile;
  std::vector<TimelineEvent> events;

  std::vector<TimelineEvent> EventsOfType(const std::string& type) const;
  /// First event of `type` covering time t, or nullptr.
  const TimelineEvent* ActiveEvent(const std::string& type, double t) const;
  /// True if any event of `type` covers t.
  bool IsActive(const std::string& type, double t) const {
    return ActiveEvent(type, t) != nullptr;
  }

  /// The "interesting segments": start, fly-outs, passings and replay
  /// scenes — the ground truth against which highlight precision/recall is
  /// scored (the paper counts replay scenes as interesting segments).
  std::vector<TimelineEvent> Highlights() const;

  size_t NumClips() const {
    return static_cast<size_t>(profile.duration_sec * 10.0);
  }
};

/// Deterministically generates the ground-truth timeline for a profile.
RaceTimeline GenerateTimeline(const RaceProfile& profile);

}  // namespace cobra::f1

#endif  // COBRA_F1_TIMELINE_H_
