#ifndef COBRA_SERVER_PROTOCOL_H_
#define COBRA_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "cobra/video_model.h"

namespace cobra::server::protocol {

/// Wire protocol of the query server: length-prefixed text frames.
///
/// A frame is a little-endian u32 payload length followed by that many
/// payload bytes. Payloads are line-oriented ASCII:
///
///   request   := "Q <session> <seq>\n<query text>"
///   response  := ok-response | err-response
///   ok-response :=
///       "OK session=<s> seq=<q> epoch=<e> version=<v> lsn=<l> rows=<n>
///        [watch=<w>]\n"                        (one line; watch only for
///                                               WATCH registrations)
///       n segment lines ("S ...")
///       optional "P <bytes>\n<profile text>"  (PROFILE queries only)
///   err-response := "ERR <CodeName> session=<s> seq=<q>\n<message>"
///   notification := "N watch=<w> seq=<q> epoch=<e> version=<v>\n"
///                   one segment line ("S ...")
///
/// A segment line is the canonical rendering of one result event:
///
///   "S <type> b=<hex64> e=<hex64> c=<hex64> <key>=<value>..."
///
/// where the three hex64 fields are the raw IEEE-754 bit patterns of
/// begin/end/confidence — responses compare BYTE-IDENTICAL across machines
/// and replays, with no decimal-formatting slop — and type/key/value are
/// percent-escaped (every byte <= 0x20, '%', '=', 0x7f). Attrs follow the
/// event's already-sorted attribute map, so the rendering is deterministic.
///
/// `epoch` is the snapshot publication the response was served at,
/// `version` the VideoCatalog event version of that snapshot (the replay
/// key of the consistency harness), `lsn` its durable log sequence number.

/// One parsed request frame payload.
struct Request {
  uint64_t session = 0;
  uint64_t seq = 0;
  std::string query;
};

/// One parsed response frame payload.
struct Response {
  bool ok = false;
  // Error case: the Status the execution failed with.
  StatusCode code = StatusCode::kOk;
  std::string message;
  // Echoed request identity.
  uint64_t session = 0;
  uint64_t seq = 0;
  // Snapshot identity the result was served at (0s for errors).
  uint64_t epoch = 0;
  uint64_t version = 0;
  uint64_t lsn = 0;
  /// Canonical segment lines, in result order.
  std::vector<std::string> segments;
  /// PROFILE queries: the span-tree text rendering, verbatim.
  std::string profile;
  /// WATCH registrations: the assigned watch id (the optional trailing
  /// `watch=` OK-header field; 0 = absent).
  uint64_t watch = 0;
};

/// One continuous-query notification frame ("N ..."): a watch match pushed
/// by the server after the response of the request whose batch produced it.
/// `seq` is the watch's gap-free 1-based delivery counter; `segment` is the
/// same canonical "S ..." line a one-shot result would carry.
struct Notification {
  uint64_t watch = 0;
  uint64_t seq = 0;
  uint64_t epoch = 0;
  uint64_t version = 0;
  std::string segment;
};

// -- Framing ---------------------------------------------------------------

/// Wraps a payload in a length-prefixed frame.
std::string EncodeFrame(std::string_view payload);

/// Incremental frame decoder for a byte stream (TCP reads land here).
class FrameDecoder {
 public:
  void Feed(std::string_view bytes) { buffer_.append(bytes); }
  /// Extracts the next complete frame's payload; false when none is
  /// buffered yet. Oversized declared lengths poison the decoder.
  bool Next(std::string* payload);
  bool poisoned() const { return poisoned_; }

  /// Frames larger than this are a protocol violation (poisons the stream).
  static constexpr uint32_t kMaxFrameBytes = 1u << 24;

 private:
  std::string buffer_;
  bool poisoned_ = false;
};

// -- Payload encoding ------------------------------------------------------

std::string EncodeRequest(const Request& request);
Result<Request> ParseRequest(std::string_view payload);

std::string EncodeResponse(const Response& response);
Result<Response> ParseResponse(std::string_view payload);

std::string EncodeNotification(const Notification& notification);
Result<Notification> ParseNotification(std::string_view payload);

/// Canonical segment line of one event record (see format above).
std::string EncodeSegment(const model::EventRecord& event);

/// EncodeSegment over a result list — the byte string the consistency
/// harness compares against serial re-evaluation.
std::vector<std::string> EncodeSegments(
    const std::vector<model::EventRecord>& events);

}  // namespace cobra::server::protocol

#endif  // COBRA_SERVER_PROTOCOL_H_
