#include "server/protocol.h"

#include <bit>
#include <cctype>
#include <limits>

#include "base/strings.h"

namespace cobra::server::protocol {

namespace {

/// Percent-escapes the bytes the line format reserves: control/space
/// characters, '%', '=', and DEL. Deterministic and reversible.
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto b = static_cast<unsigned char>(c);
    if (b <= 0x20 || b == 0x7f || c == '%' || c == '=') {
      out.append(StrFormat("%%%02x", b));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Splits `line` on single spaces (the format never emits runs of spaces —
/// they are escaped inside fields).
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= line.size()) {
    size_t space = line.find(' ', start);
    if (space == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return out;
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<uint64_t>(c - '0');
    // Reject overflow instead of silently wrapping modulo 2^64.
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// Parses "key=<u64>" into `out`; false on any mismatch.
bool ParseKeyU64(std::string_view field, std::string_view key, uint64_t* out) {
  if (field.size() <= key.size() + 1) return false;
  if (field.substr(0, key.size()) != key || field[key.size()] != '=') {
    return false;
  }
  return ParseU64(field.substr(key.size() + 1), out);
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  const auto len = static_cast<uint32_t>(payload.size());
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.append(payload);
  return out;
}

bool FrameDecoder::Next(std::string* payload) {
  if (poisoned_ || buffer_.size() < 4) return false;
  const auto b = [this](size_t i) {
    return static_cast<uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  const uint32_t len = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (len > kMaxFrameBytes) {
    poisoned_ = true;
    return false;
  }
  if (buffer_.size() < 4 + static_cast<size_t>(len)) return false;
  *payload = buffer_.substr(4, len);
  buffer_.erase(0, 4 + static_cast<size_t>(len));
  return true;
}

std::string EncodeRequest(const Request& request) {
  return StrFormat("Q %llu %llu\n",
                   static_cast<unsigned long long>(request.session),
                   static_cast<unsigned long long>(request.seq)) +
         request.query;
}

Result<Request> ParseRequest(std::string_view payload) {
  const size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    return Status::InvalidArgument("request: missing header line");
  }
  const std::vector<std::string_view> fields =
      SplitFields(payload.substr(0, nl));
  Request request;
  if (fields.size() != 3 || fields[0] != "Q" ||
      !ParseU64(fields[1], &request.session) ||
      !ParseU64(fields[2], &request.seq)) {
    return Status::InvalidArgument(
        "request: malformed header (want 'Q <session> <seq>')");
  }
  request.query = std::string(payload.substr(nl + 1));
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  if (response.ok) {
    out = StrFormat(
        "OK session=%llu seq=%llu epoch=%llu version=%llu lsn=%llu "
        "rows=%zu\n",
        static_cast<unsigned long long>(response.session),
        static_cast<unsigned long long>(response.seq),
        static_cast<unsigned long long>(response.epoch),
        static_cast<unsigned long long>(response.version),
        static_cast<unsigned long long>(response.lsn),
        response.segments.size());
    if (response.watch != 0) {
      // Optional trailing field, spliced in before the newline so the
      // header stays a single line.
      out.pop_back();
      out += StrFormat(" watch=%llu\n",
                       static_cast<unsigned long long>(response.watch));
    }
    for (const std::string& line : response.segments) {
      out += line;
      out.push_back('\n');
    }
    if (!response.profile.empty()) {
      out += StrFormat("P %zu\n", response.profile.size());
      out += response.profile;
    }
  } else {
    out = StrFormat("ERR %s session=%llu seq=%llu\n",
                    std::string(StatusCodeName(response.code)).c_str(),
                    static_cast<unsigned long long>(response.session),
                    static_cast<unsigned long long>(response.seq));
    out += response.message;
  }
  return out;
}

Result<Response> ParseResponse(std::string_view payload) {
  const size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    return Status::InvalidArgument("response: missing header line");
  }
  const std::vector<std::string_view> fields =
      SplitFields(payload.substr(0, nl));
  Response response;
  std::string_view rest = payload.substr(nl + 1);
  if (!fields.empty() && fields[0] == "OK") {
    uint64_t rows = 0;
    if ((fields.size() != 7 && fields.size() != 8) ||
        !ParseKeyU64(fields[1], "session", &response.session) ||
        !ParseKeyU64(fields[2], "seq", &response.seq) ||
        !ParseKeyU64(fields[3], "epoch", &response.epoch) ||
        !ParseKeyU64(fields[4], "version", &response.version) ||
        !ParseKeyU64(fields[5], "lsn", &response.lsn) ||
        !ParseKeyU64(fields[6], "rows", &rows) ||
        (fields.size() == 8 &&
         !ParseKeyU64(fields[7], "watch", &response.watch))) {
      return Status::InvalidArgument("response: malformed OK header");
    }
    response.ok = true;
    for (uint64_t i = 0; i < rows; ++i) {
      const size_t line_end = rest.find('\n');
      if (line_end == std::string_view::npos) {
        return Status::InvalidArgument("response: truncated segment list");
      }
      response.segments.emplace_back(rest.substr(0, line_end));
      rest = rest.substr(line_end + 1);
    }
    if (!rest.empty()) {
      const size_t p_end = rest.find('\n');
      uint64_t bytes = 0;
      if (p_end == std::string_view::npos || rest.substr(0, 2) != "P " ||
          !ParseU64(rest.substr(2, p_end - 2), &bytes) ||
          rest.size() - p_end - 1 != bytes) {
        return Status::InvalidArgument("response: malformed profile section");
      }
      response.profile = std::string(rest.substr(p_end + 1));
    }
    return response;
  }
  if (fields.size() == 4 && fields[0] == "ERR") {
    bool known = false;
    for (StatusCode code :
         {StatusCode::kInvalidArgument, StatusCode::kNotFound,
          StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
          StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
          StatusCode::kInternal, StatusCode::kIoError,
          StatusCode::kResourceExhausted, StatusCode::kUnavailable}) {
      if (StatusCodeName(code) == fields[1]) {
        response.code = code;
        known = true;
        break;
      }
    }
    if (!known || !ParseKeyU64(fields[2], "session", &response.session) ||
        !ParseKeyU64(fields[3], "seq", &response.seq)) {
      return Status::InvalidArgument("response: malformed ERR header");
    }
    response.ok = false;
    response.message = std::string(rest);
    return response;
  }
  return Status::InvalidArgument("response: unknown header");
}

std::string EncodeNotification(const Notification& notification) {
  return StrFormat("N watch=%llu seq=%llu epoch=%llu version=%llu\n",
                   static_cast<unsigned long long>(notification.watch),
                   static_cast<unsigned long long>(notification.seq),
                   static_cast<unsigned long long>(notification.epoch),
                   static_cast<unsigned long long>(notification.version)) +
         notification.segment;
}

Result<Notification> ParseNotification(std::string_view payload) {
  const size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    return Status::InvalidArgument("notification: missing header line");
  }
  const std::vector<std::string_view> fields =
      SplitFields(payload.substr(0, nl));
  Notification notification;
  if (fields.size() != 5 || fields[0] != "N" ||
      !ParseKeyU64(fields[1], "watch", &notification.watch) ||
      !ParseKeyU64(fields[2], "seq", &notification.seq) ||
      !ParseKeyU64(fields[3], "epoch", &notification.epoch) ||
      !ParseKeyU64(fields[4], "version", &notification.version)) {
    return Status::InvalidArgument("notification: malformed header");
  }
  notification.segment = std::string(payload.substr(nl + 1));
  if (notification.segment.substr(0, 2) != "S ") {
    return Status::InvalidArgument("notification: malformed segment line");
  }
  return notification;
}

std::string EncodeSegment(const model::EventRecord& event) {
  std::string out = "S " + Escape(event.type);
  out += StrFormat(
      " b=%016llx e=%016llx c=%016llx",
      static_cast<unsigned long long>(std::bit_cast<uint64_t>(event.begin_sec)),
      static_cast<unsigned long long>(std::bit_cast<uint64_t>(event.end_sec)),
      static_cast<unsigned long long>(
          std::bit_cast<uint64_t>(event.confidence)));
  for (const auto& [key, value] : event.attrs) {
    out.push_back(' ');
    out += Escape(key);
    out.push_back('=');
    out += Escape(value);
  }
  return out;
}

std::vector<std::string> EncodeSegments(
    const std::vector<model::EventRecord>& events) {
  std::vector<std::string> out;
  out.reserve(events.size());
  for (const auto& event : events) out.push_back(EncodeSegment(event));
  return out;
}

}  // namespace cobra::server::protocol
