#ifndef COBRA_SERVER_SERVER_H_
#define COBRA_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "base/thread_pool.h"
#include "kernel/exec_context.h"
#include "query/continuous.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "server/protocol.h"

namespace cobra::server {

/// Tuning and test knobs of a QueryServer.
struct ServerConfig {
  /// Worker threads executing queries (>= 1).
  size_t workers = 2;
  /// Admission bound: requests may wait in the queue beyond the `workers`
  /// executing ones; past that Submit returns ResourceExhausted instantly
  /// (backpressure, never a hang).
  size_t max_queue = 16;
  /// Base execution parameters (morsel sizing etc.). Trace fields are
  /// ignored — the server installs per-request sinks for PROFILE queries.
  kernel::ExecContext exec;
  /// TEST ONLY — runs on the worker thread after admission (snapshot
  /// already pinned) and before evaluation. Lets tests wedge workers to
  /// fill the queue, or mutate the catalog inside the pin/execute window.
  std::function<void()> pre_execute_hook;
  /// TEST ONLY — seeded isolation defect: stamp the response with the
  /// admission-time snapshot identity but evaluate against a fresh snapshot
  /// taken at execution time (i.e. skip the pin). The consistency harness
  /// must catch this; it exists to prove the harness can.
  bool unsafe_unpinned_reads = false;
};

/// Aggregate serving counters (monotonic unless noted).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t rejected_busy = 0;      // admission bound hit
  uint64_t rejected_shutdown = 0;  // submitted during/after Shutdown
  uint64_t completed = 0;          // executed, OK response
  uint64_t errors = 0;             // executed, ERR response
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  size_t in_flight = 0;  // currently admitted and not yet responded
  size_t watches = 0;    // continuous queries currently registered
  query::SnapshotManager::Stats snapshots;
};

/// Multi-client query server over a QueryEngine: a bounded worker pool
/// executing snapshot-isolated reads.
///
/// Every request is admitted (or rejected with typed backpressure) on the
/// caller's thread; admission pins the current snapshot epoch, so the data a
/// request will see is fixed the moment the server accepts it, no matter
/// how long it queues. Execution happens on the worker pool against that
/// pinned immutable snapshot — read traffic never takes the catalog locks,
/// so a mutating/checkpointing writer is never blocked by readers (and
/// vice versa). Responses carry the snapshot identity (epoch, event
/// version, LSN) they were served at; the consistency harness replays the
/// write log to those versions and demands byte-identical segments.
///
/// Sessions are lightweight server-side state (id, counters); requests
/// reference them by id. The transports below (LocalConnection, TcpServer)
/// manage session lifecycle for their callers.
///
/// WATCH queries register with the server-owned ContinuousQueryManager
/// instead of reading: the OK response carries the watch id, and matches are
/// delivered as notification ("N") frames. The server never self-pumps —
/// the ingesting host calls PumpWatches() after appending data, which
/// evaluates every watch over one pinned snapshot and queues notifications
/// on the sessions that registered them; transports drain those queues
/// (LocalConnection::TakeNotifications, or piggybacked after TCP responses).
/// A watch dies with its session.
class QueryServer {
 public:
  /// The engine/catalogs must outlive the server. `engine` is used for its
  /// snapshot execution path only — the server never calls the mutating or
  /// storage paths.
  QueryServer(const query::QueryEngine* engine, model::VideoCatalog* videos,
              kernel::Catalog* kernel, ServerConfig config = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // -- Sessions ------------------------------------------------------------

  uint64_t OpenSession() COBRA_EXCLUDES(mu_);
  Status CloseSession(uint64_t session) COBRA_EXCLUDES(mu_);

  // -- Request paths -------------------------------------------------------

  /// Asynchronous submit: admission control runs here (typed errors, never
  /// a hang); on admission the request executes on a worker and `done` is
  /// invoked on that worker thread with the response. A Submit error means
  /// `done` will NOT be called.
  Status Submit(uint64_t session, uint64_t seq, std::string query,
                std::function<void(protocol::Response)> done)
      COBRA_EXCLUDES(mu_);

  /// Synchronous round-trip: Submit + wait. Admission failures come back as
  /// ERR responses (code ResourceExhausted/Unavailable/...).
  protocol::Response Call(uint64_t session, uint64_t seq,
                          const std::string& query) COBRA_EXCLUDES(mu_);

  /// Full wire round-trip: parses a request frame payload, executes it, and
  /// returns the encoded response payload. The transports' entry point.
  std::string HandleFrame(const std::string& payload) COBRA_EXCLUDES(mu_);

  // -- Continuous queries --------------------------------------------------

  /// Evaluates every registered watch against one freshly pinned snapshot
  /// and queues the resulting notifications on their owning sessions
  /// (drained by the transports as "N" frames). The ingesting host calls
  /// this after appending a batch — the server never self-pumps, so
  /// notification timing is a deterministic function of the write history.
  Status PumpWatches() COBRA_EXCLUDES(watch_mu_);

  /// Drains `session`'s queued notifications in delivery order.
  std::vector<protocol::Notification> TakeNotifications(uint64_t session)
      COBRA_EXCLUDES(watch_mu_);

  /// The continuous-query registry, for cursor save/restore around RECOVER
  /// and stats assertions. Quiesce serving (no concurrent Submits or pumps)
  /// before touching it directly — the manager itself is not thread-safe.
  query::ContinuousQueryManager& watch_manager() { return watch_manager_; }

  /// Stops admitting (further Submits return Unavailable), drains every
  /// in-flight request to its response, and joins the workers. Idempotent.
  void Shutdown() COBRA_EXCLUDES(mu_);

  ServerStats stats() const COBRA_EXCLUDES(mu_);
  /// The snapshot publication/pinning machinery (tests assert reclamation).
  query::SnapshotManager& snapshots() { return snapshots_; }

 private:
  struct SessionState {
    uint64_t requests = 0;
  };

  /// Executes one admitted request on a worker thread.
  protocol::Response ExecuteAdmitted(uint64_t session, uint64_t seq,
                                     const std::string& query,
                                     const query::SnapshotManager::Pin& pin)
      COBRA_EXCLUDES(mu_);

  const query::QueryEngine* const engine_;
  const ServerConfig config_;
  query::SnapshotManager snapshots_;
  /// Created before and destroyed after the pool so tasks can always use it.
  std::unique_ptr<ThreadPool> pool_;

  /// Watch state lives under its own lock: registration happens on worker
  /// threads (inside ExecuteAdmitted), pumping on the host's writer thread.
  /// Never held together with mu_.
  mutable Mutex watch_mu_;
  query::ContinuousQueryManager watch_manager_ COBRA_GUARDED_BY(watch_mu_);
  /// watch id -> owning session (notification routing and session cleanup).
  std::map<uint64_t, uint64_t> watch_sessions_ COBRA_GUARDED_BY(watch_mu_);
  /// Per-session queues of undelivered notifications.
  std::map<uint64_t, std::vector<protocol::Notification>>
      pending_notifications_ COBRA_GUARDED_BY(watch_mu_);

  mutable Mutex mu_;
  /// Signalled when in_flight_ drops to zero; Shutdown waits on it so no
  /// Submit can still be between admission and Schedule when the pool dies.
  CondVar drained_cv_;
  std::map<uint64_t, SessionState> sessions_ COBRA_GUARDED_BY(mu_);
  uint64_t next_session_ COBRA_GUARDED_BY(mu_) = 1;
  bool shutting_down_ COBRA_GUARDED_BY(mu_) = false;
  size_t in_flight_ COBRA_GUARDED_BY(mu_) = 0;
  uint64_t accepted_ COBRA_GUARDED_BY(mu_) = 0;
  uint64_t rejected_busy_ COBRA_GUARDED_BY(mu_) = 0;
  uint64_t rejected_shutdown_ COBRA_GUARDED_BY(mu_) = 0;
  uint64_t completed_ COBRA_GUARDED_BY(mu_) = 0;
  uint64_t errors_ COBRA_GUARDED_BY(mu_) = 0;
  uint64_t sessions_opened_ COBRA_GUARDED_BY(mu_) = 0;
  uint64_t sessions_closed_ COBRA_GUARDED_BY(mu_) = 0;
};

/// In-process client transport: the full wire protocol (frame encoding,
/// request/response payloads) round-tripped through QueryServer::HandleFrame
/// with no real socket — what the deterministic tests and the benchmark
/// drive. Owns one session. Not thread-safe; use one per client thread.
class LocalConnection {
 public:
  explicit LocalConnection(QueryServer* server)
      : server_(server), session_(server->OpenSession()) {}
  ~LocalConnection() { (void)server_->CloseSession(session_); }

  LocalConnection(const LocalConnection&) = delete;
  LocalConnection& operator=(const LocalConnection&) = delete;

  /// Sends one query through the wire encoding and decodes the response.
  protocol::Response Query(const std::string& text);

  /// Drains this session's pending watch notifications, each round-tripped
  /// through the wire encoding ("N" frames) exactly as a socket client
  /// would receive them, in delivery order.
  std::vector<protocol::Notification> TakeNotifications();

  uint64_t session() const { return session_; }

 private:
  QueryServer* const server_;
  const uint64_t session_;
  uint64_t next_seq_ = 1;
};

/// Thread-per-connection TCP front end over a QueryServer: an accept loop
/// plus one reader thread per connection, each framing bytes through
/// FrameDecoder and answering via HandleFrame. A request's session id 0 is
/// rewritten to the connection's implicit session (opened at accept, closed
/// at disconnect). At most kMaxConnections are served concurrently (excess
/// accepts are closed immediately), and threads of finished connections are
/// reaped by the accept loop, so a long-lived server holds bounded state.
/// Environments without loopback sockets simply fail Start(); everything
/// above the transport is testable via LocalConnection.
class TcpServer {
 public:
  /// Concurrent-connection cap: accepts past it are closed on arrival.
  static constexpr size_t kMaxConnections = 64;

  explicit TcpServer(QueryServer* server) : server_(server) {}
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port; see port()).
  Status Start(uint16_t port) COBRA_EXCLUDES(mu_);
  /// Stops accepting, closes every connection, joins all threads.
  void Stop() COBRA_EXCLUDES(mu_);

  uint16_t port() const { return port_; }

 private:
  /// One live or finished connection. The serving thread never closes the
  /// fd itself — whoever joins the thread (reaper or Stop) closes it, so the
  /// fd number cannot be recycled under a thread that still holds it.
  struct Connection {
    std::thread thread;
    int fd = -1;
  };

  void AcceptLoop() COBRA_EXCLUDES(mu_);
  void ServeConnection(int fd, uint64_t id) COBRA_EXCLUDES(mu_);

  QueryServer* const server_;
  uint16_t port_ = 0;
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;

  Mutex mu_;
  std::map<uint64_t, Connection> connections_ COBRA_GUARDED_BY(mu_);
  /// Ids whose serving thread has returned; the accept loop joins these and
  /// closes their fds before admitting the next connection.
  std::vector<uint64_t> finished_ COBRA_GUARDED_BY(mu_);
  uint64_t next_connection_ COBRA_GUARDED_BY(mu_) = 1;
  bool stopping_ COBRA_GUARDED_BY(mu_) = false;
};

}  // namespace cobra::server

#endif  // COBRA_SERVER_SERVER_H_
