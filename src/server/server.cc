#include "server/server.h"

#include <atomic>
#include <cctype>
#include <memory>
#include <utility>

#include "base/logging.h"
#include "base/strings.h"
#include "base/trace.h"
#include "query/analyzer.h"
#include "query/parser.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cobra::server {

QueryServer::QueryServer(const query::QueryEngine* engine,
                         model::VideoCatalog* videos, kernel::Catalog* kernel,
                         ServerConfig config)
    : engine_(engine),
      config_(std::move(config)),
      snapshots_(videos, kernel),
      pool_(std::make_unique<ThreadPool>(
          config_.workers > 0 ? config_.workers : 1)),
      watch_manager_(engine, &snapshots_, kernel) {
  COBRA_CHECK(engine != nullptr && videos != nullptr);
}

QueryServer::~QueryServer() { Shutdown(); }

uint64_t QueryServer::OpenSession() {
  MutexLock lock(mu_);
  const uint64_t id = next_session_++;
  sessions_[id] = SessionState{};
  ++sessions_opened_;
  return id;
}

Status QueryServer::CloseSession(uint64_t session) {
  {
    MutexLock lock(mu_);
    if (sessions_.erase(session) == 0) {
      return Status::NotFound(StrFormat(
          "no session %llu", static_cast<unsigned long long>(session)));
    }
    ++sessions_closed_;
  }
  // Watches die with their session: registrations are removed and
  // undelivered notifications dropped. A host that wants watches to survive
  // (e.g. across RECOVER) snapshots watch_manager().SerializeCursors()
  // before the session goes away.
  MutexLock lock(watch_mu_);
  pending_notifications_.erase(session);
  for (auto it = watch_sessions_.begin(); it != watch_sessions_.end();) {
    if (it->second == session) {
      (void)watch_manager_.Unregister(it->first);
      it = watch_sessions_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Status QueryServer::Submit(uint64_t session, uint64_t seq, std::string query,
                           std::function<void(protocol::Response)> done) {
  // Admission control on the caller's thread: typed rejections, never a
  // hang. The snapshot is pinned inside the admission lock, so the data an
  // accepted request sees is fixed here — a writer landing while the
  // request waits in the queue moves later epochs, not this one.
  query::SnapshotManager::Pin admitted_pin;
  {
    MutexLock lock(mu_);
    if (shutting_down_) {
      ++rejected_shutdown_;
      return Status::Unavailable("server is shutting down");
    }
    auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      return Status::NotFound(StrFormat(
          "no session %llu", static_cast<unsigned long long>(session)));
    }
    if (in_flight_ >= config_.workers + config_.max_queue) {
      ++rejected_busy_;
      return Status::ResourceExhausted(
          StrFormat("server busy: %zu requests in flight (limit %zu)",
                    in_flight_, config_.workers + config_.max_queue));
    }
    ++it->second.requests;
    ++in_flight_;
    ++accepted_;
    admitted_pin = snapshots_.Acquire();
  }
  // While in_flight_ counts this request, Shutdown cannot pass its drain
  // wait, so pool_ is guaranteed alive for the Schedule call below even if
  // shutting_down_ flipped the instant the admission lock was released.
  //
  // shared_ptr because ThreadPool tasks are copyable std::functions; the
  // pin itself is move-only.
  auto pin = std::make_shared<query::SnapshotManager::Pin>(
      std::move(admitted_pin));
  auto done_ptr =
      std::make_shared<std::function<void(protocol::Response)>>(
          std::move(done));
  auto query_ptr = std::make_shared<std::string>(std::move(query));
  pool_->Schedule([this, session, seq, pin, done_ptr, query_ptr]() {
    protocol::Response response =
        ExecuteAdmitted(session, seq, *query_ptr, *pin);
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (response.ok) {
        ++completed_;
      } else {
        ++errors_;
      }
      if (in_flight_ == 0) drained_cv_.NotifyAll();
    }
    (*done_ptr)(std::move(response));
  });
  return Status::OK();
}

protocol::Response QueryServer::ExecuteAdmitted(
    uint64_t session, uint64_t seq, const std::string& query,
    const query::SnapshotManager::Pin& pin) {
  if (config_.pre_execute_hook) config_.pre_execute_hook();

  protocol::Response response;
  response.session = session;
  response.seq = seq;
  // The response claims the ADMISSION-time snapshot identity.
  response.epoch = pin->epoch();
  response.version = pin->event_version();
  response.lsn = pin->last_lsn();

  // Seeded isolation defect (test only): evaluate against a snapshot taken
  // NOW instead of the pinned one, while still claiming the admission-time
  // identity. A write landing between admission and execution makes the
  // claim a lie — exactly what the consistency harness must detect.
  query::SnapshotManager::Pin unsafe_pin;
  const query::CatalogSnapshot* snapshot = pin.get();
  if (config_.unsafe_unpinned_reads) {
    unsafe_pin = snapshots_.Acquire();
    snapshot = unsafe_pin.get();
  }

  auto fail = [&response](const Status& status) {
    response.ok = false;
    response.code = status.code();
    response.message = status.message();
    return response;
  };

  // Storage commands mutate; served reads reject them with the same typed
  // error as QueryEngine::ExecuteSnapshot(text) — before the analyzer,
  // which would call them a grammar error.
  {
    const std::string_view text = StrTrim(query);
    size_t verb_len = 0;
    while (verb_len < text.size() &&
           std::isalpha(static_cast<unsigned char>(text[verb_len])) != 0) {
      ++verb_len;
    }
    const std::string verb = ToUpperAscii(text.substr(0, verb_len));
    if (verb == "PERSIST" || verb == "RECOVER") {
      return fail(Status::FailedPrecondition(
          verb + " is a storage command — snapshot reads are read-only"));
    }
  }

  // Analyzer first — positioned diagnostics identical to the direct engine
  // path — then parse; both also run inside ExecuteSnapshot(text), but the
  // server needs the parsed form up front to own PROFILE tracing.
  if (Status verdict = query::AnalyzeQueryText(query).ToStatus("query");
      !verdict.ok()) {
    return fail(verdict);
  }
  Result<query::ParsedQuery> parsed = query::ParseQuery(query);
  if (!parsed.ok()) return fail(parsed.status());

  if (parsed->watch) {
    // WATCH registers a continuous query instead of reading. The response
    // still claims the admission-time snapshot identity: the watch observes
    // every write from that epoch on (its first pump evaluates the full
    // history, so earlier matches are delivered too — exactly once).
    const query::QueryAnalysis analysis =
        query::AnalyzeQueryTextWithFacts(query);
    MutexLock lock(watch_mu_);
    Result<uint64_t> id = watch_manager_.Register(*parsed, analysis);
    if (!id.ok()) return fail(id.status());
    watch_sessions_[*id] = session;
    response.ok = true;
    response.watch = *id;
    return response;
  }

  kernel::ExecContext exec = config_.exec;
  exec.trace = nullptr;
  exec.trace_parent = nullptr;

  if (parsed->explain) {
    // EXPLAIN through the server: the engine's static report — cardinality
    // intervals and positioned dead-predicate warnings, byte-identical to a
    // direct engine call over the same snapshot — rides the profile field.
    // Nothing executes, so no request span tree is built around it.
    const query::QueryAnalysis analysis =
        query::AnalyzeQueryTextWithFacts(query);
    Result<query::QueryResult> result =
        engine_->ExecuteExplain(*parsed, analysis.attr_sites, *snapshot);
    if (!result.ok()) return fail(result.status());
    response.profile = result->profile_text;
    response.ok = true;
    response.segments = protocol::EncodeSegments(result->segments);
    return response;
  }

  if (parsed->profile) {
    // PROFILE through the server: the request root span carries the serving
    // attributes (session, snapshot identity); the engine's query.execute
    // subtree underneath is identical to a direct engine call.
    trace::TraceSink sink;
    Result<query::QueryResult> result = [&]() {
      trace::SpanGuard root(&sink, nullptr, "server.request");
      root.Detail(StrFormat("session=%llu epoch=%llu version=%llu",
                            static_cast<unsigned long long>(session),
                            static_cast<unsigned long long>(response.epoch),
                            static_cast<unsigned long long>(response.version)));
      exec.trace = &sink;
      exec.trace_parent = root.span();
      return engine_->ExecuteSnapshot(*parsed, *snapshot, exec);
    }();
    if (!result.ok()) return fail(result.status());
    response.profile = sink.ToText();
    response.ok = true;
    response.segments = protocol::EncodeSegments(result->segments);
    return response;
  }

  Result<query::QueryResult> result =
      engine_->ExecuteSnapshot(*parsed, *snapshot, exec);
  if (!result.ok()) return fail(result.status());
  response.ok = true;
  response.segments = protocol::EncodeSegments(result->segments);
  return response;
}

protocol::Response QueryServer::Call(uint64_t session, uint64_t seq,
                                     const std::string& query) {
  // One-shot completion latch; Submit errors become ERR responses so every
  // caller sees uniform typed results.
  struct CallState {
    Mutex mu;
    CondVar cv;
    bool ready COBRA_GUARDED_BY(mu) = false;
    protocol::Response response COBRA_GUARDED_BY(mu);
  };
  auto state = std::make_shared<CallState>();
  Status admitted =
      Submit(session, seq, query, [state](protocol::Response response) {
        MutexLock lock(state->mu);
        state->response = std::move(response);
        state->ready = true;
        state->cv.NotifyAll();
      });
  if (!admitted.ok()) {
    protocol::Response response;
    response.ok = false;
    response.code = admitted.code();
    response.message = admitted.message();
    response.session = session;
    response.seq = seq;
    return response;
  }
  MutexLock lock(state->mu);
  while (!state->ready) state->cv.Wait(lock);
  return state->response;
}

std::string QueryServer::HandleFrame(const std::string& payload) {
  Result<protocol::Request> request = protocol::ParseRequest(payload);
  if (!request.ok()) {
    protocol::Response response;
    response.ok = false;
    response.code = request.status().code();
    response.message = request.status().message();
    return protocol::EncodeResponse(response);
  }
  return protocol::EncodeResponse(
      Call(request->session, request->seq, request->query));
}

Status QueryServer::PumpWatches() {
  kernel::ExecContext exec = config_.exec;
  exec.trace = nullptr;
  exec.trace_parent = nullptr;
  std::vector<query::WatchNotification> notes;
  MutexLock lock(watch_mu_);
  COBRA_RETURN_IF_ERROR(watch_manager_.Pump(exec, &notes));
  for (const query::WatchNotification& note : notes) {
    auto it = watch_sessions_.find(note.watch_id);
    if (it == watch_sessions_.end()) continue;
    protocol::Notification out;
    out.watch = note.watch_id;
    out.seq = note.seq;
    out.epoch = note.epoch;
    out.version = note.version;
    out.segment = protocol::EncodeSegment(note.segment);
    pending_notifications_[it->second].push_back(std::move(out));
  }
  return Status::OK();
}

std::vector<protocol::Notification> QueryServer::TakeNotifications(
    uint64_t session) {
  MutexLock lock(watch_mu_);
  auto it = pending_notifications_.find(session);
  if (it == pending_notifications_.end()) return {};
  std::vector<protocol::Notification> out = std::move(it->second);
  pending_notifications_.erase(it);
  return out;
}

void QueryServer::Shutdown() {
  std::unique_ptr<ThreadPool> pool;
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
    // Drain to zero in-flight before touching pool_: in_flight_ covers the
    // window between admission and Schedule, so a Submit racing this
    // Shutdown keeps the wait alive until its task has been enqueued AND
    // executed — the pool is never torn down under a pending Schedule, and
    // every admitted request reaches a worker. Taking the pool under the
    // lock also makes concurrent Shutdowns safe (one wins, the rest no-op).
    while (in_flight_ > 0) drained_cv_.Wait(lock);
    pool = std::move(pool_);
  }
  if (pool != nullptr) {
    // The workers may still be inside the done callbacks that follow the
    // in_flight_ decrement; WaitIdle sees those tasks through before the
    // pool goes away. New Submits have been bouncing with Unavailable
    // since the flag flipped above.
    pool->WaitIdle();
  }
}

ServerStats QueryServer::stats() const {
  ServerStats out;
  {
    MutexLock lock(mu_);
    out.accepted = accepted_;
    out.rejected_busy = rejected_busy_;
    out.rejected_shutdown = rejected_shutdown_;
    out.completed = completed_;
    out.errors = errors_;
    out.sessions_opened = sessions_opened_;
    out.sessions_closed = sessions_closed_;
    out.in_flight = in_flight_;
    out.snapshots = snapshots_.stats();
  }
  MutexLock lock(watch_mu_);
  out.watches = watch_manager_.watch_count();
  return out;
}

protocol::Response LocalConnection::Query(const std::string& text) {
  protocol::Request request;
  request.session = session_;
  request.seq = next_seq_++;
  request.query = text;
  // Full wire round-trip, frames included: what a socket client would send
  // and read, minus the socket.
  protocol::FrameDecoder decoder;
  decoder.Feed(protocol::EncodeFrame(
      server_->HandleFrame(protocol::EncodeRequest(request))));
  std::string payload;
  COBRA_CHECK(decoder.Next(&payload));
  Result<protocol::Response> response = protocol::ParseResponse(payload);
  COBRA_CHECK(response.ok());
  return *response;
}

std::vector<protocol::Notification> LocalConnection::TakeNotifications() {
  // Same no-socket wire round-trip as Query(): every notification is frame-
  // encoded and re-parsed, so the bytes a test compares are exactly the
  // bytes a TCP client would read.
  std::vector<protocol::Notification> out;
  protocol::FrameDecoder decoder;
  for (const protocol::Notification& pending :
       server_->TakeNotifications(session_)) {
    decoder.Feed(protocol::EncodeFrame(protocol::EncodeNotification(pending)));
    std::string payload;
    COBRA_CHECK(decoder.Next(&payload));
    Result<protocol::Notification> parsed =
        protocol::ParseNotification(payload);
    COBRA_CHECK(parsed.ok());
    out.push_back(std::move(*parsed));
  }
  return out;
}

// -- TCP transport ---------------------------------------------------------

Status TcpServer::Start(uint16_t port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 16) < 0) {
    ::close(listen_fd);
    return Status::IoError("bind/listen on 127.0.0.1 failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_.store(listen_fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  // The fd value is fixed for the thread's lifetime; Stop() only shuts the
  // socket down (which unblocks accept) and closes it after joining us.
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // listener closed by Stop()
    std::vector<Connection> reaped;
    bool admitted = false;
    {
      MutexLock lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      // Reap connections whose serving thread already returned, so a
      // long-lived server does not accumulate dead std::thread objects.
      for (uint64_t id : finished_) {
        auto it = connections_.find(id);
        if (it != connections_.end()) {
          reaped.push_back(std::move(it->second));
          connections_.erase(it);
        }
      }
      finished_.clear();
      if (connections_.size() < kMaxConnections) {
        const uint64_t id = next_connection_++;
        Connection& conn = connections_[id];
        conn.fd = fd;
        conn.thread = std::thread([this, fd, id] { ServeConnection(fd, id); });
        admitted = true;
      }
    }
    // Past the cap the connection is refused by an immediate close — the
    // worker pool behind HandleFrame stays protected by its own admission
    // bound either way.
    if (!admitted) ::close(fd);
    for (Connection& conn : reaped) {
      // These threads have already returned (they marked themselves
      // finished), so the joins cannot block on a live connection.
      if (conn.thread.joinable()) conn.thread.join();
      ::close(conn.fd);
    }
  }
}

void TcpServer::ServeConnection(int fd, uint64_t id) {
  // Connection-implicit session: requests with session id 0 are rewritten
  // to it, so a plain client needs no handshake.
  const uint64_t session = server_->OpenSession();
  protocol::FrameDecoder decoder;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    if (decoder.poisoned()) break;
    std::string payload;
    while (decoder.Next(&payload)) {
      Result<protocol::Request> request = protocol::ParseRequest(payload);
      std::string out;
      if (!request.ok()) {
        protocol::Response response;
        response.ok = false;
        response.code = request.status().code();
        response.message = request.status().message();
        out = protocol::EncodeFrame(protocol::EncodeResponse(response));
      } else {
        const uint64_t sid = request->session == 0 ? session : request->session;
        out = protocol::EncodeFrame(protocol::EncodeResponse(
            server_->Call(sid, request->seq, request->query)));
        // Watch notifications queued for this session ride behind the
        // response as "N" frames — a client distinguishes them by the
        // payload's leading field.
        for (const protocol::Notification& note :
             server_->TakeNotifications(sid)) {
          out += protocol::EncodeFrame(protocol::EncodeNotification(note));
        }
      }
      size_t sent = 0;
      while (sent < out.size()) {
        const ssize_t w = ::write(fd, out.data() + sent, out.size() - sent);
        if (w <= 0) break;
        sent += static_cast<size_t>(w);
      }
      if (sent < out.size()) break;
    }
  }
  // The fd stays open (whoever joins us closes it — see Connection); only
  // mark the connection reapable.
  (void)server_->CloseSession(session);
  MutexLock lock(mu_);
  finished_.push_back(id);
}

void TcpServer::Stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    // shutdown() unblocks accept(); close() alone does not on all kernels.
    // Closing waits until the accept thread is joined so the fd number
    // cannot be recycled under a still-running accept().
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd >= 0) ::close(listen_fd);
  std::map<uint64_t, Connection> connections;
  {
    MutexLock lock(mu_);
    connections.swap(connections_);
    finished_.clear();
  }
  // First unblock every reader still inside read() (shutdown on an
  // already-disconnected fd is a harmless ENOTCONN), then join and close.
  for (auto& [id, conn] : connections) ::shutdown(conn.fd, SHUT_RDWR);
  for (auto& [id, conn] : connections) {
    if (conn.thread.joinable()) conn.thread.join();
    ::close(conn.fd);
  }
}

}  // namespace cobra::server
