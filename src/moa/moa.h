#ifndef COBRA_MOA_MOA_H_
#define COBRA_MOA_MOA_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"
#include "kernel/exec_context.h"

namespace cobra::moa {

/// A SET structure: an ordered set of object identifiers. Moa's structure
/// primitives (SET, TUPLE, OBJECT) are flattened onto BATs; a SET of objects
/// is carried as its oid list, and TUPLE attributes live in per-attribute
/// BATs, exactly the vertical decomposition Monet favours.
struct OidSet {
  std::vector<kernel::Oid> oids;

  size_t size() const { return oids.size(); }
  bool empty() const { return oids.empty(); }
};

/// Schema of an object class: attribute name -> tail type. Every attribute
/// is stored in the kernel catalog as BAT "<class>.<attr>" (head = object
/// oid); the class extent is BAT "<class>.@extent".
struct ClassDef {
  std::string name;
  std::map<std::string, kernel::TailType> attributes;
};

/// The Moa logical layer: an object algebra whose operators are rewritten
/// into kernel BAT operations (the paper's "flattening an object algebra to
/// provide performance" [16]). One session wraps one kernel catalog.
class MoaSession {
 public:
  explicit MoaSession(kernel::Catalog* catalog);

  // -- DDL / DML ------------------------------------------------------------

  /// Registers a class and creates its extent and attribute BATs.
  Status DefineClass(const ClassDef& def);
  bool HasClass(const std::string& name) const;

  /// Allocates a fresh object of `cls`, appending to the extent.
  Result<kernel::Oid> NewObject(const std::string& cls);

  /// Declared tail type of a class attribute — the schema probe used by
  /// static pre-checks (SetAttr's type validation, the analyzer layer).
  Result<kernel::TailType> AttrType(const std::string& cls,
                                    const std::string& attr) const;

  /// Sets an attribute value (appends to the attribute BAT). The value's
  /// type is validated against the declared schema BEFORE any catalog
  /// access, so a mistyped write is rejected without touching storage.
  Status SetAttr(const std::string& cls, kernel::Oid oid,
                 const std::string& attr, const kernel::Value& value);

  /// Reads an attribute value of one object (first binding).
  Result<kernel::Value> GetAttr(const std::string& cls, kernel::Oid oid,
                                const std::string& attr) const;

  // -- Algebra operators ------------------------------------------------------

  /// All objects of a class.
  Result<OidSet> Extent(const std::string& cls) const;

  /// select(extent, attr = value).
  Result<OidSet> SelectEq(const std::string& cls, const std::string& attr,
                          const kernel::Value& value) const;

  /// select(extent, lo <= attr <= hi) over numeric attributes.
  Result<OidSet> SelectRange(const std::string& cls, const std::string& attr,
                             double lo, double hi) const;

  /// project(set, attr): BAT of (oid, value) for the objects in `set`.
  Result<kernel::Bat> Project(const std::string& cls, const OidSet& set,
                              const std::string& attr) const;

  /// map(f, project(set, attr)): element-wise ADT operation over a column —
  /// the extension hook through which feature/semantic operators run inside
  /// the algebra.
  Result<kernel::Bat> Map(
      const kernel::Bat& column, kernel::TailType result_type,
      const std::function<kernel::Value(const kernel::Value&)>& fn) const;

  /// Set operations (order preserved from the left operand).
  static OidSet Intersect(const OidSet& a, const OidSet& b);
  static OidSet Union(const OidSet& a, const OidSet& b);
  static OidSet Minus(const OidSet& a, const OidSet& b);

  /// Semijoin: objects in `set` whose oid-typed attribute points into
  /// `targets`.
  Result<OidSet> JoinInto(const std::string& cls, const OidSet& set,
                          const std::string& attr,
                          const OidSet& targets) const;

  /// Aggregates over a numeric attribute of a set.
  Result<double> AggregateSum(const std::string& cls, const OidSet& set,
                              const std::string& attr) const;
  Result<double> AggregateMax(const std::string& cls, const OidSet& set,
                              const std::string& attr) const;

  kernel::Catalog* catalog() { return catalog_; }

  /// The next fresh object id. Serialized by the durability layer so a
  /// recovered session keeps allocating ids no live object uses.
  kernel::Oid next_oid() const { return next_oid_; }
  void set_next_oid(kernel::Oid oid) { next_oid_ = oid; }

  /// Execution parameters forwarded to the kernel operators the algebra
  /// rewrites into (select/join/aggregate go morsel-parallel past the
  /// cutoff). Defaults to the serial context.
  const kernel::ExecContext& exec() const { return exec_; }
  void set_exec(const kernel::ExecContext& exec) { exec_ = exec; }

 private:
  std::string ExtentName(const std::string& cls) const {
    return cls + ".@extent";
  }
  std::string AttrName(const std::string& cls, const std::string& attr) const {
    return cls + "." + attr;
  }
  Result<const kernel::Bat*> AttrBat(const std::string& cls,
                                     const std::string& attr) const;
  /// Project under an explicit context — lets the aggregates nest the
  /// projection's span under their own instead of the session root.
  Result<kernel::Bat> ProjectImpl(const std::string& cls, const OidSet& set,
                                  const std::string& attr,
                                  const kernel::ExecContext& exec) const;
  /// Converts a selection result (BAT) into the oid set of its heads,
  /// restricted to `set` when provided.
  static OidSet HeadsOf(const kernel::Bat& bat);

  kernel::Catalog* catalog_;
  std::map<std::string, ClassDef> classes_;
  kernel::Oid next_oid_ = 1;
  kernel::ExecContext exec_;
};

}  // namespace cobra::moa

#endif  // COBRA_MOA_MOA_H_
