#include "moa/moa.h"

#include <algorithm>
#include <unordered_set>

#include "base/logging.h"
#include "base/trace.h"

namespace cobra::moa {

namespace {

/// Opens the span of a Moa algebra operator under the session context's
/// current parent. No sink installed -> records nothing.
trace::SpanGuard MoaSpan(const kernel::ExecContext& exec, const char* op) {
  return trace::SpanGuard(exec.trace, exec.trace_parent, op);
}

}  // namespace

MoaSession::MoaSession(kernel::Catalog* catalog) : catalog_(catalog) {
  COBRA_CHECK(catalog != nullptr);
}

Status MoaSession::DefineClass(const ClassDef& def) {
  if (classes_.count(def.name) != 0) {
    return Status::AlreadyExists("class exists: " + def.name);
  }
  COBRA_ASSIGN_OR_RETURN(kernel::Bat * extent,
                         catalog_->Create(ExtentName(def.name),
                                          kernel::TailType::kOid));
  (void)extent;
  for (const auto& [attr, type] : def.attributes) {
    COBRA_ASSIGN_OR_RETURN(kernel::Bat * bat,
                           catalog_->Create(AttrName(def.name, attr), type));
    (void)bat;
  }
  classes_[def.name] = def;
  return Status::OK();
}

bool MoaSession::HasClass(const std::string& name) const {
  return classes_.count(name) != 0;
}

Result<kernel::Oid> MoaSession::NewObject(const std::string& cls) {
  if (!HasClass(cls)) return Status::NotFound("no class " + cls);
  COBRA_ASSIGN_OR_RETURN(kernel::Bat * extent,
                         catalog_->Get(ExtentName(cls)));
  const kernel::Oid oid = next_oid_++;
  extent->AppendOid(oid, oid);
  return oid;
}

Result<kernel::TailType> MoaSession::AttrType(const std::string& cls,
                                              const std::string& attr) const {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no class " + cls);
  auto attr_it = it->second.attributes.find(attr);
  if (attr_it == it->second.attributes.end()) {
    return Status::NotFound("no attribute " + attr + " on " + cls);
  }
  return attr_it->second;
}

Status MoaSession::SetAttr(const std::string& cls, kernel::Oid oid,
                           const std::string& attr,
                           const kernel::Value& value) {
  COBRA_ASSIGN_OR_RETURN(const kernel::TailType declared, AttrType(cls, attr));
  // Schema pre-check: a mistyped value is rejected here, before the catalog
  // lookup, instead of by Bat::Append mid-write.
  if (value.type() != declared) {
    return Status::InvalidArgument(
        "attribute " + cls + "." + attr + " is " +
        std::string(kernel::TailTypeName(declared)) + ", got " +
        std::string(kernel::TailTypeName(value.type())));
  }
  COBRA_ASSIGN_OR_RETURN(kernel::Bat * bat,
                         catalog_->Get(AttrName(cls, attr)));
  return bat->Append(oid, value);
}

Result<const kernel::Bat*> MoaSession::AttrBat(const std::string& cls,
                                               const std::string& attr) const {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::NotFound("no class " + cls);
  if (it->second.attributes.count(attr) == 0) {
    return Status::NotFound("no attribute " + attr + " on " + cls);
  }
  return static_cast<const kernel::Catalog*>(catalog_)->Get(
      AttrName(cls, attr));
}

Result<kernel::Value> MoaSession::GetAttr(const std::string& cls,
                                          kernel::Oid oid,
                                          const std::string& attr) const {
  COBRA_ASSIGN_OR_RETURN(const kernel::Bat* bat, AttrBat(cls, attr));
  // Probe the BAT's persistent head index when the accretion policy allows;
  // index positions are ascending, so front() is the first binding, same as
  // the scan.
  if (auto idx = bat->HeadIndex(/*force=*/false)) {
    auto it = idx->map.find(oid);
    if (it == idx->map.end()) {
      return Status::NotFound("object has no value for " + attr);
    }
    return bat->TailAt(it->second.front());
  }
  for (size_t i = 0; i < bat->size(); ++i) {
    if (bat->HeadAt(i) == oid) return bat->TailAt(i);
  }
  return Status::NotFound("object has no value for " + attr);
}

OidSet MoaSession::HeadsOf(const kernel::Bat& bat) {
  OidSet out;
  out.oids.reserve(bat.size());
  for (size_t i = 0; i < bat.size(); ++i) out.oids.push_back(bat.HeadAt(i));
  return out;
}

Result<OidSet> MoaSession::Extent(const std::string& cls) const {
  if (!HasClass(cls)) return Status::NotFound("no class " + cls);
  COBRA_ASSIGN_OR_RETURN(
      const kernel::Bat* extent,
      static_cast<const kernel::Catalog*>(catalog_)->Get(ExtentName(cls)));
  return HeadsOf(*extent);
}

Result<OidSet> MoaSession::SelectEq(const std::string& cls,
                                    const std::string& attr,
                                    const kernel::Value& value) const {
  trace::SpanGuard span = MoaSpan(exec_, "moa.select_eq");
  if (span.enabled()) span.Detail(cls + "." + attr);
  COBRA_ASSIGN_OR_RETURN(const kernel::Bat* bat, AttrBat(cls, attr));
  span.RowsIn(bat->size());
  COBRA_ASSIGN_OR_RETURN(
      kernel::Bat selected,
      bat->SelectEq(value, exec_.WithTraceParent(span.span())));
  span.RowsOut(selected.size());
  return HeadsOf(selected);
}

Result<OidSet> MoaSession::SelectRange(const std::string& cls,
                                       const std::string& attr, double lo,
                                       double hi) const {
  trace::SpanGuard span = MoaSpan(exec_, "moa.select_range");
  if (span.enabled()) span.Detail(cls + "." + attr);
  COBRA_ASSIGN_OR_RETURN(const kernel::Bat* bat, AttrBat(cls, attr));
  span.RowsIn(bat->size());
  COBRA_ASSIGN_OR_RETURN(
      kernel::Bat selected,
      bat->SelectRange(lo, hi, exec_.WithTraceParent(span.span())));
  span.RowsOut(selected.size());
  return HeadsOf(selected);
}

Result<kernel::Bat> MoaSession::Project(const std::string& cls,
                                        const OidSet& set,
                                        const std::string& attr) const {
  return ProjectImpl(cls, set, attr, exec_);
}

Result<kernel::Bat> MoaSession::ProjectImpl(
    const std::string& cls, const OidSet& set, const std::string& attr,
    const kernel::ExecContext& exec) const {
  trace::SpanGuard span = MoaSpan(exec, "moa.project");
  if (span.enabled()) span.Detail(cls + "." + attr);
  COBRA_ASSIGN_OR_RETURN(const kernel::Bat* bat, AttrBat(cls, attr));
  span.RowsIn(bat->size());
  // semijoin(attr_bat, set-as-bat): rewrite through the kernel operator.
  kernel::Bat set_bat(kernel::TailType::kOid);
  for (kernel::Oid oid : set.oids) set_bat.AppendOid(oid, oid);
  kernel::Bat out =
      kernel::Semijoin(*bat, set_bat, exec.WithTraceParent(span.span()));
  span.RowsOut(out.size());
  return out;
}

Result<kernel::Bat> MoaSession::Map(
    const kernel::Bat& column, kernel::TailType result_type,
    const std::function<kernel::Value(const kernel::Value&)>& fn) const {
  kernel::Bat out(result_type);
  for (size_t i = 0; i < column.size(); ++i) {
    const kernel::Value v = fn(column.TailAt(i));
    if (v.type() != result_type) {
      return Status::InvalidArgument("Map function returned wrong type");
    }
    COBRA_RETURN_IF_ERROR(out.Append(column.HeadAt(i), v));
  }
  return out;
}

OidSet MoaSession::Intersect(const OidSet& a, const OidSet& b) {
  std::unordered_set<kernel::Oid> in_b(b.oids.begin(), b.oids.end());
  OidSet out;
  for (kernel::Oid oid : a.oids) {
    if (in_b.count(oid) != 0) out.oids.push_back(oid);
  }
  return out;
}

OidSet MoaSession::Union(const OidSet& a, const OidSet& b) {
  std::unordered_set<kernel::Oid> seen(a.oids.begin(), a.oids.end());
  OidSet out = a;
  for (kernel::Oid oid : b.oids) {
    if (seen.insert(oid).second) out.oids.push_back(oid);
  }
  return out;
}

OidSet MoaSession::Minus(const OidSet& a, const OidSet& b) {
  std::unordered_set<kernel::Oid> in_b(b.oids.begin(), b.oids.end());
  OidSet out;
  for (kernel::Oid oid : a.oids) {
    if (in_b.count(oid) == 0) out.oids.push_back(oid);
  }
  return out;
}

Result<OidSet> MoaSession::JoinInto(const std::string& cls, const OidSet& set,
                                    const std::string& attr,
                                    const OidSet& targets) const {
  trace::SpanGuard span = MoaSpan(exec_, "moa.join_into");
  if (span.enabled()) span.Detail(cls + "." + attr);
  COBRA_ASSIGN_OR_RETURN(const kernel::Bat* bat, AttrBat(cls, attr));
  if (bat->tail_type() != kernel::TailType::kOid) {
    return Status::InvalidArgument("JoinInto requires an oid attribute");
  }
  span.RowsIn(set.size() + targets.size());
  kernel::Bat target_bat(kernel::TailType::kOid);
  for (kernel::Oid oid : targets.oids) target_bat.AppendOid(oid, oid);
  COBRA_ASSIGN_OR_RETURN(
      kernel::Bat joined,
      kernel::Join(*bat, target_bat, exec_.WithTraceParent(span.span())));
  OidSet joined_heads = HeadsOf(joined);
  OidSet out = Intersect(set, joined_heads);
  span.RowsOut(out.size());
  return out;
}

Result<double> MoaSession::AggregateSum(const std::string& cls,
                                        const OidSet& set,
                                        const std::string& attr) const {
  trace::SpanGuard span = MoaSpan(exec_, "moa.aggregate_sum");
  if (span.enabled()) span.Detail(cls + "." + attr);
  const kernel::ExecContext child = exec_.WithTraceParent(span.span());
  COBRA_ASSIGN_OR_RETURN(kernel::Bat column,
                         ProjectImpl(cls, set, attr, child));
  span.RowsIn(column.size());
  span.RowsOut(1);
  return column.Sum(child);
}

Result<double> MoaSession::AggregateMax(const std::string& cls,
                                        const OidSet& set,
                                        const std::string& attr) const {
  trace::SpanGuard span = MoaSpan(exec_, "moa.aggregate_max");
  if (span.enabled()) span.Detail(cls + "." + attr);
  const kernel::ExecContext child = exec_.WithTraceParent(span.span());
  COBRA_ASSIGN_OR_RETURN(kernel::Bat column,
                         ProjectImpl(cls, set, attr, child));
  span.RowsIn(column.size());
  span.RowsOut(1);
  return column.Max(child);
}

}  // namespace cobra::moa
