#ifndef COBRA_AUDIO_PITCH_H_
#define COBRA_AUDIO_PITCH_H_

#include <cstddef>
#include <vector>

namespace cobra::audio {

/// Autocorrelation pitch tracker. The paper estimates pitch by
/// autocorrelation analysis of the low-passed (0–882 Hz) signal and is only
/// interested in pitch below 1 kHz (human speech).
class PitchTracker {
 public:
  struct Options {
    double sample_rate = 22050.0;
    double min_pitch_hz = 70.0;
    double max_pitch_hz = 420.0;
    /// Minimum normalized autocorrelation peak (r[lag]/r[0]) to call the
    /// window voiced; unvoiced windows report pitch 0.
    double voicing_threshold = 0.30;
    /// Analysis window length in samples (20 ms at 22.05 kHz).
    size_t window_samples = 441;
  };

  explicit PitchTracker(const Options& options) : options_(options) {}
  PitchTracker() : PitchTracker(Options()) {}

  /// Pitch of one window in Hz; 0 when unvoiced or too short.
  double EstimateWindow(const std::vector<double>& window) const;

  /// Pitch for consecutive non-overlapping windows of `signal`.
  std::vector<double> EstimateSeries(const std::vector<double>& signal) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace cobra::audio

#endif  // COBRA_AUDIO_PITCH_H_
