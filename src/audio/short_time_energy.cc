#include "audio/short_time_energy.h"

#include <map>

namespace cobra::audio {

double ShortTimeEnergy(const std::vector<double>& frame,
                       dsp::WindowType window) {
  if (frame.empty()) return 0.0;
  const auto w = dsp::MakeWindow(window, frame.size());
  double acc = 0.0;
  for (size_t i = 0; i < frame.size(); ++i) {
    const double v = frame[i] * w[i];
    acc += v * v;
  }
  return acc / static_cast<double>(frame.size());
}

std::vector<double> ShortTimeEnergySeries(const std::vector<double>& signal,
                                          size_t frame_len,
                                          dsp::WindowType window) {
  std::vector<double> out;
  if (frame_len == 0 || signal.size() < frame_len) return out;
  const auto w = dsp::MakeWindow(window, frame_len);
  out.reserve(signal.size() / frame_len);
  for (size_t start = 0; start + frame_len <= signal.size();
       start += frame_len) {
    double acc = 0.0;
    for (size_t i = 0; i < frame_len; ++i) {
      const double v = signal[start + i] * w[i];
      acc += v * v;
    }
    out.push_back(acc / static_cast<double>(frame_len));
  }
  return out;
}

}  // namespace cobra::audio
