#ifndef COBRA_AUDIO_ENDPOINT_H_
#define COBRA_AUDIO_ENDPOINT_H_

#include <cstddef>
#include <vector>

namespace cobra::audio {

/// Speech endpoint detection (paper §5.2): a 0.1 s clip is speech when both
///  - a weighted sum of the average, maximum and dynamic range of the
///    0–882 Hz short-time energy exceeds `ste_threshold` (paper: 2.2e-3), and
///  - the sum of the average values and dynamic range of the first three
///    MFCCs exceeds `mfcc_threshold` (paper: 1.3).
/// The paper also tried entropy and zero-crossing endpointing and found them
/// powerless in this noisy domain; `bench_speech_endpoint` reproduces that.
struct EndpointOptions {
  double ste_threshold = 2.2e-3;
  double ste_avg_weight = 0.5;
  double ste_max_weight = 0.25;
  double ste_range_weight = 0.25;
  double mfcc_threshold = 1.3;
};

/// Per-clip endpoint decision inputs.
struct EndpointMetrics {
  double ste_metric = 0.0;
  double mfcc_metric = 0.0;
  bool is_speech = false;
};

/// Computes the decision from per-frame low-band STE values and per-frame
/// MFCC vectors of one clip.
EndpointMetrics DetectSpeechEndpoint(
    const std::vector<double>& low_band_ste_per_frame,
    const std::vector<std::vector<double>>& mfcc_per_frame,
    const EndpointOptions& options);

}  // namespace cobra::audio

#endif  // COBRA_AUDIO_ENDPOINT_H_
