#ifndef COBRA_AUDIO_CLIP_FEATURES_H_
#define COBRA_AUDIO_CLIP_FEATURES_H_

#include <vector>

#include "audio/endpoint.h"
#include "audio/mfcc.h"
#include "audio/pitch.h"
#include "audio/types.h"
#include "dsp/filter.h"

namespace cobra::audio {

/// Raw per-clip audio statistics: the paper's features f2–f10 plus the
/// endpoint decision. Excited-speech statistics (STE over the 882–2205 Hz
/// band; pitch and MFCCs over 0–882 Hz) are only meaningful on clips the
/// endpoint detector marks as speech; the analyzer still reports them on
/// non-speech clips (they are near zero there).
struct ClipFeatures {
  bool is_speech = false;       // endpoint decision
  double pause_rate = 0.0;      // f2: fraction of silent frames in the clip
  double ste_avg = 0.0;         // f3: mean mid-band STE
  double ste_range = 0.0;       // f4: dynamic range of mid-band STE
  double ste_max = 0.0;         // f5: max mid-band STE
  double pitch_avg = 0.0;       // f6: mean voiced pitch (Hz)
  double pitch_range = 0.0;     // f7: dynamic range of voiced pitch
  double pitch_max = 0.0;       // f8: max voiced pitch
  double mfcc_avg = 0.0;        // f9: mean MFCC activity
  double mfcc_max = 0.0;        // f10: max MFCC activity
  EndpointMetrics endpoint;     // diagnostic: raw endpoint metrics
};

/// Turns a 0.1 s clip of raw samples into ClipFeatures, running the paper's
/// band split: 0–882 Hz for endpointing/pitch/MFCC, 882–2205 Hz for the
/// excited-speech STE.
class ClipAnalyzer {
 public:
  struct Options {
    AudioFormat format;
    EndpointOptions endpoint;
    PitchTracker::Options pitch;
    MfccExtractor::Options mfcc;
    /// Per-frame low-band STE below this counts as a silent frame for the
    /// pause-rate feature.
    double silence_ste_threshold = 6e-4;
    size_t filter_taps = 101;
  };

  explicit ClipAnalyzer(const Options& options);
  ClipAnalyzer() : ClipAnalyzer(Options()) {}

  /// Analyzes one clip (must contain at least one 10 ms frame).
  ClipFeatures Analyze(const std::vector<double>& clip_samples) const;

  /// Convenience: analyzes a long signal clip by clip.
  std::vector<ClipFeatures> AnalyzeSignal(
      const std::vector<double>& samples) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  dsp::FirFilter low_band_;   // 0 – 882 Hz
  dsp::FirFilter mid_band_;   // 882 – 2205 Hz
  MfccExtractor mfcc_;
  PitchTracker pitch_;
};

}  // namespace cobra::audio

#endif  // COBRA_AUDIO_CLIP_FEATURES_H_
