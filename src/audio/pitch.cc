#include "audio/pitch.h"

#include <algorithm>
#include <cmath>

#include "dsp/spectral.h"

namespace cobra::audio {

double PitchTracker::EstimateWindow(const std::vector<double>& window) const {
  const size_t min_lag = static_cast<size_t>(
      options_.sample_rate / options_.max_pitch_hz);
  const size_t max_lag = static_cast<size_t>(
      options_.sample_rate / options_.min_pitch_hz);
  if (window.size() < max_lag + 1) return 0.0;

  const auto r = dsp::Autocorrelation(window, max_lag);
  if (r[0] <= 1e-12) return 0.0;

  size_t best_lag = 0;
  double best = 0.0;
  for (size_t lag = min_lag; lag <= max_lag; ++lag) {
    // Local peak in the autocorrelation.
    if (lag > min_lag && lag < max_lag &&
        (r[lag] < r[lag - 1] || r[lag] < r[lag + 1])) {
      continue;
    }
    if (r[lag] > best) {
      best = r[lag];
      best_lag = lag;
    }
  }
  if (best_lag == 0) return 0.0;
  const double normalized = best / r[0];
  if (normalized < options_.voicing_threshold) return 0.0;
  return options_.sample_rate / static_cast<double>(best_lag);
}

std::vector<double> PitchTracker::EstimateSeries(
    const std::vector<double>& signal) const {
  std::vector<double> out;
  const size_t w = options_.window_samples;
  if (w == 0) return out;
  for (size_t start = 0; start + w <= signal.size(); start += w) {
    std::vector<double> window(signal.begin() + start,
                               signal.begin() + start + w);
    out.push_back(EstimateWindow(window));
  }
  return out;
}

}  // namespace cobra::audio
