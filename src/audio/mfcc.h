#ifndef COBRA_AUDIO_MFCC_H_
#define COBRA_AUDIO_MFCC_H_

#include <cstddef>
#include <vector>

namespace cobra::audio {

/// Mel-Frequency Cepstral Coefficient extractor: Hamming-windowed power
/// spectrum -> triangular mel filterbank -> log energies -> DCT-II. The
/// paper uses 12 coefficients and observes that the first three are the most
/// indicative for speech detection.
class MfccExtractor {
 public:
  struct Options {
    double sample_rate = 22050.0;
    size_t num_filters = 20;
    size_t num_coeffs = 12;
    double min_freq_hz = 0.0;
    /// Upper edge of the filterbank; the paper low-passes to 882 Hz before
    /// computing MFCCs (the indicative band for speech in its noisy mix).
    double max_freq_hz = 882.0;
    size_t fft_size = 256;
  };

  explicit MfccExtractor(const Options& options);
  MfccExtractor() : MfccExtractor(Options()) {}

  /// MFCCs of one analysis frame (any length <= fft_size; zero-padded).
  std::vector<double> Compute(const std::vector<double>& frame) const;

  /// MFCCs for every consecutive `frame_len` frame of `signal`.
  std::vector<std::vector<double>> ComputeSeries(
      const std::vector<double>& signal, size_t frame_len) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  /// filterbank_[f][k] = weight of FFT bin k in mel filter f.
  std::vector<std::vector<double>> filterbank_;
};

}  // namespace cobra::audio

#endif  // COBRA_AUDIO_MFCC_H_
