#ifndef COBRA_AUDIO_SHORT_TIME_ENERGY_H_
#define COBRA_AUDIO_SHORT_TIME_ENERGY_H_

#include <vector>

#include "dsp/window.h"

namespace cobra::audio {

/// Short Time Energy of one analysis frame: the average squared windowed
/// amplitude. The paper computes STE after sub-band division and selects the
/// Hamming window among the four commonly used filters because it gave the
/// best endpointing / excited-speech indication.
double ShortTimeEnergy(const std::vector<double>& frame,
                       dsp::WindowType window = dsp::WindowType::kHamming);

/// STE for every consecutive `frame_len`-sample frame of `signal`
/// (truncating any tail shorter than a frame).
std::vector<double> ShortTimeEnergySeries(
    const std::vector<double>& signal, size_t frame_len,
    dsp::WindowType window = dsp::WindowType::kHamming);

}  // namespace cobra::audio

#endif  // COBRA_AUDIO_SHORT_TIME_ENERGY_H_
