#include "audio/clip_features.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "base/mathutil.h"
#include "audio/short_time_energy.h"

namespace cobra::audio {
namespace {

/// Scalar "MFCC activity" of one frame: mean absolute value of the first
/// three shape coefficients c1..c3 (the ones the paper found most
/// indicative; c0 is the raw log-energy sum).
double MfccActivity(const std::vector<double>& coeffs) {
  const size_t last = std::min<size_t>(4, coeffs.size());
  if (last <= 1) return 0.0;
  double acc = 0.0;
  for (size_t c = 1; c < last; ++c) acc += std::abs(coeffs[c]);
  return acc / static_cast<double>(last - 1);
}

}  // namespace

ClipAnalyzer::ClipAnalyzer(const Options& options)
    : options_(options),
      low_band_(dsp::FirFilter::BandPass(0.0, 882.0,
                                         options.format.sample_rate,
                                         options.filter_taps)),
      mid_band_(dsp::FirFilter::BandPass(882.0, 2205.0,
                                         options.format.sample_rate,
                                         options.filter_taps)),
      mfcc_(options.mfcc),
      pitch_(options.pitch) {}

ClipFeatures ClipAnalyzer::Analyze(
    const std::vector<double>& clip_samples) const {
  ClipFeatures f;
  const size_t frame_len = options_.format.FrameSamples();
  if (clip_samples.size() < frame_len) return f;

  const auto low = low_band_.Apply(clip_samples);
  const auto mid = mid_band_.Apply(clip_samples);

  // Endpointing inputs: low-band STE and MFCCs per 10 ms frame.
  const auto low_ste = ShortTimeEnergySeries(low, frame_len);
  const auto mfccs = mfcc_.ComputeSeries(low, frame_len);
  f.endpoint = DetectSpeechEndpoint(low_ste, mfccs, options_.endpoint);
  f.is_speech = f.endpoint.is_speech;

  // f2: pause rate = fraction of silent frames.
  size_t silent = 0;
  for (double e : low_ste) {
    if (e < options_.silence_ste_threshold) ++silent;
  }
  f.pause_rate = low_ste.empty()
                     ? 1.0
                     : static_cast<double>(silent) / low_ste.size();

  // f3–f5: mid-band (882–2205 Hz) STE statistics.
  const auto mid_ste = ShortTimeEnergySeries(mid, frame_len);
  f.ste_avg = Mean(mid_ste);
  f.ste_range = DynamicRange(mid_ste);
  f.ste_max = MaxOf(mid_ste);

  // f6–f8: voiced pitch statistics over the low band.
  const auto pitches = pitch_.EstimateSeries(low);
  std::vector<double> voiced;
  voiced.reserve(pitches.size());
  for (double p : pitches) {
    if (p > 0.0) voiced.push_back(p);
  }
  f.pitch_avg = Mean(voiced);
  f.pitch_range = DynamicRange(voiced);
  f.pitch_max = MaxOf(voiced);

  // f9–f10: MFCC activity statistics.
  std::vector<double> activity;
  activity.reserve(mfccs.size());
  for (const auto& frame : mfccs) activity.push_back(MfccActivity(frame));
  f.mfcc_avg = Mean(activity);
  f.mfcc_max = MaxOf(activity);
  return f;
}

std::vector<ClipFeatures> ClipAnalyzer::AnalyzeSignal(
    const std::vector<double>& samples) const {
  std::vector<ClipFeatures> out;
  const size_t clip_len = options_.format.ClipSamples();
  COBRA_CHECK(clip_len > 0);
  out.reserve(samples.size() / clip_len);
  for (size_t start = 0; start + clip_len <= samples.size();
       start += clip_len) {
    std::vector<double> clip(samples.begin() + start,
                             samples.begin() + start + clip_len);
    out.push_back(Analyze(clip));
  }
  return out;
}

}  // namespace cobra::audio
