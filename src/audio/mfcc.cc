#include "audio/mfcc.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "dsp/fft.h"
#include "dsp/spectral.h"
#include "dsp/window.h"

namespace cobra::audio {

MfccExtractor::MfccExtractor(const Options& options) : options_(options) {
  COBRA_CHECK(options_.num_filters >= options_.num_coeffs);
  COBRA_CHECK(options_.fft_size > 0 &&
              (options_.fft_size & (options_.fft_size - 1)) == 0);
  const size_t num_bins = options_.fft_size / 2 + 1;
  const double bin_hz = options_.sample_rate / options_.fft_size;

  const double mel_lo = dsp::HzToMel(options_.min_freq_hz);
  const double mel_hi = dsp::HzToMel(options_.max_freq_hz);
  // num_filters triangular filters need num_filters + 2 edge points.
  std::vector<double> edges_hz(options_.num_filters + 2);
  for (size_t i = 0; i < edges_hz.size(); ++i) {
    const double mel =
        mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                     static_cast<double>(edges_hz.size() - 1);
    edges_hz[i] = dsp::MelToHz(mel);
  }

  filterbank_.assign(options_.num_filters, std::vector<double>(num_bins, 0.0));
  for (size_t f = 0; f < options_.num_filters; ++f) {
    const double lo = edges_hz[f];
    const double mid = edges_hz[f + 1];
    const double hi = edges_hz[f + 2];
    for (size_t k = 0; k < num_bins; ++k) {
      const double hz = k * bin_hz;
      if (hz <= lo || hz >= hi) continue;
      filterbank_[f][k] = hz <= mid ? (hz - lo) / std::max(1e-9, mid - lo)
                                    : (hi - hz) / std::max(1e-9, hi - mid);
    }
  }
}

std::vector<double> MfccExtractor::Compute(
    const std::vector<double>& frame) const {
  std::vector<double> windowed = frame;
  if (!windowed.empty()) {
    const auto w = dsp::MakeWindow(dsp::WindowType::kHamming, windowed.size());
    dsp::ApplyWindow(w, windowed);
  }
  const auto power = dsp::PowerSpectrum(windowed, options_.fft_size);

  std::vector<double> log_energies(options_.num_filters, 0.0);
  for (size_t f = 0; f < options_.num_filters; ++f) {
    double e = 0.0;
    const size_t num_bins = std::min(power.size(), filterbank_[f].size());
    for (size_t k = 0; k < num_bins; ++k) e += filterbank_[f][k] * power[k];
    log_energies[f] = std::log(e + 1e-10);
  }
  return dsp::DctII(log_energies, options_.num_coeffs);
}

std::vector<std::vector<double>> MfccExtractor::ComputeSeries(
    const std::vector<double>& signal, size_t frame_len) const {
  std::vector<std::vector<double>> out;
  if (frame_len == 0) return out;
  for (size_t start = 0; start + frame_len <= signal.size();
       start += frame_len) {
    std::vector<double> frame(signal.begin() + start,
                              signal.begin() + start + frame_len);
    out.push_back(Compute(frame));
  }
  return out;
}

}  // namespace cobra::audio
