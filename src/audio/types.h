#ifndef COBRA_AUDIO_TYPES_H_
#define COBRA_AUDIO_TYPES_H_

#include <cstddef>
#include <vector>

namespace cobra::audio {

/// Sampling parameters used throughout the case study: the paper digitizes
/// audio at 22 kHz / 16-bit, analyzes 10 ms *frames* and aggregates per
/// 0.1 s *clips* (so one clip = 10 frames, and feature vectors are 10x the
/// video duration in seconds).
struct AudioFormat {
  double sample_rate = 22050.0;
  /// 10 ms analysis frame.
  size_t FrameSamples() const { return static_cast<size_t>(sample_rate / 100.0); }
  /// 0.1 s aggregation clip.
  size_t ClipSamples() const { return static_cast<size_t>(sample_rate / 10.0); }
  size_t FramesPerClip() const { return ClipSamples() / FrameSamples(); }
};

/// One 0.1 s clip of mono PCM samples in [-1, 1].
struct AudioClip {
  std::vector<double> samples;
};

}  // namespace cobra::audio

#endif  // COBRA_AUDIO_TYPES_H_
