#include "audio/endpoint.h"

#include <algorithm>
#include <cmath>

#include "base/mathutil.h"

namespace cobra::audio {

EndpointMetrics DetectSpeechEndpoint(
    const std::vector<double>& low_band_ste_per_frame,
    const std::vector<std::vector<double>>& mfcc_per_frame,
    const EndpointOptions& options) {
  EndpointMetrics m;
  if (low_band_ste_per_frame.empty()) return m;

  m.ste_metric = options.ste_avg_weight * Mean(low_band_ste_per_frame) +
                 options.ste_max_weight * MaxOf(low_band_ste_per_frame) +
                 options.ste_range_weight * DynamicRange(low_band_ste_per_frame);

  // First three shape coefficients (c1..c3 — c0 is the raw log-energy sum
  // and would swamp the metric), averaged in magnitude and ranged across
  // the clip's frames.
  const size_t kFirstCoeff = 1;
  const size_t kNumCoeffs = 3;
  double metric = 0.0;
  for (size_t c = kFirstCoeff; c < kFirstCoeff + kNumCoeffs; ++c) {
    std::vector<double> series;
    series.reserve(mfcc_per_frame.size());
    for (const auto& frame : mfcc_per_frame) {
      if (c < frame.size()) series.push_back(frame[c]);
    }
    if (series.empty()) continue;
    double abs_mean = 0.0;
    for (double v : series) abs_mean += std::abs(v);
    abs_mean /= static_cast<double>(series.size());
    metric += (abs_mean + DynamicRange(series)) / kNumCoeffs;
  }
  m.mfcc_metric = metric;

  m.is_speech = m.ste_metric > options.ste_threshold &&
                m.mfcc_metric > options.mfcc_threshold;
  return m;
}

}  // namespace cobra::audio
