#include "query/parser.h"

#include <cctype>

#include "base/strings.h"

namespace cobra::query {
namespace {

struct Token {
  enum class Kind { kWord, kString, kEquals, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<Token> Next() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) return Token{Token::Kind::kEnd, ""};
    const char c = input_[pos_];
    if (c == '=') {
      ++pos_;
      return Token{Token::Kind::kEquals, "="};
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++pos_;
      std::string text;
      while (pos_ < input_.size() && input_[pos_] != quote) {
        text += input_[pos_++];
      }
      if (pos_ >= input_.size()) {
        return Status::InvalidArgument("unterminated string literal");
      }
      ++pos_;  // closing quote
      return Token{Token::Kind::kString, text};
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
        c == '.') {
      std::string text;
      while (pos_ < input_.size()) {
        const char d = input_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '-' || d == '.') {
          text += d;
          ++pos_;
        } else {
          break;
        }
      }
      return Token{Token::Kind::kWord, text};
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in query");
  }

 private:
  const std::string& input_;
  size_t pos_ = 0;
};

bool IsKeyword(const Token& tok, const char* kw) {
  return tok.kind == Token::Kind::kWord && ToUpperAscii(tok.text) == kw;
}

/// Duration literal: `[-]digits[.digits]` followed by `s`/`S` ("30s",
/// "2.5s", "-5s"). Returns false on any other shape; the sign is kept so
/// the caller can report "must be positive" rather than a syntax error.
bool ParseWindowDuration(const std::string& text, double* seconds) {
  size_t i = 0;
  bool negative = false;
  if (i < text.size() && text[i] == '-') {
    negative = true;
    ++i;
  }
  size_t digits = 0;
  double value = 0.0;
  while (i < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10.0 + (text[i] - '0');
    ++digits;
    ++i;
  }
  if (digits == 0) return false;
  if (i < text.size() && text[i] == '.') {
    ++i;
    double scale = 0.1;
    size_t frac = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      value += (text[i] - '0') * scale;
      scale *= 0.1;
      ++frac;
      ++i;
    }
    if (frac == 0) return false;
  }
  if (i + 1 != text.size() || (text[i] != 's' && text[i] != 'S')) {
    return false;
  }
  *seconds = negative ? -value : value;
  return true;
}

/// WHERE key = 'value' {AND key = 'value'} — `first` is the token after
/// WHERE has been consumed; on return `next` holds the first token past the
/// clause.
Status ParseWhere(Lexer& lexer, Token first, EventPattern* pattern,
                  Token* next) {
  Token tok = first;
  for (;;) {
    if (tok.kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected attribute name in WHERE");
    }
    const std::string key = ToLowerAscii(tok.text);
    COBRA_ASSIGN_OR_RETURN(Token eq, lexer.Next());
    if (eq.kind != Token::Kind::kEquals) {
      return Status::InvalidArgument("expected '=' after attribute " + key);
    }
    COBRA_ASSIGN_OR_RETURN(Token value, lexer.Next());
    if (value.kind != Token::Kind::kString &&
        value.kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected value after '='");
    }
    pattern->attr_equals[key] = ToUpperAscii(value.text);
    COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
    if (!IsKeyword(tok, "AND")) break;
    COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
  }
  *next = tok;
  return Status::OK();
}

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  ParsedQuery query;

  COBRA_ASSIGN_OR_RETURN(Token tok, lexer.Next());
  if (IsKeyword(tok, "WATCH")) {
    query.watch = true;
    COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
  } else if (IsKeyword(tok, "PROFILE")) {
    query.profile = true;
    COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
  } else if (IsKeyword(tok, "EXPLAIN")) {
    query.explain = true;
    COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
  }
  if (!IsKeyword(tok, "RETRIEVE")) {
    if (query.watch) {
      return Status::InvalidArgument("expected RETRIEVE after WATCH");
    }
    if (query.profile) {
      return Status::InvalidArgument("expected RETRIEVE after PROFILE");
    }
    if (query.explain) {
      return Status::InvalidArgument("expected RETRIEVE after EXPLAIN");
    }
    return Status::InvalidArgument("query must start with RETRIEVE");
  }
  COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
  if (tok.kind != Token::Kind::kWord) {
    return Status::InvalidArgument("expected event type after RETRIEVE");
  }
  query.primary.type = ToLowerAscii(tok.text);

  COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
  if (!IsKeyword(tok, "FROM")) {
    return Status::InvalidArgument("expected FROM after event type");
  }
  COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
  if (tok.kind != Token::Kind::kString && tok.kind != Token::Kind::kWord) {
    return Status::InvalidArgument("expected video name after FROM");
  }
  query.video = tok.text;

  COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
  if (IsKeyword(tok, "WHERE")) {
    COBRA_ASSIGN_OR_RETURN(Token first, lexer.Next());
    COBRA_RETURN_IF_ERROR(ParseWhere(lexer, first, &query.primary, &tok));
  }

  const std::map<std::string, TemporalOp> temporal_ops = {
      {"DURING", TemporalOp::kDuring},
      {"OVERLAPPING", TemporalOp::kOverlapping},
      {"BEFORE", TemporalOp::kBefore},
      {"AFTER", TemporalOp::kAfter},
      {"CONTAINING", TemporalOp::kContaining},
  };
  if (tok.kind == Token::Kind::kWord) {
    auto it = temporal_ops.find(ToUpperAscii(tok.text));
    if (it != temporal_ops.end()) {
      query.temporal_op = it->second;
      COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
      if (tok.kind != Token::Kind::kWord) {
        return Status::InvalidArgument(
            "expected event type after temporal operator");
      }
      query.secondary.type = ToLowerAscii(tok.text);
      COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
      if (IsKeyword(tok, "WHERE")) {
        COBRA_ASSIGN_OR_RETURN(Token first, lexer.Next());
        COBRA_RETURN_IF_ERROR(ParseWhere(lexer, first, &query.secondary, &tok));
      }
    }
  }

  if (IsKeyword(tok, "PREFER")) {
    COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
    if (IsKeyword(tok, "QUALITY")) {
      query.preference = MethodPreference::kQuality;
    } else if (IsKeyword(tok, "COST")) {
      query.preference = MethodPreference::kCost;
    } else {
      return Status::InvalidArgument("expected QUALITY or COST after PREFER");
    }
    COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
  }

  if (IsKeyword(tok, "WINDOW")) {
    if (!query.watch) {
      return Status::InvalidArgument("WINDOW requires WATCH");
    }
    COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
    double seconds = 0.0;
    if (tok.kind != Token::Kind::kWord ||
        !ParseWindowDuration(tok.text, &seconds)) {
      return Status::InvalidArgument(
          "expected window duration like '30s' after WINDOW");
    }
    if (seconds <= 0.0) {
      return Status::InvalidArgument("window duration must be positive");
    }
    query.window_sec = seconds;
    COBRA_ASSIGN_OR_RETURN(tok, lexer.Next());
  }

  if (tok.kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("unexpected trailing token: " + tok.text);
  }
  return query;
}

}  // namespace cobra::query
