#ifndef COBRA_QUERY_SNAPSHOT_H_
#define COBRA_QUERY_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "cobra/video_model.h"
#include "kernel/catalog.h"

namespace cobra::query {

/// An immutable point-in-time image of everything a retrieval query reads:
/// the raw layer (video descriptors) and the event layer, stamped with the
/// versions the image corresponds to. Once published it is never mutated —
/// any number of readers may evaluate against it concurrently without a
/// lock, while the live catalog keeps ingesting and checkpointing.
class CatalogSnapshot {
 public:
  CatalogSnapshot(uint64_t epoch, model::VideoCatalog::SnapshotState state,
                  uint64_t kernel_version, uint64_t checkpoint_lsn,
                  uint64_t last_lsn)
      : epoch_(epoch),
        state_(std::move(state)),
        kernel_version_(kernel_version),
        checkpoint_lsn_(checkpoint_lsn),
        last_lsn_(last_lsn) {}

  CatalogSnapshot(const CatalogSnapshot&) = delete;
  CatalogSnapshot& operator=(const CatalogSnapshot&) = delete;

  /// Publication counter of the owning SnapshotManager (1-based; each
  /// publication bumps it). The identity a server response claims.
  uint64_t epoch() const { return epoch_; }
  /// VideoCatalog::event_version at capture — the position in the event
  /// write history this image is exact at (the replay key of the
  /// consistency harness).
  uint64_t event_version() const { return state_.event_version; }
  /// VideoCatalog::model_version at capture (staleness signal).
  uint64_t model_version() const { return state_.model_version; }
  /// kernel::Catalog::version at capture (BAT namespace mutations).
  uint64_t kernel_version() const { return kernel_version_; }
  /// LSN handshake with the WAL store at capture: the newest durable
  /// checkpoint generation and log sequence number (0/0 when no store was
  /// attached). Lets a response state the durability point its data had.
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }
  uint64_t last_lsn() const { return last_lsn_; }

  // -- The read surface (mirrors VideoCatalog's query API exactly) ---------

  Result<model::VideoDescriptor> FindVideo(const std::string& name) const;
  /// Events of a type (empty = all), sorted by begin time — byte-identical
  /// to VideoCatalog::Events over the same state.
  std::vector<model::EventRecord> Events(model::VideoId video,
                                         const std::string& type) const;
  bool HasEvents(model::VideoId video, const std::string& type) const;
  const std::vector<model::VideoDescriptor>& videos() const {
    return state_.videos;
  }

 private:
  const uint64_t epoch_;
  const model::VideoCatalog::SnapshotState state_;
  const uint64_t kernel_version_;
  const uint64_t checkpoint_lsn_;
  const uint64_t last_lsn_;
};

/// Publishes immutable CatalogSnapshots of a live VideoCatalog and hands
/// them to readers under epoch-counted pins — the serving layer's
/// snapshot-isolation mechanism:
///
///   * Acquire() checks staleness with two lock-free version loads
///     (model_version of the VideoCatalog, version of the kernel Catalog);
///     when the published snapshot is current this is one mutex hop and no
///     contact with the catalog locks at all, so heavy read traffic never
///     blocks an ingesting or checkpointing writer.
///   * When stale, the next Acquire() captures a fresh image atomically
///     (VideoCatalog::CaptureSnapshotState — one model-lock acquisition) and
///     publishes it under the next epoch. Readers already holding pins keep
///     their old epoch untouched.
///   * Reclamation is epoch/pin-counted: a superseded snapshot is destroyed
///     exactly when its pin count reaches zero — never while any reader
///     holds it (stats() exposes the published/reclaimed/pinned counters the
///     tests pin down).
class SnapshotManager {
 public:
  /// Both catalogs must outlive the manager. `kernel` may be null when only
  /// model-layer state is served (kernel_version then reads as 0).
  SnapshotManager(model::VideoCatalog* videos, kernel::Catalog* kernel);
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// A pinned snapshot: RAII over the epoch pin count. Movable; the
  /// snapshot stays valid (and is never reclaimed) until the last Pin on
  /// its epoch is destroyed.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept;
    Pin& operator=(Pin&& other) noexcept;
    ~Pin();

    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    bool valid() const { return snapshot_ != nullptr; }
    const CatalogSnapshot& operator*() const { return *snapshot_; }
    const CatalogSnapshot* operator->() const { return snapshot_.get(); }
    const CatalogSnapshot* get() const { return snapshot_.get(); }

   private:
    friend class SnapshotManager;
    Pin(SnapshotManager* manager,
        std::shared_ptr<const CatalogSnapshot> snapshot)
        : manager_(manager), snapshot_(std::move(snapshot)) {}

    SnapshotManager* manager_ = nullptr;
    std::shared_ptr<const CatalogSnapshot> snapshot_;
  };

  /// Pins the current snapshot, publishing a fresh one first when the live
  /// catalog has moved. Never returns an invalid Pin.
  Pin Acquire() COBRA_EXCLUDES(mu_);

  /// Forces the staleness check now (e.g. after a bulk load, so the first
  /// query does not pay the capture).
  void Refresh() COBRA_EXCLUDES(mu_);

  struct Stats {
    uint64_t current_epoch = 0;  // 0 until the first publication
    uint64_t published = 0;      // snapshots ever published
    uint64_t reclaimed = 0;      // superseded snapshots destroyed
    size_t live_epochs = 0;      // published and not yet reclaimed
    uint64_t pinned_readers = 0;       // outstanding Pins over all epochs
    uint64_t oldest_pinned_epoch = 0;  // 0 when nothing is pinned
  };
  Stats stats() const COBRA_EXCLUDES(mu_);

 private:
  struct EpochEntry {
    std::shared_ptr<const CatalogSnapshot> snapshot;
    uint64_t pins = 0;
  };

  /// Publishes a fresh snapshot when the live versions moved; reclaims the
  /// superseded epoch if unpinned.
  void RefreshLocked() COBRA_REQUIRES(mu_);
  /// Drops `epoch`'s pin; reclaims the entry when superseded and unpinned.
  void Unpin(uint64_t epoch) COBRA_EXCLUDES(mu_);
  /// Erases every superseded entry whose pin count is zero.
  void ReclaimLocked() COBRA_REQUIRES(mu_);

  model::VideoCatalog* const videos_;
  kernel::Catalog* const kernel_;

  mutable Mutex mu_;
  std::map<uint64_t, EpochEntry> epochs_ COBRA_GUARDED_BY(mu_);
  uint64_t current_epoch_ COBRA_GUARDED_BY(mu_) = 0;
  uint64_t published_ COBRA_GUARDED_BY(mu_) = 0;
  uint64_t reclaimed_ COBRA_GUARDED_BY(mu_) = 0;
};

/// One pinned CatalogSnapshot per shard of a sharded deployment, stamped
/// with the epoch vector the pins were taken at — the read set a sharded
/// scatter-gather query executes over. Each shard's snapshot is individually
/// immutable and snapshot-isolated; the set additionally records whether the
/// acquisition converged to a *coherent* cross-shard cut (no shard published
/// a newer epoch while the other pins were being taken). Movable, not
/// copyable (it owns the pins).
class ShardedSnapshotSet {
 public:
  ShardedSnapshotSet() = default;
  ShardedSnapshotSet(ShardedSnapshotSet&&) = default;
  ShardedSnapshotSet& operator=(ShardedSnapshotSet&&) = default;

  size_t size() const { return pins_.size(); }
  bool empty() const { return pins_.empty(); }
  const CatalogSnapshot& shard(size_t k) const { return *pins_[k]; }

  /// Epoch of each shard's pinned snapshot, in shard order — the identity a
  /// sharded response claims (stamped into QueryResult::info).
  const std::vector<uint64_t>& epochs() const { return epochs_; }

  /// Whether the bounded acquisition loop observed every shard still at its
  /// pinned epoch after all pins were taken. False means some shard kept
  /// publishing during acquisition; each pin is still a valid isolated
  /// snapshot, but the vector is not a single cross-shard instant.
  bool coherent() const { return coherent_; }

  /// Shard whose snapshot holds `video`. Falls back to shard 0 when no
  /// shard holds it, so the NotFound diagnostic the plan verifier and the
  /// engine raise is byte-identical to the single-catalog deployment's.
  size_t OwnerOf(const std::string& video) const;

  /// One-line stamp of the read set, e.g.
  /// "shards=2 epochs=[3,5] coherent=true".
  std::string EpochStamp() const;

 private:
  friend Result<ShardedSnapshotSet> AcquireShardedSnapshots(
      const std::vector<SnapshotManager*>& managers);

  std::vector<SnapshotManager::Pin> pins_;
  std::vector<uint64_t> epochs_;
  bool coherent_ = true;
};

/// Pins the current snapshot of every shard's SnapshotManager (in shard
/// order) and re-validates that no manager published a newer epoch while the
/// rest were being pinned, retrying the whole round a bounded number of
/// times. On convergence the returned set is a coherent cross-shard cut; if
/// writers outpace every retry the LAST round's pins are returned with
/// coherent() == false — still per-shard snapshot-isolated, never an error.
/// InvalidArgument when `managers` is empty or contains a null.
Result<ShardedSnapshotSet> AcquireShardedSnapshots(
    const std::vector<SnapshotManager*>& managers);

}  // namespace cobra::query

#endif  // COBRA_QUERY_SNAPSHOT_H_
