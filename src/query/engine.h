#ifndef COBRA_QUERY_ENGINE_H_
#define COBRA_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/exec_context.h"
#include "query/parser.h"

namespace cobra::query {

/// Result of a query: matching event-layer segments plus preprocessor
/// diagnostics (which methods ran, and whether extraction happened
/// dynamically at query time).
struct QueryResult {
  std::vector<model::EventRecord> segments;
  /// Extensions invoked by the preprocessor (empty when metadata existed).
  std::vector<std::string> methods_invoked;
  bool extracted_dynamically = false;
};

/// The conceptual layer: parses a retrieval query, runs the query
/// preprocessor (checks whether the required metadata exists; when it does
/// not, picks an extraction method by the cost/quality model and invokes the
/// extension to populate it — the paper's dynamic feature/semantic
/// extraction), then evaluates the algebra over the event layer.
class QueryEngine {
 public:
  QueryEngine(model::VideoCatalog* catalog,
              extensions::ExtensionRegistry* registry);

  /// Parses and executes a query string.
  Result<QueryResult> Execute(const std::string& query_text);

  /// Executes an already-parsed query.
  Result<QueryResult> Execute(const ParsedQuery& query);

  /// Execution parameters for the evaluator: pattern filtering and the
  /// temporal join run morsel-parallel over the event lists past the serial
  /// cutoff. Defaults to the serial context.
  const kernel::ExecContext& exec() const { return exec_; }
  void set_exec(const kernel::ExecContext& exec) { exec_ = exec; }

 private:
  /// Ensures events of `type` exist for `video`; dynamically extracts when
  /// missing, selecting the provider per `preference`.
  Status EnsureAvailable(model::VideoId video, const std::string& type,
                         MethodPreference preference, QueryResult* result);

  /// Attribute filters (case-insensitive value comparison).
  static bool MatchesPattern(const model::EventRecord& event,
                             const EventPattern& pattern);

  /// Temporal-join predicate between a primary and secondary interval.
  static bool TemporalMatch(TemporalOp op, const model::EventRecord& primary,
                            const model::EventRecord& secondary);

  model::VideoCatalog* catalog_;
  extensions::ExtensionRegistry* registry_;
  kernel::ExecContext exec_;
};

}  // namespace cobra::query

#endif  // COBRA_QUERY_ENGINE_H_
