#ifndef COBRA_QUERY_ENGINE_H_
#define COBRA_QUERY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/io.h"
#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "kernel/exec_context.h"
#include "query/analyzer.h"
#include "query/parser.h"

namespace cobra::query {

class CatalogSnapshot;
class ShardedSnapshotSet;

/// Result of a query: matching event-layer segments plus preprocessor
/// diagnostics (which methods ran, and whether extraction happened
/// dynamically at query time).
struct QueryResult {
  std::vector<model::EventRecord> segments;
  /// Extensions invoked by the preprocessor (empty when metadata existed).
  std::vector<std::string> methods_invoked;
  bool extracted_dynamically = false;
  /// True when the segments were served from the engine's result cache —
  /// neither dynamic extraction nor algebra evaluation ran.
  bool cache_hit = false;
  /// Set for PROFILE queries only: the span tree of this execution, as the
  /// indented text rendering and the stable-schema JSON export. A cache hit
  /// yields a minimal tree whose root is marked from_cache — the timings of
  /// the original (cached) execution are never replayed.
  std::string profile_text;
  std::string profile_json;
  /// Outcome line of a PERSIST/RECOVER storage command, or — for a sharded
  /// snapshot read — the epoch-vector stamp of the read set ("shards=N
  /// epochs=[...] coherent=..."). Empty for unsharded retrieval queries.
  std::string info;
  /// Non-zero for a WATCH query: the id the continuous-query host assigned
  /// to the registered watch. `segments` is empty — matches arrive as
  /// notifications, not as a one-shot result.
  uint64_t watch_id = 0;
};

/// Counters of the engine's extraction/result cache.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;  // capacity-driven only (not staleness drops)
  size_t entries = 0;
  size_t capacity = 0;
};

/// The conceptual layer: parses a retrieval query, runs the query
/// preprocessor (checks whether the required metadata exists; when it does
/// not, picks an extraction method by the cost/quality model and invokes the
/// extension to populate it — the paper's dynamic feature/semantic
/// extraction), then evaluates the algebra over the event layer.
class QueryEngine {
 public:
  /// `data_dir` is the default target of the PERSIST/RECOVER storage
  /// commands; when empty it falls back to the COBRA_DATA_DIR environment
  /// variable (and a dir-less PERSIST is a FailedPrecondition when neither
  /// is set).
  QueryEngine(model::VideoCatalog* catalog,
              extensions::ExtensionRegistry* registry,
              std::string data_dir = "");
  ~QueryEngine();

  /// Parses and executes a query string. Two storage commands are
  /// dispatched ahead of the retrieval grammar (parser and analyzer are
  /// untouched by them):
  ///
  ///   PERSIST [INTO '<dir>']   checkpoint the catalog — BAT image plus the
  ///                            video-model state — into the store at <dir>
  ///   RECOVER [FROM '<dir>']   replace the catalog with the store's
  ///                            recovered state; the result cache is
  ///                            cleared and acceleration indexes rebuild
  ///                            lazily (neither is ever serialized)
  ///
  /// Both report via QueryResult::info and return no segments.
  Result<QueryResult> Execute(const std::string& query_text);

  /// Executes an already-parsed query.
  Result<QueryResult> Execute(const ParsedQuery& query);

  /// Snapshot-isolated read: evaluates a retrieval query against an
  /// immutable CatalogSnapshot instead of the live catalog — the serving
  /// layer's read path. Same grammar, same algebra, same span shapes as the
  /// live path, with two deliberate differences:
  ///
  ///   * no result cache (a snapshot read is versioned by its epoch; the
  ///     shared cache is keyed by live state), matching the span shape of a
  ///     live engine with cache capacity 0;
  ///   * no dynamic extraction (a snapshot is immutable): a type with no
  ///     metadata in the snapshot but a registered provider fails with a
  ///     typed FailedPrecondition pointing at the live read-write path.
  ///
  /// Storage commands (PERSIST/RECOVER) are writes and are rejected with
  /// FailedPrecondition. Const and lock-free over catalog state: any number
  /// of threads may call this concurrently with a mutating writer.
  Result<QueryResult> ExecuteSnapshot(const std::string& query_text,
                                      const CatalogSnapshot& snapshot) const;
  Result<QueryResult> ExecuteSnapshot(const ParsedQuery& query,
                                      const CatalogSnapshot& snapshot) const;
  /// Explicit-context variant: the caller owns tracing (PROFILE queries do
  /// NOT get a private sink here — the server nests query spans under its
  /// own request span and exports the profile itself).
  Result<QueryResult> ExecuteSnapshot(const ParsedQuery& query,
                                      const CatalogSnapshot& snapshot,
                                      const kernel::ExecContext& exec) const;

  /// EXPLAIN: the plan analyzer's static report, built from catalog facts
  /// only — per-operator cardinality intervals `static=[lo,hi]` (hi `*`
  /// when dynamic extraction makes the bound unknowable), positioned
  /// dead-predicate warnings, and a provably-empty note when the hull
  /// proves zero result rows. NOTHING executes: no extraction, no result
  /// cache, no algebra; `segments` is always empty and the report rides in
  /// QueryResult::profile_text (with a stable-schema JSON rendering in
  /// profile_json). `sites` — from AnalyzeQueryTextWithFacts — anchors each
  /// warning at its predicate's line:column; pass {} when the query did not
  /// come from text (warnings are then unpositioned but otherwise
  /// identical). The three overloads differ only in the read surface, and
  /// for identical catalog state produce byte-identical reports — the
  /// parity the server tests pin across transports.
  Result<QueryResult> ExecuteExplain(const ParsedQuery& query,
                                     const std::vector<AttrSite>& sites) const;
  Result<QueryResult> ExecuteExplain(const ParsedQuery& query,
                                     const std::vector<AttrSite>& sites,
                                     const CatalogSnapshot& snapshot) const;
  Result<QueryResult> ExecuteExplain(const ParsedQuery& query,
                                     const std::vector<AttrSite>& sites,
                                     const ShardedSnapshotSet& snapshots) const;

  /// Sharded snapshot read: evaluates the query against the shard of
  /// `snapshots` that owns the plan's video (videos are partitioned across
  /// shards, so exactly one shard holds a given name; a name no shard holds
  /// routes to shard 0 for a NotFound byte-identical to the single-catalog
  /// deployment). Segments, errors and span shapes match the unsharded
  /// ExecuteSnapshot over the owning shard exactly; in addition
  /// QueryResult::info is stamped with the read set's epoch vector
  /// ("shards=N epochs=[...] coherent=..."), so a response states the exact
  /// per-shard cut it was served from. InvalidArgument when `snapshots` is
  /// empty.
  Result<QueryResult> ExecuteSnapshot(const std::string& query_text,
                                      const ShardedSnapshotSet& snapshots)
      const;
  Result<QueryResult> ExecuteSnapshot(const ParsedQuery& query,
                                      const ShardedSnapshotSet& snapshots)
      const;

  /// Execution parameters for the evaluator: pattern filtering and the
  /// temporal join run morsel-parallel over the event lists past the serial
  /// cutoff. Defaults to the serial context.
  const kernel::ExecContext& exec() const { return exec_; }
  void set_exec(const kernel::ExecContext& exec) { exec_ = exec; }

  /// LRU result cache keyed by (video, event type, normalized predicate,
  /// temporal clause, preference). Entries record the VideoCatalog event
  /// version at store time; any event-layer mutation invalidates stale
  /// entries transparently on the next lookup. Capacity 0 disables caching.
  /// All cache bookkeeping is guarded by `cache_mu_`, so concurrent
  /// Execute() calls share the cache safely.
  CacheStats cache_stats() const COBRA_EXCLUDES(cache_mu_);
  size_t cache_capacity() const COBRA_EXCLUDES(cache_mu_);
  void set_cache_capacity(size_t capacity) COBRA_EXCLUDES(cache_mu_);
  void ClearCache() COBRA_EXCLUDES(cache_mu_);

  /// Filesystem the storage commands run against; defaults to the real
  /// one. Tests inject MemFs/FaultFs here (before the first command).
  void set_fs(io::Fs* fs) { fs_ = fs; }
  const std::string& data_dir() const { return data_dir_; }

  /// Hook a continuous-query host (query/continuous.h, installed by the
  /// query server) uses to receive WATCH queries: Execute(text) hands a
  /// parsed WATCH form plus its analysis facts here and reports the
  /// returned id as QueryResult::watch_id. With no handler installed a
  /// WATCH query is a FailedPrecondition. Not thread-safe: install before
  /// serving queries.
  using WatchHandler =
      std::function<Result<uint64_t>(const ParsedQuery&, const QueryAnalysis&)>;
  void set_watch_handler(WatchHandler handler) {
    watch_handler_ = std::move(handler);
  }

 private:
  /// The read surface EvaluateOver executes against: the live catalog (with
  /// dynamic extraction) or an immutable snapshot. Defined in engine.cc.
  struct EventSource;
  struct LiveSource;
  struct SnapshotSource;

  /// The evaluator under an explicit context. PROFILE runs pass a context
  /// with a fresh trace sink; plain runs pass exec_ through unchanged (which
  /// may itself carry a host-installed sink).
  Result<QueryResult> ExecuteImpl(const ParsedQuery& query,
                                  const kernel::ExecContext& exec);

  /// Shared evaluation body of the live and snapshot paths: find video →
  /// preprocess (ensure availability) → read + filter → optional secondary
  /// preprocess/filter + temporal semijoin — with identical span shapes on
  /// both paths. Returns the matching segments; `version_at_read` receives
  /// the source's event version sampled after the primary preprocess (the
  /// live path's cache-entry version; see CacheStore).
  static Result<std::vector<model::EventRecord>> EvaluateOver(
      const ParsedQuery& query, const kernel::ExecContext& qctx,
      EventSource& source, QueryResult* result, uint64_t* version_at_read);

  /// Ensures events of `type` exist for `video`; dynamically extracts when
  /// missing, selecting the provider per `preference`.
  Status EnsureAvailable(model::VideoId video, const std::string& type,
                         MethodPreference preference, QueryResult* result);

  /// Attribute filters (case-insensitive value comparison).
  static bool MatchesPattern(const model::EventRecord& event,
                             const EventPattern& pattern);

  /// Temporal-join predicate between a primary and secondary interval.
  static bool TemporalMatch(TemporalOp op, const model::EventRecord& primary,
                            const model::EventRecord& secondary);

  /// Deterministic serialization of a parsed query — the predicate is
  /// already normalized by the parser (uppercased values, sorted attr map).
  static std::string CacheKey(const ParsedQuery& query);

  /// Cache lookup outcome; kHit fills `segments`.
  enum class CacheOutcome { kDisabled, kHit, kStale, kMiss };

  /// Single locked lookup: promotes and copies out on a fresh hit, drops a
  /// stale entry, counts hit/miss.
  CacheOutcome CacheLookup(const std::string& key,
                           std::vector<model::EventRecord>* segments)
      COBRA_EXCLUDES(cache_mu_);

  /// Stores a computed result under `event_version` — the catalog version
  /// captured when the event lists were read, so an entry computed against
  /// state a concurrent writer has since replaced stores as already-stale
  /// (re-evaluated on the next lookup), never as wrongly fresh. Evicts past
  /// capacity.
  void CacheStore(const std::string& key,
                  const std::vector<model::EventRecord>& segments,
                  uint64_t event_version) COBRA_EXCLUDES(cache_mu_);

  /// `PERSIST [INTO '<dir>']` / `RECOVER [FROM '<dir>']`; `rest` is the
  /// command text after the verb.
  Result<QueryResult> ExecuteStorageCommand(bool persist,
                                            std::string_view rest);
  /// Opens (or re-targets) the engine's store and attaches it to the model
  /// and kernel catalogs.
  Result<kernel::PersistentStore*> EnsureStore(const std::string& dir);

  model::VideoCatalog* catalog_;
  extensions::ExtensionRegistry* registry_;
  kernel::ExecContext exec_;
  io::Fs* fs_;
  std::string data_dir_;
  /// Store bound to the last PERSIST/RECOVER target, created lazily.
  std::unique_ptr<kernel::PersistentStore> store_;
  WatchHandler watch_handler_;

  struct CacheEntry {
    std::string key;
    std::vector<model::EventRecord> segments;
    uint64_t event_version = 0;
  };
  /// Evicts the LRU tail until the cache fits `capacity`.
  void EvictToCapacity(size_t capacity) COBRA_REQUIRES(cache_mu_);

  mutable Mutex cache_mu_;
  std::list<CacheEntry> lru_ COBRA_GUARDED_BY(cache_mu_);  // front = MRU
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_map_
      COBRA_GUARDED_BY(cache_mu_);
  size_t cache_capacity_ COBRA_GUARDED_BY(cache_mu_) = 64;
  uint64_t cache_hits_ COBRA_GUARDED_BY(cache_mu_) = 0;
  uint64_t cache_misses_ COBRA_GUARDED_BY(cache_mu_) = 0;
  uint64_t cache_evictions_ COBRA_GUARDED_BY(cache_mu_) = 0;
};

}  // namespace cobra::query

#endif  // COBRA_QUERY_ENGINE_H_
