#include "query/engine.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <iterator>
#include <utility>

#include "base/logging.h"
#include "base/strings.h"
#include "base/trace.h"
#include "kernel/persist.h"
#include "query/analyzer.h"
#include "query/snapshot.h"

namespace cobra::query {

namespace {

const char* TemporalOpName(TemporalOp op) {
  switch (op) {
    case TemporalOp::kNone:
      return "none";
    case TemporalOp::kDuring:
      return "during";
    case TemporalOp::kOverlapping:
      return "overlapping";
    case TemporalOp::kBefore:
      return "before";
    case TemporalOp::kAfter:
      return "after";
    case TemporalOp::kContaining:
      return "containing";
  }
  return "?";
}

/// Minimal JSON string escaper for the EXPLAIN export (video names and
/// warning texts may carry quotes); output always satisfies ValidateJson.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Sentinel for "no static upper bound" (dynamic extraction may materialize
/// any number of events). Rendered as `*` in text and -1 in JSON, matching
/// the trace layer's convention.
constexpr uint64_t kNoBound = ~uint64_t{0};

std::string IntervalText(uint64_t lo, uint64_t hi) {
  if (hi == kNoBound) {
    return StrFormat("[%llu,*]", static_cast<unsigned long long>(lo));
  }
  return StrFormat("[%llu,%llu]", static_cast<unsigned long long>(lo),
                   static_cast<unsigned long long>(hi));
}

/// Static analysis of one event pattern over the catalog's metadata for
/// `video`: the scan cardinality, the post-filter interval, and one warning
/// per statically-dead predicate. All facts are exact catalog state — the
/// interval is sound because rows matching EVERY predicate are a subset of
/// rows matching each predicate alone.
struct PatternReport {
  bool deferred = false;  // no metadata yet: extraction would run at query time
  uint64_t scan_rows = 0;
  uint64_t lo = 0;
  uint64_t hi = kNoBound;
  std::vector<std::string> warnings;
};

PatternReport AnalyzePattern(
    const EventPattern& pattern, model::VideoId video, bool secondary,
    const std::vector<AttrSite>& sites,
    const std::function<bool(model::VideoId, const std::string&)>& has_events,
    const std::function<Result<std::vector<model::EventRecord>>(
        model::VideoId, const std::string&)>& events) {
  PatternReport report;
  if (!has_events(video, pattern.type)) {
    // VerifyPlan already proved a provider exists; how many events it would
    // materialize is unknowable statically.
    report.deferred = true;
    report.lo = 0;
    report.hi = kNoBound;
    return report;
  }
  Result<std::vector<model::EventRecord>> rows = events(video, pattern.type);
  if (!rows.ok()) {
    // Metadata raced away between has_events and the read; stay sound by
    // claiming nothing.
    report.deferred = true;
    return report;
  }
  report.scan_rows = rows->size();
  report.hi = rows->size();
  report.lo = pattern.attr_equals.empty() ? rows->size() : 0;
  for (const auto& [key, value] : pattern.attr_equals) {
    uint64_t matches = 0;
    for (const auto& event : *rows) {
      auto it = event.attrs.find(key);
      if (it != event.attrs.end() && ToUpperAscii(it->second) == value) {
        ++matches;
      }
    }
    report.hi = std::min(report.hi, matches);
    if (matches == 0) {
      std::string warning = StrFormat(
          "statically dead predicate: %s = '%s' matches no '%s' event",
          key.c_str(), value.c_str(), pattern.type.c_str());
      for (const AttrSite& site : sites) {
        if (site.secondary == secondary && site.key == key &&
            site.value == value) {
          warning = StrFormat("query:%d:%d: warning: %s", site.line, site.col,
                              warning.c_str());
          break;
        }
      }
      report.warnings.push_back(std::move(warning));
    }
  }
  return report;
}

/// Shared body of the three ExecuteExplain overloads; the callbacks abstract
/// the read surface exactly like VerifyPlanOver.
Result<QueryResult> ExplainOver(
    const ParsedQuery& query, const std::vector<AttrSite>& sites,
    const model::VideoDescriptor& video,
    const std::function<bool(model::VideoId, const std::string&)>& has_events,
    const std::function<Result<std::vector<model::EventRecord>>(
        model::VideoId, const std::string&)>& events) {
  QueryResult result;
  std::string text =
      StrFormat("explain: type=%s video=%s (static analysis only; nothing "
                "executed)\n",
                query.primary.type.c_str(), query.video.c_str());
  std::string json = StrFormat("{\"explain\":{\"video\":\"%s\",\"operators\":[",
                               JsonEscape(query.video).c_str());
  std::vector<std::string> warnings;

  auto emit = [&text, &json](const char* op, const std::string& type_or_detail,
                             uint64_t lo, uint64_t hi, bool first) {
    text += StrFormat("  %s %s static=%s\n", op, type_or_detail.c_str(),
                      IntervalText(lo, hi).c_str());
    if (!first) json += ',';
    json += StrFormat("{\"op\":\"%s\",\"detail\":\"%s\",\"static_lo\":%llu,",
                      op, JsonEscape(type_or_detail).c_str(),
                      static_cast<unsigned long long>(lo));
    json += hi == kNoBound
                ? std::string("\"static_hi\":-1}")
                : StrFormat("\"static_hi\":%llu}",
                            static_cast<unsigned long long>(hi));
  };

  const PatternReport primary = AnalyzePattern(
      query.primary, video.id, /*secondary=*/false, sites, has_events, events);
  const std::string primary_scan =
      primary.deferred
          ? StrFormat("type=%s events=? (dynamic extraction deferred to a "
                      "live query)",
                      query.primary.type.c_str())
          : StrFormat("type=%s events=%llu", query.primary.type.c_str(),
                      static_cast<unsigned long long>(primary.scan_rows));
  emit("scan", primary_scan, primary.deferred ? 0 : primary.scan_rows,
       primary.deferred ? kNoBound : primary.scan_rows, /*first=*/true);
  emit("filter", "type=" + query.primary.type, primary.lo, primary.hi,
       /*first=*/false);
  for (const std::string& w : primary.warnings) warnings.push_back(w);

  uint64_t final_lo = primary.lo;
  uint64_t final_hi = primary.hi;
  if (query.temporal_op != TemporalOp::kNone) {
    const PatternReport secondary =
        AnalyzePattern(query.secondary, video.id, /*secondary=*/true, sites,
                       has_events, events);
    const std::string secondary_scan =
        secondary.deferred
            ? StrFormat("type=%s events=? (dynamic extraction deferred to a "
                        "live query)",
                        query.secondary.type.c_str())
            : StrFormat("type=%s events=%llu", query.secondary.type.c_str(),
                        static_cast<unsigned long long>(secondary.scan_rows));
    emit("scan", secondary_scan, secondary.deferred ? 0 : secondary.scan_rows,
         secondary.deferred ? kNoBound : secondary.scan_rows, /*first=*/false);
    emit("filter", "type=" + query.secondary.type, secondary.lo, secondary.hi,
         /*first=*/false);
    for (const std::string& w : secondary.warnings) warnings.push_back(w);
    // The temporal semijoin keeps a subset of the filtered primaries, and
    // keeps none when the secondary side is provably empty.
    final_lo = 0;
    final_hi = secondary.hi == 0 ? 0 : primary.hi;
    emit("temporal_join",
         StrFormat("op=%s", TemporalOpName(query.temporal_op)), final_lo,
         final_hi, /*first=*/false);
  }

  text += StrFormat("  result static=%s\n",
                    IntervalText(final_lo, final_hi).c_str());
  for (const std::string& w : warnings) {
    text += w;
    text += '\n';
  }
  if (final_hi == 0) {
    text += "note: provably empty result — execution would return 0 "
            "segments\n";
  }

  json += StrFormat("],\"result\":{\"static_lo\":%llu,",
                    static_cast<unsigned long long>(final_lo));
  json += final_hi == kNoBound
              ? std::string("\"static_hi\":-1}")
              : StrFormat("\"static_hi\":%llu}",
                          static_cast<unsigned long long>(final_hi));
  json += ",\"warnings\":[";
  for (size_t i = 0; i < warnings.size(); ++i) {
    if (i > 0) json += ',';
    json += '"';
    json += JsonEscape(warnings[i]);
    json += '"';
  }
  json += StrFormat("],\"provably_empty\":%s}}",
                    final_hi == 0 ? "true" : "false");

  result.profile_text = std::move(text);
  result.profile_json = std::move(json);
  return result;
}

}  // namespace

/// Read-surface interface the shared evaluator executes against. The two
/// implementations are below; both are stateless beyond the pointers they
/// hold, so a source is constructed on the stack per execution.
struct QueryEngine::EventSource {
  virtual ~EventSource() = default;
  virtual Result<model::VideoDescriptor> FindVideo(
      const std::string& name) = 0;
  virtual Result<std::vector<model::EventRecord>> Events(
      model::VideoId video, const std::string& type) = 0;
  /// Preprocessor step: make events of `type` available, or fail the same
  /// way VerifyPlan predicted.
  virtual Status Ensure(model::VideoId video, const std::string& type,
                        MethodPreference preference, QueryResult* result) = 0;
  virtual uint64_t EventVersion() const = 0;
};

/// Live catalog: reads under the catalog's own locks, extracts dynamically.
struct QueryEngine::LiveSource final : QueryEngine::EventSource {
  explicit LiveSource(QueryEngine* e) : engine(e) {}
  Result<model::VideoDescriptor> FindVideo(const std::string& name) override {
    return engine->catalog_->FindVideo(name);
  }
  Result<std::vector<model::EventRecord>> Events(
      model::VideoId video, const std::string& type) override {
    return engine->catalog_->Events(video, type);
  }
  Status Ensure(model::VideoId video, const std::string& type,
                MethodPreference preference, QueryResult* result) override {
    return engine->EnsureAvailable(video, type, preference, result);
  }
  uint64_t EventVersion() const override {
    return engine->catalog_->event_version();
  }
  QueryEngine* engine;
};

/// Immutable snapshot: lock-free reads, no extraction (a snapshot cannot be
/// mutated — a missing-but-extractable type is a typed FailedPrecondition).
struct QueryEngine::SnapshotSource final : QueryEngine::EventSource {
  SnapshotSource(const CatalogSnapshot& snap,
                 const extensions::ExtensionRegistry& reg)
      : snapshot(snap), registry(reg) {}
  Result<model::VideoDescriptor> FindVideo(const std::string& name) override {
    return snapshot.FindVideo(name);
  }
  Result<std::vector<model::EventRecord>> Events(
      model::VideoId video, const std::string& type) override {
    return snapshot.Events(video, type);
  }
  Status Ensure(model::VideoId video, const std::string& type,
                MethodPreference /*preference*/,
                QueryResult* /*result*/) override {
    if (snapshot.HasEvents(video, type)) return Status::OK();
    if (!registry.Providers(type).empty()) {
      return Status::FailedPrecondition(
          "snapshot read: no metadata for '" + type +
          "' — dynamic extraction requires a live read-write query");
    }
    return Status::NotFound("no metadata and no extraction method for '" +
                            type + "'");
  }
  uint64_t EventVersion() const override { return snapshot.event_version(); }
  const CatalogSnapshot& snapshot;
  const extensions::ExtensionRegistry& registry;
};

QueryEngine::QueryEngine(model::VideoCatalog* catalog,
                         extensions::ExtensionRegistry* registry,
                         std::string data_dir)
    : catalog_(catalog),
      registry_(registry),
      fs_(io::RealFilesystem()),
      data_dir_(std::move(data_dir)) {
  COBRA_CHECK(catalog != nullptr && registry != nullptr);
  if (data_dir_.empty()) {
    const char* env = std::getenv("COBRA_DATA_DIR");
    if (env != nullptr) data_dir_ = env;
  }
}

QueryEngine::~QueryEngine() {
  if (store_ != nullptr) {
    catalog_->AttachStore(nullptr);
    catalog_->session().catalog()->AttachStore(nullptr);
  }
}

Result<QueryResult> QueryEngine::Execute(const std::string& query_text) {
  // PERSIST / RECOVER are storage commands, not retrieval queries: they
  // are dispatched before the analyzer/parser, so the retrieval grammar —
  // and the accept-parity the analyzer tests pin over it — is untouched.
  const std::string_view text = StrTrim(query_text);
  size_t verb_len = 0;
  while (verb_len < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[verb_len])) != 0) {
    ++verb_len;
  }
  const std::string verb = ToUpperAscii(text.substr(0, verb_len));
  if (verb == "PERSIST" || verb == "RECOVER") {
    return ExecuteStorageCommand(verb == "PERSIST",
                                 StrTrim(text.substr(verb_len)));
  }
  // Static analysis first: malformed text is rejected here with
  // line:column diagnostics, before the parser (let alone any operator)
  // runs. A text the analyzer accepts always parses (analyzer_test pins
  // accept-parity over the fuzz corpora).
  const QueryAnalysis analysis = AnalyzeQueryTextWithFacts(query_text);
  COBRA_RETURN_IF_ERROR(analysis.diags.ToStatus("query"));
  COBRA_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(query_text));
  if (parsed.watch) {
    // Continuous query: hand it to the installed host instead of running
    // the one-shot evaluator; matches arrive as notifications.
    if (watch_handler_ == nullptr) {
      return Status::FailedPrecondition(
          "WATCH needs a continuous-query host — submit it through the "
          "query server");
    }
    COBRA_ASSIGN_OR_RETURN(const uint64_t id,
                           watch_handler_(parsed, analysis));
    QueryResult result;
    result.watch_id = id;
    result.info = StrFormat("watch %llu registered",
                            static_cast<unsigned long long>(id));
    return result;
  }
  if (parsed.explain) return ExecuteExplain(parsed, analysis.attr_sites);
  return Execute(parsed);
}

Result<kernel::PersistentStore*> QueryEngine::EnsureStore(
    const std::string& dir) {
  if (store_ == nullptr || store_->dir() != dir) {
    if (store_ != nullptr) {
      catalog_->AttachStore(nullptr);
      catalog_->session().catalog()->AttachStore(nullptr);
    }
    auto store = std::make_unique<kernel::PersistentStore>(fs_, dir);
    COBRA_RETURN_IF_ERROR(store->Open());
    store_ = std::move(store);
    // From here on, model mutations are WAL-logged as they commit and the
    // kernel catalog reports the store in its stats.
    catalog_->AttachStore(store_.get());
    catalog_->session().catalog()->AttachStore(store_.get());
  }
  return store_.get();
}

Result<QueryResult> QueryEngine::ExecuteStorageCommand(bool persist,
                                                       std::string_view rest) {
  const char* verb = persist ? "PERSIST" : "RECOVER";
  std::string dir;
  if (rest.empty()) {
    if (data_dir_.empty()) {
      return Status::FailedPrecondition(StrFormat(
          "%s needs a target: say %s '<dir>' or set COBRA_DATA_DIR", verb,
          persist ? "PERSIST INTO" : "RECOVER FROM"));
    }
    dir = data_dir_;
  } else {
    std::string_view arg = rest;
    size_t kw = 0;
    while (kw < arg.size() &&
           std::isalpha(static_cast<unsigned char>(arg[kw])) != 0) {
      ++kw;
    }
    if (kw > 0) {
      const std::string keyword = ToUpperAscii(arg.substr(0, kw));
      if (keyword != (persist ? "INTO" : "FROM")) {
        return Status::InvalidArgument(
            StrFormat("%s: unexpected '%s' (expected %s '<dir>')", verb,
                      std::string(arg.substr(0, kw)).c_str(),
                      persist ? "INTO" : "FROM"));
      }
      arg = StrTrim(arg.substr(kw));
    }
    if (arg.size() < 2 || arg.front() != '\'' || arg.back() != '\'') {
      return Status::InvalidArgument(
          StrFormat("%s expects a quoted '<dir>'", verb));
    }
    dir = std::string(arg.substr(1, arg.size() - 2));
    if (dir.empty() || dir.find('\'') != std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("%s: malformed directory path", verb));
    }
  }

  QueryResult result;
  kernel::Catalog* kcat = catalog_->session().catalog();
  if (persist) {
    COBRA_ASSIGN_OR_RETURN(kernel::PersistentStore * store, EnsureStore(dir));
    COBRA_RETURN_IF_ERROR(
        store->Checkpoint(*kcat, catalog_->SerializeState()));
    result.info = StrFormat(
        "persisted %zu videos, %zu bats into %s (lsn %llu)",
        catalog_->Videos().size(), kcat->Names().size(), dir.c_str(),
        static_cast<unsigned long long>(store->last_lsn()));
    return result;
  }
  if (!kernel::PersistentStore::Exists(*fs_, dir)) {
    return Status::NotFound("no persistent store at " + dir);
  }
  COBRA_ASSIGN_OR_RETURN(kernel::PersistentStore * store, EnsureStore(dir));
  COBRA_ASSIGN_OR_RETURN(kernel::PersistentStore::RecoveryInfo info,
                         store->Recover(kcat));
  // A store written through this engine always carries the model payload;
  // one written by a bare kernel client (MIL `save`) restores BATs only.
  if (!info.extra.empty()) {
    COBRA_RETURN_IF_ERROR(
        catalog_->RestoreState(info.extra, info.event_version));
  }
  // Model mutations committed after the snapshot come back as opaque WAL
  // records; re-execute them in commit order on top of the restored state.
  for (const std::string& record : info.model_records) {
    COBRA_RETURN_IF_ERROR(catalog_->ApplyModelRecord(record));
  }
  // Cached results describe the pre-recovery catalog: drop them all.
  // Acceleration indexes were never serialized — they rebuild lazily on
  // first probe.
  ClearCache();
  result.info = StrFormat(
      "recovered %zu bats from %s (lsn %llu, %llu wal records%s)",
      info.bat_count, dir.c_str(), static_cast<unsigned long long>(info.lsn),
      static_cast<unsigned long long>(info.wal_records_applied),
      info.used_fallback_snapshot ? ", fallback snapshot" : "");
  return result;
}

Status QueryEngine::EnsureAvailable(model::VideoId video,
                                    const std::string& type,
                                    MethodPreference preference,
                                    QueryResult* result) {
  if (catalog_->HasEvents(video, type)) return Status::OK();
  auto providers = registry_->Providers(type);
  if (providers.empty()) {
    return Status::NotFound("no metadata and no extraction method for '" +
                            type + "'");
  }
  // High-level optimization: pick the method by the requested preference.
  extensions::SemanticExtension* best = providers[0];
  for (auto* p : providers) {
    const bool better =
        preference == MethodPreference::kQuality
            ? p->Quality(type) > best->Quality(type)
            : p->Cost(type) < best->Cost(type);
    if (better) best = p;
  }
  COBRA_RETURN_IF_ERROR(best->Extract(video, type, catalog_));
  result->methods_invoked.push_back(best->name());
  result->extracted_dynamically = true;
  return Status::OK();
}

bool QueryEngine::MatchesPattern(const model::EventRecord& event,
                                 const EventPattern& pattern) {
  if (event.type != pattern.type) return false;
  for (const auto& [key, value] : pattern.attr_equals) {
    auto it = event.attrs.find(key);
    if (it == event.attrs.end()) return false;
    if (ToUpperAscii(it->second) != value) return false;
  }
  return true;
}

bool QueryEngine::TemporalMatch(TemporalOp op,
                                const model::EventRecord& primary,
                                const model::EventRecord& secondary) {
  const double pb = primary.begin_sec, pe = primary.end_sec;
  const double sb = secondary.begin_sec, se = secondary.end_sec;
  switch (op) {
    case TemporalOp::kNone:
      return true;
    case TemporalOp::kDuring:
      return pb >= sb && pe <= se;
    case TemporalOp::kOverlapping:
      return pb <= se && sb <= pe;
    case TemporalOp::kBefore:
      return pe <= sb;
    case TemporalOp::kAfter:
      return pb >= se;
    case TemporalOp::kContaining:
      return sb >= pb && se <= pe;
  }
  return false;
}

namespace {

/// Morsel-parallel, order-preserving filter over an event list.
std::vector<model::EventRecord> FilterEvents(
    const kernel::ExecContext& exec,
    const std::vector<model::EventRecord>& events,
    const std::function<bool(const model::EventRecord&)>& keep) {
  const size_t num = exec.NumMorsels(events.size());
  std::vector<std::vector<model::EventRecord>> parts(num);
  kernel::ForEachMorsel(
      exec, events.size(), [&](size_t m, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (keep(events[i])) parts[m].push_back(events[i]);
        }
      });
  std::vector<model::EventRecord> out;
  for (auto& part : parts) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

}  // namespace

std::string QueryEngine::CacheKey(const ParsedQuery& query) {
  std::string key = query.video;
  auto add_pattern = [&key](const EventPattern& p) {
    key += '\x1e';
    key += p.type;
    for (const auto& [k, v] : p.attr_equals) {
      key += '\x1f';
      key += k;
      key += '=';
      key += v;
    }
  };
  add_pattern(query.primary);
  key += '\x1e';
  key += static_cast<char>('0' + static_cast<int>(query.temporal_op));
  if (query.temporal_op != TemporalOp::kNone) add_pattern(query.secondary);
  key += '\x1e';
  key += static_cast<char>('0' + static_cast<int>(query.preference));
  return key;
}

CacheStats QueryEngine::cache_stats() const {
  MutexLock lock(cache_mu_);
  CacheStats stats;
  stats.hits = cache_hits_;
  stats.misses = cache_misses_;
  stats.evictions = cache_evictions_;
  stats.entries = lru_.size();
  stats.capacity = cache_capacity_;
  return stats;
}

size_t QueryEngine::cache_capacity() const {
  MutexLock lock(cache_mu_);
  return cache_capacity_;
}

void QueryEngine::EvictToCapacity(size_t capacity) {
  while (lru_.size() > capacity) {
    cache_map_.erase(lru_.back().key);
    lru_.pop_back();
    ++cache_evictions_;
  }
}

void QueryEngine::set_cache_capacity(size_t capacity) {
  MutexLock lock(cache_mu_);
  cache_capacity_ = capacity;
  EvictToCapacity(cache_capacity_);
}

void QueryEngine::ClearCache() {
  MutexLock lock(cache_mu_);
  lru_.clear();
  cache_map_.clear();
}

QueryEngine::CacheOutcome QueryEngine::CacheLookup(
    const std::string& key, std::vector<model::EventRecord>* segments) {
  MutexLock lock(cache_mu_);
  if (cache_capacity_ == 0) return CacheOutcome::kDisabled;
  auto it = cache_map_.find(key);
  const bool found = it != cache_map_.end();
  if (found && it->second->event_version == catalog_->event_version()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++cache_hits_;
    *segments = it->second->segments;
    return CacheOutcome::kHit;
  }
  if (found) {
    // Stale under the current event version: drop and re-evaluate.
    lru_.erase(it->second);
    cache_map_.erase(it);
  }
  ++cache_misses_;
  return found ? CacheOutcome::kStale : CacheOutcome::kMiss;
}

void QueryEngine::CacheStore(const std::string& key,
                             const std::vector<model::EventRecord>& segments,
                             uint64_t event_version) {
  MutexLock lock(cache_mu_);
  if (cache_capacity_ == 0) return;
  lru_.push_front(CacheEntry{key, segments, event_version});
  cache_map_[key] = lru_.begin();
  EvictToCapacity(cache_capacity_);
}

Result<QueryResult> QueryEngine::Execute(const ParsedQuery& query) {
  if (query.watch) {
    return Status::FailedPrecondition(
        "WATCH needs a continuous-query host — submit it through the "
        "query server");
  }
  // EXPLAIN without source text: same static report, unpositioned warnings.
  if (query.explain) return ExecuteExplain(query, {});
  if (!query.profile) return ExecuteImpl(query, exec_);
  // PROFILE: run under a per-query sink and attach its exports. The sink
  // lives on the stack — profiles are never stored in the result cache.
  trace::TraceSink sink;
  kernel::ExecContext exec = exec_;
  exec.trace = &sink;
  exec.trace_parent = nullptr;
  COBRA_ASSIGN_OR_RETURN(QueryResult result, ExecuteImpl(query, exec));
  result.profile_text = sink.ToText();
  result.profile_json = sink.ToJson();
  return result;
}

Result<QueryResult> QueryEngine::ExecuteImpl(const ParsedQuery& query,
                                             const kernel::ExecContext& exec) {
  trace::SpanGuard span(exec.trace, exec.trace_parent, "query.execute");
  if (span.enabled()) {
    span.Detail(StrFormat("type=%s video=%s", query.primary.type.c_str(),
                          query.video.c_str()));
  }
  const kernel::ExecContext qctx = exec.WithTraceParent(span.span());

  QueryResult result;

  // Pre-execution plan verification (the paper's preprocessor contract):
  // reject a plan whose video is unknown or whose event types have neither
  // metadata nor a registered extraction method, BEFORE the cache is
  // consulted or any extraction engine fires. Verification has no side
  // effects, so it is safe (and cheap) on the cached path too.
  {
    trace::SpanGuard verify(qctx.trace, qctx.trace_parent, "query.verify");
    const Status verdict = VerifyPlan(query, *catalog_, *registry_);
    if (verify.enabled()) {
      verify.Detail(verdict.ok() ? "ok" : verdict.message());
    }
    COBRA_RETURN_IF_ERROR(verdict);
  }

  const std::string cache_key = CacheKey(query);
  std::vector<model::EventRecord> cached;
  const CacheOutcome outcome = CacheLookup(cache_key, &cached);
  if (outcome == CacheOutcome::kHit) {
    result.segments = std::move(cached);
    result.cache_hit = true;
    // Served from the cache: the profile states so instead of replaying
    // the timings recorded when the entry was originally computed.
    span.FromCache();
    span.RowsOut(result.segments.size());
    if (span.enabled()) {
      trace::SpanGuard lookup(qctx.trace, qctx.trace_parent,
                              "query.cache_lookup");
      lookup.Detail("hit");
      lookup.FromCache();
      lookup.RowsOut(result.segments.size());
    }
    return result;
  }
  if (outcome != CacheOutcome::kDisabled && span.enabled()) {
    trace::SpanGuard lookup(qctx.trace, qctx.trace_parent,
                            "query.cache_lookup");
    lookup.Detail(outcome == CacheOutcome::kStale ? "stale" : "miss");
  }
  LiveSource source(this);
  uint64_t version_at_read = 0;
  COBRA_ASSIGN_OR_RETURN(
      result.segments,
      EvaluateOver(query, qctx, source, &result, &version_at_read));
  span.RowsOut(result.segments.size());
  CacheStore(cache_key, result.segments, version_at_read);
  return result;
}

Result<std::vector<model::EventRecord>> QueryEngine::EvaluateOver(
    const ParsedQuery& query, const kernel::ExecContext& qctx,
    EventSource& source, QueryResult* result, uint64_t* version_at_read) {
  COBRA_ASSIGN_OR_RETURN(model::VideoDescriptor video,
                         source.FindVideo(query.video));

  {
    trace::SpanGuard prep(qctx.trace, qctx.trace_parent, "query.preprocess");
    COBRA_RETURN_IF_ERROR(source.Ensure(video.id, query.primary.type,
                                        query.preference, result));
    if (prep.enabled()) {
      prep.Detail("type=" + query.primary.type +
                  (result->extracted_dynamically
                       ? " extracted_by=" + result->methods_invoked.back()
                       : " metadata=present"));
    }
  }
  // Version the eventual cache entry at the moment the event lists are
  // read: a writer bumping the version after this point leaves the stored
  // entry already-stale (re-evaluated on next lookup), never wrongly
  // fresh. Captured after the primary extraction so our own extraction's
  // bump is inside the entry's version; a dynamic secondary extraction
  // self-invalidates the entry, which merely costs one recomputation.
  *version_at_read = source.EventVersion();
  COBRA_ASSIGN_OR_RETURN(auto primary_events,
                         source.Events(video.id, query.primary.type));

  std::vector<model::EventRecord> filtered;
  {
    trace::SpanGuard filter(qctx.trace, qctx.trace_parent, "query.filter");
    if (filter.enabled()) filter.Detail("type=" + query.primary.type);
    filter.RowsIn(primary_events.size());
    filter.Morsels(qctx.NumMorsels(primary_events.size()));
    // Static interval from the scan cardinality (a catalog fact): exact
    // with no predicates, [0, n] otherwise — PROFILE shows it next to the
    // observed rows_out, and the differential harness pins containment.
    filter.StaticCard(
        query.primary.attr_equals.empty() ? primary_events.size() : 0,
        primary_events.size());
    filtered = FilterEvents(qctx, primary_events, [&query](const auto& e) {
      return MatchesPattern(e, query.primary);
    });
    filter.RowsOut(filtered.size());
  }

  if (query.temporal_op != TemporalOp::kNone) {
    const size_t methods_before = result->methods_invoked.size();
    {
      trace::SpanGuard prep(qctx.trace, qctx.trace_parent, "query.preprocess");
      COBRA_RETURN_IF_ERROR(source.Ensure(video.id, query.secondary.type,
                                          query.preference, result));
      if (prep.enabled()) {
        prep.Detail("type=" + query.secondary.type +
                    (result->methods_invoked.size() > methods_before
                         ? " extracted_by=" + result->methods_invoked.back()
                         : " metadata=present"));
      }
    }
    COBRA_ASSIGN_OR_RETURN(auto secondary_events,
                           source.Events(video.id, query.secondary.type));
    std::vector<model::EventRecord> secondary;
    {
      trace::SpanGuard filter(qctx.trace, qctx.trace_parent, "query.filter");
      if (filter.enabled()) filter.Detail("type=" + query.secondary.type);
      filter.RowsIn(secondary_events.size());
      filter.Morsels(qctx.NumMorsels(secondary_events.size()));
      filter.StaticCard(
          query.secondary.attr_equals.empty() ? secondary_events.size() : 0,
          secondary_events.size());
      secondary = FilterEvents(qctx, secondary_events, [&query](const auto& e) {
        return MatchesPattern(e, query.secondary);
      });
      filter.RowsOut(secondary.size());
    }
    // Temporal semijoin: keep primaries with at least one temporal match.
    trace::SpanGuard join(qctx.trace, qctx.trace_parent,
                          "query.temporal_join");
    if (join.enabled()) {
      join.Detail(std::string("op=") + TemporalOpName(query.temporal_op));
    }
    join.RowsIn(filtered.size() + secondary.size());
    join.Morsels(qctx.NumMorsels(filtered.size()));
    // A semijoin keeps a subset of the filtered primaries; none survive
    // when the secondary side is empty.
    join.StaticCard(0, secondary.empty() ? 0 : filtered.size());
    std::vector<model::EventRecord> joined =
        FilterEvents(qctx, filtered, [&](const auto& p) {
          for (const auto& s : secondary) {
            if (TemporalMatch(query.temporal_op, p, s)) return true;
          }
          return false;
        });
    join.RowsOut(joined.size());
    filtered = std::move(joined);
  }

  return filtered;
}

Result<QueryResult> QueryEngine::ExecuteSnapshot(
    const std::string& query_text, const CatalogSnapshot& snapshot) const {
  // Storage commands mutate; a snapshot read rejects them with a typed
  // error instead of silently parsing them as retrieval text.
  const std::string_view text = StrTrim(query_text);
  size_t verb_len = 0;
  while (verb_len < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[verb_len])) != 0) {
    ++verb_len;
  }
  const std::string verb = ToUpperAscii(text.substr(0, verb_len));
  if (verb == "PERSIST" || verb == "RECOVER") {
    return Status::FailedPrecondition(
        verb + " is a storage command — snapshot reads are read-only");
  }
  const QueryAnalysis analysis = AnalyzeQueryTextWithFacts(query_text);
  COBRA_RETURN_IF_ERROR(analysis.diags.ToStatus("query"));
  COBRA_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(query_text));
  if (parsed.explain) {
    return ExecuteExplain(parsed, analysis.attr_sites, snapshot);
  }
  return ExecuteSnapshot(parsed, snapshot);
}

Result<QueryResult> QueryEngine::ExecuteSnapshot(
    const ParsedQuery& query, const CatalogSnapshot& snapshot) const {
  if (query.watch) {
    return Status::FailedPrecondition(
        "WATCH is a continuous query — a snapshot read is one-shot");
  }
  if (query.explain) return ExecuteExplain(query, {}, snapshot);
  if (!query.profile) return ExecuteSnapshot(query, snapshot, exec_);
  // PROFILE under a per-query sink, exactly like the live path.
  trace::TraceSink sink;
  kernel::ExecContext exec = exec_;
  exec.trace = &sink;
  exec.trace_parent = nullptr;
  COBRA_ASSIGN_OR_RETURN(QueryResult result,
                         ExecuteSnapshot(query, snapshot, exec));
  result.profile_text = sink.ToText();
  result.profile_json = sink.ToJson();
  return result;
}

Result<QueryResult> QueryEngine::ExecuteSnapshot(
    const std::string& query_text, const ShardedSnapshotSet& snapshots) const {
  // Same storage-command rejection as the unsharded text path, before the
  // retrieval grammar touches the text.
  const std::string_view text = StrTrim(query_text);
  size_t verb_len = 0;
  while (verb_len < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[verb_len])) != 0) {
    ++verb_len;
  }
  const std::string verb = ToUpperAscii(text.substr(0, verb_len));
  if (verb == "PERSIST" || verb == "RECOVER") {
    return Status::FailedPrecondition(
        verb + " is a storage command — snapshot reads are read-only");
  }
  const QueryAnalysis analysis = AnalyzeQueryTextWithFacts(query_text);
  COBRA_RETURN_IF_ERROR(analysis.diags.ToStatus("query"));
  COBRA_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(query_text));
  if (parsed.explain) {
    return ExecuteExplain(parsed, analysis.attr_sites, snapshots);
  }
  return ExecuteSnapshot(parsed, snapshots);
}

Result<QueryResult> QueryEngine::ExecuteSnapshot(
    const ParsedQuery& query, const ShardedSnapshotSet& snapshots) const {
  if (query.watch) {
    return Status::FailedPrecondition(
        "WATCH is a continuous query — a snapshot read is one-shot");
  }
  if (query.explain) return ExecuteExplain(query, {}, snapshots);
  if (snapshots.empty()) {
    return Status::InvalidArgument(
        "sharded snapshot read needs at least one shard snapshot");
  }
  // Videos are partitioned across shards, so the whole plan (primary and
  // secondary event reads alike) evaluates on the one shard owning the
  // video; scatter below the per-shard catalog is the kernel exchange
  // layer's job. OwnerOf falls back to shard 0 when no shard holds the
  // name, keeping the NotFound message byte-identical to single-catalog.
  const CatalogSnapshot& owner = snapshots.shard(snapshots.OwnerOf(query.video));
  COBRA_ASSIGN_OR_RETURN(QueryResult result, ExecuteSnapshot(query, owner));
  result.info = snapshots.EpochStamp();
  return result;
}

Result<QueryResult> QueryEngine::ExecuteExplain(
    const ParsedQuery& query, const std::vector<AttrSite>& sites) const {
  // Identical failure surface to execution: an unknown video or an
  // unsatisfiable event type fails here exactly as Execute would.
  COBRA_RETURN_IF_ERROR(VerifyPlan(query, *catalog_, *registry_));
  COBRA_ASSIGN_OR_RETURN(model::VideoDescriptor video,
                         catalog_->FindVideo(query.video));
  return ExplainOver(
      query, sites, video,
      [this](model::VideoId id, const std::string& type) {
        return catalog_->HasEvents(id, type);
      },
      [this](model::VideoId id, const std::string& type) {
        return catalog_->Events(id, type);
      });
}

Result<QueryResult> QueryEngine::ExecuteExplain(
    const ParsedQuery& query, const std::vector<AttrSite>& sites,
    const CatalogSnapshot& snapshot) const {
  COBRA_RETURN_IF_ERROR(VerifyPlan(query, snapshot, *registry_));
  COBRA_ASSIGN_OR_RETURN(model::VideoDescriptor video,
                         snapshot.FindVideo(query.video));
  return ExplainOver(
      query, sites, video,
      [&snapshot](model::VideoId id, const std::string& type) {
        return snapshot.HasEvents(id, type);
      },
      [&snapshot](model::VideoId id, const std::string& type) {
        return snapshot.Events(id, type);
      });
}

Result<QueryResult> QueryEngine::ExecuteExplain(
    const ParsedQuery& query, const std::vector<AttrSite>& sites,
    const ShardedSnapshotSet& snapshots) const {
  if (snapshots.empty()) {
    return Status::InvalidArgument(
        "sharded snapshot read needs at least one shard snapshot");
  }
  // Same routing as execution: the whole plan is analyzed on the one shard
  // owning the video, and the response is stamped with the read set's epoch
  // vector. The report itself is byte-identical to the unsharded snapshot.
  const CatalogSnapshot& owner =
      snapshots.shard(snapshots.OwnerOf(query.video));
  COBRA_ASSIGN_OR_RETURN(QueryResult result,
                         ExecuteExplain(query, sites, owner));
  result.info = snapshots.EpochStamp();
  return result;
}

Result<QueryResult> QueryEngine::ExecuteSnapshot(
    const ParsedQuery& query, const CatalogSnapshot& snapshot,
    const kernel::ExecContext& exec) const {
  trace::SpanGuard span(exec.trace, exec.trace_parent, "query.execute");
  if (span.enabled()) {
    span.Detail(StrFormat("type=%s video=%s", query.primary.type.c_str(),
                          query.video.c_str()));
  }
  const kernel::ExecContext qctx = exec.WithTraceParent(span.span());

  QueryResult result;
  {
    trace::SpanGuard verify(qctx.trace, qctx.trace_parent, "query.verify");
    const Status verdict = VerifyPlan(query, snapshot, *registry_);
    if (verify.enabled()) {
      verify.Detail(verdict.ok() ? "ok" : verdict.message());
    }
    COBRA_RETURN_IF_ERROR(verdict);
  }
  // No cache consult — matches the live span shape with cache capacity 0
  // (no query.cache_lookup span). The snapshot IS the consistency story:
  // identical epochs always yield identical bytes.
  SnapshotSource source(snapshot, *registry_);
  uint64_t version_at_read = 0;
  COBRA_ASSIGN_OR_RETURN(
      result.segments,
      EvaluateOver(query, qctx, source, &result, &version_at_read));
  span.RowsOut(result.segments.size());
  return result;
}

}  // namespace cobra::query
