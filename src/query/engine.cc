#include "query/engine.h"

#include <algorithm>

#include "base/logging.h"
#include "base/strings.h"

namespace cobra::query {

QueryEngine::QueryEngine(model::VideoCatalog* catalog,
                         extensions::ExtensionRegistry* registry)
    : catalog_(catalog), registry_(registry) {
  COBRA_CHECK(catalog != nullptr && registry != nullptr);
}

Result<QueryResult> QueryEngine::Execute(const std::string& query_text) {
  COBRA_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(query_text));
  return Execute(parsed);
}

Status QueryEngine::EnsureAvailable(model::VideoId video,
                                    const std::string& type,
                                    MethodPreference preference,
                                    QueryResult* result) {
  if (catalog_->HasEvents(video, type)) return Status::OK();
  auto providers = registry_->Providers(type);
  if (providers.empty()) {
    return Status::NotFound("no metadata and no extraction method for '" +
                            type + "'");
  }
  // High-level optimization: pick the method by the requested preference.
  extensions::SemanticExtension* best = providers[0];
  for (auto* p : providers) {
    const bool better =
        preference == MethodPreference::kQuality
            ? p->Quality(type) > best->Quality(type)
            : p->Cost(type) < best->Cost(type);
    if (better) best = p;
  }
  COBRA_RETURN_IF_ERROR(best->Extract(video, type, catalog_));
  result->methods_invoked.push_back(best->name());
  result->extracted_dynamically = true;
  return Status::OK();
}

bool QueryEngine::MatchesPattern(const model::EventRecord& event,
                                 const EventPattern& pattern) {
  if (event.type != pattern.type) return false;
  for (const auto& [key, value] : pattern.attr_equals) {
    auto it = event.attrs.find(key);
    if (it == event.attrs.end()) return false;
    if (ToUpperAscii(it->second) != value) return false;
  }
  return true;
}

bool QueryEngine::TemporalMatch(TemporalOp op,
                                const model::EventRecord& primary,
                                const model::EventRecord& secondary) {
  const double pb = primary.begin_sec, pe = primary.end_sec;
  const double sb = secondary.begin_sec, se = secondary.end_sec;
  switch (op) {
    case TemporalOp::kNone:
      return true;
    case TemporalOp::kDuring:
      return pb >= sb && pe <= se;
    case TemporalOp::kOverlapping:
      return pb <= se && sb <= pe;
    case TemporalOp::kBefore:
      return pe <= sb;
    case TemporalOp::kAfter:
      return pb >= se;
    case TemporalOp::kContaining:
      return sb >= pb && se <= pe;
  }
  return false;
}

Result<QueryResult> QueryEngine::Execute(const ParsedQuery& query) {
  QueryResult result;
  COBRA_ASSIGN_OR_RETURN(model::VideoDescriptor video,
                         catalog_->FindVideo(query.video));

  COBRA_RETURN_IF_ERROR(EnsureAvailable(video.id, query.primary.type,
                                        query.preference, &result));
  COBRA_ASSIGN_OR_RETURN(auto primary_events,
                         catalog_->Events(video.id, query.primary.type));

  std::vector<model::EventRecord> filtered;
  for (const auto& e : primary_events) {
    if (MatchesPattern(e, query.primary)) filtered.push_back(e);
  }

  if (query.temporal_op != TemporalOp::kNone) {
    COBRA_RETURN_IF_ERROR(EnsureAvailable(video.id, query.secondary.type,
                                          query.preference, &result));
    COBRA_ASSIGN_OR_RETURN(auto secondary_events,
                           catalog_->Events(video.id, query.secondary.type));
    std::vector<model::EventRecord> secondary;
    for (const auto& e : secondary_events) {
      if (MatchesPattern(e, query.secondary)) secondary.push_back(e);
    }
    std::vector<model::EventRecord> joined;
    for (const auto& p : filtered) {
      for (const auto& s : secondary) {
        if (TemporalMatch(query.temporal_op, p, s)) {
          joined.push_back(p);
          break;
        }
      }
    }
    filtered = std::move(joined);
  }

  result.segments = std::move(filtered);
  return result;
}

}  // namespace cobra::query
