#ifndef COBRA_QUERY_CONTINUOUS_H_
#define COBRA_QUERY_CONTINUOUS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "cobra/video_model.h"
#include "kernel/catalog.h"
#include "query/analyzer.h"
#include "query/engine.h"
#include "query/parser.h"
#include "query/snapshot.h"

namespace cobra::query {

/// One match delivered by a registered watch. The stream of notifications a
/// watch emits is a deterministic function of the event-write history alone
/// — batch boundaries, pump timing, and WINDOW bounds never change it
/// (that's the invariance the streaming differential harness pins): every
/// segment is reported exactly once, in the order evaluation first saw it
/// (snapshots list events begin-sorted), regardless of how the writes were
/// batched.
struct WatchNotification {
  uint64_t watch_id = 0;
  /// 1-based per-watch sequence number (gap-free; the duplicate/loss check
  /// of the recovery tests).
  uint64_t seq = 0;
  /// Snapshot identity the match was found at.
  uint64_t epoch = 0;
  uint64_t version = 0;
  model::EventRecord segment;
};

/// Registry and incremental evaluator of `WATCH` continuous queries — the
/// MavVStream-style standing-query layer over the existing snapshot-read
/// engine. The host (the query server) installs it as the engine's watch
/// handler and calls Pump() after every appended batch; each pump evaluates
/// the registered watches over ONE epoch-pinned snapshot and emits a
/// notification for every segment not already reported.
///
/// Per-pump work is bounded by a cheap append-only gate: a watch re-runs
/// its RETRIEVE body only when the event history moved AND the gate cannot
/// prove the new writes are appends that leave the watch's own event-type
/// cardinalities unchanged. The gate reads the kernel `event.type` column
/// through the probe-only `Bat::CountEq` — served by the incrementally
/// maintained hash index under streaming ingestion, so the common "batch of
/// foreign-type events" case skips the evaluator without scanning. Any
/// non-append mutation (e.g. DropEvents) fails the size-delta check and
/// forces a full evaluation — the gate is an optimization, never a
/// soundness assumption.
///
/// WINDOW bounds only the *standing view* (Standing()): segments whose end
/// lies within the trailing window of the newest end seen. Notifications
/// are never window-filtered — a windowed stream would depend on batch
/// timing, breaking the differential guarantee above.
///
/// Not thread-safe: the host serializes registration, pumps, and cursor
/// calls with its writer domain (readers never touch the manager).
class ContinuousQueryManager {
 public:
  struct Stats {
    uint64_t registered = 0;     // watches ever registered
    uint64_t evals = 0;          // RETRIEVE bodies executed
    uint64_t skipped_evals = 0;  // pumps gated out (version or count gate)
    uint64_t notifications = 0;
    uint64_t eval_errors = 0;  // swallowed evaluation failures (pre-data)
  };

  /// `engine` and `snapshots` must outlive the manager. `kernel` enables
  /// the count gate (pass the engine's kernel catalog); null disables
  /// gating — every pump with a moved version evaluates.
  ContinuousQueryManager(const QueryEngine* engine, SnapshotManager* snapshots,
                         kernel::Catalog* kernel = nullptr);

  /// Installs this manager as `engine`'s watch handler (engine must be the
  /// construction engine).
  void Attach(QueryEngine* engine);

  /// Registers a WATCH query. The video must already be registered — the
  /// failure is positioned at the query's video token ("query:L:C: error:
  /// no video named ..."); the watched event *types* need not exist yet (a
  /// watch waits for future data). Returns the 1-based watch id.
  Result<uint64_t> Register(const ParsedQuery& query,
                            const QueryAnalysis& analysis);
  /// Analyze + parse + Register. How a non-server host registers from text.
  Result<uint64_t> RegisterText(const std::string& text);

  Status Unregister(uint64_t id);

  /// Evaluates every watch against one freshly pinned snapshot, appending
  /// new matches to `out`. The `ctx` overload parents `watch.eval` spans
  /// under the caller's trace.
  Status Pump(std::vector<WatchNotification>* out);
  Status Pump(const kernel::ExecContext& ctx,
              std::vector<WatchNotification>* out);
  /// Same against a caller-pinned snapshot (the sharded path pumps each
  /// shard's owning snapshot).
  Status PumpOver(const CatalogSnapshot& snap, const kernel::ExecContext& ctx,
                  std::vector<WatchNotification>* out);

  /// The watch's standing view at its last evaluation: all matched
  /// segments, window-filtered when the watch carries WINDOW (segments with
  /// end_sec >= newest end seen - window), begin-sorted.
  Result<std::vector<model::EventRecord>> Standing(uint64_t id) const;

  /// Serializes every watch — definition, sequence counter, and the set of
  /// already-reported segments — so a host can re-register after RECOVER
  /// without duplicating or losing notifications. RestoreCursors replaces
  /// the current registry.
  std::string SerializeCursors() const;
  Status RestoreCursors(const std::string& payload);

  size_t watch_count() const { return watches_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Watch {
    uint64_t id = 0;
    /// The RETRIEVE body (watch/profile/explain flags stripped).
    ParsedQuery inner;
    double window_sec = 0.0;
    uint64_t seq = 0;
    /// event_version of the last snapshot evaluated (or gate-skipped).
    uint64_t last_version = 0;
    bool evaluated_once = false;
    /// Gate state at last_version: kernel `event.type` rows and this
    /// watch's per-type cardinalities.
    uint64_t last_type_rows = 0;
    uint64_t last_primary_count = 0;
    uint64_t last_secondary_count = 0;
    /// Canonical keys of every segment already notified.
    std::set<std::string> seen;
    /// Newest segment end observed — the WINDOW watermark.
    double watermark = 0.0;
    /// Segments of the last successful evaluation (the standing view).
    std::vector<model::EventRecord> last_segments;
  };

  /// Whether the gate proves the history move [w.last_version,
  /// snap.event_version()] cannot change this watch's result set.
  bool GateSkips(const Watch& w, const CatalogSnapshot& snap,
                 uint64_t* type_rows, uint64_t* primary_count,
                 uint64_t* secondary_count) const;
  Status PumpWatch(Watch* w, const CatalogSnapshot& snap,
                   const kernel::ExecContext& ctx,
                   std::vector<WatchNotification>* out);
  /// Canonical text form of a watch (re-parses to an equivalent query) —
  /// the cursor serialization of its definition.
  static std::string CanonicalText(const Watch& w);
  static std::string SegmentKey(const model::EventRecord& e);

  const QueryEngine* engine_;
  SnapshotManager* snapshots_;
  kernel::Catalog* kernel_;
  std::map<uint64_t, Watch> watches_;
  uint64_t next_id_ = 1;
  Stats stats_;
};

}  // namespace cobra::query

#endif  // COBRA_QUERY_CONTINUOUS_H_
