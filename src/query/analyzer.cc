// Static analysis for the retrieval language (AnalyzeQueryText) and the
// pre-execution plan verifier (VerifyPlan), declared in analyzer.h.
//
// AnalyzeQueryText is a positioned mirror of ParseQuery: same lexer rules,
// same grammar walk, same error strings — plus the line/column of the token
// each error points at. Keeping the two in lockstep is what makes the
// accept-parity guarantee testable (see analyzer_test.cc): for every input,
// AnalyzeQueryText(text).ok() == ParseQuery(text).ok().

#include "query/analyzer.h"

#include <cctype>
#include <functional>
#include <map>

#include "base/strings.h"

namespace cobra::query {
namespace {

/// A retrieval-language token with the 1-based position of its first
/// character. Token rules are identical to parser.cc's Lexer.
struct QToken {
  enum class Kind { kWord, kString, kEquals, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 1;
  int col = 1;
};

class QLexer {
 public:
  explicit QLexer(const std::string& input) : input_(input) {}

  Result<QToken> Next() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      Bump();
    }
    token_line_ = line_;
    token_col_ = col_;
    if (pos_ >= input_.size()) return Make(QToken::Kind::kEnd, "");
    const char c = input_[pos_];
    if (c == '=') {
      Bump();
      return Make(QToken::Kind::kEquals, "=");
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      Bump();
      std::string text;
      while (pos_ < input_.size() && input_[pos_] != quote) {
        text += input_[pos_];
        Bump();
      }
      if (pos_ >= input_.size()) {
        return Status::InvalidArgument("unterminated string literal");
      }
      Bump();  // closing quote
      return Make(QToken::Kind::kString, std::move(text));
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
        c == '.') {
      std::string text;
      while (pos_ < input_.size()) {
        const char d = input_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '-' || d == '.') {
          text += d;
          Bump();
        } else {
          break;
        }
      }
      return Make(QToken::Kind::kWord, std::move(text));
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in query");
  }

  int token_line() const { return token_line_; }
  int token_col() const { return token_col_; }

 private:
  QToken Make(QToken::Kind kind, std::string text) const {
    QToken tok;
    tok.kind = kind;
    tok.text = std::move(text);
    tok.line = token_line_;
    tok.col = token_col_;
    return tok;
  }

  void Bump() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  const std::string& input_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int token_line_ = 1;
  int token_col_ = 1;
};

bool IsKeyword(const QToken& tok, const char* kw) {
  return tok.kind == QToken::Kind::kWord && ToUpperAscii(tok.text) == kw;
}

/// Duration-literal mirror of parser.cc's ParseWindowDuration — identical
/// accepted shapes (`[-]digits[.digits]` + `s`/`S`), kept in lockstep for
/// the accept-parity guarantee.
bool ParseWindowDuration(const std::string& text, double* seconds) {
  size_t i = 0;
  bool negative = false;
  if (i < text.size() && text[i] == '-') {
    negative = true;
    ++i;
  }
  size_t digits = 0;
  double value = 0.0;
  while (i < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10.0 + (text[i] - '0');
    ++digits;
    ++i;
  }
  if (digits == 0) return false;
  if (i < text.size() && text[i] == '.') {
    ++i;
    double scale = 0.1;
    size_t frac = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      value += (text[i] - '0') * scale;
      scale *= 0.1;
      ++frac;
      ++i;
    }
    if (frac == 0) return false;
  }
  if (i + 1 != text.size() || (text[i] != 's' && text[i] != 'S')) {
    return false;
  }
  *seconds = negative ? -value : value;
  return true;
}

/// Grammar mirror of ParseQuery. Records at most one diagnostic (the walk
/// stops at the first error, exactly where the parser would).
class QueryAnalyzer {
 public:
  explicit QueryAnalyzer(const std::string& text) : lexer_(text) {}

  QueryAnalysis Run() {
    QToken tok;
    if (!Next(&tok)) return Finish();
    bool profile = false;
    bool explain = false;
    if (IsKeyword(tok, "WATCH")) {
      watch_ = true;
      if (!Next(&tok)) return Finish();
    } else if (IsKeyword(tok, "PROFILE")) {
      profile = true;
      if (!Next(&tok)) return Finish();
    } else if (IsKeyword(tok, "EXPLAIN")) {
      explain = true;
      if (!Next(&tok)) return Finish();
    }
    if (!IsKeyword(tok, "RETRIEVE")) {
      Error(tok, watch_    ? "expected RETRIEVE after WATCH"
                 : profile ? "expected RETRIEVE after PROFILE"
                 : explain ? "expected RETRIEVE after EXPLAIN"
                           : "query must start with RETRIEVE");
      return Finish();
    }
    if (!Next(&tok)) return Finish();
    if (tok.kind != QToken::Kind::kWord) {
      Error(tok, "expected event type after RETRIEVE");
      return Finish();
    }
    if (!Next(&tok)) return Finish();
    if (!IsKeyword(tok, "FROM")) {
      Error(tok, "expected FROM after event type");
      return Finish();
    }
    if (!Next(&tok)) return Finish();
    if (tok.kind != QToken::Kind::kString && tok.kind != QToken::Kind::kWord) {
      Error(tok, "expected video name after FROM");
      return Finish();
    }
    video_line_ = tok.line;
    video_col_ = tok.col;
    if (!Next(&tok)) return Finish();
    if (IsKeyword(tok, "WHERE")) {
      if (!AnalyzeWhere(&tok, /*secondary=*/false)) return Finish();
    }

    static const std::map<std::string, TemporalOp> kTemporalOps = {
        {"DURING", TemporalOp::kDuring},
        {"OVERLAPPING", TemporalOp::kOverlapping},
        {"BEFORE", TemporalOp::kBefore},
        {"AFTER", TemporalOp::kAfter},
        {"CONTAINING", TemporalOp::kContaining},
    };
    if (tok.kind == QToken::Kind::kWord &&
        kTemporalOps.count(ToUpperAscii(tok.text)) != 0) {
      if (!Next(&tok)) return Finish();
      if (tok.kind != QToken::Kind::kWord) {
        Error(tok, "expected event type after temporal operator");
        return Finish();
      }
      if (!Next(&tok)) return Finish();
      if (IsKeyword(tok, "WHERE")) {
        if (!AnalyzeWhere(&tok, /*secondary=*/true)) return Finish();
      }
    }

    if (IsKeyword(tok, "PREFER")) {
      if (!Next(&tok)) return Finish();
      if (!IsKeyword(tok, "QUALITY") && !IsKeyword(tok, "COST")) {
        Error(tok, "expected QUALITY or COST after PREFER");
        return Finish();
      }
      if (!Next(&tok)) return Finish();
    }

    if (IsKeyword(tok, "WINDOW")) {
      if (!watch_) {
        Error(tok, "WINDOW requires WATCH");
        return Finish();
      }
      if (!Next(&tok)) return Finish();
      double seconds = 0.0;
      if (tok.kind != QToken::Kind::kWord ||
          !ParseWindowDuration(tok.text, &seconds)) {
        Error(tok, "expected window duration like '30s' after WINDOW");
        return Finish();
      }
      if (seconds <= 0.0) {
        Error(tok, "window duration must be positive");
        return Finish();
      }
      window_sec_ = seconds;
      if (!Next(&tok)) return Finish();
    }

    if (tok.kind != QToken::Kind::kEnd) {
      Error(tok, "unexpected trailing token: " + tok.text);
    }
    return Finish();
  }

 private:
  QueryAnalysis Finish() {
    QueryAnalysis analysis;
    analysis.diags = std::move(diags_);
    analysis.attr_sites = std::move(sites_);
    analysis.watch = watch_;
    analysis.window_sec = window_sec_;
    analysis.video_line = video_line_;
    analysis.video_col = video_col_;
    return analysis;
  }

  bool Next(QToken* tok) {
    Result<QToken> next = lexer_.Next();
    if (!next.ok()) {
      diags_.Error(lexer_.token_line(), lexer_.token_col(),
                   next.status().message(), next.status().code());
      return false;
    }
    *tok = std::move(next).value();
    return true;
  }

  void Error(const QToken& at, std::string message) {
    diags_.Error(at.line, at.col, std::move(message),
                 StatusCode::kInvalidArgument);
  }

  /// WHERE clause mirror: on entry *tok is the WHERE keyword; on true
  /// return, *tok is the first token past the clause. Each well-formed
  /// predicate is recorded as an AttrSite anchored at its attribute token.
  bool AnalyzeWhere(QToken* tok, bool secondary) {
    if (!Next(tok)) return false;
    for (;;) {
      if (tok->kind != QToken::Kind::kWord) {
        Error(*tok, "expected attribute name in WHERE");
        return false;
      }
      const QToken attr = *tok;
      const std::string key = ToLowerAscii(tok->text);
      QToken eq;
      if (!Next(&eq)) return false;
      if (eq.kind != QToken::Kind::kEquals) {
        Error(eq, "expected '=' after attribute " + key);
        return false;
      }
      QToken value;
      if (!Next(&value)) return false;
      if (value.kind != QToken::Kind::kString &&
          value.kind != QToken::Kind::kWord) {
        Error(value, "expected value after '='");
        return false;
      }
      AttrSite site;
      site.line = attr.line;
      site.col = attr.col;
      site.secondary = secondary;
      site.key = key;
      site.value = ToUpperAscii(value.text);
      sites_.push_back(std::move(site));
      if (!Next(tok)) return false;
      if (!IsKeyword(*tok, "AND")) break;
      if (!Next(tok)) return false;
    }
    return true;
  }

  QLexer lexer_;
  DiagnosticList diags_;
  std::vector<AttrSite> sites_;
  bool watch_ = false;
  double window_sec_ = 0.0;
  int video_line_ = 1;
  int video_col_ = 1;
};

}  // namespace

DiagnosticList AnalyzeQueryText(const std::string& text) {
  return QueryAnalyzer(text).Run().diags;
}

QueryAnalysis AnalyzeQueryTextWithFacts(const std::string& text) {
  return QueryAnalyzer(text).Run();
}

namespace {

/// Shared body of both VerifyPlan overloads: `has_events` answers "does the
/// read surface already hold metadata of this type for the plan's video".
Status VerifyPlanOver(
    const ParsedQuery& query, const model::VideoDescriptor& video,
    const extensions::ExtensionRegistry& registry,
    const std::function<bool(model::VideoId, const std::string&)>& has_events) {
  auto satisfiable = [&](const std::string& type) {
    return has_events(video.id, type) || !registry.Providers(type).empty();
  };
  // Mirrors EnsureAvailable's failure exactly, minus its side effects.
  if (!satisfiable(query.primary.type)) {
    return Status::NotFound("no metadata and no extraction method for '" +
                            query.primary.type + "'");
  }
  if (query.temporal_op != TemporalOp::kNone &&
      !satisfiable(query.secondary.type)) {
    return Status::NotFound("no metadata and no extraction method for '" +
                            query.secondary.type + "'");
  }
  return Status::OK();
}

}  // namespace

Status VerifyPlan(const ParsedQuery& query, const model::VideoCatalog& catalog,
                  const extensions::ExtensionRegistry& registry) {
  COBRA_ASSIGN_OR_RETURN(model::VideoDescriptor video,
                         catalog.FindVideo(query.video));
  return VerifyPlanOver(query, video, registry,
                        [&catalog](model::VideoId id, const std::string& type) {
                          return catalog.HasEvents(id, type);
                        });
}

Status VerifyPlan(const ParsedQuery& query, const CatalogSnapshot& snapshot,
                  const extensions::ExtensionRegistry& registry) {
  COBRA_ASSIGN_OR_RETURN(model::VideoDescriptor video,
                         snapshot.FindVideo(query.video));
  return VerifyPlanOver(query, video, registry,
                        [&snapshot](model::VideoId id,
                                    const std::string& type) {
                          return snapshot.HasEvents(id, type);
                        });
}

Status VerifyPlan(const ParsedQuery& query, const ShardedSnapshotSet& snapshots,
                  const extensions::ExtensionRegistry& registry) {
  if (snapshots.empty()) {
    return Status::InvalidArgument(
        "sharded plan verification needs at least one shard snapshot");
  }
  return VerifyPlan(query, snapshots.shard(snapshots.OwnerOf(query.video)),
                    registry);
}

}  // namespace cobra::query
