#include "query/continuous.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "base/io.h"
#include "base/strings.h"
#include "base/trace.h"

namespace cobra::query {
namespace {

uint64_t DoubleBits(double d) {
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

const char* TemporalOpKeyword(TemporalOp op) {
  switch (op) {
    case TemporalOp::kDuring:
      return "DURING";
    case TemporalOp::kOverlapping:
      return "OVERLAPPING";
    case TemporalOp::kBefore:
      return "BEFORE";
    case TemporalOp::kAfter:
      return "AFTER";
    case TemporalOp::kContaining:
      return "CONTAINING";
    case TemporalOp::kNone:
      break;
  }
  return "";
}

void AppendWhere(std::string* text, const EventPattern& pattern) {
  bool first = true;
  for (const auto& [key, value] : pattern.attr_equals) {
    *text += first ? " WHERE " : " AND ";
    first = false;
    *text += key + " = '" + value + "'";
  }
}

}  // namespace

ContinuousQueryManager::ContinuousQueryManager(const QueryEngine* engine,
                                               SnapshotManager* snapshots,
                                               kernel::Catalog* kernel)
    : engine_(engine), snapshots_(snapshots), kernel_(kernel) {}

void ContinuousQueryManager::Attach(QueryEngine* engine) {
  engine->set_watch_handler(
      [this](const ParsedQuery& query, const QueryAnalysis& analysis) {
        return Register(query, analysis);
      });
}

Result<uint64_t> ContinuousQueryManager::Register(
    const ParsedQuery& query, const QueryAnalysis& analysis) {
  if (!query.watch) {
    return Status::InvalidArgument("not a WATCH query");
  }
  // The video must exist now — a typo'd name would otherwise just never
  // notify. The event types deliberately need no metadata yet: a watch's
  // whole point is waiting for data that hasn't arrived.
  SnapshotManager::Pin pin = snapshots_->Acquire();
  if (Result<model::VideoDescriptor> video = pin->FindVideo(query.video);
      !video.ok()) {
    return Status(
        video.status().code(),
        StrFormat("query:%d:%d: error: %s", analysis.video_line,
                  analysis.video_col, video.status().message().c_str()));
  }
  Watch w;
  w.id = next_id_++;
  w.inner = query;
  w.inner.watch = false;
  w.inner.profile = false;
  w.inner.explain = false;
  w.inner.window_sec = 0.0;
  w.window_sec = query.window_sec;
  const uint64_t id = w.id;
  watches_.emplace(id, std::move(w));
  ++stats_.registered;
  return id;
}

Result<uint64_t> ContinuousQueryManager::RegisterText(const std::string& text) {
  const QueryAnalysis analysis = AnalyzeQueryTextWithFacts(text);
  COBRA_RETURN_IF_ERROR(analysis.diags.ToStatus("query"));
  COBRA_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
  return Register(parsed, analysis);
}

Status ContinuousQueryManager::Unregister(uint64_t id) {
  if (watches_.erase(id) == 0) {
    return Status::NotFound(
        StrFormat("no watch %llu", static_cast<unsigned long long>(id)));
  }
  return Status::OK();
}

bool ContinuousQueryManager::GateSkips(const Watch& w,
                                       const CatalogSnapshot& snap,
                                       uint64_t* type_rows,
                                       uint64_t* primary_count,
                                       uint64_t* secondary_count) const {
  *type_rows = 0;
  *primary_count = 0;
  *secondary_count = 0;
  if (kernel_ == nullptr) return false;
  const kernel::Catalog* kernel = kernel_;
  Result<const kernel::Bat*> bat = kernel->Get("event.type");
  if (bat.ok()) {
    const kernel::Bat& types = *bat.value();
    *type_rows = types.size();
    Result<uint64_t> primary =
        types.CountEq(kernel::Value::Str(w.inner.primary.type));
    if (!primary.ok()) return false;
    *primary_count = primary.value();
    if (w.inner.temporal_op != TemporalOp::kNone) {
      Result<uint64_t> secondary =
          types.CountEq(kernel::Value::Str(w.inner.secondary.type));
      if (!secondary.ok()) return false;
      *secondary_count = secondary.value();
    }
  }
  if (!w.evaluated_once) return false;
  // Appends-only proof: every event append adds exactly one `event.type`
  // row, so a version delta that equals the row delta rules out drops and
  // rewrites; unchanged per-type cardinalities then prove none of the
  // appended rows is of a type this watch reads.
  const uint64_t version_delta = snap.event_version() - w.last_version;
  if (version_delta != *type_rows - w.last_type_rows) return false;
  return *primary_count == w.last_primary_count &&
         *secondary_count == w.last_secondary_count;
}

Status ContinuousQueryManager::PumpWatch(Watch* w, const CatalogSnapshot& snap,
                                         const kernel::ExecContext& ctx,
                                         std::vector<WatchNotification>* out) {
  if (w->evaluated_once && snap.event_version() == w->last_version) {
    ++stats_.skipped_evals;
    return Status::OK();
  }
  uint64_t type_rows = 0;
  uint64_t primary_count = 0;
  uint64_t secondary_count = 0;
  if (GateSkips(*w, snap, &type_rows, &primary_count, &secondary_count)) {
    ++stats_.skipped_evals;
    w->last_version = snap.event_version();
    w->last_type_rows = type_rows;
    w->last_primary_count = primary_count;
    w->last_secondary_count = secondary_count;
    return Status::OK();
  }
  trace::SpanGuard span(ctx.trace, ctx.trace_parent, "watch.eval");
  if (span.enabled()) {
    span.Detail(StrFormat("watch=%llu type=%s video=%s",
                          static_cast<unsigned long long>(w->id),
                          w->inner.primary.type.c_str(),
                          w->inner.video.c_str()));
  }
  const kernel::ExecContext child = ctx.WithTraceParent(span.span());
  Result<QueryResult> result = engine_->ExecuteSnapshot(w->inner, snap, child);
  if (!result.ok()) {
    // A watch registered before its data is extractable fails here (e.g.
    // snapshot reads never extract dynamically); it stays registered and
    // retries on the next pump.
    ++stats_.eval_errors;
    return Status::OK();
  }
  ++stats_.evals;
  w->evaluated_once = true;
  w->last_version = snap.event_version();
  w->last_type_rows = type_rows;
  w->last_primary_count = primary_count;
  w->last_secondary_count = secondary_count;
  w->last_segments = result.value().segments;
  span.RowsIn(result.value().segments.size());
  for (const model::EventRecord& segment : result.value().segments) {
    w->watermark = std::max(w->watermark, segment.end_sec);
    if (!w->seen.insert(SegmentKey(segment)).second) continue;
    WatchNotification n;
    n.watch_id = w->id;
    n.seq = ++w->seq;
    n.epoch = snap.epoch();
    n.version = snap.event_version();
    n.segment = segment;
    out->push_back(std::move(n));
    ++stats_.notifications;
    span.RowsOut(1);
  }
  return Status::OK();
}

Status ContinuousQueryManager::Pump(std::vector<WatchNotification>* out) {
  return Pump(engine_->exec(), out);
}

Status ContinuousQueryManager::Pump(const kernel::ExecContext& ctx,
                                    std::vector<WatchNotification>* out) {
  SnapshotManager::Pin pin = snapshots_->Acquire();
  return PumpOver(*pin, ctx, out);
}

Status ContinuousQueryManager::PumpOver(const CatalogSnapshot& snap,
                                        const kernel::ExecContext& ctx,
                                        std::vector<WatchNotification>* out) {
  for (auto& [id, watch] : watches_) {
    COBRA_RETURN_IF_ERROR(PumpWatch(&watch, snap, ctx, out));
  }
  return Status::OK();
}

Result<std::vector<model::EventRecord>> ContinuousQueryManager::Standing(
    uint64_t id) const {
  auto it = watches_.find(id);
  if (it == watches_.end()) {
    return Status::NotFound(
        StrFormat("no watch %llu", static_cast<unsigned long long>(id)));
  }
  const Watch& w = it->second;
  if (w.window_sec <= 0.0) return w.last_segments;
  std::vector<model::EventRecord> out;
  for (const model::EventRecord& e : w.last_segments) {
    if (e.end_sec >= w.watermark - w.window_sec) out.push_back(e);
  }
  return out;
}

std::string ContinuousQueryManager::CanonicalText(const Watch& w) {
  std::string text = "WATCH RETRIEVE " + w.inner.primary.type + " FROM '" +
                     w.inner.video + "'";
  AppendWhere(&text, w.inner.primary);
  if (w.inner.temporal_op != TemporalOp::kNone) {
    text += std::string(" ") + TemporalOpKeyword(w.inner.temporal_op) + " " +
            w.inner.secondary.type;
    AppendWhere(&text, w.inner.secondary);
  }
  if (w.inner.preference == MethodPreference::kCost) text += " PREFER COST";
  if (w.window_sec > 0.0) text += StrFormat(" WINDOW %gs", w.window_sec);
  return text;
}

std::string ContinuousQueryManager::SegmentKey(const model::EventRecord& e) {
  std::string key = StrFormat(
      "%s|%016llx|%016llx|%016llx", e.type.c_str(),
      static_cast<unsigned long long>(DoubleBits(e.begin_sec)),
      static_cast<unsigned long long>(DoubleBits(e.end_sec)),
      static_cast<unsigned long long>(DoubleBits(e.confidence)));
  for (const auto& [k, v] : e.attrs) key += "|" + k + "=" + v;
  return key;
}

std::string ContinuousQueryManager::SerializeCursors() const {
  std::string out;
  io::PutU64(&out, next_id_);
  io::PutU64(&out, watches_.size());
  for (const auto& [id, w] : watches_) {
    io::PutU64(&out, id);
    io::PutStr(&out, CanonicalText(w));
    io::PutU64(&out, w.seq);
    io::PutF64(&out, w.watermark);
    io::PutU64(&out, w.seen.size());
    for (const std::string& key : w.seen) io::PutStr(&out, key);
  }
  return out;
}

Status ContinuousQueryManager::RestoreCursors(const std::string& payload) {
  const Status corrupt = Status::InvalidArgument("corrupt watch cursors");
  io::ByteReader r(payload);
  uint64_t next_id = 0;
  uint64_t count = 0;
  if (!r.ReadU64(&next_id) || !r.ReadU64(&count)) return corrupt;
  std::map<uint64_t, Watch> restored;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    std::string text;
    if (!r.ReadU64(&id) || !r.ReadStr(&text)) return corrupt;
    COBRA_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
    Watch w;
    w.id = id;
    w.inner = parsed;
    w.inner.watch = false;
    w.inner.window_sec = 0.0;
    w.window_sec = parsed.window_sec;
    if (!r.ReadU64(&w.seq) || !r.ReadF64(&w.watermark)) return corrupt;
    uint64_t seen = 0;
    if (!r.ReadU64(&seen)) return corrupt;
    for (uint64_t k = 0; k < seen; ++k) {
      std::string key;
      if (!r.ReadStr(&key)) return corrupt;
      w.seen.insert(std::move(key));
    }
    // Gate state is deliberately NOT restored: the first pump after a
    // restore re-evaluates, and the seen set suppresses duplicates — so a
    // crash between a durable append and its notification delivers exactly
    // once, never zero or twice.
    restored.emplace(id, std::move(w));
  }
  watches_ = std::move(restored);
  next_id_ = next_id;
  return Status::OK();
}

}  // namespace cobra::query
