#include "query/snapshot.h"

#include <algorithm>
#include <utility>

#include "base/strings.h"

namespace cobra::query {

Result<model::VideoDescriptor> CatalogSnapshot::FindVideo(
    const std::string& name) const {
  for (const auto& v : state_.videos) {
    if (v.name == name) return v;
  }
  return Status::NotFound("no video named " + name);
}

std::vector<model::EventRecord> CatalogSnapshot::Events(
    model::VideoId video, const std::string& type) const {
  auto it = state_.events.find(video);
  std::vector<model::EventRecord> out;
  if (it != state_.events.end()) {
    for (const auto& e : it->second) {
      if (type.empty() || e.type == type) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const model::EventRecord& a, const model::EventRecord& b) {
              return a.begin_sec < b.begin_sec;
            });
  return out;
}

bool CatalogSnapshot::HasEvents(model::VideoId video,
                                const std::string& type) const {
  auto it = state_.events.find(video);
  if (it == state_.events.end()) return false;
  for (const auto& e : it->second) {
    if (e.type == type) return true;
  }
  return false;
}

SnapshotManager::SnapshotManager(model::VideoCatalog* videos,
                                 kernel::Catalog* kernel)
    : videos_(videos), kernel_(kernel) {}

SnapshotManager::~SnapshotManager() = default;

SnapshotManager::Pin::Pin(Pin&& other) noexcept
    : manager_(other.manager_), snapshot_(std::move(other.snapshot_)) {
  other.manager_ = nullptr;
  other.snapshot_ = nullptr;
}

SnapshotManager::Pin& SnapshotManager::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    if (snapshot_ != nullptr && manager_ != nullptr) {
      manager_->Unpin(snapshot_->epoch());
    }
    manager_ = other.manager_;
    snapshot_ = std::move(other.snapshot_);
    other.manager_ = nullptr;
    other.snapshot_ = nullptr;
  }
  return *this;
}

SnapshotManager::Pin::~Pin() {
  if (snapshot_ != nullptr && manager_ != nullptr) {
    manager_->Unpin(snapshot_->epoch());
  }
}

SnapshotManager::Pin SnapshotManager::Acquire() {
  MutexLock lock(mu_);
  RefreshLocked();
  EpochEntry& entry = epochs_.at(current_epoch_);
  ++entry.pins;
  return Pin(this, entry.snapshot);
}

void SnapshotManager::Refresh() {
  MutexLock lock(mu_);
  RefreshLocked();
}

void SnapshotManager::RefreshLocked() {
  // Lock-free staleness probe: no contact with the catalog mutexes unless
  // something actually changed since the last publication.
  const uint64_t model_now = videos_->model_version();
  const uint64_t kernel_now = kernel_ != nullptr ? kernel_->version() : 0;
  if (current_epoch_ != 0) {
    const CatalogSnapshot& current = *epochs_.at(current_epoch_).snapshot;
    if (current.model_version() == model_now &&
        current.kernel_version() == kernel_now) {
      return;
    }
  }
  model::VideoCatalog::SnapshotState state = videos_->CaptureSnapshotState();
  // Versions that move between the probe above and the capture are caught by
  // the next Acquire(); the snapshot's own stamps always describe its data.
  uint64_t checkpoint_lsn = 0;
  uint64_t last_lsn = 0;
  if (kernel_ != nullptr) {
    kernel::Catalog::StoreStats store = kernel_->Stats().store;
    checkpoint_lsn = store.checkpoint_lsn;
    last_lsn = store.last_lsn;
  }
  const uint64_t epoch = ++current_epoch_;
  ++published_;
  epochs_[epoch] = EpochEntry{
      std::make_shared<const CatalogSnapshot>(epoch, std::move(state),
                                              kernel_now, checkpoint_lsn,
                                              last_lsn),
      /*pins=*/0};
  ReclaimLocked();
}

void SnapshotManager::Unpin(uint64_t epoch) {
  MutexLock lock(mu_);
  auto it = epochs_.find(epoch);
  if (it == epochs_.end() || it->second.pins == 0) return;
  --it->second.pins;
  if (it->second.pins == 0 && epoch != current_epoch_) {
    epochs_.erase(it);
    ++reclaimed_;
  }
}

void SnapshotManager::ReclaimLocked() {
  for (auto it = epochs_.begin(); it != epochs_.end();) {
    if (it->first != current_epoch_ && it->second.pins == 0) {
      it = epochs_.erase(it);
      ++reclaimed_;
    } else {
      ++it;
    }
  }
}

size_t ShardedSnapshotSet::OwnerOf(const std::string& video) const {
  for (size_t k = 0; k < pins_.size(); ++k) {
    if (shard(k).FindVideo(video).ok()) return k;
  }
  return 0;
}

std::string ShardedSnapshotSet::EpochStamp() const {
  std::string epochs;
  for (size_t k = 0; k < epochs_.size(); ++k) {
    if (k != 0) epochs += ",";
    epochs += StrFormat("%llu", static_cast<unsigned long long>(epochs_[k]));
  }
  return StrFormat("shards=%zu epochs=[%s] coherent=%s", pins_.size(),
                   epochs.c_str(), coherent_ ? "true" : "false");
}

Result<ShardedSnapshotSet> AcquireShardedSnapshots(
    const std::vector<SnapshotManager*>& managers) {
  if (managers.empty()) {
    return Status::InvalidArgument(
        "sharded snapshot acquisition needs at least one manager");
  }
  for (const SnapshotManager* m : managers) {
    if (m == nullptr) {
      return Status::InvalidArgument(
          "sharded snapshot acquisition got a null manager");
    }
  }
  // Bounded coherence loop: pin every shard, then confirm no shard moved on
  // while the later pins were being taken. A retry drops the whole round's
  // pins (RAII) and starts over against the newer epochs.
  constexpr int kMaxRounds = 4;
  ShardedSnapshotSet set;
  for (int round = 0; round < kMaxRounds; ++round) {
    set.pins_.clear();
    set.epochs_.clear();
    set.pins_.reserve(managers.size());
    set.epochs_.reserve(managers.size());
    for (SnapshotManager* m : managers) {
      SnapshotManager::Pin pin = m->Acquire();
      set.epochs_.push_back(pin->epoch());
      set.pins_.push_back(std::move(pin));
    }
    set.coherent_ = true;
    for (size_t k = 0; k < managers.size(); ++k) {
      if (managers[k]->stats().current_epoch != set.epochs_[k]) {
        set.coherent_ = false;
        break;
      }
    }
    if (set.coherent_) break;
  }
  return set;
}

SnapshotManager::Stats SnapshotManager::stats() const {
  MutexLock lock(mu_);
  Stats out;
  out.current_epoch = current_epoch_;
  out.published = published_;
  out.reclaimed = reclaimed_;
  out.live_epochs = epochs_.size();
  for (const auto& [epoch, entry] : epochs_) {
    out.pinned_readers += entry.pins;
    if (entry.pins > 0 && out.oldest_pinned_epoch == 0) {
      out.oldest_pinned_epoch = epoch;
    }
  }
  return out;
}

}  // namespace cobra::query
