#include "query/snapshot.h"

#include <algorithm>
#include <utility>

namespace cobra::query {

Result<model::VideoDescriptor> CatalogSnapshot::FindVideo(
    const std::string& name) const {
  for (const auto& v : state_.videos) {
    if (v.name == name) return v;
  }
  return Status::NotFound("no video named " + name);
}

std::vector<model::EventRecord> CatalogSnapshot::Events(
    model::VideoId video, const std::string& type) const {
  auto it = state_.events.find(video);
  std::vector<model::EventRecord> out;
  if (it != state_.events.end()) {
    for (const auto& e : it->second) {
      if (type.empty() || e.type == type) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const model::EventRecord& a, const model::EventRecord& b) {
              return a.begin_sec < b.begin_sec;
            });
  return out;
}

bool CatalogSnapshot::HasEvents(model::VideoId video,
                                const std::string& type) const {
  auto it = state_.events.find(video);
  if (it == state_.events.end()) return false;
  for (const auto& e : it->second) {
    if (e.type == type) return true;
  }
  return false;
}

SnapshotManager::SnapshotManager(model::VideoCatalog* videos,
                                 kernel::Catalog* kernel)
    : videos_(videos), kernel_(kernel) {}

SnapshotManager::~SnapshotManager() = default;

SnapshotManager::Pin::Pin(Pin&& other) noexcept
    : manager_(other.manager_), snapshot_(std::move(other.snapshot_)) {
  other.manager_ = nullptr;
  other.snapshot_ = nullptr;
}

SnapshotManager::Pin& SnapshotManager::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    if (snapshot_ != nullptr && manager_ != nullptr) {
      manager_->Unpin(snapshot_->epoch());
    }
    manager_ = other.manager_;
    snapshot_ = std::move(other.snapshot_);
    other.manager_ = nullptr;
    other.snapshot_ = nullptr;
  }
  return *this;
}

SnapshotManager::Pin::~Pin() {
  if (snapshot_ != nullptr && manager_ != nullptr) {
    manager_->Unpin(snapshot_->epoch());
  }
}

SnapshotManager::Pin SnapshotManager::Acquire() {
  MutexLock lock(mu_);
  RefreshLocked();
  EpochEntry& entry = epochs_.at(current_epoch_);
  ++entry.pins;
  return Pin(this, entry.snapshot);
}

void SnapshotManager::Refresh() {
  MutexLock lock(mu_);
  RefreshLocked();
}

void SnapshotManager::RefreshLocked() {
  // Lock-free staleness probe: no contact with the catalog mutexes unless
  // something actually changed since the last publication.
  const uint64_t model_now = videos_->model_version();
  const uint64_t kernel_now = kernel_ != nullptr ? kernel_->version() : 0;
  if (current_epoch_ != 0) {
    const CatalogSnapshot& current = *epochs_.at(current_epoch_).snapshot;
    if (current.model_version() == model_now &&
        current.kernel_version() == kernel_now) {
      return;
    }
  }
  model::VideoCatalog::SnapshotState state = videos_->CaptureSnapshotState();
  // Versions that move between the probe above and the capture are caught by
  // the next Acquire(); the snapshot's own stamps always describe its data.
  uint64_t checkpoint_lsn = 0;
  uint64_t last_lsn = 0;
  if (kernel_ != nullptr) {
    kernel::Catalog::StoreStats store = kernel_->Stats().store;
    checkpoint_lsn = store.checkpoint_lsn;
    last_lsn = store.last_lsn;
  }
  const uint64_t epoch = ++current_epoch_;
  ++published_;
  epochs_[epoch] = EpochEntry{
      std::make_shared<const CatalogSnapshot>(epoch, std::move(state),
                                              kernel_now, checkpoint_lsn,
                                              last_lsn),
      /*pins=*/0};
  ReclaimLocked();
}

void SnapshotManager::Unpin(uint64_t epoch) {
  MutexLock lock(mu_);
  auto it = epochs_.find(epoch);
  if (it == epochs_.end() || it->second.pins == 0) return;
  --it->second.pins;
  if (it->second.pins == 0 && epoch != current_epoch_) {
    epochs_.erase(it);
    ++reclaimed_;
  }
}

void SnapshotManager::ReclaimLocked() {
  for (auto it = epochs_.begin(); it != epochs_.end();) {
    if (it->first != current_epoch_ && it->second.pins == 0) {
      it = epochs_.erase(it);
      ++reclaimed_;
    } else {
      ++it;
    }
  }
}

SnapshotManager::Stats SnapshotManager::stats() const {
  MutexLock lock(mu_);
  Stats out;
  out.current_epoch = current_epoch_;
  out.published = published_;
  out.reclaimed = reclaimed_;
  out.live_epochs = epochs_.size();
  for (const auto& [epoch, entry] : epochs_) {
    out.pinned_readers += entry.pins;
    if (entry.pins > 0 && out.oldest_pinned_epoch == 0) {
      out.oldest_pinned_epoch = epoch;
    }
  }
  return out;
}

}  // namespace cobra::query
