#ifndef COBRA_QUERY_PARSER_H_
#define COBRA_QUERY_PARSER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"

namespace cobra::query {

/// Temporal join operators between the primary and secondary event pattern.
enum class TemporalOp {
  kNone,
  kDuring,       // primary inside (or equal to) a secondary event
  kOverlapping,  // intervals intersect
  kBefore,       // primary ends before a secondary starts
  kAfter,        // primary starts after a secondary ends
  kContaining,   // primary contains a secondary event
};

/// Method-selection preference used by the query preprocessor when several
/// extensions could materialize a missing event type.
enum class MethodPreference { kQuality, kCost };

/// One event pattern: a type plus attribute equality filters.
struct EventPattern {
  std::string type;
  std::map<std::string, std::string> attr_equals;
};

/// Parsed form of the retrieval language:
///
///   [WATCH|PROFILE|EXPLAIN] RETRIEVE <type> FROM '<video>'
///     [WHERE <key> = '<value>' {AND <key> = '<value>'}]
///     [DURING|OVERLAPPING|BEFORE|AFTER|CONTAINING <type2>
///        [WHERE <key> = '<value>' {AND ...}]]
///     [PREFER QUALITY|COST]
///     [WINDOW <n>s]
///
/// e.g.  RETRIEVE highlight FROM 'german-gp' WHERE driver = 'SCHUMACHER'
///       RETRIEVE pitstop FROM 'usa-gp' DURING highlight PREFER COST
///       PROFILE RETRIEVE highlight FROM 'german-gp'
///       EXPLAIN RETRIEVE highlight FROM 'german-gp' WHERE driver = 'SENNA'
///       WATCH RETRIEVE overtaking FROM 'live-gp' WINDOW 30s
struct ParsedQuery {
  EventPattern primary;
  std::string video;
  TemporalOp temporal_op = TemporalOp::kNone;
  EventPattern secondary;
  MethodPreference preference = MethodPreference::kQuality;
  /// PROFILE prefix: execute normally AND return the execution's span tree
  /// (QueryResult::profile_text / profile_json). Not part of the plan — a
  /// profiled query shares its result-cache entry with the plain form.
  bool profile = false;
  /// EXPLAIN prefix: do NOT execute — return the plan analyzer's static
  /// report (per-operator cardinality intervals seeded from catalog facts,
  /// dead-predicate warnings, provably-empty notes) in
  /// QueryResult::profile_text / profile_json. No extraction runs, the
  /// result cache is never consulted, and `segments` is always empty.
  bool explain = false;
  /// WATCH prefix: register the query as a continuous query instead of
  /// executing it once. The engine hands it to the installed watch handler
  /// (query/continuous.h); notifications are delivered per appended batch.
  bool watch = false;
  /// WINDOW bound in seconds (`WINDOW 30s`); 0 means unbounded. Only valid
  /// together with WATCH — it bounds the *standing view* of a watch to
  /// segments ending within the trailing window; the notification stream
  /// itself is never window-filtered (batch-size invariance).
  double window_sec = 0.0;
};

/// Parses the retrieval language; returns InvalidArgument with a pointed
/// message on syntax errors.
Result<ParsedQuery> ParseQuery(const std::string& text);

}  // namespace cobra::query

#endif  // COBRA_QUERY_PARSER_H_
