#ifndef COBRA_QUERY_ANALYZER_H_
#define COBRA_QUERY_ANALYZER_H_

#include <string>
#include <vector>

#include "base/diag.h"
#include "base/status.h"
#include "cobra/video_model.h"
#include "extensions/extension.h"
#include "query/parser.h"
#include "query/snapshot.h"

namespace cobra::query {

/// Static verification of retrieval-query text: walks the exact grammar
/// ParseQuery accepts (mirroring its error messages) and reports every
/// syntax error with the 1-based line/column of the offending token. A text
/// this returns ok() for always parses; a rejected text never reaches the
/// parser, let alone an operator. Used by QueryEngine::Execute(text) to
/// front-run the parser with positioned diagnostics.
DiagnosticList AnalyzeQueryText(const std::string& text);

/// One WHERE equality predicate with the 1-based position of its attribute
/// token — the anchor for the plan analyzer's dead-predicate warnings
/// ("query:L:C: warning: ..."). Key/value carry the parser's normalization
/// (lowercased key, uppercased value) so EXPLAIN can compare them against
/// catalog metadata exactly the way execution would.
struct AttrSite {
  int line = 1;
  int col = 1;
  bool secondary = false;  // predicate of the temporal clause's pattern
  std::string key;
  std::string value;
};

/// AnalyzeQueryText plus the analysis facts EXPLAIN and the continuous-query
/// layer consume: the position of every WHERE predicate in textual order,
/// the WATCH/WINDOW facts, and the position of the video-name token. All
/// facts are only meaningful when `diags` is empty (the walk stops at the
/// first error).
struct QueryAnalysis {
  DiagnosticList diags;
  std::vector<AttrSite> attr_sites;
  /// The text carries the WATCH prefix (a continuous query).
  bool watch = false;
  /// WINDOW bound in seconds; 0 when absent (unbounded).
  double window_sec = 0.0;
  /// 1-based position of the video-name token after FROM — the anchor for
  /// positioned watch-registration diagnostics ("query:L:C: ..." when a
  /// watch names an unregistered video).
  int video_line = 1;
  int video_col = 1;
};
QueryAnalysis AnalyzeQueryTextWithFacts(const std::string& text);

/// Pre-execution plan verification (the preprocessor's contract, checked
/// statically): the plan's video must be registered, and both its event
/// patterns must be satisfiable — existing event metadata OR at least one
/// registered extension able to extract the type. Returns the exact Status
/// execution would have failed with, but before the result cache is
/// consulted or any extraction engine fires. Read-only: verification never
/// mutates the catalog.
Status VerifyPlan(const ParsedQuery& query, const model::VideoCatalog& catalog,
                  const extensions::ExtensionRegistry& registry);

/// Snapshot-read variant: the same verification (identical error messages)
/// evaluated against an immutable CatalogSnapshot instead of the live
/// catalog. Extraction providers still count as satisfiable so that a
/// snapshot read fails with the execution layer's typed "extraction needs a
/// live query" error, not a misleading NotFound.
Status VerifyPlan(const ParsedQuery& query, const CatalogSnapshot& snapshot,
                  const extensions::ExtensionRegistry& registry);

/// Sharded-read variant: verifies the plan against the shard of `snapshots`
/// owning the plan's video (shard 0 when no shard holds it, so the NotFound
/// is byte-identical to single-catalog). The verdict — message and code —
/// always equals VerifyPlan over the owning shard's CatalogSnapshot.
/// InvalidArgument when `snapshots` is empty.
Status VerifyPlan(const ParsedQuery& query, const ShardedSnapshotSet& snapshots,
                  const extensions::ExtensionRegistry& registry);

}  // namespace cobra::query

#endif  // COBRA_QUERY_ANALYZER_H_
