#include "rules/engine.h"

#include <algorithm>
#include <cmath>

#include "base/strings.h"

namespace cobra::rules {

bool Pattern::Matches(const EventFact& fact) const {
  if (fact.type != type) return false;
  for (const auto& [key, value] : attr_equals) {
    auto it = fact.attrs.find(key);
    if (it == fact.attrs.end() || it->second != value) return false;
  }
  return true;
}

EventFact RuleEngine::Derive(const Rule& rule, const EventFact& a,
                             const EventFact* b) {
  EventFact out;
  out.type = rule.derived_type;
  if (b == nullptr) {
    out.span = a.span;
    out.confidence = a.confidence;
  } else {
    switch (rule.combine) {
      case IntervalCombine::kUnion:
        out.span = a.span.Union(b->span);
        break;
      case IntervalCombine::kIntersection:
        out.span = a.span.Intersection(b->span);
        break;
      case IntervalCombine::kFirst:
        out.span = a.span;
        break;
      case IntervalCombine::kSecond:
        out.span = b->span;
        break;
    }
    out.confidence = std::min(a.confidence, b->confidence);
  }
  for (const auto& [key, value] : rule.derived_attrs) {
    if (StartsWith(value, "$1.")) {
      auto it = a.attrs.find(value.substr(3));
      if (it != a.attrs.end()) out.attrs[key] = it->second;
    } else if (StartsWith(value, "$2.") && b != nullptr) {
      auto it = b->attrs.find(value.substr(3));
      if (it != b->attrs.end()) out.attrs[key] = it->second;
    } else {
      out.attrs[key] = value;
    }
  }
  return out;
}

bool RuleEngine::ApplyRule(const Rule& rule,
                           std::vector<EventFact>& facts) const {
  std::vector<EventFact> derived;
  const size_t n = facts.size();
  for (size_t i = 0; i < n; ++i) {
    if (!rule.first.Matches(facts[i])) continue;
    if (!rule.binary) {
      derived.push_back(Derive(rule, facts[i], nullptr));
      continue;
    }
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (!rule.second.Matches(facts[j])) continue;
      const AllenRelation rel =
          ClassifyRelation(facts[i].span, facts[j].span, rule.epsilon);
      if (!rule.allowed_relations.empty() &&
          rule.allowed_relations.count(rel) == 0) {
        continue;
      }
      if (rule.max_gap_sec >= 0.0) {
        const double gap =
            std::max(facts[j].span.begin - facts[i].span.end,
                     facts[i].span.begin - facts[j].span.end);
        if (gap > rule.max_gap_sec) continue;
      }
      derived.push_back(Derive(rule, facts[i], &facts[j]));
    }
  }
  bool added = false;
  for (auto& d : derived) {
    if (!d.span.Valid()) continue;
    if (std::find(facts.begin(), facts.end(), d) == facts.end()) {
      facts.push_back(std::move(d));
      added = true;
    }
  }
  return added;
}

std::vector<EventFact> RuleEngine::Infer(std::vector<EventFact> facts,
                                         const InferOptions& options) const {
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool any = false;
    for (const Rule& rule : rules_) {
      any = ApplyRule(rule, facts) || any;
    }
    if (!any) break;
  }
  return facts;
}

}  // namespace cobra::rules
