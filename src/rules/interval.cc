#include "rules/interval.h"

#include <algorithm>
#include <cmath>

namespace cobra::rules {

TimeInterval TimeInterval::Union(const TimeInterval& other) const {
  return TimeInterval{std::min(begin, other.begin), std::max(end, other.end)};
}

TimeInterval TimeInterval::Intersection(const TimeInterval& other) const {
  return TimeInterval{std::max(begin, other.begin), std::min(end, other.end)};
}

std::string_view AllenRelationName(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore: return "before";
    case AllenRelation::kAfter: return "after";
    case AllenRelation::kMeets: return "meets";
    case AllenRelation::kMetBy: return "met-by";
    case AllenRelation::kOverlaps: return "overlaps";
    case AllenRelation::kOverlappedBy: return "overlapped-by";
    case AllenRelation::kStarts: return "starts";
    case AllenRelation::kStartedBy: return "started-by";
    case AllenRelation::kDuring: return "during";
    case AllenRelation::kContains: return "contains";
    case AllenRelation::kFinishes: return "finishes";
    case AllenRelation::kFinishedBy: return "finished-by";
    case AllenRelation::kEquals: return "equals";
  }
  return "?";
}

AllenRelation ClassifyRelation(const TimeInterval& a, const TimeInterval& b,
                               double epsilon) {
  const auto eq = [epsilon](double x, double y) {
    return std::abs(x - y) <= epsilon;
  };
  const bool begin_eq = eq(a.begin, b.begin);
  const bool end_eq = eq(a.end, b.end);
  if (begin_eq && end_eq) return AllenRelation::kEquals;
  if (eq(a.end, b.begin)) return AllenRelation::kMeets;
  if (eq(b.end, a.begin)) return AllenRelation::kMetBy;
  if (a.end < b.begin) return AllenRelation::kBefore;
  if (b.end < a.begin) return AllenRelation::kAfter;
  if (begin_eq) {
    return a.end < b.end ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  if (end_eq) {
    return a.begin > b.begin ? AllenRelation::kFinishes
                             : AllenRelation::kFinishedBy;
  }
  if (a.begin > b.begin && a.end < b.end) return AllenRelation::kDuring;
  if (b.begin > a.begin && b.end < a.end) return AllenRelation::kContains;
  return a.begin < b.begin ? AllenRelation::kOverlaps
                           : AllenRelation::kOverlappedBy;
}

AllenRelation InverseRelation(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore: return AllenRelation::kAfter;
    case AllenRelation::kAfter: return AllenRelation::kBefore;
    case AllenRelation::kMeets: return AllenRelation::kMetBy;
    case AllenRelation::kMetBy: return AllenRelation::kMeets;
    case AllenRelation::kOverlaps: return AllenRelation::kOverlappedBy;
    case AllenRelation::kOverlappedBy: return AllenRelation::kOverlaps;
    case AllenRelation::kStarts: return AllenRelation::kStartedBy;
    case AllenRelation::kStartedBy: return AllenRelation::kStarts;
    case AllenRelation::kDuring: return AllenRelation::kContains;
    case AllenRelation::kContains: return AllenRelation::kDuring;
    case AllenRelation::kFinishes: return AllenRelation::kFinishedBy;
    case AllenRelation::kFinishedBy: return AllenRelation::kFinishes;
    case AllenRelation::kEquals: return AllenRelation::kEquals;
  }
  return AllenRelation::kEquals;
}

}  // namespace cobra::rules
