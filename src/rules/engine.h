#ifndef COBRA_RULES_ENGINE_H_
#define COBRA_RULES_ENGINE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "rules/interval.h"

namespace cobra::rules {

/// A fact in the event layer: a typed, attributed time interval. Both
/// extracted events (from DBNs / text recognition) and rule-derived compound
/// events are facts.
struct EventFact {
  std::string type;
  TimeInterval span;
  std::map<std::string, std::string> attrs;
  double confidence = 1.0;

  bool operator==(const EventFact& other) const {
    return type == other.type && attrs == other.attrs &&
           std::abs(span.begin - other.span.begin) < 1e-9 &&
           std::abs(span.end - other.span.end) < 1e-9;
  }
};

/// Premise pattern: matches facts by type and (optionally) attribute values.
struct Pattern {
  std::string type;
  std::map<std::string, std::string> attr_equals;

  bool Matches(const EventFact& fact) const;
};

/// How a binary rule combines the two matched intervals into the derived
/// event's interval.
enum class IntervalCombine { kUnion, kIntersection, kFirst, kSecond };

/// A derivation rule over the event layer. Unary rules (no second premise)
/// re-classify or re-attribute single facts; binary rules join two facts
/// under an Allen-relation constraint — the paper's "user can define new
/// compound events by specifying different temporal relationships among
/// already defined events".
struct Rule {
  std::string name;
  Pattern first;
  Pattern second;          // unused when `binary` is false
  bool binary = false;
  std::set<AllenRelation> allowed_relations;  // empty = any (binary only)
  /// Endpoint tolerance and maximum gap (for kBefore/kAfter proximity).
  double epsilon = 0.05;
  double max_gap_sec = -1.0;  // <0 = unlimited

  std::string derived_type;
  IntervalCombine combine = IntervalCombine::kUnion;
  /// Literal attributes plus copy directives "$1.key" / "$2.key" which pull
  /// the attribute from the first/second matched fact.
  std::map<std::string, std::string> derived_attrs;
};

/// Inference limits for RuleEngine::Infer.
struct InferOptions {
  int max_passes = 8;
};

/// Forward-chaining inference to a fixpoint with duplicate suppression.
class RuleEngine {
 public:
  RuleEngine() = default;

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  size_t num_rules() const { return rules_.size(); }

  /// Returns base facts plus everything derivable.
  std::vector<EventFact> Infer(std::vector<EventFact> facts,
                               const InferOptions& options = {}) const;

 private:
  /// Applies one rule to the fact set, appending novel derivations.
  bool ApplyRule(const Rule& rule, std::vector<EventFact>& facts) const;

  static EventFact Derive(const Rule& rule, const EventFact& a,
                          const EventFact* b);

  std::vector<Rule> rules_;
};

}  // namespace cobra::rules

#endif  // COBRA_RULES_ENGINE_H_
