#ifndef COBRA_RULES_INTERVAL_H_
#define COBRA_RULES_INTERVAL_H_

#include <string>
#include <string_view>

namespace cobra::rules {

/// A closed time interval in seconds within one video.
struct TimeInterval {
  double begin = 0.0;
  double end = 0.0;

  double Duration() const { return end - begin; }
  bool Valid() const { return end >= begin; }

  /// True when the intervals share at least one instant.
  bool Intersects(const TimeInterval& other) const {
    return begin <= other.end && other.begin <= end;
  }

  TimeInterval Union(const TimeInterval& other) const;
  /// Intersection; empty (begin > end) when disjoint.
  TimeInterval Intersection(const TimeInterval& other) const;
};

/// Allen's 13 interval relations, used by the rule-based extension for
/// spatio-temporal reasoning over the event layer.
enum class AllenRelation {
  kBefore,        // a ends before b starts
  kAfter,
  kMeets,         // a.end == b.begin
  kMetBy,
  kOverlaps,      // a starts first, they overlap, b ends last
  kOverlappedBy,
  kStarts,        // same begin, a ends first
  kStartedBy,
  kDuring,        // a strictly inside b
  kContains,
  kFinishes,      // same end, a starts later
  kFinishedBy,
  kEquals,
};

std::string_view AllenRelationName(AllenRelation r);

/// Computes the Allen relation between a and b with tolerance `epsilon` on
/// endpoint equality (feature timelines are quantized to 0.1 s).
AllenRelation ClassifyRelation(const TimeInterval& a, const TimeInterval& b,
                               double epsilon = 1e-9);

/// The inverse relation (relation of b to a).
AllenRelation InverseRelation(AllenRelation r);

}  // namespace cobra::rules

#endif  // COBRA_RULES_INTERVAL_H_
