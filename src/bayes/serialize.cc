#include "bayes/serialize.h"

#include <sstream>

#include "base/strings.h"

namespace cobra::bayes {
namespace {

void AppendCpt(std::ostringstream& out, const char* tag, NodeId node,
               const Cpt& cpt) {
  out << tag << " " << node;
  for (double p : cpt.probs()) out << " " << p;
  out << "\n";
}

Status ParseCpt(const std::vector<std::string>& fields, Cpt* cpt) {
  if (fields.size() != 2 + cpt->probs().size()) {
    return Status::InvalidArgument("CPT arity mismatch in serialized model");
  }
  auto& probs = cpt->mutable_probs();
  for (size_t i = 0; i < probs.size(); ++i) {
    probs[i] = std::atof(fields[2 + i].c_str());
  }
  cpt->NormalizeRows();
  return Status::OK();
}

}  // namespace

std::string SerializeNetwork(const BayesianNetwork& net) {
  std::ostringstream out;
  out << "bn " << net.num_nodes() << "\n";
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    out << "node " << net.name(n) << " " << net.num_states(n) << " "
        << (net.is_evidence(n) ? 1 : 0);
    for (NodeId p : net.parents(n)) out << " " << p;
    out << "\n";
  }
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    AppendCpt(out, "cpt", n, net.cpt(n));
  }
  return out.str();
}

Result<BayesianNetwork> DeserializeNetwork(const std::string& text) {
  BayesianNetwork net;
  std::istringstream in(text);
  std::string line;
  int expected_nodes = -1;
  std::vector<std::vector<NodeId>> parents;
  bool finalized = false;
  while (std::getline(in, line)) {
    const auto fields = StrSplit(std::string(StrTrim(line)), ' ');
    if (fields.empty() || fields[0].empty()) continue;
    if (fields[0] == "bn") {
      if (fields.size() != 2) return Status::InvalidArgument("bad bn line");
      expected_nodes = std::atoi(fields[1].c_str());
    } else if (fields[0] == "node") {
      if (fields.size() < 4) return Status::InvalidArgument("bad node line");
      net.AddNode(fields[1], std::atoi(fields[2].c_str()),
                  std::atoi(fields[3].c_str()) != 0);
      std::vector<NodeId> node_parents;
      for (size_t i = 4; i < fields.size(); ++i) {
        node_parents.push_back(std::atoi(fields[i].c_str()));
      }
      parents.push_back(std::move(node_parents));
    } else if (fields[0] == "cpt") {
      if (!finalized) {
        if (net.num_nodes() != expected_nodes) {
          return Status::InvalidArgument("node count mismatch");
        }
        for (NodeId child = 0; child < net.num_nodes(); ++child) {
          for (NodeId parent : parents[child]) {
            COBRA_RETURN_IF_ERROR(net.AddEdge(parent, child));
          }
        }
        COBRA_RETURN_IF_ERROR(net.Finalize());
        finalized = true;
      }
      if (fields.size() < 2) return Status::InvalidArgument("bad cpt line");
      const NodeId n = std::atoi(fields[1].c_str());
      if (n < 0 || n >= net.num_nodes()) {
        return Status::OutOfRange("cpt node out of range");
      }
      COBRA_RETURN_IF_ERROR(ParseCpt(fields, &net.cpt(n)));
    } else {
      return Status::InvalidArgument("unknown line tag: " + fields[0]);
    }
  }
  if (!finalized) return Status::InvalidArgument("model has no CPT section");
  return net;
}

std::string SerializeDbn(const DynamicBayesianNetwork& dbn) {
  std::ostringstream out;
  out << SerializeNetwork(dbn.slice());
  out << "dbn\n";
  for (const auto& arc : dbn.temporal_arcs()) {
    out << "arc " << arc.from << " " << arc.to << "\n";
  }
  for (NodeId n : dbn.chain_nodes()) {
    AppendCpt(out, "tcpt", n, dbn.transition_cpt(n));
  }
  return out.str();
}

Result<DynamicBayesianNetwork> DeserializeDbn(const std::string& text) {
  const size_t marker = text.find("\ndbn\n");
  if (marker == std::string::npos) {
    return Status::InvalidArgument("not a serialized DBN (no dbn marker)");
  }
  COBRA_ASSIGN_OR_RETURN(BayesianNetwork slice,
                         DeserializeNetwork(text.substr(0, marker + 1)));

  std::vector<DynamicBayesianNetwork::TemporalArc> arcs;
  std::vector<std::pair<NodeId, std::vector<std::string>>> tcpts;
  std::istringstream in(text.substr(marker + 5));
  std::string line;
  while (std::getline(in, line)) {
    const auto fields = StrSplit(std::string(StrTrim(line)), ' ');
    if (fields.empty() || fields[0].empty()) continue;
    if (fields[0] == "arc") {
      if (fields.size() != 3) return Status::InvalidArgument("bad arc line");
      arcs.push_back({std::atoi(fields[1].c_str()),
                      std::atoi(fields[2].c_str())});
    } else if (fields[0] == "tcpt") {
      if (fields.size() < 2) return Status::InvalidArgument("bad tcpt line");
      tcpts.emplace_back(std::atoi(fields[1].c_str()), fields);
    } else {
      return Status::InvalidArgument("unknown dbn line tag: " + fields[0]);
    }
  }
  COBRA_ASSIGN_OR_RETURN(
      DynamicBayesianNetwork dbn,
      DynamicBayesianNetwork::Create(std::move(slice), std::move(arcs)));
  for (auto& [node, fields] : tcpts) {
    if (node < 0 || node >= dbn.slice().num_nodes()) {
      return Status::OutOfRange("tcpt node out of range");
    }
    COBRA_RETURN_IF_ERROR(ParseCpt(fields, &dbn.transition_cpt(node)));
  }
  return dbn;
}

Status StoreModel(kernel::Catalog* catalog, const std::string& name,
                  const std::string& serialized) {
  const std::string bat_name = "model." + name;
  if (catalog->Exists(bat_name)) {
    COBRA_RETURN_IF_ERROR(catalog->Drop(bat_name));
  }
  kernel::Bat bat(kernel::TailType::kStr);
  bat.AppendStr(0, serialized);
  catalog->Put(bat_name, std::move(bat));
  return Status::OK();
}

Result<std::string> LoadModel(const kernel::Catalog& catalog,
                              const std::string& name) {
  COBRA_ASSIGN_OR_RETURN(const kernel::Bat* bat,
                         catalog.Get("model." + name));
  if (bat->empty()) return Status::NotFound("empty model BAT");
  return bat->StrAt(0);
}

}  // namespace cobra::bayes
