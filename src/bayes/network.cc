#include "bayes/network.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>

#include "base/logging.h"

namespace cobra::bayes {

NodeId BayesianNetwork::AddNode(const std::string& name, int num_states,
                                bool is_evidence) {
  COBRA_CHECK(!finalized_) << "AddNode after Finalize";
  COBRA_CHECK(num_states >= 2);
  Node node;
  node.name = name;
  node.num_states = num_states;
  node.is_evidence = is_evidence;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size()) - 1;
}

Status BayesianNetwork::AddEdge(NodeId parent, NodeId child) {
  if (finalized_) return Status::FailedPrecondition("AddEdge after Finalize");
  if (parent < 0 || parent >= num_nodes() || child < 0 ||
      child >= num_nodes() || parent == child) {
    return Status::InvalidArgument("bad edge endpoints");
  }
  nodes_[child].parents.push_back(parent);
  nodes_[parent].children.push_back(child);
  return Status::OK();
}

Status BayesianNetwork::Finalize() {
  if (finalized_) return Status::FailedPrecondition("already finalized");
  // Kahn topological sort.
  std::vector<int> indegree(nodes_.size());
  for (size_t n = 0; n < nodes_.size(); ++n) {
    indegree[n] = static_cast<int>(nodes_[n].parents.size());
  }
  std::queue<NodeId> ready;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (indegree[n] == 0) ready.push(static_cast<NodeId>(n));
  }
  topo_.clear();
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop();
    topo_.push_back(n);
    for (NodeId c : nodes_[n].children) {
      if (--indegree[c] == 0) ready.push(c);
    }
  }
  if (topo_.size() != nodes_.size()) {
    return Status::InvalidArgument("network has a cycle");
  }

  // Partition into enumerated nodes and absorbable evidence leaves.
  enum_nodes_.clear();
  absorbed_.clear();
  std::vector<int> enum_cards;
  for (NodeId n : topo_) {
    if (nodes_[n].is_evidence && nodes_[n].children.empty()) {
      absorbed_.push_back(n);
    } else {
      enum_nodes_.push_back(n);
      enum_cards.push_back(nodes_[n].num_states);
    }
  }
  enum_radix_ = MixedRadix(enum_cards);

  // Allocate CPTs (uniform).
  for (auto& node : nodes_) {
    std::vector<int> parent_cards;
    parent_cards.reserve(node.parents.size());
    for (NodeId p : node.parents) parent_cards.push_back(nodes_[p].num_states);
    node.cpt = Cpt(std::move(parent_cards), node.num_states);
  }
  finalized_ = true;
  return Status::OK();
}

NodeId BayesianNetwork::FindNode(const std::string& name) const {
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].name == name) return static_cast<NodeId>(n);
  }
  return -1;
}

void BayesianNetwork::RandomizeCpts(Rng& rng, double noise) {
  for (auto& node : nodes_) node.cpt.Randomize(rng, noise);
}

std::vector<double> BayesianNetwork::Lambda(NodeId n,
                                            const Evidence& evidence) const {
  const int k = nodes_[n].num_states;
  auto hard = evidence.hard.find(n);
  if (hard != evidence.hard.end()) {
    std::vector<double> lambda(k, 0.0);
    COBRA_CHECK(hard->second >= 0 && hard->second < k);
    lambda[hard->second] = 1.0;
    return lambda;
  }
  auto soft = evidence.soft.find(n);
  if (soft != evidence.soft.end()) {
    COBRA_CHECK(soft->second.size() == static_cast<size_t>(k));
    return soft->second;
  }
  return std::vector<double>(k, 1.0);
}

double BayesianNetwork::EnumerateConfigs(
    const Evidence& evidence,
    const std::function<void(const std::vector<int>&, double)>& visit) const {
  COBRA_CHECK(finalized_);
  // Per-node lambdas (cached once per call).
  std::vector<std::vector<double>> lambdas(nodes_.size());
  for (size_t n = 0; n < nodes_.size(); ++n) {
    lambdas[n] = Lambda(static_cast<NodeId>(n), evidence);
  }
  // Position of each node within the enumeration tuple.
  std::vector<int> pos(nodes_.size(), -1);
  for (size_t i = 0; i < enum_nodes_.size(); ++i) {
    pos[enum_nodes_[i]] = static_cast<int>(i);
  }

  std::vector<int> states(enum_nodes_.size(), 0);
  std::vector<int> parent_states;
  double total = 0.0;
  const size_t num_configs = enum_radix_.size();
  for (size_t cfg = 0; cfg < num_configs; ++cfg) {
    enum_radix_.Decode(cfg, &states);
    double w = 1.0;
    for (size_t i = 0; i < enum_nodes_.size() && w > 0.0; ++i) {
      const NodeId n = enum_nodes_[i];
      const Node& node = nodes_[n];
      parent_states.clear();
      for (NodeId p : node.parents) {
        COBRA_DCHECK(pos[p] >= 0) << "parent of enum node must be enumerated";
        parent_states.push_back(states[pos[p]]);
      }
      const size_t row = node.cpt.parent_index().Encode(parent_states);
      w *= node.cpt.P(row, states[i]) * lambdas[n][states[i]];
    }
    if (w <= 0.0) continue;
    for (NodeId leaf : absorbed_) {
      const Node& node = nodes_[leaf];
      parent_states.clear();
      for (NodeId p : node.parents) parent_states.push_back(states[pos[p]]);
      const size_t row = node.cpt.parent_index().Encode(parent_states);
      double s = 0.0;
      for (int v = 0; v < node.num_states; ++v) {
        s += node.cpt.P(row, v) * lambdas[leaf][v];
      }
      w *= s;
      if (w <= 0.0) break;
    }
    if (w <= 0.0) continue;
    total += w;
    if (visit) visit(states, w);
  }
  return total;
}

Result<std::vector<double>> BayesianNetwork::Posterior(
    NodeId query, const Evidence& evidence) const {
  if (!finalized_) return Status::FailedPrecondition("not finalized");
  if (query < 0 || query >= num_nodes()) {
    return Status::InvalidArgument("bad query node");
  }
  int qpos = -1;
  for (size_t i = 0; i < enum_nodes_.size(); ++i) {
    if (enum_nodes_[i] == query) qpos = static_cast<int>(i);
  }
  if (qpos < 0) {
    return Status::InvalidArgument(
        "query node is an absorbed evidence leaf: " + name(query));
  }
  std::vector<double> acc(num_states(query), 0.0);
  const double total = EnumerateConfigs(
      evidence, [&](const std::vector<int>& states, double w) {
        acc[states[qpos]] += w;
      });
  if (total <= 0.0) {
    return Status::FailedPrecondition("evidence has zero likelihood");
  }
  for (double& v : acc) v /= total;
  return acc;
}

Result<double> BayesianNetwork::LogLikelihood(const Evidence& evidence) const {
  if (!finalized_) return Status::FailedPrecondition("not finalized");
  const double total = EnumerateConfigs(evidence, nullptr);
  if (total <= 0.0) {
    return Status::FailedPrecondition("evidence has zero likelihood");
  }
  return std::log(total);
}

Result<double> BayesianNetwork::TrainEm(const std::vector<Evidence>& samples,
                                        const EmOptions& options) {
  if (!finalized_) return Status::FailedPrecondition("not finalized");
  if (samples.empty()) return Status::InvalidArgument("no samples");

  std::vector<int> pos(nodes_.size(), -1);
  for (size_t i = 0; i < enum_nodes_.size(); ++i) {
    pos[enum_nodes_[i]] = static_cast<int>(i);
  }

  double prev_loglik = -std::numeric_limits<double>::infinity();
  double loglik = prev_loglik;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Expected counts, one flat table per node.
    std::vector<std::vector<double>> counts(nodes_.size());
    for (size_t n = 0; n < nodes_.size(); ++n) {
      counts[n].assign(nodes_[n].cpt.probs().size(), 0.0);
    }
    loglik = 0.0;

    std::vector<int> parent_states;
    for (const Evidence& sample : samples) {
      const double total = EnumerateConfigs(sample, nullptr);
      if (total <= 0.0) {
        return Status::FailedPrecondition(
            "sample with zero likelihood during EM");
      }
      loglik += std::log(total);
      // Per-node lambdas for the absorbed-leaf posterior.
      std::vector<std::vector<double>> lambdas(nodes_.size());
      for (size_t n = 0; n < nodes_.size(); ++n) {
        lambdas[n] = Lambda(static_cast<NodeId>(n), sample);
      }
      EnumerateConfigs(sample, [&](const std::vector<int>& states, double w) {
        const double wn = w / total;
        for (size_t i = 0; i < enum_nodes_.size(); ++i) {
          const NodeId n = enum_nodes_[i];
          parent_states.clear();
          for (NodeId p : nodes_[n].parents) {
            parent_states.push_back(states[pos[p]]);
          }
          const size_t row = nodes_[n].cpt.parent_index().Encode(parent_states);
          Cpt::AddCount(counts[n], nodes_[n].num_states, row, states[i], wn);
        }
        for (NodeId leaf : absorbed_) {
          const Node& node = nodes_[leaf];
          parent_states.clear();
          for (NodeId p : node.parents) {
            parent_states.push_back(states[pos[p]]);
          }
          const size_t row = node.cpt.parent_index().Encode(parent_states);
          double norm = 0.0;
          for (int v = 0; v < node.num_states; ++v) {
            norm += node.cpt.P(row, v) * lambdas[leaf][v];
          }
          if (norm <= 0.0) continue;
          for (int v = 0; v < node.num_states; ++v) {
            const double q = node.cpt.P(row, v) * lambdas[leaf][v] / norm;
            Cpt::AddCount(counts[leaf], node.num_states, row, v, wn * q);
          }
        }
      });
    }

    // M-step.
    for (size_t n = 0; n < nodes_.size(); ++n) {
      nodes_[n].cpt.SetFromCounts(counts[n], options.count_prior);
    }

    if (iter > 0 &&
        std::abs(loglik - prev_loglik) <
            options.tolerance * (std::abs(prev_loglik) + 1.0)) {
      break;
    }
    prev_loglik = loglik;
  }
  return loglik;
}

}  // namespace cobra::bayes
