#include "bayes/cpt.h"

#include <cmath>

#include "base/logging.h"
#include "base/mathutil.h"

namespace cobra::bayes {

MixedRadix::MixedRadix(std::vector<int> cardinalities)
    : cards_(std::move(cardinalities)) {
  strides_.resize(cards_.size());
  total_ = 1;
  for (size_t i = cards_.size(); i-- > 0;) {
    COBRA_CHECK(cards_[i] >= 1);
    strides_[i] = total_;
    total_ *= static_cast<size_t>(cards_[i]);
  }
}

size_t MixedRadix::Encode(const std::vector<int>& digits) const {
  COBRA_CHECK(digits.size() == cards_.size());
  size_t idx = 0;
  for (size_t i = 0; i < digits.size(); ++i) {
    COBRA_DCHECK(digits[i] >= 0 && digits[i] < cards_[i]);
    idx += static_cast<size_t>(digits[i]) * strides_[i];
  }
  return idx;
}

int MixedRadix::Digit(size_t index, size_t digit) const {
  return static_cast<int>((index / strides_[digit]) %
                          static_cast<size_t>(cards_[digit]));
}

void MixedRadix::Decode(size_t index, std::vector<int>* digits) const {
  digits->resize(cards_.size());
  for (size_t i = 0; i < cards_.size(); ++i) {
    (*digits)[i] = Digit(index, i);
  }
}

Cpt::Cpt(std::vector<int> parent_cards, int num_states)
    : parent_index_(std::move(parent_cards)), num_states_(num_states) {
  COBRA_CHECK(num_states >= 1);
  probs_.assign(parent_index_.size() * static_cast<size_t>(num_states),
                1.0 / num_states);
}

Status Cpt::SetRow(size_t row, const std::vector<double>& p) {
  if (row >= num_rows()) return Status::OutOfRange("CPT row out of range");
  if (p.size() != static_cast<size_t>(num_states_)) {
    return Status::InvalidArgument("CPT row has wrong arity");
  }
  double sum = 0.0;
  for (double v : p) {
    if (v < 0.0) return Status::InvalidArgument("negative probability");
    sum += v;
  }
  if (sum <= 0.0) return Status::InvalidArgument("zero row");
  for (int s = 0; s < num_states_; ++s) Set(row, s, p[s] / sum);
  return Status::OK();
}

void Cpt::NormalizeRows() {
  for (size_t r = 0; r < num_rows(); ++r) {
    double sum = 0.0;
    for (int s = 0; s < num_states_; ++s) sum += P(r, s);
    if (sum <= 1e-300) {
      for (int s = 0; s < num_states_; ++s) Set(r, s, 1.0 / num_states_);
    } else {
      for (int s = 0; s < num_states_; ++s) Set(r, s, P(r, s) / sum);
    }
  }
}

void Cpt::Randomize(Rng& rng, double noise) {
  for (size_t r = 0; r < num_rows(); ++r) {
    for (int s = 0; s < num_states_; ++s) {
      Set(r, s, 1.0 + noise * rng.Uniform());
    }
  }
  NormalizeRows();
}

void Cpt::SetFromCounts(const std::vector<double>& counts, double prior) {
  COBRA_CHECK(counts.size() == probs_.size());
  for (size_t r = 0; r < num_rows(); ++r) {
    double sum = 0.0;
    for (int s = 0; s < num_states_; ++s) {
      sum += counts[r * num_states_ + s] + prior;
    }
    for (int s = 0; s < num_states_; ++s) {
      Set(r, s, (counts[r * num_states_ + s] + prior) / sum);
    }
  }
}

}  // namespace cobra::bayes
