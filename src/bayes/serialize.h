#ifndef COBRA_BAYES_SERIALIZE_H_
#define COBRA_BAYES_SERIALIZE_H_

#include <string>

#include "base/status.h"
#include "bayes/dbn.h"
#include "bayes/network.h"
#include "kernel/catalog.h"

namespace cobra::bayes {

/// Model persistence. The paper stores domain knowledge — trained HMMs,
/// DBNs, rules — *inside the database*, so that querying a new domain only
/// requires loading that domain's models. These routines serialize networks
/// to a line-oriented text format and store/load them through the kernel
/// catalog as single-row string BATs under "model.<name>".

/// Serializes a finalized network (structure + CPTs).
std::string SerializeNetwork(const BayesianNetwork& net);

/// Rebuilds a network from SerializeNetwork output.
Result<BayesianNetwork> DeserializeNetwork(const std::string& text);

/// Serializes a DBN (slice + temporal arcs + transition CPTs).
std::string SerializeDbn(const DynamicBayesianNetwork& dbn);

/// Rebuilds a DBN from SerializeDbn output.
Result<DynamicBayesianNetwork> DeserializeDbn(const std::string& text);

/// Stores a serialized model in the kernel catalog under "model.<name>".
Status StoreModel(kernel::Catalog* catalog, const std::string& name,
                  const std::string& serialized);

/// Loads a serialized model from the kernel catalog.
Result<std::string> LoadModel(const kernel::Catalog& catalog,
                              const std::string& name);

}  // namespace cobra::bayes

#endif  // COBRA_BAYES_SERIALIZE_H_
