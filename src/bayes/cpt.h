#ifndef COBRA_BAYES_CPT_H_
#define COBRA_BAYES_CPT_H_

#include <cstddef>
#include <vector>

#include "base/rng.h"
#include "base/status.h"

namespace cobra::bayes {

/// Mixed-radix indexing over a tuple of discrete variables: index =
/// sum_i digit_i * stride_i with the *last* cardinality varying fastest.
class MixedRadix {
 public:
  MixedRadix() = default;
  explicit MixedRadix(std::vector<int> cardinalities);

  size_t size() const { return total_; }
  size_t num_digits() const { return cards_.size(); }
  int cardinality(size_t digit) const { return cards_[digit]; }

  /// Composes an index from digits (digits.size() == num_digits()).
  size_t Encode(const std::vector<int>& digits) const;

  /// Extracts one digit from an index.
  int Digit(size_t index, size_t digit) const;

  /// Decodes all digits.
  void Decode(size_t index, std::vector<int>* digits) const;

 private:
  std::vector<int> cards_;
  std::vector<size_t> strides_;
  size_t total_ = 1;
};

/// A conditional probability table P(X | parents): `rows` = one probability
/// row per parent configuration, each row of length num_states summing to 1.
class Cpt {
 public:
  Cpt() = default;
  /// Builds a CPT with the given parent cardinalities, initialized uniform.
  Cpt(std::vector<int> parent_cards, int num_states);

  int num_states() const { return num_states_; }
  size_t num_rows() const { return parent_index_.size(); }
  const MixedRadix& parent_index() const { return parent_index_; }

  double P(size_t row, int state) const {
    return probs_[row * num_states_ + state];
  }
  void Set(size_t row, int state, double p) {
    probs_[row * num_states_ + state] = p;
  }

  /// Sets one full row (normalizes it).
  Status SetRow(size_t row, const std::vector<double>& p);

  /// Normalizes every row to sum to 1 (uniform when a row sums to ~0).
  void NormalizeRows();

  /// Randomizes rows with Dirichlet-like jitter: uniform + noise*U(0,1),
  /// then normalized. Used by EM restarts.
  void Randomize(Rng& rng, double noise = 1.0);

  /// Accumulates `weight` into the (row, state) expected-count cell of
  /// `counts` (caller-managed, same shape as probs).
  static void AddCount(std::vector<double>& counts, int num_states,
                       size_t row, int state, double weight) {
    counts[row * num_states + state] += weight;
  }

  /// Replaces probabilities with normalized counts (plus `prior` smoothing).
  void SetFromCounts(const std::vector<double>& counts, double prior = 1e-3);

  std::vector<double>& mutable_probs() { return probs_; }
  const std::vector<double>& probs() const { return probs_; }

 private:
  MixedRadix parent_index_;
  int num_states_ = 0;
  std::vector<double> probs_;
};

}  // namespace cobra::bayes

#endif  // COBRA_BAYES_CPT_H_
