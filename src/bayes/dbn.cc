#include "bayes/dbn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.h"
#include "base/mathutil.h"

namespace cobra::bayes {

Result<DynamicBayesianNetwork> DynamicBayesianNetwork::Create(
    BayesianNetwork slice, std::vector<TemporalArc> arcs) {
  if (!slice.finalized()) {
    return Status::FailedPrecondition("slice network must be finalized");
  }
  DynamicBayesianNetwork dbn;
  dbn.slice_ = std::move(slice);
  dbn.arcs_ = std::move(arcs);

  // Chain nodes: non-evidence nodes in topological order.
  dbn.chain_pos_.assign(dbn.slice_.num_nodes(), -1);
  std::vector<int> chain_cards;
  for (NodeId n : dbn.slice_.topological_order()) {
    if (!dbn.slice_.is_evidence(n)) {
      dbn.chain_pos_[n] = static_cast<int>(dbn.chain_.size());
      dbn.chain_.push_back(n);
      chain_cards.push_back(dbn.slice_.num_states(n));
    }
  }
  dbn.chain_radix_ = MixedRadix(chain_cards);

  // Evidence nodes that participate in enumeration (non-leaf evidence).
  std::vector<int> ev_cards;
  dbn.enum_pos_.assign(dbn.slice_.num_nodes(), -1);
  for (size_t i = 0; i < dbn.chain_.size(); ++i) {
    dbn.enum_pos_[dbn.chain_[i]] = static_cast<int>(i);
  }
  for (NodeId n : dbn.slice_.enumerated_nodes()) {
    if (dbn.slice_.is_evidence(n)) {
      dbn.enum_pos_[n] =
          static_cast<int>(dbn.chain_.size() + dbn.enum_evidence_.size());
      dbn.enum_evidence_.push_back(n);
      ev_cards.push_back(dbn.slice_.num_states(n));
    }
  }
  dbn.enum_evidence_radix_ = MixedRadix(ev_cards);

  // Temporal parents per node, in arc order.
  dbn.temporal_parents_.assign(dbn.slice_.num_nodes(), {});
  for (const TemporalArc& arc : dbn.arcs_) {
    if (arc.from < 0 || arc.from >= dbn.slice_.num_nodes() || arc.to < 0 ||
        arc.to >= dbn.slice_.num_nodes()) {
      return Status::InvalidArgument("temporal arc endpoint out of range");
    }
    if (dbn.slice_.is_evidence(arc.from) || dbn.slice_.is_evidence(arc.to)) {
      return Status::InvalidArgument(
          "temporal arcs must connect non-observable nodes");
    }
    dbn.temporal_parents_[arc.to].push_back(arc.from);
  }

  // Transition CPTs for chain nodes: intra-slice parents then temporal.
  dbn.transition_cpts_.resize(dbn.slice_.num_nodes());
  for (NodeId n : dbn.chain_) {
    std::vector<int> cards;
    for (NodeId p : dbn.slice_.parents(n)) {
      cards.push_back(dbn.slice_.num_states(p));
    }
    for (NodeId p : dbn.temporal_parents_[n]) {
      cards.push_back(dbn.slice_.num_states(p));
    }
    dbn.transition_cpts_[n] = Cpt(std::move(cards), dbn.slice_.num_states(n));
  }
  return dbn;
}

Cpt& DynamicBayesianNetwork::transition_cpt(NodeId n) {
  COBRA_CHECK(chain_pos_[n] >= 0) << "node has no transition CPT";
  return transition_cpts_[n];
}

const Cpt& DynamicBayesianNetwork::transition_cpt(NodeId n) const {
  COBRA_CHECK(chain_pos_[n] >= 0) << "node has no transition CPT";
  return transition_cpts_[n];
}

void DynamicBayesianNetwork::RandomizeCpts(Rng& rng, double noise) {
  slice_.RandomizeCpts(rng, noise);
  for (NodeId n : chain_) transition_cpts_[n].Randomize(rng, noise);
}

std::vector<std::vector<double>> DynamicBayesianNetwork::SliceLambdas(
    const Evidence& e) const {
  std::vector<std::vector<double>> lambdas(slice_.num_nodes());
  for (NodeId n = 0; n < slice_.num_nodes(); ++n) {
    lambdas[n] = slice_.Lambda(n, e);
  }
  return lambdas;
}

double DynamicBayesianNetwork::ConfigWeight(
    bool initial, const std::vector<int>& prev_chain,
    const std::vector<int>& enum_states,
    const std::vector<std::vector<double>>& lambdas,
    std::vector<int>* scratch) const {
  double w = 1.0;
  // Chain node factors.
  for (size_t i = 0; i < chain_.size(); ++i) {
    const NodeId n = chain_[i];
    scratch->clear();
    for (NodeId p : slice_.parents(n)) {
      scratch->push_back(enum_states[enum_pos_[p]]);
    }
    const Cpt* cpt;
    if (initial) {
      cpt = &slice_.cpt(n);
    } else {
      for (NodeId p : temporal_parents_[n]) {
        scratch->push_back(prev_chain[chain_pos_[p]]);
      }
      cpt = &transition_cpts_[n];
    }
    const size_t row = cpt->parent_index().Encode(*scratch);
    const int x = enum_states[i];
    w *= cpt->P(row, x) * lambdas[n][x];
    if (w <= 0.0) return 0.0;
  }
  // Enumerated evidence node factors (tied slice CPTs).
  for (size_t j = 0; j < enum_evidence_.size(); ++j) {
    const NodeId n = enum_evidence_[j];
    scratch->clear();
    for (NodeId p : slice_.parents(n)) {
      scratch->push_back(enum_states[enum_pos_[p]]);
    }
    const size_t row = slice_.cpt(n).parent_index().Encode(*scratch);
    const int x = enum_states[chain_.size() + j];
    w *= slice_.cpt(n).P(row, x) * lambdas[n][x];
    if (w <= 0.0) return 0.0;
  }
  return w;
}

double DynamicBayesianNetwork::LeafFactor(
    const std::vector<int>& enum_states,
    const std::vector<std::vector<double>>& lambdas,
    std::vector<int>* scratch) const {
  double w = 1.0;
  for (NodeId leaf : slice_.absorbed_leaves()) {
    scratch->clear();
    for (NodeId p : slice_.parents(leaf)) {
      scratch->push_back(enum_states[enum_pos_[p]]);
    }
    const Cpt& cpt = slice_.cpt(leaf);
    const size_t row = cpt.parent_index().Encode(*scratch);
    double s = 0.0;
    for (int v = 0; v < cpt.num_states(); ++v) {
      s += cpt.P(row, v) * lambdas[leaf][v];
    }
    w *= s;
    if (w <= 0.0) return 0.0;
  }
  return w;
}

void DynamicBayesianNetwork::StepKernel(bool initial, const Evidence& evidence,
                                        std::vector<double>* kernel) const {
  const size_t S = chain_radix_.size();
  const size_t E = enum_evidence_radix_.size();
  const size_t prev_dim = initial ? 1 : S;
  kernel->assign(prev_dim * S, 0.0);

  const auto lambdas = SliceLambdas(evidence);
  std::vector<int> enum_states(chain_.size() + enum_evidence_.size());
  std::vector<int> prev_chain(chain_.size(), 0);
  std::vector<int> scratch;

  for (size_t prev = 0; prev < prev_dim; ++prev) {
    if (!initial) chain_radix_.Decode(prev, &prev_chain);
    for (size_t cur = 0; cur < S; ++cur) {
      for (size_t i = 0; i < chain_.size(); ++i) {
        enum_states[i] = chain_radix_.Digit(cur, i);
      }
      double acc = 0.0;
      for (size_t ev = 0; ev < E; ++ev) {
        for (size_t j = 0; j < enum_evidence_.size(); ++j) {
          enum_states[chain_.size() + j] =
              enum_evidence_radix_.Digit(ev, j);
        }
        const double w =
            ConfigWeight(initial, prev_chain, enum_states, lambdas, &scratch);
        if (w <= 0.0) continue;
        acc += w * LeafFactor(enum_states, lambdas, &scratch);
      }
      (*kernel)[prev * S + cur] = acc;
    }
  }
}

void DynamicBayesianNetwork::ProjectToClusters(
    const Clusters& clusters, std::vector<double>* belief) const {
  if (clusters.empty()) return;  // single-cluster (exact) filtering
  const size_t S = chain_radix_.size();
  // Per-cluster marginals.
  std::vector<std::vector<double>> marginals(clusters.size());
  std::vector<std::vector<int>> member_pos(clusters.size());
  std::vector<MixedRadix> radices(clusters.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    std::vector<int> cards;
    for (NodeId n : clusters[c]) {
      COBRA_CHECK(chain_pos_[n] >= 0) << "cluster node must be a chain node";
      member_pos[c].push_back(chain_pos_[n]);
      cards.push_back(slice_.num_states(n));
    }
    radices[c] = MixedRadix(cards);
    marginals[c].assign(radices[c].size(), 0.0);
  }
  std::vector<int> digits(chain_.size());
  std::vector<int> sub;
  for (size_t h = 0; h < S; ++h) {
    chain_radix_.Decode(h, &digits);
    for (size_t c = 0; c < clusters.size(); ++c) {
      sub.clear();
      for (int p : member_pos[c]) sub.push_back(digits[p]);
      marginals[c][radices[c].Encode(sub)] += (*belief)[h];
    }
  }
  for (size_t h = 0; h < S; ++h) {
    chain_radix_.Decode(h, &digits);
    double v = 1.0;
    for (size_t c = 0; c < clusters.size(); ++c) {
      sub.clear();
      for (int p : member_pos[c]) sub.push_back(digits[p]);
      v *= marginals[c][radices[c].Encode(sub)];
    }
    (*belief)[h] = v;
  }
  NormalizeInPlace(*belief);
}

Result<DynamicBayesianNetwork::FilterResult> DynamicBayesianNetwork::Filter(
    const std::vector<Evidence>& sequence, NodeId query,
    const Clusters& clusters) const {
  if (query < 0 || query >= slice_.num_nodes() || chain_pos_[query] < 0) {
    return Status::InvalidArgument("query must be a non-observable node");
  }
  FilterResult result;
  if (sequence.empty()) return result;
  const size_t S = chain_radix_.size();
  const int qpos = chain_pos_[query];
  const int qstates = slice_.num_states(query);

  std::vector<double> belief(S, 0.0);
  std::vector<double> kernel;
  for (size_t t = 0; t < sequence.size(); ++t) {
    std::vector<double> next(S, 0.0);
    if (t == 0) {
      StepKernel(/*initial=*/true, sequence[0], &kernel);
      next = kernel;
    } else {
      StepKernel(/*initial=*/false, sequence[t], &kernel);
      for (size_t prev = 0; prev < S; ++prev) {
        if (belief[prev] <= 0.0) continue;
        const double bp = belief[prev];
        for (size_t cur = 0; cur < S; ++cur) {
          next[cur] += bp * kernel[prev * S + cur];
        }
      }
    }
    double c = 0.0;
    for (double v : next) c += v;
    if (c <= 0.0) {
      return Status::FailedPrecondition("zero-likelihood evidence at step " +
                                        std::to_string(t));
    }
    for (double& v : next) v /= c;
    result.loglik += std::log(c);
    ProjectToClusters(clusters, &next);
    belief = std::move(next);

    std::vector<double> marg(qstates, 0.0);
    for (size_t h = 0; h < S; ++h) {
      marg[chain_radix_.Digit(h, qpos)] += belief[h];
    }
    result.query_posterior.push_back(std::move(marg));
    result.beliefs.push_back(belief);
  }
  return result;
}

std::vector<double> DynamicBayesianNetwork::MarginalFromBelief(
    const std::vector<double>& belief, NodeId node) const {
  COBRA_CHECK(node >= 0 && node < slice_.num_nodes() && chain_pos_[node] >= 0)
      << "node is not a chain node";
  COBRA_CHECK(belief.size() == chain_radix_.size());
  const int pos = chain_pos_[node];
  std::vector<double> marg(slice_.num_states(node), 0.0);
  for (size_t h = 0; h < belief.size(); ++h) {
    marg[chain_radix_.Digit(h, pos)] += belief[h];
  }
  return marg;
}

Result<std::vector<std::vector<double>>> DynamicBayesianNetwork::Smooth(
    const std::vector<Evidence>& sequence, NodeId query) const {
  if (query < 0 || query >= slice_.num_nodes() || chain_pos_[query] < 0) {
    return Status::InvalidArgument("query must be a non-observable node");
  }
  std::vector<std::vector<double>> out;
  if (sequence.empty()) return out;
  const size_t T = sequence.size();
  const size_t S = chain_radix_.size();

  // Forward pass, storing kernels (training sequences are short; full-race
  // smoothing should chunk the sequence).
  std::vector<std::vector<double>> kernels(T);
  std::vector<std::vector<double>> alphas(T);
  std::vector<double> scales(T, 0.0);
  std::vector<double> alpha(S, 0.0);
  for (size_t t = 0; t < T; ++t) {
    StepKernel(t == 0, sequence[t], &kernels[t]);
    std::vector<double> next(S, 0.0);
    if (t == 0) {
      next = kernels[0];
    } else {
      for (size_t prev = 0; prev < S; ++prev) {
        if (alpha[prev] <= 0.0) continue;
        for (size_t cur = 0; cur < S; ++cur) {
          next[cur] += alpha[prev] * kernels[t][prev * S + cur];
        }
      }
    }
    double c = 0.0;
    for (double v : next) c += v;
    if (c <= 0.0) {
      return Status::FailedPrecondition("zero-likelihood evidence at step " +
                                        std::to_string(t));
    }
    for (double& v : next) v /= c;
    scales[t] = c;
    alphas[t] = next;
    alpha = std::move(next);
  }

  // Backward pass.
  std::vector<double> beta(S, 1.0);
  const int qpos = chain_pos_[query];
  const int qstates = slice_.num_states(query);
  out.assign(T, std::vector<double>(qstates, 0.0));
  for (size_t t = T; t-- > 0;) {
    std::vector<double> gamma(S, 0.0);
    for (size_t h = 0; h < S; ++h) gamma[h] = alphas[t][h] * beta[h];
    NormalizeInPlace(gamma);
    for (size_t h = 0; h < S; ++h) {
      out[t][chain_radix_.Digit(h, qpos)] += gamma[h];
    }
    if (t == 0) break;
    std::vector<double> beta_prev(S, 0.0);
    for (size_t prev = 0; prev < S; ++prev) {
      double acc = 0.0;
      for (size_t cur = 0; cur < S; ++cur) {
        acc += kernels[t][prev * S + cur] * beta[cur];
      }
      beta_prev[prev] = acc / scales[t];
    }
    beta = std::move(beta_prev);
  }
  return out;
}

Result<double> DynamicBayesianNetwork::LogLikelihood(
    const std::vector<Evidence>& sequence) const {
  if (chain_.empty()) return Status::FailedPrecondition("no chain nodes");
  COBRA_ASSIGN_OR_RETURN(FilterResult r, Filter(sequence, chain_[0]));
  return r.loglik;
}

Result<double> DynamicBayesianNetwork::AccumulateCounts(
    const std::vector<Evidence>& sequence, CountTables* counts) const {
  const size_t T = sequence.size();
  const size_t S = chain_radix_.size();
  const size_t E = enum_evidence_radix_.size();
  if (T == 0) return 0.0;

  // Forward pass with stored kernels.
  std::vector<std::vector<double>> kernels(T);
  std::vector<std::vector<double>> alphas(T);
  std::vector<double> scales(T, 0.0);
  double loglik = 0.0;
  {
    std::vector<double> alpha(S, 0.0);
    for (size_t t = 0; t < T; ++t) {
      StepKernel(t == 0, sequence[t], &kernels[t]);
      std::vector<double> next(S, 0.0);
      if (t == 0) {
        next = kernels[0];
      } else {
        for (size_t prev = 0; prev < S; ++prev) {
          if (alpha[prev] <= 0.0) continue;
          for (size_t cur = 0; cur < S; ++cur) {
            next[cur] += alpha[prev] * kernels[t][prev * S + cur];
          }
        }
      }
      double c = 0.0;
      for (double v : next) c += v;
      if (c <= 0.0) {
        return Status::FailedPrecondition("zero-likelihood sequence");
      }
      for (double& v : next) v /= c;
      scales[t] = c;
      loglik += std::log(c);
      alphas[t] = next;
      alpha = std::move(next);
    }
  }

  // Backward pass with per-step count accumulation over full tuples
  // (prev chain, cur chain, enumerated evidence).
  std::vector<double> beta(S, 1.0);
  std::vector<int> enum_states(chain_.size() + enum_evidence_.size());
  std::vector<int> prev_chain(chain_.size(), 0);
  std::vector<int> scratch;

  for (size_t t = T; t-- > 0;) {
    const auto lambdas = SliceLambdas(sequence[t]);
    const bool initial = (t == 0);
    const size_t prev_dim = initial ? 1 : S;

    // Total posterior-weight normalizer for this step.
    double tot = 0.0;
    for (size_t prev = 0; prev < prev_dim; ++prev) {
      const double ap = initial ? 1.0 : alphas[t - 1][prev];
      if (ap <= 0.0) continue;
      for (size_t cur = 0; cur < S; ++cur) {
        tot += ap * kernels[t][prev * S + cur] * beta[cur];
      }
    }
    if (tot <= 0.0) {
      return Status::FailedPrecondition("zero posterior weight in E-step");
    }

    for (size_t prev = 0; prev < prev_dim; ++prev) {
      const double ap = initial ? 1.0 : alphas[t - 1][prev];
      if (ap <= 0.0) continue;
      if (!initial) chain_radix_.Decode(prev, &prev_chain);
      for (size_t cur = 0; cur < S; ++cur) {
        if (beta[cur] <= 0.0) continue;
        for (size_t i = 0; i < chain_.size(); ++i) {
          enum_states[i] = chain_radix_.Digit(cur, i);
        }
        for (size_t ev = 0; ev < E; ++ev) {
          for (size_t j = 0; j < enum_evidence_.size(); ++j) {
            enum_states[chain_.size() + j] =
                enum_evidence_radix_.Digit(ev, j);
          }
          const double w = ConfigWeight(initial, prev_chain, enum_states,
                                        lambdas, &scratch) *
                           LeafFactor(enum_states, lambdas, &scratch);
          if (w <= 0.0) continue;
          const double wn = ap * w * beta[cur] / tot;

          // Chain family counts (prior at t=0, transition at t>0).
          for (size_t i = 0; i < chain_.size(); ++i) {
            const NodeId n = chain_[i];
            scratch.clear();
            for (NodeId p : slice_.parents(n)) {
              scratch.push_back(enum_states[enum_pos_[p]]);
            }
            if (initial) {
              const size_t row =
                  slice_.cpt(n).parent_index().Encode(scratch);
              Cpt::AddCount(counts->prior[n], slice_.num_states(n), row,
                            enum_states[i], wn);
            } else {
              for (NodeId p : temporal_parents_[n]) {
                scratch.push_back(prev_chain[chain_pos_[p]]);
              }
              const size_t row =
                  transition_cpts_[n].parent_index().Encode(scratch);
              Cpt::AddCount(counts->transition[n], slice_.num_states(n), row,
                            enum_states[i], wn);
            }
          }
          // Enumerated evidence families (tied CPT).
          for (size_t j = 0; j < enum_evidence_.size(); ++j) {
            const NodeId n = enum_evidence_[j];
            scratch.clear();
            for (NodeId p : slice_.parents(n)) {
              scratch.push_back(enum_states[enum_pos_[p]]);
            }
            const size_t row = slice_.cpt(n).parent_index().Encode(scratch);
            Cpt::AddCount(counts->prior[n], slice_.num_states(n), row,
                          enum_states[chain_.size() + j], wn);
          }
          // Absorbed leaves: expected state posterior under the family row.
          for (NodeId leaf : slice_.absorbed_leaves()) {
            scratch.clear();
            for (NodeId p : slice_.parents(leaf)) {
              scratch.push_back(enum_states[enum_pos_[p]]);
            }
            const Cpt& cpt = slice_.cpt(leaf);
            const size_t row = cpt.parent_index().Encode(scratch);
            double norm = 0.0;
            for (int v = 0; v < cpt.num_states(); ++v) {
              norm += cpt.P(row, v) * lambdas[leaf][v];
            }
            if (norm <= 0.0) continue;
            for (int v = 0; v < cpt.num_states(); ++v) {
              Cpt::AddCount(counts->prior[leaf], cpt.num_states(), row, v,
                            wn * cpt.P(row, v) * lambdas[leaf][v] / norm);
            }
          }
        }
      }
    }

    // Backward recursion.
    if (t == 0) break;
    std::vector<double> beta_prev(S, 0.0);
    for (size_t prev = 0; prev < S; ++prev) {
      double acc = 0.0;
      for (size_t cur = 0; cur < S; ++cur) {
        acc += kernels[t][prev * S + cur] * beta[cur];
      }
      beta_prev[prev] = acc / scales[t];
    }
    beta = std::move(beta_prev);
  }
  return loglik;
}

Result<double> DynamicBayesianNetwork::TrainEm(
    const std::vector<std::vector<Evidence>>& sequences,
    const EmOptions& options) {
  if (sequences.empty()) return Status::InvalidArgument("no sequences");
  double prev_loglik = -std::numeric_limits<double>::infinity();
  double loglik = prev_loglik;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    CountTables counts;
    counts.prior.resize(slice_.num_nodes());
    counts.transition.resize(slice_.num_nodes());
    for (NodeId n = 0; n < slice_.num_nodes(); ++n) {
      counts.prior[n].assign(slice_.cpt(n).probs().size(), 0.0);
      if (chain_pos_[n] >= 0) {
        counts.transition[n].assign(transition_cpts_[n].probs().size(), 0.0);
      }
    }
    loglik = 0.0;
    for (const auto& seq : sequences) {
      COBRA_ASSIGN_OR_RETURN(double seq_ll, AccumulateCounts(seq, &counts));
      loglik += seq_ll;
    }
    // M-step: tied evidence CPTs + chain priors from `prior` counts,
    // chain transitions from `transition` counts.
    for (NodeId n = 0; n < slice_.num_nodes(); ++n) {
      slice_.cpt(n).SetFromCounts(counts.prior[n], options.count_prior);
      if (chain_pos_[n] >= 0) {
        transition_cpts_[n].SetFromCounts(counts.transition[n],
                                          options.count_prior);
      }
    }
    if (iter > 0 &&
        std::abs(loglik - prev_loglik) <
            options.tolerance * (std::abs(prev_loglik) + 1.0)) {
      break;
    }
    prev_loglik = loglik;
  }
  return loglik;
}

}  // namespace cobra::bayes
