#ifndef COBRA_BAYES_NETWORK_H_
#define COBRA_BAYES_NETWORK_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "bayes/cpt.h"

namespace cobra::bayes {

using NodeId = int;

/// Evidence entered into a network for one inference call (one video clip).
/// Evidence is *soft* ("virtual"): per-node likelihood vectors, matching the
/// paper's probabilistic feature values in [0, 1] — feature value v on a
/// binary node enters as likelihood (1-v, v). Hard assignments (used when a
/// query node is supervised during training) fix a node to one state.
struct Evidence {
  std::map<NodeId, std::vector<double>> soft;
  std::map<NodeId, int> hard;

  /// Convenience for binary nodes: likelihood (1-v, v).
  void SetBinary(NodeId node, double v) { soft[node] = {1.0 - v, v}; }
};

/// A discrete Bayesian network: DAG of k-ary nodes with CPTs. Nodes flagged
/// `is_evidence` are the feature inputs; the rest (query and intermediate
/// nodes) are hidden. Inference is exact: enumeration over the hidden (and
/// any non-leaf evidence) nodes, with leaf evidence absorbed analytically —
/// the networks in this domain have at most a dozen such nodes, so exact
/// inference is cheap.
class BayesianNetwork {
 public:
  BayesianNetwork() = default;

  /// Adds a node; `is_evidence` marks feature-input nodes.
  NodeId AddNode(const std::string& name, int num_states, bool is_evidence);

  /// Adds a directed edge parent -> child. Must be called before Finalize.
  Status AddEdge(NodeId parent, NodeId child);

  /// Validates acyclicity, fixes the topological order and allocates
  /// (uniform) CPTs. Must be called before inference or training.
  Status Finalize();
  bool finalized() const { return finalized_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::string& name(NodeId n) const { return nodes_[n].name; }
  int num_states(NodeId n) const { return nodes_[n].num_states; }
  bool is_evidence(NodeId n) const { return nodes_[n].is_evidence; }
  const std::vector<NodeId>& parents(NodeId n) const {
    return nodes_[n].parents;
  }
  const std::vector<NodeId>& children(NodeId n) const {
    return nodes_[n].children;
  }
  /// NodeId by name; -1 when absent.
  NodeId FindNode(const std::string& name) const;

  Cpt& cpt(NodeId n) { return nodes_[n].cpt; }
  const Cpt& cpt(NodeId n) const { return nodes_[n].cpt; }

  /// Randomizes every CPT (EM initialization).
  void RandomizeCpts(Rng& rng, double noise = 1.0);

  /// Exact posterior P(query | evidence); `query` must not be an absorbed
  /// evidence leaf.
  Result<std::vector<double>> Posterior(NodeId query,
                                        const Evidence& evidence) const;

  /// Log-probability of the evidence.
  Result<double> LogLikelihood(const Evidence& evidence) const;

  struct EmOptions {
    int max_iterations = 40;
    double tolerance = 1e-5;   // relative log-likelihood improvement
    double count_prior = 1e-3; // Dirichlet smoothing of M-step counts
  };

  /// Expectation-Maximization (maximum-likelihood) parameter learning over
  /// i.i.d. samples; hidden intermediate nodes are handled by the E-step.
  /// Returns the final log-likelihood.
  Result<double> TrainEm(const std::vector<Evidence>& samples,
                         const EmOptions& options);

  /// The nodes enumerated by inference (non-evidence nodes plus evidence
  /// nodes with children), in topological order. Exposed for the DBN.
  const std::vector<NodeId>& enumerated_nodes() const { return enum_nodes_; }
  /// Evidence leaves absorbed analytically.
  const std::vector<NodeId>& absorbed_leaves() const { return absorbed_; }
  const std::vector<NodeId>& topological_order() const { return topo_; }

 private:
  friend class DynamicBayesianNetwork;

  struct Node {
    std::string name;
    int num_states = 2;
    bool is_evidence = false;
    std::vector<NodeId> parents;
    std::vector<NodeId> children;
    Cpt cpt;
  };

  /// Likelihood vector for a node under `evidence` (ones when unobserved).
  std::vector<double> Lambda(NodeId n, const Evidence& evidence) const;

  /// Enumerates all configurations of enum_nodes_, calling
  /// visit(config_states, weight) for each configuration with nonzero
  /// weight. Returns the total weight (the evidence likelihood).
  double EnumerateConfigs(
      const Evidence& evidence,
      const std::function<void(const std::vector<int>&, double)>& visit) const;

  std::vector<Node> nodes_;
  std::vector<NodeId> topo_;
  std::vector<NodeId> enum_nodes_;
  std::vector<NodeId> absorbed_;
  MixedRadix enum_radix_;
  bool finalized_ = false;
};

}  // namespace cobra::bayes

#endif  // COBRA_BAYES_NETWORK_H_
