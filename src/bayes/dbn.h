#ifndef COBRA_BAYES_DBN_H_
#define COBRA_BAYES_DBN_H_

#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "bayes/network.h"

namespace cobra::bayes {

/// A Dynamic Bayesian Network in two-slice (2-TBN) form: an intra-slice
/// structure shared by every time slice plus temporal arcs from slice t-1 to
/// slice t. Temporal arcs connect *non-observable* (chain) nodes, matching
/// the paper's designs (Figs. 8 and 11), and the first-order Markov property
/// holds by construction.
///
/// Parameters: evidence nodes use one CPT tied across time; every chain
/// node has a prior CPT (slice 0, intra-slice parents only) and a transition
/// CPT (intra-slice parents followed by temporal parents).
///
/// Inference maintains a belief state over the joint chain configuration
/// (exact filtering — the "one cluster" setting of the paper) or, with a
/// cluster partition, the Boyen–Koller approximation: after each exact
/// propagation step the belief is projected onto a product of per-cluster
/// marginals. Learning is EM (maximum likelihood) with exact
/// forward–backward smoothing over the joint chain, which is the "exact
/// inference and learning" configuration the paper reports as best.
class DynamicBayesianNetwork {
 public:
  struct TemporalArc {
    NodeId from;  // node in slice t-1
    NodeId to;    // node in slice t
  };

  /// Builds a DBN from a *finalized* slice network and temporal arcs (both
  /// ends must be non-evidence nodes).
  static Result<DynamicBayesianNetwork> Create(BayesianNetwork slice,
                                               std::vector<TemporalArc> arcs);

  const BayesianNetwork& slice() const { return slice_; }
  const std::vector<TemporalArc>& temporal_arcs() const { return arcs_; }

  /// Chain (non-observable) nodes in enumeration order.
  const std::vector<NodeId>& chain_nodes() const { return chain_; }
  /// Number of joint chain states (the belief-state dimension).
  size_t num_chain_states() const { return chain_radix_.size(); }

  /// Transition CPT of a chain node (parents: intra-slice, then temporal).
  Cpt& transition_cpt(NodeId n);
  const Cpt& transition_cpt(NodeId n) const;
  /// Temporal parents of a node (order matches the transition CPT's
  /// trailing parent digits).
  const std::vector<NodeId>& temporal_parents(NodeId n) const {
    return temporal_parents_[n];
  }
  /// Mutable slice access (EM initialization tweaks leaf CPTs).
  BayesianNetwork& mutable_slice() { return slice_; }
  /// Prior CPT (slice 0) of any node == the slice network's CPT.
  Cpt& prior_cpt(NodeId n) { return slice_.cpt(n); }
  const Cpt& prior_cpt(NodeId n) const { return slice_.cpt(n); }

  void RandomizeCpts(Rng& rng, double noise = 1.0);

  /// A Boyen–Koller cluster partition of the chain nodes. Empty = single
  /// cluster (exact filtering).
  using Clusters = std::vector<std::vector<NodeId>>;

  struct FilterResult {
    /// Per step: posterior of the query node given evidence so far.
    std::vector<std::vector<double>> query_posterior;
    /// Per step: full joint belief over chain states (after projection).
    std::vector<std::vector<double>> beliefs;
    double loglik = 0.0;
  };

  /// Runs (approximate) filtering over an evidence sequence.
  Result<FilterResult> Filter(const std::vector<Evidence>& sequence,
                              NodeId query,
                              const Clusters& clusters = {}) const;

  /// Marginal distribution of a chain node extracted from a joint belief
  /// vector (as stored in FilterResult::beliefs).
  std::vector<double> MarginalFromBelief(const std::vector<double>& belief,
                                         NodeId node) const;

  /// Exact smoothed per-step posteriors of `query` (forward-backward).
  Result<std::vector<std::vector<double>>> Smooth(
      const std::vector<Evidence>& sequence, NodeId query) const;

  /// Log-likelihood of an evidence sequence under the model.
  Result<double> LogLikelihood(const std::vector<Evidence>& sequence) const;

  struct EmOptions {
    int max_iterations = 30;
    double tolerance = 1e-5;
    double count_prior = 1e-3;
  };

  /// EM over multiple evidence sequences (the paper trains on 12 segments
  /// of 25 s each). Returns the final total log-likelihood.
  Result<double> TrainEm(const std::vector<std::vector<Evidence>>& sequences,
                         const EmOptions& options);

 private:
  DynamicBayesianNetwork() = default;

  /// Per-sequence sufficient statistics accumulated by the E-step.
  struct CountTables {
    std::vector<std::vector<double>> prior;       // per node
    std::vector<std::vector<double>> transition;  // per chain node
  };

  /// Weight of a full slice configuration at t=0 (prior CPTs) or t>0
  /// (transition CPTs, given previous chain states).
  double ConfigWeight(bool initial, const std::vector<int>& prev_chain,
                      const std::vector<int>& enum_states,
                      const std::vector<std::vector<double>>& lambdas,
                      std::vector<int>* scratch) const;

  /// Absorbed-leaf factor for a configuration.
  double LeafFactor(const std::vector<int>& enum_states,
                    const std::vector<std::vector<double>>& lambdas,
                    std::vector<int>* scratch) const;

  /// Computes the unnormalized step kernel into `kernel` (prev x cur) for
  /// t>0, or the initial vector (cur) for t=0 (prev dimension 1).
  void StepKernel(bool initial, const Evidence& evidence,
                  std::vector<double>* kernel) const;

  /// Projects a joint chain belief onto the product of cluster marginals.
  void ProjectToClusters(const Clusters& clusters,
                         std::vector<double>* belief) const;

  /// Accumulates expected counts for one sequence given forward/backward
  /// quantities. Returns the sequence log-likelihood.
  Result<double> AccumulateCounts(const std::vector<Evidence>& sequence,
                                  CountTables* counts) const;

  /// Cached per-call lambdas for one evidence slice.
  std::vector<std::vector<double>> SliceLambdas(const Evidence& e) const;

  BayesianNetwork slice_;
  std::vector<TemporalArc> arcs_;
  std::vector<NodeId> chain_;          // non-evidence nodes, topo order
  std::vector<int> chain_pos_;         // node -> position in chain_ or -1
  MixedRadix chain_radix_;
  std::vector<NodeId> enum_evidence_;  // evidence nodes with children
  MixedRadix enum_evidence_radix_;
  std::vector<int> enum_pos_;          // node -> position in full enum tuple
  std::vector<std::vector<NodeId>> temporal_parents_;  // per node
  std::vector<Cpt> transition_cpts_;   // per node (chain only used)
};

}  // namespace cobra::bayes

#endif  // COBRA_BAYES_DBN_H_
