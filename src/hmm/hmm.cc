#include "hmm/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.h"

namespace cobra::hmm {

Hmm::Hmm(int num_states, int num_symbols)
    : num_states_(num_states), num_symbols_(num_symbols) {
  COBRA_CHECK(num_states >= 1 && num_symbols >= 1);
  pi_.assign(num_states_, 1.0 / num_states_);
  a_.assign(static_cast<size_t>(num_states_) * num_states_,
            1.0 / num_states_);
  b_.assign(static_cast<size_t>(num_states_) * num_symbols_,
            1.0 / num_symbols_);
}

namespace {

Status CheckRow(const std::vector<double>& row, size_t n) {
  if (row.size() != n) return Status::InvalidArgument("bad row arity");
  double sum = 0.0;
  for (double v : row) {
    if (v < 0.0) return Status::InvalidArgument("negative probability");
    sum += v;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("row does not sum to 1");
  }
  return Status::OK();
}

}  // namespace

Status Hmm::SetInitial(const std::vector<double>& pi) {
  COBRA_RETURN_IF_ERROR(CheckRow(pi, static_cast<size_t>(num_states_)));
  pi_ = pi;
  return Status::OK();
}

Status Hmm::SetTransitionRow(int s, const std::vector<double>& row) {
  if (s < 0 || s >= num_states_) return Status::OutOfRange("bad state");
  COBRA_RETURN_IF_ERROR(CheckRow(row, static_cast<size_t>(num_states_)));
  std::copy(row.begin(), row.end(), a_.begin() + s * num_states_);
  return Status::OK();
}

Status Hmm::SetEmissionRow(int s, const std::vector<double>& row) {
  if (s < 0 || s >= num_states_) return Status::OutOfRange("bad state");
  COBRA_RETURN_IF_ERROR(CheckRow(row, static_cast<size_t>(num_symbols_)));
  std::copy(row.begin(), row.end(), b_.begin() + s * num_symbols_);
  return Status::OK();
}

void Hmm::Randomize(Rng& rng) {
  auto randomize = [&rng](std::vector<double>& table, int row_len) {
    for (size_t r = 0; r * row_len < table.size(); ++r) {
      double sum = 0.0;
      for (int i = 0; i < row_len; ++i) {
        const double v = 0.5 + rng.Uniform();
        table[r * row_len + i] = v;
        sum += v;
      }
      for (int i = 0; i < row_len; ++i) table[r * row_len + i] /= sum;
    }
  };
  randomize(pi_, num_states_);
  randomize(a_, num_states_);
  randomize(b_, num_symbols_);
}

Status Hmm::CheckObservations(const std::vector<int>& observations) const {
  for (int o : observations) {
    if (o < 0 || o >= num_symbols_) {
      return Status::InvalidArgument("observation symbol out of range");
    }
  }
  return Status::OK();
}

Result<double> Hmm::LogLikelihood(
    const std::vector<int>& observations) const {
  COBRA_RETURN_IF_ERROR(CheckObservations(observations));
  if (observations.empty()) return 0.0;
  std::vector<double> alpha(num_states_);
  double loglik = 0.0;
  for (int s = 0; s < num_states_; ++s) {
    alpha[s] = pi_[s] * emission(s, observations[0]);
  }
  for (size_t t = 0;; ++t) {
    double c = 0.0;
    for (double v : alpha) c += v;
    if (c <= 0.0) {
      return Status::FailedPrecondition("zero-probability observation");
    }
    for (double& v : alpha) v /= c;
    loglik += std::log(c);
    if (t + 1 >= observations.size()) break;
    std::vector<double> next(num_states_, 0.0);
    for (int s = 0; s < num_states_; ++s) {
      if (alpha[s] <= 0.0) continue;
      for (int u = 0; u < num_states_; ++u) {
        next[u] += alpha[s] * transition(s, u);
      }
    }
    for (int u = 0; u < num_states_; ++u) {
      next[u] *= emission(u, observations[t + 1]);
    }
    alpha = std::move(next);
  }
  return loglik;
}

Result<Hmm::ViterbiResult> Hmm::Viterbi(
    const std::vector<int>& observations) const {
  COBRA_RETURN_IF_ERROR(CheckObservations(observations));
  ViterbiResult result;
  if (observations.empty()) return result;
  const size_t T = observations.size();
  const double kNegInf = -std::numeric_limits<double>::infinity();
  auto safe_log = [](double v) {
    return v > 0.0 ? std::log(v) : -1e300;
  };
  std::vector<double> delta(num_states_);
  std::vector<std::vector<int>> psi(T, std::vector<int>(num_states_, 0));
  for (int s = 0; s < num_states_; ++s) {
    delta[s] = safe_log(pi_[s]) + safe_log(emission(s, observations[0]));
  }
  for (size_t t = 1; t < T; ++t) {
    std::vector<double> next(num_states_, kNegInf);
    for (int u = 0; u < num_states_; ++u) {
      double best = kNegInf;
      int arg = 0;
      for (int s = 0; s < num_states_; ++s) {
        const double v = delta[s] + safe_log(transition(s, u));
        if (v > best) {
          best = v;
          arg = s;
        }
      }
      next[u] = best + safe_log(emission(u, observations[t]));
      psi[t][u] = arg;
    }
    delta = std::move(next);
  }
  int best_state = 0;
  for (int s = 1; s < num_states_; ++s) {
    if (delta[s] > delta[best_state]) best_state = s;
  }
  result.log_prob = delta[best_state];
  result.path.assign(T, 0);
  result.path[T - 1] = best_state;
  for (size_t t = T - 1; t-- > 0;) {
    result.path[t] = psi[t + 1][result.path[t + 1]];
  }
  return result;
}

Result<double> Hmm::BaumWelch(const std::vector<std::vector<int>>& sequences,
                              const TrainOptions& options) {
  if (sequences.empty()) return Status::InvalidArgument("no sequences");
  for (const auto& seq : sequences) {
    COBRA_RETURN_IF_ERROR(CheckObservations(seq));
    if (seq.empty()) return Status::InvalidArgument("empty sequence");
  }

  double prev_loglik = -std::numeric_limits<double>::infinity();
  double loglik = prev_loglik;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::vector<double> pi_counts(num_states_, 0.0);
    std::vector<double> a_counts(a_.size(), 0.0);
    std::vector<double> b_counts(b_.size(), 0.0);
    loglik = 0.0;

    for (const auto& obs : sequences) {
      const size_t T = obs.size();
      // Scaled forward.
      std::vector<std::vector<double>> alpha(
          T, std::vector<double>(num_states_, 0.0));
      std::vector<double> scales(T, 0.0);
      for (int s = 0; s < num_states_; ++s) {
        alpha[0][s] = pi_[s] * emission(s, obs[0]);
      }
      for (size_t t = 0; t < T; ++t) {
        if (t > 0) {
          for (int u = 0; u < num_states_; ++u) {
            double acc = 0.0;
            for (int s = 0; s < num_states_; ++s) {
              acc += alpha[t - 1][s] * transition(s, u);
            }
            alpha[t][u] = acc * emission(u, obs[t]);
          }
        }
        double c = 0.0;
        for (double v : alpha[t]) c += v;
        if (c <= 0.0) {
          return Status::FailedPrecondition("zero-probability sequence");
        }
        for (double& v : alpha[t]) v /= c;
        scales[t] = c;
        loglik += std::log(c);
      }
      // Scaled backward.
      std::vector<std::vector<double>> beta(
          T, std::vector<double>(num_states_, 1.0));
      for (size_t t = T - 1; t-- > 0;) {
        for (int s = 0; s < num_states_; ++s) {
          double acc = 0.0;
          for (int u = 0; u < num_states_; ++u) {
            acc += transition(s, u) * emission(u, obs[t + 1]) *
                   beta[t + 1][u];
          }
          beta[t][s] = acc / scales[t + 1];
        }
      }
      // Counts.
      for (size_t t = 0; t < T; ++t) {
        double norm = 0.0;
        for (int s = 0; s < num_states_; ++s) {
          norm += alpha[t][s] * beta[t][s];
        }
        if (norm <= 0.0) continue;
        for (int s = 0; s < num_states_; ++s) {
          const double gamma = alpha[t][s] * beta[t][s] / norm;
          b_counts[s * num_symbols_ + obs[t]] += gamma;
          if (t == 0) pi_counts[s] += gamma;
        }
      }
      for (size_t t = 0; t + 1 < T; ++t) {
        double norm = 0.0;
        std::vector<double> xi(
            static_cast<size_t>(num_states_) * num_states_, 0.0);
        for (int s = 0; s < num_states_; ++s) {
          for (int u = 0; u < num_states_; ++u) {
            const double v = alpha[t][s] * transition(s, u) *
                             emission(u, obs[t + 1]) * beta[t + 1][u];
            xi[s * num_states_ + u] = v;
            norm += v;
          }
        }
        if (norm <= 0.0) continue;
        for (size_t i = 0; i < xi.size(); ++i) {
          a_counts[i] += xi[i] / norm;
        }
      }
    }

    // M-step with smoothing.
    auto renorm = [&options](std::vector<double>& probs,
                             const std::vector<double>& counts, int row_len) {
      for (size_t r = 0; r * row_len < probs.size(); ++r) {
        double sum = 0.0;
        for (int i = 0; i < row_len; ++i) {
          sum += counts[r * row_len + i] + options.count_prior;
        }
        for (int i = 0; i < row_len; ++i) {
          probs[r * row_len + i] =
              (counts[r * row_len + i] + options.count_prior) / sum;
        }
      }
    };
    renorm(pi_, pi_counts, num_states_);
    renorm(a_, a_counts, num_states_);
    renorm(b_, b_counts, num_symbols_);

    if (iter > 0 &&
        std::abs(loglik - prev_loglik) <
            options.tolerance * (std::abs(prev_loglik) + 1.0)) {
      break;
    }
    prev_loglik = loglik;
  }
  return loglik;
}

std::vector<int> QuantizeFeatures(
    const std::vector<std::vector<double>>& features) {
  if (features.empty() || features[0].empty()) return {};
  const size_t T = features[0].size();
  std::vector<double> medians(features.size());
  for (size_t f = 0; f < features.size(); ++f) {
    COBRA_CHECK(features[f].size() == T) << "feature series length mismatch";
    std::vector<double> sorted = features[f];
    const size_t mid = (sorted.size() - 1) / 2;  // lower median
    std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
    medians[f] = sorted[mid];
  }
  std::vector<int> out(T, 0);
  for (size_t t = 0; t < T; ++t) {
    int symbol = 0;
    for (size_t f = 0; f < features.size(); ++f) {
      if (features[f][t] > medians[f]) symbol |= (1 << f);
    }
    out[t] = symbol;
  }
  return out;
}

}  // namespace cobra::hmm
