#ifndef COBRA_HMM_HMM_H_
#define COBRA_HMM_HMM_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"

namespace cobra::hmm {

/// A discrete (multinomial-emission) Hidden Markov Model. The Cobra HMM
/// extension exposes the paper's two basic operations — training
/// (Baum–Welch) and evaluation (scaled forward log-likelihood) — plus
/// Viterbi decoding. Observation sequences are quantized feature symbols
/// (the MIL program in Fig. 4 quantizes four feature BATs into one
/// observation sequence before evaluating six models in parallel).
class Hmm {
 public:
  /// Uniformly initialized model.
  Hmm(int num_states, int num_symbols);

  int num_states() const { return num_states_; }
  int num_symbols() const { return num_symbols_; }

  double initial(int s) const { return pi_[s]; }
  double transition(int s, int t) const { return a_[s * num_states_ + t]; }
  double emission(int s, int o) const { return b_[s * num_symbols_ + o]; }

  Status SetInitial(const std::vector<double>& pi);
  Status SetTransitionRow(int s, const std::vector<double>& row);
  Status SetEmissionRow(int s, const std::vector<double>& row);

  /// Randomizes all distributions (training initialization).
  void Randomize(Rng& rng);

  /// Scaled forward algorithm: log P(observations | model).
  Result<double> LogLikelihood(const std::vector<int>& observations) const;

  /// Most probable state path and its log probability.
  struct ViterbiResult {
    std::vector<int> path;
    double log_prob = 0.0;
  };
  Result<ViterbiResult> Viterbi(const std::vector<int>& observations) const;

  struct TrainOptions {
    int max_iterations = 50;
    double tolerance = 1e-5;
    double count_prior = 1e-3;
  };

  /// Baum–Welch (EM) over multiple observation sequences. Returns the final
  /// total log-likelihood.
  Result<double> BaumWelch(const std::vector<std::vector<int>>& sequences,
                           const TrainOptions& options);

 private:
  Status CheckObservations(const std::vector<int>& observations) const;

  int num_states_;
  int num_symbols_;
  std::vector<double> pi_;
  std::vector<double> a_;
  std::vector<double> b_;
};

/// Quantizes parallel feature series into observation symbols by
/// thresholding each feature at its median and packing the bits — the
/// `quant` step of the paper's MIL program (Fig. 4) that merges four
/// feature BATs into one observation sequence.
std::vector<int> QuantizeFeatures(
    const std::vector<std::vector<double>>& features);

}  // namespace cobra::hmm

#endif  // COBRA_HMM_HMM_H_
