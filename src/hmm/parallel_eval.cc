#include "hmm/parallel_eval.h"

#include <functional>

#include "kernel/parallel.h"

namespace cobra::hmm {

void ParallelEvaluator::AddModel(const std::string& name, Hmm model) {
  models_.emplace_back(name, std::move(model));
}

Result<std::vector<std::pair<std::string, double>>>
ParallelEvaluator::EvaluateAll(const std::vector<int>& observations,
                               bool parallel) const {
  if (models_.empty()) return Status::FailedPrecondition("no models");
  std::vector<Result<double>> results(models_.size(), Result<double>(0.0));
  if (parallel) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(models_.size());
    for (size_t i = 0; i < models_.size(); ++i) {
      tasks.push_back([this, i, &observations, &results] {
        results[i] = models_[i].second.LogLikelihood(observations);
      });
    }
    kernel::ParallelExec(tasks);
  } else {
    for (size_t i = 0; i < models_.size(); ++i) {
      results[i] = models_[i].second.LogLikelihood(observations);
    }
  }
  std::vector<std::pair<std::string, double>> out;
  out.reserve(models_.size());
  for (size_t i = 0; i < models_.size(); ++i) {
    if (!results[i].ok()) return results[i].status();
    out.emplace_back(models_[i].first, results[i].value());
  }
  return out;
}

Result<std::string> ParallelEvaluator::Classify(
    const std::vector<int>& observations, bool parallel) const {
  COBRA_ASSIGN_OR_RETURN(auto scores, EvaluateAll(observations, parallel));
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i].second > scores[best].second) best = i;
  }
  return scores[best].first;
}

}  // namespace cobra::hmm
