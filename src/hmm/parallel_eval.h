#ifndef COBRA_HMM_PARALLEL_EVAL_H_
#define COBRA_HMM_PARALLEL_EVAL_H_

#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "hmm/hmm.h"

namespace cobra::hmm {

/// Parallel evaluation of a bank of named HMMs — the paper's Fig. 3/4: the
/// database server fans the observation sequence out to N HMM engines
/// through the kernel's parallel execution operator and picks the model
/// with the highest likelihood. Here the "HMM servers" are tasks on the
/// kernel thread pool, which preserves the architecture (the extension is
/// implemented *at the physical level* on top of the parallel operator)
/// without remote processes.
class ParallelEvaluator {
 public:
  ParallelEvaluator() = default;

  /// Registers a model under a name (e.g. the six stroke classes of the
  /// paper's tennis example: Service, Forehand, Smash, ...).
  void AddModel(const std::string& name, Hmm model);

  size_t num_models() const { return models_.size(); }
  const std::string& name(size_t i) const { return models_[i].first; }
  const Hmm& model(size_t i) const { return models_[i].second; }

  /// Evaluates every model on `observations`; returns (name, loglik) pairs
  /// in registration order. `parallel` switches between the kernel pool and
  /// a serial loop (the ablation the parallel-HMM bench measures).
  Result<std::vector<std::pair<std::string, double>>> EvaluateAll(
      const std::vector<int>& observations, bool parallel = true) const;

  /// Name of the best-scoring model (the MIL function's RETURN value).
  Result<std::string> Classify(const std::vector<int>& observations,
                               bool parallel = true) const;

 private:
  std::vector<std::pair<std::string, Hmm>> models_;
};

}  // namespace cobra::hmm

#endif  // COBRA_HMM_PARALLEL_EVAL_H_
