#ifndef COBRA_EXTENSIONS_EXTENSION_H_
#define COBRA_EXTENSIONS_EXTENSION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "cobra/video_model.h"

namespace cobra::extensions {

/// A semantic-extraction extension: the unit the query preprocessor invokes
/// when requested metadata is missing. The paper integrates four of these
/// (video-processing/feature-extraction, HMM, DBN, rule-based); each
/// advertises which event types it can materialize, plus a cost and quality
/// estimate the preprocessor's high-level optimizer uses to pick a method
/// when several could satisfy a query.
class SemanticExtension {
 public:
  virtual ~SemanticExtension() = default;

  virtual const std::string& name() const = 0;

  /// True if this extension can materialize events of `event_type`.
  virtual bool Provides(const std::string& event_type) const = 0;

  /// Relative execution cost (higher = slower).
  virtual double Cost(const std::string& event_type) const = 0;

  /// Expected extraction quality in [0, 1] (higher = better).
  virtual double Quality(const std::string& event_type) const = 0;

  /// Materializes events of `event_type` for `video` into the catalog.
  virtual Status Extract(model::VideoId video, const std::string& event_type,
                         model::VideoCatalog* catalog) = 0;
};

/// A function-backed extension, convenient for wiring domain pipelines
/// (e.g. the F1 DBN fusion) into the registry.
class CallbackExtension : public SemanticExtension {
 public:
  struct Provided {
    std::string event_type;
    double cost = 1.0;
    double quality = 0.5;
  };
  using ExtractFn = std::function<Status(
      model::VideoId, const std::string&, model::VideoCatalog*)>;

  CallbackExtension(std::string name, std::vector<Provided> provides,
                    ExtractFn extract)
      : name_(std::move(name)),
        provides_(std::move(provides)),
        extract_(std::move(extract)) {}

  const std::string& name() const override { return name_; }
  bool Provides(const std::string& event_type) const override;
  double Cost(const std::string& event_type) const override;
  double Quality(const std::string& event_type) const override;
  Status Extract(model::VideoId video, const std::string& event_type,
                 model::VideoCatalog* catalog) override;

 private:
  const Provided* Find(const std::string& event_type) const;

  std::string name_;
  std::vector<Provided> provides_;
  ExtractFn extract_;
};

/// Registry of installed extensions; owned by the query engine's host.
class ExtensionRegistry {
 public:
  ExtensionRegistry() = default;
  ExtensionRegistry(const ExtensionRegistry&) = delete;
  ExtensionRegistry& operator=(const ExtensionRegistry&) = delete;

  void Register(std::unique_ptr<SemanticExtension> extension);

  /// Extensions able to produce `event_type`, in registration order.
  std::vector<SemanticExtension*> Providers(
      const std::string& event_type) const;

  std::vector<std::string> Names() const;

 private:
  std::vector<std::unique_ptr<SemanticExtension>> extensions_;
};

}  // namespace cobra::extensions

#endif  // COBRA_EXTENSIONS_EXTENSION_H_
