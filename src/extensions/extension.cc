#include "extensions/extension.h"

namespace cobra::extensions {

const CallbackExtension::Provided* CallbackExtension::Find(
    const std::string& event_type) const {
  for (const auto& p : provides_) {
    if (p.event_type == event_type) return &p;
  }
  return nullptr;
}

bool CallbackExtension::Provides(const std::string& event_type) const {
  return Find(event_type) != nullptr;
}

double CallbackExtension::Cost(const std::string& event_type) const {
  const Provided* p = Find(event_type);
  return p != nullptr ? p->cost : 0.0;
}

double CallbackExtension::Quality(const std::string& event_type) const {
  const Provided* p = Find(event_type);
  return p != nullptr ? p->quality : 0.0;
}

Status CallbackExtension::Extract(model::VideoId video,
                                  const std::string& event_type,
                                  model::VideoCatalog* catalog) {
  if (!Provides(event_type)) {
    return Status::InvalidArgument(name_ + " does not provide " + event_type);
  }
  return extract_(video, event_type, catalog);
}

void ExtensionRegistry::Register(
    std::unique_ptr<SemanticExtension> extension) {
  extensions_.push_back(std::move(extension));
}

std::vector<SemanticExtension*> ExtensionRegistry::Providers(
    const std::string& event_type) const {
  std::vector<SemanticExtension*> out;
  for (const auto& e : extensions_) {
    if (e->Provides(event_type)) out.push_back(e.get());
  }
  return out;
}

std::vector<std::string> ExtensionRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(extensions_.size());
  for (const auto& e : extensions_) out.push_back(e->name());
  return out;
}

}  // namespace cobra::extensions
