#ifndef COBRA_VIDEO_SHOT_DETECTION_H_
#define COBRA_VIDEO_SHOT_DETECTION_H_

#include <deque>
#include <vector>

#include "image/frame.h"
#include "image/histogram.h"

namespace cobra::video {

/// Histogram-based shot boundary detector. Following the paper's
/// pre-processing step, the plain two-frame histogram difference is modified
/// to compare against *several consecutive frames*: a boundary fires only
/// when the new frame differs both from the previous frame and from the
/// recent-window average, which suppresses flashes and fast motion (the
/// modification that brought the paper's accuracy above 90%).
class ShotBoundaryDetector {
 public:
  struct Options {
    int histogram_bins = 32;
    /// Minimum distance to the immediately preceding frame.
    double pair_threshold = 0.55;
    /// Minimum mean distance to the look-back window.
    double window_threshold = 0.45;
    /// Number of recent frames in the look-back window.
    size_t window = 4;
    /// Refractory period: no two boundaries closer than this (frames).
    size_t min_shot_frames = 5;
  };

  explicit ShotBoundaryDetector(const Options& options) : options_(options) {}
  ShotBoundaryDetector() : ShotBoundaryDetector(Options()) {}

  /// Feeds the next frame; returns true when a shot boundary is detected at
  /// this frame.
  bool Push(const image::Frame& frame);

  /// Frames consumed so far.
  size_t frame_index() const { return frame_index_; }

  void Reset();

 private:
  Options options_;
  std::deque<image::ColorHistogram> history_;
  size_t frame_index_ = 0;
  size_t last_boundary_ = 0;
  bool has_boundary_ = false;
};

/// Offline convenience: indices of detected boundaries in `frames`.
std::vector<size_t> DetectShotBoundaries(
    const std::vector<image::Frame>& frames,
    const ShotBoundaryDetector::Options& options = {});

}  // namespace cobra::video

#endif  // COBRA_VIDEO_SHOT_DETECTION_H_
