#ifndef COBRA_VIDEO_REPLAY_H_
#define COBRA_VIDEO_REPLAY_H_

#include <cstddef>
#include <vector>

#include "image/frame.h"

namespace cobra::video {

/// Detects Digital Video Effects (DVEs) — the wipe transitions that bracket
/// replay scenes in the Formula 1 program — from the block-motion flow
/// between consecutive frames, and tracks replay state. The paper notes
/// replays are neither slowed down nor marked; they begin and end with DVEs
/// whose exact look varies, so a general motion-flow/pattern-matching
/// approach is used instead of learning each DVE.
class ReplayDetector {
 public:
  struct Options {
    int grid_columns = 16;
    /// A DVE frame shows one dominant high-motion column stripe: peak
    /// column motion above this...
    double stripe_threshold = 0.30;
    /// ...while the median column motion stays below this.
    double background_threshold = 0.12;
    /// Consecutive stripe frames required to call a DVE.
    size_t min_stripe_frames = 2;
    /// Replays longer than this (frames) are force-closed.
    size_t max_replay_frames = 1000;
    /// DVEs closer than this are considered the same transition.
    size_t merge_frames = 10;
  };

  explicit ReplayDetector(const Options& options) : options_(options) {}
  ReplayDetector() : ReplayDetector(Options()) {}

  /// Feeds the next frame; returns true while inside a replay segment.
  bool Push(const image::Frame& frame);

  /// True if the last Push saw an active DVE stripe.
  bool dve_active() const { return stripe_run_ >= options_.min_stripe_frames; }

  bool in_replay() const { return in_replay_; }
  void Reset();

 private:
  /// Stripe score of the column-motion profile: peak vs median.
  bool IsStripeFrame(const std::vector<double>& column_motion) const;

  Options options_;
  image::Frame prev_;
  bool has_prev_ = false;
  size_t stripe_run_ = 0;
  bool dve_latched_ = false;
  bool in_replay_ = false;
  size_t frames_in_replay_ = 0;
  size_t frames_since_dve_ = 0;
};

}  // namespace cobra::video

#endif  // COBRA_VIDEO_REPLAY_H_
