#ifndef COBRA_VIDEO_VISUAL_CUES_H_
#define COBRA_VIDEO_VISUAL_CUES_H_

#include <vector>

#include "image/analysis.h"
#include "image/frame.h"
#include "video/replay.h"
#include "video/shot_detection.h"

namespace cobra::video {

/// Per-clip visual evidence (the paper's features f12–f17). One video clip
/// spans 0.1 s; the analyzer samples a representative frame pair per clip.
struct VideoClipFeatures {
  double replay = 0.0;      // f12: inside a replay segment
  double color_diff = 0.0;  // f13: inter-frame pixel color difference
  double semaphore = 0.0;   // f14: start-light gantry presence
  double dust = 0.0;        // f15: dust cloud fraction cue
  double sand = 0.0;        // f16: gravel-trap sand fraction cue
  double motion = 0.0;      // f17: motion-histogram activity
  bool shot_boundary = false;
};

/// Stateful visual front end: feed one frame pair per 0.1 s clip and get the
/// f12–f17 cues. Shot and replay state carries across clips.
class VisualAnalyzer {
 public:
  struct Options {
    ShotBoundaryDetector::Options shot;
    ReplayDetector::Options replay;
    /// Sand: desaturated warm ochre (high R, mid G, low B).
    image::ColorRange sand_range{.r_min = 150, .r_max = 230,
                                 .g_min = 110, .g_max = 190,
                                 .b_min = 40, .b_max = 120};
    /// Dust: warm grey-brown haze. The blue ceiling sits below the green
    /// floor plus haze tint so that neutral greys (track, tarmac) never
    /// match.
    image::ColorRange dust_range{.r_min = 165, .r_max = 215,
                                 .g_min = 145, .g_max = 195,
                                 .b_min = 115, .b_max = 158};
    /// Fractions are mapped to [0,1] cues by dividing by these scales.
    double sand_full_scale = 0.15;
    double dust_full_scale = 0.20;
    int motion_grid_x = 8;
    int motion_grid_y = 6;
  };

  explicit VisualAnalyzer(const Options& options) : options_(options),
        shot_detector_(options.shot), replay_detector_(options.replay) {}
  VisualAnalyzer() : VisualAnalyzer(Options()) {}

  /// Analyzes the clip represented by two frames sampled ~40 ms apart.
  VideoClipFeatures AnalyzeClip(const image::Frame& first,
                                const image::Frame& second);

  void Reset();

 private:
  Options options_;
  ShotBoundaryDetector shot_detector_;
  ReplayDetector replay_detector_;
};

}  // namespace cobra::video

#endif  // COBRA_VIDEO_VISUAL_CUES_H_
