#include "video/shot_detection.h"

namespace cobra::video {

bool ShotBoundaryDetector::Push(const image::Frame& frame) {
  image::ColorHistogram h =
      image::ComputeHistogram(frame, options_.histogram_bins);
  bool boundary = false;
  if (!history_.empty()) {
    const double pair_dist = image::HistogramDistance(history_.back(), h);
    double window_dist = 0.0;
    for (const auto& prev : history_) {
      window_dist += image::HistogramDistance(prev, h);
    }
    window_dist /= static_cast<double>(history_.size());
    const bool far_enough =
        !has_boundary_ ||
        frame_index_ - last_boundary_ >= options_.min_shot_frames;
    if (pair_dist > options_.pair_threshold &&
        window_dist > options_.window_threshold && far_enough) {
      boundary = true;
      last_boundary_ = frame_index_;
      has_boundary_ = true;
      // A boundary invalidates the look-back window (new shot content).
      history_.clear();
    }
  }
  history_.push_back(std::move(h));
  while (history_.size() > options_.window) history_.pop_front();
  ++frame_index_;
  return boundary;
}

void ShotBoundaryDetector::Reset() {
  history_.clear();
  frame_index_ = 0;
  last_boundary_ = 0;
  has_boundary_ = false;
}

std::vector<size_t> DetectShotBoundaries(
    const std::vector<image::Frame>& frames,
    const ShotBoundaryDetector::Options& options) {
  ShotBoundaryDetector detector(options);
  std::vector<size_t> out;
  for (size_t i = 0; i < frames.size(); ++i) {
    if (detector.Push(frames[i])) out.push_back(i);
  }
  return out;
}

}  // namespace cobra::video
