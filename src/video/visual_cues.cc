#include "video/visual_cues.h"

#include <algorithm>
#include <cmath>

#include "base/mathutil.h"
#include "image/histogram.h"

namespace cobra::video {

VideoClipFeatures VisualAnalyzer::AnalyzeClip(const image::Frame& first,
                                              const image::Frame& second) {
  VideoClipFeatures f;

  // Shot and replay trackers see both sampled frames.
  const bool b1 = shot_detector_.Push(first);
  replay_detector_.Push(first);
  const bool b2 = shot_detector_.Push(second);
  const bool replay_now = replay_detector_.Push(second);
  f.shot_boundary = b1 || b2;
  f.replay = replay_now ? 1.0 : 0.0;

  // f13 / f17: inter-frame change. Color difference is the plain pixel
  // difference; motion aggregates the block-motion histogram (mean of the
  // top half of block activations, which responds to an object moving
  // through the scene rather than uniform flicker).
  f.color_diff = Clamp(image::PixelDifference(first, second) * 8.0, 0.0, 1.0);
  auto blocks = image::BlockMotion(first, second, options_.motion_grid_x,
                                   options_.motion_grid_y);
  std::sort(blocks.begin(), blocks.end());
  // Mean of the most active twelfth of the blocks: responds to an object
  // sweeping through the scene — and, inevitably, to global camera pan,
  // which is exactly the failure mode the paper reports for this cue.
  const size_t top_k = std::max<size_t>(1, blocks.size() / 24);
  double top = 0.0;
  for (size_t i = blocks.size() - top_k; i < blocks.size(); ++i) {
    top += blocks[i];
  }
  top /= static_cast<double>(top_k);
  f.motion = Clamp(top * 6.0, 0.0, 1.0);

  // f14: semaphore — a dense wide red rectangle in the upper half.
  const image::Frame upper = second.Crop(0, 0, second.width(),
                                         second.height() / 2);
  image::Box box;
  double density = 0.0;
  if (image::DetectRedRectangle(upper, &box, &density)) {
    f.semaphore = Clamp(density, 0.0, 1.0);
  }

  // f15 / f16: dust & sand color fractions.
  f.dust = Clamp(image::ColorFraction(second, options_.dust_range) /
                     options_.dust_full_scale,
                 0.0, 1.0);
  f.sand = Clamp(image::ColorFraction(second, options_.sand_range) /
                     options_.sand_full_scale,
                 0.0, 1.0);
  return f;
}

void VisualAnalyzer::Reset() {
  shot_detector_.Reset();
  replay_detector_.Reset();
}

}  // namespace cobra::video
