#include "video/replay.h"

#include <algorithm>

#include "image/histogram.h"

namespace cobra::video {

bool ReplayDetector::IsStripeFrame(
    const std::vector<double>& column_motion) const {
  if (column_motion.empty()) return false;
  std::vector<double> sorted = column_motion;
  std::sort(sorted.begin(), sorted.end());
  const double peak = sorted.back();
  const double median = sorted[sorted.size() / 2];
  return peak > options_.stripe_threshold &&
         median < options_.background_threshold;
}

bool ReplayDetector::Push(const image::Frame& frame) {
  bool dve_now = false;
  if (has_prev_ && frame.width() == prev_.width() &&
      frame.height() == prev_.height()) {
    const auto columns =
        image::BlockMotion(prev_, frame, options_.grid_columns, 1);
    if (IsStripeFrame(columns)) {
      ++stripe_run_;
    } else {
      stripe_run_ = 0;
    }
    dve_now = stripe_run_ >= options_.min_stripe_frames;
  }
  prev_ = frame;
  has_prev_ = true;

  ++frames_since_dve_;
  if (dve_now) {
    if (!dve_latched_ && frames_since_dve_ > options_.merge_frames) {
      dve_latched_ = true;
      if (!in_replay_) {
        in_replay_ = true;
        frames_in_replay_ = 0;
      } else {
        in_replay_ = false;
      }
    }
    frames_since_dve_ = 0;
  } else {
    dve_latched_ = false;
  }

  if (in_replay_) {
    ++frames_in_replay_;
    if (frames_in_replay_ > options_.max_replay_frames) in_replay_ = false;
  }
  return in_replay_;
}

void ReplayDetector::Reset() {
  has_prev_ = false;
  stripe_run_ = 0;
  dve_latched_ = false;
  in_replay_ = false;
  frames_in_replay_ = 0;
  frames_since_dve_ = 0;
}

}  // namespace cobra::video
