#ifndef COBRA_KERNEL_PARALLEL_H_
#define COBRA_KERNEL_PARALLEL_H_

#include <functional>
#include <vector>

#include "base/thread_pool.h"

namespace cobra::kernel {

/// The kernel's parallel execution operator (MIL `threadcnt` in the paper's
/// Fig. 4): runs `tasks` concurrently on the shared kernel pool and blocks
/// until all complete. Extensions (e.g. parallel HMM evaluation across six
/// model servers) funnel their concurrency through this single operator.
/// Waiting is scoped to the caller's own tasks (TaskGroup), so concurrent
/// ParallelExec calls on the shared pool never block on each other's work.
/// The pool/group lock discipline is capability-annotated in
/// base/thread_pool.h and checked by the `lint` preset.
void ParallelExec(const std::vector<std::function<void()>>& tasks);

/// The pool used by ParallelExec; sized to the hardware concurrency, created
/// on first use.
ThreadPool& KernelPool();

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_PARALLEL_H_
