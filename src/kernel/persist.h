#ifndef COBRA_KERNEL_PERSIST_H_
#define COBRA_KERNEL_PERSIST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/io.h"
#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "kernel/bat.h"
#include "kernel/catalog.h"

namespace cobra::kernel {

/// Catalog name of the sibling BAT holding `bat`'s streaming seal
/// boundaries ("<bat>.@seals", BAT[oid,oid]: seal ordinal -> end_row).
/// Written by WalOp::kSegmentSeal replay and by the live StreamBat; the '@'
/// keeps it out of the way of attribute names ("class.attr").
std::string SegmentSealBatName(const std::string& bat);

/// Crash-safe durability for a BAT catalog: page-checksummed snapshot files
/// plus a write-ahead log, glued by an LSN handshake.
///
/// On-disk layout inside the store directory:
///
///   snapshot-<gen>.cobra   full catalog image; <gen> is the last LSN the
///                          image covers (20-digit zero padded)
///   wal-<gen>.log          mutations after snapshot <gen>; records carry
///                          strictly increasing LSNs starting at <gen>+1
///
/// A snapshot is a sequence of pages `[u32 len][u32 crc32][payload]`
/// (payload <= 64 KiB) whose concatenated payloads form one logical stream:
/// magic, snapshot LSN, an opaque `extra` blob (the video-model state), and
/// per-BAT columns — typed tails, dictionary heap in code order for string
/// tails — closed by a trailer magic. It is written to a temp file, synced,
/// then atomically renamed, so a crash mid-checkpoint leaves the previous
/// snapshot authoritative.
///
/// WAL records are `[u32 len][u32 crc32][u64 lsn][u8 op][operands]`,
/// appended and fsync'd per logical mutation; the sync is the commit point.
/// Directory entries are part of that contract: a newly created WAL file
/// and every snapshot rename are published with a directory fsync
/// (io::Fs::SyncDir) before the change counts as committed. Recovery loads
/// the newest snapshot that parses (falling back to the previous
/// generation if the newest is corrupt), then replays WAL records in LSN
/// order, stopping at the first checksum/sequence break — a torn tail
/// rolls back to the last durable mutation, never to a hybrid. A torn tail
/// is repaired before the next append by rewriting the valid prefix to a
/// temp file and atomically renaming it over the log, so committed records
/// are never exposed to an in-place truncation.
///
/// Acceleration state (hash indexes, result caches) is deliberately never
/// serialized: it is rebuilt lazily on first probe after recovery.
///
/// Thread-safe: all methods lock the store; Checkpoint reads the catalog
/// through its own locked API while holding the store lock (no path takes
/// the two locks in the opposite order).
class PersistentStore {
 public:
  /// WAL operation tags (stable on-disk values).
  enum class WalOp : uint8_t {
    kCreate = 1,        // str name, u8 tail_type
    kAppend = 2,        // str name, u64 head, typed value
    kDrop = 3,          // str name
    kRename = 4,        // str from, str to
    kEventVersion = 5,  // u64 version (VideoCatalog invalidation counter)
    kPut = 6,           // str name, full BAT image (replaces binding)
    kModel = 7,         // opaque video-model mutation record (see LogModel)
    kNoop = 8,          // no operands; burns an LSN (checkpoint collision)
    kSegmentSeal = 9,   // str name, u64 end_row — streaming segment seal
  };

  PersistentStore(io::Fs* fs, std::string dir);
  ~PersistentStore();

  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  /// Scans the directory (creating it if absent) and positions the LSN
  /// cursor after the newest durable record. Must be called before any
  /// other method; idempotent.
  Status Open() COBRA_EXCLUDES(mu_);

  /// Writes a full snapshot of `catalog` (plus the opaque `extra` model
  /// payload) at the current LSN, rotates the WAL, and prunes generations
  /// older than the previous snapshot (two generations are always kept, so
  /// a corrupt newest snapshot still recovers).
  Status Checkpoint(const Catalog& catalog, std::string_view extra = "")
      COBRA_EXCLUDES(mu_);

  struct RecoveryInfo {
    uint64_t lsn = 0;            // state is exact as of this LSN
    uint64_t event_version = 0;  // newest kEventVersion record (0 if none)
    std::string extra;           // model payload from the loaded snapshot
    size_t bat_count = 0;        // BATs in the recovered catalog
    uint64_t wal_records_applied = 0;
    bool used_fallback_snapshot = false;  // newest snapshot was corrupt
    /// Replayed kModel records, in commit (LSN) order. The kernel treats
    /// them as opaque; the model layer re-executes each one
    /// (VideoCatalog::ApplyModelRecord) on top of the restored snapshot.
    std::vector<std::string> model_records;
  };

  /// Rebuilds `catalog` (any existing bindings are dropped) from the newest
  /// valid snapshot plus WAL replay. Read-only on disk except that corrupt
  /// newer snapshots are deleted once an older one recovers; a torn WAL
  /// tail is ignored here and repaired (copy-and-rename, never in place) by
  /// the next append.
  Result<RecoveryInfo> Recover(Catalog* catalog) COBRA_EXCLUDES(mu_);

  // -- WAL append API (one fsync'd record per call; the commit point) ------

  Status LogCreate(const std::string& name, TailType tail_type)
      COBRA_EXCLUDES(mu_);
  Status LogAppend(const std::string& name, Oid head, const Value& tail)
      COBRA_EXCLUDES(mu_);
  Status LogDrop(const std::string& name) COBRA_EXCLUDES(mu_);
  Status LogRename(const std::string& from, const std::string& to)
      COBRA_EXCLUDES(mu_);
  Status LogEventVersion(uint64_t version) COBRA_EXCLUDES(mu_);
  /// Logs a full-BAT replacement (used when a binding is rebuilt wholesale,
  /// e.g. Catalog::Put). Heavyweight; prefer LogAppend for row growth.
  Status LogPut(const std::string& name, const Bat& bat) COBRA_EXCLUDES(mu_);
  /// Logs an opaque model-layer mutation record. The store never parses
  /// it; recovery hands the records back in commit order
  /// (RecoveryInfo::model_records) for the model layer to re-execute.
  Status LogModel(std::string_view record) COBRA_EXCLUDES(mu_);
  /// Logs a streaming segment seal: rows [previous seal, end_row) of `name`
  /// became an immutable segment (see kernel/stream.h). Replay appends the
  /// boundary to the catalog's `<name>.@seals` BAT — created on first seal —
  /// so segmentation recovers through both the WAL and any later snapshot,
  /// and lands exactly-before or exactly-after a crash like every other op.
  Status LogSegmentSeal(const std::string& name, uint64_t end_row)
      COBRA_EXCLUDES(mu_);

  struct DiskStats {
    uint64_t checkpoint_lsn = 0;
    uint64_t last_lsn = 0;
    uint64_t on_disk_bytes = 0;
    uint64_t snapshot_files = 0;
    uint64_t wal_files = 0;
    uint64_t wal_records = 0;  // records logged through this store instance
  };

  DiskStats Stats() const COBRA_EXCLUDES(mu_);

  uint64_t last_lsn() const COBRA_EXCLUDES(mu_);
  const std::string& dir() const { return dir_; }

  /// True when `dir` holds at least one snapshot or WAL file.
  static bool Exists(const io::Fs& fs, const std::string& dir);

  /// Canonical text image of every BAT in `catalog` (sorted names, typed
  /// rows with floats as bit patterns, dictionary heap listing). Two
  /// catalogs with equal dumps are byte-identical for every kernel
  /// operation; the recovery tests compare these.
  static std::string DumpCatalog(const Catalog& catalog);

 private:
  Status OpenLocked() COBRA_REQUIRES(mu_);
  /// Appends one WAL record (next LSN, fsync'd) — the durable commit point.
  Status AppendRecordLocked(WalOp op, std::string_view operands)
      COBRA_REQUIRES(mu_);
  /// Opens the active WAL file. A torn tail is first repaired by rewriting
  /// the valid prefix to a temp file and atomically renaming it over the
  /// log (never an in-place truncation, which would destroy every
  /// committed record in the file if the rewrite itself crashed).
  Status EnsureWalLocked() COBRA_REQUIRES(mu_);

  io::Fs* const fs_;
  const std::string dir_;

  mutable Mutex mu_;
  bool opened_ COBRA_GUARDED_BY(mu_) = false;
  uint64_t next_lsn_ COBRA_GUARDED_BY(mu_) = 1;
  uint64_t checkpoint_lsn_ COBRA_GUARDED_BY(mu_) = 0;
  /// Generation of the WAL file new records append to. Equal to
  /// checkpoint_lsn_ except after a fallback recovery, where appends must
  /// continue in the newest WAL so LSNs stay sequential per file.
  uint64_t wal_gen_ COBRA_GUARDED_BY(mu_) = 0;
  uint64_t wal_records_ COBRA_GUARDED_BY(mu_) = 0;
  std::unique_ptr<io::WritableFile> wal_ COBRA_GUARDED_BY(mu_);
  /// Fail-stop latch: after a WAL write/fsync error the store refuses all
  /// further mutations (an fsync failure must never be retried — the kernel
  /// may have dropped the dirty pages). Cleared by Open()/Recover().
  Status broken_ COBRA_GUARDED_BY(mu_);
};

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_PERSIST_H_
