#ifndef COBRA_KERNEL_STREAM_H_
#define COBRA_KERNEL_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "kernel/bat.h"
#include "kernel/exec_context.h"

namespace cobra::kernel {

class Catalog;
class PersistentStore;

/// Streaming ingestion view over a catalog BAT: the row space is split into
/// sealed immutable segments plus one mutable tail, while the underlying
/// storage stays the plain `Bat` every kernel operator already understands.
/// Queries therefore need no streaming-aware operators — a StreamBat is a
/// bookkeeping layer, not a second storage engine.
///
/// What the layer adds on top of raw appends:
///
///   * Incremental acceleration: the backing BAT is switched into append
///     maintenance mode, so accreted hash indexes are extended in place per
///     appended row (AccelInfo::tail_extends) and the string dictionary
///     interns incrementally — no full invalidation/rebuild under a
///     continuous-mutation workload.
///   * Segment seals: every `segment_rows` appended rows the current tail is
///     sealed into an immutable segment. Numeric tails get a per-segment
///     zone map (min/max) that `ScanWindow` uses to skip whole segments;
///     results stay byte-identical to `Bat::SelectRange` over all rows.
///   * Durability: each appended row is WAL-logged through the attached
///     PersistentStore *before* it is applied (the fsync'd record is the
///     commit point, same contract as every other catalog mutation), and
///     each seal writes a WalOp::kSegmentSeal record whose replay rebuilds
///     the `<name>.@seals` catalog BAT — so `PERSIST`/`RECOVER` restore the
///     exact segmentation, and a crash lands exactly-before or
///     exactly-after any append or seal.
///
/// Not thread-safe: appends, Advance, and the stats-recording probes
/// (ScanWindow/CountEq) require exclusive access to the StreamBat, like
/// `Bat` mutation. Concurrent readers probe the backing BAT through
/// snapshots as usual.
class StreamBat {
 public:
  struct Options {
    /// Rows per sealed segment (the seal threshold). >= 1.
    uint64_t segment_rows = 256;
    /// Keep accreted hash indexes fresh incrementally on every append.
    bool maintain_indexes = true;
    /// TEST-ONLY defect seam: skip the per-append index extension but stamp
    /// the indexes fresh at every Advance anyway. Probes then silently miss
    /// every row appended after the last honest build — exactly the bug the
    /// streaming differential harness exists to catch.
    bool unsafe_skip_tail_reindex = false;
  };

  /// One contiguous row range [begin_row, end_row) of the backing BAT.
  struct Segment {
    uint64_t begin_row = 0;
    uint64_t end_row = 0;
    bool sealed = false;
    /// Zone map over the numeric tail values of the range (numeric tails
    /// only; `has_zone` is false for str/oid tails and for empty ranges).
    bool has_zone = false;
    double min_num = 0.0;
    double max_num = 0.0;
  };

  struct Stats {
    uint64_t appends = 0;        // rows appended through this StreamBat
    uint64_t seals = 0;          // segments sealed (this attachment)
    uint64_t scans = 0;          // ScanWindow calls
    uint64_t segments_pruned = 0;  // sealed segments skipped via zone map
    uint64_t segments_scanned = 0;
  };

  /// Attaches a streaming view to the BAT registered under `name`.
  /// `store` may be null (volatile stream: no WAL records). When the
  /// sibling `<name>.@seals` BAT exists — e.g. after `RECOVER` replayed
  /// kSegmentSeal records — the recorded seal boundaries are restored, so
  /// the segmentation survives restarts; otherwise all pre-existing rows
  /// start out in the mutable tail.
  static Result<StreamBat> Attach(Catalog* catalog, const std::string& name,
                                  const Options& opts,
                                  PersistentStore* store = nullptr);

  StreamBat(StreamBat&&) = default;
  StreamBat& operator=(StreamBat&&) = default;
  StreamBat(const StreamBat&) = delete;
  StreamBat& operator=(const StreamBat&) = delete;

  /// Appends one pair: WAL record first (when a store is attached), then
  /// the in-memory append with incremental index maintenance, then segment
  /// accounting (sealing when the tail crosses segment_rows). Records a
  /// `stream.append` span.
  Status Append(Oid head, const Value& tail, const ExecContext& ctx);
  Status Append(Oid head, const Value& tail) {
    return Append(head, tail, ExecContext::Serial());
  }

  /// Folds rows appended to the backing BAT *behind this view's back*
  /// (e.g. by the video-model event path, which logs its own WAL records)
  /// into the segmentation: extends the tail over the new rows and seals
  /// any full segments. Call after every out-of-band batch.
  Status Advance(const ExecContext& ctx);
  Status Advance() { return Advance(ExecContext::Serial()); }

  /// Rows with numeric tail value in [lo, hi], byte-identical to
  /// `Bat::SelectRange(lo, hi)` over the whole backing BAT, but sealed
  /// segments whose zone map excludes [lo, hi] are skipped without reading
  /// a row. Records a `stream.scan` span (morsels = segments scanned).
  Result<Bat> ScanWindow(double lo, double hi, const ExecContext& ctx) const;

  /// Exact-match cardinality via `Bat::CountEq` (probe-only: serves a fresh
  /// index, never builds one). Records a `stream.count` span.
  Result<uint64_t> CountEq(const Value& v, const ExecContext& ctx) const;

  /// Sealed segments followed by the mutable tail (tail present even when
  /// empty). Row ranges partition [0, backing size at last Append/Advance).
  std::vector<Segment> Segments() const;

  const Bat& backing() const { return *bat_; }
  const std::string& name() const { return name_; }
  uint64_t sealed_rows() const { return sealed_rows_; }
  /// Rows folded into the segmentation so far (sealed + tail).
  uint64_t visible_rows() const { return visible_rows_; }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return opts_; }

 private:
  StreamBat(Catalog* catalog, Bat* bat, std::string name, Options opts,
            PersistentStore* store);

  /// Seals [sealed_rows_, end_row): WAL record first, then the mirror
  /// append to the `<name>.@seals` catalog BAT (created on first seal,
  /// exactly as WAL replay would), then the in-memory segment entry.
  Status Seal(uint64_t end_row);
  /// Extends segmentation to cover rows [visible_rows_, backing size).
  Status Fold(const ExecContext& ctx);
  static void ExtendZone(const Bat& bat, uint64_t begin, uint64_t end,
                         Segment* seg);

  Catalog* catalog_;
  Bat* bat_;
  std::string name_;
  Options opts_;
  PersistentStore* store_;
  std::vector<Segment> sealed_;
  /// Zone accumulator for the mutable tail (covers [sealed_rows_,
  /// visible_rows_)).
  Segment tail_;
  uint64_t sealed_rows_ = 0;
  uint64_t visible_rows_ = 0;
  /// Probe counters recorded by const ScanWindow/CountEq (exclusive-access
  /// contract above).
  mutable Stats stats_;
};

}  // namespace cobra::kernel

#endif  // COBRA_KERNEL_STREAM_H_
