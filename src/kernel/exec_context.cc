#include "kernel/exec_context.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "base/thread_pool.h"
#include "kernel/parallel.h"

namespace cobra::kernel {

ExecContext ExecContext::Hardware() {
  ExecContext ctx;
  ctx.threadcnt =
      static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  return ctx;
}

void ForEachMorsel(const ExecContext& ctx, size_t rows,
                   const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t num = ctx.NumMorsels(rows);
  const size_t per = ctx.MorselRows();
  auto run = [&](size_t morsel) {
    const size_t lo = morsel * per;
    fn(morsel, lo, std::min(rows, lo + per));
  };
  if (num <= 1 || !ctx.UseParallel(rows)) {
    for (size_t m = 0; m < num; ++m) run(m);
    return;
  }
  std::atomic<size_t> next{0};
  const size_t workers =
      std::min(static_cast<size_t>(ctx.threadcnt), num);
  TaskGroup group(&KernelPool());
  for (size_t w = 0; w < workers; ++w) {
    group.Run([&next, num, &run] {
      for (size_t m = next.fetch_add(1); m < num; m = next.fetch_add(1)) {
        run(m);
      }
    });
  }
  group.Wait();
}

void ParallelForEach(const ExecContext& ctx, size_t count,
                     const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (ctx.threadcnt <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  const size_t workers =
      std::min(static_cast<size_t>(ctx.threadcnt), count);
  TaskGroup group(&KernelPool());
  for (size_t w = 0; w < workers; ++w) {
    group.Run([&next, count, &fn] {
      for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  group.Wait();
}

}  // namespace cobra::kernel
