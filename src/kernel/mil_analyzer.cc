// Static verification of MIL scripts (AnalyzeMilScript / the abstract
// interpreter AnalyzeMilScriptWithFacts, declared in mil.h).
//
// The analyzer is a mirror of the interpreter in mil.cc over an abstract
// value domain: instead of BATs/doubles/strings it propagates a lattice of
// static facts — type, cardinality interval, numeric value hull,
// NaN-possibility, dictionary contents, sortedness — through the same LL(1)
// grammar, driven by the same MilLexer, in the same evaluation order.
// Because MIL is straight-line — no control flow — the abstract walk visits
// exactly the states the interpreter would, which gives the key properties:
//
//  * soundness of rejection: every error reported here is an error the
//    interpreter would also have raised (same message, same StatusCode),
//    except that the analyzer raises it before ANY operator has run;
//  * zero false rejections: whenever a type or value is not statically
//    known, every check involving it passes;
//  * soundness of facts: every PlanFact interval [rows_lo, rows_hi]
//    contains the row count the call site produces at execution time, every
//    provably_empty call site produces zero rows, and every single_shard
//    proof names the only shard slice whose zone map can match.
//
// The lattice is seeded from REAL catalog state: bat('x') resolved against
// the live catalog records the exact row count, scans a zone map (min/max
// over non-NaN tails, in the same double domain the runtime compares in —
// int tails are cast per row exactly like Bat::SelectRange), copies the
// string dictionary, checks sortedness, and notes index presence. The one
// assumption making this sound is single-writer catalog access during a
// script: a bat('x') resolved at analysis time is assumed to still resolve
// to the same value moments later at execution time. Within the script,
// mutations (persist/load/insert/assignment) are tracked by the abstract
// walk itself, so facts always describe the state at their program point.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/diag.h"
#include "base/strings.h"
#include "kernel/mil.h"
#include "kernel/mil_lexer.h"
#include "kernel/persist.h"
#include "kernel/shard.h"

namespace cobra::kernel {
namespace {

constexpr int kMaxExprDepth = 200;  // keep in sync with mil.cc

/// Cardinality arithmetic saturating at kCardUnbounded ("no upper bound").
uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a == kCardUnbounded || b == kCardUnbounded) return kCardUnbounded;
  const uint64_t s = a + b;
  return s < a ? kCardUnbounded : s;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kCardUnbounded || b == kCardUnbounded) return kCardUnbounded;
  if (a > kCardUnbounded / b) return kCardUnbounded;
  return a * b;
}

/// Static approximation of a MilValue: the abstract-interpretation lattice.
struct SType {
  enum class Kind { kNumber, kString, kBat, kAny };
  Kind kind = Kind::kAny;

  // kBat: tail type when provable.
  bool tail_known = false;
  TailType tail = TailType::kInt;

  /// kBat: static cardinality interval — every execution of the expression
  /// produces a row count n with rows_lo <= n <= rows_hi. rows_hi of
  /// kCardUnbounded means no static upper bound; lo == hi is the exact case.
  uint64_t rows_lo = 0;
  uint64_t rows_hi = kCardUnbounded;

  /// kBat numeric tails: the value hull. When hull_known, every non-NaN
  /// tail value v satisfies hull_min <= v <= hull_max, compared in the
  /// double domain the runtime compares in (int tails cast per row);
  /// hull_empty strengthens that to "there are no non-NaN values at all".
  /// maybe_nan records whether a NaN tail value may be present (a range
  /// select never matches NaN, so its output clears it).
  bool hull_known = false;
  bool hull_empty = false;
  double hull_min = 0.0;
  double hull_max = 0.0;
  bool maybe_nan = true;

  /// kBat str tails: a superset of the distinct tail strings (the BAT's
  /// dictionary). Null when unknown. A probe absent from a known dictionary
  /// proves the equality select empty.
  std::shared_ptr<const std::set<std::string>> dict;

  /// kBat: tails provably sorted ascending (non-strict, no NaN). Currently
  /// advisory — it survives order-preserving operators and is seeded from
  /// the catalog scan; a binary-search select rewrite could consume it.
  bool sorted = false;

  /// kBat: the BAT had a built tail hash index at analysis time (catalog
  /// fact, surfaced in PlanFact::index_present).
  bool tail_index = false;

  /// Direct catalog/session seed: the analyzed Bat this expression is a
  /// byte-identical copy of. Set only by bat('x') resolving in the REAL
  /// catalog (not the persist overlay) and by session-variable seeding;
  /// cleared by every deriving operator. Valid for the analysis pass only —
  /// analysis never mutates the catalog. Enables per-shard zone-map proofs.
  const Bat* concrete = nullptr;

  /// Catalog name this BAT is a snapshot of (set by bat('x')); used for the
  /// stale-snapshot hazard when persist('x', ...) later replaces the BAT.
  std::string snapshot_of;

  // kNumber / kString: literal value when statically known.
  bool value_known = false;
  double number = 0.0;
  std::string str;

  /// kNumber: numeric interval [num_lo, num_hi] when the exact value is not
  /// known (aggregate results; INFINITY bounds are legal). Sound the same
  /// way the row interval is.
  bool num_bounds_known = false;
  double num_lo = 0.0;
  double num_hi = 0.0;

  static SType Any() { return SType{}; }
  static SType Num() {
    SType t;
    t.kind = Kind::kNumber;
    return t;
  }
  static SType NumVal(double v) {
    SType t = Num();
    t.value_known = true;
    t.number = v;
    return t;
  }
  static SType Str() {
    SType t;
    t.kind = Kind::kString;
    return t;
  }
  static SType StrVal(std::string s) {
    SType t = Str();
    t.value_known = true;
    t.str = std::move(s);
    return t;
  }
  static SType BatAny() {
    SType t;
    t.kind = Kind::kBat;
    return t;
  }
  static SType BatOf(TailType tail) {
    SType t = BatAny();
    t.tail_known = true;
    t.tail = tail;
    // NaN can only live in a float tail.
    t.maybe_nan = tail == TailType::kFloat;
    return t;
  }

  bool IsNumericTail() const {
    return tail == TailType::kInt || tail == TailType::kFloat;
  }
  bool RowsExact() const { return rows_lo == rows_hi; }
  bool ProvablyEmpty() const { return rows_hi == 0; }
  void SetExactRows(uint64_t n) {
    rows_lo = n;
    rows_hi = n;
  }
};

/// Widens t's hull to admit the value v (NaN folds into maybe_nan).
void ExtendHull(SType* t, double v) {
  if (std::isnan(v)) {
    t->maybe_nan = true;
    return;
  }
  if (!t->hull_known) return;
  if (t->hull_empty) {
    t->hull_min = v;
    t->hull_max = v;
    t->hull_empty = false;
    return;
  }
  t->hull_min = std::min(t->hull_min, v);
  t->hull_max = std::max(t->hull_max, v);
}

/// Zone-map test for one shard slice: false only when the slice PROVABLY
/// produces no row for select(lo, hi) — exactly the pruning rule
/// ShardedSelectRange applies (`!has_non_nan || max < lo || min > hi`),
/// computed in the runtime's double domain.
bool SliceMayMatch(const Bat& bat, const ShardRange& r, double lo, double hi) {
  bool has = false;
  double mn = 0.0, mx = 0.0;
  auto fold = [&](double v) {
    if (std::isnan(v)) return;
    if (!has) {
      mn = v;
      mx = v;
      has = true;
      return;
    }
    if (v < mn) mn = v;
    if (v > mx) mx = v;
  };
  if (bat.tail_type() == TailType::kInt) {
    const auto& ints = bat.int_tails();
    for (size_t i = r.begin; i < r.end && i < ints.size(); ++i) {
      fold(static_cast<double>(ints[i]));
    }
  } else if (bat.tail_type() == TailType::kFloat) {
    const auto& floats = bat.float_tails();
    for (size_t i = r.begin; i < r.end && i < floats.size(); ++i) {
      fold(floats[i]);
    }
  } else {
    return true;  // non-numeric tails carry no zone map: never prunable
  }
  return has && !(mx < lo || mn > hi);
}

class MilAnalyzer {
 public:
  MilAnalyzer(const std::string& script, const MilAnalysisContext& ctx)
      : lexer_(script),
        ctx_(ctx),
        trace_ready_(ctx.trace_ready),
        shards_(ctx.shards) {
    SeedSessionVariables();
  }

  DiagnosticList Run() {
    for (;;) {
      MilToken tok;
      if (!Next(&tok)) break;
      if (tok.kind == MilToken::Kind::kEnd) break;
      if (tok.kind == MilToken::Kind::kSemi) continue;

      if (tok.kind == MilToken::Kind::kWord && tok.text == "VAR") {
        MilToken name;
        if (!Next(&name)) break;
        if (name.kind != MilToken::Kind::kWord) {
          Error(name, "expected variable name after VAR");
          break;
        }
        MilToken assign;
        if (!Next(&assign)) break;
        if (assign.kind != MilToken::Kind::kAssign) {
          Error(assign, "expected ':=' after VAR " + name.text);
          break;
        }
        std::optional<SType> value = ParseExpr(0);
        if (!value) break;
        vars_.insert_or_assign(name.text, *value);
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord && tok.text == "PRINT") {
        if (!ParseExpr(0)) break;
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord && tok.text == "trace") {
        if (!AnalyzeTrace()) break;
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord && tok.text == "check") {
        // Strict-mode analysis of the quoted script happens at runtime; its
        // findings are output, not errors, so they do not invalidate the
        // enclosing script. Only the statement's own shape is checked here.
        MilToken arg;
        if (!Next(&arg)) break;
        if (arg.kind != MilToken::Kind::kString) {
          Error(arg, "check expects a quoted MIL script");
          break;
        }
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord &&
          (tok.text == "save" || tok.text == "load")) {
        if (!CheckNotSharded(tok)) break;
        if (!AnalyzeSaveLoad(tok)) break;
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord && tok.text == "checkpoint") {
        if (!CheckNotSharded(tok)) break;
        if (!ctx_.data_dir_attached) {
          Error(tok,
                "checkpoint requires an attached data directory; construct "
                "the session with one or set COBRA_DATA_DIR",
                StatusCode::kFailedPrecondition);
          break;
        }
        continue;
      }
      if (tok.kind == MilToken::Kind::kWord) {
        MilToken after;
        if (!Next(&after)) break;
        if (after.kind == MilToken::Kind::kAssign) {
          if (vars_.count(tok.text) == 0) {
            Error(tok, "assignment to undeclared variable " + tok.text,
                  StatusCode::kNotFound);
            break;
          }
          std::optional<SType> value = ParseExpr(0);
          if (!value) break;
          vars_.insert_or_assign(tok.text, *value);
          continue;
        }
        PushBack(std::move(after));
      }
      PushBack(std::move(tok));
      if (!ParseExpr(0)) break;
    }
    return std::move(diags_);
  }

  std::vector<PlanFact> TakeFacts() { return std::move(facts_); }

 private:
  // -- Token plumbing (mirrors mil.cc's pushback stack) --------------------

  bool Next(MilToken* tok) {
    if (!pushed_.empty()) {
      *tok = std::move(pushed_.back());
      pushed_.pop_back();
      cur_line_ = tok->line;
      cur_col_ = tok->col;
      return true;
    }
    Result<MilToken> next = lexer_.Next();
    if (!next.ok()) {
      diags_.Error(lexer_.token_line(), lexer_.token_col(),
                   next.status().message(), next.status().code());
      return false;
    }
    *tok = std::move(next).value();
    cur_line_ = tok->line;
    cur_col_ = tok->col;
    return true;
  }

  void PushBack(MilToken tok) { pushed_.push_back(std::move(tok)); }

  void Error(const MilToken& at, std::string message,
             StatusCode code = StatusCode::kInvalidArgument) {
    diags_.Error(at.line, at.col, std::move(message), code);
  }

  void Warn(const MilToken& at, std::string message) {
    diags_.Warning(at.line, at.col, std::move(message));
  }

  // -- Environment ---------------------------------------------------------

  /// Seeds the lattice from a real Bat the execution will start from (a
  /// catalog resolution or a session variable): exact row count, zone-map
  /// hull over non-NaN tails, NaN presence, dictionary contents, sortedness
  /// and index state — one O(rows) scan, the same per-row double casts the
  /// runtime's SelectRange applies.
  void SeedFromBat(SType* t, const Bat& bat) {
    t->SetExactRows(bat.size());
    t->concrete = &bat;
    t->tail_index = bat.accel_info().tail_index_built;
    switch (bat.tail_type()) {
      case TailType::kInt: {
        t->maybe_nan = false;
        t->hull_known = true;
        t->hull_empty = true;
        t->sorted = true;
        double prev = 0.0;
        for (const int64_t raw : bat.int_tails()) {
          const double v = static_cast<double>(raw);
          if (t->hull_empty) {
            t->hull_min = v;
            t->hull_max = v;
            t->hull_empty = false;
          } else {
            if (v < prev) t->sorted = false;
            t->hull_min = std::min(t->hull_min, v);
            t->hull_max = std::max(t->hull_max, v);
          }
          prev = v;
        }
        break;
      }
      case TailType::kFloat: {
        t->maybe_nan = false;
        t->hull_known = true;
        t->hull_empty = true;
        t->sorted = true;
        bool first = true;
        double prev = 0.0;
        for (const double v : bat.float_tails()) {
          if (std::isnan(v)) {
            t->maybe_nan = true;
            t->sorted = false;
            continue;
          }
          if (!first && v < prev) t->sorted = false;
          if (t->hull_empty) {
            t->hull_min = v;
            t->hull_max = v;
            t->hull_empty = false;
          } else {
            t->hull_min = std::min(t->hull_min, v);
            t->hull_max = std::max(t->hull_max, v);
          }
          prev = v;
          first = false;
        }
        break;
      }
      case TailType::kStr: {
        t->maybe_nan = false;
        auto dict = std::make_shared<std::set<std::string>>();
        for (size_t c = 0; c < bat.DictSize(); ++c) {
          dict->insert(bat.DictAt(static_cast<uint32_t>(c)));
        }
        t->dict = std::move(dict);
        break;
      }
      case TailType::kOid:
        t->maybe_nan = false;
        break;
    }
  }

  void SeedSessionVariables() {
    if (ctx_.variables == nullptr) return;
    for (const auto& [name, value] : *ctx_.variables) {
      if (const double* d = std::get_if<double>(&value)) {
        vars_[name] = SType::NumVal(*d);
      } else if (const std::string* s = std::get_if<std::string>(&value)) {
        vars_[name] = SType::StrVal(*s);
      } else {
        const Bat& bat = std::get<Bat>(value);
        SType t = SType::BatOf(bat.tail_type());
        SeedFromBat(&t, bat);
        vars_[name] = t;
      }
    }
  }

  /// Resolves a catalog BAT name through the in-script persist() overlay,
  /// then the real catalog. Returns false after recording a NotFound
  /// diagnostic; on success *tail is the tail type when known and
  /// *concrete, when non-null, is the live catalog Bat (set ONLY for a real
  /// catalog hit — the abstract overlay has no bytes to seed from).
  bool LookupCatalog(const std::string& name, const MilToken& at,
                     std::optional<TailType>* tail,
                     const Bat** concrete = nullptr) {
    if (concrete != nullptr) *concrete = nullptr;
    auto overlay = overlay_.find(name);
    if (overlay != overlay_.end()) {
      *tail = overlay->second;
      return true;
    }
    // After a `load` the catalog the script will see is the recovered one,
    // not the one we can inspect — every lookup becomes fully conservative
    // (unknown tail, misses allowed), preserving zero false rejections.
    if (catalog_unknown_) {
      tail->reset();
      return true;
    }
    if (ctx_.catalog == nullptr) {
      tail->reset();
      return true;
    }
    Result<const Bat*> bat = ctx_.catalog->Get(name);
    if (!bat.ok()) {
      // A persist() whose target name was not statically known could have
      // created this binding by execution time — stay conservative then.
      if (overlay_wildcard_) {
        tail->reset();
        return true;
      }
      Error(at, bat.status().message(), bat.status().code());
      return false;
    }
    *tail = (*bat)->tail_type();
    if (concrete != nullptr) *concrete = *bat;
    return true;
  }

  /// Records one abstract-interpretation fact for the call site at
  /// `name_tok`, applying the unsound-narrowing test seam when armed (the
  /// seam narrows ONLY the upper bound — provable-empty and shard proofs
  /// stay genuine, so outputs stay byte-identical and only the containment
  /// walk of the differential harness can catch the defect).
  void EmitFact(const MilToken& name_tok, const std::string& op,
                const SType& out, bool provably_empty, int single_shard = -1,
                size_t single_of = 0, size_t shard_begin = 0,
                size_t shard_end = 0, bool index_present = false) {
    PlanFact f;
    f.line = name_tok.line;
    f.col = name_tok.col;
    f.op = op;
    f.rows_lo = out.rows_lo;
    f.rows_hi = out.rows_hi;
    f.provably_empty = provably_empty;
    f.single_shard = single_shard;
    f.single_shard_of = single_of;
    f.shard_begin = shard_begin;
    f.shard_end = shard_end;
    f.index_present = index_present;
    if (ctx_.unsafe_narrow_intervals && f.rows_hi > 0) {
      f.rows_hi = f.rows_hi == kCardUnbounded ? 1 : f.rows_hi / 2;
      f.rows_lo = std::min(f.rows_lo, f.rows_hi);
    }
    facts_.push_back(std::move(f));
  }

  // -- Statements ----------------------------------------------------------

  /// Storage statements are FailedPrecondition while the statically-known
  /// shard count exceeds 1 (mirroring the interpreter; see the shards(n)
  /// grammar notes in mil.h). A count set from a non-literal is unknown and
  /// passes conservatively — the zero-false-rejection contract.
  bool CheckNotSharded(const MilToken& stmt) {
    if (!shards_known_ || shards_ <= 1) return true;
    Error(stmt,
          StrFormat("%s illegal while the session is sharded (shards(%d) in "
                    "effect); storage is per-shard — reset with shards(1)",
                    stmt.text.c_str(), shards_),
          StatusCode::kFailedPrecondition);
    return false;
  }

  bool AnalyzeTrace() {
    MilToken mode;
    if (!Next(&mode)) return false;
    if (mode.kind != MilToken::Kind::kWord) {
      Error(mode, "trace expects on|off|dump|json");
      return false;
    }
    if (mode.text == "on") {
      trace_ready_ = true;
    } else if (mode.text == "off") {
      // The sink is kept, so a later dump/json stays legal.
    } else if (mode.text == "dump" || mode.text == "json") {
      if (!trace_ready_) {
        Error(mode, "trace has not been enabled; run 'trace on' first",
              StatusCode::kFailedPrecondition);
        return false;
      }
    } else {
      Error(mode, "trace expects on|off|dump|json, got '" + mode.text + "'");
      return false;
    }
    return true;
  }

  /// `save '<dir>'` / `load '<dir>'`. Mirrors the interpreter: load of a
  /// directory with no store is a NotFound (unless this script saved into
  /// it first, or no filesystem was provided to check against). After a
  /// load the inspectable catalog is stale, so lookups go conservative and
  /// pre-load BAT snapshots become stale-read hazards.
  bool AnalyzeSaveLoad(const MilToken& stmt) {
    MilToken arg;
    if (!Next(&arg)) return false;
    if (arg.kind != MilToken::Kind::kString) {
      Error(arg, stmt.text + " expects a quoted directory path");
      return false;
    }
    if (stmt.text == "save") {
      saved_dirs_.insert(arg.text);
      return true;
    }
    if (ctx_.fs != nullptr && saved_dirs_.count(arg.text) == 0 &&
        !PersistentStore::Exists(*ctx_.fs, arg.text)) {
      Error(arg, "no persistent store at " + arg.text, StatusCode::kNotFound);
      return false;
    }
    catalog_unknown_ = true;
    overlay_wildcard_ = true;
    reloaded_ = true;
    return true;
  }

  // -- Expressions ---------------------------------------------------------

  std::optional<SType> ParseExpr(int depth) {
    if (depth > kMaxExprDepth) {
      diags_.Error(cur_line_, cur_col_, "MIL expression nested too deeply");
      return std::nullopt;
    }
    MilToken tok;
    if (!Next(&tok)) return std::nullopt;
    if (tok.kind == MilToken::Kind::kNumber) return SType::NumVal(tok.number);
    if (tok.kind == MilToken::Kind::kString) return SType::StrVal(tok.text);
    if (tok.kind != MilToken::Kind::kWord) {
      Error(tok, "expected expression, got '" + tok.text + "'");
      return std::nullopt;
    }
    const MilToken name_tok = tok;
    const std::string name = tok.text;
    MilToken after;
    if (!Next(&after)) return std::nullopt;
    if (after.kind != MilToken::Kind::kLParen) {
      PushBack(std::move(after));
      auto it = vars_.find(name);
      if (it == vars_.end()) {
        Error(name_tok, "unknown MIL variable " + name, StatusCode::kNotFound);
        return std::nullopt;
      }
      const SType& value = it->second;
      if (!value.snapshot_of.empty() &&
          (persisted_.count(value.snapshot_of) != 0 || reloaded_)) {
        const std::string message =
            persisted_.count(value.snapshot_of) != 0
                ? "variable '" + name + "' reads a snapshot of BAT '" +
                      value.snapshot_of + "' taken before persist('" +
                      value.snapshot_of + "', ...) replaced it"
                : "variable '" + name + "' reads a snapshot of BAT '" +
                      value.snapshot_of +
                      "' taken before load replaced the catalog";
        if (ctx_.strict) {
          Error(name_tok, message, StatusCode::kFailedPrecondition);
          return std::nullopt;
        }
        diags_.Warning(name_tok.line, name_tok.col, message);
      }
      return value;
    }
    // Function call: parse comma-separated arguments.
    std::vector<SType> args;
    std::vector<MilToken> arg_toks;
    MilToken peek;
    if (!Next(&peek)) return std::nullopt;
    if (peek.kind != MilToken::Kind::kRParen) {
      PushBack(std::move(peek));
      for (;;) {
        MilToken first;
        if (!Next(&first)) return std::nullopt;
        arg_toks.push_back(first);
        PushBack(std::move(first));
        std::optional<SType> arg = ParseExpr(depth + 1);
        if (!arg) return std::nullopt;
        args.push_back(*arg);
        MilToken sep;
        if (!Next(&sep)) return std::nullopt;
        if (sep.kind == MilToken::Kind::kRParen) break;
        if (sep.kind != MilToken::Kind::kComma) {
          Error(sep, "expected ',' or ')' in call to " + name);
          return std::nullopt;
        }
      }
    }
    return CheckCall(name_tok, name, args, arg_toks);
  }

  std::optional<SType> CheckCall(const MilToken& name_tok,
                                 const std::string& name,
                                 const std::vector<SType>& args,
                                 const std::vector<MilToken>& arg_toks) {
    auto arity = [&](size_t n) -> bool {
      if (args.size() != n) {
        Error(name_tok, StrFormat("%s expects %zu arguments, got %zu",
                                  name.c_str(), n, args.size()));
        return false;
      }
      return true;
    };
    // Definitely-wrong checks only: kAny always passes.
    auto require_bat = [&](size_t i, const std::string& context) -> bool {
      if (args[i].kind == SType::Kind::kNumber ||
          args[i].kind == SType::Kind::kString) {
        Error(arg_toks[i], "expected a BAT for " + context);
        return false;
      }
      return true;
    };
    auto require_number = [&](size_t i, const std::string& context) -> bool {
      if (args[i].kind == SType::Kind::kString ||
          args[i].kind == SType::Kind::kBat) {
        Error(arg_toks[i], "expected a number for " + context);
        return false;
      }
      return true;
    };
    auto definitely_not_string = [&](size_t i) -> bool {
      return args[i].kind == SType::Kind::kNumber ||
             args[i].kind == SType::Kind::kBat;
    };

    if (name == "bat") {
      if (!arity(1)) return std::nullopt;
      if (definitely_not_string(0)) {
        Error(arg_toks[0], "bat() expects a name string");
        return std::nullopt;
      }
      SType out = SType::BatAny();
      if (args[0].value_known) {
        std::optional<TailType> tail;
        const Bat* concrete = nullptr;
        if (!LookupCatalog(args[0].str, arg_toks[0], &tail, &concrete)) {
          return std::nullopt;
        }
        if (tail) {
          out.tail_known = true;
          out.tail = *tail;
          out.maybe_nan = *tail == TailType::kFloat;
        }
        if (concrete != nullptr) SeedFromBat(&out, *concrete);
        out.snapshot_of = args[0].str;
      }
      return out;
    }
    if (name == "persist") {
      if (!arity(2)) return std::nullopt;
      if (definitely_not_string(0)) {
        Error(arg_toks[0], "persist() expects a name string");
        return std::nullopt;
      }
      if (!require_bat(1, "persist")) return std::nullopt;
      if (args[0].value_known) {
        overlay_[args[0].str] =
            args[1].tail_known ? std::optional<TailType>(args[1].tail)
                               : std::nullopt;
        persisted_.insert(args[0].str);
      } else {
        overlay_wildcard_ = true;
      }
      SType out = args[1];
      out.kind = SType::Kind::kBat;
      out.concrete = nullptr;
      return out;
    }
    if (name == "new") {
      if (!arity(1)) return std::nullopt;
      if (definitely_not_string(0)) {
        Error(arg_toks[0], "new() expects a type string");
        return std::nullopt;
      }
      SType out = SType::BatAny();
      if (args[0].value_known) {
        const std::string& type = args[0].str;
        if (type == "int") {
          out = SType::BatOf(TailType::kInt);
        } else if (type == "dbl") {
          out = SType::BatOf(TailType::kFloat);
        } else if (type == "str") {
          out = SType::BatOf(TailType::kStr);
        } else if (type == "oid") {
          out = SType::BatOf(TailType::kOid);
        } else {
          Error(arg_toks[0], "unknown BAT type " + type);
          return std::nullopt;
        }
        if (type == "str") {
          out.dict = std::make_shared<std::set<std::string>>();
        }
      }
      out.SetExactRows(0);
      out.hull_known = true;
      out.hull_empty = true;
      out.maybe_nan = false;
      out.sorted = true;
      return out;
    }
    if (name == "insert") {
      if (!arity(3)) return std::nullopt;
      if (!require_bat(0, "insert")) return std::nullopt;
      if (!require_number(1, "insert head")) return std::nullopt;
      if (args[0].tail_known) {
        if (args[0].tail == TailType::kStr) {
          if (args[2].kind == SType::Kind::kNumber ||
              args[2].kind == SType::Kind::kBat) {
            Error(arg_toks[2], "insert tail must be a string");
            return std::nullopt;
          }
        } else if (args[2].kind == SType::Kind::kString ||
                   args[2].kind == SType::Kind::kBat) {
          Error(arg_toks[2], "expected a number for insert tail");
          return std::nullopt;
        }
      }
      SType out = args[0];
      out.kind = SType::Kind::kBat;
      out.concrete = nullptr;
      out.rows_lo = SatAdd(out.rows_lo, 1);
      out.rows_hi = SatAdd(out.rows_hi, 1);
      out.sorted = false;
      // Fold the appended tail value into the hull / dictionary.
      if (!args[0].tail_known) {
        out.hull_known = false;
        out.maybe_nan = true;
        out.dict = nullptr;
      } else if (args[0].tail == TailType::kStr) {
        if (args[2].value_known && args[2].kind == SType::Kind::kString &&
            out.dict != nullptr) {
          auto dict = std::make_shared<std::set<std::string>>(*out.dict);
          dict->insert(args[2].str);
          out.dict = std::move(dict);
        } else {
          out.dict = nullptr;
        }
      } else if (args[0].tail == TailType::kFloat) {
        if (args[2].value_known && args[2].kind == SType::Kind::kNumber) {
          ExtendHull(&out, args[2].number);
        } else {
          out.hull_known = false;
          out.maybe_nan = true;
        }
      } else if (args[0].tail == TailType::kInt) {
        const double v = args[2].number;
        // Only integral literals small enough for the double<->int64 round
        // trip to be exact extend the hull; anything else drops it.
        if (args[2].value_known && args[2].kind == SType::Kind::kNumber &&
            std::isfinite(v) && v == std::floor(v) && std::abs(v) <= 9.0e15) {
          ExtendHull(&out, v);
        } else {
          out.hull_known = false;
        }
      }
      return out;
    }
    if (name == "select") {
      if (args.size() == 2) {
        if (!require_bat(0, "select")) return std::nullopt;
        if (definitely_not_string(1)) {
          Error(arg_toks[1], "two-argument select expects a string");
          return std::nullopt;
        }
        if (args[0].tail_known && args[0].tail != TailType::kStr) {
          Error(arg_toks[0], "SelectStr requires a str tail");
          return std::nullopt;
        }
        const SType& in = args[0];
        // On the success path the input tail was str, so the output is too.
        SType out = SType::BatOf(TailType::kStr);
        out.snapshot_of = in.snapshot_of;
        out.rows_lo = 0;
        out.rows_hi = in.rows_hi;
        out.sorted = in.sorted;
        bool empty = in.ProvablyEmpty();
        if (empty) {
          Warn(name_tok, "select over a provably empty BAT is statically "
                         "empty");
        } else if (args[1].value_known && in.dict != nullptr &&
                   in.dict->count(args[1].str) == 0) {
          empty = true;
          Warn(name_tok,
               StrFormat("statically dead predicate: select \"%s\" misses "
                         "the input dictionary (%zu entries)",
                         args[1].str.c_str(), in.dict->size()));
        }
        if (args[1].value_known) {
          auto dict = std::make_shared<std::set<std::string>>();
          dict->insert(args[1].str);
          out.dict = std::move(dict);
        } else {
          out.dict = in.dict;
        }
        if (empty) out.rows_hi = 0;
        EmitFact(name_tok, "select", out, empty, -1, 0, 0, 0, in.tail_index);
        return out;
      }
      if (!arity(3)) return std::nullopt;
      if (!require_bat(0, "select")) return std::nullopt;
      if (!require_number(1, "select lo")) return std::nullopt;
      if (!require_number(2, "select hi")) return std::nullopt;
      if (args[0].tail_known && !args[0].IsNumericTail()) {
        Error(arg_toks[0], "SelectRange requires a numeric tail");
        return std::nullopt;
      }
      const SType& in = args[0];
      SType out = in;
      out.kind = SType::Kind::kBat;
      out.concrete = nullptr;
      out.tail_index = false;
      out.dict = nullptr;
      out.rows_lo = 0;          // rows_hi inherited: output is a subset
      out.maybe_nan = false;    // NaN rows never match a range
      const bool bounds_known = args[1].value_known && args[2].value_known;
      const double lo = args[1].number;
      const double hi = args[2].number;
      // Output hull: every surviving value lies in the predicate range
      // intersected with the input hull.
      if (bounds_known) {
        out.hull_known = true;
        out.hull_empty = false;
        out.hull_min = lo;
        out.hull_max = hi;
        if (in.hull_known && !in.hull_empty) {
          out.hull_min = std::max(lo, in.hull_min);
          out.hull_max = std::min(hi, in.hull_max);
        }
        if ((in.hull_known && in.hull_empty) || std::isnan(lo) ||
            std::isnan(hi) || out.hull_min > out.hull_max) {
          out.hull_empty = true;
        }
      }
      bool empty = in.ProvablyEmpty();
      if (empty) {
        Warn(name_tok, "select over a provably empty BAT is statically "
                       "empty");
      } else if (bounds_known) {
        if (std::isnan(lo) || std::isnan(hi) || lo > hi) {
          empty = true;
          Warn(name_tok,
               StrFormat("statically dead predicate: select range [%g, %g] "
                         "never matches",
                         lo, hi));
        } else if (in.hull_known) {
          if (in.hull_empty) {
            empty = true;
            Warn(name_tok,
                 "statically dead predicate: the input has no non-NaN "
                 "values for the range to match");
          } else if (lo > in.hull_max || hi < in.hull_min) {
            empty = true;
            Warn(name_tok,
                 StrFormat("statically dead predicate: select range "
                           "[%g, %g] misses the input value hull [%g, %g]",
                           lo, hi, in.hull_min, in.hull_max));
          }
        }
      }
      // Per-shard zone maps over the concrete input: prove which slices of
      // the runtime partition can produce rows at all.
      int single_shard = -1;
      size_t single_of = 0, shard_begin = 0, shard_end = 0;
      if (!empty && bounds_known && in.concrete != nullptr &&
          in.IsNumericTail() && shards_known_ && shards_ > 1) {
        const Bat& bat = *in.concrete;
        const std::vector<ShardRange> ranges = ShardRanges(
            bat.size(), static_cast<size_t>(shards_), ctx_.morsel_rows);
        int candidates = 0;
        int last = -1;
        for (size_t k = 0; k < ranges.size(); ++k) {
          if (SliceMayMatch(bat, ranges[k], lo, hi)) {
            ++candidates;
            last = static_cast<int>(k);
          }
        }
        if (candidates == 0) {
          empty = true;
          Warn(name_tok,
               "statically dead predicate: every shard's zone map misses "
               "the select range");
        } else if (candidates == 1) {
          single_shard = last;
          single_of = ranges.size();
          shard_begin = ranges[static_cast<size_t>(last)].begin;
          shard_end = ranges[static_cast<size_t>(last)].end;
        }
      }
      if (empty) {
        out.rows_hi = 0;
        out.hull_known = true;
        out.hull_empty = true;
      }
      EmitFact(name_tok, "select", out, empty, single_shard, single_of,
               shard_begin, shard_end, in.tail_index);
      return out;
    }
    if (name == "threadcnt" || name == "shards") {
      const bool is_shards = name == "shards";
      const double limit = is_shards ? 64.0 : 1024.0;
      if (!arity(1)) return std::nullopt;
      if (!require_number(0, name)) return std::nullopt;
      if (args[0].value_known) {
        const double n = args[0].number;
        if (n < 1.0 || n != std::floor(n) || n > limit) {
          Error(arg_toks[0],
                StrFormat("%s expects an integer in [1, %g], got %g",
                          name.c_str(), limit, n));
          return std::nullopt;
        }
        if (is_shards) {
          shards_known_ = true;
          shards_ = static_cast<int>(n);
        }
        return SType::NumVal(n);
      }
      // Abstract-value consumer: a scalar whose static interval lies
      // entirely outside the legal range fails at runtime for every
      // possible value, so reject it now (still zero false rejections).
      if (args[0].num_bounds_known &&
          (args[0].num_hi < 1.0 || args[0].num_lo > limit)) {
        Error(arg_toks[0],
              StrFormat("%s expects an integer in [1, %g]; the argument is "
                        "statically in [%g, %g]",
                        name.c_str(), limit, args[0].num_lo,
                        args[0].num_hi));
        return std::nullopt;
      }
      if (is_shards) shards_known_ = false;
      return SType::Num();
    }
    if (name == "join" || name == "semijoin" || name == "diff") {
      if (!arity(2)) return std::nullopt;
      if (!require_bat(0, name)) return std::nullopt;
      if (!require_bat(1, name)) return std::nullopt;
      const SType& a = args[0];
      const SType& b = args[1];
      if (name == "join") {
        if (a.tail_known && a.tail != TailType::kOid) {
          Error(arg_toks[0], "Join needs an oid tail on the left BAT");
          return std::nullopt;
        }
        // Output tail values all come from b; each of a's rows matches at
        // most every b row, hence the product upper bound.
        SType out = b;
        out.kind = SType::Kind::kBat;
        out.concrete = nullptr;
        out.tail_index = false;
        out.snapshot_of.clear();
        out.sorted = false;
        out.rows_lo = 0;
        out.rows_hi = SatMul(a.rows_hi, b.rows_hi);
        const bool empty = a.ProvablyEmpty() || b.ProvablyEmpty();
        if (empty) out.rows_hi = 0;
        EmitFact(name_tok, "join", out, empty);
        return out;
      }
      // Semijoin/diff are order-preserving filters of a: tail facts, hull,
      // dictionary and sortedness survive; the row count can only shrink.
      SType out = a;
      out.kind = SType::Kind::kBat;
      out.concrete = nullptr;
      out.tail_index = false;
      out.rows_lo = 0;
      bool empty = a.ProvablyEmpty();
      if (name == "semijoin") {
        empty = empty || b.ProvablyEmpty();
      } else if (b.ProvablyEmpty()) {
        out.rows_lo = a.rows_lo;  // diff against nothing passes a through
      }
      if (empty) out.rows_hi = 0;
      EmitFact(name_tok, name, out, empty);
      return out;
    }
    if (name == "concat") {
      if (!arity(2)) return std::nullopt;
      if (!require_bat(0, "concat")) return std::nullopt;
      if (!require_bat(1, "concat")) return std::nullopt;
      const SType& a = args[0];
      const SType& b = args[1];
      if (a.tail_known && b.tail_known && a.tail != b.tail) {
        Error(name_tok, "concat requires matching tail types");
        return std::nullopt;
      }
      SType out;
      if (a.tail_known) {
        out = SType::BatOf(a.tail);
      } else if (b.tail_known) {
        out = SType::BatOf(b.tail);
      } else {
        out = SType::BatAny();
      }
      out.rows_lo = SatAdd(a.rows_lo, b.rows_lo);
      out.rows_hi = SatAdd(a.rows_hi, b.rows_hi);
      out.maybe_nan = a.maybe_nan || b.maybe_nan;
      if (a.hull_known && b.hull_known) {
        out.hull_known = true;
        if (a.hull_empty && b.hull_empty) {
          out.hull_empty = true;
        } else if (a.hull_empty) {
          out.hull_min = b.hull_min;
          out.hull_max = b.hull_max;
        } else if (b.hull_empty) {
          out.hull_min = a.hull_min;
          out.hull_max = a.hull_max;
        } else {
          out.hull_min = std::min(a.hull_min, b.hull_min);
          out.hull_max = std::max(a.hull_max, b.hull_max);
        }
      }
      if (a.dict != nullptr && b.dict != nullptr) {
        auto dict = std::make_shared<std::set<std::string>>(*a.dict);
        dict->insert(b.dict->begin(), b.dict->end());
        out.dict = std::move(dict);
      }
      out.snapshot_of = a.snapshot_of;
      EmitFact(name_tok, "concat", out, out.rows_hi == 0);
      return out;
    }
    if (name == "info") {
      if (!arity(1)) return std::nullopt;
      if (args[0].kind == SType::Kind::kString) {
        if (args[0].value_known) {
          std::optional<TailType> tail;
          if (!LookupCatalog(args[0].str, arg_toks[0], &tail)) {
            return std::nullopt;
          }
        }
      } else if (args[0].kind == SType::Kind::kNumber) {
        Error(arg_toks[0], "expected a BAT for info");
        return std::nullopt;
      }
      return SType::Str();
    }
    if (name == "reverse" || name == "mirror") {
      if (!arity(1)) return std::nullopt;
      if (!require_bat(0, name)) return std::nullopt;
      if (name == "reverse" && args[0].tail_known &&
          args[0].tail != TailType::kOid) {
        Error(arg_toks[0], "Reverse requires an oid tail");
        return std::nullopt;
      }
      SType out = SType::BatOf(TailType::kOid);
      out.rows_lo = args[0].rows_lo;
      out.rows_hi = args[0].rows_hi;
      out.snapshot_of = args[0].snapshot_of;
      return out;
    }
    if (name == "group") {
      if (!arity(1)) return std::nullopt;
      if (!require_bat(0, "group")) return std::nullopt;
      // One dense group id per input row: the row count carries over
      // exactly, whatever the tail type.
      SType out = SType::BatOf(TailType::kOid);
      out.rows_lo = args[0].rows_lo;
      out.rows_hi = args[0].rows_hi;
      out.snapshot_of = args[0].snapshot_of;
      EmitFact(name_tok, "group", out, args[0].ProvablyEmpty());
      return out;
    }
    if (name == "slice") {
      if (!arity(3)) return std::nullopt;
      if (!require_bat(0, "slice")) return std::nullopt;
      if (!require_number(1, "slice begin")) return std::nullopt;
      if (!require_number(2, "slice end")) return std::nullopt;
      SType out = args[0];
      out.kind = SType::Kind::kBat;
      out.concrete = nullptr;
      out.tail_index = false;
      out.rows_lo = 0;  // rows_hi inherited: a slice never grows
      if (args[1].value_known && args[2].value_known) {
        const double begin = args[1].number;
        const double end = args[2].number;
        // Mirror the runtime's clamp (end > size clamps, begin >= end is
        // empty); only trust literals whose size_t round trip is exact.
        if (begin >= 0 && end >= 0 && begin == std::floor(begin) &&
            end == std::floor(end) && begin <= 9.0e15 && end <= 9.0e15) {
          const uint64_t b = static_cast<uint64_t>(begin);
          const uint64_t e = static_cast<uint64_t>(end);
          out.rows_hi = std::min(out.rows_hi, e > b ? e - b : 0);
          if (args[0].RowsExact()) {
            const uint64_t clamped = std::min(e, args[0].rows_lo);
            out.SetExactRows(b < clamped ? clamped - b : 0);
          }
        }
      }
      return out;
    }
    if (name == "sum" || name == "max" || name == "min" || name == "count" ||
        name == "argmax") {
      if (!arity(1)) return std::nullopt;
      if (!require_bat(0, name)) return std::nullopt;
      const SType& in = args[0];
      if (name == "count") {
        if (in.RowsExact()) {
          return SType::NumVal(static_cast<double>(in.rows_lo));
        }
        SType out = SType::Num();
        out.num_bounds_known = true;
        out.num_lo = static_cast<double>(in.rows_lo);
        out.num_hi = in.rows_hi == kCardUnbounded
                         ? INFINITY
                         : static_cast<double>(in.rows_hi);
        return out;
      }
      // Mirror the runtime check order: Min/ArgMax test emptiness before
      // the tail type (Max delegates to ArgMax, hence its messages).
      if (name != "sum" && in.ProvablyEmpty()) {
        Error(name_tok,
              name == "min" ? "Min of empty BAT" : "ArgMax of empty BAT",
              StatusCode::kFailedPrecondition);
        return std::nullopt;
      }
      if (in.tail_known && !in.IsNumericTail()) {
        if (name == "sum") {
          Error(arg_toks[0], "Sum requires a numeric tail");
        } else if (name == "min") {
          Error(arg_toks[0], "Min requires a numeric tail");
        } else {
          Error(arg_toks[0], "ArgMax requires a numeric tail");
        }
        return std::nullopt;
      }
      SType out = SType::Num();
      if (name == "min" || name == "max") {
        // The result is one of the non-NaN tail values unless the BAT is
        // all-NaN (then it is NaN) — bounds only when NaN is impossible.
        if (in.hull_known && !in.hull_empty && !in.maybe_nan) {
          out.num_bounds_known = true;
          out.num_lo = in.hull_min;
          out.num_hi = in.hull_max;
        }
      } else if (name == "sum") {
        if (in.ProvablyEmpty()) return SType::NumVal(0.0);
        // A sum of c values each inside the hull lies between the extreme
        // products; one NaN poisons the fold, so bounds need !maybe_nan.
        if (in.hull_known && !in.hull_empty && !in.maybe_nan &&
            in.rows_hi != kCardUnbounded) {
          const double n_lo = static_cast<double>(in.rows_lo);
          const double n_hi = static_cast<double>(in.rows_hi);
          double lo = std::min(n_lo * in.hull_min, n_hi * in.hull_min);
          double hi = std::max(n_lo * in.hull_max, n_hi * in.hull_max);
          if (in.rows_lo == 0) {
            lo = std::min(lo, 0.0);
            hi = std::max(hi, 0.0);
          }
          out.num_bounds_known = true;
          out.num_lo = lo;
          out.num_hi = hi;
        }
      } else {  // argmax: a global row position of the input
        if (in.rows_hi != kCardUnbounded && in.rows_hi > 0) {
          out.num_bounds_known = true;
          out.num_lo = 0.0;
          out.num_hi = static_cast<double>(in.rows_hi - 1);
        }
      }
      return out;
    }
    Error(name_tok, "unknown MIL function " + name);
    return std::nullopt;
  }

  MilLexer lexer_;
  const MilAnalysisContext& ctx_;
  DiagnosticList diags_;
  std::vector<PlanFact> facts_;
  std::vector<MilToken> pushed_;
  int cur_line_ = 1;
  int cur_col_ = 1;

  std::map<std::string, SType> vars_;
  /// Names persist()ed by this script (shadowing the catalog), with their
  /// tail type when statically known.
  std::map<std::string, std::optional<TailType>> overlay_;
  /// True after a persist() whose target name was not statically known: any
  /// catalog-miss after that point may be satisfied at runtime.
  bool overlay_wildcard_ = false;
  std::set<std::string> persisted_;
  bool trace_ready_ = false;
  /// Statically-tracked shard count: seeded from the session, updated by
  /// shards(<literal>); a non-literal argument makes it unknown.
  bool shards_known_ = true;
  int shards_ = 1;
  /// Directories this script has saved into (a later `load` of one is
  /// known-good even if the directory does not exist yet at analysis time).
  std::set<std::string> saved_dirs_;
  /// True after a `load`: the catalog visible at analysis time no longer
  /// predicts execution time, so catalog lookups stop reporting misses.
  bool catalog_unknown_ = false;
  /// True after a `load`: pre-load bat() snapshots held in variables are
  /// stale-read hazards (errors in strict mode, warnings otherwise).
  bool reloaded_ = false;
};

}  // namespace

MilAnalysis AnalyzeMilScriptWithFacts(const std::string& script,
                                      const MilAnalysisContext& context) {
  MilAnalyzer analyzer(script, context);
  MilAnalysis out;
  out.diags = analyzer.Run();
  out.facts = analyzer.TakeFacts();
  return out;
}

DiagnosticList AnalyzeMilScript(const std::string& script,
                                const MilAnalysisContext& context) {
  return AnalyzeMilScriptWithFacts(script, context).diags;
}

}  // namespace cobra::kernel
